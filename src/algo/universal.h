// Algorithm 5: wait-free state-quiescent-HI universal implementation from
// releasable LL/SC (§6.1), written ONCE over an execution environment Env,
// generic over the sequential specification S and over the R-LLSC cell
// implementation Cell:
//
//   UniversalAlg<SimEnv, S, NativeRllsc>     — over ideal atomic R-LLSC cells
//   UniversalAlg<SimEnv, S, CasRllscAlg<…>>  — the full Theorem 32 composition
//   UniversalAlg<RtEnv,  S, CasRllscAlg<…>>  — the same composition on
//                                              hardware (CMPXCHG16B words)
//
// Layout. head holds ⟨q, r⟩ where q is the abstract state and r is either ⊥
// (in-between operations — "mode A") or ⟨rsp, j⟩, the response of the most
// recently applied operation and its invoking process ("mode B").
// announce[1..n] holds each process's pending operation descriptor, later
// overwritten by its response, and cleared to ⊥ before the operation
// returns — so at any state-quiescent configuration the announce array is
// all-⊥, head is ⟨q, ⊥⟩, and every context is empty (Lemmas 26, 27): memory
// is a function of the abstract state alone.
//
// The paper's `‖` notation (lines 6, 18, 25 interleaved with the blue
// right-hand sides) is realized by ll_interleaved: one right-hand-side poll
// step runs between successive low-level steps of a possibly-blocking LL,
// and a successful poll abandons the LL (6R.2 / 18R.1-3 / 25R.1-2). The
// paper's 6R.1/18R.1 "wait until Load(announce[i]) ∉ R" is read as
// "... ∈ R" — the bail must fire when the response has *arrived* (matching
// the exit condition of the line-5 loop and the prose: "checks whether some
// other process has already accomplished what p_i was trying to do").
//
// The red lines (22, 27 and the RL of 18R.2) erase the context traces that
// helping leaves behind; ablation tests compile with clear_contexts=false
// to show exactly which HI property breaks without them (E14 ablation (a)).
//
// The ⟨q, r⟩ head and op/resp announce encodings are the only per-backend
// detail: RllscWordCodec<RllscValue> keeps the simulator's two-word payload
// (full 64-bit abstract states), RllscWordCodec<uint64_t> is the hardware
// packing (states ≤ 32 bits, responses ≤ 24 bits, ≤ 64 processes — the
// DESIGN substitution documented at Atomic128).
//
// This body contains no CAS retry loop of its own — every retry lives in
// the R-LLSC cell it is composed over, so when Cell = CasRllscAlg the
// failure-word CAS (docs/ENV.md) applies to all of Algorithm 5's LL/SC/RL
// traffic: one atomic per failed low-level retry, on both backends.
//
// Frame discipline: apply() forwards to apply_read_only/apply_update by
// returning the callee's task (no extra coroutine frame), and the helper
// chain below an apply — the cell's LL/SC/RL Subs and the response_ready /
// head_clear_of poll Subs spawned once per ‖-poll — is at most three frames
// deep. On RtEnv all of them recycle through the per-thread frame arena
// (env/rt_env.h): an update operation performs zero steady-state heap
// allocations however much helping it does.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algo/values.h"
#include "spec/spec.h"
#include "util/padded.h"

namespace hi::algo {

/// Decoded view of a head value ⟨q, r⟩.
struct HeadView {
  std::uint64_t state = 0;  // encoded abstract state q
  bool has_response = false;
  std::uint32_t rsp = 0;  // valid iff has_response
  int pid = -1;           // valid iff has_response
};

/// The response half of a mode-B head: ⟨rsp, j⟩.
struct HeadResp {
  std::uint32_t rsp;
  int pid;
};

/// Packing of head/announce tuples into an R-LLSC value type V.
template <typename V>
struct RllscWordCodec;

/// Simulator packing (two-word values): lo carries tag<<32 | payload for
/// announce cells, the full 64-bit encoded state for head; hi is ⊥ (0) or
/// bit63 | pid<<32 | rsp.
template <>
struct RllscWordCodec<RllscValue> {
  static constexpr std::uint64_t kTagOp = 1;
  static constexpr std::uint64_t kTagResp = 2;

  static RllscValue bottom() { return RllscValue{}; }
  static RllscValue announce_op(std::uint32_t word) {
    return RllscValue{(kTagOp << 32) | word, 0};
  }
  static RllscValue announce_resp(std::uint32_t word) {
    return RllscValue{(kTagResp << 32) | word, 0};
  }
  static bool is_bottom(const RllscValue& v) { return v.lo == 0; }
  static bool is_op(const RllscValue& v) { return (v.lo >> 32) == kTagOp; }
  static bool is_resp(const RllscValue& v) { return (v.lo >> 32) == kTagResp; }
  static std::uint32_t payload(const RllscValue& v) {
    return static_cast<std::uint32_t>(v.lo & 0xffffffffu);
  }

  static RllscValue make_head(std::uint64_t state_encoded,
                              std::optional<HeadResp> resp) {
    std::uint64_t hi = 0;
    if (resp.has_value()) {
      hi = (std::uint64_t{1} << 63) |
           (static_cast<std::uint64_t>(resp->pid) << 32) | resp->rsp;
    }
    return RllscValue{state_encoded, hi};
  }
  static HeadView decode_head(const RllscValue& v) {
    HeadView view;
    view.state = v.lo;
    view.has_response = (v.hi >> 63) != 0;
    if (view.has_response) {
      view.pid = static_cast<int>((v.hi >> 32) & 0x7fffffffu);
      view.rsp = static_cast<std::uint32_t>(v.hi & 0xffffffffu);
    }
    return view;
  }
};

/// Hardware packing (single 64-bit value word).
/// announce: tag (bits 32-33) | payload (bits 0-31); ⊥ = 0.
/// head: state (bits 0-31) | rsp (32-55) | pid (56-61) | has (62).
template <>
struct RllscWordCodec<std::uint64_t> {
  static std::uint64_t bottom() { return 0; }
  static std::uint64_t announce_op(std::uint32_t word) {
    return (std::uint64_t{1} << 32) | word;
  }
  static std::uint64_t announce_resp(std::uint32_t word) {
    return (std::uint64_t{2} << 32) | word;
  }
  static bool is_bottom(std::uint64_t v) { return v == 0; }
  static bool is_op(std::uint64_t v) { return (v >> 32) == 1; }
  static bool is_resp(std::uint64_t v) { return (v >> 32) == 2; }
  static std::uint32_t payload(std::uint64_t v) {
    return static_cast<std::uint32_t>(v & 0xffffffffu);
  }

  static std::uint64_t make_head(std::uint64_t state_encoded,
                                 std::optional<HeadResp> resp) {
    assert(state_encoded <= 0xffffffffull && "rt states must fit 32 bits");
    std::uint64_t word = state_encoded;
    if (resp.has_value()) {
      assert(resp->rsp <= 0xffffffu && "rt responses must fit 24 bits");
      word |= (static_cast<std::uint64_t>(resp->rsp) << 32) |
              (static_cast<std::uint64_t>(resp->pid) << 56) |
              (std::uint64_t{1} << 62);
    }
    return word;
  }
  static HeadView decode_head(std::uint64_t v) {
    HeadView view;
    view.state = v & 0xffffffffu;
    view.has_response = (v >> 62) & 1u;
    if (view.has_response) {
      view.pid = static_cast<int>((v >> 56) & 0x3fu);
      view.rsp = static_cast<std::uint32_t>((v >> 32) & 0xffffffu);
    }
    return view;
  }
};

template <typename Env, spec::SequentialSpec S, typename Cell>
class UniversalAlg {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;
  using V = typename Env::Value;
  using Codec = RllscWordCodec<V>;
  template <typename T>
  using OpT = typename Env::template Op<T>;
  template <typename T>
  using SubT = typename Env::template Sub<T>;

  /// `clear_contexts` disables the paper's red lines (22 and 27 and the RL
  /// of 18R.2) when false — the HI-breaking ablation. Production use: true.
  UniversalAlg(typename Env::Ctx ctx, const S& spec, int num_processes,
               bool clear_contexts = true)
      : spec_(spec),
        n_(num_processes),
        clear_contexts_(clear_contexts),
        head_(ctx, "head",
              Codec::make_head(spec.encode_state(spec.initial_state()),
                               std::nullopt)) {
    assert(num_processes >= 1 && num_processes <= 64);
    for (int i = 0; i < n_; ++i) {
      // deque: cells are constructed in place (hardware cells are padded
      // atomics, not movable) and references stay stable.
      announce_.emplace_back(ctx, "announce[" + std::to_string(i) + "]",
                             Codec::bottom());
    }
    for (int i = 0; i < n_; ++i) priority_.emplace_back(i);
  }

  OpT<Resp> apply(int pid, Op op) {
    if (spec_.is_read_only(op)) return apply_read_only(pid, op);
    return apply_update(pid, op);
  }

  /// ApplyReadOnly (lines 1–3): Load head, evaluate Δ locally, return.
  /// Touches no shared state.
  OpT<Resp> apply_read_only(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    (void)pid;
    const V raw = co_await head_.load();  // line 1
    const HeadView view = Codec::decode_head(raw);
    const auto [state_after, rsp] =
        spec_.apply(spec_.decode_state(view.state), op);  // line 2
    (void)state_after;
    co_return rsp;  // line 3
  }

  /// Apply (lines 4–29): announce, help/apply until a response appears in
  /// announce[pid], then clear the response from head and announce.
  OpT<Resp> apply_update(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    const std::uint32_t my_op_word = spec_.encode_op(op);
    Cell& my_cell = announce_[pid];

    co_await my_cell.store(Codec::announce_op(my_op_word));  // line 4

    const auto poll_helped = [this, pid] { return response_ready(pid); };
    for (;;) {
      const V mine = co_await my_cell.load();  // line 5
      if (Codec::is_resp(mine)) break;

      // Line 6: ⟨q,r⟩ ← LL(head) ‖ bail once announce[pid] ∈ R (6R).
      const std::optional<V> head_raw =
          co_await head_.ll_interleaved(pid, poll_helped);
      if (!head_raw.has_value()) break;  // 6R.2: goto line 24
      const HeadView head_view = Codec::decode_head(*head_raw);

      if (!head_view.has_response) {  // line 7: in-between operations
        std::uint32_t apply_word = 0;
        int target = -1;
        const int candidate = *priority_[pid];
        const V help = co_await announce_[candidate].load();  // line 8
        if (Codec::is_op(help)) {  // line 9: apply another's operation
          apply_word = Codec::payload(help);
          target = candidate;
        } else {
          const V own = co_await my_cell.load();  // line 11
          if (!Codec::is_op(own)) continue;
          apply_word = my_op_word;  // line 12: apply my own operation
          target = pid;
        }
        const auto [next_state, rsp] = spec_.apply(
            spec_.decode_state(head_view.state),
            spec_.decode_op(apply_word));  // line 13
        const bool installed = co_await head_.sc(
            pid, Codec::make_head(spec_.encode_state(next_state),
                                  HeadResp{spec_.encode_resp(rsp),
                                           target}));  // line 14
        if (installed) {
          *priority_[pid] = (*priority_[pid] + 1) % n_;  // line 15
        }
      } else {  // lines 16–22: finish the half-applied operation
        const std::uint32_t rsp_word = head_view.rsp;  // line 17
        const int target = head_view.pid;

        // Line 18: a ← LL(announce[j]) ‖ bail once announce[pid] ∈ R (18R).
        const std::optional<V> a =
            co_await announce_[target].ll_interleaved(pid, poll_helped);
        if (!a.has_value()) {
          if (clear_contexts_) {
            co_await announce_[target].rl(pid);  // 18R.2
          }
          break;  // 18R.3: goto line 24
        }
        const bool head_valid = co_await head_.vl(pid);  // line 19
        if (head_valid) {
          if (Codec::is_op(*a)) {
            co_await announce_[target].sc(
                pid, Codec::announce_resp(rsp_word));  // line 20
          }
          co_await head_.sc(
              pid, Codec::make_head(head_view.state, std::nullopt));  // l. 21
        }
        if (Codec::is_bottom(*a) && clear_contexts_) {
          co_await announce_[target].rl(pid);  // line 22 (red)
        }
        // line 23: continue
      }
    }

    const V resp_val = co_await my_cell.load();  // line 24
    assert(Codec::is_resp(resp_val));

    // Line 25: ⟨q,r⟩ ← LL(head) ‖ bail once head ≠ ⟨_,⟨_,pid⟩⟩ (25R).
    const auto poll_cleared = [this, pid] { return head_clear_of(pid); };
    const std::optional<V> head_raw =
        co_await head_.ll_interleaved(pid, poll_cleared);
    bool handled = false;
    if (head_raw.has_value()) {
      const HeadView view = Codec::decode_head(*head_raw);
      if (view.has_response && view.pid == pid) {  // line 26
        co_await head_.sc(pid, Codec::make_head(view.state, std::nullopt));
        handled = true;
      }
    }
    if (!handled && clear_contexts_) {
      co_await head_.rl(pid);  // line 27 (red; also the 25R.2 path)
    }

    co_await my_cell.store(Codec::bottom());  // line 28: clear announce[pid]
    co_return spec_.decode_resp(Codec::payload(resp_val));  // line 29
  }

  // ---- Observer-side introspection (test oracles; never takes steps) ----

  /// The abstract state recorded in head (Lemma 25: equals state(h(α))).
  std::uint64_t head_state_encoded() const {
    return Codec::decode_head(head_.peek_value()).state;
  }
  bool head_has_response() const {
    return Codec::decode_head(head_.peek_value()).has_response;
  }
  bool announce_is_bottom(int pid) const {
    return Codec::is_bottom(announce_[pid].peek_value());
  }
  /// Union of all context bitmasks (Lemma 27: empty at state-quiescence).
  std::uint64_t context_union() const {
    std::uint64_t mask = head_.peek_context();
    for (const Cell& cell : announce_) mask |= cell.peek_context();
    return mask;
  }
  /// Full memory image (head word, then announce words) as CtxWords; only
  /// meaningful at quiescence unless the caller tolerates racing reads.
  std::vector<CtxWord<V>> memory_words() const {
    std::vector<CtxWord<V>> image;
    image.reserve(1 + static_cast<std::size_t>(n_));
    image.push_back(head_.peek_word());
    for (const Cell& cell : announce_) image.push_back(cell.peek_word());
    return image;
  }

  bool is_lock_free() const { return head_.is_lock_free(); }
  int num_processes() const { return n_; }
  /// Bytes of shared storage (head + announce cells; observer-side, the
  /// bench's bytes_per_object input — sizeof tracks the cell layout, so a
  /// future cell change is reflected automatically).
  std::size_t memory_bytes() const {
    return (1 + announce_.size()) * sizeof(Cell);
  }

 private:
  /// 6R.1 / 18R.1: has my response been published in announce[pid]?
  SubT<bool> response_ready(int pid) {
    const V v = co_await announce_[pid].load();
    co_return Codec::is_resp(v);
  }

  /// 25R.1: head no longer holds ⟨_, ⟨_, pid⟩⟩?
  SubT<bool> head_clear_of(int pid) {
    const V v = co_await head_.load();
    const HeadView view = Codec::decode_head(v);
    co_return !(view.has_response && view.pid == pid);
  }

  const S& spec_;
  int n_;
  bool clear_contexts_;
  Cell head_;
  std::deque<Cell> announce_;
  // Per-process local variable priority_i; padded so hardware threads do not
  // false-share (a scheduler-local no-op in the simulator).
  std::deque<util::Padded<int>> priority_;
};

}  // namespace hi::algo
