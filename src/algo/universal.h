// Algorithm 5: wait-free state-quiescent-HI universal implementation from
// releasable LL/SC (§6.1), written ONCE over an execution environment Env,
// generic over the sequential specification S and over the R-LLSC cell
// implementation Cell:
//
//   UniversalAlg<SimEnv, S, NativeRllsc>     — over ideal atomic R-LLSC cells
//   UniversalAlg<SimEnv, S, CasRllscAlg<…>>  — the full Theorem 32 composition
//   UniversalAlg<RtEnv,  S, CasRllscAlg<…>>  — the same composition on
//                                              hardware (CMPXCHG16B words)
//
// Layout. head holds ⟨q, r⟩ where q is the abstract state and r is either ⊥
// (in-between operations — "mode A") or ⟨rsp, j⟩, the response of the most
// recently applied operation and its invoking process ("mode B").
// announce[1..n] holds each process's pending operation descriptor, later
// overwritten by its response, and cleared to ⊥ before the operation
// returns — so at any state-quiescent configuration the announce array is
// all-⊥, head is ⟨q, ⊥⟩, and every context is empty (Lemmas 26, 27): memory
// is a function of the abstract state alone.
//
// The paper's `‖` notation (lines 6, 18, 25 interleaved with the blue
// right-hand sides) is realized by ll_interleaved: one right-hand-side poll
// step runs between successive low-level steps of a possibly-blocking LL,
// and a successful poll abandons the LL (6R.2 / 18R.1-3 / 25R.1-2). The
// paper's 6R.1/18R.1 "wait until Load(announce[i]) ∉ R" is read as
// "... ∈ R" — the bail must fire when the response has *arrived* (matching
// the exit condition of the line-5 loop and the prose: "checks whether some
// other process has already accomplished what p_i was trying to do").
//
// The red lines (22, 27 and the RL of 18R.2) erase the context traces that
// helping leaves behind; ablation tests compile with clear_contexts=false
// to show exactly which HI property breaks without them (E14 ablation (a)).
//
// The ⟨q, r⟩ head and op/resp announce encodings are shared across ALL
// backends: Word64HeadCodec packs every head/announce tuple into one 64-bit
// word (states ≤ 32 bits, responses ≤ 24 bits, ≤ 64 processes — the DESIGN
// substitution documented at Atomic128), and both RllscWordCodec
// specializations delegate to it. The simulator carries the word in
// RllscValue::lo with hi ≡ 0, so a universal memory snapshot is bit-exact
// across SimEnv/RtEnv/ReplayEnv — exactly like FkHeadCodec already is for
// the leaky baseline — which is what lets the replay differentials and the
// sim↔rt parity suite compare raw words instead of decoding semantically.
//
// Flat-combining mode (combine=true; docs/PAPER_MAP.md "Combining
// deviation"). The announce array doubles as a combining publication list:
// the process whose head SC succeeds (the *winner*) first scans all n
// announce cells, folds every pending operation into one state transition
// (ascending pid order), and installs a single *combining record*
// ⟨q_final, combining-bit, winner⟩ with that SC. While the record is in
// head, every other process's LL simply retries (the record is inert to
// helpers), and the winner alone Stores each helped response into its
// announce cell, then Stores head back to ⟨q_final, ⊥⟩. Exactly-once: a
// successful SC means head was untouched over [LL, SC], and responses are
// only ever written under a combining record, so every op the winner saw as
// pending is genuinely unapplied and nobody else writes responses during
// the winner's phase — the winner's Stores cannot be contended. The whole
// batch linearizes at the winning SC, in ascending-pid fold order; a
// concurrent ApplyReadOnly that loads the combining record reads q_final
// and thus linearizes after the batch (same precedent as reading a mode-B
// head). The state-quiescent image is UNCHANGED — head ⟨q,⊥⟩, announce ≡ ⊥,
// contexts empty — because combining only moves *who* applies announced
// operations, never what quiescent memory looks like; announce cells are
// touched only by Stores (context-resetting) in this mode, and the
// mode-B/helping lines 16–22 are dormant (head never carries ⟨rsp,j⟩).
// The trade is the classic flat-combining one: a stalled winner blocks the
// batch, so combine=true is lock-free, not wait-free. combine=false (the
// default) is the paper's wait-free Algorithm 5, unchanged.
//
// This body contains no CAS retry loop of its own — every retry lives in
// the R-LLSC cell it is composed over, so when Cell = CasRllscAlg the
// failure-word CAS (docs/ENV.md) applies to all of Algorithm 5's LL/SC/RL
// traffic: one atomic per failed low-level retry, on both backends.
//
// Frame discipline: apply() forwards to apply_read_only/apply_update by
// returning the callee's task (no extra coroutine frame), and the helper
// chain below an apply — the cell's LL/SC/RL Subs and the response_ready /
// head_clear_of poll Subs spawned once per ‖-poll — is at most three frames
// deep. On RtEnv all of them recycle through the per-thread frame arena
// (env/rt_env.h): an update operation performs zero steady-state heap
// allocations however much helping it does.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algo/values.h"
#include "spec/spec.h"
#include "util/padded.h"

namespace hi::algo {

/// Decoded view of a head value ⟨q, r⟩ (plus the combining tag).
struct HeadView {
  std::uint64_t state = 0;  // encoded abstract state q
  bool has_response = false;
  bool combining = false;  // a winner's batch record (combine mode only)
  std::uint32_t rsp = 0;   // valid iff has_response
  int pid = -1;            // valid iff has_response or combining
};

/// The response half of a mode-B head: ⟨rsp, j⟩.
struct HeadResp {
  std::uint32_t rsp;
  int pid;
};

/// The ONE packing of head/announce tuples, shared by every backend
/// (docs/ENV.md "Word64HeadCodec contract"). All tuples fit a single 64-bit
/// word:
///
///   announce: tag (bits 32-33: 1 = op, 2 = resp) | payload (bits 0-31);
///             ⊥ = 0.
///   head:     state (bits 0-31) | rsp (bits 32-55) | pid (bits 56-61) |
///             has-response (bit 62) | combining (bit 63).
///
/// Mode A is ⟨q, ⊥⟩ = just the state bits; mode B sets bit 62 and carries
/// ⟨rsp, j⟩; a combining record sets bit 63 and carries only the winner's
/// pid (no response payload — helped responses travel through the announce
/// cells). Bits 62 and 63 are mutually exclusive by construction. The bit
/// positions are pinned by tests/test_head_codec.cpp: changing them is a
/// cross-backend snapshot-format break.
struct Word64HeadCodec {
  static constexpr std::uint64_t kTagOp = 1;
  static constexpr std::uint64_t kTagResp = 2;
  static constexpr std::uint64_t kStateMask = 0xffffffffull;
  static constexpr std::uint64_t kRspMask = 0xffffffull;
  static constexpr int kRspShift = 32;
  static constexpr int kPidShift = 56;
  static constexpr std::uint64_t kHasBit = std::uint64_t{1} << 62;
  static constexpr std::uint64_t kCombineBit = std::uint64_t{1} << 63;

  static std::uint64_t bottom() { return 0; }
  static std::uint64_t announce_op(std::uint32_t word) {
    return (kTagOp << 32) | word;
  }
  static std::uint64_t announce_resp(std::uint32_t word) {
    return (kTagResp << 32) | word;
  }
  static bool is_bottom(std::uint64_t v) { return v == 0; }
  static bool is_op(std::uint64_t v) { return (v >> 32) == kTagOp; }
  static bool is_resp(std::uint64_t v) { return (v >> 32) == kTagResp; }
  static std::uint32_t payload(std::uint64_t v) {
    return static_cast<std::uint32_t>(v & 0xffffffffu);
  }

  static std::uint64_t make_head(std::uint64_t state_encoded,
                                 std::optional<HeadResp> resp) {
    assert(state_encoded <= kStateMask && "encoded states must fit 32 bits");
    std::uint64_t word = state_encoded;
    if (resp.has_value()) {
      assert(resp->rsp <= kRspMask && "encoded responses must fit 24 bits");
      word |= (static_cast<std::uint64_t>(resp->rsp) << kRspShift) |
              (static_cast<std::uint64_t>(resp->pid) << kPidShift) | kHasBit;
    }
    return word;
  }
  static std::uint64_t make_combining_head(std::uint64_t state_encoded,
                                           int pid) {
    assert(state_encoded <= kStateMask && "encoded states must fit 32 bits");
    return state_encoded | (static_cast<std::uint64_t>(pid) << kPidShift) |
           kCombineBit;
  }
  static HeadView decode_head(std::uint64_t v) {
    HeadView view;
    view.state = v & kStateMask;
    view.has_response = (v & kHasBit) != 0;
    view.combining = (v & kCombineBit) != 0;
    if (view.has_response || view.combining) {
      view.pid = static_cast<int>((v >> kPidShift) & 0x3fu);
      view.rsp = static_cast<std::uint32_t>((v >> kRspShift) & kRspMask);
    }
    return view;
  }
};

/// Per-backend adapter from Word64HeadCodec to the R-LLSC value type V.
template <typename V>
struct RllscWordCodec;

/// Hardware / replay value word: the codec word verbatim.
template <>
struct RllscWordCodec<std::uint64_t> : Word64HeadCodec {};

/// Simulator value: the codec word in lo, hi ≡ 0 — so a sim snapshot of a
/// universal object is bit-identical to the rt/replay snapshot of the same
/// configuration (this is what upgraded the universal replay rows from
/// semantic comparison to verify::snapshot_word_compare).
template <>
struct RllscWordCodec<RllscValue> {
  using W = Word64HeadCodec;

  static RllscValue bottom() { return RllscValue{}; }
  static RllscValue announce_op(std::uint32_t word) {
    return RllscValue{W::announce_op(word), 0};
  }
  static RllscValue announce_resp(std::uint32_t word) {
    return RllscValue{W::announce_resp(word), 0};
  }
  static bool is_bottom(const RllscValue& v) { return W::is_bottom(v.lo); }
  static bool is_op(const RllscValue& v) { return W::is_op(v.lo); }
  static bool is_resp(const RllscValue& v) { return W::is_resp(v.lo); }
  static std::uint32_t payload(const RllscValue& v) {
    return W::payload(v.lo);
  }
  static RllscValue make_head(std::uint64_t state_encoded,
                              std::optional<HeadResp> resp) {
    return RllscValue{W::make_head(state_encoded, resp), 0};
  }
  static RllscValue make_combining_head(std::uint64_t state_encoded,
                                        int pid) {
    return RllscValue{W::make_combining_head(state_encoded, pid), 0};
  }
  static HeadView decode_head(const RllscValue& v) {
    return W::decode_head(v.lo);
  }
};

template <typename Env, spec::SequentialSpec S, typename Cell>
class UniversalAlg {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;
  using V = typename Env::Value;
  using Codec = RllscWordCodec<V>;
  template <typename T>
  using OpT = typename Env::template Op<T>;
  template <typename T>
  using SubT = typename Env::template Sub<T>;

  /// `clear_contexts` disables the paper's red lines (22 and 27 and the RL
  /// of 18R.2) when false — the HI-breaking ablation. Production use: true.
  /// `combine` switches apply_update from the paper's one-op-per-SC helping
  /// protocol to flat-combining batches (header comment): same linearizable
  /// behaviour, same quiescent image, lock-free instead of wait-free.
  UniversalAlg(typename Env::Ctx ctx, const S& spec, int num_processes,
               bool clear_contexts = true, bool combine = false)
      : spec_(spec),
        n_(num_processes),
        clear_contexts_(clear_contexts),
        combine_(combine),
        head_(ctx, "head",
              Codec::make_head(spec.encode_state(spec.initial_state()),
                               std::nullopt)) {
    assert(num_processes >= 1 && num_processes <= 64);
    for (int i = 0; i < n_; ++i) {
      // deque: cells are constructed in place (hardware cells are padded
      // atomics, not movable) and references stay stable.
      announce_.emplace_back(ctx, "announce[" + std::to_string(i) + "]",
                             Codec::bottom());
    }
    for (int i = 0; i < n_; ++i) priority_.emplace_back(i);
    for (int i = 0; i < n_; ++i) {
      batches_installed_.emplace_back(0);
      ops_combined_.emplace_back(0);
    }
  }

  OpT<Resp> apply(int pid, Op op) {
    if (spec_.is_read_only(op)) return apply_read_only(pid, op);
    return apply_update(pid, op);
  }

  /// Test support: park an announcement exactly as if `pid` executed line 4
  /// and then stalled. Lets parity/step scripts stage a combining batch
  /// deterministically on every backend (the rt side runs whole operations
  /// eagerly, so a stalled-mid-op process cannot be expressed there any
  /// other way). The parked operation is applied by the next winner; `pid`
  /// never collects the response.
  OpT<bool> announce_only(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    co_await announce_[pid].store(Codec::announce_op(spec_.encode_op(op)));
    co_return true;
  }

  /// ApplyReadOnly (lines 1–3): Load head, evaluate Δ locally, return.
  /// Touches no shared state.
  OpT<Resp> apply_read_only(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    (void)pid;
    const V raw = co_await head_.load();  // line 1
    const HeadView view = Codec::decode_head(raw);
    const auto [state_after, rsp] =
        spec_.apply(spec_.decode_state(view.state), op);  // line 2
    (void)state_after;
    co_return rsp;  // line 3
  }

  /// Apply (lines 4–29): announce, help/apply until a response appears in
  /// announce[pid], then clear the response from head and announce.
  OpT<Resp> apply_update(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    const std::uint32_t my_op_word = spec_.encode_op(op);
    Cell& my_cell = announce_[pid];

    co_await my_cell.store(Codec::announce_op(my_op_word));  // line 4

    const auto poll_helped = [this, pid] { return response_ready(pid); };
    std::uint32_t combine_waits = 0;
    for (;;) {
      const V mine = co_await my_cell.load();  // line 5
      if (Codec::is_resp(mine)) break;

      // Line 6: ⟨q,r⟩ ← LL(head) ‖ bail once announce[pid] ∈ R (6R).
      const std::optional<V> head_raw =
          co_await head_.ll_interleaved(pid, poll_helped);
      if (!head_raw.has_value()) break;  // 6R.2: goto line 24
      const HeadView head_view = Codec::decode_head(*head_raw);

      if (combine_) {
        // Flat-combining protocol (header comment). A combining record in
        // head means another winner is mid-phase: its responses are in
        // flight through the announce cells, so just retry from line 5
        // (ours may be among them). Hand the core back first — on an
        // oversubscribed machine the winner may be preempted mid-phase,
        // and hard-spinning on its record burns the slice it needs — and
        // apply the Env's bounded backoff so losers ramp their polling
        // down instead of hammering the head line (no step; sim no-op).
        if (head_view.combining) {
          Env::relax();
          Env::backoff(combine_waits++);
          continue;
        }
        // This mode never installs mode-B records, so head is mode A here.
        assert(!head_view.has_response);

        // Scan pass: collect every pending operation and fold the batch
        // into one state transition, ascending pid (= linearization order
        // within the batch). Membership is pinned by `batch` — a response
        // is owed to exactly the cells seen as op now; anything announced
        // later waits for the next winner.
        std::uint64_t batch = 0;
        std::array<std::uint32_t, 64> rsps;
        auto state = spec_.decode_state(head_view.state);
        for (int j = 0; j < n_; ++j) {
          const V aj = co_await announce_[j].load();
          if (!Codec::is_op(aj)) continue;
          batch |= std::uint64_t{1} << j;
          auto [next, rsp] =
              spec_.apply(state, spec_.decode_op(Codec::payload(aj)));
          state = next;
          rsps[static_cast<std::size_t>(j)] = spec_.encode_resp(rsp);
        }
        // All cells already answered (a winner served us since line 5):
        // retry, line 5 will see the response.
        if (batch == 0) continue;

        const bool installed = co_await head_.sc(
            pid, Codec::make_combining_head(spec_.encode_state(state), pid));
        if (!installed) continue;
        // Winner phase: the batch is applied (it linearized at the SC
        // above); publish each response, then release head. Success of the
        // SC means head was untouched over [LL, SC], hence no response was
        // written anywhere in that window and every scanned op is still in
        // its cell with its owner parked at line 5 — so nobody contends
        // these Stores (which also reset the cells' contexts).
        *batches_installed_[pid] += 1;
        *ops_combined_[pid] += static_cast<std::uint64_t>(std::popcount(batch));
        for (int j = 0; j < n_; ++j) {
          if (((batch >> j) & 1u) == 0) continue;
          co_await announce_[j].store(
              Codec::announce_resp(rsps[static_cast<std::size_t>(j)]));
        }
        co_await head_.store(
            Codec::make_head(spec_.encode_state(state), std::nullopt));
        continue;  // line 5 picks up our own response (if we were served)
      }

      if (!head_view.has_response) {  // line 7: in-between operations
        std::uint32_t apply_word = 0;
        int target = -1;
        const int candidate = *priority_[pid];
        const V help = co_await announce_[candidate].load();  // line 8
        if (Codec::is_op(help)) {  // line 9: apply another's operation
          apply_word = Codec::payload(help);
          target = candidate;
        } else {
          const V own = co_await my_cell.load();  // line 11
          if (!Codec::is_op(own)) continue;
          apply_word = my_op_word;  // line 12: apply my own operation
          target = pid;
        }
        const auto [next_state, rsp] = spec_.apply(
            spec_.decode_state(head_view.state),
            spec_.decode_op(apply_word));  // line 13
        const bool installed = co_await head_.sc(
            pid, Codec::make_head(spec_.encode_state(next_state),
                                  HeadResp{spec_.encode_resp(rsp),
                                           target}));  // line 14
        if (installed) {
          *priority_[pid] = (*priority_[pid] + 1) % n_;  // line 15
          // A plain mode-A install is a batch of one (so batch_size_mean
          // reads 1.0 on non-combining rows).
          *batches_installed_[pid] += 1;
          *ops_combined_[pid] += 1;
        }
      } else {  // lines 16–22: finish the half-applied operation
        const std::uint32_t rsp_word = head_view.rsp;  // line 17
        const int target = head_view.pid;

        // Line 18: a ← LL(announce[j]) ‖ bail once announce[pid] ∈ R (18R).
        const std::optional<V> a =
            co_await announce_[target].ll_interleaved(pid, poll_helped);
        if (!a.has_value()) {
          if (clear_contexts_) {
            co_await announce_[target].rl(pid);  // 18R.2
          }
          break;  // 18R.3: goto line 24
        }
        const bool head_valid = co_await head_.vl(pid);  // line 19
        if (head_valid) {
          if (Codec::is_op(*a)) {
            co_await announce_[target].sc(
                pid, Codec::announce_resp(rsp_word));  // line 20
          }
          co_await head_.sc(
              pid, Codec::make_head(head_view.state, std::nullopt));  // l. 21
        }
        if (Codec::is_bottom(*a) && clear_contexts_) {
          co_await announce_[target].rl(pid);  // line 22 (red)
        }
        // line 23: continue
      }
    }

    const V resp_val = co_await my_cell.load();  // line 24
    assert(Codec::is_resp(resp_val));

    // Line 25: ⟨q,r⟩ ← LL(head) ‖ bail once head ≠ ⟨_,⟨_,pid⟩⟩ (25R).
    const auto poll_cleared = [this, pid] { return head_clear_of(pid); };
    const std::optional<V> head_raw =
        co_await head_.ll_interleaved(pid, poll_cleared);
    bool handled = false;
    if (head_raw.has_value()) {
      const HeadView view = Codec::decode_head(*head_raw);
      if (view.has_response && view.pid == pid) {  // line 26
        co_await head_.sc(pid, Codec::make_head(view.state, std::nullopt));
        handled = true;
      }
    }
    if (!handled && clear_contexts_) {
      co_await head_.rl(pid);  // line 27 (red; also the 25R.2 path)
    }

    co_await my_cell.store(Codec::bottom());  // line 28: clear announce[pid]
    co_return spec_.decode_resp(Codec::payload(resp_val));  // line 29
  }

  // ---- Observer-side introspection (test oracles; never takes steps) ----

  /// The abstract state recorded in head (Lemma 25: equals state(h(α))).
  std::uint64_t head_state_encoded() const {
    return Codec::decode_head(head_.peek_value()).state;
  }
  bool head_has_response() const {
    return Codec::decode_head(head_.peek_value()).has_response;
  }
  /// True while a combining record sits in head (combine mode's winner
  /// phase). The crash tests stage crashes relative to this window: a
  /// winner crashed BEFORE installing the record is survivable (the audit
  /// proves it), one crashed AFTER is the documented blocking window
  /// (docs/FAULTS.md).
  bool head_is_combining() const {
    return Codec::decode_head(head_.peek_value()).combining;
  }
  bool announce_is_bottom(int pid) const {
    return Codec::is_bottom(announce_[pid].peek_value());
  }
  /// Union of all context bitmasks (Lemma 27: empty at state-quiescence).
  std::uint64_t context_union() const {
    std::uint64_t mask = head_.peek_context();
    for (const Cell& cell : announce_) mask |= cell.peek_context();
    return mask;
  }
  /// Full memory image (head word, then announce words) as CtxWords; only
  /// meaningful at quiescence unless the caller tolerates racing reads.
  std::vector<CtxWord<V>> memory_words() const {
    std::vector<CtxWord<V>> image;
    image.reserve(1 + static_cast<std::size_t>(n_));
    image.push_back(head_.peek_word());
    for (const Cell& cell : announce_) image.push_back(cell.peek_word());
    return image;
  }

  /// Successful head installs (mode-A SCs; in combine mode, combining-record
  /// SCs) summed over processes. Each counter is owner-written and only read
  /// by observers at rest, so no atomics are needed.
  std::uint64_t batches_installed() const {
    std::uint64_t total = 0;
    for (const auto& c : batches_installed_) total += *c;
    return total;
  }
  /// Operations applied through those installs; ops_combined() /
  /// batches_installed() is the mean batch size (exactly 1.0 when
  /// combine=false).
  std::uint64_t ops_combined() const {
    std::uint64_t total = 0;
    for (const auto& c : ops_combined_) total += *c;
    return total;
  }
  void reset_batch_stats() {
    for (auto& c : batches_installed_) *c = 0;
    for (auto& c : ops_combined_) *c = 0;
  }
  bool combining_enabled() const { return combine_; }

  bool is_lock_free() const { return head_.is_lock_free(); }
  int num_processes() const { return n_; }
  /// Bytes of shared storage (head + announce cells; observer-side, the
  /// bench's bytes_per_object input — sizeof tracks the cell layout, so a
  /// future cell change is reflected automatically).
  std::size_t memory_bytes() const {
    return (1 + announce_.size()) * sizeof(Cell);
  }

 private:
  /// 6R.1 / 18R.1: has my response been published in announce[pid]?
  SubT<bool> response_ready(int pid) {
    const V v = co_await announce_[pid].load();
    co_return Codec::is_resp(v);
  }

  /// 25R.1: head no longer holds ⟨_, ⟨_, pid⟩⟩?
  SubT<bool> head_clear_of(int pid) {
    const V v = co_await head_.load();
    const HeadView view = Codec::decode_head(v);
    co_return !(view.has_response && view.pid == pid);
  }

  const S& spec_;
  int n_;
  bool clear_contexts_;
  bool combine_;
  Cell head_;
  std::deque<Cell> announce_;
  // Per-process local variable priority_i; padded so hardware threads do not
  // false-share (a scheduler-local no-op in the simulator).
  std::deque<util::Padded<int>> priority_;
  // Per-process batch statistics (bench instrumentation, not part of the
  // shared-memory image): padded and owner-written like priority_.
  std::deque<util::Padded<std::uint64_t>> batches_installed_;
  std::deque<util::Padded<std::uint64_t>> ops_combined_;
};

}  // namespace hi::algo
