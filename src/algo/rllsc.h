// Algorithm 6: lock-free perfect-HI releasable-LL/SC object from atomic CAS
// (§6.3, Theorem 28), written ONCE over an execution environment Env and
// instantiated by the simulator (src/core/rllsc.h) and by real hardware
// (src/rt/rllsc_rt.h, over a 16-byte CMPXCHG16B word).
//
// The R-LLSC state (val, context) is stored in a *single* CAS word; memory
// is therefore exactly the encoding of the abstract state — no auxiliary
// information exists — which is why the implementation is perfect HI.
// LL, SC and RL are CAS retry loops and hence only lock-free; VL, Load and
// Store are single primitives. The retry loops use the environment's
// failure-word CAS (Env::cas returns the word it observed), so a failed
// retry costs ONE 16-byte atomic on hardware — not a CAS plus a re-read —
// and one simulator step; the sim step-exact tests pin this sequence. The interleaved-LL entry point realizes
// Algorithm 5's `‖` construction: between successive CAS attempts of a
// (possibly blocking) LL, one step of the caller-provided right-hand-side
// poll runs, and a true poll abandons the LL (leaving at most a context
// trace, which the caller's RL erases — line 18R.2).
//
// Process identities are explicit small integers (0..63) supplied by the
// caller, exactly as the paper's p_i; the simulator wrapper recovers them
// from the scheduler so existing call sites stay pid-implicit.
//
// Every entry point is a Sub coroutine: on RtEnv its frame comes from the
// per-thread frame arena (env/rt_env.h), so LL/SC/RL/VL/Load/Store cost
// zero steady-state heap allocations — the rt benches' allocs_per_op field
// pins this (docs/PERF.md).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "algo/values.h"
#include "util/bits.h"

namespace hi::algo {

template <typename Env>
class CasRllscAlg {
 public:
  using V = typename Env::Value;
  using Word = typename Env::Word;
  template <typename T>
  using Sub = typename Env::template Sub<T>;

  CasRllscAlg(typename Env::Ctx ctx, std::string name, V initial)
      : cell_(Env::make_cas(ctx, std::move(name), initial)) {}

  /// LL(O) — lines 1–6: CAS-install the caller's context bit, retrying on
  /// interference. Lock-free; may run forever under contention. A failed CAS
  /// reports the word it observed, which becomes the next attempt's
  /// expectation — one primitive per retry, no separate re-read.
  Sub<V> ll(int pid) {
    Word cur = co_await Env::cas_read(cell_);
    for (std::uint32_t attempt = 0;; ++attempt) {
      Word linked = cur;
      linked.ctx = util::set_bit(linked.ctx, bit(pid));
      const CasResult<Word> r = co_await Env::cas(cell_, cur, linked);
      if (r.installed) co_return cur.value;
      Env::backoff(attempt);  // local wait only; no step (env.h)
      cur = r.observed;
    }
  }

  /// LL with Algorithm 5's `‖` right-hand side: after every failed CAS
  /// attempt run one poll; a true poll abandons the LL and yields nullopt.
  /// `poll` is a nullary callable returning an awaitable of bool. The next
  /// attempt reuses the failed CAS's observed word (any write racing with
  /// the poll just fails that CAS, which re-observes). No Env::backoff
  /// here: a local wait before the poll would only delay noticing the bail
  /// condition (a helped response) the `‖` construction exists to catch.
  template <typename Poll>
  Sub<std::optional<V>> ll_interleaved(int pid, Poll poll) {
    Word cur = co_await Env::cas_read(cell_);
    for (;;) {
      Word linked = cur;
      linked.ctx = util::set_bit(linked.ctx, bit(pid));
      const CasResult<Word> r = co_await Env::cas(cell_, cur, linked);
      if (r.installed) co_return cur.value;
      const bool bail = co_await poll();
      if (bail) co_return std::nullopt;
      cur = r.observed;
    }
  }

  /// VL(O) — lines 12–13.
  Sub<bool> vl(int pid) {
    const Word cur = co_await Env::cas_read(cell_);
    co_return util::test_bit(cur.ctx, bit(pid));
  }

  /// SC(O, new) — lines 7–11: succeeds iff the caller is still linked.
  /// Failed CAS attempts feed their observed word into the re-check.
  Sub<bool> sc(int pid, V desired) {
    Word cur = co_await Env::cas_read(cell_);
    std::uint32_t attempt = 0;
    while (util::test_bit(cur.ctx, bit(pid))) {
      const CasResult<Word> r = co_await Env::cas(cell_, cur, Word{desired, 0});
      if (r.installed) co_return true;
      Env::backoff(attempt++);
      cur = r.observed;
    }
    co_return false;
  }

  /// RL(O) — lines 14–20: removes the caller from the context; always true.
  Sub<bool> rl(int pid) {
    Word cur = co_await Env::cas_read(cell_);
    std::uint32_t attempt = 0;
    while (util::test_bit(cur.ctx, bit(pid))) {
      Word released = cur;
      released.ctx = util::clear_bit(released.ctx, bit(pid));
      const CasResult<Word> r = co_await Env::cas(cell_, cur, released);
      if (r.installed) co_return true;
      Env::backoff(attempt++);
      cur = r.observed;
    }
    co_return true;
  }

  /// Load(O) — lines 21–22.
  Sub<V> load() {
    const Word cur = co_await Env::cas_read(cell_);
    co_return cur.value;
  }

  /// Store(O, new) — lines 23–24: unconditional, resets the context.
  Sub<bool> store(V desired) {
    const bool done = co_await Env::cas_write(cell_, Word{desired, 0});
    co_return done;
  }

  // Observer-side introspection (not steps): abstract state of the R-LLSC
  // object, which for this implementation is literally the memory word.
  V peek_value() const { return Env::peek_cas(cell_).value; }
  std::uint64_t peek_context() const { return Env::peek_cas(cell_).ctx; }
  Word peek_word() const { return Env::peek_cas(cell_); }

  /// Bytes of shared storage (one CAS cell; observer-side, the bench's
  /// bytes_per_object input).
  std::size_t memory_bytes() const { return sizeof(typename Env::CasCell); }

  bool is_lock_free() const { return Env::cas_is_lock_free(cell_); }

 private:
  static unsigned bit(int pid) { return static_cast<unsigned>(pid); }

  typename Env::CasCell cell_;
};

}  // namespace hi::algo
