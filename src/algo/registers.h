// The §4 SWSR K-valued register algorithms, written ONCE over an execution
// environment Env (src/env/env.h) and a bin-array layout policy Bins
// (env::PaddedBins / env::PackedBins — see env.h's layout commentary), and
// instantiated by both the simulator (src/core — exhaustive interleaving +
// HI checking) and real hardware (src/rt — stress tests and benchmarks).
//
//   VidyasankarAlg  — Algorithm 1 [46]: wait-free, NOT history independent.
//                     Write(v) sets A[v] and clears only *downwards*, so the
//                     array retains 1s above the current value: the memory
//                     leaks previously-written larger values even in
//                     sequential executions (Write(2);Write(1) leaves
//                     [1,1,0] where Write(1) leaves [1,0,0]).
//   LockFreeHiAlg   — Algorithms 2+3 (Theorem 9): Write additionally clears
//                     *upwards*, giving each abstract state the unique
//                     canonical representation can(v) = e_v whenever no
//                     Write is pending (state-quiescent HI). The price is
//                     the reader's progress: TryRead can chase the moving 1
//                     forever, so Read is lock-free but not wait-free.
//   WaitFreeHiAlg   — Algorithm 4 (Theorem 12): the reader announces itself
//                     via flag[1]; a writer that sees a concurrent reader
//                     helps by publishing its previous value in array B, so
//                     the reader always has a value after two failed
//                     TryReads (Lemma 10); both sides erase their footprints
//                     (Lemma 35). Quiescent HI but not state-quiescent HI —
//                     exactly the Table 1 separation (wait-free +
//                     state-quiescent HI is impossible, Corollary 18).
//
// Every upward/downward/clearing scan goes through the Bins word-scan
// library. With PaddedBins the primitive sequence is bit-for-bit the
// paper's (one binary register per step — the persisted schedule traces and
// step-count tests pin this); with PackedBins a scan costs one word load
// per 64 bins and a clearing pass one masked fetch_and per word, cutting
// the O(K) hot paths to O(K/64) while the abstract bin contents — and
// therefore every canonical-representation argument — stay identical. The
// downward confirmation scan is decomposed as iterated Bins::scan_down
// (each call stops at its first 1): the union of the calls reads every bin
// below the start exactly once, descending, reproducing the paper's loop;
// the B-scan of Algorithm 4 decomposes symmetrically over Bins::scan_up.
//
// NOTE: throughout the single-source algorithms, every co_await lands in a
// named local before being branched on (GCC 12 miscompiles awaits that
// appear directly inside if/while conditions).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "env/env.h"

namespace hi::algo {

/// Algorithm 1 [Vidyasankar].
template <typename Env, typename Bins>
class VidyasankarAlg {
 public:
  template <typename T>
  using Op = typename Env::template Op<T>;

  VidyasankarAlg(typename Env::Ctx ctx, std::uint32_t num_values,
                 std::uint32_t initial)
      : num_values_(num_values),
        a_(Bins::make(ctx, "A", num_values, initial)) {
    assert(initial >= 1 && initial <= num_values);
  }

  /// Read(): scan up to the first 1, then scan down taking any smaller 1
  /// (the shared downward confirmation pass, env::confirm_down).
  Op<std::uint32_t> read() {
    const std::uint32_t j = co_await Bins::scan_up(a_, 1);
    assert(j != 0 && "A contains no 1 — impossible in Alg 1");
    const std::uint32_t val = co_await env::confirm_down<Bins>(a_, j);
    co_return val;
  }

  /// Write(v): set A[v], then clear downwards from v-1 to 1.
  Op<std::uint32_t> write(std::uint32_t value) {
    assert(value >= 1 && value <= num_values_);
    co_await Bins::set(a_, value);
    co_await Bins::clear_down(a_, value - 1);
    co_return 0;
  }

  /// Observer-side memory image (A[1..K]); never a step of the model.
  void encode_memory(std::vector<std::uint8_t>& out) const {
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      out.push_back(Bins::peek(a_, v));
    }
  }

  std::uint32_t num_values() const { return num_values_; }
  /// Bytes of shared storage behind A (observer-side; bench provenance).
  std::size_t memory_bytes() const { return Bins::footprint_bytes(a_); }

 private:
  std::uint32_t num_values_;
  typename Bins::Array a_;
};

template <typename E>
using VidyasankarAlgPadded = VidyasankarAlg<E, env::PaddedBins<E>>;
template <typename E>
using VidyasankarAlgPacked = VidyasankarAlg<E, env::PackedBins<E>>;

/// Algorithms 2 + 3: lock-free state-quiescent-HI register.
template <typename Env, typename Bins>
class LockFreeHiAlg {
 public:
  template <typename T>
  using Op = typename Env::template Op<T>;
  template <typename T>
  using Sub = typename Env::template Sub<T>;

  LockFreeHiAlg(typename Env::Ctx ctx, std::uint32_t num_values,
                std::uint32_t initial)
      : num_values_(num_values),
        a_(Bins::make(ctx, "A", num_values, initial)) {
    assert(initial >= 1 && initial <= num_values);
  }

  /// Read(): retry TryRead until it finds a value (Algorithm 2, lines 1–4).
  /// The retry loop lives directly in the Op body (rather than in a shared
  /// Sub helper) so a Read keeps at most one helper chain (the TryRead)
  /// alive at a time — on RtEnv the whole chain then recycles through the
  /// per-thread frame arena with zero steady-state heap traffic. Step
  /// counts are unchanged: frames are never steps.
  Op<std::uint32_t> read() {
    for (;;) {
      const std::optional<std::uint32_t> val = co_await try_read();
      if (val.has_value()) co_return *val;
    }
  }

  /// Bounded-retry Read for hardware harnesses: nullopt after
  /// `max_attempts` failed TryReads (0 = retry forever, as the paper's
  /// lock-free Read does). Same flat retry-loop shape as read().
  Op<std::optional<std::uint32_t>> read_bounded(std::uint64_t max_attempts) {
    for (std::uint64_t attempt = 0;
         max_attempts == 0 || attempt < max_attempts; ++attempt) {
      const std::optional<std::uint32_t> val = co_await try_read();
      if (val.has_value()) co_return val;
    }
    co_return std::nullopt;
  }

  /// Write(v): set A[v], clear down v-1..1, then clear up v+1..K
  /// (Algorithm 2, lines 5–7). Delegates to write_sub — one extra coroutine
  /// frame, zero extra steps (frames are never steps), so persisted traces
  /// and step-count tests are unaffected.
  Op<std::uint32_t> write(std::uint32_t value) {
    const std::uint32_t echoed = co_await write_sub(value);
    co_return echoed;
  }

  /// One normalized TryRead attempt, exposed as a composable Sub for the
  /// wait-free simulation combinator (algo/wait_free_sim.h): exactly the
  /// private try_read() body, nullopt on the §4 contention failure.
  Sub<std::optional<std::uint32_t>> attempt_read() { return try_read(); }

  /// The write body as a composable Sub (the combinator's normalized write
  /// attempt — it cannot fail, so writes stay wait-free under wrapping).
  Sub<std::uint32_t> write_sub(std::uint32_t value) {
    assert(value >= 1 && value <= num_values_);
    co_await Bins::set(a_, value);
    co_await Bins::clear_down(a_, value - 1);
    co_await Bins::clear_up(a_, value + 1);
    co_return 0;
  }

  void encode_memory(std::vector<std::uint8_t>& out) const {
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      out.push_back(Bins::peek(a_, v));
    }
  }

  std::uint32_t num_values() const { return num_values_; }
  std::size_t memory_bytes() const { return Bins::footprint_bytes(a_); }

 private:
  /// TryRead (Algorithm 3): one upward scan for a 1; on success, downward
  /// confirmation scan; ⊥ (nullopt) if the whole array read as 0.
  Sub<std::optional<std::uint32_t>> try_read() {
    const std::uint32_t j = co_await Bins::scan_up(a_, 1);
    if (j == 0) co_return std::nullopt;
    const std::uint32_t val = co_await env::confirm_down<Bins>(a_, j);
    co_return val;
  }

  std::uint32_t num_values_;
  typename Bins::Array a_;
};

template <typename E>
using LockFreeHiAlgPadded = LockFreeHiAlg<E, env::PaddedBins<E>>;
template <typename E>
using LockFreeHiAlgPacked = LockFreeHiAlg<E, env::PackedBins<E>>;

/// Algorithm 4: wait-free quiescent-HI register.
template <typename Env, typename Bins>
class WaitFreeHiAlg {
 public:
  template <typename T>
  using Op = typename Env::template Op<T>;
  template <typename T>
  using Sub = typename Env::template Sub<T>;

  WaitFreeHiAlg(typename Env::Ctx ctx, std::uint32_t num_values,
                std::uint32_t initial)
      : num_values_(num_values),
        last_val_(initial),
        a_(Bins::make(ctx, "A", num_values, initial)),
        b_(Bins::make(ctx, "B", num_values, 0)),
        flags_(Bins::make(ctx, "flag", 2, 0)) {
    assert(initial >= 1 && initial <= num_values);
  }

  /// Read() — Algorithm 4, lines 1–10.
  Op<std::uint32_t> read() {
    co_await Bins::set(flags_, 1);          // line 1: announce
    std::uint32_t val = 0;                  // 0 encodes ⊥
    for (int attempt = 0; attempt < 2; ++attempt) {  // line 2
      const std::optional<std::uint32_t> got = co_await try_read();
      if (got.has_value()) {  // line 4: goto line 7
        val = *got;
        break;
      }
    }
    if (val == 0) {
      // Lines 5–6: read all of B ascending; take the *last* index seen
      // holding 1 — iterated scan_up, one full pass in union.
      std::uint32_t cur = 1;
      for (;;) {
        const std::uint32_t hit = co_await Bins::scan_up(b_, cur);
        if (hit == 0) break;
        val = hit;
        if (hit == num_values_) break;
        cur = hit + 1;
      }
      assert(val != 0 && "Lemma 10: val != ⊥ at line 7");
    }
    co_await Bins::set(flags_, 2);             // line 7
    co_await Bins::clear_up(b_, 1);            // line 8: clear B
    co_await Bins::clear(flags_, 1);           // line 9
    co_await Bins::clear(flags_, 2);
    co_return val;  // line 10
  }

  /// Write(v) — Algorithm 4, lines 11–19.
  Op<std::uint32_t> write(std::uint32_t value) {
    assert(value >= 1 && value <= num_values_);
    // Line 11: check whether B is all-zero (scan; stop at the first 1, which
    // already falsifies the condition).
    const std::uint32_t b_hit = co_await Bins::scan_up(b_, 1);
    if (b_hit == 0) {
      const std::uint8_t f1_seen = co_await Bins::read(flags_, 1);
      if (f1_seen == 1) {  // line 12: concurrent reader?
        co_await Bins::set(b_, last_val_);  // line 13: help
        // Line 14: read flag[2], then flag[1] (this order matters; Lemma 35).
        const std::uint8_t f2 = co_await Bins::read(flags_, 2);
        const std::uint8_t f1 = co_await Bins::read(flags_, 1);
        if (f2 == 1 || f1 == 0) {
          co_await Bins::clear(b_, last_val_);  // line 15
        }
      }
    }
    co_await Bins::set(a_, value);              // line 16
    co_await Bins::clear_down(a_, value - 1);   // line 17
    co_await Bins::clear_up(a_, value + 1);     // line 18
    last_val_ = value;  // line 19 (writer-local; not part of mem(C))
    co_return 0;
  }

  /// Memory image in mem(C) layout order: A[1..K], B[1..K], flag[1..2].
  void encode_memory(std::vector<std::uint8_t>& out) const {
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      out.push_back(Bins::peek(a_, v));
    }
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      out.push_back(Bins::peek(b_, v));
    }
    out.push_back(Bins::peek(flags_, 1));
    out.push_back(Bins::peek(flags_, 2));
  }

  std::uint32_t num_values() const { return num_values_; }
  std::size_t memory_bytes() const {
    return Bins::footprint_bytes(a_) + Bins::footprint_bytes(b_) +
           Bins::footprint_bytes(flags_);
  }

 private:
  /// TryRead — Algorithm 3, shared with Algorithm 2.
  Sub<std::optional<std::uint32_t>> try_read() {
    const std::uint32_t j = co_await Bins::scan_up(a_, 1);
    if (j == 0) co_return std::nullopt;
    const std::uint32_t val = co_await env::confirm_down<Bins>(a_, j);
    co_return val;
  }

  std::uint32_t num_values_;
  std::uint32_t last_val_;  // the writer's persistent local variable
  typename Bins::Array a_;
  typename Bins::Array b_;
  typename Bins::Array flags_;
};

template <typename E>
using WaitFreeHiAlgPadded = WaitFreeHiAlg<E, env::PaddedBins<E>>;
template <typename E>
using WaitFreeHiAlgPacked = WaitFreeHiAlg<E, env::PackedBins<E>>;

}  // namespace hi::algo
