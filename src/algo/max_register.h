// Wait-free state-quiescent-HI max register from binary registers (§5.1),
// written ONCE over an execution environment Env (src/env/env.h) and
// instantiated by the simulator (src/core/max_register.h) and by real
// hardware (src/rt/max_register_rt.h).
//
// The paper uses the max register to illustrate the state-connectivity
// requirement of class C_t: its state graph is not strongly connected (once
// the maximum reaches m it can never drop below m), so Theorem 17 does not
// apply — and indeed "a simple modification to Algorithm 1, where the writer
// only writes to A if the new value is bigger than all the values it has
// written in the past, results in a wait-free state-quiescent HI max
// register from binary registers."
//
// With monotone writes, Algorithm 1's downward clearing already erases the
// previous maximum's bit, so at any state-quiescent point A = e_m for the
// current maximum m: the canonical representation. ReadMax is Algorithm 1's
// read, wait-free because the cell holding the maximum is never cleared.
// An absorbed WriteMax (v ≤ previous maximum, tracked writer-locally) takes
// ZERO shared-memory steps: it must leave no footprint, or the footprint
// would reveal that the absorbed write happened. On RtEnv the Op frame
// itself is arena-recycled (env/rt_env.h), so an absorbed write is also
// heap-allocation-free — the bench's absorbed_write row measures pure
// coroutine overhead, not the allocator.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "env/env.h"

namespace hi::algo {

/// §5.1's monotone-write modification of Algorithm 1. SWSR, like the §4
/// registers: `writer_pid`/`reader_pid` pin the two roles (the paper's p_w
/// and p_r); the asserts document the restriction. Scans go through the
/// Bins layout policy: bit-at-a-time with env::PaddedBins (the paper's
/// primitive sequence), one word load / masked fetch_and per 64 bins with
/// env::PackedBins (O(K/64) hot paths, same abstract bin contents — the
/// canonical representation can(m) = e_m is layout-independent).
template <typename Env, typename Bins>
class HiMaxRegisterAlg {
 public:
  template <typename T>
  using Op = typename Env::template Op<T>;

  HiMaxRegisterAlg(typename Env::Ctx ctx, std::uint32_t num_values,
                   std::uint32_t initial, int writer_pid, int reader_pid)
      : num_values_(num_values),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid),
        local_max_(initial),
        a_(Bins::make(ctx, "A", num_values, initial)) {
    assert(initial >= 1 && initial <= num_values);
  }

  /// ReadMax: Algorithm 1's Read. The up-scan terminates because the bit of
  /// the current maximum is never cleared; the down-scan can only land on a
  /// larger-or-equal value (cells below the max are always 0 at rest, and a
  /// concurrent monotone write only moves the 1 upward).
  Op<std::uint32_t> read_max(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    const std::uint32_t j = co_await Bins::scan_up(a_, 1);
    assert(j != 0 && "no 1 in A — impossible");
    const std::uint32_t val = co_await env::confirm_down<Bins>(a_, j);
    co_return val;
  }

  /// WriteMax(v): absorbed unless v exceeds every previously written value
  /// (tracked in the writer's local state); then Algorithm 1's Write, whose
  /// downward clearing pass erases the previous maximum's bit.
  Op<std::uint32_t> write_max(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    (void)pid;
    assert(value >= 1 && value <= num_values_);
    if (value <= local_max_) co_return 0;  // absorbed: no memory footprint
    local_max_ = value;
    co_await Bins::set(a_, value);
    co_await Bins::clear_down(a_, value - 1);
    co_return 0;
  }

  /// Observer-side memory image (A[1..K]); never a step of the model.
  void encode_memory(std::vector<std::uint8_t>& out) const {
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      out.push_back(Bins::peek(a_, v));
    }
  }

  std::uint32_t num_values() const { return num_values_; }
  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }
  /// Bytes of shared storage behind A (observer-side; bench provenance).
  std::size_t memory_bytes() const { return Bins::footprint_bytes(a_); }

 private:
  std::uint32_t num_values_;
  int writer_pid_;
  int reader_pid_;
  std::uint32_t local_max_;  // writer-local; not part of mem(C)
  typename Bins::Array a_;
};

template <typename E>
using HiMaxRegisterAlgPadded = HiMaxRegisterAlg<E, env::PaddedBins<E>>;
template <typename E>
using HiMaxRegisterAlgPacked = HiMaxRegisterAlg<E, env::PackedBins<E>>;

}  // namespace hi::algo
