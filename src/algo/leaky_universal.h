// Non-history-independent universal construction baseline (experiment E13),
// written ONCE over an execution environment Env (src/env/env.h) and
// instantiated by the simulator (src/baseline/leaky_universal.h) and by real
// hardware (rt::RtLeakyUniversal in src/rt/baselines_rt.h).
//
// Prior universal constructions [Herlihy '90/'93; Fatourou–Kallimanis '11]
// are linearizable and wait-free but leak history: "the implementation in
// [27] explicitly keeps track of all the operations that have ever been
// invoked, while the implementations in [26, 28] store information that
// depends on the sequence of applied operations … [19] keeps information
// about completed operations, such as their responses, and is therefore not
// history independent" (§6 related work).
//
// This baseline follows the Fatourou–Kallimanis shape over the Env base
// objects: one CAS word (Env::CasCell) holds the abstract state, a version
// counter and the record of the most recently applied operation
// ⟨pid, seq, rsp⟩; per-process announce and result tables (Env::WordArray)
// are never cleared. It is linearizable and wait-free (helping with
// priority rotation, like Algorithm 5), but at quiescence the memory still
// reveals:
//   * the total number of state-changing operations ever applied (version),
//   * each process's most recent operation (announce, never cleared),
//   * each process's most recent response (result table, never cleared).
// The HI checker rejects it on exactly these fields; Algorithm 5 passes the
// same workloads.
//
// Packing limits (both backends, for bit-exact sim↔rt parity of the decoded
// fields): encoded abstract states ≤ 32 bits, versions and per-process
// sequence numbers ≤ 24 bits, responses ≤ 32 bits, ≤ 64 processes.
//
// The body spawns no helper coroutines — apply() forwards to the
// apply_read_only/apply_update Op without an extra frame, and the retry
// loops are plain loops over Env primitives — so on RtEnv each operation
// is a single arena-recycled frame: zero steady-state heap allocations,
// like the HI construction it is benchmarked against.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "algo/values.h"
#include "spec/spec.h"
#include "util/padded.h"

namespace hi::algo {

/// Packing of the head tuple ⟨state, version, record⟩ into the environment's
/// CAS word. `record` is the last applied operation's ⟨pid, seq, rsp⟩
/// (pid bits 56–61, seq bits 32–55, rsp bits 0–31; 0 before any operation).
/// The simulator's two-word value carries ⟨state|version, record⟩ in
/// ⟨lo, hi⟩ with the context word unused; the hardware word carries
/// state|version in the value half and the record in the context half of
/// the same 16-byte CAS word.
template <typename W>
struct FkHeadCodec;

template <>
struct FkHeadCodec<CtxWord<RllscValue>> {
  using W = CtxWord<RllscValue>;

  static RllscValue initial(std::uint64_t state) { return RllscValue{state, 0}; }
  static W make(std::uint64_t state, std::uint64_t version,
                std::uint64_t record) {
    return W{{state | (version << 32), record}, 0};
  }
  static std::uint64_t state(const W& w) { return w.value.lo & 0xffffffffu; }
  static std::uint64_t version(const W& w) { return w.value.lo >> 32; }
  static std::uint64_t record(const W& w) { return w.value.hi; }
};

template <>
struct FkHeadCodec<CtxWord<std::uint64_t>> {
  using W = CtxWord<std::uint64_t>;

  static std::uint64_t initial(std::uint64_t state) { return state; }
  static W make(std::uint64_t state, std::uint64_t version,
                std::uint64_t record) {
    return W{state | (version << 32), record};
  }
  static std::uint64_t state(const W& w) { return w.value & 0xffffffffu; }
  static std::uint64_t version(const W& w) { return w.value >> 32; }
  static std::uint64_t record(const W& w) { return w.ctx; }
};

template <typename Env, spec::SequentialSpec S>
class LeakyUniversalAlg {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;
  using Word = typename Env::Word;
  using Codec = FkHeadCodec<Word>;
  template <typename T>
  using OpT = typename Env::template Op<T>;

  LeakyUniversalAlg(typename Env::Ctx ctx, const S& spec, int num_processes)
      : spec_(spec),
        n_(num_processes),
        head_(Env::make_cas(
            ctx, "fk-head",
            Codec::initial(spec.encode_state(spec.initial_state())))),
        announce_(Env::make_word_array(ctx, "fk-announce",
                                      static_cast<std::uint32_t>(num_processes),
                                      0)),
        result_(Env::make_word_array(ctx, "fk-result",
                                     static_cast<std::uint32_t>(num_processes),
                                     0)) {
    assert(num_processes >= 1 && num_processes <= 64);
    assert(spec.encode_state(spec.initial_state()) <= 0xffffffffull);
    local_seq_.resize(n_);
    priority_.resize(n_);
    for (int i = 0; i < n_; ++i) {
      *local_seq_[i] = 0;
      *priority_[i] = i;
    }
  }

  OpT<Resp> apply(int pid, Op op) {
    if (spec_.is_read_only(op)) return apply_read_only(pid, op);
    return apply_update(pid, op);
  }

  /// Read-only operations evaluate Δ against the head's state locally —
  /// a single Read, no shared-memory footprint.
  OpT<Resp> apply_read_only(int pid, Op op) {
    (void)pid;
    const Word head = co_await Env::cas_read(head_);
    co_return spec_.apply(spec_.decode_state(Codec::state(head)), op).second;
  }

  /// Update operations: announce (never cleared — the leak), then help/apply
  /// with priority rotation until the own result appears in the result
  /// table, persisting each installed head record on the way.
  OpT<Resp> apply_update(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    const std::uint64_t seq = ++*local_seq_[pid];
    assert(seq <= 0xffffffu);
    co_await Env::write_word(announce_, pid,
                             (seq << 32) | spec_.encode_op(op));

    for (;;) {
      const Word head = co_await Env::cas_read(head_);
      // Persist the previously applied op's result before building on it.
      if (Codec::version(head) > 0) {  // version > 0: a last-applied record
        const std::uint64_t record = Codec::record(head);
        const auto last_pid = static_cast<std::uint32_t>((record >> 56) & 0x3fu);
        const std::uint64_t last_seq = (record >> 32) & 0xffffffu;
        const std::uint64_t persisted =
            (last_seq << 32) | (record & 0xffffffffu);
        // Monotone CAS: a plain guarded store would race with a helper
        // persisting a NEWER record, rolling result[] backwards and enabling
        // a double application — exactly the class of subtlety Algorithm 5's
        // LL/SC response handshake is designed around. Failure-word CAS:
        // each failed attempt hands back the record it lost to.
        std::uint64_t existing = co_await Env::read_word(result_, last_pid);
        while ((existing >> 32) < last_seq) {
          const CasResult<std::uint64_t> r =
              co_await Env::cas_word(result_, last_pid, existing, persisted);
          if (r.installed) break;
          existing = r.observed;
        }
      }
      const std::uint64_t mine = co_await Env::read_word(result_, pid);
      if ((mine >> 32) == seq) {
        co_return spec_.decode_resp(
            static_cast<std::uint32_t>(mine & 0xffffffffu));
      }

      // Pick a target: the rotating candidate if it has an unapplied
      // announcement, else self. "Applied" means either persisted in the
      // result table or recorded in the head we just read.
      int target = *priority_[pid];
      std::uint64_t ann = co_await Env::read_word(
          announce_, static_cast<std::uint32_t>(target));
      const std::uint64_t target_done =
          (co_await Env::read_word(result_, static_cast<std::uint32_t>(target))) >>
          32;
      if (ann == 0 || (ann >> 32) <= target_done ||
          in_head(head, target, ann >> 32)) {
        target = pid;
        ann = (seq << 32) | spec_.encode_op(op);
        const std::uint64_t my_done =
            (co_await Env::read_word(result_, pid)) >> 32;
        if (my_done >= seq || in_head(head, pid, seq)) continue;
      }

      const std::uint64_t ann_seq = ann >> 32;
      const auto [next_state, rsp] = spec_.apply(
          spec_.decode_state(Codec::state(head)),
          spec_.decode_op(static_cast<std::uint32_t>(ann & 0xffffffffu)));
      assert(spec_.encode_state(next_state) <= 0xffffffffull);
      const std::uint64_t record =
          (static_cast<std::uint64_t>(target) << 56) |
          ((ann_seq & 0xffffffu) << 32) | spec_.encode_resp(rsp);
      const Word desired = Codec::make(spec_.encode_state(next_state),
                                       Codec::version(head) + 1, record);
      const CasResult<Word> r = co_await Env::cas(head_, head, desired);
      if (r.installed) *priority_[pid] = (*priority_[pid] + 1) % n_;
    }
  }

  // ---- Observer-side introspection (test oracles; never takes steps) ----

  std::uint64_t head_state_encoded() const {
    return Codec::state(Env::peek_cas(head_));
  }
  /// The leak, quantified: total state-changing operations ever applied.
  std::uint64_t version() const { return Codec::version(Env::peek_cas(head_)); }
  /// The per-process leaks: last announced op / last persisted response.
  std::uint64_t peek_announce(int pid) const {
    return Env::peek_word(announce_, static_cast<std::uint32_t>(pid));
  }
  std::uint64_t peek_result(int pid) const {
    return Env::peek_word(result_, static_cast<std::uint32_t>(pid));
  }

  int num_processes() const { return n_; }
  /// Bytes of shared storage (head + announce + result tables;
  /// observer-side, the bench's bytes_per_object input — sizeof tracks the
  /// cell layouts, so a future cell change is reflected automatically).
  std::size_t memory_bytes() const {
    return sizeof(typename Env::CasCell) +
           (announce_.size() + result_.size()) *
               sizeof(typename Env::WordArray::value_type);
  }

 private:
  /// Does the head we read already record ⟨j, seq⟩ (or newer) as applied?
  static bool in_head(const Word& head, int pid, std::uint64_t seq) {
    if (Codec::version(head) == 0) return false;
    const std::uint64_t record = Codec::record(head);
    return static_cast<int>((record >> 56) & 0x3fu) == pid &&
           ((record >> 32) & 0xffffffu) >= seq;
  }

  const S& spec_;
  int n_;
  typename Env::CasCell head_;
  typename Env::WordArray announce_;
  typename Env::WordArray result_;
  // Per-process local variables; padded so hardware threads do not
  // false-share (a scheduler-local no-op in the simulator).
  std::vector<util::Padded<std::uint64_t>> local_seq_;
  std::vector<util::Padded<int>> priority_;
};

}  // namespace hi::algo
