// Sharded perfect-HI set: a domain of millions of keys striped over N
// independent multi-word §5.1 sets (algo/hi_set.h) behind one linearizable
// facade. Written ONCE over an execution environment Env (src/env/env.h)
// and instantiated by the simulator (src/core/sharded_set.h), by real
// hardware (src/rt/sharded_set_rt.h) and by the schedule-replay backend
// (src/replay/replay_objects.h).
//
// Why the composition is linearizable: the shard map is a PURE FUNCTION of
// the key — shard_of(k) and local_of(k) depend only on (k, domain, shard
// count, placement), all fixed at construction — so every operation on key
// k touches exactly one shard, and distinct keys mapped to distinct shards
// commute at the abstract level. Each facade operation IS the underlying
// shard operation (the facade forwards the shard's Op coroutine without
// adding a step), so it linearizes at that operation's single primitive
// step; any interleaving of facade operations linearizes by the total order
// of those per-shard primitive steps.
//
// Why the composition stays perfectly HI (hence state-quiescent HI): the
// abstract state of the sharded set is the membership set M ⊆ {1..domain}.
// Each shard s's abstract state is the restriction of M to the keys mapped
// to s — a pure function of M, because the shard map is a pure function of
// the key. Each shard is the §5.1 set, whose memory is EXACTLY its
// membership bitmap after every primitive (perfect HI, Definition 5). The
// composed memory is the concatenation of the shard bitmaps in shard order
// — a pure function of M — so two operation sequences reaching the same
// abstract state leave byte-identical memory at every configuration, not
// just quiescent ones. No canonicalization or helping is needed: the
// composition inherits perfect HI because it adds NO shared state of its
// own (no routing tables, no counters — the shard map lives in code, not
// memory). Proposition 6 also transfers: adjacent abstract states differ
// in one key, hence in one bin of one shard, i.e. one base object.
//
// Caveat (Theorem 17, per shard): a shard spanning ≤ 64 bins is one packed
// word, so a TryRead-style scan snapshots the whole shard in one load and
// the reader-starvation adversary of Thm 17 cannot engage; a shard spanning
// MULTIPLE words (the whole point of the multi-word lift) re-exposes the
// padded-era granularity between words — scans observe words at different
// steps. Membership ops are immune (single primitive), but snapshot_members
// is a per-word-linearized audit, not an atomic snapshot (see
// docs/PAPER_MAP.md, deviation note).
//
// Placement knob: the element→word placement turns the
// false-sharing-vs-word-contention tradeoff measured for PR 5's packed
// layout (docs/PERF.md) into a tunable:
//
//   kBlocked — shard s owns a contiguous key range; neighbouring keys share
//              a shard AND a word, so workloads hammering adjacent keys
//              serialize on one fetch_or/fetch_and word but audits stream
//              contiguous lines (and emit globally sorted members);
//   kStriped — key k lives in shard (k-1) % N; neighbouring keys land in
//              DIFFERENT shards (different words, different cache lines),
//              spreading hot adjacent keys across the whole store at the
//              cost of audit order being interleaved across shards.
//
// Both maps are pure functions of the key, so the HI argument above is
// placement-independent; only the memory LAYOUT (which canonical image
// represents M) changes, exactly as padded-vs-packed changed it.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "algo/hi_set.h"
#include "env/env.h"
#include "util/bits.h"

namespace hi::algo {

/// Element→shard/word placement policy (see header comment).
enum class ShardPlacement : std::uint8_t {
  kBlocked,  // contiguous key ranges: neighbours share words
  kStriped,  // round-robin: neighbours spread across shards
};

template <typename Env, typename Bins>
class ShardedHiSet {
 public:
  template <typename T>
  using Op = typename Env::template Op<T>;
  using Shard = HiSetAlg<Env, Bins>;

  /// `initial_words`: flat membership bitmap over the GLOBAL key space
  /// (bit k-1 = key k), scattered to the per-shard bitmaps through the
  /// placement map at construction. Shard s's cells are labelled
  /// "S<s>" on the registering backends; shards are constructed in shard
  /// order, so object ids line up across backends for parity/replay.
  ShardedHiSet(typename Env::Ctx ctx, std::uint32_t domain,
               std::uint32_t shard_count,
               ShardPlacement placement = ShardPlacement::kBlocked,
               std::span<const std::uint64_t> initial_words = {})
      : domain_(domain),
        shard_count_(shard_count),
        placement_(placement),
        base_(domain / shard_count),
        rem_(domain % shard_count) {
    assert(domain >= 1 && shard_count >= 1 && shard_count <= domain);
    shards_.reserve(shard_count);
    std::vector<std::uint64_t> init;
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      const std::uint32_t size = shard_domain(s);
      init.assign(util::bin_words(size), 0);
      if (!initial_words.empty()) {
        for (std::uint32_t local = 1; local <= size; ++local) {
          if (util::bin_test(initial_words, global_key(s, local))) {
            util::bin_set(init, local);
          }
        }
      }
      const std::string prefix = "S" + std::to_string(s);
      shards_.emplace_back(ctx, size,
                           std::span<const std::uint64_t>(init),
                           prefix.c_str());
    }
  }

  /// Single-word convenience constructor (≤64-key domains — the spec-driven
  /// harness sizes; larger domains simply start with keys 65+ absent).
  ShardedHiSet(typename Env::Ctx ctx, std::uint32_t domain,
               std::uint32_t shard_count, ShardPlacement placement,
               std::uint64_t initial_bits)
      : ShardedHiSet(ctx, domain, shard_count, placement,
                     std::span<const std::uint64_t>(&initial_bits, 1)) {}

  // Facade operations forward the owning shard's Op coroutine WITHOUT a
  // wrapper coroutine: zero extra frames, zero extra steps — an operation
  // on the sharded store costs exactly what it costs on the single set
  // (one primitive), which is what keeps the rt rows allocation-free and
  // the linearization-point argument trivial.

  /// Insert(k): one blind fetch_or in shard shard_of(k).
  Op<bool> insert(std::uint32_t key) {
    assert(key >= 1 && key <= domain_);
    return shards_[shard_of(key)].insert(local_of(key));
  }
  /// Remove(k): one blind fetch_and in shard shard_of(k).
  Op<bool> remove(std::uint32_t key) {
    assert(key >= 1 && key <= domain_);
    return shards_[shard_of(key)].remove(local_of(key));
  }
  /// Lookup(k): one word load in shard shard_of(k).
  Op<bool> lookup(std::uint32_t key) {
    assert(key >= 1 && key <= domain_);
    return shards_[shard_of(key)].lookup(local_of(key));
  }

  /// Audit(): enumerate the whole store's members via per-shard word scans
  /// (HiSetAlg::snapshot_members semantics per shard — one word load per 64
  /// bins plus one reload per extra member sharing a word). Appends GLOBAL
  /// keys to `out`, per-shard ascending: globally sorted under kBlocked,
  /// interleaved across shards under kStriped. Per-word linearized, not an
  /// atomic snapshot (Thm 17 caveat in the header comment). Caller reserves
  /// `out` capacity to keep rt paths allocation-free.
  Op<std::uint32_t> snapshot_members(std::vector<std::uint32_t>& out) {
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
      const std::uint32_t limit = shards_[s].domain();
      std::uint32_t v = co_await shards_[s].next_member(1);
      while (v != 0) {
        out.push_back(global_key(s, v));
        if (v >= limit) break;
        v = co_await shards_[s].next_member(v + 1);
      }
    }
    co_return static_cast<std::uint32_t>(out.size());
  }

  // ---- the shard map: pure functions of (key, construction parameters) ----

  std::uint32_t shard_of(std::uint32_t key) const {
    const std::uint32_t k0 = key - 1;
    if (placement_ == ShardPlacement::kStriped) return k0 % shard_count_;
    // Blocked: the first rem_ shards hold base_+1 keys, the rest base_.
    const std::uint64_t big = std::uint64_t{rem_} * (base_ + 1);
    return k0 < big
               ? k0 / (base_ + 1)
               : rem_ + static_cast<std::uint32_t>((k0 - big) / base_);
  }
  std::uint32_t local_of(std::uint32_t key) const {
    const std::uint32_t k0 = key - 1;
    if (placement_ == ShardPlacement::kStriped) {
      return k0 / shard_count_ + 1;
    }
    const std::uint64_t big = std::uint64_t{rem_} * (base_ + 1);
    return (k0 < big ? k0 % (base_ + 1)
                     : static_cast<std::uint32_t>((k0 - big) % base_)) +
           1;
  }
  /// Inverse of (shard_of, local_of).
  std::uint32_t global_key(std::uint32_t shard, std::uint32_t local) const {
    if (placement_ == ShardPlacement::kStriped) {
      return (local - 1) * shard_count_ + shard + 1;
    }
    return shard * base_ + std::min(shard, rem_) + local;
  }
  /// Keys owned by shard s (≥ 1 for every shard, since shard_count ≤
  /// domain).
  std::uint32_t shard_domain(std::uint32_t s) const {
    if (placement_ == ShardPlacement::kStriped) {
      return (domain_ - 1 - s) / shard_count_ + 1;
    }
    return base_ + (s < rem_ ? 1 : 0);
  }

  /// Observer-side memory image: shard bitmaps concatenated in shard order
  /// (each shard contributes its S[1..size] bins) — the canonical
  /// representation the HI argument is about. Never a step of the model.
  void encode_memory(std::vector<std::uint8_t>& out) const {
    for (const Shard& shard : shards_) shard.encode_memory(out);
  }

  std::uint32_t domain() const { return domain_; }
  std::uint32_t shard_count() const { return shard_count_; }
  ShardPlacement placement() const { return placement_; }
  /// Bytes of shared storage across all shards (observer-side; the bench's
  /// bytes_per_object input — ~domain/8 plus per-shard tail-word rounding).
  std::size_t memory_bytes() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.memory_bytes();
    return total;
  }

 private:
  std::uint32_t domain_;
  std::uint32_t shard_count_;
  ShardPlacement placement_;
  std::uint32_t base_;  // blocked placement: keys per small shard
  std::uint32_t rem_;   // blocked placement: number of base_+1-sized shards
  std::vector<Shard> shards_;
};

template <typename E>
using ShardedHiSetPacked = ShardedHiSet<E, env::PackedBins<E>>;

}  // namespace hi::algo
