// Wait-free perfect-HI set over {1..t} from t binary registers (§5.1),
// written ONCE over an execution environment Env (src/env/env.h) and
// instantiated by the simulator (src/core/hi_set.h) and by real hardware
// (src/rt/hi_set_rt.h).
//
// The set is the paper's example of an object escaping class C_t despite
// having 2^t states: its operations return only success/failure, so no
// single operation distinguishes t states, and the impossibility result
// does not apply. "There is a simple wait-free perfect HI implementation …
// we simply represent the set as an array S of length t, with S[i] = 1 if
// and only if element i is in the set, with the obvious implementation."
//
// Every operation is a single primitive, so every configuration's memory is
// exactly the membership bitmap of the current abstract state: perfect HI
// per Definition 5 (and trivially consistent with Proposition 6 — adjacent
// states differ in exactly one base object). Fully multi-writer/multi-reader
// and wait-free. Each operation spawns exactly one Op coroutine and no
// helpers; on RtEnv that single frame recycles through the per-thread frame
// arena (env/rt_env.h), so the hardware cost is one padded atomic access
// and zero steady-state heap allocations.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "env/env.h"

namespace hi::algo {

template <typename Env, typename Bins>
class HiSetAlg {
 public:
  template <typename T>
  using Op = typename Env::template Op<T>;

  /// `initial_bits`: membership bitmap, bit (v-1) set <=> v initially in the
  /// set — hence the Bins::make_bits factory rather than the registers'
  /// one-hot initialization.
  ///
  /// Layouts: with env::PaddedBins every element is its own padded cell
  /// (disjoint elements never share a cache line); with env::PackedBins the
  /// whole set is ONE word whose value IS the membership bitmap — still one
  /// primitive per operation, still perfect HI (the memory representation
  /// is exactly the abstract state, per Definition 5; adjacent states
  /// differ in one base object, consistent with Proposition 6), but
  /// concurrent writers to different elements now contend on one word
  /// (the padded-vs-packed tradeoff, docs/PERF.md).
  HiSetAlg(typename Env::Ctx ctx, std::uint32_t domain,
           std::uint64_t initial_bits)
      : domain_(domain),
        s_(Bins::make_bits(ctx, "S", domain, initial_bits)) {
    assert(domain >= 1 && domain <= 64);
  }

  /// Insert(v): one blind set of S[v] (a fetch_or when packed).
  Op<bool> insert(std::uint32_t value) {
    assert(value >= 1 && value <= domain_);
    co_await Bins::set(s_, value);
    co_return true;
  }
  /// Remove(v): one blind clear of S[v] (a fetch_and when packed).
  Op<bool> remove(std::uint32_t value) {
    assert(value >= 1 && value <= domain_);
    co_await Bins::clear(s_, value);
    co_return true;
  }
  /// Lookup(v): one read of S[v] (a word load when packed).
  Op<bool> lookup(std::uint32_t value) {
    assert(value >= 1 && value <= domain_);
    const std::uint8_t bit = co_await Bins::read(s_, value);
    co_return bit == 1;
  }

  /// Observer-side memory image (S[1..t]); never a step of the model.
  void encode_memory(std::vector<std::uint8_t>& out) const {
    for (std::uint32_t v = 1; v <= domain_; ++v) {
      out.push_back(Bins::peek(s_, v));
    }
  }

  std::uint32_t domain() const { return domain_; }
  /// Bytes of shared storage behind S (observer-side; bench provenance).
  std::size_t memory_bytes() const { return Bins::footprint_bytes(s_); }

 private:
  std::uint32_t domain_;
  typename Bins::Array s_;
};

template <typename E>
using HiSetAlgPadded = HiSetAlg<E, env::PaddedBins<E>>;
template <typename E>
using HiSetAlgPacked = HiSetAlg<E, env::PackedBins<E>>;

}  // namespace hi::algo
