// Wait-free perfect-HI set over {1..t} from t binary registers (§5.1),
// written ONCE over an execution environment Env (src/env/env.h) and
// instantiated by the simulator (src/core/hi_set.h) and by real hardware
// (src/rt/hi_set_rt.h).
//
// The set is the paper's example of an object escaping class C_t despite
// having 2^t states: its operations return only success/failure, so no
// single operation distinguishes t states, and the impossibility result
// does not apply. "There is a simple wait-free perfect HI implementation …
// we simply represent the set as an array S of length t, with S[i] = 1 if
// and only if element i is in the set, with the obvious implementation."
//
// Every operation is a single primitive, so every configuration's memory is
// exactly the membership bitmap of the current abstract state: perfect HI
// per Definition 5 (and trivially consistent with Proposition 6 — adjacent
// states differ in exactly one base object). Fully multi-writer/multi-reader
// and wait-free. Each operation spawns exactly one Op coroutine and no
// helpers; on RtEnv that single frame recycles through the per-thread frame
// arena (env/rt_env.h), so the hardware cost is one padded atomic access
// and zero steady-state heap allocations.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "env/env.h"

namespace hi::algo {

template <typename Env, typename Bins>
class HiSetAlg {
 public:
  template <typename T>
  using Op = typename Env::template Op<T>;

  /// `initial_words`: membership bitmap, bit (v-1) of the flat multi-word
  /// bitmap set <=> v initially in the set — hence the Bins::make_bits
  /// factory rather than the registers' one-hot initialization. The domain
  /// is unbounded (word v/64 is addressed directly; `util/bits.h` is the
  /// single source of the geometry).
  ///
  /// Layouts: with env::PaddedBins every element is its own padded cell
  /// (disjoint elements never share a cache line); with env::PackedBins the
  /// whole set is ceil(domain/64) words whose values ARE the membership
  /// bitmap — still one primitive per operation, still perfect HI (the
  /// memory representation is exactly the abstract state, per Definition 5;
  /// adjacent states differ in one base object, consistent with
  /// Proposition 6), but concurrent writers to elements sharing a word now
  /// contend on that word (the padded-vs-packed tradeoff, docs/PERF.md).
  /// `prefix` names the backing cells on the registering backends (the
  /// sharded facade labels each shard's array distinctly: "S0", "S1", …).
  HiSetAlg(typename Env::Ctx ctx, std::uint32_t domain,
           std::span<const std::uint64_t> initial_words,
           const char* prefix = "S")
      : domain_(domain),
        s_(Bins::make_bits(ctx, prefix, domain, initial_words)) {
    assert(domain >= 1);
  }

  /// Single-word convenience constructor (source compatibility for ≤64-bin
  /// call sites; with domain > 64 the remaining bins start 0).
  HiSetAlg(typename Env::Ctx ctx, std::uint32_t domain,
           std::uint64_t initial_bits)
      : HiSetAlg(ctx, domain,
                 std::span<const std::uint64_t>(&initial_bits, 1)) {}

  /// Insert(v): one blind set of S[v] (a fetch_or when packed).
  Op<bool> insert(std::uint32_t value) {
    assert(value >= 1 && value <= domain_);
    co_await Bins::set(s_, value);
    co_return true;
  }
  /// Remove(v): one blind clear of S[v] (a fetch_and when packed).
  Op<bool> remove(std::uint32_t value) {
    assert(value >= 1 && value <= domain_);
    co_await Bins::clear(s_, value);
    co_return true;
  }
  /// Lookup(v): one read of S[v] (a word load when packed).
  Op<bool> lookup(std::uint32_t value) {
    assert(value >= 1 && value <= domain_);
    const std::uint8_t bit = co_await Bins::read(s_, value);
    co_return bit == 1;
  }

  /// First member ≥ `from`, else 0 — Bins::scan_up forwarded without an
  /// extra coroutine frame: one word load per 64 bins when packed, one bit
  /// read per bin when padded. The building block of snapshot_members and
  /// of the sharded facade's audit scan (algo/sharded_set.h).
  typename Env::template Sub<std::uint32_t> next_member(std::uint32_t from) {
    return Bins::scan_up(s_, from);
  }

  /// Snapshot(): enumerate the members ascending via iterated word scans —
  /// one word load per 64 bins plus one reload per extra member sharing a
  /// word (packed), one bit read per bin (padded). Each load is a single
  /// primitive step, so the scan is NOT an atomic multi-word snapshot: it
  /// observes every concurrently-quiescent member and linearizes per-word.
  /// Appends to `out` (caller reserves capacity to keep rt paths
  /// allocation-free); returns the member count.
  Op<std::uint32_t> snapshot_members(std::vector<std::uint32_t>& out) {
    std::uint32_t v = co_await Bins::scan_up(s_, 1);
    while (v != 0) {
      out.push_back(v);
      if (v >= domain_) break;
      v = co_await Bins::scan_up(s_, v + 1);
    }
    co_return static_cast<std::uint32_t>(out.size());
  }

  /// Observer-side memory image (S[1..t]); never a step of the model.
  void encode_memory(std::vector<std::uint8_t>& out) const {
    for (std::uint32_t v = 1; v <= domain_; ++v) {
      out.push_back(Bins::peek(s_, v));
    }
  }

  std::uint32_t domain() const { return domain_; }
  /// Bytes of shared storage behind S (observer-side; bench provenance).
  std::size_t memory_bytes() const { return Bins::footprint_bytes(s_); }

 private:
  std::uint32_t domain_;
  typename Bins::Array s_;
};

template <typename E>
using HiSetAlgPadded = HiSetAlg<E, env::PaddedBins<E>>;
template <typename E>
using HiSetAlgPacked = HiSetAlg<E, env::PackedBins<E>>;

}  // namespace hi::algo
