// Strawman "state-quiescent HI queue with Peek" from binary registers — the
// candidate that Theorem 20 (§5.4 / Appendix C) dooms — written ONCE over an
// execution environment Env (src/env/env.h) and instantiated by the
// simulator (src/baseline/strawman_queue.h) and by the schedule-replay
// backend (env/replay_env.h), so the Theorem 20 adversary's starvation
// schedules replay over hardware atomics (tests/test_replay_adversary.cpp).
//
// Single-mutator queue over domain {1..t} with a front indicator kept in a
// one-hot binary array F (slot v+1 ⇔ front element v; slot 1 ⇔ empty) and
// the queue contents mirrored canonically into per-slot bit-planes. Every
// state-changing operation rewrites memory to the canonical encoding of the
// new state (set-the-new-front-then-clear-the-old, Algorithm 2 style), so
// the implementation is state-quiescent HI. Enqueue/Dequeue are wait-free.
// Peek, however, must chase the one-hot front bit across F — and the
// representative-state adversary (S(i1,i2) walks, Lemma 38) keeps the bit
// forever one step ahead of the scan: Peek is only lock-free, demonstrating
// concretely that the wait-free + state-quiescent-HI combination is
// unattainable from base objects with fewer than t+1 states.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace hi::algo {

template <typename Env>
class StrawmanQueueAlg {
 public:
  template <typename T>
  using Op = typename Env::template Op<T>;
  template <typename T>
  using Sub = typename Env::template Sub<T>;

  StrawmanQueueAlg(typename Env::Ctx ctx, std::uint32_t domain,
                   std::size_t capacity)
      : domain_(domain),
        capacity_(capacity),
        // F slot v+1 holds the paper's F[v]; slot 1 (= F[0], "empty") starts
        // at 1. Registration order fixes the mem(C) layout: F first, then
        // the slot bit-planes.
        front_(Env::make_bin_array(ctx, "F", domain + 1, 1)) {
    bits_per_slot_ = 1;
    while ((1u << bits_per_slot_) < domain_ + 1) ++bits_per_slot_;
    slots_.reserve(capacity_);
    for (std::size_t s = 0; s < capacity_; ++s) {
      slots_.push_back(Env::make_bin_array(
          ctx, ("slot" + std::to_string(s)).c_str(), bits_per_slot_, 0));
    }
  }

  /// Peek: retry-scan F for the one-hot front bit. Lock-free only.
  Op<std::uint32_t> peek() {
    for (;;) {
      for (std::uint32_t v = 0; v <= domain_; ++v) {
        const std::uint8_t bit = co_await Env::read_bit(front_, v + 1);
        if (bit == 1) co_return v;  // r_0 = empty, r_v = front element v
      }
    }
  }

  Op<std::uint32_t> enqueue(std::uint8_t value) {
    assert(value >= 1 && value <= domain_);
    const std::uint32_t old_front = mirror_front();
    if (mirror_.size() < capacity_) mirror_.push_back(value);
    co_await rewrite_slots();
    co_await update_front(old_front, mirror_front());
    co_return 0;  // the spec's r0 / empty response
  }

  Op<std::uint32_t> dequeue() {
    if (mirror_.empty()) co_return 0;
    const std::uint32_t old_front = mirror_front();
    const std::uint32_t response = mirror_.front();
    mirror_.erase(mirror_.begin());
    co_await rewrite_slots();
    co_await update_front(old_front, mirror_front());
    co_return response;
  }

  /// Observer-side memory image (F, then the slot bit-planes); not a step.
  void encode_memory(std::vector<std::uint8_t>& out) const {
    for (std::uint32_t v = 0; v <= domain_; ++v) {
      out.push_back(Env::peek_bit(front_, v + 1));
    }
    for (const auto& slot : slots_) {
      for (std::uint32_t b = 1; b <= bits_per_slot_; ++b) {
        out.push_back(Env::peek_bit(slot, b));
      }
    }
  }

  std::uint32_t domain() const { return domain_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::uint32_t mirror_front() const {
    return mirror_.empty() ? 0u : mirror_.front();
  }

  /// Canonically re-encode the queue contents (left-justified, zero-padded).
  Sub<bool> rewrite_slots() {
    for (std::size_t s = 0; s < capacity_; ++s) {
      const std::uint32_t value = s < mirror_.size() ? mirror_[s] : 0u;
      for (std::uint32_t b = 1; b <= bits_per_slot_; ++b) {
        co_await Env::write_bit(slots_[s], b, (value >> (b - 1)) & 1u);
      }
    }
    co_return true;
  }

  /// One-hot front update: set the new bit, then clear the old one (there is
  /// always at least one bit set, but a scan can still miss both).
  Sub<bool> update_front(std::uint32_t old_front, std::uint32_t new_front) {
    if (old_front != new_front) {
      co_await Env::write_bit(front_, new_front + 1, 1);
      co_await Env::write_bit(front_, old_front + 1, 0);
    }
    co_return true;
  }

  std::uint32_t domain_;
  std::size_t capacity_;
  std::uint32_t bits_per_slot_ = 1;
  std::vector<std::uint8_t> mirror_;  // single-mutator local view
  typename Env::BinArray front_;
  std::vector<typename Env::BinArray> slots_;
};

}  // namespace hi::algo
