// Wait-free simulation of a normalized lock-free algorithm — the
// Kogan–Petrank transform (help queue + fast-path/slow-path + operation
// records with versioned CAS), written once over the Env abstraction so the
// SAME combinator body runs under SimEnv (exhaustive interleavings + step
// counts), RtEnv (hardware benchmarks), ReplayEnv (schedule re-execution)
// and FuzzEnv (real-thread yield fuzzing).
//
// Why it exists here: the paper's Theorem 17 (and Corollary 18) prove that
// wait-freedom and state-quiescent history independence are incompatible
// for most objects. This combinator is the empirical probe of that
// boundary: it wraps the lock-free state-quiescent-HI register of
// Algorithms 2+3 and yields a WAIT-FREE register — so by Thm 17 the result
// MUST lose state-quiescent HI, and it does, in exactly the words this file
// adds: per-process operation records and the help-queue ring/head/tail
// counters persist across quiescence and encode how often (and in which
// order) readers were forced onto the slow path. tests/test_waitfree_sim.cpp
// pins the violation and asserts it is localized to those words; the inner
// A array stays canonical.
//
// Shape of the transform (vs the original):
//   * The inner algorithm is presented in NORMALIZED form: a single
//     `attempt(op_word)` Sub performing one bounded try — nullopt means a
//     contention failure (for Alg 3's TryRead: the scan chased a moving 1).
//   * Operation records: one 64-bit word per process,
//     [63:62] state (idle/pending/done) | [61:32] seq | [31:0] payload
//     (the op word while pending, the result once done). The owner
//     announces pending(seq, op) with a plain write (single writer per
//     record); completion is ONE CAS pending→done, so exactly one of
//     {owner, helpers} installs the result, and the seq field makes a
//     stale helper's CAS fail harmlessly.
//   * Help queue: a bounded ring of `4 × processes` versioned slots,
//     [63:8] round | [7:0] pid+1 (0 = empty at that round), plus monotone
//     head/tail index words. Slot i serves indices i, i+cap, i+2·cap, …;
//     retiring an entry re-arms its slot for the next round, so the ABA
//     window is a full 2^56-round wraparound. Enqueue claims the tail slot
//     with a CAS and then helps advance tail; anyone can retire a completed
//     head entry and advance head.
//   * Every operation HELPS THE HEAD ENTRY FIRST, then runs its fast path
//     (up to `fast_limit` inner attempts, suppressed entirely while the
//     process's contention-failure streak is ≥ fast_limit), then announces,
//     enqueues, and helps until its own record is done.
//
// Progress argument for the register instantiation (WaitFreeSimHiAlg,
// single writer, reads helped): while any process helps the head read, the
// helper itself performs no conflicting writes; in the single-writer
// workloads the ladder checks, the writer's pre-write help runs when no
// write is in flight, so the helped TryRead scans a stable nonzero A and
// succeeds in one attempt. A queued read is therefore completed by the
// first write that starts after it is enqueued (or by its own helping loop
// if no write intervenes) — every operation finishes within O(write steps +
// K + capacity) primitive steps, the bound the step-exact tests derive.
// The plain Alg 2 reader starves forever under the same adversarial
// schedule; tests/test_waitfree_sim.cpp shows both sides.
//
// Helping discipline for general inners: only operations whose attempts are
// read-only may go through run() (helpers may execute an attempt for a
// record that was already completed — harmless for reads, not for writes).
// Operations that mutate but already succeed in one bounded attempt (the
// Alg 2 write) go through run_direct(): they still help — that is what
// bounds the queued slow-path ops — but are never themselves enqueued, so
// their side effects run exactly once.
//
// NOTE: every co_await lands in a named local before being branched on
// (GCC 12 miscompiles awaits inside if/while conditions), and the
// combinator is built entirely from Sub coroutines so it composes under
// any outer Op (sim OpTasks are not awaitable; Subs are).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "algo/registers.h"
#include "algo/values.h"
#include "env/env.h"

namespace hi::algo {

/// Field encodings for the operation records and help-queue slots. Pure
/// functions, shared by the combinator, the step-exact tests and the
/// HI-divergence probe.
namespace wfs {

// Operation-record states ([63:62] of the record word).
inline constexpr std::uint64_t kIdle = 0;
inline constexpr std::uint64_t kPending = 1;
inline constexpr std::uint64_t kDone = 2;

inline constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << 30) - 1;

inline constexpr std::uint64_t rec_word(std::uint64_t state, std::uint64_t seq,
                                        std::uint64_t payload) {
  return (state << 62) | ((seq & kSeqMask) << 32) | (payload & 0xffffffffull);
}
inline constexpr std::uint64_t rec_state(std::uint64_t w) { return w >> 62; }
inline constexpr std::uint64_t rec_seq(std::uint64_t w) {
  return (w >> 32) & kSeqMask;
}
inline constexpr std::uint64_t rec_payload(std::uint64_t w) {
  return w & 0xffffffffull;
}

// Help-queue slot words: [63:8] round, [7:0] pid+1 (0 = empty this round).
inline constexpr std::uint64_t slot_empty(std::uint64_t round) {
  return round << 8;
}
inline constexpr std::uint64_t slot_word(std::uint64_t round, int pid) {
  return (round << 8) | static_cast<std::uint64_t>(pid + 1);
}
inline constexpr std::uint64_t slot_round(std::uint64_t w) { return w >> 8; }
inline constexpr int slot_pid(std::uint64_t w) {
  return static_cast<int>(w & 0xff) - 1;
}

}  // namespace wfs

/// The bounded versioned-slot help queue. A standalone class (rather than a
/// private detail of WaitFreeSim) so the step-exact tests can drive the
/// enqueue/peek/dequeue CAS protocol directly.
template <typename Env>
class HelpQueue {
 public:
  template <typename T>
  using Sub = typename Env::template Sub<T>;

  /// What peek() saw at the head. `stale` means the head entry was already
  /// retired but the head pointer lags (the retirer is stalled between its
  /// two CASes); advance_head(head) repairs it.
  struct Peek {
    bool has = false;
    bool stale = false;
    std::uint64_t head = 0;
    std::uint64_t index = 0;  // == head when `has`
    int pid = -1;
  };

  HelpQueue(typename Env::Ctx ctx, int num_processes)
      : cap_(4 * static_cast<std::uint32_t>(num_processes)),
        slots_(Env::make_word_array(ctx, "wfs.q", cap_, wfs::slot_empty(0))),
        ctl_(Env::make_word_array(ctx, "wfs.qctl", 2, 0)) {
    assert(num_processes >= 1 && num_processes <= 0xfe);
  }

  /// Append an entry for `pid`; returns the index it landed at. 4 steps
  /// uncontended (read tail, read slot, claim CAS, tail-advance CAS); under
  /// contention the loop helps tail forward and retries, bounded because
  /// each process keeps at most two outstanding entries (capacity = 4 ×
  /// processes, asserted via the round invariant below).
  Sub<std::uint64_t> enqueue(int pid) {
    for (std::uint64_t spin = 0;; ++spin) {
      assert(spin <= 4 * std::uint64_t{cap_} && "help queue livelocked");
      const std::uint64_t t = co_await Env::read_word(ctl_, kTail);
      const std::uint64_t round = t / cap_;
      const std::uint64_t seen = co_await Env::read_word(slots_, slot_of(t));
      if (wfs::slot_round(seen) == round && wfs::slot_pid(seen) < 0) {
        const algo::CasResult<std::uint64_t> claim = co_await Env::cas_word(
            slots_, slot_of(t), seen, wfs::slot_word(round, pid));
        if (claim.installed) {
          (void)co_await Env::cas_word(ctl_, kTail, t, t + 1);
          co_return t;
        }
        // Lost the slot to a concurrent enqueuer; help tail forward, retry.
      }
      // A slot still armed for an EARLIER round would mean index t−cap was
      // never retired: the queue is full, which the outstanding-entry bound
      // makes unreachable.
      assert(wfs::slot_round(seen) >= round && "help queue overflow");
      (void)co_await Env::cas_word(ctl_, kTail, t, t + 1);
    }
  }

  /// Read the head entry without removing it — 2 steps (head, slot).
  Sub<Peek> peek() {
    Peek out;
    const std::uint64_t h = co_await Env::read_word(ctl_, kHead);
    out.head = h;
    const std::uint64_t seen = co_await Env::read_word(slots_, slot_of(h));
    const std::uint64_t round = h / cap_;
    if (wfs::slot_round(seen) == round) {
      const int pid = wfs::slot_pid(seen);
      if (pid >= 0) {
        out.has = true;
        out.index = h;
        out.pid = pid;
      }
    } else if (wfs::slot_round(seen) > round) {
      out.stale = true;
    }
    co_return out;
  }

  /// Retire entry `index` held by `pid`: re-arm its slot for the next round,
  /// then advance head — 2 steps. The head CAS runs even when the slot CAS
  /// lost (the winner may be stalled between its two CASes; head progress is
  /// what the wait-freedom bound leans on). Returns whether this caller won
  /// the retirement.
  Sub<bool> try_dequeue(std::uint64_t index, int pid) {
    const std::uint64_t round = index / cap_;
    const algo::CasResult<std::uint64_t> rearm =
        co_await Env::cas_word(slots_, slot_of(index), wfs::slot_word(round, pid),
                               wfs::slot_empty(round + 1));
    (void)co_await Env::cas_word(ctl_, kHead, index, index + 1);
    co_return rearm.installed;
  }

  /// Repair a lagging head pointer (peek() reported `stale`) — 1 step.
  Sub<bool> advance_head(std::uint64_t index) {
    const algo::CasResult<std::uint64_t> moved =
        co_await Env::cas_word(ctl_, kHead, index, index + 1);
    co_return moved.installed;
  }

  // ---- observer side (never a step) ----

  std::uint32_t capacity() const { return cap_; }
  std::uint64_t peek_head() const { return Env::peek_word(ctl_, kHead); }
  std::uint64_t peek_tail() const { return Env::peek_word(ctl_, kTail); }
  std::uint64_t peek_slot(std::uint32_t i) const {
    return Env::peek_word(slots_, i);
  }
  /// Observer-side emptiness (meaningful at quiescence, where the tail
  /// advance of every claimed slot has landed).
  bool quiescent_empty() const { return peek_head() == peek_tail(); }

 private:
  static constexpr std::uint32_t kHead = 0;
  static constexpr std::uint32_t kTail = 1;

  std::uint32_t slot_of(std::uint64_t index) const {
    return static_cast<std::uint32_t>(index % cap_);
  }

  std::uint32_t cap_;
  typename Env::WordArray slots_;
  typename Env::WordArray ctl_;
};

/// The generic combinator. `Inner` provides
///   Sub<std::optional<std::uint64_t>> attempt(std::uint64_t op_word)
/// — one bounded normalized attempt; nullopt = contention failure. The
/// inner object is constructed FIRST, so in the sim memory layout its words
/// are the snapshot prefix and every combinator word sits in the suffix —
/// the property the HI-divergence probe localizes against.
template <typename Env, typename Inner>
class WaitFreeSim {
 public:
  template <typename T>
  using Sub = typename Env::template Sub<T>;

  template <typename... InnerArgs>
  WaitFreeSim(typename Env::Ctx ctx, int num_processes,
              std::uint32_t fast_limit, InnerArgs&&... inner_args)
      : inner_(ctx, std::forward<InnerArgs>(inner_args)...),
        rec_(Env::make_word_array(ctx, "wfs.rec",
                                  static_cast<std::uint32_t>(num_processes),
                                  wfs::rec_word(wfs::kIdle, 0, 0))),
        queue_(ctx, num_processes),
        num_processes_(num_processes),
        fast_limit_(fast_limit),
        seq_(static_cast<std::size_t>(num_processes), 0),
        fail_streak_(static_cast<std::size_t>(num_processes), 0) {
    assert(num_processes >= 1);
  }

  /// A helped (retry-needing, read-only-attempt) operation: help the head,
  /// try the fast path, fall back to announce + enqueue + help-until-done.
  Sub<std::uint64_t> run(int pid, std::uint64_t op_word) {
    total_ops_.fetch_add(1, std::memory_order_relaxed);
    const bool helped = co_await help_head(pid);
    (void)helped;
    // Fast path: attempt until the process's contention-failure streak
    // reaches fast_limit (0 ⇒ skipped entirely). The streak resets on every
    // completion — fast success here, slow-path completion below — so it is
    // nonzero exactly between a failed attempt and the end of its operation,
    // which is when the tests observe it.
    while (fail_streak_[static_cast<std::size_t>(pid)] < fast_limit_) {
      const std::optional<std::uint64_t> got = co_await inner_.attempt(op_word);
      if (got.has_value()) {
        fail_streak_[static_cast<std::size_t>(pid)] = 0;
        co_return *got;
      }
      ++fail_streak_[static_cast<std::size_t>(pid)];
    }
    slow_entries_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seq = ++seq_[static_cast<std::size_t>(pid)];
    const bool announced = co_await Env::write_word(
        rec_, static_cast<std::uint32_t>(pid),
        wfs::rec_word(wfs::kPending, seq, op_word));
    (void)announced;
    const std::uint64_t at = co_await queue_.enqueue(pid);
    (void)at;
    for (std::uint64_t spin = 0;; ++spin) {
      assert(spin < kSlowPathBound &&
             "helping discipline violated: slow path did not terminate");
      const std::uint64_t mine =
          co_await Env::read_word(rec_, static_cast<std::uint32_t>(pid));
      if (wfs::rec_state(mine) == wfs::kDone &&
          wfs::rec_seq(mine) == (seq & wfs::kSeqMask)) {
        fail_streak_[static_cast<std::size_t>(pid)] = 0;
        co_return wfs::rec_payload(mine);
      }
      const bool progressed = co_await help_head(pid);
      (void)progressed;
    }
  }

  /// An operation whose every attempt succeeds (the inner is already
  /// wait-free for it — e.g. the Alg 2 write): help the head entry first
  /// (the step that bounds every queued slow-path op), then run inline.
  /// Never enqueued, so its side effects execute exactly once.
  Sub<std::uint64_t> run_direct(int pid, std::uint64_t op_word) {
    total_ops_.fetch_add(1, std::memory_order_relaxed);
    const bool helped = co_await help_head(pid);
    (void)helped;
    const std::optional<std::uint64_t> got = co_await inner_.attempt(op_word);
    assert(got.has_value() &&
           "run_direct requires a single-attempt-success operation");
    co_return got.value_or(0);
  }

  /// Process the head entry once: if its record is pending, run one inner
  /// attempt on the owner's behalf and CAS the result in; if the record is
  /// (by now) done, retire the entry. Returns true iff the call made
  /// progress (completed, retired, or repaired a stale head). A contention
  /// failure of the helped attempt leaves the entry queued for the next
  /// helper.
  Sub<bool> help_head(int helper_pid) {
    const typename HelpQueue<Env>::Peek p = co_await queue_.peek();
    if (!p.has) {
      if (p.stale) {
        const bool moved = co_await queue_.advance_head(p.head);
        co_return moved;
      }
      co_return false;
    }
    const std::uint64_t rec =
        co_await Env::read_word(rec_, static_cast<std::uint32_t>(p.pid));
    if (wfs::rec_state(rec) == wfs::kPending) {
      const std::optional<std::uint64_t> got =
          co_await inner_.attempt(wfs::rec_payload(rec));
      if (!got.has_value()) co_return false;
      const algo::CasResult<std::uint64_t> install = co_await Env::cas_word(
          rec_, static_cast<std::uint32_t>(p.pid), rec,
          wfs::rec_word(wfs::kDone, wfs::rec_seq(rec), *got));
      if (install.installed && helper_pid != p.pid) {
        helped_completions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    const bool retired = co_await queue_.try_dequeue(p.index, p.pid);
    (void)retired;
    co_return true;
  }

  Inner& inner() { return inner_; }
  const Inner& inner() const { return inner_; }
  HelpQueue<Env>& queue() { return queue_; }
  const HelpQueue<Env>& queue() const { return queue_; }

  // ---- observer side (never a step) ----

  int num_processes() const { return num_processes_; }
  std::uint32_t fast_limit() const { return fast_limit_; }
  std::uint64_t peek_record(int pid) const {
    return Env::peek_word(rec_, static_cast<std::uint32_t>(pid));
  }
  std::uint32_t fail_streak(int pid) const {
    return fail_streak_[static_cast<std::size_t>(pid)];
  }
  std::uint64_t total_ops() const {
    return total_ops_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_path_entries() const {
    return slow_entries_.load(std::memory_order_relaxed);
  }
  std::uint64_t helped_completions() const {
    return helped_completions_.load(std::memory_order_relaxed);
  }
  void reset_stats() {
    total_ops_.store(0, std::memory_order_relaxed);
    slow_entries_.store(0, std::memory_order_relaxed);
    helped_completions_.store(0, std::memory_order_relaxed);
  }

  /// The combinator's shared words (records, then head, tail, then the ring
  /// slots) appended as 8 little-endian bytes each. This is the non-HI
  /// residue the Thm 17 probe pins.
  void encode_combinator_words(std::vector<std::uint8_t>& out) const {
    const auto push_word = [&out](std::uint64_t w) {
      for (int b = 0; b < 8; ++b) {
        out.push_back(static_cast<std::uint8_t>(w >> (8 * b)));
      }
    };
    for (int pid = 0; pid < num_processes_; ++pid) push_word(peek_record(pid));
    push_word(queue_.peek_head());
    push_word(queue_.peek_tail());
    for (std::uint32_t i = 0; i < queue_.capacity(); ++i) {
      push_word(queue_.peek_slot(i));
    }
  }

  /// Logical bytes of combinator shared state (records + head/tail + ring).
  std::size_t combinator_bytes() const {
    return 8 * (static_cast<std::size_t>(num_processes_) + 2 +
                queue_.capacity());
  }

 private:
  // Generous backstop for the owner's help loop: reachable only if the
  // helping discipline is broken (a mutating op routed through run(), or a
  // workload with no helpers), in which case failing loudly beats spinning.
  static constexpr std::uint64_t kSlowPathBound = std::uint64_t{1} << 22;

  Inner inner_;  // constructed first: snapshot prefix, stays canonical
  typename Env::WordArray rec_;
  HelpQueue<Env> queue_;
  int num_processes_;
  std::uint32_t fast_limit_;
  // Owner-local bookkeeping (never shared memory, never part of mem(C)):
  // per-pid entries are touched only by their owning process.
  std::vector<std::uint64_t> seq_;
  std::vector<std::uint32_t> fail_streak_;
  // Observer-side stats; relaxed atomics so real-thread harnesses can read
  // them race-free.
  std::atomic<std::uint64_t> total_ops_{0};
  std::atomic<std::uint64_t> slow_entries_{0};
  std::atomic<std::uint64_t> helped_completions_{0};
};

/// The lock-free Alg 2/3 register in normalized form: one `attempt` entry
/// point over 32-bit op words (bit 31 = write flag, low bits = the value;
/// reads encode as 0). A read attempt is one TryRead (Alg 3) and may fail;
/// a write attempt is the full Alg 2 write body and cannot.
template <typename Env, typename Bins>
class NormalizedHiRegister {
 public:
  template <typename T>
  using Sub = typename Env::template Sub<T>;

  static constexpr std::uint64_t kWriteBit = std::uint64_t{1} << 31;
  static constexpr std::uint64_t encode_read() { return 0; }
  static constexpr std::uint64_t encode_write(std::uint32_t value) {
    return kWriteBit | value;
  }

  NormalizedHiRegister(typename Env::Ctx ctx, std::uint32_t num_values,
                       std::uint32_t initial)
      : alg_(ctx, num_values, initial) {}

  Sub<std::optional<std::uint64_t>> attempt(std::uint64_t op_word) {
    if ((op_word & kWriteBit) != 0) {
      const auto value = static_cast<std::uint32_t>(op_word & ~kWriteBit);
      const std::uint32_t echoed = co_await alg_.write_sub(value);
      co_return std::uint64_t{echoed};
    }
    const std::optional<std::uint32_t> got = co_await alg_.attempt_read();
    if (!got.has_value()) co_return std::nullopt;
    co_return std::uint64_t{*got};
  }

  LockFreeHiAlg<Env, Bins>& alg() { return alg_; }
  const LockFreeHiAlg<Env, Bins>& alg() const { return alg_; }

  void encode_memory(std::vector<std::uint8_t>& out) const {
    alg_.encode_memory(out);
  }
  std::uint32_t num_values() const { return alg_.num_values(); }
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

 private:
  LockFreeHiAlg<Env, Bins> alg_;
};

/// The combinator applied to the Alg 2/3 register: a WAIT-FREE K-valued
/// SWSR register whose reads are helped slow-path operations and whose
/// writes run direct (helping first). The Thm 17 price: NOT state-quiescent
/// HI — the records and queue counters persist (see the file comment).
template <typename Env, typename Bins>
class WaitFreeSimHiAlg {
 public:
  template <typename T>
  using Op = typename Env::template Op<T>;
  using Inner = NormalizedHiRegister<Env, Bins>;

  WaitFreeSimHiAlg(typename Env::Ctx ctx, std::uint32_t num_values,
                   std::uint32_t initial, int num_processes = 2,
                   std::uint32_t fast_limit = 1)
      : sim_(ctx, num_processes, fast_limit, num_values, initial),
        num_values_(num_values) {}

  /// Wait-free Read by process `pid`.
  Op<std::uint32_t> read(int pid) {
    const std::uint64_t got = co_await sim_.run(pid, Inner::encode_read());
    co_return static_cast<std::uint32_t>(got);
  }

  /// Write by process `pid` — Alg 2's write is already wait-free, so it runs
  /// direct; its leading help is what completes any queued read.
  Op<std::uint32_t> write(int pid, std::uint32_t value) {
    assert(value >= 1 && value <= num_values_);
    const std::uint64_t got =
        co_await sim_.run_direct(pid, Inner::encode_write(value));
    co_return static_cast<std::uint32_t>(got);
  }

  /// Memory image: the inner A bins (one byte per bin, like every register
  /// algorithm), then each combinator word as 8 LE bytes.
  void encode_memory(std::vector<std::uint8_t>& out) const {
    sim_.inner().encode_memory(out);
    sim_.encode_combinator_words(out);
  }
  /// The inner bins alone — the part that REMAINS canonical per state.
  void encode_inner_memory(std::vector<std::uint8_t>& out) const {
    sim_.inner().encode_memory(out);
  }

  WaitFreeSim<Env, Inner>& combinator() { return sim_; }
  const WaitFreeSim<Env, Inner>& combinator() const { return sim_; }

  std::uint32_t num_values() const { return num_values_; }
  std::size_t memory_bytes() const {
    return sim_.inner().memory_bytes() + sim_.combinator_bytes();
  }

  std::uint64_t total_ops() const { return sim_.total_ops(); }
  std::uint64_t slow_path_entries() const { return sim_.slow_path_entries(); }
  std::uint64_t helped_completions() const {
    return sim_.helped_completions();
  }
  void reset_stats() { sim_.reset_stats(); }

 private:
  WaitFreeSim<Env, Inner> sim_;
  std::uint32_t num_values_;
};

template <typename E>
using WaitFreeSimHiAlgPadded = WaitFreeSimHiAlg<E, env::PaddedBins<E>>;
template <typename E>
using WaitFreeSimHiAlgPacked = WaitFreeSimHiAlg<E, env::PackedBins<E>>;

}  // namespace hi::algo
