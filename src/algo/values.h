// Value types shared by the algorithm layer and both execution environments.
//
// The single-source algorithms (src/algo) are templated over an execution
// environment Env (src/env). The R-LLSC family manipulates values of type
// Env::Value — a 128-bit two-word payload in the simulator (room for the
// paper's unbounded abstract states) and a packed 64-bit word on hardware
// (the DESIGN substitution: states ≤ 32 bits so one CMPXCHG16B covers value
// plus context). CtxWord pairs a value with the R-LLSC context bitmask; it
// is the environment-neutral view of one CAS base-object state.
#pragma once

#include <cstdint>

namespace hi::algo {

/// The value carried by an R-LLSC cell (context excluded): two words, enough
/// for Algorithm 5's ⟨state, ⟨response, process⟩⟩ head tuples.
struct RllscValue {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const RllscValue&, const RllscValue&) = default;
};

/// One CAS base-object state as the algorithms see it: an algorithm-level
/// value plus the context bitmask (bit i set <=> process i in context).
template <typename V>
struct CtxWord {
  V value{};
  std::uint64_t ctx = 0;

  friend bool operator==(const CtxWord&, const CtxWord&) = default;
};

/// Result of a failure-word CAS (Env::cas / Env::cas_word): `installed` says
/// whether the swap was applied; `observed` is the word the cell held
/// immediately before the CAS executed (== expected iff installed). Retry
/// loops feed `observed` straight into the next attempt's expectation, so a
/// failed retry costs ONE primitive instead of a CAS followed by a re-read —
/// the hardware gets this for free (compare_exchange writes the current word
/// back into `expected` on failure), and the simulator models it as a single
/// atomic step of the same "cas" primitive kind.
template <typename W>
struct CasResult {
  bool installed = false;
  W observed{};

  friend bool operator==(const CasResult&, const CasResult&) = default;
};

}  // namespace hi::algo
