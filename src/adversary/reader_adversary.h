// The reader-starvation adversary of Theorem 17 (and, via pluggable change
// sequences, Theorem 20's queue variant).
//
// The impossibility proof (§5.2) constructs executions
//   α = o_change(q0,q1), r1, o_change(q1,q2), r2, ...
// in which a "changer" completes one state-changing operation between any two
// steps of a "reader" executing a single o_read. Lemma 16's inductive step:
// let obj_ℓ be the base object the reader is about to access; because obj_ℓ
// has fewer states than the object has partition classes, by pigeonhole two
// distinct states q ≠ q' have can(q)[ℓ] = can(q')[ℓ], so the adversary can
// steer into {q, q'} while keeping the reader's observation compatible with
// at least two different responses — forever.
//
// Against a *concrete* candidate implementation (rather than the proof's
// universally-quantified one) the same schedule is executable directly: each
// round consults the reader's pending base object, picks the pigeonhole pair
// from the pre-built canonical map, completes the state change solo, and
// grants the reader exactly one step. If the candidate really were wait-free
// and state-quiescent HI, the reader would have to return within its
// wait-freedom bound; the experiment shows its step count growing linearly
// with the number of rounds instead (E7). Run against the wait-free
// Algorithm 4 the adversary fails — the reader returns — which is the
// matching positive control.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "spec/spec.h"

namespace hi::adversary {

struct StarvationResult {
  bool reader_returned = false;
  std::uint32_t reader_response = 0;  // valid only if reader_returned
  std::uint64_t reader_steps = 0;
  std::uint64_t rounds_executed = 0;
  std::uint64_t changer_ops = 0;
};

/// Canonical map: encoded abstract state -> canonical memory representation,
/// built by the caller from solo sequential executions on a *fresh* instance
/// of the same implementation (the adversary consults it analytically, as
/// the proof does; it never mutates the live system through it).
using CanonicalMap = std::unordered_map<std::uint64_t, sim::MemorySnapshot>;

template <hi::spec::SequentialSpec S>
struct AdversaryPlan {
  /// All abstract states the changer may steer among (the proof's
  /// representative states; for class C_t this is the whole state space).
  std::vector<typename S::State> states;
  /// Ops taking the object from `from` to `to` (a single o_change for C_t;
  /// the S(i1,i2) sequences for the queue).
  std::function<std::vector<typename S::Op>(const typename S::State& from,
                                            const typename S::State& to)>
      change_seq;
  /// The read-only operation the reader is trapped in.
  typename S::Op read_op;
};

/// Build the default plan for a class-C_t object (Definition 13).
template <typename S>
  requires hi::spec::StronglyConnectedSpec<S> && hi::spec::EnumerableSpec<S>
AdversaryPlan<S> ct_plan(const S& spec) {
  AdversaryPlan<S> plan;
  plan.states = spec.enumerate_states();
  plan.change_seq = [&spec](const typename S::State& from,
                            const typename S::State& to) {
    return std::vector<typename S::Op>{spec.change_op(from, to)};
  };
  plan.read_op = spec.read_op();
  return plan;
}

/// Run the starvation schedule for up to `max_rounds` rounds against a live
/// system. `impl.apply(pid, op)` spawns operations; `changer_pid` /
/// `reader_pid` identify the two processes of the construction. The initial
/// abstract state must be `initial_state` (encoded value consistent with the
/// canonical map's keys).
template <hi::spec::SequentialSpec S, typename Impl>
  requires sim::SimImplementation<Impl, S>
StarvationResult run_starvation(const S& spec, sim::Memory& memory,
                                sim::Scheduler& sched, Impl& impl,
                                const AdversaryPlan<S>& plan,
                                const CanonicalMap& canon, int changer_pid,
                                int reader_pid, std::uint64_t max_rounds) {
  StarvationResult result;

  typename S::State current = spec.initial_state();

  auto change_to = [&](const typename S::State& target) {
    for (const typename S::Op& op : plan.change_seq(current, target)) {
      (void)sim::run_solo(sched, changer_pid, impl.apply(changer_pid, op));
      ++result.changer_ops;
    }
    current = target;
  };

  // The reader's o_read is invoked only after the first complete o_change,
  // exactly as in the proof of Theorem 17.
  change_to(plan.states.at(plan.states.size() > 1 ? 1 : 0));

  sim::OpTask<typename S::Resp> read_task =
      impl.apply(reader_pid, plan.read_op);
  sched.start(reader_pid, read_task);

  const std::uint64_t reader_steps_before = sched.steps_of(reader_pid);
  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    if (sched.op_finished(reader_pid)) break;
    if (!sched.runnable(reader_pid)) break;

    // Lemma 16: find two distinct states whose canonical representations
    // agree on the base object the reader accesses next.
    const int obj = sched.pending_object(reader_pid);
    assert(obj >= 0);
    const auto [first_word, last_word] = memory.word_range(obj);

    const typename S::State* pick = nullptr;
    const std::size_t n_states = plan.states.size();
    [&] {
      for (std::size_t i = 0; i < n_states; ++i) {
        for (std::size_t j = i + 1; j < n_states; ++j) {
          const auto& can_i = canon.at(spec.encode_state(plan.states[i]));
          const auto& can_j = canon.at(spec.encode_state(plan.states[j]));
          bool agree = true;
          for (std::size_t w = first_word; w < last_word; ++w) {
            if (can_i.words[w] != can_j.words[w]) {
              agree = false;
              break;
            }
          }
          if (agree) {
            // Prefer the pair element that actually changes the state, so
            // the changer's operation sequence is well-formed for objects
            // requiring from != to.
            const bool i_is_current = spec.encode_state(plan.states[i]) ==
                                      spec.encode_state(current);
            pick = i_is_current ? &plan.states[j] : &plan.states[i];
            return;
          }
        }
      }
    }();
    if (pick == nullptr) {
      // No pigeonhole pair: the base object is not "smaller" than the
      // abstract object — the impossibility argument does not apply, and
      // the adversary concedes.
      break;
    }

    if (spec.encode_state(*pick) != spec.encode_state(current)) {
      change_to(*pick);
    } else {
      // Degenerate (can only happen if |states| == 1): nothing to change.
      break;
    }
    if (!sched.runnable(reader_pid)) break;
    sched.step(reader_pid);  // r_k: exactly one reader step per round
    ++result.rounds_executed;
  }

  result.reader_steps = sched.steps_of(reader_pid) - reader_steps_before;
  if (sched.op_finished(reader_pid)) {
    sched.finish(reader_pid);
    result.reader_returned = true;
    result.reader_response =
        static_cast<std::uint32_t>(spec.encode_resp(read_task.take_result()));
  } else {
    sched.abandon(reader_pid);
  }
  return result;
}

}  // namespace hi::adversary
