// Theorem 20's queue adversary plan (§5.4 / Appendix C).
//
// A queue with Peek is not in class C_t — states are not mutually reachable
// in one operation — so the adversary walks only among t+1 *representative*
// states q_0 = ∅, q_i = {i}, moving with the operation sequences S(i1, i2)
// (Enqueue/Dequeue pairs). Along each S(i1, i2), a Peek can only ever be
// linearized to return r_{i1} or r_{i2} (the in-between state {i1, i2} also
// fronts i1), so Lemma 37/38's indistinguishability argument goes through
// with t+1 representatives against base objects of at most t states.
#pragma once

#include "adversary/reader_adversary.h"
#include "spec/queue_spec.h"

namespace hi::adversary {

inline AdversaryPlan<spec::QueueSpec> queue_plan(const spec::QueueSpec& spec) {
  AdversaryPlan<spec::QueueSpec> plan;
  plan.states.reserve(spec.domain() + 1);
  for (std::uint32_t i = 0; i <= spec.domain(); ++i) {
    plan.states.push_back(spec.representative(i));
  }
  plan.change_seq = [&spec](const spec::QueueSpec::State& from,
                            const spec::QueueSpec::State& to) {
    const std::uint32_t i1 = from.empty() ? 0u : from.front();
    const std::uint32_t i2 = to.empty() ? 0u : to.front();
    return spec.change_seq(i1, i2);
  };
  plan.read_op = spec::QueueSpec::peek();
  return plan;
}

}  // namespace hi::adversary
