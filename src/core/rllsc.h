// Algorithm 6: lock-free perfect-HI releasable-LL/SC object from atomic CAS
// (§6.3, Theorem 28), plus the "ideal" native R-LLSC cell behind the same
// interface, so Algorithm 5 can run over either (§6.1 vs §6.4).
//
// Single-source: the CAS-backed algorithm body lives in algo/rllsc.h
// (CasRllscAlg), templated over the execution environment and pid-explicit;
// this file is the simulator instantiation. CasRllsc adds the pid-implicit
// legacy entry points (the scheduler knows which process is executing, so
// call sites do not thread pids through). The hardware instantiation is
// rt::RtRllsc. NativeRllsc has no hardware sibling — an ideal
// context-aware LL/SC base object only exists in the model (hardware offers
// CAS, which is exactly what Algorithm 6 exists to bridge).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "algo/rllsc.h"
#include "algo/values.h"
#include "env/sim_env.h"
#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "util/bits.h"

namespace hi::core {

using algo::RllscValue;

/// Algorithm 6 over one atomic CAS base object (simulator instantiation).
class CasRllsc : public algo::CasRllscAlg<env::SimEnv> {
 public:
  using Base = algo::CasRllscAlg<env::SimEnv>;

  CasRllsc(sim::Memory& memory, std::string name, RllscValue initial)
      : Base(memory, std::move(name), initial) {}

  // pid-explicit interface (used by the universal construction) inherited:
  using Base::ll;
  using Base::ll_interleaved;
  using Base::rl;
  using Base::sc;
  using Base::vl;

  // pid-implicit legacy entry points: the executing process's identity is
  // read from the scheduler at invocation (the call happens inside the
  // process's own coroutine, so current_process() is exact).
  auto ll() { return Base::ll(self()); }
  template <typename Poll>
  auto ll_interleaved(Poll poll) {
    return Base::ll_interleaved(self(), std::move(poll));
  }
  auto vl() { return Base::vl(self()); }
  auto sc(RllscValue desired) { return Base::sc(self(), desired); }
  auto rl() { return Base::rl(self()); }

 private:
  static int self() {
    sim::ProcessState* ps = sim::detail::current_process();
    assert(ps != nullptr && "R-LLSC used outside a scheduled process");
    return ps->pid;
  }
};

/// The same interface over a native (single-primitive) R-LLSC base object.
class NativeRllsc {
 public:
  NativeRllsc(sim::Memory& memory, std::string name, RllscValue initial)
      : cell_(&memory.make<sim::WideRllscCell>(
            std::move(name), sim::WideWord{initial.lo, initial.hi, 0})) {}

  sim::SubTask<RllscValue> ll(int pid = -1) {
    assert_self(pid);
    const sim::WideWord cur = co_await cell_->ll();
    co_return RllscValue{cur.lo, cur.hi};
  }

  /// Native LL is wait-free, so interleaving is unnecessary for progress;
  /// one poll runs first so a ready response is still honored promptly.
  /// `poll` is a nullary callable returning an awaitable of bool.
  template <typename Poll>
  sim::SubTask<std::optional<RllscValue>> ll_interleaved(int pid, Poll poll) {
    assert_self(pid);
    const bool bail = co_await poll();
    if (bail) co_return std::nullopt;
    const sim::WideWord cur = co_await cell_->ll();
    co_return RllscValue{cur.lo, cur.hi};
  }
  template <typename Poll>
  auto ll_interleaved(Poll poll) {
    return ll_interleaved(-1, std::move(poll));
  }

  sim::SubTask<bool> vl(int pid = -1) {
    assert_self(pid);
    const bool valid = co_await cell_->vl();
    co_return valid;
  }
  sim::SubTask<bool> sc(int pid, RllscValue desired) {
    assert_self(pid);
    const bool swapped = co_await cell_->sc(desired.lo, desired.hi);
    co_return swapped;
  }
  sim::SubTask<bool> sc(RllscValue desired) { return sc(-1, desired); }
  sim::SubTask<bool> rl(int pid = -1) {
    assert_self(pid);
    co_await cell_->rl();
    co_return true;
  }
  sim::SubTask<RllscValue> load() {
    const sim::WideWord cur = co_await cell_->load();
    co_return RllscValue{cur.lo, cur.hi};
  }
  sim::SubTask<bool> store(RllscValue desired) {
    co_await cell_->store(desired.lo, desired.hi);
    co_return true;
  }

  RllscValue peek_value() const {
    return RllscValue{cell_->peek().lo, cell_->peek().hi};
  }
  std::uint64_t peek_context() const { return cell_->peek().ctx; }
  algo::CtxWord<RllscValue> peek_word() const {
    const sim::WideWord w = cell_->peek();
    return {{w.lo, w.hi}, w.ctx};
  }
  bool is_lock_free() const { return true; }

 private:
  /// The native cell resolves the caller from the scheduler inside each
  /// primitive; an explicit pid (from the universal construction) must agree.
  static void assert_self(int pid) {
    assert(pid == -1 || pid == sim::detail::current_process()->pid);
    (void)pid;
  }

  sim::WideRllscCell* cell_;
};

}  // namespace hi::core
