// Algorithm 6: lock-free perfect-HI releasable-LL/SC object from atomic CAS
// (§6.3, Theorem 28), plus the "ideal" native R-LLSC cell behind the same
// interface, so Algorithm 5 can run over either (§6.1 vs §6.4).
//
// The R-LLSC state (val, context) is stored in a *single* CAS word; memory
// is therefore exactly the encoding of the abstract state — no auxiliary
// information exists — which is why the implementation is perfect HI.
// LL, SC and RL are CAS retry loops and hence only lock-free; VL, Load and
// Store are single primitives. The interleaved-LL entry point realizes
// Algorithm 5's `‖` construction: between successive CAS attempts of a
// (possibly blocking) LL, one step of the caller-provided right-hand-side
// poll runs, and a true poll abandons the LL (leaving at most a context
// trace, which the caller's RL erases — line 18R.2).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "util/bits.h"

namespace hi::core {

/// The value carried by an R-LLSC cell (context excluded): two words, enough
/// for Algorithm 5's ⟨state, ⟨response, process⟩⟩ head tuples.
struct RllscValue {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const RllscValue&, const RllscValue&) = default;
};

/// Algorithm 6 over one atomic CAS base object.
class CasRllsc {
 public:
  CasRllsc(sim::Memory& memory, std::string name, RllscValue initial)
      : cell_(&memory.make<sim::WideCasCell>(
            std::move(name), sim::WideWord{initial.lo, initial.hi, 0})) {}

  /// LL(O) — lines 1–6: CAS-install the caller's context bit, retrying on
  /// interference. Lock-free; may run forever under contention.
  sim::SubTask<RllscValue> ll() {
    sim::WideWord cur = co_await cell_->read();
    for (;;) {
      sim::WideWord linked = cur;
      linked.ctx = util::set_bit(linked.ctx, my_bit());
      const bool installed = co_await cell_->cas(cur, linked);
      if (installed) co_return RllscValue{cur.lo, cur.hi};
      cur = co_await cell_->read();
    }
  }

  /// LL with Algorithm 5's `‖` right-hand side: after every failed CAS
  /// attempt run one poll; a true poll abandons the LL and yields nullopt.
  template <typename Poll>
  sim::SubTask<std::optional<RllscValue>> ll_interleaved(Poll poll) {
    sim::WideWord cur = co_await cell_->read();
    for (;;) {
      sim::WideWord linked = cur;
      linked.ctx = util::set_bit(linked.ctx, my_bit());
      const bool installed = co_await cell_->cas(cur, linked);
      if (installed) co_return RllscValue{cur.lo, cur.hi};
      const bool bail = co_await poll();
      if (bail) co_return std::nullopt;
      cur = co_await cell_->read();
    }
  }

  /// VL(O) — lines 12–13.
  sim::SubTask<bool> vl() {
    const sim::WideWord cur = co_await cell_->read();
    co_return util::test_bit(cur.ctx, my_bit());
  }

  /// SC(O, new) — lines 7–11: succeeds iff the caller is still linked.
  sim::SubTask<bool> sc(RllscValue desired) {
    sim::WideWord cur = co_await cell_->read();
    while (util::test_bit(cur.ctx, my_bit())) {
      const bool swapped =
          co_await cell_->cas(cur, sim::WideWord{desired.lo, desired.hi, 0});
      if (swapped) co_return true;
      cur = co_await cell_->read();
    }
    co_return false;
  }

  /// RL(O) — lines 14–20: removes the caller from the context; always true.
  sim::SubTask<bool> rl() {
    sim::WideWord cur = co_await cell_->read();
    while (util::test_bit(cur.ctx, my_bit())) {
      sim::WideWord released = cur;
      released.ctx = util::clear_bit(released.ctx, my_bit());
      const bool swapped = co_await cell_->cas(cur, released);
      if (swapped) co_return true;
      cur = co_await cell_->read();
    }
    co_return true;
  }

  /// Load(O) — lines 21–22.
  sim::SubTask<RllscValue> load() {
    const sim::WideWord cur = co_await cell_->read();
    co_return RllscValue{cur.lo, cur.hi};
  }

  /// Store(O, new) — lines 23–24: unconditional, resets the context.
  sim::SubTask<bool> store(RllscValue desired) {
    co_await cell_->write(sim::WideWord{desired.lo, desired.hi, 0});
    co_return true;
  }

  // Observer-side introspection (not steps): abstract state of the R-LLSC
  // object, which for this implementation is literally the memory word.
  RllscValue peek_value() const {
    return RllscValue{cell_->peek().lo, cell_->peek().hi};
  }
  std::uint64_t peek_context() const { return cell_->peek().ctx; }

 private:
  static unsigned my_bit() {
    return static_cast<unsigned>(sim::detail::current_process()->pid);
  }

  sim::WideCasCell* cell_;
};

/// The same interface over a native (single-primitive) R-LLSC base object.
class NativeRllsc {
 public:
  NativeRllsc(sim::Memory& memory, std::string name, RllscValue initial)
      : cell_(&memory.make<sim::WideRllscCell>(
            std::move(name), sim::WideWord{initial.lo, initial.hi, 0})) {}

  sim::SubTask<RllscValue> ll() {
    const sim::WideWord cur = co_await cell_->ll();
    co_return RllscValue{cur.lo, cur.hi};
  }

  /// Native LL is wait-free, so interleaving is unnecessary for progress;
  /// one poll runs first so a ready response is still honored promptly.
  template <typename Poll>
  sim::SubTask<std::optional<RllscValue>> ll_interleaved(Poll poll) {
    const bool bail = co_await poll();
    if (bail) co_return std::nullopt;
    const sim::WideWord cur = co_await cell_->ll();
    co_return RllscValue{cur.lo, cur.hi};
  }

  sim::SubTask<bool> vl() {
    const bool valid = co_await cell_->vl();
    co_return valid;
  }
  sim::SubTask<bool> sc(RllscValue desired) {
    const bool swapped = co_await cell_->sc(desired.lo, desired.hi);
    co_return swapped;
  }
  sim::SubTask<bool> rl() {
    co_await cell_->rl();
    co_return true;
  }
  sim::SubTask<RllscValue> load() {
    const sim::WideWord cur = co_await cell_->load();
    co_return RllscValue{cur.lo, cur.hi};
  }
  sim::SubTask<bool> store(RllscValue desired) {
    co_await cell_->store(desired.lo, desired.hi);
    co_return true;
  }

  RllscValue peek_value() const {
    return RllscValue{cell_->peek().lo, cell_->peek().hi};
  }
  std::uint64_t peek_context() const { return cell_->peek().ctx; }

 private:
  sim::WideRllscCell* cell_;
};

}  // namespace hi::core
