// Algorithm 1: Vidyasankar's wait-free SWSR K-valued register from binary
// registers [46], reproduced as the paper's motivating *non*-HI example (§4).
//
// The register's value is represented by a binary array A[1..K]; the value is
// intuitively the smallest index holding 1. A Write(v) sets A[v] and clears
// only *downwards*, so the array retains 1s above the current value — the
// memory leaks previously-written larger values even in sequential
// executions: Write(2);Write(1) leaves [1,1,0] while Write(1) alone leaves
// [1,0,0], both with abstract state 1. Test E3 checks this leak explicitly,
// and the HI checker rejects this implementation under every HI notion.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/register_spec.h"

namespace hi::core {

class VidyasankarRegister {
 public:
  using Op = spec::RegisterSpec::Op;
  using Resp = spec::RegisterSpec::Resp;

  VidyasankarRegister(sim::Memory& memory, const spec::RegisterSpec& spec,
                      int writer_pid, int reader_pid)
      : num_values_(spec.num_values()),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid) {
    slots_.reserve(num_values_);
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      slots_.push_back(&memory.make<sim::BinaryRegister>(
          "A[" + std::to_string(v) + "]", v == spec.initial_state()));
    }
  }

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kRead) return read(pid);
    return write(pid, op.value);
  }

  /// Read(): scan up to the first 1, then scan down taking any smaller 1.
  sim::OpTask<Resp> read(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    // NOTE: throughout the simulator algorithms, every co_await lands in a
    // named local before being branched on (GCC 12 miscompiles awaits that
    // appear directly inside if/while conditions).
    std::uint32_t j = 1;
    for (;;) {
      const std::uint8_t bit = co_await slot(j).read();
      if (bit == 1) break;
      ++j;
      assert(j <= num_values_ && "A contains no 1 — impossible in Alg 1");
    }
    std::uint32_t val = j;
    for (std::uint32_t down = j; down-- > 1;) {
      const std::uint8_t bit = co_await slot(down).read();
      if (bit == 1) val = down;
    }
    co_return val;
  }

  /// Write(v): set A[v], then clear downwards from v-1 to 1.
  sim::OpTask<Resp> write(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    (void)pid;
    assert(value >= 1 && value <= num_values_);
    co_await slot(value).write(1);
    for (std::uint32_t j = value; j-- > 1;) {
      co_await slot(j).write(0);
    }
    co_return 0;
  }

  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }

 private:
  sim::BinaryRegister& slot(std::uint32_t v) {
    assert(v >= 1 && v <= num_values_);
    return *slots_[v - 1];
  }

  std::uint32_t num_values_;
  int writer_pid_;
  int reader_pid_;
  std::vector<sim::BinaryRegister*> slots_;
};

}  // namespace hi::core
