// Algorithm 1: Vidyasankar's wait-free SWSR K-valued register from binary
// registers [46], reproduced as the paper's motivating *non*-HI example (§4).
//
// Single-source: the algorithm body lives in algo/registers.h
// (VidyasankarAlg), templated over the execution environment; this file is
// the simulator instantiation, keeping the SWSR spec/pid harness interface
// the sim tests and adversaries drive. The hardware instantiation is
// rt::RtVidyasankarRegister. The memory leak that the HI checker rejects
// (Write(2);Write(1) leaves [1,1,0] where Write(1) leaves [1,0,0]) is a
// property of the single definition and now shows up identically in both
// environments.
#pragma once

#include "algo/registers.h"
#include "core/swsr_wrapper.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"

namespace hi::core {

/// Padded-per-bit layout: the paper's exact primitive sequence (one binary
/// register per step) — what the step-count tests, adversaries and persisted
/// schedule traces drive.
using VidyasankarRegister =
    SwsrRegister<algo::VidyasankarAlgPadded, env::SimEnv>;

/// Packed layout: 64 bins per word-sized base object, scans one word load
/// per 64 bins (env::PackedBins; docs/ENV.md "Packed bin arrays").
using PackedVidyasankarRegister =
    SwsrRegister<algo::VidyasankarAlgPacked, env::SimEnv>;

}  // namespace hi::core
