// Algorithm 1: Vidyasankar's wait-free SWSR K-valued register from binary
// registers [46], reproduced as the paper's motivating *non*-HI example (§4).
//
// Single-source: the algorithm body lives in algo/registers.h
// (VidyasankarAlg), templated over the execution environment; this file is
// the simulator instantiation, keeping the SWSR spec/pid harness interface
// the sim tests and adversaries drive. The hardware instantiation is
// rt::RtVidyasankarRegister. The memory leak that the HI checker rejects
// (Write(2);Write(1) leaves [1,1,0] where Write(1) leaves [1,0,0]) is a
// property of the single definition and now shows up identically in both
// environments.
#pragma once

#include <cassert>
#include <cstdint>

#include "algo/registers.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/register_spec.h"

namespace hi::core {

class VidyasankarRegister {
 public:
  using Op = spec::RegisterSpec::Op;
  using Resp = spec::RegisterSpec::Resp;

  VidyasankarRegister(sim::Memory& memory, const spec::RegisterSpec& spec,
                      int writer_pid, int reader_pid)
      : alg_(memory, spec.num_values(), spec.initial_state()),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid) {}

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kRead) return read(pid);
    return write(pid, op.value);
  }

  sim::OpTask<Resp> read(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    return alg_.read();
  }

  sim::OpTask<Resp> write(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    (void)pid;
    return alg_.write(value);
  }

  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }

 private:
  algo::VidyasankarAlg<env::SimEnv> alg_;
  int writer_pid_;
  int reader_pid_;
};

}  // namespace hi::core
