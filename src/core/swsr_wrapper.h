// The SWSR spec/pid harness wrapper, shared by every §4-style register
// algorithm and by both scheduler-driven environments: the simulator
// (env::SimEnv) and the schedule-replay backend (env::ReplayEnv) both carry
// operations as sim::OpTask, so ONE wrapper body serves core/* and
// replay/*. Keeping it single-source means a fix to the pid checks or the
// op dispatch cannot diverge between the backends the differential replay
// suite compares.
#pragma once

#include <cassert>
#include <cstdint>

#include "spec/register_spec.h"

namespace hi::core {

/// Spec-driven harness interface over any SWSR register algorithm
/// `Alg<Env>` exposing read()/write(v) (Algorithms 1, 2/3 and 4). The pids
/// fixed at construction pin the two roles (the paper's p_w and p_r); the
/// asserts document the single-writer single-reader restriction.
template <template <typename> class Alg, typename Env>
class SwsrRegister {
 public:
  using Op = spec::RegisterSpec::Op;
  using Resp = spec::RegisterSpec::Resp;
  template <typename T>
  using OpTask = typename Env::template Op<T>;

  SwsrRegister(typename Env::Ctx ctx, const spec::RegisterSpec& spec,
               int writer_pid, int reader_pid)
      : alg_(ctx, spec.num_values(), spec.initial_state()),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid) {}

  OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kRead) return read(pid);
    return write(pid, op.value);
  }

  OpTask<Resp> read(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    return alg_.read();
  }

  OpTask<Resp> write(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    (void)pid;
    return alg_.write(value);
  }

  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }

 private:
  Alg<Env> alg_;
  int writer_pid_;
  int reader_pid_;
};

}  // namespace hi::core
