// Algorithm 5: wait-free state-quiescent-HI universal implementation from
// releasable LL/SC (§6.1) — simulator instantiation.
//
// Single-source: the algorithm body lives in algo/universal.h
// (UniversalAlg), templated over the execution environment, the sequential
// specification S and the R-LLSC cell implementation. This file pins the
// environment to SimEnv, preserving the seed interface:
//
//   Universal<S, NativeRllsc>  — Algorithm 5 over ideal atomic R-LLSC cells
//   Universal<S, CasRllsc>     — the full Theorem 32 composition over CAS
//
// The hardware instantiation is rt::RtUniversal. See algo/universal.h for
// the line-by-line paper commentary (head/announce layout, the `‖`
// right-hand sides, the red context-erasing lines and their ablation).
#pragma once

#include "algo/universal.h"
#include "core/rllsc.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/spec.h"

namespace hi::core {

using algo::HeadView;

template <spec::SequentialSpec S, typename Cell = CasRllsc>
using Universal = algo::UniversalAlg<env::SimEnv, S, Cell>;

}  // namespace hi::core
