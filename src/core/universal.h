// Algorithm 5: wait-free state-quiescent-HI universal implementation from
// releasable LL/SC (§6.1), generic over the sequential specification S and
// over the R-LLSC cell implementation:
//
//   Universal<S, NativeRllsc>  — Algorithm 5 over ideal atomic R-LLSC cells
//   Universal<S, CasRllsc>     — the full Theorem 32 composition over CAS
//
// Layout. head holds ⟨q, r⟩ where q is the abstract state and r is either ⊥
// (in-between operations — "mode A") or ⟨rsp, j⟩, the response of the most
// recently applied operation and its invoking process ("mode B").
// announce[1..n] holds each process's pending operation descriptor, later
// overwritten by its response, and cleared to ⊥ before the operation
// returns — so at any state-quiescent configuration the announce array is
// all-⊥, head is ⟨q, ⊥⟩, and every context is empty (Lemmas 26, 27): memory
// is a function of the abstract state alone.
//
// The paper's `‖` notation (lines 6, 18, 25 interleaved with the blue
// right-hand sides) is realized by ll_interleaved: one right-hand-side poll
// step runs between successive low-level steps of a possibly-blocking LL,
// and a successful poll abandons the LL (6R.2 / 18R.1-3 / 25R.1-2). The
// paper's 6R.1/18R.1 "wait until Load(announce[i]) ∉ R" is read as
// "... ∈ R" — the bail must fire when the response has *arrived* (matching
// the exit condition of the line-5 loop and the prose: "checks whether some
// other process has already accomplished what p_i was trying to do").
//
// The red lines (22, 27 and the RL of 18R.2) erase the context traces that
// helping leaves behind; ablation tests compile with clear_contexts=false
// to show exactly which HI property breaks without them (E14 ablation (a)).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/rllsc.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/spec.h"
#include "util/bits.h"

namespace hi::core {

/// Decoded view of a head value ⟨q, r⟩.
struct HeadView {
  std::uint64_t state = 0;  // encoded abstract state q
  bool has_response = false;
  std::uint32_t rsp = 0;  // valid iff has_response
  int pid = -1;           // valid iff has_response
};

template <spec::SequentialSpec S, typename Cell>
class Universal {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  /// `clear_contexts` disables the paper's red lines (22 and 27 and the RL
  /// of 18R.2) when false — the HI-breaking ablation. Production use: true.
  Universal(sim::Memory& memory, const S& spec, int num_processes,
            bool clear_contexts = true)
      : spec_(spec),
        n_(num_processes),
        clear_contexts_(clear_contexts),
        head_(memory, "head",
              make_head(spec.encode_state(spec.initial_state()),
                        std::nullopt)) {
    assert(num_processes >= 1 && num_processes <= 64);
    announce_.reserve(n_);
    for (int i = 0; i < n_; ++i) {
      announce_.emplace_back(memory, "announce[" + std::to_string(i) + "]",
                             kBottom);
    }
    priority_.resize(n_);
    for (int i = 0; i < n_; ++i) priority_[i] = i;
  }

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (spec_.is_read_only(op)) return apply_read_only(pid, op);
    return apply_update(pid, op);
  }

  /// ApplyReadOnly (lines 1–3): Load head, evaluate Δ locally, return.
  /// Touches no shared state.
  sim::OpTask<Resp> apply_read_only(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    (void)pid;
    const RllscValue raw = co_await head_.load();  // line 1
    const HeadView view = decode_head(raw);
    const auto [state_after, rsp] =
        spec_.apply(spec_.decode_state(view.state), op);  // line 2
    (void)state_after;
    co_return rsp;  // line 3
  }

  /// Apply (lines 4–29): announce, help/apply until a response appears in
  /// announce[pid], then clear the response from head and announce.
  sim::OpTask<Resp> apply_update(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    const std::uint32_t my_op_word = spec_.encode_op(op);
    Cell& my_cell = announce_[pid];

    co_await my_cell.store(announce_op(my_op_word));  // line 4

    const auto poll_helped = [this, pid] { return response_ready(pid); };
    for (;;) {
      const RllscValue mine = co_await my_cell.load();  // line 5
      if (is_resp(mine)) break;

      // Line 6: ⟨q,r⟩ ← LL(head) ‖ bail once announce[pid] ∈ R (6R).
      const std::optional<RllscValue> head_raw =
          co_await head_.ll_interleaved(poll_helped);
      if (!head_raw.has_value()) break;  // 6R.2: goto line 24
      const HeadView head_view = decode_head(*head_raw);

      if (!head_view.has_response) {  // line 7: in-between operations
        std::uint32_t apply_word = 0;
        int target = -1;
        const int candidate = priority_[pid];
        const RllscValue help = co_await announce_[candidate].load();  // l. 8
        if (is_op(help)) {  // line 9: apply another process's operation
          apply_word = payload(help);
          target = candidate;
        } else {
          const RllscValue own = co_await my_cell.load();  // line 11
          if (!is_op(own)) continue;
          apply_word = my_op_word;  // line 12: apply my own operation
          target = pid;
        }
        const auto [next_state, rsp] = spec_.apply(
            spec_.decode_state(head_view.state),
            spec_.decode_op(apply_word));  // line 13
        const bool installed = co_await head_.sc(
            make_head(spec_.encode_state(next_state),
                      HeadResp{spec_.encode_resp(rsp), target}));  // line 14
        if (installed) {
          priority_[pid] = (priority_[pid] + 1) % n_;  // line 15
        }
      } else {  // lines 16–22: finish the half-applied operation
        const std::uint32_t rsp_word = head_view.rsp;  // line 17
        const int target = head_view.pid;

        // Line 18: a ← LL(announce[j]) ‖ bail once announce[pid] ∈ R (18R).
        const std::optional<RllscValue> a =
            co_await announce_[target].ll_interleaved(poll_helped);
        if (!a.has_value()) {
          if (clear_contexts_) {
            co_await announce_[target].rl();  // 18R.2
          }
          break;  // 18R.3: goto line 24
        }
        const bool head_valid = co_await head_.vl();  // line 19
        if (head_valid) {
          if (is_op(*a)) {
            co_await announce_[target].sc(
                announce_resp(rsp_word));  // line 20: publish the response
          }
          co_await head_.sc(
              make_head(head_view.state, std::nullopt));  // line 21
        }
        if (is_bottom(*a) && clear_contexts_) {
          co_await announce_[target].rl();  // line 22 (red)
        }
        // line 23: continue
      }
    }

    const RllscValue resp_val = co_await my_cell.load();  // line 24
    assert(is_resp(resp_val));

    // Line 25: ⟨q,r⟩ ← LL(head) ‖ bail once head ≠ ⟨_,⟨_,pid⟩⟩ (25R).
    const auto poll_cleared = [this, pid] { return head_clear_of(pid); };
    const std::optional<RllscValue> head_raw =
        co_await head_.ll_interleaved(poll_cleared);
    bool handled = false;
    if (head_raw.has_value()) {
      const HeadView view = decode_head(*head_raw);
      if (view.has_response && view.pid == pid) {  // line 26
        co_await head_.sc(make_head(view.state, std::nullopt));
        handled = true;
      }
    }
    if (!handled && clear_contexts_) {
      co_await head_.rl();  // line 27 (red; also the 25R.2 path)
    }

    co_await my_cell.store(kBottom);  // line 28: clear announce[pid]
    co_return spec_.decode_resp(payload(resp_val));  // line 29
  }

  // ---- Observer-side introspection (test oracles; never takes steps) ----

  /// The abstract state recorded in head (Lemma 25: equals state(h(α))).
  std::uint64_t head_state_encoded() const {
    return decode_head(head_.peek_value()).state;
  }
  bool head_has_response() const {
    return decode_head(head_.peek_value()).has_response;
  }
  bool announce_is_bottom(int pid) const {
    return is_bottom(announce_[pid].peek_value());
  }
  /// Union of all context bitmasks (Lemma 27: empty at state-quiescence).
  std::uint64_t context_union() const {
    std::uint64_t mask = head_.peek_context();
    for (const Cell& cell : announce_) mask |= cell.peek_context();
    return mask;
  }

  int num_processes() const { return n_; }

 private:
  // announce encodings: lo carries tag<<32 | payload; ⊥ is all-zero.
  static constexpr std::uint64_t kTagOp = 1;
  static constexpr std::uint64_t kTagResp = 2;
  static constexpr RllscValue kBottom{};

  static RllscValue announce_op(std::uint32_t word) {
    return RllscValue{(kTagOp << 32) | word, 0};
  }
  static RllscValue announce_resp(std::uint32_t word) {
    return RllscValue{(kTagResp << 32) | word, 0};
  }
  static bool is_bottom(const RllscValue& v) { return v.lo == 0; }
  static bool is_op(const RllscValue& v) { return (v.lo >> 32) == kTagOp; }
  static bool is_resp(const RllscValue& v) { return (v.lo >> 32) == kTagResp; }
  static std::uint32_t payload(const RllscValue& v) {
    return static_cast<std::uint32_t>(v.lo & 0xffffffffu);
  }

  // head encodings: lo = encoded abstract state; hi = ⊥ (0) or
  // bit63 | pid<<32 | rsp.
  struct HeadResp {
    std::uint32_t rsp;
    int pid;
  };
  static RllscValue make_head(std::uint64_t state_encoded,
                              std::optional<HeadResp> resp) {
    std::uint64_t hi = 0;
    if (resp.has_value()) {
      hi = (std::uint64_t{1} << 63) |
           (static_cast<std::uint64_t>(resp->pid) << 32) | resp->rsp;
    }
    return RllscValue{state_encoded, hi};
  }
  static HeadView decode_head(const RllscValue& v) {
    HeadView view;
    view.state = v.lo;
    view.has_response = (v.hi >> 63) != 0;
    if (view.has_response) {
      view.pid = static_cast<int>((v.hi >> 32) & 0x7fffffffu);
      view.rsp = static_cast<std::uint32_t>(v.hi & 0xffffffffu);
    }
    return view;
  }

  /// 6R.1 / 18R.1: has my response been published in announce[pid]?
  sim::SubTask<bool> response_ready(int pid) {
    const RllscValue v = co_await announce_[pid].load();
    co_return is_resp(v);
  }

  /// 25R.1: head no longer holds ⟨_, ⟨_, pid⟩⟩?
  sim::SubTask<bool> head_clear_of(int pid) {
    const RllscValue v = co_await head_.load();
    const HeadView view = decode_head(v);
    co_return !(view.has_response && view.pid == pid);
  }

  const S& spec_;
  int n_;
  bool clear_contexts_;
  Cell head_;
  std::vector<Cell> announce_;
  std::vector<int> priority_;  // per-process local variable priority_i
};

}  // namespace hi::core
