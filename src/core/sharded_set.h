// Sharded perfect-HI set (algo/sharded_set.h) — simulator instantiation.
//
// Single-source: the facade body lives in algo/sharded_set.h
// (ShardedHiSet), templated over the execution environment; this file pins
// the environment to SimEnv, preserving the spec-driven harness interface
// so the explorer, the Runner and the replay fuzzer drive the sharded store
// exactly like the single-shard core::HiSet. The hardware instantiation of
// the SAME body is rt::RtShardedHiSet; the schedule-replay instantiation is
// replay::ShardedHiSet (src/replay/replay_objects.h).
#pragma once

#include <cstdint>

#include "algo/sharded_set.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/set_spec.h"

namespace hi::core {

/// Spec-driven harness wrapper, shared by the simulator (Env = SimEnv) and
/// the schedule-replay backend (Env = ReplayEnv) so the op dispatch cannot
/// diverge between the backends the differential replay suite compares.
/// The spec supplies the domain and the initial membership bitmap (one
/// word — spec domains are ≤ 64); shard count and placement are harness
/// parameters, letting the same spec check every sharding configuration.
template <typename Env, typename Bins = env::PackedBins<Env>>
class BasicShardedHiSet : public algo::ShardedHiSet<Env, Bins> {
 public:
  using Base = algo::ShardedHiSet<Env, Bins>;
  using Op = spec::SetSpec::Op;
  using Resp = spec::SetSpec::Resp;

  BasicShardedHiSet(typename Env::Ctx ctx, const spec::SetSpec& spec,
                    std::uint32_t shard_count,
                    algo::ShardPlacement placement =
                        algo::ShardPlacement::kBlocked)
      : Base(ctx, spec.domain(), shard_count, placement,
             spec.initial_state()) {}

  typename Env::template Op<Resp> apply(int pid, Op op) {
    (void)pid;  // fully symmetric: any process may invoke anything
    switch (op.kind) {
      case spec::SetSpec::Kind::kInsert: return this->insert(op.value);
      case spec::SetSpec::Kind::kRemove: return this->remove(op.value);
      case spec::SetSpec::Kind::kLookup: return this->lookup(op.value);
    }
    return this->lookup(op.value);  // unreachable
  }
};

using ShardedHiSet = BasicShardedHiSet<env::SimEnv>;

}  // namespace hi::core
