// Wait-free perfect-HI set over {1..t} from t binary registers (§5.1) —
// simulator instantiation.
//
// Single-source: the algorithm body lives in algo/hi_set.h (HiSetAlg),
// templated over the execution environment; this file pins the environment
// to SimEnv, preserving the seed interface (the spec supplies the domain and
// the initial membership bitmap). The hardware instantiation of the SAME
// body is rt::RtHiSet.
#pragma once

#include "algo/hi_set.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/set_spec.h"

namespace hi::core {

class HiSet : public algo::HiSetAlg<env::SimEnv> {
 public:
  using Base = algo::HiSetAlg<env::SimEnv>;
  using Op = spec::SetSpec::Op;
  using Resp = spec::SetSpec::Resp;

  HiSet(sim::Memory& memory, const spec::SetSpec& spec)
      : Base(memory, spec.domain(), spec.initial_state()) {}

  sim::OpTask<Resp> apply(int pid, Op op) {
    (void)pid;  // fully symmetric: any process may invoke anything
    switch (op.kind) {
      case spec::SetSpec::Kind::kInsert: return insert(op.value);
      case spec::SetSpec::Kind::kRemove: return remove(op.value);
      case spec::SetSpec::Kind::kLookup: return lookup(op.value);
    }
    return lookup(op.value);  // unreachable
  }
};

}  // namespace hi::core
