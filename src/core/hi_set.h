// Wait-free perfect-HI set over {1..t} from t binary registers (§5.1).
//
// The set is the paper's example of an object escaping class C_t despite
// having 2^t states: its operations return only success/failure, so no
// single operation distinguishes t states, and the impossibility result
// does not apply. "There is a simple wait-free perfect HI implementation …
// we simply represent the set as an array S of length t, with S[i] = 1 if
// and only if element i is in the set, with the obvious implementation."
//
// Every operation is a single primitive, so every configuration's memory is
// exactly the membership bitmap of the current abstract state: perfect HI
// per Definition 5 (and trivially consistent with Proposition 6 — adjacent
// states differ in exactly one base object). Fully multi-writer/multi-reader
// and wait-free.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/set_spec.h"

namespace hi::core {

class HiSet {
 public:
  using Op = spec::SetSpec::Op;
  using Resp = spec::SetSpec::Resp;

  HiSet(sim::Memory& memory, const spec::SetSpec& spec)
      : domain_(spec.domain()) {
    slots_.reserve(domain_);
    for (std::uint32_t v = 1; v <= domain_; ++v) {
      slots_.push_back(&memory.make<sim::BinaryRegister>(
          "S[" + std::to_string(v) + "]",
          (spec.initial_state() >> (v - 1)) & 1));
    }
  }

  sim::OpTask<Resp> apply(int pid, Op op) {
    (void)pid;  // fully symmetric: any process may invoke anything
    switch (op.kind) {
      case spec::SetSpec::Kind::kInsert: return insert(op.value);
      case spec::SetSpec::Kind::kRemove: return remove(op.value);
      case spec::SetSpec::Kind::kLookup: return lookup(op.value);
    }
    return lookup(op.value);  // unreachable
  }

  sim::OpTask<Resp> insert(std::uint32_t value) {
    co_await slot(value).write(1);
    co_return true;
  }
  sim::OpTask<Resp> remove(std::uint32_t value) {
    co_await slot(value).write(0);
    co_return true;
  }
  sim::OpTask<Resp> lookup(std::uint32_t value) {
    const std::uint8_t bit = co_await slot(value).read();
    co_return bit == 1;
  }

 private:
  sim::BinaryRegister& slot(std::uint32_t v) {
    assert(v >= 1 && v <= domain_);
    return *slots_[v - 1];
  }

  std::uint32_t domain_;
  std::vector<sim::BinaryRegister*> slots_;
};

}  // namespace hi::core
