// Wait-free perfect-HI set over {1..t} from t binary registers (§5.1) —
// simulator instantiation.
//
// Single-source: the algorithm body lives in algo/hi_set.h (HiSetAlg),
// templated over the execution environment; this file pins the environment
// to SimEnv, preserving the seed interface (the spec supplies the domain and
// the initial membership bitmap). The hardware instantiation of the SAME
// body is rt::RtHiSet.
#pragma once

#include "algo/hi_set.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/set_spec.h"

namespace hi::core {

/// Spec-driven harness wrapper, shared by the simulator (Env = SimEnv) and
/// the schedule-replay backend (Env = ReplayEnv) so the op dispatch cannot
/// diverge between the backends the differential replay suite compares.
/// `Bins` selects the bin-array layout (padded-per-bit default preserves
/// the paper's per-element cells; env::PackedBins makes the whole set one
/// word whose value is the membership bitmap).
template <typename Env, typename Bins = env::PaddedBins<Env>>
class BasicHiSet : public algo::HiSetAlg<Env, Bins> {
 public:
  using Base = algo::HiSetAlg<Env, Bins>;
  using Op = spec::SetSpec::Op;
  using Resp = spec::SetSpec::Resp;

  BasicHiSet(typename Env::Ctx ctx, const spec::SetSpec& spec)
      : Base(ctx, spec.domain(), spec.initial_state()) {}

  typename Env::template Op<Resp> apply(int pid, Op op) {
    (void)pid;  // fully symmetric: any process may invoke anything
    switch (op.kind) {
      case spec::SetSpec::Kind::kInsert: return this->insert(op.value);
      case spec::SetSpec::Kind::kRemove: return this->remove(op.value);
      case spec::SetSpec::Kind::kLookup: return this->lookup(op.value);
    }
    return this->lookup(op.value);  // unreachable
  }
};

using HiSet = BasicHiSet<env::SimEnv>;
using PackedHiSet = BasicHiSet<env::SimEnv, env::PackedBins<env::SimEnv>>;

}  // namespace hi::core
