// Algorithms 2 + 3: lock-free state-quiescent-HI SWSR K-valued register from
// binary registers (§4, Theorem 9).
//
// Single-source: the algorithm body lives in algo/registers.h
// (LockFreeHiAlg); this file is the simulator instantiation behind the SWSR
// spec/pid harness interface. The hardware instantiation is
// rt::RtLockFreeHiRegister. See algo/registers.h for the line-by-line paper
// commentary (upward clearing buys can(v) = e_v at state-quiescence; the
// reader pays with lock-freedom only — the Theorem 17 adversary starves it,
// see src/adversary/reader_adversary.h and test E7).
#pragma once

#include "algo/registers.h"
#include "core/swsr_wrapper.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"

namespace hi::core {

/// Padded-per-bit layout: the paper's exact primitive sequence (one binary
/// register per step) — what the step-count tests, adversaries and persisted
/// schedule traces drive.
using LockFreeHiRegister =
    SwsrRegister<algo::LockFreeHiAlgPadded, env::SimEnv>;

/// Packed layout: 64 bins per word-sized base object, scans one word load
/// per 64 bins (env::PackedBins; docs/ENV.md "Packed bin arrays").
using PackedLockFreeHiRegister =
    SwsrRegister<algo::LockFreeHiAlgPacked, env::SimEnv>;

}  // namespace hi::core
