// Algorithms 2 + 3: lock-free state-quiescent-HI SWSR K-valued register from
// binary registers (§4, Theorem 9).
//
// Single-source: the algorithm body lives in algo/registers.h
// (LockFreeHiAlg); this file is the simulator instantiation behind the SWSR
// spec/pid harness interface. The hardware instantiation is
// rt::RtLockFreeHiRegister. See algo/registers.h for the line-by-line paper
// commentary (upward clearing buys can(v) = e_v at state-quiescence; the
// reader pays with lock-freedom only — the Theorem 17 adversary starves it,
// see src/adversary/reader_adversary.h and test E7).
#pragma once

#include <cassert>
#include <cstdint>

#include "algo/registers.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/register_spec.h"

namespace hi::core {

class LockFreeHiRegister {
 public:
  using Op = spec::RegisterSpec::Op;
  using Resp = spec::RegisterSpec::Resp;

  LockFreeHiRegister(sim::Memory& memory, const spec::RegisterSpec& spec,
                     int writer_pid, int reader_pid)
      : alg_(memory, spec.num_values(), spec.initial_state()),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid) {}

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kRead) return read(pid);
    return write(pid, op.value);
  }

  /// Read(): retry TryRead until it finds a value (Algorithm 2, lines 1–4).
  sim::OpTask<Resp> read(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    return alg_.read();
  }

  /// Write(v): set A[v], clear down, then clear up (Algorithm 2, lines 5–7).
  sim::OpTask<Resp> write(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    (void)pid;
    return alg_.write(value);
  }

  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }

 private:
  algo::LockFreeHiAlg<env::SimEnv> alg_;
  int writer_pid_;
  int reader_pid_;
};

}  // namespace hi::core
