// Algorithms 2 + 3: lock-free state-quiescent-HI SWSR K-valued register from
// binary registers (§4, Theorem 9).
//
// Write(v) additionally clears *upwards* from v+1 to K (which Algorithm 1
// does not do), so whenever no Write is pending the array has exactly one 1 —
// at index v — giving each abstract state the unique canonical representation
// can(v) = e_v. The price is progress for the reader: a TryRead (Algorithm 3)
// can chase the moving 1 forever and return ⊥, so Read retries until a
// TryRead succeeds; the Read is lock-free but not wait-free (the adversary of
// Theorem 17 starves it — see src/adversary/reader_adversary.h and test E7).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/register_spec.h"

namespace hi::core {

class LockFreeHiRegister {
 public:
  using Op = spec::RegisterSpec::Op;
  using Resp = spec::RegisterSpec::Resp;

  LockFreeHiRegister(sim::Memory& memory, const spec::RegisterSpec& spec,
                     int writer_pid, int reader_pid)
      : num_values_(spec.num_values()),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid) {
    slots_.reserve(num_values_);
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      slots_.push_back(&memory.make<sim::BinaryRegister>(
          "A[" + std::to_string(v) + "]", v == spec.initial_state()));
    }
  }

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kRead) return read(pid);
    return write(pid, op.value);
  }

  /// Read(): retry TryRead until it finds a value (Algorithm 2, lines 1–4).
  sim::OpTask<Resp> read(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    for (;;) {
      const std::optional<std::uint32_t> val = co_await try_read();
      if (val.has_value()) co_return *val;
    }
  }

  /// Write(v): set A[v], clear down v-1..1, then clear up v+1..K
  /// (Algorithm 2, lines 5–7).
  sim::OpTask<Resp> write(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    (void)pid;
    assert(value >= 1 && value <= num_values_);
    co_await slot(value).write(1);
    for (std::uint32_t j = value; j-- > 1;) {
      co_await slot(j).write(0);
    }
    for (std::uint32_t j = value + 1; j <= num_values_; ++j) {
      co_await slot(j).write(0);
    }
    co_return 0;
  }

  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }

 private:
  /// TryRead (Algorithm 3): one upward scan for a 1; on success, downward
  /// confirmation scan; ⊥ (nullopt) if the whole array read as 0.
  sim::SubTask<std::optional<std::uint32_t>> try_read() {
    for (std::uint32_t j = 1; j <= num_values_; ++j) {
      const std::uint8_t bit = co_await slot(j).read();
      if (bit == 1) {
        std::uint32_t val = j;
        for (std::uint32_t down = j; down-- > 1;) {
          const std::uint8_t low = co_await slot(down).read();
          if (low == 1) val = down;
        }
        co_return val;
      }
    }
    co_return std::nullopt;
  }

  sim::BinaryRegister& slot(std::uint32_t v) {
    assert(v >= 1 && v <= num_values_);
    return *slots_[v - 1];
  }

  std::uint32_t num_values_;
  int writer_pid_;
  int reader_pid_;
  std::vector<sim::BinaryRegister*> slots_;
};

}  // namespace hi::core
