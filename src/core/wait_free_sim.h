// Wait-free-simulated Alg 2/3 register: the Kogan–Petrank-style combinator
// (algo/wait_free_sim.h) applied to the lock-free state-quiescent-HI
// register, behind the SWSR spec/pid harness interface.
//
// Unlike SwsrRegister, this harness FORWARDS the pid into the algorithm:
// the combinator's operation records, contention-failure streaks and
// helped-completion accounting are all per-process, so the algorithm needs
// to know who is running. Like the other spec harnesses it is templated
// over Env and shared by the simulator (core aliases below) and the
// schedule-replay backend (replay/replay_objects.h), keeping the dispatch
// single-source for the differential suite.
#pragma once

#include <cassert>
#include <cstdint>

#include "algo/wait_free_sim.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/register_spec.h"

namespace hi::core {

/// Spec-driven harness over the wait-free-simulated register. The fixed
/// pids pin the paper's p_w / p_r roles; the combinator itself is sized for
/// both processes (records + help queue entries for each).
template <typename Env, typename Bins>
class WaitFreeSimRegisterT {
 public:
  using Op = spec::RegisterSpec::Op;
  using Resp = spec::RegisterSpec::Resp;
  using Alg = algo::WaitFreeSimHiAlg<Env, Bins>;
  template <typename T>
  using OpTask = typename Env::template Op<T>;

  WaitFreeSimRegisterT(typename Env::Ctx ctx, const spec::RegisterSpec& spec,
                       int writer_pid, int reader_pid,
                       std::uint32_t fast_limit = 1)
      : alg_(ctx, spec.num_values(), spec.initial_state(),
             /*num_processes=*/(writer_pid > reader_pid ? writer_pid
                                                        : reader_pid) +
                 1,
             fast_limit),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid) {}

  OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kRead) return read(pid);
    return write(pid, op.value);
  }

  OpTask<Resp> read(int pid) {
    assert(pid == reader_pid_);
    return alg_.read(pid);
  }

  OpTask<Resp> write(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    return alg_.write(pid, value);
  }

  Alg& alg() { return alg_; }
  const Alg& alg() const { return alg_; }
  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }

 private:
  Alg alg_;
  int writer_pid_;
  int reader_pid_;
};

/// Padded-per-bit inner layout: the paper-exact Alg 2/3 primitive sequence
/// under the combinator — what the step-exact and explorer tests drive.
using WaitFreeSimHiRegister =
    WaitFreeSimRegisterT<env::SimEnv, env::PaddedBins<env::SimEnv>>;

/// Packed inner layout (64 bins per word).
using PackedWaitFreeSimHiRegister =
    WaitFreeSimRegisterT<env::SimEnv, env::PackedBins<env::SimEnv>>;

}  // namespace hi::core
