// Wait-free state-quiescent-HI max register from binary registers (§5.1).
//
// The paper uses the max register to illustrate the state-connectivity
// requirement of class C_t: its state graph is not strongly connected (once
// the maximum reaches m it can never drop below m), so Theorem 17 does not
// apply — and indeed "a simple modification to Algorithm 1, where the writer
// only writes to A if the new value is bigger than all the values it has
// written in the past, results in a wait-free state-quiescent HI max
// register from binary registers."
//
// With monotone writes, Algorithm 1's downward clearing already erases the
// previous maximum's bit, so at any state-quiescent point A = e_m for the
// current maximum m: the canonical representation. ReadMax is Algorithm 1's
// read, wait-free because the cell holding the maximum is never cleared.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/max_register_spec.h"

namespace hi::core {

class HiMaxRegister {
 public:
  using Op = spec::MaxRegisterSpec::Op;
  using Resp = spec::MaxRegisterSpec::Resp;

  HiMaxRegister(sim::Memory& memory, const spec::MaxRegisterSpec& spec,
                int writer_pid, int reader_pid)
      : num_values_(spec.num_values()),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid),
        local_max_(spec.initial_state()) {
    slots_.reserve(num_values_);
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      slots_.push_back(&memory.make<sim::BinaryRegister>(
          "A[" + std::to_string(v) + "]", v == spec.initial_state()));
    }
  }

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::MaxRegisterSpec::Kind::kReadMax) {
      return read_max(pid);
    }
    return write_max(pid, op.value);
  }

  /// ReadMax: Algorithm 1's Read. The up-scan terminates because the bit of
  /// the current maximum is never cleared; the down-scan can only land on a
  /// larger-or-equal... (values below the max are always 0 at rest, and a
  /// concurrent monotone write only moves the 1 upward).
  sim::OpTask<Resp> read_max(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    std::uint32_t j = 1;
    for (;;) {
      const std::uint8_t bit = co_await slot(j).read();
      if (bit == 1) break;
      ++j;
      assert(j <= num_values_ && "no 1 in A — impossible");
    }
    std::uint32_t val = j;
    for (std::uint32_t down = j; down-- > 1;) {
      const std::uint8_t bit = co_await slot(down).read();
      if (bit == 1) val = down;
    }
    co_return val;
  }

  /// WriteMax(v): absorbed unless v exceeds every previously written value
  /// (tracked in the writer's local state); then Algorithm 1's Write, whose
  /// downward clearing pass erases the previous maximum's bit.
  sim::OpTask<Resp> write_max(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    (void)pid;
    assert(value >= 1 && value <= num_values_);
    if (value <= local_max_) co_return 0;  // absorbed: no memory footprint
    local_max_ = value;
    co_await slot(value).write(1);
    for (std::uint32_t j = value; j-- > 1;) {
      co_await slot(j).write(0);
    }
    co_return 0;
  }

  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }

 private:
  sim::BinaryRegister& slot(std::uint32_t v) {
    assert(v >= 1 && v <= num_values_);
    return *slots_[v - 1];
  }

  std::uint32_t num_values_;
  int writer_pid_;
  int reader_pid_;
  std::uint32_t local_max_;  // writer-local; not part of mem(C)
  std::vector<sim::BinaryRegister*> slots_;
};

}  // namespace hi::core
