// Wait-free state-quiescent-HI max register from binary registers (§5.1) —
// simulator instantiation.
//
// Single-source: the algorithm body lives in algo/max_register.h
// (HiMaxRegisterAlg), templated over the execution environment; this file
// pins the environment to SimEnv, preserving the seed interface (the spec
// supplies K and the initial maximum; reads and writes are pid-checked
// SWSR). The hardware instantiation of the SAME body is rt::RtMaxRegister.
#pragma once

#include "algo/max_register.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/max_register_spec.h"

namespace hi::core {

class HiMaxRegister : public algo::HiMaxRegisterAlg<env::SimEnv> {
 public:
  using Base = algo::HiMaxRegisterAlg<env::SimEnv>;
  using Op = spec::MaxRegisterSpec::Op;
  using Resp = spec::MaxRegisterSpec::Resp;

  HiMaxRegister(sim::Memory& memory, const spec::MaxRegisterSpec& spec,
                int writer_pid, int reader_pid)
      : Base(memory, spec.num_values(), spec.initial_state(), writer_pid,
             reader_pid) {}

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::MaxRegisterSpec::Kind::kReadMax) {
      return read_max(pid);
    }
    return write_max(pid, op.value);
  }
};

}  // namespace hi::core
