// Wait-free state-quiescent-HI max register from binary registers (§5.1) —
// simulator instantiation.
//
// Single-source: the algorithm body lives in algo/max_register.h
// (HiMaxRegisterAlg), templated over the execution environment; this file
// pins the environment to SimEnv, preserving the seed interface (the spec
// supplies K and the initial maximum; reads and writes are pid-checked
// SWSR). The hardware instantiation of the SAME body is rt::RtMaxRegister.
#pragma once

#include "algo/max_register.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/max_register_spec.h"

namespace hi::core {

/// Spec-driven harness wrapper, shared by the simulator (Env = SimEnv) and
/// the schedule-replay backend (Env = ReplayEnv) so the op dispatch cannot
/// diverge between the backends the differential replay suite compares.
/// `Bins` selects the bin-array layout (padded-per-bit default preserves
/// the paper's primitive sequence; env::PackedBins packs 64 bins per word).
template <typename Env, typename Bins = env::PaddedBins<Env>>
class BasicHiMaxRegister : public algo::HiMaxRegisterAlg<Env, Bins> {
 public:
  using Base = algo::HiMaxRegisterAlg<Env, Bins>;
  using Op = spec::MaxRegisterSpec::Op;
  using Resp = spec::MaxRegisterSpec::Resp;

  BasicHiMaxRegister(typename Env::Ctx ctx, const spec::MaxRegisterSpec& spec,
                     int writer_pid, int reader_pid)
      : Base(ctx, spec.num_values(), spec.initial_state(), writer_pid,
             reader_pid) {}

  typename Env::template Op<Resp> apply(int pid, Op op) {
    if (op.kind == spec::MaxRegisterSpec::Kind::kReadMax) {
      return this->read_max(pid);
    }
    return this->write_max(pid, op.value);
  }
};

using HiMaxRegister = BasicHiMaxRegister<env::SimEnv>;
using PackedHiMaxRegister =
    BasicHiMaxRegister<env::SimEnv, env::PackedBins<env::SimEnv>>;

}  // namespace hi::core
