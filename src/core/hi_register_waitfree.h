// Algorithm 4: wait-free quiescent-HI SWSR K-valued register from binary
// registers (§4, Theorem 12).
//
// On top of Algorithm 2's array A, the reader announces itself via flag[1];
// a writer that sees a concurrent reader "helps" by publishing its previous
// value last-val in a dedicated array B, guaranteeing the reader always has
// a value to return after two failed TryReads (Lemma 10). Both sides then
// carefully erase their footprints (the reader clears B and the flags, the
// writer clears its own B entry when the reader no longer needs it —
// Lemma 35), so in a *quiescent* configuration the memory is canonical:
// A = e_v, B = 0, flags = 0. The implementation is quiescent HI but not
// state-quiescent HI — a pending Read can leave observable traces while no
// Write is pending — which is exactly the separation Table 1 establishes
// (wait-free + state-quiescent HI is impossible, Corollary 18).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/register_spec.h"

namespace hi::core {

class WaitFreeHiRegister {
 public:
  using Op = spec::RegisterSpec::Op;
  using Resp = spec::RegisterSpec::Resp;

  WaitFreeHiRegister(sim::Memory& memory, const spec::RegisterSpec& spec,
                     int writer_pid, int reader_pid)
      : num_values_(spec.num_values()),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid),
        last_val_(spec.initial_state()) {
    a_.reserve(num_values_);
    b_.reserve(num_values_);
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      a_.push_back(&memory.make<sim::BinaryRegister>(
          "A[" + std::to_string(v) + "]", v == spec.initial_state()));
    }
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      b_.push_back(&memory.make<sim::BinaryRegister>(
          "B[" + std::to_string(v) + "]", false));
    }
    flag1_ = &memory.make<sim::BinaryRegister>("flag[1]", false);
    flag2_ = &memory.make<sim::BinaryRegister>("flag[2]", false);
  }

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kRead) return read(pid);
    return write(pid, op.value);
  }

  /// Read() — Algorithm 4, lines 1–10.
  sim::OpTask<Resp> read(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    co_await flag1_->write(1);  // line 1: announce
    std::uint32_t val = 0;      // 0 encodes ⊥
    for (int attempt = 0; attempt < 2; ++attempt) {  // line 2
      const std::optional<std::uint32_t> got = co_await try_read();
      if (got.has_value()) {  // line 4: goto line 7
        val = *got;
        break;
      }
    }
    if (val == 0) {
      // Lines 5–6: read B; take the *last* index seen holding 1.
      for (std::uint32_t j = 1; j <= num_values_; ++j) {
        const std::uint8_t bit = co_await b(j).read();
        if (bit == 1) val = j;
      }
      assert(val != 0 && "Lemma 10: val != ⊥ at line 7");
    }
    co_await flag2_->write(1);  // line 7
    for (std::uint32_t j = 1; j <= num_values_; ++j) {  // line 8: clear B
      co_await b(j).write(0);
    }
    co_await flag1_->write(0);  // line 9
    co_await flag2_->write(0);
    co_return val;  // line 10
  }

  /// Write(v) — Algorithm 4, lines 11–19.
  sim::OpTask<Resp> write(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    (void)pid;
    assert(value >= 1 && value <= num_values_);
    // Line 11: check whether B is all-zero (scan; stop at the first 1, which
    // already falsifies the condition).
    bool b_all_zero = true;
    for (std::uint32_t j = 1; j <= num_values_; ++j) {
      const std::uint8_t bit = co_await b(j).read();
      if (bit == 1) {
        b_all_zero = false;
        break;
      }
    }
    if (b_all_zero) {
      const std::uint8_t f1_seen = co_await flag1_->read();
      if (f1_seen == 1) {  // line 12: concurrent reader?
        co_await b(last_val_).write(1);    // line 13: help with the old value
        // Line 14: read flag[2], then flag[1] (this order matters; Lemma 35).
        const std::uint8_t f2 = co_await flag2_->read();
        const std::uint8_t f1 = co_await flag1_->read();
        if (f2 == 1 || f1 == 0) {
          co_await b(last_val_).write(0);  // line 15: reader is done / gone
        }
      }
    }
    co_await a(value).write(1);                          // line 16
    for (std::uint32_t j = value; j-- > 1;) {            // line 17
      co_await a(j).write(0);
    }
    for (std::uint32_t j = value + 1; j <= num_values_; ++j) {  // line 18
      co_await a(j).write(0);
    }
    last_val_ = value;  // line 19 (writer-local; not part of mem(C))
    co_return 0;
  }

  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }

 private:
  /// TryRead — Algorithm 3, shared with Algorithm 2.
  sim::SubTask<std::optional<std::uint32_t>> try_read() {
    for (std::uint32_t j = 1; j <= num_values_; ++j) {
      const std::uint8_t bit = co_await a(j).read();
      if (bit == 1) {
        std::uint32_t val = j;
        for (std::uint32_t down = j; down-- > 1;) {
          const std::uint8_t low = co_await a(down).read();
          if (low == 1) val = down;
        }
        co_return val;
      }
    }
    co_return std::nullopt;
  }

  sim::BinaryRegister& a(std::uint32_t v) {
    assert(v >= 1 && v <= num_values_);
    return *a_[v - 1];
  }
  sim::BinaryRegister& b(std::uint32_t v) {
    assert(v >= 1 && v <= num_values_);
    return *b_[v - 1];
  }

  std::uint32_t num_values_;
  int writer_pid_;
  int reader_pid_;
  std::uint32_t last_val_;  // the writer's persistent local variable
  std::vector<sim::BinaryRegister*> a_;
  std::vector<sim::BinaryRegister*> b_;
  sim::BinaryRegister* flag1_ = nullptr;
  sim::BinaryRegister* flag2_ = nullptr;
};

}  // namespace hi::core
