// Algorithm 4: wait-free quiescent-HI SWSR K-valued register from binary
// registers (§4, Theorem 12).
//
// Single-source: the algorithm body lives in algo/registers.h
// (WaitFreeHiAlg); this file is the simulator instantiation behind the SWSR
// spec/pid harness interface. The hardware instantiation is
// rt::RtWaitFreeHiRegister. See algo/registers.h for the commentary (reader
// announces via flag[1]; the writer helps through array B; both erase their
// footprints — quiescent HI but not state-quiescent HI, the Table 1
// separation).
#pragma once

#include "algo/registers.h"
#include "core/swsr_wrapper.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"

namespace hi::core {

/// Padded-per-bit layout: the paper's exact primitive sequence (one binary
/// register per step) — what the step-count tests, adversaries and persisted
/// schedule traces drive.
using WaitFreeHiRegister =
    SwsrRegister<algo::WaitFreeHiAlgPadded, env::SimEnv>;

/// Packed layout: 64 bins per word-sized base object, scans one word load
/// per 64 bins (env::PackedBins; docs/ENV.md "Packed bin arrays").
using PackedWaitFreeHiRegister =
    SwsrRegister<algo::WaitFreeHiAlgPacked, env::SimEnv>;

}  // namespace hi::core
