// Algorithm 4: wait-free quiescent-HI SWSR K-valued register from binary
// registers (§4, Theorem 12).
//
// Single-source: the algorithm body lives in algo/registers.h
// (WaitFreeHiAlg); this file is the simulator instantiation behind the SWSR
// spec/pid harness interface. The hardware instantiation is
// rt::RtWaitFreeHiRegister. See algo/registers.h for the commentary (reader
// announces via flag[1]; the writer helps through array B; both erase their
// footprints — quiescent HI but not state-quiescent HI, the Table 1
// separation).
#pragma once

#include <cassert>
#include <cstdint>

#include "algo/registers.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/register_spec.h"

namespace hi::core {

class WaitFreeHiRegister {
 public:
  using Op = spec::RegisterSpec::Op;
  using Resp = spec::RegisterSpec::Resp;

  WaitFreeHiRegister(sim::Memory& memory, const spec::RegisterSpec& spec,
                     int writer_pid, int reader_pid)
      : alg_(memory, spec.num_values(), spec.initial_state()),
        writer_pid_(writer_pid),
        reader_pid_(reader_pid) {}

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kRead) return read(pid);
    return write(pid, op.value);
  }

  /// Read() — Algorithm 4, lines 1–10.
  sim::OpTask<Resp> read(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    return alg_.read();
  }

  /// Write(v) — Algorithm 4, lines 11–19.
  sim::OpTask<Resp> write(int pid, std::uint32_t value) {
    assert(pid == writer_pid_);
    (void)pid;
    return alg_.write(value);
  }

  int writer_pid() const { return writer_pid_; }
  int reader_pid() const { return reader_pid_; }

 private:
  algo::WaitFreeHiAlg<env::SimEnv> alg_;
  int writer_pid_;
  int reader_pid_;
};

}  // namespace hi::core
