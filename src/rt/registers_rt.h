// The §4 register algorithms on real hardware: Vidyasankar's Algorithm 1,
// the lock-free state-quiescent-HI Algorithm 2/3, and the wait-free
// quiescent-HI Algorithm 4.
//
// Single-source: the algorithm bodies live in algo/registers.h, templated
// over the execution environment AND the bin-array layout; these classes
// instantiate them with RtEnv and expose the synchronous call-style
// interface the stress tests and benchmarks drive. The DEFAULT layout is
// env::PackedBins — 64 bins per unpadded atomic word, scans one seq_cst
// word load per 64 bins, clearing passes one masked fetch_and per word —
// so a K=1024 register occupies 2 cache lines instead of 64 KiB and its
// hot-path scans cost O(K/64) loads. The `*Padded` aliases keep the
// padded-per-bit layout instantiable for the layout-comparison bench rows
// (docs/PERF.md "padded vs packed"). The simulator instantiations of the
// SAME bodies are in src/core; memory_image() here reports abstract bins,
// which match the simulator's mem(C)-derived bin image after identical
// operation sequences regardless of layout (tests/test_env_parity.cpp).
//
// Each call consumes its EagerTask on the calling thread, so every
// coroutine frame — including the scan Sub frames — recycles through that
// thread's FrameArena: steady-state reads and writes perform zero heap
// allocations (tests/test_rt_alloc.cpp, BENCH_registers.json allocs_per_op).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "algo/registers.h"
#include "env/rt_env.h"

namespace hi::rt {

/// Algorithm 1 [Vidyasankar]: wait-free, NOT history independent.
template <typename Bins>
class RtVidyasankarRegisterT {
 public:
  explicit RtVidyasankarRegisterT(std::uint32_t num_values,
                                  std::uint32_t initial = 1)
      : alg_(env::RtEnv::Ctx{}, num_values, initial) {}

  std::uint32_t read() { return alg_.read().get(); }
  void write(std::uint32_t value) { (void)alg_.write(value).get(); }

  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(alg_.num_values());
    alg_.encode_memory(image);
    return image;
  }
  /// Bytes of shared storage (the bench's bytes_per_object input).
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

 private:
  algo::VidyasankarAlg<env::RtEnv, Bins> alg_;
};

using RtVidyasankarRegister =
    RtVidyasankarRegisterT<env::PackedBins<env::RtEnv>>;
using RtVidyasankarRegisterPadded =
    RtVidyasankarRegisterT<env::PaddedBins<env::RtEnv>>;

/// Algorithm 2/3: lock-free, state-quiescent HI.
template <typename Bins>
class RtLockFreeHiRegisterT {
 public:
  explicit RtLockFreeHiRegisterT(std::uint32_t num_values,
                                 std::uint32_t initial = 1)
      : alg_(env::RtEnv::Ctx{}, num_values, initial) {}

  /// Read: retry TryRead until it finds a value. Lock-free only; under a
  /// write-saturated schedule this can spin (the Theorem 17 behaviour) —
  /// `max_attempts` lets benchmarks bound the wait and report failures.
  /// (With the packed layout and K ≤ 64 a TryRead always succeeds: the
  /// single word load is a full-array snapshot, which always contains a 1.)
  std::optional<std::uint32_t> read(std::uint64_t max_attempts = 0) {
    return alg_.read_bounded(max_attempts).get();
  }

  void write(std::uint32_t value) { (void)alg_.write(value).get(); }

  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(alg_.num_values());
    alg_.encode_memory(image);
    return image;
  }
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

 private:
  algo::LockFreeHiAlg<env::RtEnv, Bins> alg_;
};

using RtLockFreeHiRegister =
    RtLockFreeHiRegisterT<env::PackedBins<env::RtEnv>>;
using RtLockFreeHiRegisterPadded =
    RtLockFreeHiRegisterT<env::PaddedBins<env::RtEnv>>;

/// Algorithm 4: wait-free, quiescent HI (reader announces, writer helps
/// through array B, both erase their footprints).
template <typename Bins>
class RtWaitFreeHiRegisterT {
 public:
  explicit RtWaitFreeHiRegisterT(std::uint32_t num_values,
                                 std::uint32_t initial = 1)
      : alg_(env::RtEnv::Ctx{}, num_values, initial) {}

  std::uint32_t read() { return alg_.read().get(); }
  void write(std::uint32_t value) { (void)alg_.write(value).get(); }

  /// A[1..K], B[1..K], flag[1..2] — the simulator's mem(C) layout order.
  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(2 * alg_.num_values() + 2);
    alg_.encode_memory(image);
    return image;
  }
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

 private:
  algo::WaitFreeHiAlg<env::RtEnv, Bins> alg_;
};

using RtWaitFreeHiRegister =
    RtWaitFreeHiRegisterT<env::PackedBins<env::RtEnv>>;
using RtWaitFreeHiRegisterPadded =
    RtWaitFreeHiRegisterT<env::PaddedBins<env::RtEnv>>;

}  // namespace hi::rt
