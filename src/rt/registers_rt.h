// The §4 register algorithms on real hardware: Vidyasankar's Algorithm 1,
// the lock-free state-quiescent-HI Algorithm 2/3, and the wait-free
// quiescent-HI Algorithm 4.
//
// Single-source: the algorithm bodies live in algo/registers.h, templated
// over the execution environment; these classes instantiate them with RtEnv
// (arrays of cache-line-padded std::atomic<uint8_t> binary registers,
// seq_cst — the proofs assume atomic registers with a total order on
// operations) and expose the synchronous call-style interface the stress
// tests and benchmarks drive. The simulator instantiations of the SAME
// bodies are in src/core; memory_image() here matches the simulator's
// mem(C) snapshot word-for-word after identical operation sequences (see
// tests/test_env_parity.cpp).
//
// Each call consumes its EagerTask on the calling thread, so every
// coroutine frame recycles through that thread's FrameArena: steady-state
// reads and writes perform zero heap allocations (tests/test_rt_alloc.cpp,
// BENCH_registers.json allocs_per_op).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "algo/registers.h"
#include "env/rt_env.h"

namespace hi::rt {

/// Algorithm 1 [Vidyasankar]: wait-free, NOT history independent.
class RtVidyasankarRegister {
 public:
  explicit RtVidyasankarRegister(std::uint32_t num_values,
                                 std::uint32_t initial = 1)
      : alg_(env::RtEnv::Ctx{}, num_values, initial) {}

  std::uint32_t read() { return alg_.read().get(); }
  void write(std::uint32_t value) { (void)alg_.write(value).get(); }

  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(alg_.num_values());
    alg_.encode_memory(image);
    return image;
  }

 private:
  algo::VidyasankarAlg<env::RtEnv> alg_;
};

/// Algorithm 2/3: lock-free, state-quiescent HI.
class RtLockFreeHiRegister {
 public:
  explicit RtLockFreeHiRegister(std::uint32_t num_values,
                                std::uint32_t initial = 1)
      : alg_(env::RtEnv::Ctx{}, num_values, initial) {}

  /// Read: retry TryRead until it finds a value. Lock-free only; under a
  /// write-saturated schedule this can spin (the Theorem 17 behaviour) —
  /// `max_attempts` lets benchmarks bound the wait and report failures.
  std::optional<std::uint32_t> read(std::uint64_t max_attempts = 0) {
    return alg_.read_bounded(max_attempts).get();
  }

  void write(std::uint32_t value) { (void)alg_.write(value).get(); }

  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(alg_.num_values());
    alg_.encode_memory(image);
    return image;
  }

 private:
  algo::LockFreeHiAlg<env::RtEnv> alg_;
};

/// Algorithm 4: wait-free, quiescent HI (reader announces, writer helps
/// through array B, both erase their footprints).
class RtWaitFreeHiRegister {
 public:
  explicit RtWaitFreeHiRegister(std::uint32_t num_values,
                                std::uint32_t initial = 1)
      : alg_(env::RtEnv::Ctx{}, num_values, initial) {}

  std::uint32_t read() { return alg_.read().get(); }
  void write(std::uint32_t value) { (void)alg_.write(value).get(); }

  /// A[1..K], B[1..K], flag[1..2] — the simulator's mem(C) layout order.
  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(2 * alg_.num_values() + 2);
    alg_.encode_memory(image);
    return image;
  }

 private:
  algo::WaitFreeHiAlg<env::RtEnv> alg_;
};

}  // namespace hi::rt
