// The §4 register algorithms on real hardware: Vidyasankar's Algorithm 1,
// the lock-free state-quiescent-HI Algorithm 2/3, and the wait-free
// quiescent-HI Algorithm 4, each over arrays of std::atomic<uint8_t> binary
// registers (seq_cst — these algorithms' proofs assume atomic registers
// with a total order on operations). See src/core/*.h for the line-by-line
// paper commentary; this file mirrors those implementations for benchmarks
// and real-thread stress tests.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/padded.h"

namespace hi::rt {

namespace detail {
using BinaryCell = util::Padded<std::atomic<std::uint8_t>>;
}  // namespace detail

/// Algorithm 1 [Vidyasankar]: wait-free, NOT history independent.
class RtVidyasankarRegister {
 public:
  explicit RtVidyasankarRegister(std::uint32_t num_values,
                                 std::uint32_t initial = 1)
      : num_values_(num_values), a_(num_values) {
    assert(initial >= 1 && initial <= num_values);
    for (auto& cell : a_) cell->store(0, std::memory_order_relaxed);
    a_[initial - 1]->store(1, std::memory_order_seq_cst);
  }

  std::uint32_t read() const {
    std::uint32_t j = 1;
    while (slot(j).load(std::memory_order_seq_cst) == 0) {
      ++j;
      assert(j <= num_values_);
    }
    std::uint32_t val = j;
    for (std::uint32_t down = j; down-- > 1;) {
      if (slot(down).load(std::memory_order_seq_cst) == 1) val = down;
    }
    return val;
  }

  void write(std::uint32_t value) {
    assert(value >= 1 && value <= num_values_);
    slot(value).store(1, std::memory_order_seq_cst);
    for (std::uint32_t j = value; j-- > 1;) {
      slot(j).store(0, std::memory_order_seq_cst);
    }
  }

  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image(num_values_);
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      image[v - 1] = slot(v).load(std::memory_order_seq_cst);
    }
    return image;
  }

 private:
  std::atomic<std::uint8_t>& slot(std::uint32_t v) { return *a_[v - 1]; }
  const std::atomic<std::uint8_t>& slot(std::uint32_t v) const {
    return *a_[v - 1];
  }

  std::uint32_t num_values_;
  mutable std::vector<detail::BinaryCell> a_;
};

/// Algorithm 2/3: lock-free, state-quiescent HI.
class RtLockFreeHiRegister {
 public:
  explicit RtLockFreeHiRegister(std::uint32_t num_values,
                                std::uint32_t initial = 1)
      : num_values_(num_values), a_(num_values) {
    for (auto& cell : a_) cell->store(0, std::memory_order_relaxed);
    a_[initial - 1]->store(1, std::memory_order_seq_cst);
  }

  /// Read: retry TryRead until it finds a value. Lock-free only; under a
  /// write-saturated schedule this can spin (the Theorem 17 behaviour) —
  /// `max_attempts` lets benchmarks bound the wait and report failures.
  std::optional<std::uint32_t> read(std::uint64_t max_attempts = 0) const {
    for (std::uint64_t attempt = 0; max_attempts == 0 || attempt < max_attempts;
         ++attempt) {
      const std::optional<std::uint32_t> val = try_read();
      if (val.has_value()) return val;
    }
    return std::nullopt;
  }

  void write(std::uint32_t value) {
    assert(value >= 1 && value <= num_values_);
    slot(value).store(1, std::memory_order_seq_cst);
    for (std::uint32_t j = value; j-- > 1;) {
      slot(j).store(0, std::memory_order_seq_cst);
    }
    for (std::uint32_t j = value + 1; j <= num_values_; ++j) {
      slot(j).store(0, std::memory_order_seq_cst);
    }
  }

  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image(num_values_);
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      image[v - 1] = slot(v).load(std::memory_order_seq_cst);
    }
    return image;
  }

 private:
  std::optional<std::uint32_t> try_read() const {
    for (std::uint32_t j = 1; j <= num_values_; ++j) {
      if (slot(j).load(std::memory_order_seq_cst) == 1) {
        std::uint32_t val = j;
        for (std::uint32_t down = j; down-- > 1;) {
          if (slot(down).load(std::memory_order_seq_cst) == 1) val = down;
        }
        return val;
      }
    }
    return std::nullopt;
  }

  std::atomic<std::uint8_t>& slot(std::uint32_t v) { return *a_[v - 1]; }
  const std::atomic<std::uint8_t>& slot(std::uint32_t v) const {
    return *a_[v - 1];
  }

  std::uint32_t num_values_;
  mutable std::vector<detail::BinaryCell> a_;
};

/// Algorithm 4: wait-free, quiescent HI (reader announces, writer helps
/// through array B, both erase their footprints).
class RtWaitFreeHiRegister {
 public:
  explicit RtWaitFreeHiRegister(std::uint32_t num_values,
                                std::uint32_t initial = 1)
      : num_values_(num_values),
        a_(num_values),
        b_(num_values),
        last_val_(initial) {
    for (auto& cell : a_) cell->store(0, std::memory_order_relaxed);
    for (auto& cell : b_) cell->store(0, std::memory_order_relaxed);
    flag_[0].store(0, std::memory_order_relaxed);
    flag_[1].store(0, std::memory_order_relaxed);
    a_[initial - 1]->store(1, std::memory_order_seq_cst);
  }

  std::uint32_t read() {
    flag_[0].store(1, std::memory_order_seq_cst);  // line 1
    std::uint32_t val = 0;
    for (int attempt = 0; attempt < 2; ++attempt) {  // lines 2–4
      const std::optional<std::uint32_t> got = try_read();
      if (got.has_value()) {
        val = *got;
        break;
      }
    }
    if (val == 0) {  // lines 5–6
      for (std::uint32_t j = 1; j <= num_values_; ++j) {
        if (b(j).load(std::memory_order_seq_cst) == 1) val = j;
      }
      assert(val != 0 && "Lemma 10");
    }
    flag_[1].store(1, std::memory_order_seq_cst);  // line 7
    for (std::uint32_t j = 1; j <= num_values_; ++j) {  // line 8
      b(j).store(0, std::memory_order_seq_cst);
    }
    flag_[0].store(0, std::memory_order_seq_cst);  // line 9
    flag_[1].store(0, std::memory_order_seq_cst);
    return val;  // line 10
  }

  void write(std::uint32_t value) {
    assert(value >= 1 && value <= num_values_);
    bool b_all_zero = true;  // line 11
    for (std::uint32_t j = 1; j <= num_values_; ++j) {
      if (b(j).load(std::memory_order_seq_cst) == 1) {
        b_all_zero = false;
        break;
      }
    }
    if (b_all_zero) {
      if (flag_[0].load(std::memory_order_seq_cst) == 1) {  // line 12
        b(last_val_).store(1, std::memory_order_seq_cst);   // line 13
        const std::uint8_t f2 = flag_[1].load(std::memory_order_seq_cst);
        const std::uint8_t f1 = flag_[0].load(std::memory_order_seq_cst);
        if (f2 == 1 || f1 == 0) {                           // line 14
          b(last_val_).store(0, std::memory_order_seq_cst);  // line 15
        }
      }
    }
    a(value).store(1, std::memory_order_seq_cst);  // line 16
    for (std::uint32_t j = value; j-- > 1;) {      // line 17
      a(j).store(0, std::memory_order_seq_cst);
    }
    for (std::uint32_t j = value + 1; j <= num_values_; ++j) {  // line 18
      a(j).store(0, std::memory_order_seq_cst);
    }
    last_val_ = value;  // line 19 (writer-local)
  }

  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(2 * num_values_ + 2);
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      image.push_back(a(v).load(std::memory_order_seq_cst));
    }
    for (std::uint32_t v = 1; v <= num_values_; ++v) {
      image.push_back(b(v).load(std::memory_order_seq_cst));
    }
    image.push_back(flag_[0].load(std::memory_order_seq_cst));
    image.push_back(flag_[1].load(std::memory_order_seq_cst));
    return image;
  }

 private:
  std::optional<std::uint32_t> try_read() const {
    for (std::uint32_t j = 1; j <= num_values_; ++j) {
      if (a(j).load(std::memory_order_seq_cst) == 1) {
        std::uint32_t val = j;
        for (std::uint32_t down = j; down-- > 1;) {
          if (a(down).load(std::memory_order_seq_cst) == 1) val = down;
        }
        return val;
      }
    }
    return std::nullopt;
  }

  std::atomic<std::uint8_t>& a(std::uint32_t v) { return *a_[v - 1]; }
  const std::atomic<std::uint8_t>& a(std::uint32_t v) const {
    return *a_[v - 1];
  }
  std::atomic<std::uint8_t>& b(std::uint32_t v) { return *b_[v - 1]; }
  const std::atomic<std::uint8_t>& b(std::uint32_t v) const {
    return *b_[v - 1];
  }

  std::uint32_t num_values_;
  mutable std::vector<detail::BinaryCell> a_;
  mutable std::vector<detail::BinaryCell> b_;
  mutable std::atomic<std::uint8_t> flag_[2];
  std::uint32_t last_val_;  // single-writer local state
};

}  // namespace hi::rt
