// Real-hardware comparators for the benchmarks (experiment E14):
//
//   RtLockObject     — a mutex around the sequential state: the simplest
//                      correct object; blocking, trivially "HI" only because
//                      the state is the entire memory, but not lock-free.
//   RtCasLoopObject  — the classic lock-free LL/SC-style universal object
//                      (§6: "there is a simple lock-free universal
//                      implementation"): CAS retry loop on a single word, no
//                      helping, no announce — perfect HI but NOT wait-free.
//   RtLeakyUniversal — Fatourou–Kallimanis-shaped wait-free construction
//                      whose version counter, announce and result tables are
//                      never cleared: the non-HI baseline, rt edition.
//                      Single-source: the algorithm body lives in
//                      algo/leaky_universal.h (LeakyUniversalAlg),
//                      instantiated here with RtEnv — the simulator
//                      instantiation of the SAME body is
//                      baseline::LeakyUniversal. Its single-frame apply()
//                      recycles through the calling thread's FrameArena
//                      (zero steady-state heap allocations), keeping the
//                      E14 comparison about clearing cost, not allocators.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "algo/leaky_universal.h"
#include "env/rt_env.h"
#include "spec/spec.h"

namespace hi::rt {

/// Mutex-protected sequential object.
template <spec::SequentialSpec S>
class RtLockObject {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  explicit RtLockObject(const S& spec)
      : spec_(spec), state_(spec.initial_state()) {}

  Resp apply(int pid, Op op) {
    (void)pid;
    const std::scoped_lock guard(mutex_);
    auto [next, rsp] = spec_.apply(state_, op);
    state_ = next;
    return rsp;
  }

 private:
  const S& spec_;
  std::mutex mutex_;
  typename S::State state_;
};

/// Single-word CAS retry loop: lock-free, perfect HI, not wait-free.
template <spec::SequentialSpec S>
class RtCasLoopObject {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  explicit RtCasLoopObject(const S& spec)
      : spec_(spec), state_(spec.encode_state(spec.initial_state())) {}

  Resp apply(int pid, Op op) {
    (void)pid;
    if (spec_.is_read_only(op)) {
      const std::uint64_t raw = state_.load(std::memory_order_seq_cst);
      return spec_.apply(spec_.decode_state(raw), op).second;
    }
    std::uint64_t raw = state_.load(std::memory_order_seq_cst);
    for (;;) {
      auto [next, rsp] = spec_.apply(spec_.decode_state(raw), op);
      const std::uint64_t desired = spec_.encode_state(next);
      if (state_.compare_exchange_strong(raw, desired,
                                         std::memory_order_seq_cst)) {
        return rsp;
      }
      // raw refreshed; retry. NOTE: without a version tag this is ABA-prone
      // in general; it is sound here because the installed word *is* the
      // full abstract state, so Δ applied to an equal word is equivalent.
    }
  }

 private:
  const S& spec_;
  std::atomic<std::uint64_t> state_;
};

/// Wait-free but leaky: version counter + immortal announce/result tables.
/// Thin synchronous wrapper over the single-source LeakyUniversalAlg body.
template <spec::SequentialSpec S>
class RtLeakyUniversal {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  RtLeakyUniversal(const S& spec, int num_processes)
      : alg_(env::RtEnv::Ctx{}, spec, num_processes) {}

  Resp apply(int pid, Op op) { return alg_.apply(pid, op).get(); }

  // The leaks, quantified (observer-side; valid at quiescence).
  std::uint64_t version() const { return alg_.version(); }
  std::uint64_t head_state_encoded() const {
    return alg_.head_state_encoded();
  }
  std::uint64_t peek_announce(int pid) const { return alg_.peek_announce(pid); }
  std::uint64_t peek_result(int pid) const { return alg_.peek_result(pid); }
  /// Bytes of shared storage (the bench's bytes_per_object input).
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

 private:
  algo::LeakyUniversalAlg<env::RtEnv, S> alg_;
};

}  // namespace hi::rt
