// Real-hardware comparators for the benchmarks (experiment E14):
//
//   RtLockObject     — a mutex around the sequential state: the simplest
//                      correct object; blocking, trivially "HI" only because
//                      the state is the entire memory, but not lock-free.
//   RtCasLoopObject  — the classic lock-free LL/SC-style universal object
//                      (§6: "there is a simple lock-free universal
//                      implementation"): CAS retry loop on a single word, no
//                      helping, no announce — perfect HI but NOT wait-free.
//   RtLeakyUniversal — Fatourou–Kallimanis-shaped wait-free construction
//                      whose version counter, announce and result tables are
//                      never cleared: the non-HI baseline, rt edition.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "rt/atomic128.h"
#include "spec/spec.h"
#include "util/padded.h"

namespace hi::rt {

/// Mutex-protected sequential object.
template <spec::SequentialSpec S>
class RtLockObject {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  explicit RtLockObject(const S& spec)
      : spec_(spec), state_(spec.initial_state()) {}

  Resp apply(int pid, Op op) {
    (void)pid;
    const std::scoped_lock guard(mutex_);
    auto [next, rsp] = spec_.apply(state_, op);
    state_ = next;
    return rsp;
  }

 private:
  const S& spec_;
  std::mutex mutex_;
  typename S::State state_;
};

/// Single-word CAS retry loop: lock-free, perfect HI, not wait-free.
template <spec::SequentialSpec S>
class RtCasLoopObject {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  explicit RtCasLoopObject(const S& spec)
      : spec_(spec), state_(spec.encode_state(spec.initial_state())) {}

  Resp apply(int pid, Op op) {
    (void)pid;
    if (spec_.is_read_only(op)) {
      const std::uint64_t raw = state_.load(std::memory_order_seq_cst);
      return spec_.apply(spec_.decode_state(raw), op).second;
    }
    std::uint64_t raw = state_.load(std::memory_order_seq_cst);
    for (;;) {
      auto [next, rsp] = spec_.apply(spec_.decode_state(raw), op);
      const std::uint64_t desired = spec_.encode_state(next);
      if (state_.compare_exchange_strong(raw, desired,
                                         std::memory_order_seq_cst)) {
        return rsp;
      }
      // raw refreshed; retry. NOTE: without a version tag this is ABA-prone
      // in general; it is sound here because the installed word *is* the
      // full abstract state, so Δ applied to an equal word is equivalent.
    }
  }

 private:
  const S& spec_;
  std::atomic<std::uint64_t> state_;
};

/// Wait-free but leaky: version counter + immortal announce/result tables.
template <spec::SequentialSpec S>
class RtLeakyUniversal {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  RtLeakyUniversal(const S& spec, int num_processes)
      : spec_(spec),
        n_(num_processes),
        head_(Word128{spec.encode_state(spec.initial_state()), 0}),
        announce_(num_processes),
        result_(num_processes),
        local_seq_(num_processes),
        priority_(num_processes) {
    for (int i = 0; i < n_; ++i) {
      announce_[i]->store(0, std::memory_order_relaxed);
      result_[i]->store(0, std::memory_order_relaxed);
      *local_seq_[i] = 0;
      *priority_[i] = i;
    }
  }

  Resp apply(int pid, Op op) {
    if (spec_.is_read_only(op)) {
      return spec_.apply(spec_.decode_state(head_.load().value & 0xffffffffu),
                         op)
          .second;
    }
    assert(pid >= 0 && pid < n_);
    const std::uint64_t seq = ++*local_seq_[pid];
    assert(seq <= 0xffffffu);
    announce_[pid]->store((seq << 32) | spec_.encode_op(op),
                          std::memory_order_seq_cst);  // never cleared: leak

    for (;;) {
      Word128 head = head_.load();
      // Persist the previously applied op's result before building on it.
      if ((head.value >> 32) > 0) {  // version > 0: a last-applied record
        const int last_pid = static_cast<int>((head.ctx >> 56) & 0x3fu);
        const std::uint64_t last_seq = (head.ctx >> 32) & 0xffffffu;
        const std::uint32_t last_rsp =
            static_cast<std::uint32_t>(head.ctx & 0xffffffffu);
        const std::uint64_t record = (last_seq << 32) | last_rsp;
        // Monotone CAS: a plain guarded store would race with a helper
        // persisting a NEWER record, rolling result[] backwards and enabling
        // a double application — exactly the class of subtlety Algorithm 5's
        // LL/SC response handshake is designed around.
        std::uint64_t existing =
            result_[last_pid]->load(std::memory_order_seq_cst);
        while ((existing >> 32) < last_seq &&
               !result_[last_pid]->compare_exchange_weak(
                   existing, record, std::memory_order_seq_cst)) {
        }
      }
      const std::uint64_t mine = result_[pid]->load(std::memory_order_seq_cst);
      if ((mine >> 32) == seq) {
        return spec_.decode_resp(
            static_cast<std::uint32_t>(mine & 0xffffffffu));
      }

      // Pick a target: the rotating candidate if it has an unapplied
      // announcement, else self.
      int target = *priority_[pid];
      std::uint64_t ann = announce_[target]->load(std::memory_order_seq_cst);
      const std::uint64_t target_done =
          result_[target]->load(std::memory_order_seq_cst) >> 32;
      const bool target_in_head =
          (head.value >> 32) > 0 &&
          static_cast<int>((head.ctx >> 56) & 0x3fu) == target &&
          ((head.ctx >> 32) & 0xffffffu) >= (ann >> 32);
      if (ann == 0 || (ann >> 32) <= target_done || target_in_head) {
        target = pid;
        ann = (seq << 32) | spec_.encode_op(op);
        const std::uint64_t my_done =
            result_[pid]->load(std::memory_order_seq_cst) >> 32;
        const bool mine_in_head =
            (head.value >> 32) > 0 &&
            static_cast<int>((head.ctx >> 56) & 0x3fu) == pid &&
            ((head.ctx >> 32) & 0xffffffu) >= seq;
        if (my_done >= seq || mine_in_head) continue;
      }

      const auto [next_state, rsp] = spec_.apply(
          spec_.decode_state(head.value & 0xffffffffu),
          spec_.decode_op(static_cast<std::uint32_t>(ann & 0xffffffffu)));
      Word128 desired;
      const std::uint64_t version = (head.value >> 32) + 1;
      desired.value =
          spec_.encode_state(next_state) | (version << 32);  // leak: version
      desired.ctx = (static_cast<std::uint64_t>(target) << 56) |
                    (((ann >> 32) & 0xffffffu) << 32) |
                    spec_.encode_resp(rsp);  // leak: last op's (pid,seq,rsp)
      if (head_.compare_exchange(head, desired)) {
        *priority_[pid] = (*priority_[pid] + 1) % n_;
      }
    }
  }

  std::uint64_t version() const { return head_.load().value >> 32; }
  std::uint64_t head_state_encoded() const {
    return head_.load().value & 0xffffffffu;
  }

 private:
  const S& spec_;
  int n_;
  Atomic128 head_;
  std::vector<util::Padded<std::atomic<std::uint64_t>>> announce_;
  std::vector<util::Padded<std::atomic<std::uint64_t>>> result_;
  std::vector<util::Padded<std::uint64_t>> local_seq_;
  std::vector<util::Padded<int>> priority_;
};

}  // namespace hi::rt
