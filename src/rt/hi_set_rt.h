// §5.1's perfect-HI set on real hardware: every operation is a single
// seq_cst atomic access to one cache-line-padded binary cell, so the memory
// is the membership bitmap after every instruction — perfect HI, wait-free,
// fully multi-writer/multi-reader.
//
// Single-source: the algorithm body lives in algo/hi_set.h (HiSetAlg),
// instantiated here with RtEnv. The simulator instantiation of the SAME
// body is core::HiSet; memory_image() here matches the simulator's mem(C)
// snapshot word-for-word after identical operation sequences
// (tests/test_env_parity.cpp). Single-frame operations consumed on the
// calling thread: each thread's FrameArena recycles them, so steady-state
// insert/remove/lookup never touch the heap.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/hi_set.h"
#include "env/rt_env.h"

namespace hi::rt {

class RtHiSet {
 public:
  explicit RtHiSet(std::uint32_t domain, std::uint64_t initial_bits = 0)
      : alg_(env::RtEnv::Ctx{}, domain, initial_bits) {}

  bool insert(std::uint32_t value) { return alg_.insert(value).get(); }
  bool remove(std::uint32_t value) { return alg_.remove(value).get(); }
  bool lookup(std::uint32_t value) { return alg_.lookup(value).get(); }

  /// S[1..t] — the simulator's mem(C) layout order.
  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(alg_.domain());
    alg_.encode_memory(image);
    return image;
  }

  std::uint32_t domain() const { return alg_.domain(); }

 private:
  algo::HiSetAlg<env::RtEnv> alg_;
};

}  // namespace hi::rt
