// §5.1's perfect-HI set on real hardware: every operation is a single
// seq_cst atomic access to one cache-line-padded binary cell, so the memory
// is the membership bitmap after every instruction — perfect HI, wait-free,
// fully multi-writer/multi-reader.
//
// Single-source: the algorithm body lives in algo/hi_set.h (HiSetAlg),
// instantiated here with RtEnv. The simulator instantiation of the SAME
// body is core::HiSet; memory_image() here matches the simulator's mem(C)
// snapshot word-for-word after identical operation sequences
// (tests/test_env_parity.cpp). Single-frame operations consumed on the
// calling thread: each thread's FrameArena recycles them, so steady-state
// insert/remove/lookup never touch the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algo/hi_set.h"
#include "env/rt_env.h"

namespace hi::rt {

/// Default layout: env::PackedBins — the whole set is ONE atomic word whose
/// value IS the membership bitmap (insert = fetch_or, remove = fetch_and,
/// lookup = load; still one seq_cst atomic per op, still perfect HI). The
/// `RtHiSetPadded` alias keeps the per-element padded layout instantiable:
/// disjoint-element writers never share a cache line there, whereas the
/// packed word serializes them — the padded-vs-packed tradeoff the bench's
/// layout rows quantify (docs/PERF.md).
template <typename Bins>
class RtHiSetT {
 public:
  explicit RtHiSetT(std::uint32_t domain, std::uint64_t initial_bits = 0)
      : alg_(env::RtEnv::Ctx{}, domain, initial_bits) {}

  bool insert(std::uint32_t value) { return alg_.insert(value).get(); }
  bool remove(std::uint32_t value) { return alg_.remove(value).get(); }
  bool lookup(std::uint32_t value) { return alg_.lookup(value).get(); }

  /// S[1..t] — the simulator's mem(C) layout order.
  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(alg_.domain());
    alg_.encode_memory(image);
    return image;
  }

  std::uint32_t domain() const { return alg_.domain(); }
  /// Bytes of shared storage (the bench's bytes_per_object input).
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

 private:
  algo::HiSetAlg<env::RtEnv, Bins> alg_;
};

using RtHiSet = RtHiSetT<env::PackedBins<env::RtEnv>>;
using RtHiSetPadded = RtHiSetT<env::PaddedBins<env::RtEnv>>;

}  // namespace hi::rt
