// The wait-free-simulated Alg 2/3 register on real hardware: the
// Kogan–Petrank-style combinator (algo/wait_free_sim.h) instantiated over
// RtEnv. Unlike the other rt register wrappers this one takes an explicit
// pid per call — the combinator's operation records, fail streaks and
// helping accounting are per-process, so harness threads must identify
// themselves (pid ∈ [0, num_processes)).
//
// Frame discipline: every combinator Sub (help_head, enqueue, the helped
// attempt chain) is an EagerTask consumed on the calling thread, so the
// whole fast path AND the slow path recycle through the per-thread
// FrameArena — allocs_per_op stays 0 in BENCH_waitfree_sim.json even when
// every read is helped.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "algo/wait_free_sim.h"
#include "env/rt_env.h"

namespace hi::rt {

/// Wait-free K-valued register via the simulation combinator. Reads are
/// helped slow-path-capable operations; writes run direct but help first.
template <typename Bins>
class RtWaitFreeSimHiRegisterT {
 public:
  explicit RtWaitFreeSimHiRegisterT(std::uint32_t num_values,
                                    std::uint32_t initial = 1,
                                    int num_processes = 2,
                                    std::uint32_t fast_limit = 1)
      : alg_(env::RtEnv::Ctx{}, num_values, initial, num_processes,
             fast_limit) {}

  /// Wait-free read by process `pid` (default: the conventional reader pid
  /// used across the SWSR suites).
  std::uint32_t read(int pid = 1) { return alg_.read(pid).get(); }
  /// Write by process `pid` (default: the conventional writer pid 0).
  void write(std::uint32_t value, int pid = 0) {
    (void)alg_.write(pid, value).get();
  }

  /// Inner A bins (one byte per bin), then each combinator word as 8 LE
  /// bytes — same layout as the sim instantiation's encode_memory, which is
  /// what the parity suite compares.
  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    alg_.encode_memory(image);
    return image;
  }
  /// The part that remains canonical per abstract state (Thm 17 probe).
  std::vector<std::uint8_t> inner_image() const {
    std::vector<std::uint8_t> image;
    alg_.encode_inner_memory(image);
    return image;
  }
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

  std::uint64_t total_ops() const { return alg_.total_ops(); }
  std::uint64_t slow_path_entries() const { return alg_.slow_path_entries(); }
  std::uint64_t helped_completions() const {
    return alg_.helped_completions();
  }
  void reset_stats() { alg_.reset_stats(); }

  algo::WaitFreeSimHiAlg<env::RtEnv, Bins>& alg() { return alg_; }

 private:
  algo::WaitFreeSimHiAlg<env::RtEnv, Bins> alg_;
};

using RtWaitFreeSimHiRegister =
    RtWaitFreeSimHiRegisterT<env::PackedBins<env::RtEnv>>;
using RtWaitFreeSimHiRegisterPadded =
    RtWaitFreeSimHiRegisterT<env::PaddedBins<env::RtEnv>>;

}  // namespace hi::rt
