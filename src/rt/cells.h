// The hardware base-object cells and their primitive bodies, factored out of
// RtEnv so that BOTH real-hardware backends share one memory layout and one
// set of std::atomic operations:
//
//   * env::RtEnv     — eager execution: each primitive runs immediately at
//                      the co_await site (EagerTask never suspends);
//   * env::ReplayEnv — suspended execution: each primitive is wrapped in a
//                      sim::Primitive awaiter and runs when a scheduler
//                      grants the process its step, which is what lets a
//                      recorded sim schedule drive the SAME atomics
//                      step-by-step (tests/test_replay_*.cpp).
//
// Everything here is seq_cst after construction — the §4/§6 proofs assume
// atomic base objects with a total order on operations — and the CAS base
// object is the 16-byte Atomic128 word (CMPXCHG16B via -mcx16). Binary and
// word cells are cache-line padded so contention comes from the algorithm,
// not the layout.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "algo/values.h"
#include "rt/atomic128.h"
#include "util/padded.h"

namespace hi::rt {

/// One binary (Boolean) register — the small base object of §4/§5.1.
using BinCell = util::Padded<std::atomic<std::uint8_t>>;

/// Packed bin-array storage: 64 binary registers per 64-bit atomic word,
/// deliberately UNPADDED — the whole point of the packed layout is spatial
/// density (K=1024 bins fit in 128 bytes = 2 cache lines, vs 64 KiB for the
/// padded-per-bit layout), so scans touch O(K/64) lines. The flip side is
/// word contention: writers to bins sharing a word serialize on one RMW
/// cache line, which is why the padded layout stays first-class for
/// per-element-parallel workloads (docs/PERF.md "padded vs packed").
struct PackedBits {
  std::uint32_t bins = 0;  // number of 1-based bins; tail bits stay 0
  std::vector<std::atomic<std::uint64_t>> words;
};

/// One 64-bit CAS word — the per-process announce/result table cells of the
/// leaky universal baseline.
using WordCell = util::Padded<std::atomic<std::uint64_t>>;

/// The CAS base object of Algorithm 6 (§6.3): a 16-byte atomic word holding
/// the packed algorithm value plus the 64-bit context bitmask.
struct alignas(util::kCacheLine) CasCell128 {
  Atomic128 word;

  CasCell128() = default;
  explicit CasCell128(Word128 initial) : word(initial) {}
};

/// The CAS base-object state as the algorithm layer sees it on hardware.
using CasWord = algo::CtxWord<std::uint64_t>;

// ---- primitive bodies (each is ONE atomic operation == one §2 step) ----

inline std::uint8_t bin_read(std::atomic<std::uint8_t>& cell) {
  return cell.load(std::memory_order_seq_cst);
}
inline void bin_write(std::atomic<std::uint8_t>& cell, std::uint8_t value) {
  cell.store(value, std::memory_order_seq_cst);
}

inline CasWord cas128_read(const CasCell128& cell) {
  const Word128 w = cell.word.load();
  return CasWord{w.value, w.ctx};
}
/// Failure-word CAS: one CMPXCHG16B; compare_exchange writes the current
/// word back into `want` on failure, which becomes `observed`.
inline algo::CasResult<CasWord> cas128_cas(CasCell128& cell,
                                           const CasWord& expected,
                                           const CasWord& desired) {
  Word128 want{expected.value, expected.ctx};
  const bool installed =
      cell.word.compare_exchange(want, Word128{desired.value, desired.ctx});
  return algo::CasResult<CasWord>{installed, CasWord{want.value, want.ctx}};
}
inline void cas128_write(CasCell128& cell, const CasWord& desired) {
  cell.word.store(Word128{desired.value, desired.ctx});
}

// Packed bin-array primitives (env::PackedBins): one atomic operation on
// one 64-bin word each. The word load is a free 64-bin snapshot — strictly
// stronger than the paper's single-bit register read — and the masked RMWs
// set/clear up to 64 bins in one step.
inline std::uint64_t packed_load(const std::atomic<std::uint64_t>& word) {
  return word.load(std::memory_order_seq_cst);
}
/// One LOCK OR: sets every bin in `mask`.
inline void packed_or(std::atomic<std::uint64_t>& word, std::uint64_t mask) {
  word.fetch_or(mask, std::memory_order_seq_cst);
}
/// One LOCK AND: keeps only the bins in `mask`.
inline void packed_and(std::atomic<std::uint64_t>& word, std::uint64_t mask) {
  word.fetch_and(mask, std::memory_order_seq_cst);
}

inline std::uint64_t word_read(std::atomic<std::uint64_t>& cell) {
  return cell.load(std::memory_order_seq_cst);
}
inline void word_write(std::atomic<std::uint64_t>& cell, std::uint64_t value) {
  cell.store(value, std::memory_order_seq_cst);
}
/// Failure-word CAS on a 64-bit word: one LOCK CMPXCHG.
inline algo::CasResult<std::uint64_t> word_cas(std::atomic<std::uint64_t>& cell,
                                               std::uint64_t expected,
                                               std::uint64_t desired) {
  std::uint64_t want = expected;
  const bool installed =
      cell.compare_exchange_strong(want, desired, std::memory_order_seq_cst);
  return algo::CasResult<std::uint64_t>{installed, want};
}

}  // namespace hi::rt
