// The sharded perfect-HI store on real hardware: millions of keys striped
// over N independent multi-word packed sets (algo/sharded_set.h), every
// membership operation one seq_cst atomic access to one word of one shard.
//
// Single-source: the facade body lives in algo/sharded_set.h
// (ShardedHiSet), instantiated here with RtEnv. The simulator instantiation
// of the SAME body is core::ShardedHiSet; memory_image() here matches the
// simulator's mem(C) snapshot word-for-word after identical operation
// sequences (tests/test_env_parity.cpp). Operations forward the owning
// shard's single-frame coroutine, consumed on the calling thread, so each
// thread's FrameArena recycles the one frame and steady-state
// insert/remove/lookup never touch the heap (tests/test_rt_alloc.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "algo/sharded_set.h"
#include "env/rt_env.h"

namespace hi::rt {

/// Default layout: env::PackedBins — each shard is ceil(size/64) contiguous
/// unpadded atomic words whose values ARE the shard's membership bitmap, so
/// the whole store costs ~domain/8 bytes plus one tail word per shard. The
/// placement knob (algo::ShardPlacement) picks how neighbouring keys map to
/// shards/words — see the tradeoff note in algo/sharded_set.h and the
/// BENCH_sharded.json rows in docs/PERF.md.
template <typename Bins>
class RtShardedHiSetT {
 public:
  /// `initial_words`: optional GLOBAL membership bitmap (bit k-1 = key k),
  /// scattered to the shards through the placement map — same contract as
  /// the algo-layer constructor, so parity tests can seed identical
  /// non-trivial states on both backends.
  RtShardedHiSetT(std::uint32_t domain, std::uint32_t shard_count,
                  algo::ShardPlacement placement =
                      algo::ShardPlacement::kBlocked,
                  std::span<const std::uint64_t> initial_words = {})
      : alg_(env::RtEnv::Ctx{}, domain, shard_count, placement,
             initial_words) {}

  bool insert(std::uint32_t key) { return alg_.insert(key).get(); }
  bool remove(std::uint32_t key) { return alg_.remove(key).get(); }
  bool lookup(std::uint32_t key) { return alg_.lookup(key).get(); }

  /// Full-membership audit via per-shard word scans; appends global keys to
  /// `out` (per-shard ascending — globally sorted under kBlocked). Returns
  /// the member count. Reserve `out` to keep the audit allocation-free.
  std::uint32_t snapshot_members(std::vector<std::uint32_t>& out) {
    return alg_.snapshot_members(out).get();
  }

  /// Concatenated shard bitmaps — the simulator's mem(C) layout order.
  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(alg_.domain());
    alg_.encode_memory(image);
    return image;
  }

  std::uint32_t domain() const { return alg_.domain(); }
  std::uint32_t shard_count() const { return alg_.shard_count(); }
  std::uint32_t shard_of(std::uint32_t key) const { return alg_.shard_of(key); }
  /// Bytes of shared storage (the bench's bytes_per_object input).
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

 private:
  algo::ShardedHiSet<env::RtEnv, Bins> alg_;
};

using RtShardedHiSet = RtShardedHiSetT<env::PackedBins<env::RtEnv>>;

}  // namespace hi::rt
