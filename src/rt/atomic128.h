// 16-byte atomic word for the real-hardware implementations (src/rt).
//
// The paper's universal construction needs a CAS base object with
// O(s + 2^n) states: the full abstract state plus n context bits, updated in
// one indivisible compare-and-swap. On x86-64 this maps onto CMPXCHG16B
// (compiled with -mcx16; std::atomic<Word128> resolves to lock-free
// 16-byte operations via libatomic's runtime dispatch). The layout gives
// 64 bits of packed algorithm value and 64 context bits, so n ≤ 64 processes
// and abstract states must encode into 32 bits — the substitution documented
// in DESIGN.md. If the platform lacks CMPXCHG16B, libatomic falls back to a
// lock table: still correct, no longer lock-free (is_lock_free() reports it).
#pragma once

#include <atomic>
#include <cstdint>

namespace hi::rt {

struct Word128 {
  std::uint64_t value = 0;  // packed algorithm payload
  std::uint64_t ctx = 0;    // context bitmask / second payload word

  friend bool operator==(const Word128&, const Word128&) = default;
};

static_assert(sizeof(Word128) == 16);

class Atomic128 {
 public:
  Atomic128() = default;
  explicit Atomic128(Word128 initial) : word_(initial) {}

  Word128 load() const { return word_.load(std::memory_order_seq_cst); }
  void store(Word128 desired) {
    word_.store(desired, std::memory_order_seq_cst);
  }
  /// Strong CAS; on failure `expected` receives the current word.
  bool compare_exchange(Word128& expected, Word128 desired) {
    return word_.compare_exchange_strong(expected, desired,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst);
  }

  bool is_lock_free() const { return word_.is_lock_free(); }

 private:
  std::atomic<Word128> word_{};
};

}  // namespace hi::rt
