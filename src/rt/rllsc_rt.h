// Algorithm 6 on real hardware: lock-free perfect-HI releasable LL/SC over a
// single 16-byte atomic CAS word (value + context bitmask).
//
// Single-source: the algorithm body lives in algo/rllsc.h (CasRllscAlg),
// instantiated here with RtEnv so each primitive is a real std::atomic
// operation on an Atomic128 word (CMPXCHG16B via -mcx16); the simulator
// instantiation of the SAME body is core::CasRllsc. Process identities are
// explicit small integers (0..63) supplied by the caller, exactly as the
// paper's p_i. Every wrapper consumes its EagerTask synchronously, so the
// coroutine frames recycle through the calling thread's FrameArena —
// LL/SC/RL cost their atomics and zero steady-state heap allocations
// (BENCH_rllsc.json allocs_per_op).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>

#include "algo/rllsc.h"
#include "env/rt_env.h"
#include "rt/atomic128.h"

namespace hi::rt {

class RtRllsc {
 public:
  RtRllsc() : alg_(env::RtEnv::Ctx{}, "X", 0) {}
  explicit RtRllsc(std::uint64_t initial)
      : alg_(env::RtEnv::Ctx{}, "X", initial) {}

  /// LL(O): CAS-install the caller's context bit; returns the value read.
  std::uint64_t ll(int pid) { return alg_.ll(pid).get(); }

  /// LL with Algorithm 5's ‖-interleaving: between CAS attempts, run one
  /// poll; a true poll abandons the LL (caller erases the context trace).
  /// `poll` is a plain bool-returning callable, as before.
  template <typename Poll>
  std::optional<std::uint64_t> ll_interleaved(int pid, Poll&& poll) {
    return alg_
        .ll_interleaved(pid,
                        [&poll] {
                          return env::detail::ready(static_cast<bool>(poll()));
                        })
        .get();
  }

  /// VL(O): is the caller still linked?
  bool vl(int pid) { return alg_.vl(pid).get(); }

  /// SC(O, new): install iff the caller is linked; resets the context.
  bool sc(int pid, std::uint64_t desired) { return alg_.sc(pid, desired).get(); }

  /// RL(O): remove the caller from the context; always succeeds.
  bool rl(int pid) { return alg_.rl(pid).get(); }

  std::uint64_t load() { return alg_.load().get(); }

  bool store(std::uint64_t desired) { return alg_.store(desired).get(); }

  /// Observer-side snapshot of the full base-object state (value, context) —
  /// the rt analogue of mem(C) for this cell. Only meaningful at quiescence
  /// unless the caller tolerates racing reads.
  Word128 snapshot() const {
    const auto word = alg_.peek_word();
    return Word128{word.value, word.ctx};
  }

  bool is_lock_free() const { return alg_.is_lock_free(); }

  /// Bytes of shared storage (the bench's bytes_per_object input).
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

 private:
  algo::CasRllscAlg<env::RtEnv> alg_;
};

}  // namespace hi::rt
