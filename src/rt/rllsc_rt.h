// Algorithm 6 on real hardware: lock-free perfect-HI releasable LL/SC over a
// single 16-byte atomic CAS word (value + context bitmask). The structure is
// identical to src/core/rllsc.h's simulated version; here each primitive is
// a real std::atomic operation. Process identities are explicit small
// integers (0..63) supplied by the caller, exactly as the paper's p_i.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>

#include "rt/atomic128.h"
#include "util/bits.h"
#include "util/padded.h"

namespace hi::rt {

class RtRllsc {
 public:
  RtRllsc() = default;
  explicit RtRllsc(std::uint64_t initial) : cell_(Word128{initial, 0}) {}

  /// LL(O): CAS-install the caller's context bit; returns the value read.
  std::uint64_t ll(int pid) {
    Word128 cur = cell_.load();
    for (;;) {
      Word128 linked = cur;
      linked.ctx = util::set_bit(linked.ctx, static_cast<unsigned>(pid));
      if (cell_.compare_exchange(cur, linked)) return cur.value;
      // compare_exchange refreshed `cur`.
    }
  }

  /// LL with Algorithm 5's ‖-interleaving: between CAS attempts, run one
  /// poll; a true poll abandons the LL (caller erases the context trace).
  template <typename Poll>
  std::optional<std::uint64_t> ll_interleaved(int pid, Poll&& poll) {
    Word128 cur = cell_.load();
    for (;;) {
      Word128 linked = cur;
      linked.ctx = util::set_bit(linked.ctx, static_cast<unsigned>(pid));
      if (cell_.compare_exchange(cur, linked)) return cur.value;
      if (poll()) return std::nullopt;
    }
  }

  /// VL(O): is the caller still linked?
  bool vl(int pid) const {
    return util::test_bit(cell_.load().ctx, static_cast<unsigned>(pid));
  }

  /// SC(O, new): install iff the caller is linked; resets the context.
  bool sc(int pid, std::uint64_t desired) {
    Word128 cur = cell_.load();
    while (util::test_bit(cur.ctx, static_cast<unsigned>(pid))) {
      if (cell_.compare_exchange(cur, Word128{desired, 0})) return true;
    }
    return false;
  }

  /// RL(O): remove the caller from the context; always succeeds.
  bool rl(int pid) {
    Word128 cur = cell_.load();
    while (util::test_bit(cur.ctx, static_cast<unsigned>(pid))) {
      Word128 released = cur;
      released.ctx = util::clear_bit(released.ctx, static_cast<unsigned>(pid));
      if (cell_.compare_exchange(cur, released)) return true;
    }
    return true;
  }

  std::uint64_t load() const { return cell_.load().value; }

  bool store(std::uint64_t desired) {
    cell_.store(Word128{desired, 0});
    return true;
  }

  /// Observer-side snapshot of the full base-object state (value, context) —
  /// the rt analogue of mem(C) for this cell. Only meaningful at quiescence
  /// unless the caller tolerates racing reads.
  Word128 snapshot() const { return cell_.load(); }

  bool is_lock_free() const { return cell_.is_lock_free(); }

 private:
  Atomic128 cell_;
};

}  // namespace hi::rt
