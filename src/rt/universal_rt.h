// Algorithm 5 on real hardware: the wait-free state-quiescent-HI universal
// construction over CAS-backed R-LLSC cells (16-byte atomic words).
//
// Single-source: the algorithm body lives in algo/universal.h
// (UniversalAlg), instantiated here with RtEnv and CasRllscAlg<RtEnv> — the
// same Theorem 32 composition the simulator model-checks as
// core::Universal<S, core::CasRllsc>. Packing limits (the DESIGN
// substitution carried by RllscWordCodec<uint64_t>): encoded abstract
// states ≤ 32 bits, responses ≤ 24 bits, ≤ 64 processes.
//
// apply() consumes the algorithm's EagerTask on the calling thread; the
// whole helper chain underneath (cell LL/SC/RL Subs, poll Subs) recycles
// through that thread's FrameArena, so an operation — however much helping
// it performs — makes zero steady-state heap allocations
// (tests/test_rt_alloc.cpp, BENCH_universal.json allocs_per_op).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "algo/rllsc.h"
#include "algo/universal.h"
#include "env/rt_env.h"
#include "rt/atomic128.h"
#include "spec/spec.h"

namespace hi::rt {

template <spec::SequentialSpec S>
class RtUniversal {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  /// `combine` enables the flat-combining batch mode (algo/universal.h
  /// header comment): lock-free instead of wait-free, same quiescent image.
  RtUniversal(const S& spec, int num_processes, bool clear_contexts = true,
              bool combine = false)
      : alg_(env::RtEnv::Ctx{}, spec, num_processes, clear_contexts, combine) {
  }

  Resp apply(int pid, Op op) { return alg_.apply(pid, op).get(); }
  Resp apply_read_only(int pid, Op op) {
    return alg_.apply_read_only(pid, op).get();
  }
  Resp apply_update(int pid, Op op) { return alg_.apply_update(pid, op).get(); }
  /// Test support (see algo/universal.h): park an announcement for `pid`.
  bool announce_only(int pid, Op op) {
    return alg_.announce_only(pid, op).get();
  }

  // ---- Observer-side introspection (valid at quiescence) ----

  std::uint64_t head_state_encoded() const { return alg_.head_state_encoded(); }
  bool head_has_response() const { return alg_.head_has_response(); }
  bool announce_is_bottom(int pid) const { return alg_.announce_is_bottom(pid); }
  std::uint64_t context_union() const { return alg_.context_union(); }

  /// Full memory image (head word + announce words), for HI comparisons at
  /// quiescence.
  std::vector<Word128> memory_image() const {
    const auto words = alg_.memory_words();
    std::vector<Word128> image;
    image.reserve(words.size());
    for (const auto& word : words) {
      image.push_back(Word128{word.value, word.ctx});
    }
    return image;
  }

  // Batch instrumentation (bench-side: batch_size_mean = ops_combined /
  // batches_installed). Read at rest — counters are owner-thread-written.
  std::uint64_t batches_installed() const { return alg_.batches_installed(); }
  std::uint64_t ops_combined() const { return alg_.ops_combined(); }
  void reset_batch_stats() { alg_.reset_batch_stats(); }
  bool combining_enabled() const { return alg_.combining_enabled(); }

  int num_processes() const { return alg_.num_processes(); }
  /// Bytes of shared storage (the bench's bytes_per_object input).
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }
  bool is_lock_free() const { return alg_.is_lock_free(); }

 private:
  algo::UniversalAlg<env::RtEnv, S, algo::CasRllscAlg<env::RtEnv>> alg_;
};

}  // namespace hi::rt
