// Algorithm 5 on real hardware: the wait-free state-quiescent-HI universal
// construction over RtRllsc cells (16-byte atomic CAS words). Logic is
// line-for-line the simulated version in src/core/universal.h; see there for
// the algorithm commentary. Packing limits (the DESIGN.md substitution):
// encoded abstract states ≤ 32 bits, responses ≤ 24 bits, ≤ 64 processes.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "rt/atomic128.h"
#include "rt/rllsc_rt.h"
#include "spec/spec.h"
#include "util/padded.h"

namespace hi::rt {

template <spec::SequentialSpec S>
class RtUniversal {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  RtUniversal(const S& spec, int num_processes, bool clear_contexts = true)
      : spec_(spec),
        n_(num_processes),
        clear_contexts_(clear_contexts),
        head_(make_head(spec.encode_state(spec.initial_state()),
                        std::nullopt)),
        announce_(num_processes),
        priority_(num_processes) {
    assert(num_processes >= 1 && num_processes <= 64);
    for (int i = 0; i < n_; ++i) {
      announce_[i]->store(kBottom);
      *priority_[i] = i;
    }
  }

  Resp apply(int pid, Op op) {
    if (spec_.is_read_only(op)) return apply_read_only(pid, op);
    return apply_update(pid, op);
  }

  Resp apply_read_only(int pid, Op op) {
    (void)pid;
    const std::uint64_t raw = head_.load();  // line 1
    return spec_.apply(spec_.decode_state(head_state(raw)), op).second;
  }

  Resp apply_update(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    const std::uint32_t my_op_word = spec_.encode_op(op);
    RtRllsc& my_cell = *announce_[pid];

    my_cell.store(announce_op(my_op_word));  // line 4

    const auto poll_helped = [&my_cell] { return is_resp(my_cell.load()); };
    for (;;) {
      const std::uint64_t mine = my_cell.load();  // line 5
      if (is_resp(mine)) break;

      const std::optional<std::uint64_t> head_raw =
          head_.ll_interleaved(pid, poll_helped);  // line 6 (‖ 6R)
      if (!head_raw.has_value()) break;            // 6R.2
      const std::uint64_t raw = *head_raw;

      if (!head_has_resp(raw)) {  // line 7
        std::uint32_t apply_word = 0;
        int target = -1;
        const int candidate = *priority_[pid];
        const std::uint64_t help = announce_[candidate]->load();  // line 8
        if (is_op(help)) {  // line 9
          apply_word = payload(help);
          target = candidate;
        } else {
          const std::uint64_t own = my_cell.load();  // line 11
          if (!is_op(own)) continue;
          apply_word = my_op_word;  // line 12
          target = pid;
        }
        const auto [next_state, rsp] =
            spec_.apply(spec_.decode_state(head_state(raw)),
                        spec_.decode_op(apply_word));  // line 13
        const bool installed = head_.sc(
            pid, make_head(spec_.encode_state(next_state),
                           HeadResp{spec_.encode_resp(rsp),
                                    target}));  // line 14
        if (installed) {
          *priority_[pid] = (*priority_[pid] + 1) % n_;  // line 15
        }
      } else {  // lines 16–22
        const std::uint32_t rsp_word = head_resp(raw);  // line 17
        const int target = head_pid(raw);

        const std::optional<std::uint64_t> a =
            announce_[target]->ll_interleaved(pid, poll_helped);  // line 18
        if (!a.has_value()) {
          if (clear_contexts_) announce_[target]->rl(pid);  // 18R.2
          break;                                            // 18R.3
        }
        const bool head_valid = head_.vl(pid);  // line 19
        if (head_valid) {
          if (is_op(*a)) {
            announce_[target]->sc(pid, announce_resp(rsp_word));  // line 20
          }
          head_.sc(pid, make_head(head_state(raw), std::nullopt));  // line 21
        }
        if (is_bottom(*a) && clear_contexts_) {
          announce_[target]->rl(pid);  // line 22 (red)
        }
      }
    }

    const std::uint64_t resp_val = my_cell.load();  // line 24
    assert(is_resp(resp_val));

    const auto poll_cleared = [this, pid] {  // 25R.1
      const std::uint64_t raw = head_.load();
      return !(head_has_resp(raw) && head_pid(raw) == pid);
    };
    const std::optional<std::uint64_t> head_raw =
        head_.ll_interleaved(pid, poll_cleared);  // line 25
    bool handled = false;
    if (head_raw.has_value()) {
      if (head_has_resp(*head_raw) && head_pid(*head_raw) == pid) {  // l. 26
        head_.sc(pid, make_head(head_state(*head_raw), std::nullopt));
        handled = true;
      }
    }
    if (!handled && clear_contexts_) head_.rl(pid);  // line 27 (red)

    my_cell.store(kBottom);  // line 28
    return spec_.decode_resp(payload(resp_val));  // line 29
  }

  // ---- Observer-side introspection (valid at quiescence) ----

  std::uint64_t head_state_encoded() const { return head_state(head_.load()); }
  bool head_has_response() const { return head_has_resp(head_.load()); }
  bool announce_is_bottom(int pid) const {
    return is_bottom(announce_[pid]->load());
  }
  std::uint64_t context_union() const {
    std::uint64_t mask = head_.snapshot().ctx;
    for (int i = 0; i < n_; ++i) mask |= announce_[i]->snapshot().ctx;
    return mask;
  }
  /// Full memory image (head word + announce words), for HI comparisons at
  /// quiescence.
  std::vector<Word128> memory_image() const {
    std::vector<Word128> image;
    image.reserve(1 + n_);
    image.push_back(head_.snapshot());
    for (int i = 0; i < n_; ++i) image.push_back(announce_[i]->snapshot());
    return image;
  }

  int num_processes() const { return n_; }
  bool is_lock_free() const { return head_.is_lock_free(); }

 private:
  // announce encoding: tag (bits 32-33) | payload (bits 0-31); ⊥ = 0.
  static constexpr std::uint64_t kBottom = 0;
  static std::uint64_t announce_op(std::uint32_t w) {
    return (std::uint64_t{1} << 32) | w;
  }
  static std::uint64_t announce_resp(std::uint32_t w) {
    return (std::uint64_t{2} << 32) | w;
  }
  static bool is_bottom(std::uint64_t v) { return v == 0; }
  static bool is_op(std::uint64_t v) { return (v >> 32) == 1; }
  static bool is_resp(std::uint64_t v) { return (v >> 32) == 2; }
  static std::uint32_t payload(std::uint64_t v) {
    return static_cast<std::uint32_t>(v & 0xffffffffu);
  }

  // head encoding: state (bits 0-31) | rsp (32-55) | pid (56-61) | has (62).
  struct HeadResp {
    std::uint32_t rsp;
    int pid;
  };
  static std::uint64_t make_head(std::uint64_t state_encoded,
                                 std::optional<HeadResp> resp) {
    assert(state_encoded <= 0xffffffffull && "rt states must fit 32 bits");
    std::uint64_t word = state_encoded;
    if (resp.has_value()) {
      assert(resp->rsp <= 0xffffffu && "rt responses must fit 24 bits");
      word |= (static_cast<std::uint64_t>(resp->rsp) << 32) |
              (static_cast<std::uint64_t>(resp->pid) << 56) |
              (std::uint64_t{1} << 62);
    }
    return word;
  }
  static std::uint64_t head_state(std::uint64_t v) { return v & 0xffffffffu; }
  static bool head_has_resp(std::uint64_t v) { return (v >> 62) & 1u; }
  static std::uint32_t head_resp(std::uint64_t v) {
    return static_cast<std::uint32_t>((v >> 32) & 0xffffffu);
  }
  static int head_pid(std::uint64_t v) {
    return static_cast<int>((v >> 56) & 0x3fu);
  }

  const S& spec_;
  int n_;
  bool clear_contexts_;
  RtRllsc head_;
  std::vector<util::Padded<RtRllsc>> announce_;
  std::vector<util::Padded<int>> priority_;
};

}  // namespace hi::rt
