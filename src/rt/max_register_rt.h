// §5.1's max register on real hardware: wait-free state-quiescent-HI
// monotone register over cache-line-padded atomic binary cells.
//
// Single-source: the algorithm body lives in algo/max_register.h
// (HiMaxRegisterAlg), instantiated here with RtEnv and wrapped in the
// synchronous call-style interface the stress tests and benchmarks drive.
// The simulator instantiation of the SAME body is core::HiMaxRegister;
// memory_image() here matches the simulator's mem(C) snapshot
// word-for-word after identical operation sequences (tests/test_env_parity).
// SWSR like the §4 registers: exactly one writer thread and one reader
// thread (identified by the pids fixed at construction) may operate. Both
// sides consume their EagerTask synchronously, so frames recycle through
// the owning thread's FrameArena: even the absorbed-write fast path (zero
// atomics) is heap-allocation-free in steady state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algo/max_register.h"
#include "env/rt_env.h"

namespace hi::rt {

/// Default layout: env::PackedBins — a K=1024 max register is 2 cache
/// lines and ReadMax costs O(m/64) word loads instead of O(m) padded-cell
/// loads. The `RtMaxRegisterPadded` alias keeps the padded-per-bit layout
/// instantiable for the layout-comparison bench rows (docs/PERF.md).
template <typename Bins>
class RtMaxRegisterT {
 public:
  explicit RtMaxRegisterT(std::uint32_t num_values, std::uint32_t initial = 1,
                          int writer_pid = 0, int reader_pid = 1)
      : alg_(env::RtEnv::Ctx{}, num_values, initial, writer_pid, reader_pid) {}

  /// ReadMax — reader thread only.
  std::uint32_t read_max() { return alg_.read_max(alg_.reader_pid()).get(); }
  /// WriteMax(v) — writer thread only; absorbed (zero atomics) if v ≤ the
  /// running maximum.
  void write_max(std::uint32_t value) {
    (void)alg_.write_max(alg_.writer_pid(), value).get();
  }

  /// A[1..K] — the simulator's mem(C) layout order.
  std::vector<std::uint8_t> memory_image() const {
    std::vector<std::uint8_t> image;
    image.reserve(alg_.num_values());
    alg_.encode_memory(image);
    return image;
  }

  std::uint32_t num_values() const { return alg_.num_values(); }
  /// Bytes of shared storage (the bench's bytes_per_object input).
  std::size_t memory_bytes() const { return alg_.memory_bytes(); }

 private:
  algo::HiMaxRegisterAlg<env::RtEnv, Bins> alg_;
};

using RtMaxRegister = RtMaxRegisterT<env::PackedBins<env::RtEnv>>;
using RtMaxRegisterPadded = RtMaxRegisterT<env::PaddedBins<env::RtEnv>>;

}  // namespace hi::rt
