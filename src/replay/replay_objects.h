// Schedule-replay instantiations of every single-source algorithm: the same
// `src/algo/` bodies the simulator (src/core) and hardware (src/rt) run,
// pinned to env::ReplayEnv — hardware atomics executed step-by-step under a
// sim::Scheduler. Interfaces mirror the src/core wrappers (spec-driven
// apply over a sim::Memory), so the differential driver (verify/replay.h)
// can march a core::* system and a replay::* system through one recorded
// ScheduleTrace and compare them after every step.
//
// Objects covered: Vidyasankar (Alg 1), the lock-free HI register (Alg 2/3),
// the wait-free HI register (Alg 4), the §5.1 max register and perfect-HI
// set, the R-LLSC object (Alg 6), the universal construction (Alg 5 over 6),
// the leaky (Fatourou–Kallimanis) universal baseline, and the Theorem 20
// strawman queue. The R-LLSC spec harness below also serves the SimEnv
// instantiation, so both sides of a differential run share one adapter.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>

#include "algo/leaky_universal.h"
#include "algo/registers.h"
#include "algo/rllsc.h"
#include "algo/universal.h"
#include "algo/values.h"
#include "baseline/strawman_queue.h"
#include "core/hi_set.h"
#include "core/max_register.h"
#include "core/sharded_set.h"
#include "core/swsr_wrapper.h"
#include "core/wait_free_sim.h"
#include "env/replay_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/rllsc_spec.h"
#include "spec/spec.h"

namespace hi::replay {

// The spec-driven harness wrappers are single-source too (core/ and
// baseline/ define them templated over Env): the replay instantiations
// below share every line of dispatch and pid-checking code with their
// simulator siblings, so the two sides of a differential run can only
// differ in the environment itself.

/// Algorithm 1 [Vidyasankar] over hardware atomics, scheduler-driven.
using VidyasankarRegister =
    core::SwsrRegister<algo::VidyasankarAlgPadded, env::ReplayEnv>;

/// Algorithms 2+3 (lock-free state-quiescent HI) over hardware atomics.
using LockFreeHiRegister =
    core::SwsrRegister<algo::LockFreeHiAlgPadded, env::ReplayEnv>;

/// Algorithm 4 (wait-free quiescent HI) over hardware atomics.
using WaitFreeHiRegister =
    core::SwsrRegister<algo::WaitFreeHiAlgPadded, env::ReplayEnv>;

/// The wait-free simulation combinator over the Alg 2/3 reader
/// (algo/wait_free_sim.h) — hardware atomics, scheduler-driven. Shares the
/// pid-forwarding harness with core::WaitFreeSimHiRegister, so both sides
/// of a differential run register identical base objects (inner A bins,
/// then wfs.rec / wfs.q / wfs.qctl) in identical order.
using WaitFreeSimHiRegister =
    core::WaitFreeSimRegisterT<env::ReplayEnv,
                               env::PaddedBins<env::ReplayEnv>>;
using PackedWaitFreeSimHiRegister =
    core::WaitFreeSimRegisterT<env::ReplayEnv,
                               env::PackedBins<env::ReplayEnv>>;

/// §5.1 max register over hardware atomics.
using HiMaxRegister = core::BasicHiMaxRegister<env::ReplayEnv>;

/// §5.1 perfect-HI set over hardware atomics.
using HiSet = core::BasicHiSet<env::ReplayEnv>;

// Packed-layout twins (env::PackedBins): the same bodies over 64-bin atomic
// words — scans are word loads, clears are masked fetch_ands — so recorded
// packed sim schedules replay over the exact hardware RMWs RtEnv uses and
// word-granularity interleavings get the same differential treatment as the
// per-bit originals.

using PackedVidyasankarRegister =
    core::SwsrRegister<algo::VidyasankarAlgPacked, env::ReplayEnv>;
using PackedLockFreeHiRegister =
    core::SwsrRegister<algo::LockFreeHiAlgPacked, env::ReplayEnv>;
using PackedWaitFreeHiRegister =
    core::SwsrRegister<algo::WaitFreeHiAlgPacked, env::ReplayEnv>;
using PackedHiMaxRegister =
    core::BasicHiMaxRegister<env::ReplayEnv, env::PackedBins<env::ReplayEnv>>;
using PackedHiSet =
    core::BasicHiSet<env::ReplayEnv, env::PackedBins<env::ReplayEnv>>;

/// The sharded multi-word perfect-HI store (algo/sharded_set.h) over
/// hardware atomics, scheduler-driven — same spec-driven apply and shard
/// construction order as core::ShardedHiSet, so recorded sharded sim
/// schedules replay over the exact per-shard fetch_or/fetch_and/load words
/// RtEnv uses.
using ShardedHiSet = core::BasicShardedHiSet<env::ReplayEnv>;

/// Algorithm 6 (perfect-HI R-LLSC) over the 16-byte hardware word.
using CasRllsc = algo::CasRllscAlg<env::ReplayEnv>;

/// Algorithm 5 over Algorithm 6, both on the hardware packing (the
/// RllscWordCodec<uint64_t> / 32-bit-state substitution of src/rt).
template <spec::SequentialSpec S>
using Universal = algo::UniversalAlg<env::ReplayEnv, S, CasRllsc>;

/// The Fatourou–Kallimanis-shaped leaky baseline on the hardware packing.
template <spec::SequentialSpec S>
using LeakyUniversal = algo::LeakyUniversalAlg<env::ReplayEnv, S>;

/// Theorem 20's strawman queue over hardware atomics.
using StrawmanQueue = baseline::BasicStrawmanQueue<env::ReplayEnv>;

/// Spec-driven harness over any CasRllscAlg instantiation (SimEnv or
/// ReplayEnv): dispatches RllscSpec ops to the cell's pid-explicit entry
/// points. Shared by both sides of a differential run so the operation →
/// primitive mapping is identical by construction.
template <typename Cell>
class RllscHarness {
 public:
  using V = typename Cell::V;
  using Op = spec::RllscSpec::Op;
  using Resp = spec::RllscSpec::Resp;

  RllscHarness(sim::Memory& memory, std::uint64_t initial)
      : cell_(memory, "X", make_value(initial)) {}

  sim::OpTask<Resp> apply(int pid, Op op) {
    assert(pid == op.pid && "RllscSpec ops carry the invoking pid");
    (void)pid;
    return run(op);
  }

  Cell& cell() { return cell_; }

 private:
  static V make_value(std::uint64_t raw) {
    if constexpr (std::is_same_v<V, algo::RllscValue>) {
      return algo::RllscValue{raw, 0};
    } else {
      return static_cast<V>(raw);
    }
  }
  static std::uint64_t value_lo(const V& v) {
    if constexpr (std::is_same_v<V, algo::RllscValue>) {
      return v.lo;
    } else {
      return v;
    }
  }

  sim::OpTask<Resp> run(Op op) {
    const int pid = op.pid;
    switch (op.kind) {
      case spec::RllscSpec::Kind::kLL: {
        const V v = co_await cell_.ll(pid);
        co_return Resp{static_cast<std::uint32_t>(value_lo(v)), true};
      }
      case spec::RllscSpec::Kind::kVL: {
        const bool linked = co_await cell_.vl(pid);
        co_return Resp{0, linked};
      }
      case spec::RllscSpec::Kind::kSC: {
        const bool done = co_await cell_.sc(pid, make_value(op.arg));
        co_return Resp{0, done};
      }
      case spec::RllscSpec::Kind::kRL: {
        const bool done = co_await cell_.rl(pid);
        co_return Resp{0, done};
      }
      case spec::RllscSpec::Kind::kLoad: {
        const V v = co_await cell_.load();
        co_return Resp{static_cast<std::uint32_t>(value_lo(v)), true};
      }
      case spec::RllscSpec::Kind::kStore: {
        const bool done = co_await cell_.store(make_value(op.arg));
        co_return Resp{0, done};
      }
    }
    co_return Resp{};  // unreachable
  }

  Cell cell_;
};

}  // namespace hi::replay
