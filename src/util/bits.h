// Bit-packing helpers used by the simulator's memory encodings and the
// real-hardware 128-bit word layout (src/rt/atomic128.h).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <span>

namespace hi::util {

/// Extract `width` bits of `word` starting at bit `pos` (LSB = bit 0).
constexpr std::uint64_t extract_bits(std::uint64_t word, unsigned pos,
                                     unsigned width) noexcept {
  assert(width >= 1 && width <= 64 && pos < 64 && pos + width <= 64);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return (word >> pos) & mask;
}

/// Return `word` with `width` bits at `pos` replaced by the low bits of `value`.
constexpr std::uint64_t deposit_bits(std::uint64_t word, unsigned pos,
                                     unsigned width,
                                     std::uint64_t value) noexcept {
  assert(width >= 1 && width <= 64 && pos < 64 && pos + width <= 64);
  const std::uint64_t mask =
      (width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1))
      << pos;
  return (word & ~mask) | ((value << pos) & mask);
}

/// Test a single bit.
constexpr bool test_bit(std::uint64_t word, unsigned pos) noexcept {
  assert(pos < 64);
  return (word >> pos) & 1u;
}

constexpr std::uint64_t set_bit(std::uint64_t word, unsigned pos) noexcept {
  assert(pos < 64);
  return word | (std::uint64_t{1} << pos);
}

constexpr std::uint64_t clear_bit(std::uint64_t word, unsigned pos) noexcept {
  assert(pos < 64);
  return word & ~(std::uint64_t{1} << pos);
}

/// Number of set bits (popcount); constexpr-friendly wrapper.
constexpr unsigned popcount64(std::uint64_t word) noexcept {
  unsigned count = 0;
  while (word != 0) {
    word &= word - 1;
    ++count;
  }
  return count;
}

// ---- packed-bin-array geometry (env::PackedBins, src/env/env.h) ----
//
// A packed bin array stores 64 of the paper's 1-based binary registers
// A[1..K] per 64-bit word: bin v lives at bit (v-1) % 64 of word
// (v-1) / 64. These helpers are the single place that encodes that layout;
// the three execution environments and the word-scan library all go through
// them, so the 1-based-bin ↔ word/bit arithmetic cannot diverge.

/// Word index holding 1-based bin `v`.
constexpr std::uint32_t bin_word(std::uint32_t v) noexcept {
  assert(v >= 1);
  return (v - 1) >> 6;
}

/// Bit position of 1-based bin `v` inside its word.
constexpr unsigned bin_bit(std::uint32_t v) noexcept {
  assert(v >= 1);
  return (v - 1) & 63u;
}

/// Single-bit mask of 1-based bin `v` inside its word.
constexpr std::uint64_t bin_mask(std::uint32_t v) noexcept {
  return std::uint64_t{1} << bin_bit(v);
}

/// Number of 64-bit words needed for `count` bins.
constexpr std::uint32_t bin_words(std::uint32_t count) noexcept {
  return (count + 63u) >> 6;
}

/// Mask of bit positions [0, pos] (inclusive).
constexpr std::uint64_t mask_upto(unsigned pos) noexcept {
  assert(pos < 64);
  return pos == 63 ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << (pos + 1)) - 1);
}

/// Mask of the bit positions of word `w` that hold live bins (1..count):
/// all-ones for interior words, a low-bit prefix for the tail word when
/// count % 64 != 0, zero for words past the array.
constexpr std::uint64_t bin_live_mask(std::uint32_t count,
                                      std::uint32_t w) noexcept {
  if (std::uint64_t{w} * 64 >= count) return 0;
  if (std::uint64_t{w} * 64 + 64 <= count) return ~std::uint64_t{0};
  return mask_upto(bin_bit(count));
}

/// Word `w` of a multi-word bin initializer: words[w] when present (missing
/// trailing words read as all-zero), with bits beyond `count` dropped so
/// tail bins stay 0. The single source for the >64-bin make_bits factories
/// of all three execution environments — generalizing the historical
/// single-word `if (count < 64) bits &= (1 << count) - 1` masking.
constexpr std::uint64_t init_word(std::span<const std::uint64_t> words,
                                  std::uint32_t count,
                                  std::uint32_t w) noexcept {
  const std::uint64_t raw = w < words.size() ? words[w] : 0;
  return raw & bin_live_mask(count, w);
}

/// Membership of 1-based bin `v` in a multi-word bitmap (bins past the
/// vector read as 0). Observer-side shadow-model helper.
constexpr bool bin_test(std::span<const std::uint64_t> words,
                        std::uint32_t v) noexcept {
  const std::uint32_t w = bin_word(v);
  return w < words.size() && ((words[w] >> bin_bit(v)) & 1u) != 0;
}

/// Set / clear 1-based bin `v` in a multi-word bitmap (shadow-model side;
/// the vector must already span bin v).
constexpr void bin_set(std::span<std::uint64_t> words,
                       std::uint32_t v) noexcept {
  assert(bin_word(v) < words.size());
  words[bin_word(v)] |= bin_mask(v);
}
constexpr void bin_clear(std::span<std::uint64_t> words,
                         std::uint32_t v) noexcept {
  assert(bin_word(v) < words.size());
  words[bin_word(v)] &= ~bin_mask(v);
}

/// Mask of bit positions [pos, 63] (inclusive).
constexpr std::uint64_t mask_from(unsigned pos) noexcept {
  assert(pos < 64);
  return ~std::uint64_t{0} << pos;
}

/// Index (0-based) of the lowest set bit (one TZCNT); word must be nonzero.
constexpr unsigned lowest_set(std::uint64_t word) noexcept {
  assert(word != 0);
  return static_cast<unsigned>(std::countr_zero(word));
}

/// Index (0-based) of the highest set bit (one LZCNT); word must be nonzero.
constexpr unsigned highest_set(std::uint64_t word) noexcept {
  assert(word != 0);
  return 63u - static_cast<unsigned>(std::countl_zero(word));
}

}  // namespace hi::util
