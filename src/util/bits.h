// Bit-packing helpers used by the simulator's memory encodings and the
// real-hardware 128-bit word layout (src/rt/atomic128.h).
#pragma once

#include <cassert>
#include <cstdint>

namespace hi::util {

/// Extract `width` bits of `word` starting at bit `pos` (LSB = bit 0).
constexpr std::uint64_t extract_bits(std::uint64_t word, unsigned pos,
                                     unsigned width) noexcept {
  assert(width >= 1 && width <= 64 && pos < 64 && pos + width <= 64);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return (word >> pos) & mask;
}

/// Return `word` with `width` bits at `pos` replaced by the low bits of `value`.
constexpr std::uint64_t deposit_bits(std::uint64_t word, unsigned pos,
                                     unsigned width,
                                     std::uint64_t value) noexcept {
  assert(width >= 1 && width <= 64 && pos < 64 && pos + width <= 64);
  const std::uint64_t mask =
      (width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1))
      << pos;
  return (word & ~mask) | ((value << pos) & mask);
}

/// Test a single bit.
constexpr bool test_bit(std::uint64_t word, unsigned pos) noexcept {
  assert(pos < 64);
  return (word >> pos) & 1u;
}

constexpr std::uint64_t set_bit(std::uint64_t word, unsigned pos) noexcept {
  assert(pos < 64);
  return word | (std::uint64_t{1} << pos);
}

constexpr std::uint64_t clear_bit(std::uint64_t word, unsigned pos) noexcept {
  assert(pos < 64);
  return word & ~(std::uint64_t{1} << pos);
}

/// Number of set bits (popcount); constexpr-friendly wrapper.
constexpr unsigned popcount64(std::uint64_t word) noexcept {
  unsigned count = 0;
  while (word != 0) {
    word &= word - 1;
    ++count;
  }
  return count;
}

}  // namespace hi::util
