// Arrival-trace workload driver: production-shaped load for the rt objects
// (ROADMAP item 3, in the spirit of Salus' experiment harness).
//
// measure_throughput (bench_json.h) answers "how fast can this object go?"
// — a closed loop where every worker fires its next operation the moment
// the previous one returns. Production traffic is not a closed loop: work
// *arrives* on its own schedule, and the number a service owner cares about
// is the completion-latency tail at a given offered load. This driver
// provides that shape:
//
//   * open-loop arrivals — each worker pre-generates a deterministic
//     arrival schedule (Poisson, bursty, or a replayed trace of
//     inter-arrival gaps), waits for each arrival time, then issues the
//     operation. A slow object does NOT slow the schedule down: lateness
//     accrues and shows up in the latency tail, exactly like queueing
//     delay in a real service. Latency is completion time minus *scheduled
//     arrival* (JCT-style sojourn time, not bare service time).
//   * closed-loop mode — the measure_throughput shape, for peak-capacity
//     rows in the same report format.
//   * per-class operation mix — each operation draws a weighted class
//     (e.g. 90% reads / 10% updates); the report carries per-class
//     percentile rows next to the aggregate.
//
// Two loads are reported (BenchResult.offered_load / achieved_load):
// offered = total ops / schedule span, achieved = total ops / wall time.
// Workers never issue before an arrival, so wall ≥ span and
// achieved ≤ offered holds by construction on open-loop rows —
// check_bench.py's traffic suite gates on it. When achieved is well below
// offered, the object saturated: the row is an overload measurement and
// its tail is dominated by queueing.
//
// Determinism: schedules and class picks come from seeded Xoshiro256
// streams (one per worker, split from TrafficConfig::seed), so a row is
// reproducible modulo actual hardware timing. The warmup phase runs
// closed-loop and untimed; it brings the RtEnv frame arenas to steady
// state so traffic rows keep the allocs_per_op == 0 contract.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/bench_json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hi::util {

enum class ArrivalProcess {
  kClosedLoop,  // no schedule: fire as fast as the object allows
  kPoisson,     // exponential inter-arrival gaps at the offered rate
  kBursty,      // Poisson-mean-preserving bursts (see TrafficConfig)
  kTrace,       // replay TrafficConfig::trace_gaps_ns, cycled
};

/// One operation class in the mix (e.g. {"read", 9.0}, {"update", 1.0}).
struct TrafficClass {
  std::string name;
  double weight = 1.0;
};

struct TrafficConfig {
  ArrivalProcess arrivals = ArrivalProcess::kClosedLoop;
  /// Offered load for the WHOLE thread group, ops/sec (open-loop modes;
  /// each worker offers offered_ops_per_sec / threads).
  double offered_ops_per_sec = 0.0;
  /// kBursty: bursts of `burst_len` arrivals at `burst_factor`× the mean
  /// rate, each followed by one long gap that restores the mean — so the
  /// offered load matches kPoisson at the same rate while the short-term
  /// rate swings hard (the flat-combining sweet spot / the tail-latency
  /// stress).
  double burst_factor = 8.0;
  std::size_t burst_len = 32;
  /// kTrace: inter-arrival gaps in ns, cycled per worker.
  std::vector<std::uint64_t> trace_gaps_ns;
  std::uint64_t seed = 1;
};

/// Everything one traffic run produced. Aggregate + per-class latency
/// samples; convert to BENCH rows with to_results().
struct TrafficResult {
  int threads = 1;
  std::uint64_t total_ops = 0;
  double wall_sec = 0.0;
  double offered_load = 0.0;   // ops/sec the schedule asked for
  double achieved_load = 0.0;  // ops/sec actually completed
  double allocs_per_op = 0.0;
  Samples latencies;                  // aggregate sojourn latencies, ns
  std::vector<std::string> classes;   // mix class names
  std::vector<Samples> per_class;     // same order as `classes`
  std::vector<std::uint64_t> class_ops;

  /// One aggregate BenchResult named `name`, then one per class named
  /// `name.<class>` (only classes that ran). Every row carries the full
  /// percentile triple and the load pair; allocs_per_op is the aggregate
  /// rate on every row (the tally is per-thread, not per-class — a leak
  /// anywhere fails every row, which is the right failure mode for the
  /// gate). bytes_per_object and batch_size_mean are the caller's to set.
  std::vector<BenchResult> to_results(const std::string& name) const {
    std::vector<BenchResult> rows;
    BenchResult agg;
    agg.name = name;
    agg.threads = threads;
    agg.ops_per_sec = achieved_load;
    agg.p50_ns = latencies.percentile(0.5);
    agg.p99_ns = latencies.percentile(0.99);
    agg.p999_ns = static_cast<std::int64_t>(latencies.percentile(0.999));
    agg.allocs_per_op = allocs_per_op;
    agg.offered_load = offered_load;
    agg.achieved_load = achieved_load;
    rows.push_back(agg);
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (per_class[c].empty()) continue;
      BenchResult row = agg;
      row.name = name + "." + classes[c];
      row.ops_per_sec =
          wall_sec > 0 ? static_cast<double>(class_ops[c]) / wall_sec : 0.0;
      row.p50_ns = per_class[c].percentile(0.5);
      row.p99_ns = per_class[c].percentile(0.99);
      row.p999_ns = static_cast<std::int64_t>(per_class[c].percentile(0.999));
      rows.push_back(row);
    }
    return rows;
  }
};

/// Load a trace file of inter-arrival gaps: whitespace-separated
/// nanosecond integers (blank lines and '#' comment lines skipped).
inline std::vector<std::uint64_t> load_gaps_file(const std::string& path) {
  std::vector<std::uint64_t> gaps;
  std::ifstream in(path);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') {
      std::getline(in, token);  // drop the rest of the comment line
      continue;
    }
    gaps.push_back(std::strtoull(token.c_str(), nullptr, 10));
  }
  return gaps;
}

namespace traffic_detail {

/// Uniform double in (0, 1] — open at 0 so -log() is finite.
inline double uniform01(Xoshiro256& rng) {
  return (static_cast<double>(rng.next() >> 11) + 1.0) * 0x1.0p-53;
}

/// Pre-generate one worker's arrival offsets (ns since the start barrier).
inline std::vector<std::uint64_t> make_schedule(const TrafficConfig& cfg,
                                                int threads, std::size_t ops,
                                                std::uint64_t worker_seed) {
  std::vector<std::uint64_t> offsets;
  if (cfg.arrivals == ArrivalProcess::kClosedLoop) return offsets;
  offsets.reserve(ops);
  Xoshiro256 rng(worker_seed);
  const double mean_gap_ns =
      1e9 * static_cast<double>(threads) / cfg.offered_ops_per_sec;
  double t = 0.0;
  std::size_t in_burst = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    double gap = 0.0;
    switch (cfg.arrivals) {
      case ArrivalProcess::kPoisson:
        gap = -std::log(uniform01(rng)) * mean_gap_ns;
        break;
      case ArrivalProcess::kBursty: {
        const double hot_gap = mean_gap_ns / cfg.burst_factor;
        if (in_burst < cfg.burst_len) {
          gap = -std::log(uniform01(rng)) * hot_gap;
          ++in_burst;
        } else {
          // The recovery gap: what the whole burst saved, plus one mean
          // gap, so each (burst_len + 1)-arrival cycle offers exactly the
          // configured mean rate.
          gap = static_cast<double>(cfg.burst_len) * (mean_gap_ns - hot_gap) +
                mean_gap_ns;
          in_burst = 0;
        }
        break;
      }
      case ArrivalProcess::kTrace:
        assert(!cfg.trace_gaps_ns.empty());
        gap = static_cast<double>(
            cfg.trace_gaps_ns[i % cfg.trace_gaps_ns.size()]);
        break;
      case ArrivalProcess::kClosedLoop:
        break;  // unreachable
    }
    t += gap;
    offsets.push_back(static_cast<std::uint64_t>(t));
  }
  return offsets;
}

}  // namespace traffic_detail

/// Drive `op(tid, class_index, i)` under the configured arrival process:
/// `ops_per_thread` operations on each of `threads` workers, class drawn
/// per-operation from the weighted `mix`. OpFn must be thread-safe across
/// tids and is also used (class-rotating, untimed) for warmup.
template <typename OpFn>
TrafficResult run_traffic(int threads, std::size_t ops_per_thread,
                          const TrafficConfig& cfg,
                          const std::vector<TrafficClass>& mix, OpFn op) {
  using Clock = std::chrono::steady_clock;
  assert(!mix.empty());
  assert(cfg.arrivals == ArrivalProcess::kClosedLoop ||
         cfg.arrivals == ArrivalProcess::kTrace ||
         cfg.offered_ops_per_sec > 0.0);

  const std::size_t n_threads = static_cast<std::size_t>(threads);
  const std::size_t n_classes = mix.size();
  double total_weight = 0.0;
  for (const TrafficClass& c : mix) total_weight += c.weight;

  // Per-worker pre-generated schedules + class picks: nothing random and
  // nothing allocating happens inside the measured window.
  std::uint64_t seed_state = cfg.seed;
  std::vector<std::vector<std::uint64_t>> schedules(n_threads);
  std::vector<std::vector<std::uint32_t>> picks(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    schedules[t] = traffic_detail::make_schedule(cfg, threads, ops_per_thread,
                                                 splitmix64(seed_state));
    Xoshiro256 rng(splitmix64(seed_state));
    picks[t].reserve(ops_per_thread);
    for (std::size_t i = 0; i < ops_per_thread; ++i) {
      double roll = traffic_detail::uniform01(rng) * total_weight;
      std::uint32_t cls = 0;
      for (std::size_t c = 0; c < n_classes; ++c) {
        roll -= mix[c].weight;
        if (roll <= 0.0) {
          cls = static_cast<std::uint32_t>(c);
          break;
        }
      }
      picks[t].push_back(cls);
    }
  }

  std::vector<std::vector<Samples>> worker_class(n_threads);
  std::vector<std::uint64_t> allocs(n_threads, 0);
  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  // The armed start time for the whole group, set just before release so
  // every worker's schedule is anchored to the same instant.
  std::atomic<std::int64_t> epoch_ns{0};

  for (int tid = 0; tid < threads; ++tid) {
    pool.emplace_back([&, tid] {
      const std::size_t t = static_cast<std::size_t>(tid);
      auto& samples = worker_class[t];
      samples.resize(n_classes);
      for (auto& s : samples) s.reserve(ops_per_thread);
      // Closed-loop warmup, class-rotating: steady-states the frame arena
      // for every op class before the tally arms.
      const std::size_t warmup = std::min<std::size_t>(ops_per_thread, 1024);
      for (std::size_t i = 0; i < warmup; ++i) {
        op(tid, static_cast<std::uint32_t>(i % n_classes), i);
      }
      const AllocTally tally;
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      const auto epoch = Clock::time_point(
          Clock::duration(epoch_ns.load(std::memory_order_acquire)));
      const bool open_loop = !schedules[t].empty();
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        Clock::time_point issue;
        if (open_loop) {
          issue = epoch + std::chrono::nanoseconds(schedules[t][i]);
          // Spin to the arrival; if we are already late the op issues
          // immediately and the lateness lands in its sojourn latency.
          while (Clock::now() < issue) {
          }
        } else {
          issue = Clock::now();
        }
        const std::uint32_t cls = picks[t][i];
        op(tid, cls, i);
        const auto done = Clock::now();
        samples[cls].add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(done - issue)
                .count()));
      }
      allocs[t] = tally.allocs();
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
  }
  const auto wall_start = Clock::now();
  epoch_ns.store(wall_start.time_since_epoch().count(),
                 std::memory_order_release);
  go.store(true, std::memory_order_release);
  for (auto& worker : pool) worker.join();
  const auto wall_end = Clock::now();

  TrafficResult result;
  result.threads = threads;
  result.total_ops = static_cast<std::uint64_t>(ops_per_thread) *
                     static_cast<std::uint64_t>(threads);
  result.wall_sec =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.classes.reserve(n_classes);
  for (const TrafficClass& c : mix) result.classes.push_back(c.name);
  result.per_class.resize(n_classes);
  result.class_ops.assign(n_classes, 0);
  std::uint64_t total_allocs = 0;
  for (std::size_t t = 0; t < n_threads; ++t) {
    for (std::size_t c = 0; c < n_classes; ++c) {
      result.class_ops[c] += worker_class[t][c].count();
      result.per_class[c].merge(worker_class[t][c]);
      result.latencies.merge(worker_class[t][c]);
    }
    total_allocs += allocs[t];
  }
  result.allocs_per_op = static_cast<double>(total_allocs) /
                         static_cast<double>(result.total_ops);
  result.achieved_load =
      result.wall_sec > 0
          ? static_cast<double>(result.total_ops) / result.wall_sec
          : 0.0;
  if (cfg.arrivals == ArrivalProcess::kClosedLoop) {
    // No schedule: the loop offered exactly what it achieved.
    result.offered_load = result.achieved_load;
  } else {
    // Schedule span = the last arrival across workers. Workers never issue
    // an operation before its arrival, so wall ≥ span and
    // achieved ≤ offered deterministically.
    std::uint64_t span_ns = 1;
    for (const auto& sched : schedules) {
      if (!sched.empty()) span_ns = std::max(span_ns, sched.back());
    }
    result.offered_load = static_cast<double>(result.total_ops) /
                          (static_cast<double>(span_ns) * 1e-9);
  }
  return result;
}

}  // namespace hi::util
