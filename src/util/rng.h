// Deterministic, seedable PRNGs for schedule generation and workloads.
//
// We deliberately avoid std::mt19937 in the simulator hot paths: schedule
// exploration replays millions of short executions, and splitmix64/xoshiro256
// are faster, trivially seedable, and produce identical streams on every
// platform (important for replayable counterexamples).
#pragma once

#include <cstdint>

namespace hi::util {

/// splitmix64: used to seed xoshiro and for cheap one-off hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: the simulator's workhorse generator.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be >= 1.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Debiased via rejection on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t raw = next();
      if (raw >= threshold) return raw % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return next_below(den) < num;
  }

  // UniformRandomBitGenerator interface, so std::shuffle works.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }
  constexpr result_type operator()() noexcept { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Stable 64-bit hash combiner (boost-style, but 64-bit constants).
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  std::uint64_t mixer = value + 0x9e3779b97f4a7c15ULL;
  return seed ^ splitmix64(mixer) ^ (seed << 6) ^ (seed >> 2);
}

}  // namespace hi::util
