// Cache-line padding for the real-hardware (src/rt) implementations.
//
// Per-process announce cells and statistics counters are padded to a cache
// line each so that false sharing does not distort the benchmark shapes
// (CP.free: measure, don't guess; contention must come from the algorithm,
// not the layout).
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace hi::util {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

/// Wraps T so that consecutive array elements land on distinct cache lines.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value;

  Padded() = default;
  template <typename... Args>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace hi::util
