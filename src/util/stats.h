// Small online-statistics helpers used by the benchmark harnesses:
// latency percentiles for the wait-freedom shape (bounded max latency) and
// step-count accounting in the simulator's progress checker.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hi::util {

/// Accumulates samples and reports order statistics. Not thread-safe; each
/// worker keeps its own accumulator and merges at the end.
class Samples {
 public:
  void reserve(std::size_t n) { values_.reserve(n); }
  void add(std::uint64_t v) { values_.push_back(v); }
  void merge(const Samples& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }

  bool empty() const { return values_.empty(); }
  std::size_t count() const { return values_.size(); }

  std::uint64_t max() const {
    assert(!values_.empty());
    return *std::max_element(values_.begin(), values_.end());
  }
  std::uint64_t min() const {
    assert(!values_.empty());
    return *std::min_element(values_.begin(), values_.end());
  }
  double mean() const {
    assert(!values_.empty());
    double total = 0;
    for (auto v : values_) total += static_cast<double>(v);
    return total / static_cast<double>(values_.size());
  }

  /// q in [0,1]; q=0.5 is the median. Sorts a copy lazily.
  std::uint64_t percentile(double q) const {
    assert(!values_.empty() && q >= 0.0 && q <= 1.0);
    std::vector<std::uint64_t> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }

 private:
  std::vector<std::uint64_t> values_;
};

/// Running max/min/total without storing samples (per-op step counting in
/// multi-million-step simulator runs).
struct RunningStats {
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();

  void add(std::uint64_t v) {
    ++count;
    total += v;
    max = std::max(max, v);
    min = std::min(min, v);
  }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total) / static_cast<double>(count);
  }
};

}  // namespace hi::util
