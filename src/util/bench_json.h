// Machine-readable benchmark results, so the performance trajectory can be
// tracked across PRs without scraping console output.
//
// Each bench executable writes one BENCH_<suite>.json next to its working
// directory (override the directory with HI_BENCH_DIR):
//
//   {
//     "suite": "registers",
//     "meta": {"compiler": "gcc 12.2.0", "cplusplus": 202002,
//              "optimize": true, "assertions": false,
//              "sanitizer": "none", "arch": "x86_64"},
//     "results": [
//       {"name": "alg2/solo_write", "threads": 1,
//        "ops_per_sec": 12345678.9, "p50_ns": 81, "p99_ns": 204,
//        "allocs_per_op": 0, "bytes_per_object": 128},
//       ...
//     ]
//   }
//
// bytes_per_object is the benched object's shared-memory footprint (e.g.
// 65536 for a K=1024 padded-per-bit register vs 128 packed — the layout
// win the packed bin arrays buy), tracked in the JSON trajectory so memory
// wins/regressions are as visible as throughput ones.
//
// The full schema, the measurement methodology (warmup, percentile
// definitions, allocs_per_op semantics) and how CI consumes these artifacts
// are documented in docs/PERF.md.
//
// measure_throughput() is the standard harness: each worker runs an untimed
// warmup (which also brings the RtEnv frame arena to steady state), then
// per-operation latencies are sampled with steady_clock on every thread
// (the ~25ns clock overhead is part of the reported latency, identically
// for every algorithm), wall time is taken across the whole thread group
// for ops/sec, and each worker's thread-local heap-allocation delta
// (util/alloc_probe.h, included below — note its one-TU-per-binary rule)
// yields allocs_per_op.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/alloc_probe.h"
#include "util/stats.h"

namespace hi::util {

/// Build provenance embedded in every BENCH_*.json so artifacts from
/// different CI runs (or a laptop vs a runner) are comparable — a perf
/// delta between a TSan build and a plain Release build is a build-config
/// delta, not a regression.
struct BenchMeta {
  std::string compiler;
  long cplusplus = 0;
  bool optimize = false;    // __OPTIMIZE__: -O1 or higher
  bool assertions = false;  // NDEBUG absent: assert() compiled in
  std::string sanitizer;    // "none" | "thread" | "address"
  std::string arch;
  /// Hardware threads visible to the recording host. Contention-scaling
  /// bounds (the sharded shard sweep) are only meaningful when the host can
  /// actually run the bench threads in parallel — on a 1-core container
  /// every thread time-slices on the same core, inter-core cache-line
  /// ping-pong does not exist, and the sweep is pure noise. check_bench.py
  /// reads this field to decide whether the scaling bound applies.
  unsigned host_cores = 0;
};

inline const BenchMeta& bench_meta() {
  static const BenchMeta meta = [] {
    BenchMeta m;
#if defined(__clang__)
    m.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    m.compiler = std::string("gcc ") + __VERSION__;
#else
    m.compiler = "unknown";
#endif
    m.cplusplus = static_cast<long>(__cplusplus);
#if defined(__OPTIMIZE__)
    m.optimize = true;
#endif
#if !defined(NDEBUG)
    m.assertions = true;
#endif
#if defined(__SANITIZE_THREAD__)
    m.sanitizer = "thread";
#elif defined(__SANITIZE_ADDRESS__)
    m.sanitizer = "address";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    m.sanitizer = "thread";
#elif __has_feature(address_sanitizer)
    m.sanitizer = "address";
#else
    m.sanitizer = "none";
#endif
#else
    m.sanitizer = "none";
#endif
#if defined(__x86_64__) || defined(_M_X64)
    m.arch = "x86_64";
#elif defined(__aarch64__)
    m.arch = "aarch64";
#else
    m.arch = "unknown";
#endif
    m.host_cores = std::thread::hardware_concurrency();
    return m;
  }();
  return meta;
}

struct BenchResult {
  std::string name;
  int threads = 1;
  double ops_per_sec = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  /// Heap allocations per operation in the measured (post-warmup) window,
  /// summed across workers. 0.0 is the steady-state contract for every rt
  /// bench (the frame arena absorbs all coroutine frames); -1.0 means the
  /// result predates the probe (legacy artifacts only).
  double allocs_per_op = -1.0;
  /// Shared-memory footprint of the benched object in bytes (the rt
  /// wrappers' memory_bytes(); set by the emitter after measuring). Tracks
  /// the representation cost next to the throughput — the padded-vs-packed
  /// bin-array tradeoff is a memory×contention tradeoff, not a pure speed
  /// knob (docs/PERF.md).
  std::uint64_t bytes_per_object = 0;
  /// Fraction of operations that entered a helping slow path in the
  /// measured run (wait-free simulation combinator rows; 0.0 on rows for
  /// natively wait-free algorithms benched as controls). -1.0 means "not
  /// applicable" and the field is omitted from the JSON — only suites whose
  /// rows all report it (waitfree_sim) gate on it.
  double slow_path_entry_rate = -1.0;
  // Traffic-driver fields (util/traffic.h; docs/PERF.md "traffic schema").
  // Each uses the same "negative means not-applicable, omitted from the
  // JSON" convention as slow_path_entry_rate.
  /// Ops/sec the arrival schedule asked for. Closed-loop rows report the
  /// achieved rate here too (offered ≡ achieved when there is no schedule).
  double offered_load = -1.0;
  /// Ops/sec actually completed over the wall-clock window. On open-loop
  /// rows achieved ≤ offered by construction (lateness accrues; the driver
  /// never compresses inter-arrival gaps to catch up) — check_bench.py's
  /// traffic suite gates on it.
  double achieved_load = -1.0;
  /// 99.9th-percentile completion latency; with p50/p99 this is the
  /// JCT-style tail picture. -1 omits.
  std::int64_t p999_ns = -1;
  /// ops_combined / batches_installed for universal-construction rows:
  /// exactly 1.0 with combine=false, > 1 when flat combining actually
  /// batches under contention.
  double batch_size_mean = -1.0;
};

/// Run `op(tid, i)` ops_per_thread times on each of `threads` threads,
/// timing every call. OpFn must be thread-safe across distinct tids.
///
/// Each worker first runs min(1024, ops_per_thread) warmup calls, untimed
/// and excluded from the allocation tally: the warmup populates caches,
/// trains branch predictors, and — the part the allocs_per_op gate relies
/// on — lets the per-thread FrameArena mint every coroutine-frame slab the
/// workload needs, so the measured window reports the true steady state.
template <typename OpFn>
BenchResult measure_throughput(std::string name, int threads,
                               std::size_t ops_per_thread, OpFn op) {
  using Clock = std::chrono::steady_clock;
  const std::size_t warmup_ops = std::min<std::size_t>(ops_per_thread, 1024);
  std::vector<Samples> per_thread(static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> allocs(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));

  // Start barrier: the wall clock starts when every thread has finished its
  // warmup and all are released together, so neither thread-creation
  // stagger nor warmup pads the wall time, and no thread runs a
  // lower-contention measured phase while others are still warming up.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  for (int tid = 0; tid < threads; ++tid) {
    pool.emplace_back([&, tid] {
      Samples& samples = per_thread[static_cast<std::size_t>(tid)];
      samples.reserve(ops_per_thread);
      for (std::size_t i = 0; i < warmup_ops; ++i) {
        op(tid, i);
      }
      const AllocTally tally;  // thread-local; spin-waiting allocates nothing
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        const auto start = Clock::now();
        op(tid, i);
        const auto end = Clock::now();
        samples.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()));
      }
      allocs[static_cast<std::size_t>(tid)] = tally.allocs();
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
  }
  const auto wall_start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& worker : pool) worker.join();
  const auto wall_end = Clock::now();

  Samples merged;
  std::uint64_t total_allocs = 0;
  for (const Samples& samples : per_thread) merged.merge(samples);
  for (const std::uint64_t a : allocs) total_allocs += a;

  const double wall_sec =
      std::chrono::duration<double>(wall_end - wall_start).count();
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(threads);

  BenchResult result;
  result.name = std::move(name);
  result.threads = threads;
  result.ops_per_sec = wall_sec > 0 ? total_ops / wall_sec : 0.0;
  result.p50_ns = merged.percentile(0.5);
  result.p99_ns = merged.percentile(0.99);
  result.allocs_per_op = static_cast<double>(total_allocs) / total_ops;
  return result;
}

/// Collects results and writes BENCH_<suite>.json.
class BenchReport {
 public:
  explicit BenchReport(std::string suite) : suite_(std::move(suite)) {}

  void add(BenchResult result) { results_.push_back(std::move(result)); }

  /// Writes the JSON file; returns the path written (empty on failure).
  std::string write() const {
    std::string dir = ".";
    if (const char* env_dir = std::getenv("HI_BENCH_DIR")) dir = env_dir;
    const std::string path = dir + "/BENCH_" + suite_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return "";
    }
    const BenchMeta& meta = bench_meta();
    std::fprintf(out, "{\n  \"suite\": \"%s\",\n", suite_.c_str());
    std::fprintf(out,
                 "  \"meta\": {\"compiler\": \"%s\", \"cplusplus\": %ld, "
                 "\"optimize\": %s, \"assertions\": %s, "
                 "\"sanitizer\": \"%s\", \"arch\": \"%s\", "
                 "\"host_cores\": %u},\n",
                 meta.compiler.c_str(), meta.cplusplus,
                 meta.optimize ? "true" : "false",
                 meta.assertions ? "true" : "false", meta.sanitizer.c_str(),
                 meta.arch.c_str(), meta.host_cores);
    std::fprintf(out, "  \"results\": [\n");
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      // %.6g for allocs_per_op: a fixed-precision format would round a
      // tiny-but-real leak (one frame per ~25k ops => 4e-05) to 0.0000 and
      // sneak it past the CI gate's allocs != 0 check; %.6g keeps any
      // nonzero rate nonzero in the JSON (scientific notation parses fine).
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"threads\": %d, "
                   "\"ops_per_sec\": %.1f, \"p50_ns\": %llu, "
                   "\"p99_ns\": %llu, \"allocs_per_op\": %.6g, "
                   "\"bytes_per_object\": %llu",
                   r.name.c_str(), r.threads, r.ops_per_sec,
                   static_cast<unsigned long long>(r.p50_ns),
                   static_cast<unsigned long long>(r.p99_ns), r.allocs_per_op,
                   static_cast<unsigned long long>(r.bytes_per_object));
      if (r.slow_path_entry_rate >= 0.0) {
        // %.6g for the same reason as allocs_per_op: a rare-but-real slow
        // path (1 in 25k ops) must stay nonzero in the JSON.
        std::fprintf(out, ", \"slow_path_entry_rate\": %.6g",
                     r.slow_path_entry_rate);
      }
      if (r.offered_load >= 0.0) {
        std::fprintf(out, ", \"offered_load\": %.1f", r.offered_load);
      }
      if (r.achieved_load >= 0.0) {
        std::fprintf(out, ", \"achieved_load\": %.1f", r.achieved_load);
      }
      if (r.p999_ns >= 0) {
        std::fprintf(out, ", \"p999_ns\": %lld",
                     static_cast<long long>(r.p999_ns));
      }
      if (r.batch_size_mean >= 0.0) {
        // %.6g: a mean of 1.00004 (one two-op batch in 25k) must not round
        // to a clean 1.0 — the gate reads this to prove combining engaged.
        std::fprintf(out, ", \"batch_size_mean\": %.6g", r.batch_size_mean);
      }
      std::fprintf(out, "}%s\n", i + 1 < results_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("bench_json: wrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string suite_;
  std::vector<BenchResult> results_;
};

}  // namespace hi::util
