// Machine-readable benchmark results, so the performance trajectory can be
// tracked across PRs without scraping console output.
//
// Each bench executable writes one BENCH_<suite>.json next to its working
// directory (override the directory with HI_BENCH_DIR):
//
//   {
//     "suite": "registers",
//     "results": [
//       {"name": "alg2/solo_write", "threads": 1,
//        "ops_per_sec": 12345678.9, "p50_ns": 81, "p99_ns": 204},
//       ...
//     ]
//   }
//
// measure_throughput() is the standard harness: per-operation latencies are
// sampled with steady_clock on every thread (the ~25ns clock overhead is
// part of the reported latency, identically for every algorithm), wall time
// is taken across the whole thread group for ops/sec.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace hi::util {

struct BenchResult {
  std::string name;
  int threads = 1;
  double ops_per_sec = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// Run `op(tid, i)` ops_per_thread times on each of `threads` threads,
/// timing every call. OpFn must be thread-safe across distinct tids.
template <typename OpFn>
BenchResult measure_throughput(std::string name, int threads,
                               std::size_t ops_per_thread, OpFn op) {
  using Clock = std::chrono::steady_clock;
  std::vector<Samples> per_thread(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));

  // Start barrier: the wall clock starts when every thread is spawned and
  // released together, so thread-creation stagger neither pads the wall
  // time nor lets early threads run a lower-contention phase.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  for (int tid = 0; tid < threads; ++tid) {
    pool.emplace_back([&, tid] {
      Samples& samples = per_thread[static_cast<std::size_t>(tid)];
      samples.reserve(ops_per_thread);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        const auto start = Clock::now();
        op(tid, i);
        const auto end = Clock::now();
        samples.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()));
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
  }
  const auto wall_start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& worker : pool) worker.join();
  const auto wall_end = Clock::now();

  Samples merged;
  for (const Samples& samples : per_thread) merged.merge(samples);

  const double wall_sec =
      std::chrono::duration<double>(wall_end - wall_start).count();
  const double total_ops =
      static_cast<double>(ops_per_thread) * static_cast<double>(threads);

  BenchResult result;
  result.name = std::move(name);
  result.threads = threads;
  result.ops_per_sec = wall_sec > 0 ? total_ops / wall_sec : 0.0;
  result.p50_ns = merged.percentile(0.5);
  result.p99_ns = merged.percentile(0.99);
  return result;
}

/// Collects results and writes BENCH_<suite>.json.
class BenchReport {
 public:
  explicit BenchReport(std::string suite) : suite_(std::move(suite)) {}

  void add(BenchResult result) { results_.push_back(std::move(result)); }

  /// Writes the JSON file; returns the path written (empty on failure).
  std::string write() const {
    std::string dir = ".";
    if (const char* env_dir = std::getenv("HI_BENCH_DIR")) dir = env_dir;
    const std::string path = dir + "/BENCH_" + suite_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return "";
    }
    std::fprintf(out, "{\n  \"suite\": \"%s\",\n  \"results\": [\n",
                 suite_.c_str());
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"threads\": %d, "
                   "\"ops_per_sec\": %.1f, \"p50_ns\": %llu, "
                   "\"p99_ns\": %llu}%s\n",
                   r.name.c_str(), r.threads, r.ops_per_sec,
                   static_cast<unsigned long long>(r.p50_ns),
                   static_cast<unsigned long long>(r.p99_ns),
                   i + 1 < results_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("bench_json: wrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string suite_;
  std::vector<BenchResult> results_;
};

}  // namespace hi::util
