// Heap-allocation counting instrumentation for tests and benchmarks.
//
// Including this header REPLACES the global operator new/delete with
// counting versions (thread-local counters, malloc-backed), which is what
// lets tests/test_rt_alloc.cpp assert "zero steady-state allocations per
// operation" and lets util::measure_throughput (bench_json.h) report the
// allocs_per_op field of every BENCH_*.json (docs/PERF.md).
//
// RULES OF USE
//   * Replacement functions must have external linkage and appear at most
//     once per binary: include this header from exactly ONE translation
//     unit of an executable (every bench/ and tests/ target is a single
//     .cpp, so in practice: include it from the .cpp, directly or via
//     bench_json.h, and never from another header).
//   * Counters are thread-local: thread_heap_allocs() observes only the
//     calling thread's allocations, which is exactly the right scope for
//     per-op accounting on a bench worker (background threads — gtest,
//     google-benchmark, TSan — never perturb the measurement).
//   * The probe counts calls to the replaceable global allocation
//     functions. The RtEnv FrameArena (env/rt_env.h) mints its slabs via
//     ::operator new, so cold-path slab creation IS counted and
//     steady-state slab reuse is NOT — allocs_per_op == 0 therefore means
//     "the arena absorbed every coroutine frame", not "nothing ever
//     allocated".
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace hi::util {

namespace detail {
inline thread_local std::uint64_t t_heap_allocs = 0;
inline thread_local std::uint64_t t_heap_frees = 0;
}  // namespace detail

/// Global-new calls made by the calling thread since it started.
inline std::uint64_t thread_heap_allocs() noexcept {
  return detail::t_heap_allocs;
}
/// Global-delete calls (with a non-null pointer) made by the calling thread.
inline std::uint64_t thread_heap_frees() noexcept {
  return detail::t_heap_frees;
}

/// RAII window: allocations by THIS thread since construction.
class AllocTally {
 public:
  AllocTally() noexcept
      : allocs0_(thread_heap_allocs()), frees0_(thread_heap_frees()) {}

  std::uint64_t allocs() const noexcept {
    return thread_heap_allocs() - allocs0_;
  }
  std::uint64_t frees() const noexcept { return thread_heap_frees() - frees0_; }

 private:
  std::uint64_t allocs0_;
  std::uint64_t frees0_;
};

namespace detail {

inline void* counted_alloc(std::size_t size) noexcept {
  ++t_heap_allocs;
  return std::malloc(size != 0 ? size : 1);
}

inline void* counted_aligned_alloc(std::size_t size,
                                   std::size_t alignment) noexcept {
  ++t_heap_allocs;
  void* ptr = nullptr;
  if (posix_memalign(&ptr, alignment, size != 0 ? size : alignment) != 0) {
    return nullptr;
  }
  return ptr;
}

inline void counted_free(void* ptr) noexcept {
  if (ptr != nullptr) {
    ++t_heap_frees;
    std::free(ptr);
  }
}

}  // namespace detail
}  // namespace hi::util

// ---- Replacement global allocation functions (one TU per binary!) ----

void* operator new(std::size_t size) {
  if (void* ptr = hi::util::detail::counted_alloc(size)) return ptr;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  if (void* ptr = hi::util::detail::counted_alloc(size)) return ptr;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return hi::util::detail::counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return hi::util::detail::counted_alloc(size);
}
// Over-aligned forms: util::Padded cells (64-byte) inside std::vector go
// through these at object construction time.
void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* ptr = hi::util::detail::counted_aligned_alloc(
          size, static_cast<std::size_t>(alignment))) {
    return ptr;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* ptr = hi::util::detail::counted_aligned_alloc(
          size, static_cast<std::size_t>(alignment))) {
    return ptr;
  }
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return hi::util::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return hi::util::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { hi::util::detail::counted_free(ptr); }
void operator delete[](void* ptr) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete(void* ptr, std::size_t) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete(void* ptr, std::align_val_t, const std::nothrow_t&) noexcept {
  hi::util::detail::counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  hi::util::detail::counted_free(ptr);
}
