// Crash-configuration audit: what must still hold after the adversary
// crash-fails processes mid-operation (Scheduler::crash — the paper's §2
// crash failures, the event its seized-machine threat model quantifies
// over).
//
// Two checks, composable with any crash staging (explorer-enumerated
// ≤ k-crash configurations, hand-positioned step-exact crashes, shrunken
// regression traces):
//
//  1. PROGRESS GATE — drive_survivors_to_quiescence: round-robin the
//     surviving runnable processes until every one of their pending
//     operations completes, within a step budget. Lock-free and wait-free
//     objects must drain (their progress guarantees hold whatever a crashed
//     process was doing); a lock-based object whose lock holder crashed
//     spins the survivors forever and exhausts the budget — the positive
//     control the gate must catch (tests/test_crash.cpp).
//
//  2. CRASH-POINT HI CHECK — crash_residue: compare the quiescent image the
//     survivors reached against the canonical image of the same surviving
//     abstract state (a fresh system driven crash-free to that state), and
//     require every divergent word to lie inside the caller's allowed
//     residue region — the words the crashed operation itself was writing.
//     This is the fault-containment discipline (Dubois–Masuzawa–Tixeuil,
//     PAPERS.md) applied to the paper's HI definitions: a crash may leave
//     the crashed op's own words torn, but it must not leak history into
//     anything else an adversary reading the memory could see. The positive
//     control is a register that journals the OLD value in a scratch word
//     and only clears it on completion — crash mid-write and the previous
//     value sits in memory at quiescence, outside the op's own words: the
//     exact leak the threat model forbids, and the audit must flag it.
//
// The crashed operation's invocation stays in the history without a
// response; verify/linearizability.h already lets pending operations take
// effect or not, so crashed histories check unchanged. Because the crashed
// op's effect is ambiguous, callers compare against BOTH candidate
// canonical images (op absorbed / op lost) when the crash window spans the
// linearization point — residue_against_best below does exactly that.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/memory.h"
#include "sim/scheduler.h"
#include "verify/divergence.h"

namespace hi::verify {

/// Outcome of the progress gate.
struct ProgressResult {
  bool quiescent = false;       // every surviving process went idle
  std::uint64_t steps_used = 0;
};

/// Round-robin one step at a time over the surviving runnable processes
/// until none remains runnable or the budget runs out. `step_and_reap(pid)`
/// must execute one scheduler step for `pid` and acknowledge a completed
/// operation (Scheduler::finish + take_result) so the process leaves the
/// runnable set — exactly what verify::TraceSide::step + reap, or the
/// explorer's apply_decision, already do. Crashed processes are excluded by
/// Scheduler::runnable_processes() itself.
///
/// Round-robin order matters for the audit's strength: it is the fairest
/// schedule, so a failure here means NO schedule drains the survivors —
/// the object's progress guarantee is simply gone (a lock died with its
/// holder), not merely delayed.
template <typename StepFn>
ProgressResult drive_survivors_to_quiescence(sim::Scheduler& sched,
                                             StepFn step_and_reap,
                                             std::uint64_t step_budget) {
  ProgressResult result;
  for (;;) {
    const std::vector<int> pids = sched.runnable_processes();
    if (pids.empty()) {
      result.quiescent = true;
      return result;
    }
    for (const int pid : pids) {
      if (result.steps_used >= step_budget) return result;
      step_and_reap(pid);
      ++result.steps_used;
    }
  }
}

/// Outcome of the crash-point HI check. `ok` iff every divergent word index
/// satisfies the allowed-residue predicate (identical images are trivially
/// ok: the crash left no residue at all).
struct ResidueReport {
  bool ok = true;
  std::vector<std::size_t> divergent;    // all differing word indices
  std::vector<std::size_t> unlocalized;  // differing AND outside the region

  std::string describe() const {
    std::ostringstream out;
    out << divergent.size() << " divergent word(s), " << unlocalized.size()
        << " outside the crashed op's own words:";
    for (const std::size_t w : unlocalized) out << ' ' << w;
    return out.str();
  }
};

/// Compare the survivors' quiescent image against a canonical image of the
/// surviving abstract state. `allowed(index)` says whether snapshot word
/// `index` belongs to the crashed operation's own words (use
/// sim::Memory::word_range to express object-granular regions).
template <typename AllowedFn>
ResidueReport crash_residue(const sim::MemorySnapshot& canonical,
                            const sim::MemorySnapshot& crashed_quiescent,
                            AllowedFn allowed) {
  ResidueReport report;
  report.divergent = divergent_words(canonical, crashed_quiescent);
  for (const std::size_t w : report.divergent) {
    if (!allowed(w)) {
      report.unlocalized.push_back(w);
      report.ok = false;
    }
  }
  return report;
}

/// The ambiguous-linearization form: a crashed update may or may not have
/// taken effect, so the quiescent image is audited against BOTH candidate
/// canonical images and the better (fewest unlocalized words, then fewest
/// divergent) verdict is returned. Sound because the linearizability
/// checker independently certifies that one of the two abstract outcomes
/// explains the survivors' responses.
template <typename AllowedFn>
ResidueReport residue_against_best(const sim::MemorySnapshot& canonical_a,
                                   const sim::MemorySnapshot& canonical_b,
                                   const sim::MemorySnapshot& crashed_quiescent,
                                   AllowedFn allowed) {
  const ResidueReport a = crash_residue(canonical_a, crashed_quiescent, allowed);
  const ResidueReport b = crash_residue(canonical_b, crashed_quiescent, allowed);
  if (a.unlocalized.size() != b.unlocalized.size()) {
    return a.unlocalized.size() < b.unlocalized.size() ? a : b;
  }
  return a.divergent.size() <= b.divergent.size() ? a : b;
}

}  // namespace hi::verify
