// Schedule-replay equivalence driver: march TWO instantiations of one
// single-source algorithm — the simulator's (SimEnv) and the
// hardware-atomics one (ReplayEnv) — through the SAME recorded schedule
// (sim/trace.h), in lockstep, and compare them after every event:
//
//   * the pending primitive (base-object id + kind) each side is about to
//     execute must match the trace annotation and each other;
//   * operations must complete at the same step, with equal responses
//     (compared via the spec's encode_resp);
//   * the caller-supplied memory comparator runs after every event —
//     snapshot_word_compare() for objects whose per-backend encodings are
//     bit-identical: the binary-register algorithms, the standalone R-LLSC,
//     and the universal constructions (every backend packs head/announce
//     cells through the shared Word64HeadCodec).
//
// This is the concurrency analogue of the sequential parity suite
// (tests/test_env_parity.cpp): any recorded sim interleaving — a random
// Runner run, an explorer Decision path, an adversary starvation schedule —
// becomes a step-exact differential test over real std::atomic operations,
// and a failing schedule pretty-prints as a TraceStep literal for a
// permanent regression test.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "sim/trace.h"
#include "spec/spec.h"

namespace hi::verify {

/// Outcome of a differential replay. On divergence, `message` names the
/// first event at which the two backends disagreed and what differed.
struct ReplayReport {
  bool ok = true;
  std::size_t at = 0;  // index into trace.steps of the first divergence
  std::string message;
  std::uint64_t steps_executed = 0;
  std::uint64_t responses_compared = 0;
  std::uint64_t memory_checks = 0;
};

/// One side of a differential march: a scheduler plus a core-style
/// implementation (`apply(pid, op) -> sim::OpTask<Resp>`), fed a fixed
/// per-process operation sequence in invocation order. Pending operations
/// left by a truncated trace (adversary schedules end mid-read) are
/// abandoned at destruction.
template <spec::SequentialSpec S, typename Impl>
class TraceSide {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  TraceSide(sim::Scheduler& sched, Impl& impl,
            const std::vector<std::vector<Op>>& workload)
      : sched_(sched),
        impl_(impl),
        workload_(workload),
        tasks_(sched.num_processes()),
        next_op_(sched.num_processes(), 0) {}

  TraceSide(const TraceSide&) = delete;
  TraceSide& operator=(const TraceSide&) = delete;

  ~TraceSide() {
    for (int pid = 0; pid < static_cast<int>(tasks_.size()); ++pid) {
      if (tasks_[pid].has_value()) {
        sched_.abandon(pid);
        tasks_[pid].reset();
      }
    }
  }

  bool can_start(int pid) const {
    return !tasks_[pid].has_value() &&
           pid < static_cast<int>(workload_.size()) &&
           next_op_[pid] < workload_[pid].size();
  }
  void start(int pid) {
    assert(can_start(pid));
    const Op op = workload_[pid][next_op_[pid]++];
    tasks_[pid].emplace(impl_.apply(pid, op));
    sched_.start(pid, *tasks_[pid]);
  }

  bool busy(int pid) const { return tasks_[pid].has_value(); }
  bool runnable(int pid) const { return sched_.runnable(pid); }
  bool crashed(int pid) const { return sched_.crashed(pid); }
  /// Crash-fail the pid (trace kind "crash"). Its pending operation — if
  /// any — stays pending forever; the frame is freed by the destructor's
  /// abandon-and-reset sweep like any other torn-down operation.
  void crash(int pid) { sched_.crash(pid); }
  int pending_object(int pid) const { return sched_.pending_object(pid); }
  const char* pending_kind(int pid) const { return sched_.pending_kind(pid); }
  void step(int pid) { sched_.step(pid); }

  /// If pid's operation just completed, acknowledge it and return the
  /// response; nullopt otherwise.
  std::optional<Resp> reap(int pid) {
    if (!tasks_[pid].has_value() || !sched_.op_finished(pid)) {
      return std::nullopt;
    }
    Resp response = tasks_[pid]->take_result();
    sched_.finish(pid);
    tasks_[pid].reset();
    return response;
  }

 private:
  sim::Scheduler& sched_;
  Impl& impl_;
  const std::vector<std::vector<Op>>& workload_;
  std::vector<std::optional<sim::OpTask<Resp>>> tasks_;
  std::vector<std::size_t> next_op_;
};

/// Word-for-word memory comparator: both systems' mem(C) snapshots must be
/// identical vectors. Use when the per-backend encodings coincide (binary
/// registers; the R-LLSC cell, whose replay encoding (value, 0, ctx)
/// matches the simulator's (lo, hi=0, ctx)).
inline auto snapshot_word_compare(const sim::Memory& sim_memory,
                                  const sim::Memory& replay_memory) {
  return [&sim_memory, &replay_memory]() -> std::optional<std::string> {
    if (sim_memory.snapshot() == replay_memory.snapshot()) {
      return std::nullopt;
    }
    return "mem(C) diverges:\n    sim:    " + sim_memory.dump() +
           "\n    replay: " + replay_memory.dump();
  };
}

/// March a sim-side and a replay-side instantiation through `trace`.
/// `workload` is the per-process operation sequence in invocation order —
/// trace start events consume it per pid. `compare` runs after every event:
/// nullopt = equal, else a description of the divergence.
template <spec::SequentialSpec S, typename SimImpl, typename ReplayImpl,
          typename CompareFn>
ReplayReport replay_differential(
    const S& spec, sim::Scheduler& sim_sched, SimImpl& sim_impl,
    sim::Scheduler& replay_sched, ReplayImpl& replay_impl,
    const std::vector<std::vector<typename S::Op>>& workload,
    const sim::ScheduleTrace& trace, CompareFn compare) {
  ReplayReport report;
  TraceSide<S, SimImpl> sim_side(sim_sched, sim_impl, workload);
  TraceSide<S, ReplayImpl> replay_side(replay_sched, replay_impl, workload);

  const auto fail = [&report](std::size_t at, std::string message) {
    report.ok = false;
    report.at = at;
    std::ostringstream out;
    out << "at trace step " << at << ": " << message;
    report.message = out.str();
  };
  const auto check_memory = [&](std::size_t at) {
    const std::optional<std::string> diff = compare();
    if (diff.has_value()) {
      fail(at, *diff);
      return false;
    }
    ++report.memory_checks;
    return true;
  };

  if (!check_memory(0)) return report;  // initial memories must agree

  const int num_processes = sim_sched.num_processes();
  if (replay_sched.num_processes() != num_processes) {
    fail(0, "process counts differ between the two systems");
    return report;
  }
  for (std::size_t i = 0; i < trace.steps.size(); ++i) {
    const sim::TraceStep& event = trace.steps[i];
    // A corrupted trace (hand-persisted literals invite typos) must be
    // rejected cleanly, never indexed with.
    if (event.pid < 0 || event.pid >= num_processes) {
      fail(i, "trace names pid " + std::to_string(event.pid) + " but the "
              "systems have " + std::to_string(num_processes) + " processes");
      return report;
    }
    if (event.is_crash()) {
      // Crash events replay on both sides alike: the pid halts, its pending
      // operation (if any) never responds, and the lockstep march continues
      // over the survivors — so crashed schedules are differential tests
      // too (the post-crash survivor steps and memories must still agree).
      if (sim_side.crashed(event.pid) || replay_side.crashed(event.pid)) {
        fail(i, "trace crashes an already-crashed pid");
        return report;
      }
      sim_side.crash(event.pid);
      replay_side.crash(event.pid);
    } else if (event.start) {
      if (!sim_side.can_start(event.pid) || !replay_side.can_start(event.pid)) {
        fail(i, "trace invokes an operation the workload does not provide");
        return report;
      }
      sim_side.start(event.pid);
      replay_side.start(event.pid);
    } else {
      if (!sim_side.busy(event.pid) || !sim_side.runnable(event.pid)) {
        fail(i, "sim side has no runnable operation for the traced step");
        return report;
      }
      if (!replay_side.busy(event.pid) || !replay_side.runnable(event.pid)) {
        fail(i, "replay side has no runnable operation — the backends "
                "completed the operation at different steps");
        return report;
      }
      // The sim re-execution must retrace the recorded annotation exactly
      // (determinism check), and the replay side must be about to execute
      // the SAME primitive on the SAME base object (equivalence check).
      const int sim_obj = sim_side.pending_object(event.pid);
      const std::string_view sim_kind = sim_side.pending_kind(event.pid);
      if (event.object >= 0 &&
          (sim_obj != event.object || sim_kind != event.kind)) {
        std::ostringstream out;
        out << "sim re-execution deviates from the recorded trace: pending ("
            << sim_obj << ", " << sim_kind << ") vs recorded ("
            << event.object << ", " << event.kind << ")";
        fail(i, out.str());
        return report;
      }
      const int replay_obj = replay_side.pending_object(event.pid);
      const std::string_view replay_kind = replay_side.pending_kind(event.pid);
      if (replay_obj != sim_obj || replay_kind != sim_kind) {
        std::ostringstream out;
        out << "pending primitive diverges: sim (" << sim_obj << ", "
            << sim_kind << ") vs replay (" << replay_obj << ", " << replay_kind
            << ")";
        fail(i, out.str());
        return report;
      }
      sim_side.step(event.pid);
      replay_side.step(event.pid);
      ++report.steps_executed;
    }

    const auto sim_resp = sim_side.reap(event.pid);
    const auto replay_resp = replay_side.reap(event.pid);
    if (sim_resp.has_value() != replay_resp.has_value()) {
      fail(i, sim_resp.has_value()
                  ? "sim operation completed but replay is still pending"
                  : "replay operation completed but sim is still pending");
      return report;
    }
    if (sim_resp.has_value()) {
      const std::uint32_t sim_word = spec.encode_resp(*sim_resp);
      const std::uint32_t replay_word = spec.encode_resp(*replay_resp);
      if (sim_word != replay_word) {
        std::ostringstream out;
        out << "response diverges for p" << event.pid << ": sim " << sim_word
            << " vs replay " << replay_word << " (encoded)";
        fail(i, out.str());
        return report;
      }
      ++report.responses_compared;
    }
    if (!check_memory(i)) return report;
  }
  return report;
}

/// Implementation wrapper that logs every invoked operation per pid while
/// forwarding to the wrapped implementation — how a workload is captured
/// from runs whose operations are chosen dynamically (the impossibility
/// adversaries), so the recorded schedule can be replayed from a fixed
/// per-process op sequence.
template <spec::SequentialSpec S, typename Impl>
class RecordingImpl {
 public:
  RecordingImpl(Impl& inner, std::vector<std::vector<typename S::Op>>& log)
      : inner_(inner), log_(log) {}

  sim::OpTask<typename S::Resp> apply(int pid, typename S::Op op) {
    log_[static_cast<std::size_t>(pid)].push_back(op);
    return inner_.apply(pid, op);
  }

 private:
  Impl& inner_;
  std::vector<std::vector<typename S::Op>>& log_;
};

}  // namespace hi::verify
