// Concurrent histories: the sequence of invocation and response events
// induced by an execution (H(α) in §2), used by the linearizability checker.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hi::verify {

/// One completed-or-pending high-level operation in a history. Event times
/// are global event indices assigned by the recorder: invocation and
/// response of the same operation bracket the interval during which it was
/// pending. kPending marks an operation with no matching response.
template <typename Op, typename Resp>
struct HistoryOp {
  static constexpr std::uint64_t kPending =
      std::numeric_limits<std::uint64_t>::max();

  int pid = -1;
  Op op{};
  Resp resp{};
  std::uint64_t invoked_at = 0;
  std::uint64_t responded_at = kPending;

  bool completed() const { return responded_at != kPending; }
  /// Real-time precedence: this operation's response precedes other's
  /// invocation.
  template <typename O2>
  bool precedes(const O2& other) const {
    return completed() && responded_at < other.invoked_at;
  }
};

/// Recorder for one execution. The harness calls invoke() when it starts an
/// operation and respond() when the operation's coroutine completes.
template <typename Op, typename Resp>
class History {
 public:
  using Entry = HistoryOp<Op, Resp>;

  /// Returns the operation's index, used to attach the response later.
  std::size_t invoke(int pid, Op op) {
    Entry entry;
    entry.pid = pid;
    entry.op = std::move(op);
    entry.invoked_at = next_time_++;
    entries_.push_back(std::move(entry));
    return entries_.size() - 1;
  }

  void respond(std::size_t index, Resp resp) {
    Entry& entry = entries_.at(index);
    assert(!entry.completed());
    entry.resp = std::move(resp);
    entry.responded_at = next_time_++;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  const Entry& operator[](std::size_t i) const { return entries_[i]; }

  std::size_t num_pending() const {
    std::size_t count = 0;
    for (const Entry& entry : entries_) {
      if (!entry.completed()) ++count;
    }
    return count;
  }

 private:
  std::vector<Entry> entries_;
  std::uint64_t next_time_ = 0;
};

}  // namespace hi::verify
