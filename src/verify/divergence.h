// Snapshot-divergence localization: given two mem(C) snapshots of the same
// system layout, report exactly WHICH base-object words differ. The Thm 17
// probe uses this to assert that the wait-free simulation combinator's HI
// violation lives entirely in the words the combinator added (operation
// records, help-queue ring, head/tail) while the wrapped algorithm's own
// words remain canonical — i.e. the violation is a property of the
// transform, not a bug in Alg 2/3.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "sim/memory.h"

namespace hi::verify {

/// Indices (in mem(C) registration order) at which the two snapshots'
/// words differ. Snapshots must come from identically-laid-out systems.
inline std::vector<std::size_t> divergent_words(const sim::MemorySnapshot& a,
                                                const sim::MemorySnapshot& b) {
  assert(a.words.size() == b.words.size() &&
         "divergent_words requires same-layout snapshots");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < a.words.size(); ++i) {
    if (a.words[i] != b.words[i]) out.push_back(i);
  }
  return out;
}

/// True iff every divergent word index is >= `first_suffix_word` — the
/// "divergence localized to the suffix" assertion. Requires at least one
/// divergent index (identical snapshots are NOT a localized divergence;
/// callers pinning an expected violation should fail loudly if it vanished).
inline bool divergence_localized_after(const sim::MemorySnapshot& a,
                                       const sim::MemorySnapshot& b,
                                       std::size_t first_suffix_word) {
  const std::vector<std::size_t> diff = divergent_words(a, b);
  if (diff.empty()) return false;
  for (const std::size_t i : diff) {
    if (i < first_suffix_word) return false;
  }
  return true;
}

}  // namespace hi::verify
