// Linearizability checker (Wing–Gong style DFS with memoization).
//
// Given a concurrent history H(α) and a sequential specification Δ, decides
// whether there is a linearization (§2): a permutation of a completion of
// H(α) that matches Δ and respects the real-time order of non-overlapping
// operations. Completed operations must appear with their recorded
// responses; pending operations may take effect or not (completions).
//
// The search memoizes (linearized-set, abstract-state) pairs and carries an
// explicit node budget so a pathological history reports kInconclusive
// instead of hanging the test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_set>
#include <vector>

#include "spec/spec.h"
#include "util/rng.h"
#include "verify/history.h"

namespace hi::verify {

enum class Verdict : std::uint8_t {
  kLinearizable,
  kNotLinearizable,
  kInconclusive,  // node budget exhausted
};

struct LinResult {
  Verdict verdict = Verdict::kInconclusive;
  std::uint64_t nodes_explored = 0;
  /// On success: indices into the history, in linearization order (pending
  /// operations that did not take effect are absent).
  std::vector<std::size_t> witness;

  bool ok() const { return verdict == Verdict::kLinearizable; }
};

template <hi::spec::SequentialSpec S>
class LinearizabilityChecker {
 public:
  using Hist = History<typename S::Op, typename S::Resp>;

  explicit LinearizabilityChecker(const S& spec,
                                  std::uint64_t node_budget = 20'000'000)
      : spec_(spec), node_budget_(node_budget) {}

  /// If `expected_final_state` is set, only linearizations of the *entire*
  /// history (every operation, including pending ones, takes effect) ending
  /// in that exact state are accepted — used for end-of-execution
  /// cross-validation against a destructive probe.
  LinResult check(const Hist& history,
                  std::optional<typename S::State> expected_final_state =
                      std::nullopt) const {
    Search search{spec_, history.entries(), node_budget_,
                  std::move(expected_final_state)};
    return search.run();
  }

 private:
  struct Search {
    const S& spec;
    const std::vector<typename Hist::Entry>& ops;
    std::uint64_t budget;
    std::optional<typename S::State> final_state;

    std::vector<std::uint64_t> taken;  // bitset over ops
    std::size_t num_completed = 0;
    std::size_t taken_completed = 0;
    std::size_t taken_total = 0;
    std::uint64_t nodes = 0;
    std::unordered_set<std::uint64_t> failed;  // memo of dead states
    std::vector<std::size_t> order;

    Search(const S& s, const std::vector<typename Hist::Entry>& o,
           std::uint64_t b, std::optional<typename S::State> fs)
        : spec(s), ops(o), budget(b), final_state(std::move(fs)) {
      taken.assign((ops.size() + 63) / 64, 0);
      for (const auto& op : ops) {
        if (op.completed()) ++num_completed;
      }
    }

    bool is_taken(std::size_t i) const {
      return (taken[i / 64] >> (i % 64)) & 1u;
    }
    void set_taken(std::size_t i) { taken[i / 64] |= std::uint64_t{1} << (i % 64); }
    void clear_taken(std::size_t i) {
      taken[i / 64] &= ~(std::uint64_t{1} << (i % 64));
    }

    std::uint64_t memo_key(const typename S::State& state) const {
      std::uint64_t h = util::hash_combine(0x9d2c5680aull,
                                           spec.encode_state(state));
      for (std::uint64_t word : taken) h = util::hash_combine(h, word);
      return h;
    }

    LinResult run() {
      LinResult result;
      const typename S::State init = spec.initial_state();
      if (dfs(init)) {
        result.verdict = Verdict::kLinearizable;
        result.witness = order;
      } else {
        result.verdict = nodes >= budget ? Verdict::kInconclusive
                                         : Verdict::kNotLinearizable;
      }
      result.nodes_explored = nodes;
      return result;
    }

    bool dfs(const typename S::State& state) {
      if (final_state.has_value()) {
        if (taken_total == ops.size()) {
          return spec.encode_state(state) == spec.encode_state(*final_state);
        }
      } else if (taken_completed == num_completed) {
        return true;
      }
      if (++nodes >= budget) return false;
      const std::uint64_t key = memo_key(state);
      if (failed.contains(key)) return false;

      // The earliest response among not-yet-linearized operations bounds
      // which operations may be linearized next: op i is a legal next pick
      // iff no untaken operation responded before i was invoked.
      std::uint64_t min_response = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (!is_taken(i) && ops[i].completed()) {
          min_response = std::min(min_response, ops[i].responded_at);
        }
      }

      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (is_taken(i) || ops[i].invoked_at >= min_response) continue;
        auto [next_state, resp] = spec.apply(state, ops[i].op);
        if (ops[i].completed() &&
            spec.encode_resp(resp) != spec.encode_resp(ops[i].resp)) {
          continue;
        }
        set_taken(i);
        ++taken_total;
        if (ops[i].completed()) ++taken_completed;
        order.push_back(i);
        if (dfs(next_state)) return true;
        order.pop_back();
        if (ops[i].completed()) --taken_completed;
        --taken_total;
        clear_taken(i);
      }
      failed.insert(key);
      return false;
    }
  };

  const S& spec_;
  std::uint64_t node_budget_;
};

/// Convenience wrapper.
template <hi::spec::SequentialSpec S>
LinResult check_linearizable(const S& spec,
                             const History<typename S::Op, typename S::Resp>& h,
                             std::uint64_t node_budget = 20'000'000) {
  return LinearizabilityChecker<S>(spec, node_budget).check(h);
}

}  // namespace hi::verify
