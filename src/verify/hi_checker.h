// History-independence checker.
//
// For deterministic implementations, weak and strong HI coincide and both are
// equivalent to *canonical memory representations* (Proposition 3): every
// abstract state q has exactly one memory representation can(q), and at every
// allowed observation point the memory equals can(state). The checker
// enforces exactly that, following Definition 4: it is fed (abstract-state,
// memory-snapshot) pairs harvested at the observation points of a chosen
// HI notion — every configuration (perfect HI, Definition 5), state-quiescent
// configurations (Definition 7) or quiescent configurations (Definition 8) —
// possibly across *many* executions, and reports the first conflict: two
// observation points with the same abstract state but different memory.
//
// Canonical entries may also be pre-seeded from solo sequential executions
// (the construction of can(q) used throughout the paper's proofs); concurrent
// observations are then checked against the sequential canon, which
// additionally validates that concurrency leaves no residue relative to the
// sequential representation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "sim/memory.h"

namespace hi::verify {

class HiChecker {
 public:
  struct Violation {
    std::uint64_t state = 0;
    sim::MemorySnapshot expected;
    sim::MemorySnapshot actual;
    std::string first_seen;
    std::string where;

    std::string message() const {
      return "state " + std::to_string(state) + " first seen at [" +
             first_seen + "] has a different memory representation at [" +
             where + "]";
    }
  };

  /// Seed the canonical representation of a state (authoritative, e.g. from a
  /// solo sequential run). Returns false if it conflicts with an existing
  /// entry for the same state.
  bool set_canonical(std::uint64_t state, sim::MemorySnapshot snapshot,
                     std::string where = "sequential-canon") {
    return observe(state, std::move(snapshot), std::move(where));
  }

  /// Record an observation point. Returns true if consistent so far.
  bool observe(std::uint64_t state, sim::MemorySnapshot snapshot,
               std::string where) {
    ++num_observations_;
    auto it = canon_.find(state);
    if (it == canon_.end()) {
      canon_.emplace(state, Entry{std::move(snapshot), std::move(where)});
      return true;
    }
    if (it->second.snapshot == snapshot) return true;
    if (!violation_.has_value()) {
      violation_ = Violation{state, it->second.snapshot, std::move(snapshot),
                             it->second.where, std::move(where)};
    }
    return false;
  }

  bool consistent() const { return !violation_.has_value(); }
  const std::optional<Violation>& violation() const { return violation_; }

  std::size_t num_observations() const { return num_observations_; }
  std::size_t num_states() const { return canon_.size(); }

  /// The canonical snapshot recorded for a state, if any.
  const sim::MemorySnapshot* canonical(std::uint64_t state) const {
    auto it = canon_.find(state);
    return it == canon_.end() ? nullptr : &it->second.snapshot;
  }

 private:
  struct Entry {
    sim::MemorySnapshot snapshot;
    std::string where;
  };

  std::unordered_map<std::uint64_t, Entry> canon_;
  std::optional<Violation> violation_;
  std::size_t num_observations_ = 0;
};

}  // namespace hi::verify
