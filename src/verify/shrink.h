// Schedule shrinking: reduce a failing decision sequence to a small
// counterexample before persisting it as a ScheduleTrace literal.
//
// The rt yield-fuzzer and the explorer both end a failure with a decision
// sequence (sim::Decision path) whose execution violates a check. Raw
// sequences carry every irrelevant step of every irrelevant operation;
// regression literals should carry only the interleaving that matters.
// shrink_schedule() is ddmin-flavoured greedy chunk removal: drop a window
// of decisions, tolerantly re-execute (most candidates are simply invalid
// schedules — a step whose operation was never invoked — and are rejected
// by the executor, not special-cased here), and keep the candidate iff the
// failure still reproduces. Windows halve from n/2 down to single
// decisions; the loop restarts after any progress, so the result is
// 1-minimal with respect to single-decision removal.
//
// The function is deliberately generic over the executor: the explorer's
// Explorer::try_execute() (sim/explorer.h) is the intended one — it returns
// the induced history, or nullopt for invalid sequences — but any
// (candidate -> std::optional<artifact>) callable works, so adversary
// harnesses with richer artifacts reuse the same reduction loop.
#pragma once

#include <cstddef>
#include <utility>

namespace hi::verify {

/// Greedily remove decision windows from `failing` while the failure still
/// reproduces. `try_execute(candidate)` -> std::optional<Artifact> (nullopt
/// = invalid schedule); `still_fails(artifact)` -> bool. Returns a failing
/// subsequence of the input (at worst the input itself; the input is
/// assumed to fail and is never re-validated).
template <typename Seq, typename TryExecute, typename StillFails>
Seq shrink_schedule(Seq failing, TryExecute&& try_execute,
                    StillFails&& still_fails) {
  bool progress = true;
  while (progress && failing.size() > 1) {
    progress = false;
    for (std::size_t window = failing.size() / 2; window >= 1; window /= 2) {
      for (std::size_t at = 0; at + window <= failing.size();) {
        Seq candidate;
        candidate.reserve(failing.size() - window);
        candidate.insert(candidate.end(), failing.begin(),
                         failing.begin() + static_cast<std::ptrdiff_t>(at));
        candidate.insert(
            candidate.end(),
            failing.begin() + static_cast<std::ptrdiff_t>(at + window),
            failing.end());
        auto artifact = try_execute(candidate);
        if (artifact.has_value() && still_fails(*artifact)) {
          failing = std::move(candidate);
          progress = true;
          // The window at `at` is new content now — retry in place.
        } else {
          ++at;
        }
      }
      if (window == 1) break;
    }
  }
  return failing;
}

}  // namespace hi::verify
