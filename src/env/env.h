// The execution-environment abstraction.
//
// Every algorithm in src/algo is written ONCE as a coroutine templated over
// an environment policy `Env` that supplies:
//
//   Ctx                       — construction context, passed to algorithm
//                               constructors (the simulator's Memory&; an
//                               empty tag on hardware);
//   Op<T> / Sub<T>            — the coroutine types for a high-level
//                               operation and for an internal helper. In the
//                               simulator these are sim::OpTask/sim::SubTask
//                               (every primitive suspends; one scheduler
//                               resume == one step of the paper's §2 model).
//                               On hardware they are EagerTask: no awaitable
//                               ever suspends, so the coroutine runs to
//                               completion synchronously inside the call;
//   BinArray + read_bit/write_bit/peek_bit
//                             — an array of binary (Boolean) registers, the
//                               small base objects of the §4/§5.1 algorithms;
//   Value, CasCell + cas_read/cas/cas_write/peek_cas
//                             — one CAS base object over CtxWord<Value>, the
//                               base object of Algorithm 6 (§6.3);
//   WordArray + read_word/write_word/cas_word/peek_word
//                             — an array of 64-bit CAS words, the
//                               per-process announce/result tables of the
//                               leaky (non-HI) universal baseline.
//
// read_bit/write_bit/cas_read/cas/cas_write/read_word/write_word/cas_word
// return AWAITABLES: in the simulator each is a sim::Primitive that suspends
// until the scheduler grants the process its step; on hardware each is a
// Ready awaiter that executes the std::atomic operation immediately in
// await_resume. Each awaitable costs exactly ONE primitive step — in
// particular cas/cas_word are failure-word CASes (the result is an
// algo::CasResult carrying the word observed at the step), so retry loops
// cost one primitive per attempt rather than a CAS plus a re-read. The
// peek_* functions are observer-side (never a step of the model) and are
// what memory_image()/parity checks are built from.
//
// Allocation contract: the coroutine frames behind Op/Sub are the
// environment's cost to manage, not the algorithm's. RtEnv backs every
// EagerTask frame with a per-thread recycling arena so the hardware fast
// path is allocation-free in steady state (allocs_per_op == 0 in every
// BENCH_*.json; see docs/PERF.md); SimEnv frames are ordinary heap
// allocations, fine for model checking. Algorithm bodies should still keep
// helper-call chains shallow — at most one live Sub per nesting level —
// because a frame is recycled only when its task is destroyed.
//
// The full contract — memory-step semantics, the one-resume-one-step
// invariant in SimEnv, the EagerTask rules in RtEnv, the frame-arena
// lifecycle, and how to add a backend — is documented in docs/ENV.md.
//
// The payoff: one algorithm definition gets exhaustive interleaving checks
// and HI model checking from the SimEnv instantiation, and real-thread
// stress tests plus hardware benchmarks from the RtEnv instantiation.
#pragma once

#include <coroutine>
#include <cstdint>
#include <utility>

namespace hi::env {

namespace detail {

/// Awaiter adapter: forwards readiness/suspension to an inner awaitable and
/// applies `fn` to its result. Zero-allocation; used by environments to
/// convert a backend word type to the algorithm-level CtxWord without an
/// intermediate coroutine frame.
template <typename Awaitable, typename Fn>
struct [[nodiscard]] MapAwait {
  Awaitable inner;
  Fn fn;

  bool await_ready() noexcept(noexcept(inner.await_ready())) {
    return inner.await_ready();
  }
  auto await_suspend(std::coroutine_handle<> handle) {
    return inner.await_suspend(handle);
  }
  auto await_resume() { return fn(inner.await_resume()); }
};

template <typename Awaitable, typename Fn>
MapAwait(Awaitable, Fn) -> MapAwait<Awaitable, Fn>;

/// Always-ready awaiter: runs `fn` at await_resume, i.e. synchronously at
/// the co_await site. The hardware environment's primitive shape.
template <typename Fn>
struct [[nodiscard]] Ready {
  Fn fn;

  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  auto await_resume() { return fn(); }
};

template <typename Fn>
Ready(Fn) -> Ready<Fn>;

/// An already-computed value as an awaitable; lets bool-returning legacy
/// polls satisfy the awaitable-poll interface of ll_interleaved.
template <typename T>
auto ready(T value) {
  return Ready{[value]() mutable { return std::move(value); }};
}

}  // namespace detail

/// Structural requirements every execution environment satisfies. Kept
/// intentionally shallow (the awaitable-returning statics cannot be
/// expressed without picking a coroutine context); the real contract is
/// documented above and enforced by the algo-layer instantiations.
template <typename E>
concept ExecutionEnv = requires {
  typename E::Ctx;
  typename E::BinArray;
  typename E::Value;
  typename E::CasCell;
  typename E::WordArray;
  typename E::template Op<int>;
  typename E::template Sub<int>;
};

}  // namespace hi::env
