// The execution-environment abstraction.
//
// Every algorithm in src/algo is written ONCE as a coroutine templated over
// an environment policy `Env` that supplies:
//
//   Ctx                       — construction context, passed to algorithm
//                               constructors (the simulator's Memory&; an
//                               empty tag on hardware);
//   Op<T> / Sub<T>            — the coroutine types for a high-level
//                               operation and for an internal helper. In the
//                               simulator these are sim::OpTask/sim::SubTask
//                               (every primitive suspends; one scheduler
//                               resume == one step of the paper's §2 model).
//                               On hardware they are EagerTask: no awaitable
//                               ever suspends, so the coroutine runs to
//                               completion synchronously inside the call;
//   BinArray + read_bit/write_bit/peek_bit
//                             — an array of binary (Boolean) registers, the
//                               small base objects of the §4/§5.1 algorithms;
//   Value, CasCell + cas_read/cas/cas_write/peek_cas
//                             — one CAS base object over CtxWord<Value>, the
//                               base object of Algorithm 6 (§6.3);
//   WordArray + read_word/write_word/cas_word/peek_word
//                             — an array of 64-bit CAS words, the
//                               per-process announce/result tables of the
//                               leaky (non-HI) universal baseline.
//
// read_bit/write_bit/cas_read/cas/cas_write/read_word/write_word/cas_word
// return AWAITABLES: in the simulator each is a sim::Primitive that suspends
// until the scheduler grants the process its step; on hardware each is a
// Ready awaiter that executes the std::atomic operation immediately in
// await_resume. Each awaitable costs exactly ONE primitive step — in
// particular cas/cas_word are failure-word CASes (the result is an
// algo::CasResult carrying the word observed at the step), so retry loops
// cost one primitive per attempt rather than a CAS plus a re-read. The
// peek_* functions are observer-side (never a step of the model) and are
// what memory_image()/parity checks are built from.
//
// Allocation contract: the coroutine frames behind Op/Sub are the
// environment's cost to manage, not the algorithm's. RtEnv backs every
// EagerTask frame with a per-thread recycling arena so the hardware fast
// path is allocation-free in steady state (allocs_per_op == 0 in every
// BENCH_*.json; see docs/PERF.md); SimEnv frames are ordinary heap
// allocations, fine for model checking. Algorithm bodies should still keep
// helper-call chains shallow — at most one live Sub per nesting level —
// because a frame is recycled only when its task is destroyed.
//
// The full contract — memory-step semantics, the one-resume-one-step
// invariant in SimEnv, the EagerTask rules in RtEnv, the frame-arena
// lifecycle, and how to add a backend — is documented in docs/ENV.md.
//
// The payoff: one algorithm definition gets exhaustive interleaving checks
// and HI model checking from the SimEnv instantiation, and real-thread
// stress tests plus hardware benchmarks from the RtEnv instantiation.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <span>
#include <utility>

#include "util/bits.h"

namespace hi::env {

namespace detail {

/// Awaiter adapter: forwards readiness/suspension to an inner awaitable and
/// applies `fn` to its result. Zero-allocation; used by environments to
/// convert a backend word type to the algorithm-level CtxWord without an
/// intermediate coroutine frame.
template <typename Awaitable, typename Fn>
struct [[nodiscard]] MapAwait {
  Awaitable inner;
  Fn fn;

  bool await_ready() noexcept(noexcept(inner.await_ready())) {
    return inner.await_ready();
  }
  auto await_suspend(std::coroutine_handle<> handle) {
    return inner.await_suspend(handle);
  }
  auto await_resume() { return fn(inner.await_resume()); }
};

template <typename Awaitable, typename Fn>
MapAwait(Awaitable, Fn) -> MapAwait<Awaitable, Fn>;

/// Always-ready awaiter: runs `fn` at await_resume, i.e. synchronously at
/// the co_await site. The hardware environment's primitive shape.
template <typename Fn>
struct [[nodiscard]] Ready {
  Fn fn;

  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  auto await_resume() { return fn(); }
};

template <typename Fn>
Ready(Fn) -> Ready<Fn>;

/// An already-computed value as an awaitable. This — not Ready — is the
/// shape the eager (rt/fuzz) environments return from every primitive: the
/// atomic access executes inside the primitive call itself, while all
/// argument references are trivially alive, and only the plain result value
/// rides through the await transform. Carrying argument *captures* through
/// nested always-ready awaiters instead (the fenced-Ready-inside-Ready
/// pattern) was observed to miscompile under GCC 12 with -DNDEBUG: in a
/// CAS retry loop the captured `expected` word lagged the refreshed value
/// by one iteration and was transiently clobbered with bytes from a nested
/// poll coroutine's frame, letting a stale CAS succeed and resurrect a
/// retired flat-combining record (livelock). A value-only payload with no
/// lambda and no nesting gives the transform nothing to get wrong.
template <typename T>
struct [[nodiscard]] Done {
  T value;

  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  T await_resume() { return std::move(value); }
};

/// An already-computed value as an awaitable; also lets bool-returning
/// legacy polls satisfy the awaitable-poll interface of ll_interleaved.
template <typename T>
auto ready(T value) {
  return Done<T>{std::move(value)};
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Bin-array layouts and the word-scan library.
//
// The §4/§5.1 algorithms spend their hot paths scanning an array of binary
// registers. Two memory representations of the same abstract bins are
// supported, selected per instantiation through a `Bins` traits policy the
// algorithm bodies are templated over:
//
//   PaddedBins<Env>  — one base object per bin (BinArray). Every scan step
//                      reads or writes ONE bin: exactly the paper's
//                      single-bit register primitives, O(K) steps per scan.
//                      On hardware each bin is its own cache-line-padded
//                      atomic byte (K=1024 ⇒ 64 KiB, scans walk up to K
//                      lines) — false-sharing-free but scan-hostile.
//   PackedBins<Env>  — 64 bins per word-sized base object (PackedBinArray).
//                      Every scan step LOADS one whole word (a free 64-bin
//                      snapshot — strictly stronger than the paper's
//                      single-bit read) or RMWs up to 64 bins via
//                      fetch_or/fetch_and, so scans cost O(K/64) steps and
//                      on hardware touch O(K/64) unpadded, contiguous
//                      cache lines (K=1024 ⇒ 128 bytes = 2 lines). The
//                      price is word contention between bins sharing a
//                      word.
//
// HI is preserved by packing because the packed word vector is a pure
// function of the abstract bin contents — can(v) maps to exactly one word
// image — so every canonical-representation argument (state-quiescent HI
// for Algorithms 2/3, quiescent HI for Algorithm 4, perfect HI for the
// §5.1 set) carries over verbatim; only the base-object granularity of
// mem(C) changes. See docs/ENV.md "Packed bin arrays" and the deviation
// note in docs/PAPER_MAP.md.
//
// Step costs (each co_await below = exactly ONE primitive step):
//
//   op                  PaddedBins                PackedBins
//   read(a, v)          1 (bit read)              1 (word load + extract)
//   set/clear(a, v)     1 (bit write)             1 (fetch_or/fetch_and)
//   scan_up(a, from)    1 per bin examined        1 word load per 64 bins
//   scan_down(a, from)  1 per bin examined        1 word load per 64 bins
//   clear_down(a, from) `from` bit writes         1 fetch_and per word
//   clear_up(a, from)   size-from+1 bit writes    1 fetch_and per word
//
// The scans are Sub coroutines (multi-step operations built from one-step
// primitives), so the simulator explores every interleaving point between
// word accesses and the explorer/replay suites model-check the packed
// granularity like any other primitive sequence.
// ---------------------------------------------------------------------------

/// The padded-per-bit layout: delegates to the environment's BinArray
/// primitives. Scan/clear loops reproduce the §4/§5.1 bodies' original
/// bit-at-a-time primitive sequences EXACTLY (same objects, same order), so
/// instantiations that predate packing — including persisted ScheduleTrace
/// literals and step-count tests — are unaffected by the Bins refactor.
template <typename Env>
struct PaddedBins {
  using Array = typename Env::BinArray;
  template <typename T>
  using Sub = typename Env::template Sub<T>;

  static Array make(typename Env::Ctx ctx, const char* prefix,
                    std::uint32_t count, std::uint32_t one_index) {
    return Env::make_bin_array(ctx, prefix, count, one_index);
  }
  /// Multi-word initializer: word w of `words` seeds bins 64w+1..64w+64
  /// (bit v-1 of the flat bitmap = bin v); missing trailing words read as 0
  /// and bits beyond `count` are dropped (util::init_word is the single
  /// source of that geometry). This is THE make_bits form — the uint64_t
  /// overload below is a convenience wrapper for ≤64-bin call sites.
  static Array make_bits(typename Env::Ctx ctx, const char* prefix,
                         std::uint32_t count,
                         std::span<const std::uint64_t> words) {
    return Env::make_bin_array_words(ctx, prefix, count, words);
  }
  /// Single-word convenience overload (source compatibility for ≤64 bins;
  /// with count > 64 the remaining bins simply start 0).
  static Array make_bits(typename Env::Ctx ctx, const char* prefix,
                         std::uint32_t count, std::uint64_t bits) {
    return Env::make_bin_array_words(ctx, prefix, count,
                                     std::span<const std::uint64_t>(&bits, 1));
  }

  static std::uint32_t size(const Array& a) {
    return static_cast<std::uint32_t>(a.size());
  }

  /// read(A[v]) — 1 step.
  static auto read(Array& a, std::uint32_t v) { return Env::read_bit(a, v); }
  /// A[v] ← 1 — 1 step.
  static auto set(Array& a, std::uint32_t v) { return Env::write_bit(a, v, 1); }
  /// A[v] ← 0 — 1 step.
  static auto clear(Array& a, std::uint32_t v) {
    return Env::write_bit(a, v, 0);
  }
  /// Observer-side peek — 0 steps.
  static std::uint8_t peek(const Array& a, std::uint32_t v) {
    return Env::peek_bit(a, v);
  }

  /// First set bin at-or-above `from`, else 0 — 1 step per bin examined,
  /// ascending, stopping at the first 1 (Algorithm 1/3's upward scan).
  static Sub<std::uint32_t> scan_up(Array& a, std::uint32_t from) {
    const std::uint32_t limit = size(a);
    for (std::uint32_t j = from; j <= limit; ++j) {
      const std::uint8_t bit = co_await Env::read_bit(a, j);
      if (bit == 1) co_return j;
    }
    co_return 0;
  }

  /// First set bin at-or-below `from`, else 0 — 1 step per bin examined,
  /// descending, stopping at the first 1. Iterating scan_down until it
  /// returns 0 reads every bin below the start exactly once, descending —
  /// the §4 downward confirmation scan, decomposed.
  static Sub<std::uint32_t> scan_down(Array& a, std::uint32_t from) {
    for (std::uint32_t j = from; j >= 1; --j) {
      const std::uint8_t bit = co_await Env::read_bit(a, j);
      if (bit == 1) co_return j;
    }
    co_return 0;
  }

  /// A[from], A[from-1], …, A[1] ← 0 — one bit write per bin, descending
  /// (Algorithm 1/2 line "for j = v−1 down to 1"). from == 0 is a no-op.
  static Sub<bool> clear_down(Array& a, std::uint32_t from) {
    for (std::uint32_t j = from; j >= 1; --j) {
      co_await Env::write_bit(a, j, 0);
    }
    co_return true;
  }

  /// A[from], A[from+1], …, A[K] ← 0 — one bit write per bin, ascending
  /// (Algorithm 2 line "for j = v+1 to K"). from > K is a no-op.
  static Sub<bool> clear_up(Array& a, std::uint32_t from) {
    const std::uint32_t limit = size(a);
    for (std::uint32_t j = from; j <= limit; ++j) {
      co_await Env::write_bit(a, j, 0);
    }
    co_return true;
  }

  /// Bytes behind the shared representation (observer-side): the actual
  /// padded-cell storage on RtEnv, the modeled snapshot-word footprint on
  /// the scheduler-driven backends.
  static std::size_t footprint_bytes(const Array& a) {
    return Env::bin_storage_bytes(a);
  }
};

/// The packed layout: 64 bins per word, scans via one word load per 64 bins
/// plus TZCNT/LZCNT, clears via one masked fetch_and per word. Requires the
/// environment's PackedBinArray primitives (load_packed_word /
/// or_packed_word / and_packed_word — one step each).
template <typename Env>
struct PackedBins {
  using Array = typename Env::PackedBinArray;
  template <typename T>
  using Sub = typename Env::template Sub<T>;

  static Array make(typename Env::Ctx ctx, const char* prefix,
                    std::uint32_t count, std::uint32_t one_index) {
    return Env::make_packed_bin_array(ctx, prefix, count, one_index);
  }
  /// Multi-word initializer — see the PaddedBins counterpart for the word
  /// geometry contract (util::init_word single-sources the tail masking).
  static Array make_bits(typename Env::Ctx ctx, const char* prefix,
                         std::uint32_t count,
                         std::span<const std::uint64_t> words) {
    return Env::make_packed_bin_array_words(ctx, prefix, count, words);
  }
  /// Single-word convenience overload (≤64-bin call sites; with count > 64
  /// the remaining bins start 0).
  static Array make_bits(typename Env::Ctx ctx, const char* prefix,
                         std::uint32_t count, std::uint64_t bits) {
    return Env::make_packed_bin_array_words(
        ctx, prefix, count, std::span<const std::uint64_t>(&bits, 1));
  }

  static std::uint32_t size(const Array& a) { return Env::packed_bins(a); }

  /// read(A[v]) — 1 step: one word load, bit extracted locally.
  static auto read(Array& a, std::uint32_t v) {
    return detail::MapAwait{
        Env::load_packed_word(a, util::bin_word(v)),
        [v](std::uint64_t word) {
          return static_cast<std::uint8_t>((word >> util::bin_bit(v)) & 1u);
        }};
  }
  /// A[v] ← 1 — 1 step: one fetch_or on the containing word.
  static auto set(Array& a, std::uint32_t v) {
    return Env::or_packed_word(a, util::bin_word(v), util::bin_mask(v));
  }
  /// A[v] ← 0 — 1 step: one fetch_and on the containing word.
  static auto clear(Array& a, std::uint32_t v) {
    return Env::and_packed_word(a, util::bin_word(v), ~util::bin_mask(v));
  }
  /// Observer-side peek — 0 steps.
  static std::uint8_t peek(const Array& a, std::uint32_t v) {
    return static_cast<std::uint8_t>(
        (Env::peek_packed_word(a, util::bin_word(v)) >> util::bin_bit(v)) &
        1u);
  }

  /// First set bin at-or-above `from`, else 0 — one word load per 64 bins,
  /// ascending; TZCNT picks the lowest hit inside the first nonzero word.
  /// Bins beyond size(a) are never set (factory + set() maintain this), so
  /// the tail word needs no trimming.
  static Sub<std::uint32_t> scan_up(Array& a, std::uint32_t from) {
    const std::uint32_t nwords = Env::packed_words(a);
    std::uint64_t mask = util::mask_from(util::bin_bit(from));
    for (std::uint32_t w = util::bin_word(from); w < nwords; ++w) {
      const std::uint64_t word = co_await Env::load_packed_word(a, w);
      const std::uint64_t hits = word & mask;
      if (hits != 0) co_return w * 64 + util::lowest_set(hits) + 1;
      mask = ~std::uint64_t{0};
    }
    co_return 0;
  }

  /// First set bin at-or-below `from`, else 0 — one word load per 64 bins,
  /// descending; LZCNT picks the highest hit inside the first nonzero word.
  static Sub<std::uint32_t> scan_down(Array& a, std::uint32_t from) {
    if (from == 0) co_return 0;
    std::uint64_t mask = util::mask_upto(util::bin_bit(from));
    for (std::uint32_t w = util::bin_word(from) + 1; w-- > 0;) {
      const std::uint64_t word = co_await Env::load_packed_word(a, w);
      const std::uint64_t hits = word & mask;
      if (hits != 0) co_return w * 64 + util::highest_set(hits) + 1;
      mask = ~std::uint64_t{0};
    }
    co_return 0;
  }

  /// A[from..1] ← 0 — ONE masked fetch_and per word, descending: the word
  /// holding `from` keeps its bins above `from`; lower words clear fully.
  /// from == 0 is a no-op.
  static Sub<bool> clear_down(Array& a, std::uint32_t from) {
    if (from == 0) co_return true;
    std::uint64_t keep = ~util::mask_upto(util::bin_bit(from));
    for (std::uint32_t w = util::bin_word(from) + 1; w-- > 0;) {
      co_await Env::and_packed_word(a, w, keep);
      keep = 0;
    }
    co_return true;
  }

  /// A[from..K] ← 0 — ONE masked fetch_and per word, ascending: the word
  /// holding `from` keeps its bins below `from`; higher words clear fully
  /// (tail bits beyond K are already 0). from > K is a no-op.
  static Sub<bool> clear_up(Array& a, std::uint32_t from) {
    if (from > size(a)) co_return true;
    const std::uint32_t nwords = Env::packed_words(a);
    std::uint64_t keep = ~util::mask_from(util::bin_bit(from));
    for (std::uint32_t w = util::bin_word(from); w < nwords; ++w) {
      co_await Env::and_packed_word(a, w, keep);
      keep = 0;
    }
    co_return true;
  }

  /// Bytes behind the shared representation (see PaddedBins counterpart).
  static std::size_t footprint_bytes(const Array& a) {
    return Env::packed_storage_bytes(a);
  }
};

/// The §4/§5.1 downward confirmation pass, shared by every reader
/// (Algorithm 1's Read, Algorithm 3's TryRead, the max register's
/// ReadMax): having found a 1 at `from_hit`, read every bin below it
/// descending and return the smallest 1 seen (or `from_hit` if none).
/// Decomposed as iterated Bins::scan_down — each call stops at its first
/// 1, so the union of the calls reads each bin exactly once, descending:
/// bit-for-bit the paper's loop under PaddedBins, one word load per 64
/// bins (plus one reload per additional hit sharing a word) under
/// PackedBins.
template <typename Bins>
typename Bins::template Sub<std::uint32_t> confirm_down(
    typename Bins::Array& a, std::uint32_t from_hit) {
  std::uint32_t val = from_hit;
  std::uint32_t cur = from_hit - 1;
  while (cur >= 1) {
    const std::uint32_t hit = co_await Bins::scan_down(a, cur);
    if (hit == 0) break;
    val = hit;
    cur = hit - 1;
  }
  co_return val;
}

/// Bounded exponential backoff for CAS retry loops, configured at the Env
/// boundary like YieldPolicy (env/fuzz_env.h). Retry loops call
/// `Env::backoff(attempt)` after each failed CAS: attempt a waits
/// base_spins << min(attempt, max_exponent) local spins. Purely local
/// computation — zero shared-memory steps, zero allocations — so the sim
/// and replay backends define it as a no-op and step-exact tests are
/// unaffected; only RtEnv/FuzzEnv actually wait. base_spins == 0 (the
/// default) disables it everywhere: one predictable branch on the retry
/// path, preserving existing rt behavior unless a harness or bench opts in
/// via RtEnv::set_backoff (process-wide; set before worker threads start).
struct BackoffPolicy {
  std::uint32_t base_spins = 0;   // 0 = disabled (the default)
  std::uint32_t max_exponent = 8; // spin count caps at base_spins << this
};

/// Structural requirements every execution environment satisfies. Kept
/// intentionally shallow (the awaitable-returning statics cannot be
/// expressed without picking a coroutine context); the real contract is
/// documented above and enforced by the algo-layer instantiations.
template <typename E>
concept ExecutionEnv = requires {
  typename E::Ctx;
  typename E::BinArray;
  typename E::PackedBinArray;
  typename E::Value;
  typename E::CasCell;
  typename E::WordArray;
  typename E::template Op<int>;
  typename E::template Sub<int>;
  E::relax();
  E::backoff(0u);
};

}  // namespace hi::env
