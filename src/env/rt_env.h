// RtEnv: the real-hardware backend of the Env abstraction (see env.h).
//
// Primitives map onto std::atomic operations with the same memory orders the
// hand-written src/rt implementations used (seq_cst after construction —
// the §4/§6 proofs assume atomic base objects with a total order on
// operations), binary cells keep their per-cache-line padding, and the CAS
// base object is the 16-byte Atomic128 word (CMPXCHG16B via -mcx16).
//
// Every primitive executes its atomic access inside the primitive call
// itself and returns a detail::Done awaiter that carries only the already-
// computed result (never suspends), so an algorithm coroutine instantiated
// with RtEnv runs to completion synchronously inside the call — EagerTask
// is just the vehicle that lets the same coroutine body serve both
// environments. Execute-at-call is deliberate, not a convenience: see the
// detail::Done comment in env.h for the GCC miscompile that deferred
// execution via argument-capturing Ready lambdas ran into. GCC rarely elides the coroutine frame, so without help every
// operation/helper call would pay one heap allocation; instead EagerTask's
// promise allocates its frame from a per-thread FrameArena (below), making
// the steady-state hot path allocation-free. The arena lifecycle rules are
// documented in docs/ENV.md; tests/test_rt_alloc.cpp and the allocs_per_op
// field of every BENCH_*.json (docs/PERF.md) enforce the zero.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <new>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algo/values.h"
#include "env/env.h"
#include "rt/atomic128.h"
#include "rt/cells.h"
#include "util/bits.h"
#include "util/padded.h"

namespace hi::env {

/// Per-thread recycling allocator for EagerTask coroutine frames.
///
/// Frames are size-bucketed at kGranule resolution; deallocating a frame
/// parks its slab on the owning thread's free list (linked through the
/// slab's first word) and the next same-bucket allocation pops it back, so
/// after a handful of warmup operations the RtEnv fast path touches the
/// global heap zero times per operation. Sizes above kMaxCachedBytes fall
/// through to ::operator new (no EagerTask frame in this codebase comes
/// close; tests cover the path directly).
///
/// Lifecycle rules (docs/ENV.md "RtEnv: frame arena"):
///   * allocate and deallocate MUST happen on the same thread — an
///     EagerTask has run to completion by the time the caller holds it and
///     is consumed synchronously by the rt wrappers, so frames never
///     migrate; handing a live EagerTask to another thread would break
///     this contract (and TSan flags it — see
///     RtAllocChurn.MultiThreadArenaBalance in tests/test_rt_alloc.cpp);
///   * cached slabs are released by drain(), which the thread-exit
///     destructor runs — a detached frame outliving its thread would
///     dangle, which is why EagerTask frames may never outlive the owning
///     thread;
///   * stats() is observer-side bookkeeping for tests/benches, never part
///     of an algorithm's step count.
class FrameArena {
 public:
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kBuckets = 64;
  static constexpr std::size_t kMaxCachedBytes = kGranule * kBuckets;  // 4 KiB
  // Buckets 0..kPrewarmBuckets-1 (frame sizes up to 1 KiB) start with
  // kPrewarmDepth slabs parked at construction — i.e. at each thread's
  // FIRST EagerTask, inside any workload's warmup. Every algo coroutine in
  // this codebase frames at 80–560 bytes with nesting depth ≤ 4, so after
  // prewarm the steady state is DETERMINISTICALLY allocation-free: even a
  // contention path first reached mid-measurement (a helping chain's
  // deepest frame combination) pops a reserved slab instead of minting.
  static constexpr std::size_t kPrewarmBuckets = 16;
  static constexpr std::size_t kPrewarmDepth = 8;

  struct Stats {
    std::uint64_t fresh_slabs = 0;  // bucket misses: slabs minted from the heap
    std::uint64_t reuse_hits = 0;   // bucket hits: slabs popped off a free list
    std::uint64_t oversize = 0;     // > kMaxCachedBytes pass-through allocations
    std::uint64_t outstanding = 0;  // live frames: allocate() minus deallocate()
    std::uint64_t cached = 0;       // slabs currently parked on free lists
  };

  /// The calling thread's arena (constructed on first use, drained at
  /// thread exit).
  static FrameArena& local() noexcept {
    static thread_local FrameArena arena;
    return arena;
  }

  void* allocate(std::size_t bytes) {
    ++stats_.outstanding;
    const std::size_t bucket = bucket_of(bytes);
    if (bucket >= kBuckets) {
      ++stats_.oversize;
      return ::operator new(bytes);
    }
    if (void* slab = free_[bucket]) {
      free_[bucket] = *static_cast<void**>(slab);
      ++stats_.reuse_hits;
      --stats_.cached;
      return slab;
    }
    ++stats_.fresh_slabs;
    return ::operator new((bucket + 1) * kGranule);
  }

  void deallocate(void* ptr, std::size_t bytes) noexcept {
    --stats_.outstanding;
    const std::size_t bucket = bucket_of(bytes);
    if (bucket >= kBuckets) {
      ::operator delete(ptr);
      return;
    }
    *static_cast<void**>(ptr) = free_[bucket];
    free_[bucket] = ptr;
    ++stats_.cached;
  }

  /// Releases every cached slab back to the heap. Runs at thread exit;
  /// callable any time there are no live frames on this thread.
  void drain() noexcept {
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
      void* slab = free_[bucket];
      free_[bucket] = nullptr;
      while (slab != nullptr) {
        void* next = *static_cast<void**>(slab);
        ::operator delete(slab);
        --stats_.cached;
        slab = next;
      }
    }
  }

  Stats stats() const noexcept { return stats_; }

  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena() { drain(); }

 private:
  FrameArena() {
    for (std::size_t bucket = 0; bucket < kPrewarmBuckets; ++bucket) {
      for (std::size_t i = 0; i < kPrewarmDepth; ++i) {
        void* slab = ::operator new((bucket + 1) * kGranule);
        *static_cast<void**>(slab) = free_[bucket];
        free_[bucket] = slab;
        ++stats_.fresh_slabs;  // prewarm mints count as fresh, so
        ++stats_.cached;       // cached == fresh_slabs holds at rest
      }
    }
  }

  static std::size_t bucket_of(std::size_t bytes) noexcept {
    return bytes == 0 ? 0 : (bytes - 1) / kGranule;
  }

  std::array<void*, kBuckets> free_{};
  Stats stats_{};
};

/// Coroutine type for RtEnv operations and helpers. Eagerly started; since
/// no RtEnv awaitable ever suspends, the body has run to completion by the
/// time the caller holds the task. `get()` extracts the result
/// synchronously; the awaiter interface lets EagerTasks nest inside other
/// EagerTasks exactly where sim::SubTasks nest inside sim::OpTasks.
///
/// Frames come from the per-thread FrameArena via the class-level
/// operator new/delete on the promise: nested helper frames (an Op awaiting
/// a Sub awaiting another Sub) draw from the same arena, so a steady-state
/// operation performs ZERO heap allocations regardless of helper depth.
/// Only the sized operator delete is declared — the coroutine frame size is
/// the bucket key, and an unsized call would be a (loud, compile-time)
/// contract violation rather than silent corruption.
template <typename T>
class [[nodiscard]] EagerTask {
 public:
  struct promise_type {
    std::optional<T> result;
    std::exception_ptr error;

    static void* operator new(std::size_t bytes) {
      return FrameArena::local().allocate(bytes);
    }
    static void operator delete(void* ptr, std::size_t bytes) noexcept {
      FrameArena::local().deallocate(ptr, bytes);
    }

    EagerTask get_return_object() {
      return EagerTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_value(T value) { result = std::move(value); }
    void unhandled_exception() { error = std::current_exception(); }
  };

  explicit EagerTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  EagerTask(EagerTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  EagerTask& operator=(EagerTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  EagerTask(const EagerTask&) = delete;
  EagerTask& operator=(const EagerTask&) = delete;
  ~EagerTask() { destroy(); }

  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  T await_resume() { return take(); }

  /// Synchronous extraction for the thin rt wrappers.
  T get() { return take(); }

 private:
  T take() {
    assert(handle_ && handle_.done() && "RtEnv coroutines complete eagerly");
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
    assert(handle_.promise().result.has_value());
    return std::move(*handle_.promise().result);
  }

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

struct RtEnv {
  struct Ctx {};  // hardware objects own their storage; nothing to register

  template <typename T>
  using Op = EagerTask<T>;
  template <typename T>
  using Sub = EagerTask<T>;

  // ---- binary registers (the §4/§5.1 base objects) ----
  //
  // Cell types and primitive bodies are shared with the ReplayEnv backend
  // (rt/cells.h): one memory layout, one set of atomic operations — only
  // the execution discipline (eager here, scheduler-driven there) differs.

  using BinArray = std::vector<rt::BinCell>;

  /// Allocates `count` cache-line-padded atomic bytes; slot `one_index`
  /// (1-based; 0 = none) starts at 1. Construction only — no shared-memory
  /// step, and the pre-publication stores are unordered (relaxed).
  static BinArray make_bin_array(Ctx, const char* /*prefix*/,
                                 std::uint32_t count, std::uint32_t one_index) {
    BinArray array(count);
    for (auto& cell : array) cell->store(0, std::memory_order_relaxed);
    if (one_index != 0) {
      array[one_index - 1]->store(1, std::memory_order_seq_cst);
    }
    return array;
  }

  /// As make_bin_array, but slot v starts at bit (v-1) of the flat
  /// multi-word bitmap `words` (util::bin_test; missing trailing words read
  /// as 0 — the §5.1 HI set's bitmap initialization). Construction only.
  static BinArray make_bin_array_words(Ctx, const char* /*prefix*/,
                                       std::uint32_t count,
                                       std::span<const std::uint64_t> words) {
    BinArray array(count);
    for (std::uint32_t v = 1; v <= count; ++v) {
      array[v - 1]->store(util::bin_test(words, v) ? 1 : 0,
                          std::memory_order_seq_cst);
    }
    return array;
  }

  /// Single-word convenience form (bins 1..64 from `bits`).
  static BinArray make_bin_array_bits(Ctx ctx, const char* prefix,
                                      std::uint32_t count, std::uint64_t bits) {
    return make_bin_array_words(ctx, prefix, count,
                                std::span<const std::uint64_t>(&bits, 1));
  }

  /// read(A[index]) — one seq_cst atomic load; models 1 binary-register-read
  /// step of the paper's model. `index` is 1-based (the paper's A[v]).
  static auto read_bit(BinArray& array, std::uint32_t index) {
    return detail::ready(rt::bin_read(*array[index - 1]));
  }
  /// write(A[index], value) — one seq_cst atomic store; 1 step.
  static auto write_bit(BinArray& array, std::uint32_t index,
                        std::uint8_t value) {
    rt::bin_write(*array[index - 1], value);
    return detail::ready(true);
  }
  /// Observer-side peek — not an algorithm step; only meaningful at
  /// quiescence unless the caller tolerates racing reads.
  static std::uint8_t peek_bit(const BinArray& array, std::uint32_t index) {
    return array[index - 1]->load(std::memory_order_seq_cst);
  }
  /// Actual bytes of shared storage: one padded cache line per bin.
  static std::size_t bin_storage_bytes(const BinArray& array) {
    return array.size() * sizeof(rt::BinCell);
  }

  // ---- packed bin arrays: 64 bins per UNPADDED atomic word ----
  //
  // Storage and primitive bodies shared with ReplayEnv (rt/cells.h). The
  // density is the point: K=1024 bins occupy 2 cache lines instead of the
  // padded layout's 64 KiB, so scans are O(K/64) loads; the tradeoff is
  // word contention between bins sharing a word (docs/PERF.md).

  using PackedBinArray = rt::PackedBits;

  /// Allocates ceil(count/64) contiguous atomic words; slot `one_index`
  /// (1-based; 0 = none) starts at 1. Construction only.
  static PackedBinArray make_packed_bin_array(Ctx, const char* /*prefix*/,
                                              std::uint32_t count,
                                              std::uint32_t one_index) {
    PackedBinArray array;
    array.bins = count;
    array.words = std::vector<std::atomic<std::uint64_t>>(
        util::bin_words(count));
    for (auto& word : array.words) {
      word.store(0, std::memory_order_relaxed);
    }
    if (one_index != 0) {
      array.words[util::bin_word(one_index)].store(util::bin_mask(one_index),
                                                   std::memory_order_seq_cst);
    }
    return array;
  }

  /// As make_packed_bin_array, but word w starts from `words[w]` (bit v-1
  /// of the flat bitmap = bin v); missing trailing words read as 0 and bits
  /// beyond `count` are dropped (util::init_word). Construction only.
  static PackedBinArray make_packed_bin_array_words(
      Ctx, const char* /*prefix*/, std::uint32_t count,
      std::span<const std::uint64_t> words) {
    PackedBinArray array;
    array.bins = count;
    array.words = std::vector<std::atomic<std::uint64_t>>(
        util::bin_words(count));
    for (std::size_t w = 0; w < array.words.size(); ++w) {
      array.words[w].store(
          util::init_word(words, count, static_cast<std::uint32_t>(w)),
          std::memory_order_seq_cst);
    }
    return array;
  }

  /// Single-word convenience form (bins 1..64 from `bits`).
  static PackedBinArray make_packed_bin_array_bits(Ctx ctx, const char* prefix,
                                                   std::uint32_t count,
                                                   std::uint64_t bits) {
    return make_packed_bin_array_words(
        ctx, prefix, count, std::span<const std::uint64_t>(&bits, 1));
  }

  static std::uint32_t packed_bins(const PackedBinArray& array) {
    return array.bins;
  }
  static std::uint32_t packed_words(const PackedBinArray& array) {
    return static_cast<std::uint32_t>(array.words.size());
  }

  /// Word load — one seq_cst atomic load; 1 step, 64 bins atomically.
  static auto load_packed_word(PackedBinArray& array, std::uint32_t w) {
    return detail::ready(rt::packed_load(array.words[w]));
  }
  /// One LOCK OR; 1 step — sets every bin in `mask`.
  static auto or_packed_word(PackedBinArray& array, std::uint32_t w,
                             std::uint64_t mask) {
    rt::packed_or(array.words[w], mask);
    return detail::ready(true);
  }
  /// One LOCK AND; 1 step — keeps only the bins in `mask`.
  static auto and_packed_word(PackedBinArray& array, std::uint32_t w,
                              std::uint64_t mask) {
    rt::packed_and(array.words[w], mask);
    return detail::ready(true);
  }
  /// Observer-side peek — not an algorithm step.
  static std::uint64_t peek_packed_word(const PackedBinArray& array,
                                        std::uint32_t w) {
    return array.words[w].load(std::memory_order_seq_cst);
  }
  /// Actual bytes of shared storage (the bench's bytes_per_object input).
  static std::size_t packed_storage_bytes(const PackedBinArray& array) {
    return array.words.size() * sizeof(std::atomic<std::uint64_t>);
  }

  // ---- one CAS base object: 16-byte atomic word, cache-line padded ----

  using Value = std::uint64_t;
  using Word = algo::CtxWord<Value>;
  using CasCell = rt::CasCell128;

  /// Construction only — no shared-memory step.
  static CasCell make_cas(Ctx, const std::string& /*name*/, Value initial) {
    return CasCell{rt::Word128{initial, 0}};
  }

  /// Read(X) — one seq_cst 16-byte atomic load; 1 step of the model.
  static auto cas_read(CasCell& cell) {
    return detail::ready(rt::cas128_read(cell));
  }
  /// CAS(X, expected, desired) — one CMPXCHG16B; 1 step. Failure-word
  /// semantics come for free: compare_exchange writes the current word back
  /// into `expected` on failure, and that word is returned as `observed`.
  static auto cas(CasCell& cell, const Word& expected, const Word& desired) {
    return detail::ready(rt::cas128_cas(cell, expected, desired));
  }
  /// Write(X, desired) — one seq_cst 16-byte atomic store; 1 step.
  static auto cas_write(CasCell& cell, const Word& desired) {
    rt::cas128_write(cell, desired);
    return detail::ready(true);
  }
  /// Observer-side peek — not an algorithm step.
  static Word peek_cas(const CasCell& cell) { return rt::cas128_read(cell); }
  /// False iff libatomic fell back to a lock table (no CMPXCHG16B).
  static bool cas_is_lock_free(const CasCell& cell) {
    return cell.word.is_lock_free();
  }
  /// Local scheduling hint for spin retries — never a step, never touches
  /// shared memory. On real threads, hand the core back so a preempted peer
  /// (e.g. a flat-combining winner mid-phase) can finish.
  static void relax() noexcept { std::this_thread::yield(); }

  /// Process-wide CAS-retry backoff knob (env.h BackoffPolicy). Plain
  /// (non-atomic) state: set it before worker threads start and leave it
  /// for the run — benches flip it between rows, harnesses mostly leave the
  /// disabled default.
  static void set_backoff(BackoffPolicy policy) noexcept {
    backoff_policy() = policy;
  }
  static BackoffPolicy get_backoff() noexcept { return backoff_policy(); }

  /// Bounded exponential backoff after the `attempt`-th failed CAS of one
  /// retry loop: base_spins << min(attempt, max_exponent) local pause
  /// iterations. Purely local — no step, no shared memory, no allocation —
  /// so the allocs_per_op == 0 steady-state contract is untouched. Disabled
  /// (base_spins == 0) this is one predictable branch.
  static void backoff(std::uint32_t attempt) noexcept {
    const BackoffPolicy& policy = backoff_policy();
    if (policy.base_spins == 0) return;
    const std::uint32_t shift =
        attempt < policy.max_exponent ? attempt : policy.max_exponent;
    const std::uint64_t spins = std::uint64_t{policy.base_spins} << shift;
    for (std::uint64_t i = 0; i < spins; ++i) {
      // Empty asm keeps the pause loop from being optimized away (same
      // idiom as YieldInjector's spin arm).
      asm volatile("");
    }
  }

 private:
  static BackoffPolicy& backoff_policy() noexcept {
    static BackoffPolicy policy;
    return policy;
  }

 public:

  // ---- arrays of 64-bit CAS words (per-process announce/result tables) ----

  using WordArray = std::vector<rt::WordCell>;

  /// Allocates `count` cache-line-padded atomic words, all starting at
  /// `initial`. 0-based indices (per-process cells keyed by pid).
  /// Construction only.
  static WordArray make_word_array(Ctx, const char* /*prefix*/,
                                   std::uint32_t count, std::uint64_t initial) {
    WordArray array(count);
    for (auto& cell : array) cell->store(initial, std::memory_order_seq_cst);
    return array;
  }

  /// read(W[index]) — one seq_cst atomic load; 1 step.
  static auto read_word(WordArray& array, std::uint32_t index) {
    return detail::ready(rt::word_read(*array[index]));
  }
  /// write(W[index], value) — one seq_cst atomic store; 1 step.
  static auto write_word(WordArray& array, std::uint32_t index,
                         std::uint64_t value) {
    rt::word_write(*array[index], value);
    return detail::ready(true);
  }
  /// CAS(W[index], expected, desired) — one LOCK CMPXCHG; 1 step,
  /// failure-word semantics as for cas().
  static auto cas_word(WordArray& array, std::uint32_t index,
                       std::uint64_t expected, std::uint64_t desired) {
    return detail::ready(rt::word_cas(*array[index], expected, desired));
  }
  /// Observer-side peek — not an algorithm step.
  static std::uint64_t peek_word(const WordArray& array, std::uint32_t index) {
    return array[index]->load(std::memory_order_seq_cst);
  }
};

static_assert(ExecutionEnv<RtEnv>);

}  // namespace hi::env
