// RtEnv: the real-hardware backend of the Env abstraction (see env.h).
//
// Primitives map onto std::atomic operations with the same memory orders the
// hand-written src/rt implementations used (seq_cst after construction —
// the §4/§6 proofs assume atomic base objects with a total order on
// operations), binary cells keep their per-cache-line padding, and the CAS
// base object is the 16-byte Atomic128 word (CMPXCHG16B via -mcx16).
//
// Every awaitable is Ready (never suspends), so an algorithm coroutine
// instantiated with RtEnv runs to completion synchronously inside the call —
// EagerTask is just the vehicle that lets the same coroutine body serve both
// environments. The cost on hardware is one coroutine-frame allocation per
// operation/helper call (GCC rarely elides frames); the benchmarks absorb
// this and it is documented in README.md.
#pragma once

#include <atomic>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algo/values.h"
#include "env/env.h"
#include "rt/atomic128.h"
#include "util/padded.h"

namespace hi::env {

/// Coroutine type for RtEnv operations and helpers. Eagerly started; since
/// no RtEnv awaitable ever suspends, the body has run to completion by the
/// time the caller holds the task. `get()` extracts the result
/// synchronously; the awaiter interface lets EagerTasks nest inside other
/// EagerTasks exactly where sim::SubTasks nest inside sim::OpTasks.
template <typename T>
class [[nodiscard]] EagerTask {
 public:
  struct promise_type {
    std::optional<T> result;
    std::exception_ptr error;

    EagerTask get_return_object() {
      return EagerTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_value(T value) { result = std::move(value); }
    void unhandled_exception() { error = std::current_exception(); }
  };

  explicit EagerTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  EagerTask(EagerTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  EagerTask& operator=(EagerTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  EagerTask(const EagerTask&) = delete;
  EagerTask& operator=(const EagerTask&) = delete;
  ~EagerTask() { destroy(); }

  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  T await_resume() { return take(); }

  /// Synchronous extraction for the thin rt wrappers.
  T get() { return take(); }

 private:
  T take() {
    assert(handle_ && handle_.done() && "RtEnv coroutines complete eagerly");
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
    assert(handle_.promise().result.has_value());
    return std::move(*handle_.promise().result);
  }

  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

struct RtEnv {
  struct Ctx {};  // hardware objects own their storage; nothing to register

  template <typename T>
  using Op = EagerTask<T>;
  template <typename T>
  using Sub = EagerTask<T>;

  // ---- binary registers ----

  using BinArray = std::vector<util::Padded<std::atomic<std::uint8_t>>>;

  static BinArray make_bin_array(Ctx, const char* /*prefix*/,
                                 std::uint32_t count, std::uint32_t one_index) {
    BinArray array(count);
    for (auto& cell : array) cell->store(0, std::memory_order_relaxed);
    if (one_index != 0) {
      array[one_index - 1]->store(1, std::memory_order_seq_cst);
    }
    return array;
  }

  static auto read_bit(BinArray& array, std::uint32_t index) {
    return detail::Ready{[cell = &*array[index - 1]] {
      return cell->load(std::memory_order_seq_cst);
    }};
  }
  static auto write_bit(BinArray& array, std::uint32_t index,
                        std::uint8_t value) {
    return detail::Ready{[cell = &*array[index - 1], value] {
      cell->store(value, std::memory_order_seq_cst);
      return true;
    }};
  }
  static std::uint8_t peek_bit(const BinArray& array, std::uint32_t index) {
    return array[index - 1]->load(std::memory_order_seq_cst);
  }

  // ---- one CAS base object: 16-byte atomic word, cache-line padded ----

  using Value = std::uint64_t;
  using Word = algo::CtxWord<Value>;

  struct alignas(util::kCacheLine) CasCell {
    rt::Atomic128 word;

    CasCell() = default;
    explicit CasCell(rt::Word128 initial) : word(initial) {}
  };

  static CasCell make_cas(Ctx, const std::string& /*name*/, Value initial) {
    return CasCell{rt::Word128{initial, 0}};
  }

  static auto cas_read(CasCell& cell) {
    return detail::Ready{[&cell] {
      const rt::Word128 w = cell.word.load();
      return Word{w.value, w.ctx};
    }};
  }
  static auto cas(CasCell& cell, const Word& expected, const Word& desired) {
    return detail::Ready{[&cell, expected, desired] {
      rt::Word128 want{expected.value, expected.ctx};
      return cell.word.compare_exchange(want,
                                        rt::Word128{desired.value, desired.ctx});
    }};
  }
  static auto cas_write(CasCell& cell, const Word& desired) {
    return detail::Ready{[&cell, desired] {
      cell.word.store(rt::Word128{desired.value, desired.ctx});
      return true;
    }};
  }
  static Word peek_cas(const CasCell& cell) {
    const rt::Word128 w = cell.word.load();
    return Word{w.value, w.ctx};
  }
  static bool cas_is_lock_free(const CasCell& cell) {
    return cell.word.is_lock_free();
  }
};

static_assert(ExecutionEnv<RtEnv>);

}  // namespace hi::env
