// FuzzEnv: RtEnv with seeded schedule perturbation at every Env primitive
// boundary — the real-thread forced-yield fuzzing backend.
//
// ReplayEnv re-executes recorded sim interleavings over hardware atomics,
// but it is single-threaded by construction: cross-thread timing effects
// the step model cannot express (store buffering visible through the
// compiled code, preemption inside an algorithm's read-compute-write
// window, cache-line ping-pong reordering) are never exercised. FuzzEnv
// closes that gap from the other side: real threads run the SAME
// single-source algorithm bodies, and a per-thread seeded injector forces a
// scheduling perturbation — std::this_thread::yield() bursts or spin
// backoff — around each shared-memory primitive. On the small core counts
// CI offers, a yield at a primitive boundary is precisely what hands the
// OS-level scheduler a chance to interleave another thread into the window
// the simulator would explore as a step boundary, so seed sweeps reach
// interleavings plain stress loops rarely hit (tests/test_fuzz_rt.cpp
// demonstrates this with a positive-control broken object).
//
// Design: every FuzzEnv primitive delegates to the corresponding RtEnv
// primitive — same cell types, same atomic bodies, same eager frame-arena
// Op/Sub tasks, same execute-at-call discipline (detail::Done in env.h) —
// with YieldInjector::point() running immediately before and after the
// atomic access, all inside the primitive call itself. Algorithms instantiate unchanged; the injector is thread_local
// and costs one predictable branch when disarmed, so a disarmed FuzzEnv
// behaves exactly like RtEnv (modulo that branch).
//
// The injector is DETERMINISTIC per (seed, thread): the decision stream
// comes from util::Xoshiro256, so a failing (seed, workload) pair is
// re-runnable — though on real threads a replay is best-effort, which is
// why harnesses reproduce failures in the step model and persist them as
// ScheduleTrace literals instead (docs/TESTING.md).
#pragma once

#include <cstdint>
#include <thread>
#include <utility>

#include "env/rt_env.h"
#include "util/rng.h"

namespace hi::env {

/// How aggressively the injector perturbs each primitive boundary.
struct YieldPolicy {
  std::uint32_t permille = 300;   // perturbation probability per point, ‰
  std::uint32_t max_yields = 3;   // yield() burst length, 1..max
  std::uint32_t max_spins = 48;   // spin backoff length, 1..max
};

/// Shared release gate for stalled threads. A stalled thread is the
/// real-thread approximation of a crashed process: it parks at a primitive
/// boundary for the remainder of the measured run — but a pthread cannot
/// literally die mid-operation and still be joined, so it parks on this
/// gate and the harness releases it after the survivors finish (or after a
/// watchdog fires), letting every thread drain and join. Progress and HI
/// assertions run BEFORE release_all(), while the stalled threads are
/// indistinguishable from crashed ones.
struct StallGate {
  std::atomic<bool> release{false};
  std::atomic<int> stalled{0};  // threads currently parked at the gate

  void release_all() { release.store(true, std::memory_order_release); }
};

/// Per-thread seeded perturbation source. Harness threads arm() it with a
/// per-(iteration, thread) seed before driving operations and disarm() it
/// after; FuzzEnv primitives call point() unconditionally.
///
/// Stall injection (arm_stall): in addition to the yield/spin perturbation,
/// a thread may be armed to park on a StallGate at its `stall_after`-th
/// primitive boundary of the run — the seeded stalled-process adversary.
/// Which boundary that ordinal lands on follows the thread's own execution
/// path (retry loops included), so a seed sweep stalls threads at CAS
/// retries, between announce and install, mid-combining-scan, ...
class YieldInjector {
 public:
  static void arm(std::uint64_t seed, YieldPolicy policy = {}) {
    State& s = state();
    s.rng = util::Xoshiro256(seed);
    s.policy = policy;
    s.armed = true;
    s.points = 0;
    s.injected = 0;
    s.gate = nullptr;
    s.stall_after = 0;
    s.stall_done = false;
  }

  /// Park this thread on `gate` once it has passed `stall_after` further
  /// primitive boundaries (0 = park at the very next one). Call after
  /// arm(); cleared by arm()/disarm(). The park happens once per arm.
  static void arm_stall(StallGate* gate, std::uint64_t stall_after) {
    State& s = state();
    s.gate = gate;
    s.stall_after = s.points + stall_after;
    s.stall_done = false;
  }

  static void disarm() {
    State& s = state();
    s.armed = false;
    s.gate = nullptr;
  }

  /// Primitive boundaries seen since arm() on this thread.
  static std::uint64_t points() { return state().points; }
  /// Perturbations (yield bursts + spin backoffs) actually injected.
  static std::uint64_t injected() { return state().injected; }

  /// One perturbation point. Called by every FuzzEnv primitive immediately
  /// before and after its atomic access.
  static void point() {
    State& s = state();
    if (!s.armed) return;
    ++s.points;
    if (s.gate != nullptr && !s.stall_done && s.points > s.stall_after) {
      // Stall: park here until the harness opens the gate. From every other
      // thread's perspective this thread has crash-failed at this primitive
      // boundary; after release it resumes normally (drain-and-join phase,
      // excluded from assertions).
      s.stall_done = true;
      s.gate->stalled.fetch_add(1, std::memory_order_acq_rel);
      while (!s.gate->release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      return;
    }
    if (s.rng.next_below(1000) >= s.policy.permille) return;
    ++s.injected;
    if (s.rng.chance(1, 2)) {
      const std::uint64_t bursts = 1 + s.rng.next_below(s.policy.max_yields);
      for (std::uint64_t i = 0; i < bursts; ++i) std::this_thread::yield();
    } else {
      const std::uint64_t spins = 1 + s.rng.next_below(s.policy.max_spins);
      for (std::uint64_t i = 0; i < spins; ++i) {
        // Empty asm keeps the busy-wait from being optimized away without
        // the deprecated `volatile` induction variable.
        asm volatile("");
      }
    }
  }

 private:
  struct State {
    util::Xoshiro256 rng{1};
    YieldPolicy policy;
    bool armed = false;
    std::uint64_t points = 0;
    std::uint64_t injected = 0;
    StallGate* gate = nullptr;       // non-null: stall armed for this run
    std::uint64_t stall_after = 0;   // park once points exceeds this
    bool stall_done = false;         // the one-shot park already happened
  };

  static State& state() {
    static thread_local State s;
    return s;
  }
};

/// RtEnv with YieldInjector::point() fencing every primitive. Same Ctx,
/// cell types, and task types as RtEnv, so any algo-layer body instantiates
/// over FuzzEnv unchanged and interoperates with RtEnv storage helpers.
struct FuzzEnv {
 private:
  /// Runs `make` — a thunk invoking one RtEnv primitive, which executes its
  /// atomic access eagerly and returns a Done awaiter — with the injector
  /// immediately before and after the access (delay the access / delay the
  /// next local step — together they cover both sides of every
  /// inter-primitive window, including the invoke and response edges).
  /// Everything executes synchronously inside the FuzzEnv primitive call
  /// while every argument reference is alive; only the result-carrying Done
  /// awaiter flows back through co_await (see detail::Done in env.h for why
  /// no argument capture may outlive the primitive call). Defined before
  /// the primitives: the auto return type must be deduced at their point of
  /// use.
  template <typename MakeFn>
  static auto fenced(MakeFn&& make) {
    YieldInjector::point();
    auto done = make();
    YieldInjector::point();
    return done;
  }

 public:
  using Ctx = RtEnv::Ctx;

  template <typename T>
  using Op = RtEnv::Op<T>;
  template <typename T>
  using Sub = RtEnv::Sub<T>;

  using BinArray = RtEnv::BinArray;
  using PackedBinArray = RtEnv::PackedBinArray;
  using Value = RtEnv::Value;
  using Word = RtEnv::Word;
  using CasCell = RtEnv::CasCell;
  using WordArray = RtEnv::WordArray;

  // ---- factories and observer-side peeks: no shared-memory step, no
  // perturbation — delegate verbatim ----

  static BinArray make_bin_array(Ctx ctx, const char* prefix,
                                 std::uint32_t count, std::uint32_t one_index) {
    return RtEnv::make_bin_array(ctx, prefix, count, one_index);
  }
  static BinArray make_bin_array_words(Ctx ctx, const char* prefix,
                                       std::uint32_t count,
                                       std::span<const std::uint64_t> words) {
    return RtEnv::make_bin_array_words(ctx, prefix, count, words);
  }
  static BinArray make_bin_array_bits(Ctx ctx, const char* prefix,
                                      std::uint32_t count, std::uint64_t bits) {
    return RtEnv::make_bin_array_bits(ctx, prefix, count, bits);
  }
  static std::uint8_t peek_bit(const BinArray& array, std::uint32_t index) {
    return RtEnv::peek_bit(array, index);
  }
  static std::size_t bin_storage_bytes(const BinArray& array) {
    return RtEnv::bin_storage_bytes(array);
  }

  static PackedBinArray make_packed_bin_array(Ctx ctx, const char* prefix,
                                              std::uint32_t count,
                                              std::uint32_t one_index) {
    return RtEnv::make_packed_bin_array(ctx, prefix, count, one_index);
  }
  static PackedBinArray make_packed_bin_array_words(
      Ctx ctx, const char* prefix, std::uint32_t count,
      std::span<const std::uint64_t> words) {
    return RtEnv::make_packed_bin_array_words(ctx, prefix, count, words);
  }
  static PackedBinArray make_packed_bin_array_bits(Ctx ctx, const char* prefix,
                                                   std::uint32_t count,
                                                   std::uint64_t bits) {
    return RtEnv::make_packed_bin_array_bits(ctx, prefix, count, bits);
  }
  static std::uint32_t packed_bins(const PackedBinArray& array) {
    return RtEnv::packed_bins(array);
  }
  static std::uint32_t packed_words(const PackedBinArray& array) {
    return RtEnv::packed_words(array);
  }
  static std::uint64_t peek_packed_word(const PackedBinArray& array,
                                        std::uint32_t w) {
    return RtEnv::peek_packed_word(array, w);
  }
  static std::size_t packed_storage_bytes(const PackedBinArray& array) {
    return RtEnv::packed_storage_bytes(array);
  }

  static CasCell make_cas(Ctx ctx, const std::string& name, Value initial) {
    return RtEnv::make_cas(ctx, name, initial);
  }
  static Word peek_cas(const CasCell& cell) { return RtEnv::peek_cas(cell); }
  static bool cas_is_lock_free(const CasCell& cell) {
    return RtEnv::cas_is_lock_free(cell);
  }
  static void relax() noexcept { RtEnv::relax(); }
  /// Backoff shares RtEnv's process-wide policy (local computation only; no
  /// perturbation point — the injector fences shared-memory accesses, and
  /// backoff makes none).
  static void backoff(std::uint32_t attempt) noexcept {
    RtEnv::backoff(attempt);
  }

  static WordArray make_word_array(Ctx ctx, const char* prefix,
                                   std::uint32_t count, std::uint64_t initial) {
    return RtEnv::make_word_array(ctx, prefix, count, initial);
  }
  static std::uint64_t peek_word(const WordArray& array, std::uint32_t index) {
    return RtEnv::peek_word(array, index);
  }

  // ---- primitives: RtEnv's atomic bodies fenced by perturbation points ----

  static auto read_bit(BinArray& array, std::uint32_t index) {
    return fenced([&] { return RtEnv::read_bit(array, index); });
  }
  static auto write_bit(BinArray& array, std::uint32_t index,
                        std::uint8_t value) {
    return fenced([&] { return RtEnv::write_bit(array, index, value); });
  }

  static auto load_packed_word(PackedBinArray& array, std::uint32_t w) {
    return fenced([&] { return RtEnv::load_packed_word(array, w); });
  }
  static auto or_packed_word(PackedBinArray& array, std::uint32_t w,
                             std::uint64_t mask) {
    return fenced([&] { return RtEnv::or_packed_word(array, w, mask); });
  }
  static auto and_packed_word(PackedBinArray& array, std::uint32_t w,
                              std::uint64_t mask) {
    return fenced([&] { return RtEnv::and_packed_word(array, w, mask); });
  }

  static auto cas_read(CasCell& cell) {
    return fenced([&] { return RtEnv::cas_read(cell); });
  }
  static auto cas(CasCell& cell, const Word& expected, const Word& desired) {
    return fenced([&] { return RtEnv::cas(cell, expected, desired); });
  }
  static auto cas_write(CasCell& cell, const Word& desired) {
    return fenced([&] { return RtEnv::cas_write(cell, desired); });
  }

  static auto read_word(WordArray& array, std::uint32_t index) {
    return fenced([&] { return RtEnv::read_word(array, index); });
  }
  static auto write_word(WordArray& array, std::uint32_t index,
                         std::uint64_t value) {
    return fenced([&] { return RtEnv::write_word(array, index, value); });
  }
  static auto cas_word(WordArray& array, std::uint32_t index,
                       std::uint64_t expected, std::uint64_t desired) {
    return fenced(
        [&] { return RtEnv::cas_word(array, index, expected, desired); });
  }
};

static_assert(ExecutionEnv<FuzzEnv>);

}  // namespace hi::env
