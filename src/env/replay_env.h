// ReplayEnv: the schedule-replay backend of the Env abstraction — hardware
// atomics under simulator scheduling.
//
// Each primitive executes the SAME std::atomic operation, on the SAME cell
// types and codecs, as RtEnv (rt/cells.h is the shared factoring), but the
// awaitable is a sim::Primitive: co_await suspends the calling coroutine and
// the atomic operation runs when a sim::Scheduler grants the process its
// step. One scheduler resume == one std::atomic operation == one step of the
// paper's §2 model. This is what makes a recorded simulator schedule
// (sim/trace.h) executable over the hardware code path: the differential
// driver (verify/replay.h) marches a SimEnv instantiation and a ReplayEnv
// instantiation of the same single-source algorithm through the identical
// (pid, primitive, object) sequence and compares responses and memory
// word-for-word after every step — turning every explorer counterexample and
// fuzzer schedule into a reproducible hardware regression.
//
// Cells are registered as sim::BaseObjects in a sim::Memory, in the same
// factory order SimEnv uses, so object ids, pending-primitive introspection
// (the Lemma 16 adversary's observable), mem(C) snapshots, word_range() and
// dump() all work unchanged. Snapshot layout per cell type:
//
//   ReplayBinaryRegister — 1 word (0/1), identical to sim::BinaryRegister;
//   ReplayCasCell        — 3 words (value, 0, ctx), matching
//                          sim::WideCasCell's (lo, hi, ctx) whenever the
//                          simulator's hi word is unused (true for the
//                          standalone R-LLSC embedding — word-for-word
//                          parity; the universal constructions pack heads
//                          differently per backend, so their differential
//                          comparison is semantic, via the codecs);
//   ReplayWordCell       — 1 word, identical to sim::CasCell.
//
// Allocation contract: ReplayEnv coroutines are sim::OpTask/sim::SubTask —
// ordinary heap-allocated frames, NOT FrameArena-backed EagerTasks. A
// suspended frame must outlive arbitrarily many scheduler steps (and the
// scheduler may abandon it mid-operation), so the per-thread recycling arena
// rules do not apply; replay is a verification harness, exempt from the
// steady-state allocs_per_op == 0 gate (docs/ENV.md "ReplayEnv";
// tests/test_rt_alloc.cpp pins the exemption).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "algo/values.h"
#include "env/env.h"
#include "rt/atomic128.h"
#include "rt/cells.h"
#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "util/bits.h"

namespace hi::env {

/// A binary register backed by the rt backend's padded atomic byte. Kind
/// strings ("read"/"write") match sim::BinaryRegister, so trace annotations
/// recorded from a SimEnv run cross-check against a ReplayEnv re-execution.
class ReplayBinaryRegister : public sim::BaseObject {
 public:
  explicit ReplayBinaryRegister(std::string name, bool initial = false)
      : BaseObject(std::move(name)) {
    cell_->store(initial ? 1 : 0, std::memory_order_seq_cst);
  }

  auto read() {
    return sim::Primitive{id(), "read", [this] { return rt::bin_read(*cell_); }};
  }
  auto write(std::uint8_t value) {
    return sim::Primitive{id(), "write", [this, value] {
                            rt::bin_write(*cell_, value);
                            return true;
                          }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(cell_->load(std::memory_order_seq_cst));
  }
  std::string describe() const override {
    return name() + "=" +
           std::to_string(cell_->load(std::memory_order_seq_cst));
  }

  std::uint8_t peek() const {  // observer-side, not a step
    return cell_->load(std::memory_order_seq_cst);
  }

 private:
  rt::BinCell cell_;
};

/// One packed-bin-array word backed by the rt backend's atomic word and the
/// shared rt/cells.h packed primitive bodies. Kind strings ("read",
/// "fetch_or", "fetch_and") match sim::PackedWordCell, so traces recorded
/// from a packed SimEnv run cross-check against a ReplayEnv re-execution;
/// the snapshot layout (one 64-bit word) matches too, so packed objects
/// compare word-for-word in the differential driver.
class ReplayPackedWordCell : public sim::BaseObject {
 public:
  explicit ReplayPackedWordCell(std::string name, std::uint64_t initial)
      : BaseObject(std::move(name)) {
    cell_.store(initial, std::memory_order_seq_cst);
  }

  auto read() {
    return sim::Primitive{id(), "read",
                          [this] { return rt::packed_load(cell_); }};
  }
  auto fetch_or(std::uint64_t mask) {
    return sim::Primitive{id(), "fetch_or", [this, mask] {
                            rt::packed_or(cell_, mask);
                            return true;
                          }};
  }
  auto fetch_and(std::uint64_t mask) {
    return sim::Primitive{id(), "fetch_and", [this, mask] {
                            rt::packed_and(cell_, mask);
                            return true;
                          }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(cell_.load(std::memory_order_seq_cst));
  }
  std::string describe() const override {
    return name() + "=" +
           std::to_string(cell_.load(std::memory_order_seq_cst));
  }

  std::uint64_t peek() const {  // observer-side, not a step
    return cell_.load(std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::uint64_t> cell_;
};

/// The CAS base object backed by the rt backend's 16-byte Atomic128 word.
class ReplayCasCell : public sim::BaseObject {
 public:
  explicit ReplayCasCell(std::string name, rt::Word128 initial)
      : BaseObject(std::move(name)), cell_(initial) {}

  auto read() {
    return sim::Primitive{id(), "read",
                          [this] { return rt::cas128_read(cell_); }};
  }
  auto write(rt::CasWord desired) {
    return sim::Primitive{id(), "write", [this, desired] {
                            rt::cas128_write(cell_, desired);
                            return true;
                          }};
  }
  /// Failure-word CAS: one CMPXCHG16B at the granted step.
  auto cas_observe(rt::CasWord expected, rt::CasWord desired) {
    return sim::Primitive{id(), "cas", [this, expected, desired] {
                            return rt::cas128_cas(cell_, expected, desired);
                          }};
  }

  /// (value, 0, ctx) — sim::WideCasCell's (lo, hi, ctx) with hi unused.
  void encode_state(std::vector<std::uint64_t>& out) const override {
    const rt::CasWord w = rt::cas128_read(cell_);
    out.push_back(w.value);
    out.push_back(0);
    out.push_back(w.ctx);
  }
  std::string describe() const override {
    const rt::CasWord w = rt::cas128_read(cell_);
    return name() + "=(" + std::to_string(w.value) +
           ",ctx=" + std::to_string(w.ctx) + ")";
  }

  rt::CasWord peek() const { return rt::cas128_read(cell_); }
  bool is_lock_free() const { return cell_.word.is_lock_free(); }

 private:
  rt::CasCell128 cell_;
};

/// A 64-bit CAS word backed by the rt backend's padded atomic word.
class ReplayWordCell : public sim::BaseObject {
 public:
  explicit ReplayWordCell(std::string name, std::uint64_t initial)
      : BaseObject(std::move(name)) {
    cell_->store(initial, std::memory_order_seq_cst);
  }

  auto read() {
    return sim::Primitive{id(), "read",
                          [this] { return rt::word_read(*cell_); }};
  }
  auto write(std::uint64_t value) {
    return sim::Primitive{id(), "write", [this, value] {
                            rt::word_write(*cell_, value);
                            return true;
                          }};
  }
  auto cas_observe(std::uint64_t expected, std::uint64_t desired) {
    return sim::Primitive{id(), "cas", [this, expected, desired] {
                            return rt::word_cas(*cell_, expected, desired);
                          }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(cell_->load(std::memory_order_seq_cst));
  }
  std::string describe() const override {
    return name() + "=" +
           std::to_string(cell_->load(std::memory_order_seq_cst));
  }

  std::uint64_t peek() const {
    return cell_->load(std::memory_order_seq_cst);
  }

 private:
  rt::WordCell cell_;
};

/// The replay execution environment: RtEnv's cells and value packing
/// (Value = std::uint64_t — the hardware codecs), SimEnv's coroutine types
/// and scheduling. Factories register objects in the same order and with
/// the same names as SimEnv, so a SimEnv system and a ReplayEnv system
/// built from the same algorithm have corresponding object ids.
struct ReplayEnv {
  using Ctx = sim::Memory&;

  template <typename T>
  using Op = sim::OpTask<T>;
  template <typename T>
  using Sub = sim::SubTask<T>;

  // ---- binary registers (the §4/§5.1 base objects) ----

  using BinArray = std::vector<ReplayBinaryRegister*>;

  /// Construction only — never a step of the model.
  static BinArray make_bin_array(Ctx memory, const char* prefix,
                                 std::uint32_t count, std::uint32_t one_index) {
    BinArray array;
    array.reserve(count);
    for (std::uint32_t v = 1; v <= count; ++v) {
      array.push_back(&memory.make<ReplayBinaryRegister>(
          std::string(prefix) + "[" + std::to_string(v) + "]",
          v == one_index));
    }
    return array;
  }

  /// Multi-word bitmap initialization (util::bin_test; same word geometry
  /// and factory order as SimEnv). Construction only.
  static BinArray make_bin_array_words(Ctx memory, const char* prefix,
                                       std::uint32_t count,
                                       std::span<const std::uint64_t> words) {
    BinArray array;
    array.reserve(count);
    for (std::uint32_t v = 1; v <= count; ++v) {
      array.push_back(&memory.make<ReplayBinaryRegister>(
          std::string(prefix) + "[" + std::to_string(v) + "]",
          util::bin_test(words, v)));
    }
    return array;
  }

  /// Single-word convenience form (bins 1..64 from `bits`).
  static BinArray make_bin_array_bits(Ctx memory, const char* prefix,
                                      std::uint32_t count, std::uint64_t bits) {
    return make_bin_array_words(memory, prefix, count,
                                std::span<const std::uint64_t>(&bits, 1));
  }

  /// read(A[index]) — one seq_cst atomic load, executed at the granted step.
  static auto read_bit(BinArray& array, std::uint32_t index) {
    return array[index - 1]->read();
  }
  /// write(A[index], value) — one seq_cst atomic store; 1 step.
  static auto write_bit(BinArray& array, std::uint32_t index,
                        std::uint8_t value) {
    return array[index - 1]->write(value);
  }
  /// Observer-side peek — 0 steps.
  static std::uint8_t peek_bit(const BinArray& array, std::uint32_t index) {
    return array[index - 1]->peek();
  }
  /// Modeled footprint: one snapshot word per binary register.
  static std::size_t bin_storage_bytes(const BinArray& array) {
    return array.size() * sizeof(std::uint64_t);
  }

  // ---- packed bin arrays: 64 bins per word, hardware atomics under
  // simulator scheduling (same factory order/names as SimEnv) ----

  struct PackedBinArray {
    std::uint32_t bins = 0;
    std::vector<ReplayPackedWordCell*> words;
  };

  /// Construction only — never a step of the model.
  static PackedBinArray make_packed_bin_array(Ctx memory, const char* prefix,
                                              std::uint32_t count,
                                              std::uint32_t one_index) {
    PackedBinArray array;
    array.bins = count;
    const std::uint32_t nwords = util::bin_words(count);
    array.words.reserve(nwords);
    for (std::uint32_t w = 0; w < nwords; ++w) {
      const std::uint64_t initial =
          (one_index != 0 && util::bin_word(one_index) == w)
              ? util::bin_mask(one_index)
              : 0;
      array.words.push_back(&memory.make<ReplayPackedWordCell>(
          std::string(prefix) + ".w[" + std::to_string(w) + "]", initial));
    }
    return array;
  }

  /// Multi-word bitmap initialization: word w starts from `words[w]`, tail
  /// bits beyond `count` dropped (util::init_word; same factory order and
  /// names as SimEnv). Construction only.
  static PackedBinArray make_packed_bin_array_words(
      Ctx memory, const char* prefix, std::uint32_t count,
      std::span<const std::uint64_t> words) {
    PackedBinArray array;
    array.bins = count;
    const std::uint32_t nwords = util::bin_words(count);
    array.words.reserve(nwords);
    for (std::uint32_t w = 0; w < nwords; ++w) {
      array.words.push_back(&memory.make<ReplayPackedWordCell>(
          std::string(prefix) + ".w[" + std::to_string(w) + "]",
          util::init_word(words, count, w)));
    }
    return array;
  }

  /// Single-word convenience form (bins 1..64 from `bits`).
  static PackedBinArray make_packed_bin_array_bits(Ctx memory,
                                                   const char* prefix,
                                                   std::uint32_t count,
                                                   std::uint64_t bits) {
    return make_packed_bin_array_words(
        memory, prefix, count, std::span<const std::uint64_t>(&bits, 1));
  }

  static std::uint32_t packed_bins(const PackedBinArray& array) {
    return array.bins;
  }
  static std::uint32_t packed_words(const PackedBinArray& array) {
    return static_cast<std::uint32_t>(array.words.size());
  }

  /// Word load — one seq_cst atomic load at the granted step; 1 step.
  static auto load_packed_word(PackedBinArray& array, std::uint32_t w) {
    return array.words[w]->read();
  }
  /// One LOCK OR at the granted step; 1 step.
  static auto or_packed_word(PackedBinArray& array, std::uint32_t w,
                             std::uint64_t mask) {
    return array.words[w]->fetch_or(mask);
  }
  /// One LOCK AND at the granted step; 1 step.
  static auto and_packed_word(PackedBinArray& array, std::uint32_t w,
                              std::uint64_t mask) {
    return array.words[w]->fetch_and(mask);
  }
  /// Observer-side peek — 0 steps.
  static std::uint64_t peek_packed_word(const PackedBinArray& array,
                                        std::uint32_t w) {
    return array.words[w]->peek();
  }
  static std::size_t packed_storage_bytes(const PackedBinArray& array) {
    return array.words.size() * sizeof(std::uint64_t);
  }

  // ---- one CAS base object: the 16-byte hardware word ----

  using Value = std::uint64_t;  // the hardware packing (RtEnv's codecs)
  using Word = algo::CtxWord<Value>;
  using CasCell = ReplayCasCell*;

  /// Construction only.
  static CasCell make_cas(Ctx memory, std::string name, Value initial) {
    return &memory.make<ReplayCasCell>(std::move(name),
                                       rt::Word128{initial, 0});
  }

  /// Read(X) — one seq_cst 16-byte atomic load; 1 step.
  static auto cas_read(CasCell& cell) { return cell->read(); }
  /// CAS(X, expected, desired) — one CMPXCHG16B; 1 step, failure-word
  /// semantics (docs/ENV.md).
  static auto cas(CasCell& cell, const Word& expected, const Word& desired) {
    return cell->cas_observe(expected, desired);
  }
  /// Write(X, desired) — one seq_cst 16-byte atomic store; 1 step.
  static auto cas_write(CasCell& cell, const Word& desired) {
    return cell->write(desired);
  }
  /// Observer-side peek — 0 steps.
  static Word peek_cas(const CasCell& cell) { return cell->peek(); }
  /// False iff libatomic fell back to a lock table (no CMPXCHG16B).
  static bool cas_is_lock_free(const CasCell& cell) {
    return cell->is_lock_free();
  }
  /// Local scheduling hint for spin retries — never a step, never touches
  /// shared memory. Replay is single-stepped by the sim scheduler: no-op
  /// (yielding here would perturb nothing but wall time).
  static void relax() noexcept {}
  /// CAS-retry backoff: no-op for the same reason (replay marches the
  /// recorded step sequence; local waiting cannot change it).
  static void backoff(std::uint32_t /*attempt*/) noexcept {}

  // ---- arrays of 64-bit CAS words (per-process announce/result tables) ----

  using WordArray = std::vector<ReplayWordCell*>;

  /// Construction only.
  static WordArray make_word_array(Ctx memory, const char* prefix,
                                   std::uint32_t count, std::uint64_t initial) {
    WordArray array;
    array.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      array.push_back(&memory.make<ReplayWordCell>(
          std::string(prefix) + "[" + std::to_string(i) + "]", initial));
    }
    return array;
  }

  /// read(W[index]) — 1 step.
  static auto read_word(WordArray& array, std::uint32_t index) {
    return array[index]->read();
  }
  /// write(W[index], value) — 1 step.
  static auto write_word(WordArray& array, std::uint32_t index,
                         std::uint64_t value) {
    return array[index]->write(value);
  }
  /// CAS(W[index], expected, desired) — 1 step, failure-word semantics.
  static auto cas_word(WordArray& array, std::uint32_t index,
                       std::uint64_t expected, std::uint64_t desired) {
    return array[index]->cas_observe(expected, desired);
  }
  /// Observer-side peek — 0 steps.
  static std::uint64_t peek_word(const WordArray& array, std::uint32_t index) {
    return array[index]->peek();
  }
};

static_assert(ExecutionEnv<ReplayEnv>);

}  // namespace hi::env
