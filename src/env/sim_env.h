// SimEnv: the simulated asynchronous shared-memory backend of the Env
// abstraction (see env.h).
//
// Wraps the existing sim::Primitive awaiters and BaseObject state encoding:
// every read_bit/write_bit/cas_read/cas/cas_write returns the base object's
// own Primitive awaiter, so one scheduler resume still executes exactly one
// primitive (§2's step granularity) and mem(C) snapshots, object ids and
// primitive kinds are byte-identical to the pre-Env implementations — the
// HI checker, the adversaries and the exhaustive explorer all keep working
// unchanged over the single-source algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/values.h"
#include "env/env.h"
#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"

namespace hi::env {

struct SimEnv {
  using Ctx = sim::Memory&;

  template <typename T>
  using Op = sim::OpTask<T>;
  template <typename T>
  using Sub = sim::SubTask<T>;

  // ---- binary registers (the §4 base objects) ----

  using BinArray = std::vector<sim::BinaryRegister*>;

  /// Registers `count` binary registers named "<prefix>[1..count]" in the
  /// Memory (which owns them); slot `one_index` (1-based; 0 = none) starts
  /// at 1. Registration order == mem(C) layout order, as before.
  static BinArray make_bin_array(Ctx memory, const char* prefix,
                                 std::uint32_t count, std::uint32_t one_index) {
    BinArray array;
    array.reserve(count);
    for (std::uint32_t v = 1; v <= count; ++v) {
      array.push_back(&memory.make<sim::BinaryRegister>(
          std::string(prefix) + "[" + std::to_string(v) + "]",
          v == one_index));
    }
    return array;
  }

  static auto read_bit(BinArray& array, std::uint32_t index) {
    return array[index - 1]->read();
  }
  static auto write_bit(BinArray& array, std::uint32_t index,
                        std::uint8_t value) {
    return array[index - 1]->write(value);
  }
  static std::uint8_t peek_bit(const BinArray& array, std::uint32_t index) {
    return array[index - 1]->peek();
  }

  // ---- one CAS base object over CtxWord<Value> (Algorithm 6's base) ----

  using Value = algo::RllscValue;
  using Word = algo::CtxWord<Value>;
  using CasCell = sim::WideCasCell*;

  static CasCell make_cas(Ctx memory, std::string name, Value initial) {
    return &memory.make<sim::WideCasCell>(
        std::move(name), sim::WideWord{initial.lo, initial.hi, 0});
  }

  static auto cas_read(CasCell& cell) {
    return detail::MapAwait{cell->read(), [](sim::WideWord w) {
                              return Word{{w.lo, w.hi}, w.ctx};
                            }};
  }
  static auto cas(CasCell& cell, const Word& expected, const Word& desired) {
    return cell->cas(to_wide(expected), to_wide(desired));
  }
  static auto cas_write(CasCell& cell, const Word& desired) {
    return cell->write(to_wide(desired));
  }
  static Word peek_cas(const CasCell& cell) {
    const sim::WideWord w = cell->peek();
    return Word{{w.lo, w.hi}, w.ctx};
  }
  /// The simulated CAS object is an atomic primitive by construction.
  static bool cas_is_lock_free(const CasCell&) { return true; }

 private:
  static sim::WideWord to_wide(const Word& word) {
    return sim::WideWord{word.value.lo, word.value.hi, word.ctx};
  }
};

static_assert(ExecutionEnv<SimEnv>);

}  // namespace hi::env
