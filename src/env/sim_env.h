// SimEnv: the simulated asynchronous shared-memory backend of the Env
// abstraction (see env.h and docs/ENV.md).
//
// Wraps the existing sim::Primitive awaiters and BaseObject state encoding:
// every read_bit/write_bit/cas_read/cas/cas_write/read_word/write_word/
// cas_word returns the base object's own Primitive awaiter, so one scheduler
// resume still executes exactly one primitive (§2's step granularity) and
// mem(C) snapshots, object ids and primitive kinds are byte-identical to the
// pre-Env implementations — the HI checker, the adversaries and the
// exhaustive explorer all keep working unchanged over the single-source
// algorithms.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "algo/values.h"
#include "env/env.h"
#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "util/bits.h"

namespace hi::env {

struct SimEnv {
  using Ctx = sim::Memory&;

  template <typename T>
  using Op = sim::OpTask<T>;
  template <typename T>
  using Sub = sim::SubTask<T>;

  // ---- binary registers (the §4/§5.1 base objects) ----

  using BinArray = std::vector<sim::BinaryRegister*>;

  /// Registers `count` binary registers named "<prefix>[1..count]" in the
  /// Memory (which owns them); slot `one_index` (1-based; 0 = none) starts
  /// at 1. Registration order == mem(C) layout order, as before.
  /// Construction only — never a step of the model.
  static BinArray make_bin_array(Ctx memory, const char* prefix,
                                 std::uint32_t count, std::uint32_t one_index) {
    BinArray array;
    array.reserve(count);
    for (std::uint32_t v = 1; v <= count; ++v) {
      array.push_back(&memory.make<sim::BinaryRegister>(
          std::string(prefix) + "[" + std::to_string(v) + "]",
          v == one_index));
    }
    return array;
  }

  /// As make_bin_array, but slot v starts at bit (v-1) of the flat
  /// multi-word bitmap `words` (word v/64, bit v%64 — util::bin_test) — the
  /// bitmap initialization the §5.1 HI set needs (arbitrary initial
  /// membership rather than a single one-hot slot). Missing trailing words
  /// read as 0. Construction only.
  static BinArray make_bin_array_words(Ctx memory, const char* prefix,
                                       std::uint32_t count,
                                       std::span<const std::uint64_t> words) {
    BinArray array;
    array.reserve(count);
    for (std::uint32_t v = 1; v <= count; ++v) {
      array.push_back(&memory.make<sim::BinaryRegister>(
          std::string(prefix) + "[" + std::to_string(v) + "]",
          util::bin_test(words, v)));
    }
    return array;
  }

  /// Single-word convenience form (bins 1..64 from `bits`).
  static BinArray make_bin_array_bits(Ctx memory, const char* prefix,
                                      std::uint32_t count, std::uint64_t bits) {
    return make_bin_array_words(memory, prefix, count,
                                std::span<const std::uint64_t>(&bits, 1));
  }

  /// read(A[index]) — exactly 1 primitive step (the paper's binary-register
  /// read). `index` is 1-based, matching the paper's A[v] notation.
  static auto read_bit(BinArray& array, std::uint32_t index) {
    return array[index - 1]->read();
  }
  /// write(A[index], value) — exactly 1 primitive step (binary-register
  /// write; the only mutation primitive of Algorithms 1–4).
  static auto write_bit(BinArray& array, std::uint32_t index,
                        std::uint8_t value) {
    return array[index - 1]->write(value);
  }
  /// Observer-side peek — 0 steps, never part of an execution; feeds
  /// encode_memory()/parity checks only.
  static std::uint8_t peek_bit(const BinArray& array, std::uint32_t index) {
    return array[index - 1]->peek();
  }
  /// Modeled footprint: one snapshot word per binary register.
  static std::size_t bin_storage_bytes(const BinArray& array) {
    return array.size() * sizeof(std::uint64_t);
  }

  // ---- packed bin arrays: 64 bins per word-sized base object ----
  //
  // Each word is ONE sim::PackedWordCell, so a word load or masked RMW is
  // one primitive step and the explorer interleaves at word granularity.
  // mem(C) encodes one 64-bit word per cell — the packed representation is
  // a pure function of the abstract bins, which is what preserves the HI
  // arguments (env/env.h, docs/ENV.md "Packed bin arrays").

  struct PackedBinArray {
    std::uint32_t bins = 0;
    std::vector<sim::PackedWordCell*> words;
  };

  /// Registers ceil(count/64) packed words named "<prefix>.w[0..]"; slot
  /// `one_index` (1-based; 0 = none) starts at 1. Construction only.
  static PackedBinArray make_packed_bin_array(Ctx memory, const char* prefix,
                                              std::uint32_t count,
                                              std::uint32_t one_index) {
    PackedBinArray array;
    array.bins = count;
    const std::uint32_t nwords = util::bin_words(count);
    array.words.reserve(nwords);
    for (std::uint32_t w = 0; w < nwords; ++w) {
      const std::uint64_t initial =
          (one_index != 0 && util::bin_word(one_index) == w)
              ? util::bin_mask(one_index)
              : 0;
      array.words.push_back(&memory.make<sim::PackedWordCell>(
          std::string(prefix) + ".w[" + std::to_string(w) + "]", initial));
    }
    return array;
  }

  /// As make_packed_bin_array, but word w starts from `words[w]` (bit v-1
  /// of the flat bitmap = bin v — the §5.1 HI set's bitmap initialization).
  /// Missing trailing words read as 0; bits beyond `count` are dropped so
  /// tail bins stay 0 (util::init_word). Construction only.
  static PackedBinArray make_packed_bin_array_words(
      Ctx memory, const char* prefix, std::uint32_t count,
      std::span<const std::uint64_t> words) {
    PackedBinArray array;
    array.bins = count;
    const std::uint32_t nwords = util::bin_words(count);
    array.words.reserve(nwords);
    for (std::uint32_t w = 0; w < nwords; ++w) {
      array.words.push_back(&memory.make<sim::PackedWordCell>(
          std::string(prefix) + ".w[" + std::to_string(w) + "]",
          util::init_word(words, count, w)));
    }
    return array;
  }

  /// Single-word convenience form (bins 1..64 from `bits`).
  static PackedBinArray make_packed_bin_array_bits(Ctx memory,
                                                   const char* prefix,
                                                   std::uint32_t count,
                                                   std::uint64_t bits) {
    return make_packed_bin_array_words(
        memory, prefix, count, std::span<const std::uint64_t>(&bits, 1));
  }

  static std::uint32_t packed_bins(const PackedBinArray& array) {
    return array.bins;
  }
  static std::uint32_t packed_words(const PackedBinArray& array) {
    return static_cast<std::uint32_t>(array.words.size());
  }

  /// Word load — 1 primitive step; returns 64 bins atomically.
  static auto load_packed_word(PackedBinArray& array, std::uint32_t w) {
    return array.words[w]->read();
  }
  /// fetch_or — 1 primitive step; sets every bin in `mask`.
  static auto or_packed_word(PackedBinArray& array, std::uint32_t w,
                             std::uint64_t mask) {
    return array.words[w]->fetch_or(mask);
  }
  /// fetch_and — 1 primitive step; keeps only the bins in `mask`.
  static auto and_packed_word(PackedBinArray& array, std::uint32_t w,
                              std::uint64_t mask) {
    return array.words[w]->fetch_and(mask);
  }
  /// Observer-side peek — 0 steps.
  static std::uint64_t peek_packed_word(const PackedBinArray& array,
                                        std::uint32_t w) {
    return array.words[w]->peek();
  }
  /// Modeled footprint of the shared representation (observer-side).
  static std::size_t packed_storage_bytes(const PackedBinArray& array) {
    return array.words.size() * sizeof(std::uint64_t);
  }

  // ---- one CAS base object over CtxWord<Value> (Algorithm 6's base) ----

  using Value = algo::RllscValue;
  using Word = algo::CtxWord<Value>;
  using CasCell = sim::WideCasCell*;

  /// Registers the (wide) CAS base object in the Memory. Construction only.
  static CasCell make_cas(Ctx memory, std::string name, Value initial) {
    return &memory.make<sim::WideCasCell>(
        std::move(name), sim::WideWord{initial.lo, initial.hi, 0});
  }

  /// Read(X) on the CAS object — 1 primitive step (§2: CAS objects support
  /// standard reads).
  static auto cas_read(CasCell& cell) {
    return detail::MapAwait{cell->read(), [](sim::WideWord w) {
                              return Word{{w.lo, w.hi}, w.ctx};
                            }};
  }
  /// CAS(X, expected, desired) — 1 primitive step. Failure-word semantics:
  /// the result carries the word observed at the step, so a retry loop pays
  /// one primitive per attempt (no separate re-read; see docs/ENV.md).
  static auto cas(CasCell& cell, const Word& expected, const Word& desired) {
    return detail::MapAwait{
        cell->cas_observe(to_wide(expected), to_wide(desired)),
        [](sim::WideCasObserved r) {
          return algo::CasResult<Word>{
              r.installed, Word{{r.observed.lo, r.observed.hi}, r.observed.ctx}};
        }};
  }
  /// Write(X, desired) — 1 primitive step (§2: CAS objects support writes).
  static auto cas_write(CasCell& cell, const Word& desired) {
    return cell->write(to_wide(desired));
  }
  /// Observer-side peek of the full CAS word — 0 steps.
  static Word peek_cas(const CasCell& cell) {
    const sim::WideWord w = cell->peek();
    return Word{{w.lo, w.hi}, w.ctx};
  }
  /// The simulated CAS object is an atomic primitive by construction.
  static bool cas_is_lock_free(const CasCell&) { return true; }
  /// Local scheduling hint for spin retries — never a step, never touches
  /// shared memory. Meaningless under the sim scheduler: no-op.
  static void relax() noexcept {}
  /// CAS-retry backoff (env.h BackoffPolicy) — local wall-clock waiting has
  /// no meaning in the step model: no-op, so step-exact tests see identical
  /// step sequences whatever policy the rt side runs with.
  static void backoff(std::uint32_t /*attempt*/) noexcept {}

  // ---- arrays of 64-bit CAS words (per-process announce/result tables) ----

  using WordArray = std::vector<sim::CasCell*>;

  /// Registers `count` word-sized CAS cells named "<prefix>[0..count-1]"
  /// (0-based: these model per-process cells indexed by pid, not the
  /// paper's 1-based value slots). Construction only.
  static WordArray make_word_array(Ctx memory, const char* prefix,
                                   std::uint32_t count, std::uint64_t initial) {
    WordArray array;
    array.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      array.push_back(&memory.make<sim::CasCell>(
          std::string(prefix) + "[" + std::to_string(i) + "]", initial));
    }
    return array;
  }

  /// read(W[index]) — 1 primitive step.
  static auto read_word(WordArray& array, std::uint32_t index) {
    return array[index]->read();
  }
  /// write(W[index], value) — 1 primitive step.
  static auto write_word(WordArray& array, std::uint32_t index,
                         std::uint64_t value) {
    return array[index]->write(value);
  }
  /// CAS(W[index], expected, desired) — 1 primitive step, failure-word
  /// semantics as for cas().
  static auto cas_word(WordArray& array, std::uint32_t index,
                       std::uint64_t expected, std::uint64_t desired) {
    return detail::MapAwait{array[index]->cas_observe(expected, desired),
                            [](sim::CasObserved r) {
                              return algo::CasResult<std::uint64_t>{
                                  r.installed, r.observed};
                            }};
  }
  /// Observer-side peek — 0 steps.
  static std::uint64_t peek_word(const WordArray& array, std::uint32_t index) {
    return array[index]->peek();
  }

 private:
  static sim::WideWord to_wide(const Word& word) {
    return sim::WideWord{word.value.lo, word.value.hi, word.ctx};
  }
};

static_assert(ExecutionEnv<SimEnv>);

}  // namespace hi::env
