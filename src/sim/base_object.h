// Shared base objects of the simulated asynchronous shared-memory model.
//
// Each primitive (read, write, CAS, LL, SC, VL, RL, Load, Store) returns an
// awaiter; `co_await`-ing it suspends the calling coroutine, and the
// operation is applied atomically when the scheduler next resumes that
// process — so one scheduler resume == one step of §2's model. The state of
// every base object is part of mem(C) (see memory.h); local coroutine frames
// are not, matching the paper's definition of the memory representation.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/task.h"
#include "util/bits.h"

namespace hi::sim {

/// Awaiter for a single shared-memory primitive. The operation `fn` runs in
/// await_resume, i.e. at the moment the scheduler grants the process its
/// step; between suspension and resumption other processes may take
/// arbitrarily many steps.
template <typename Fn>
class [[nodiscard]] Primitive {
 public:
  Primitive(int object_id, const char* kind, Fn fn)
      : object_id_(object_id), kind_(kind), fn_(std::move(fn)) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) noexcept {
    ProcessState* ps = detail::current_process();
    assert(ps != nullptr && "primitive used outside a scheduled process");
    ps->resume_point = handle;
    ps->pending = PendingPrimitive{object_id_, kind_};
  }
  auto await_resume() {
    detail::current_process()->steps += 1;
    return fn_();
  }

 private:
  int object_id_;
  const char* kind_;
  Fn fn_;
};

template <typename Fn>
Primitive(int, const char*, Fn) -> Primitive<Fn>;

/// Base class of every simulated shared object. `encode_state` appends the
/// object's full state to the memory-representation vector; the layout is
/// fixed per object type, so vector equality == configuration memory
/// equality (the relation the HI definitions compare).
class BaseObject {
 public:
  explicit BaseObject(std::string name) : name_(std::move(name)) {}
  virtual ~BaseObject() = default;
  BaseObject(const BaseObject&) = delete;
  BaseObject& operator=(const BaseObject&) = delete;

  virtual void encode_state(std::vector<std::uint64_t>& out) const = 0;
  virtual std::string describe() const = 0;

  int id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  friend class Memory;
  int id_ = -1;
  std::string name_;
};

/// Binary (Boolean) read/write register — the small base object of §4/§5.3.
class BinaryRegister : public BaseObject {
 public:
  explicit BinaryRegister(std::string name, bool initial = false)
      : BaseObject(std::move(name)), value_(initial ? 1 : 0) {}

  auto read() {
    return Primitive{id(), "read", [this] { return value_; }};
  }
  auto write(std::uint8_t value) {
    assert(value <= 1);
    return Primitive{id(), "write", [this, value] {
                       value_ = value;
                       return true;
                     }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(value_);
  }
  std::string describe() const override {
    return name() + "=" + std::to_string(value_);
  }

  std::uint8_t peek() const { return value_; }  // observer-side, not a step

 private:
  std::uint8_t value_;
};

/// One 64-bit word of a packed bin array (env::PackedBins): 64 of the
/// paper's binary registers share a single word-sized base object, and the
/// three primitives — a full-word read (a free 64-bin snapshot: strictly
/// stronger than the paper's single-bit register read) and the set/clear
/// RMWs — each cost exactly ONE step. The packed layout keeps the memory
/// representation a pure function of the abstract bin contents, so the HI
/// arguments carry over; see docs/ENV.md "Packed bin arrays".
class PackedWordCell : public BaseObject {
 public:
  explicit PackedWordCell(std::string name, std::uint64_t initial = 0)
      : BaseObject(std::move(name)), value_(initial) {}

  /// Word load — 1 step; returns all 64 bins of this word atomically.
  auto read() {
    return Primitive{id(), "read", [this] { return value_; }};
  }
  /// Set every bin in `mask` — 1 step (the hardware fetch_or).
  auto fetch_or(std::uint64_t mask) {
    return Primitive{id(), "fetch_or", [this, mask] {
                       value_ |= mask;
                       return true;
                     }};
  }
  /// Keep only the bins in `mask` — 1 step (the hardware fetch_and).
  auto fetch_and(std::uint64_t mask) {
    return Primitive{id(), "fetch_and", [this, mask] {
                       value_ &= mask;
                       return true;
                     }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(value_);
  }
  std::string describe() const override {
    return name() + "=" + std::to_string(value_);
  }

  std::uint64_t peek() const { return value_; }  // observer-side, not a step

 private:
  std::uint64_t value_;
};

/// Word-sized read/write register with at most `num_states` states; used as a
/// "smaller base object" with a tunable state count by the impossibility
/// experiments (base objects with fewer than t states, Theorem 17).
class WordRegister : public BaseObject {
 public:
  WordRegister(std::string name, std::uint64_t num_states,
               std::uint64_t initial = 0)
      : BaseObject(std::move(name)), num_states_(num_states), value_(initial) {
    assert(initial < num_states);
  }

  auto read() {
    return Primitive{id(), "read", [this] { return value_; }};
  }
  auto write(std::uint64_t value) {
    assert(value < num_states_);
    return Primitive{id(), "write", [this, value] {
                       value_ = value;
                       return true;
                     }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(value_);
  }
  std::string describe() const override {
    return name() + "=" + std::to_string(value_);
  }

  std::uint64_t num_states() const { return num_states_; }
  std::uint64_t peek() const { return value_; }

 private:
  std::uint64_t num_states_;
  std::uint64_t value_;
};

/// Outcome of an observing CAS: success flag plus the word the cell held
/// immediately before the primitive executed (== expected iff installed).
struct CasObserved {
  bool installed = false;
  std::uint64_t observed = 0;
};

/// Atomic compare-and-swap cell over 64-bit values, supporting read and write
/// as in §2 ("we assume that the CAS object supports standard read and write
/// operations"). This is the base object of Algorithm 6.
class CasCell : public BaseObject {
 public:
  explicit CasCell(std::string name, std::uint64_t initial = 0)
      : BaseObject(std::move(name)), value_(initial) {}

  auto read() {
    return Primitive{id(), "read", [this] { return value_; }};
  }
  auto write(std::uint64_t value) {
    return Primitive{id(), "write", [this, value] {
                       value_ = value;
                       return true;
                     }};
  }
  /// CAS(X, old, new): returns true iff the swap was applied.
  auto cas(std::uint64_t expected, std::uint64_t desired) {
    return Primitive{id(), "cas", [this, expected, desired] {
                       if (value_ != expected) return false;
                       value_ = desired;
                       return true;
                     }};
  }
  /// Failure-word CAS: the same single "cas" primitive, additionally
  /// reporting the word observed, so retry loops need no separate re-read.
  auto cas_observe(std::uint64_t expected, std::uint64_t desired) {
    return Primitive{id(), "cas", [this, expected, desired] {
                       const CasObserved result{value_ == expected, value_};
                       if (result.installed) value_ = desired;
                       return result;
                     }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(value_);
  }
  std::string describe() const override {
    return name() + "=" + std::to_string(value_);
  }

  std::uint64_t peek() const { return value_; }

 private:
  std::uint64_t value_;
};

/// The value domain of the "large" base objects of §6: big enough to hold a
/// full abstract state plus the auxiliary response/process fields of
/// Algorithm 5's head cell (the paper's O(s + 2^n)-state base objects).
/// `lo`/`hi` carry the algorithm-level value; `ctx` is the R-LLSC context
/// bitmask (bit i set <=> process i in context). For the plain CAS object the
/// context word is simply part of the compared value, exactly as Algorithm 6
/// stores (v, c_1, ..., c_n) in one CAS word.
struct WideWord {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t ctx = 0;

  friend bool operator==(const WideWord&, const WideWord&) = default;
};

/// Outcome of an observing wide CAS (see CasObserved).
struct WideCasObserved {
  bool installed = false;
  WideWord observed{};
};

/// Atomic CAS cell over WideWord — the base object of Algorithm 6 (§6.3).
class WideCasCell : public BaseObject {
 public:
  explicit WideCasCell(std::string name, WideWord initial = {})
      : BaseObject(std::move(name)), word_(initial) {}

  auto read() {
    return Primitive{id(), "read", [this] { return word_; }};
  }
  auto write(WideWord desired) {
    return Primitive{id(), "write", [this, desired] {
                       word_ = desired;
                       return true;
                     }};
  }
  auto cas(WideWord expected, WideWord desired) {
    return Primitive{id(), "cas", [this, expected, desired] {
                       if (!(word_ == expected)) return false;
                       word_ = desired;
                       return true;
                     }};
  }
  /// Failure-word CAS: one "cas" primitive that also reports the word it
  /// observed, so Algorithm 6's retry loops need no separate re-read step.
  auto cas_observe(WideWord expected, WideWord desired) {
    return Primitive{id(), "cas", [this, expected, desired] {
                       const WideCasObserved result{word_ == expected, word_};
                       if (result.installed) word_ = desired;
                       return result;
                     }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(word_.lo);
    out.push_back(word_.hi);
    out.push_back(word_.ctx);
  }
  std::string describe() const override {
    return name() + "=(" + std::to_string(word_.lo) + "," +
           std::to_string(word_.hi) + ",ctx=" + std::to_string(word_.ctx) +
           ")";
  }

  WideWord peek() const { return word_; }

 private:
  WideWord word_;
};

/// Native context-aware releasable LL/SC object over WideWord values: each
/// R-LLSC operation of §6.1 is a single atomic primitive. Used to run
/// Algorithm 5 against *ideal* R-LLSC base objects, in isolation from
/// Algorithm 6's CAS-based implementation of the same object (which is then
/// substituted in for the full Theorem 32 composition).
class WideRllscCell : public BaseObject {
 public:
  explicit WideRllscCell(std::string name, WideWord initial = {})
      : BaseObject(std::move(name)), word_(initial) {
    assert(initial.ctx == 0 && "R-LLSC objects start with an empty context");
  }

  /// LL(O): adds the caller to the context, returns the value.
  auto ll() {
    return Primitive{id(), "LL", [this] {
                       word_.ctx = util::set_bit(
                           word_.ctx, static_cast<unsigned>(
                                          detail::current_process()->pid));
                       return word_;  // .lo/.hi carry the value
                     }};
  }
  /// VL(O): true iff the caller is in the context.
  auto vl() {
    return Primitive{id(), "VL", [this] {
                       return util::test_bit(
                           word_.ctx, static_cast<unsigned>(
                                          detail::current_process()->pid));
                     }};
  }
  /// SC(O, new): installs the value and clears the context iff the caller is
  /// in the context.
  auto sc(std::uint64_t lo, std::uint64_t hi) {
    return Primitive{id(), "SC", [this, lo, hi] {
                       const unsigned pid = static_cast<unsigned>(
                           detail::current_process()->pid);
                       if (!util::test_bit(word_.ctx, pid)) return false;
                       word_ = WideWord{lo, hi, 0};
                       return true;
                     }};
  }
  /// RL(O): removes the caller from the context.
  auto rl() {
    return Primitive{id(), "RL", [this] {
                       word_.ctx = util::clear_bit(
                           word_.ctx, static_cast<unsigned>(
                                          detail::current_process()->pid));
                       return true;
                     }};
  }
  auto load() {
    return Primitive{id(), "Load", [this] { return word_; }};
  }
  auto store(std::uint64_t lo, std::uint64_t hi) {
    return Primitive{id(), "Store", [this, lo, hi] {
                       word_ = WideWord{lo, hi, 0};
                       return true;
                     }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(word_.lo);
    out.push_back(word_.hi);
    out.push_back(word_.ctx);
  }
  std::string describe() const override {
    return name() + "=(" + std::to_string(word_.lo) + "," +
           std::to_string(word_.hi) + ",ctx=" + std::to_string(word_.ctx) +
           ")";
  }

  WideWord peek() const { return word_; }

 private:
  WideWord word_;
};

/// Word-sized context-aware releasable LL/SC object (§6.1): state is the
/// pair (val, context). Smaller sibling of WideRllscCell used by the unit
/// tests and the R-LLSC linearizability experiments.
class RllscCell : public BaseObject {
 public:
  RllscCell(std::string name, std::uint64_t initial = 0)
      : BaseObject(std::move(name)), value_(initial) {}

  /// LL(O): adds the calling process to O.context and returns O.val.
  auto ll() {
    return Primitive{id(), "LL", [this] {
                       context_ = util::set_bit(
                           context_,
                           static_cast<unsigned>(
                               detail::current_process()->pid));
                       return value_;
                     }};
  }
  /// VL(O): true iff the calling process is in O.context.
  auto vl() {
    return Primitive{id(), "VL", [this] {
                       return util::test_bit(
                           context_, static_cast<unsigned>(
                                         detail::current_process()->pid));
                     }};
  }
  /// SC(O, new): if the caller is in the context, installs `new`, clears the
  /// context and returns true; otherwise returns false.
  auto sc(std::uint64_t desired) {
    return Primitive{id(), "SC", [this, desired] {
                       const unsigned pid = static_cast<unsigned>(
                           detail::current_process()->pid);
                       if (!util::test_bit(context_, pid)) return false;
                       value_ = desired;
                       context_ = 0;
                       return true;
                     }};
  }
  /// RL(O): removes the caller from O.context; always returns true.
  auto rl() {
    return Primitive{id(), "RL", [this] {
                       context_ = util::clear_bit(
                           context_,
                           static_cast<unsigned>(
                               detail::current_process()->pid));
                       return true;
                     }};
  }
  /// Load(O): returns O.val without touching the context.
  auto load() {
    return Primitive{id(), "Load", [this] { return value_; }};
  }
  /// Store(O, new): installs `new`, clears the context, returns true.
  auto store(std::uint64_t desired) {
    return Primitive{id(), "Store", [this, desired] {
                       value_ = desired;
                       context_ = 0;
                       return true;
                     }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(value_);
    out.push_back(context_);
  }
  std::string describe() const override {
    return name() + "=(" + std::to_string(value_) + ",ctx=" +
           std::to_string(context_) + ")";
  }

  std::uint64_t peek_value() const { return value_; }
  std::uint64_t peek_context() const { return context_; }

 private:
  std::uint64_t value_;
  std::uint64_t context_ = 0;  // bit i set <=> process i in context
};

}  // namespace hi::sim
