// The step scheduler of the simulated asynchronous system.
//
// The scheduler owns the process table. At most one high-level operation is
// active per process at a time (as in the paper's model, where a process
// invokes operations sequentially). Starting an operation "primes" its
// coroutine — runs the purely-local prefix up to the first shared-memory
// primitive — so the invariant holds that a runnable process always has a
// pending primitive, and step(pid) executes exactly one primitive followed
// by local computation. This also lets adversaries inspect *which base
// object* a process will access next before granting it a step (Lemma 16
// needs exactly this power).
//
// Optional trace recording (record_to): every start()/step() appends one
// TraceStep — (pid, start) for invocations, (pid, object, kind) for
// primitive steps — yielding a ScheduleTrace that re-executes the
// interleaving deterministically, including over the hardware-atomics
// replay backend (env/replay_env.h, verify/replay.h).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/task.h"
#include "sim/trace.h"

namespace hi::sim {

class Scheduler {
 public:
  explicit Scheduler(int num_processes) : processes_(num_processes) {
    for (int pid = 0; pid < num_processes; ++pid) processes_[pid].pid = pid;
  }
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_processes() const { return static_cast<int>(processes_.size()); }

  const ProcessState& process(int pid) const { return processes_.at(pid); }

  /// Begin an operation for process `pid`. The task must outlive the
  /// operation (the harness keeps it). Runs local computation up to the
  /// first primitive; consumes no step.
  template <typename T>
  void start(int pid, OpTask<T>& task) {
    ProcessState& ps = processes_.at(pid);
    assert(!ps.active && "process already has a pending operation");
    assert(!ps.crashed && "start on a crashed process");
    assert(task.valid());
    if (trace_ != nullptr) trace_->steps.push_back({pid, /*start=*/true});
    task.bind(&ps);
    ps.active = true;
    ps.done = false;
    ps.resume_point = task.handle();
    ps.pending = {};
    resume(ps);
  }

  bool runnable(int pid) const { return processes_.at(pid).runnable(); }

  /// True once the active operation's coroutine has run to completion; the
  /// harness then takes the result and calls finish().
  bool op_finished(int pid) const {
    const ProcessState& ps = processes_.at(pid);
    return ps.active && ps.done;
  }

  /// Acknowledge completion (the response event of the high-level operation).
  void finish(int pid) {
    ProcessState& ps = processes_.at(pid);
    assert(ps.active && ps.done);
    ps.active = false;
  }

  /// Abandon a pending operation mid-flight (torn-down executions, e.g. the
  /// adversary constructions end with the reader still pending). The caller
  /// destroys the OpTask, which frees the suspended frames.
  void abandon(int pid) {
    ProcessState& ps = processes_.at(pid);
    ps.active = false;
    ps.done = true;
    ps.resume_point = nullptr;
    ps.pending = {};
  }

  /// Crash-fail process `pid`: it permanently halts at its current primitive
  /// boundary and never takes another step (§2's crash failures — the event
  /// the wait-freedom and state-quiescent-HI claims quantify over). Unlike
  /// abandon(), a crash is a *scheduling decision*: it is recorded in the
  /// trace (kind "crash"), the pending operation stays pending forever (its
  /// invocation remains in the history with no response — the
  /// linearizability checker already treats such ops as may-or-may-not take
  /// effect), and start()/step() on the pid are rejected from here on. The
  /// suspended coroutine frame is freed when the owning OpTask is destroyed.
  /// Crashing an idle process is allowed and only forbids future starts.
  void crash(int pid) {
    ProcessState& ps = processes_.at(pid);
    assert(!ps.crashed && "process already crashed");
    if (trace_ != nullptr) trace_->steps.push_back(TraceStep::crash(pid));
    ps.crashed = true;
    ps.resume_point = nullptr;
    ps.pending = {};
  }

  bool crashed(int pid) const { return processes_.at(pid).crashed; }

  /// Pids that have not crashed — the survivors a crash audit drives to
  /// quiescence.
  std::vector<int> surviving_processes() const {
    std::vector<int> pids;
    for (const ProcessState& ps : processes_) {
      if (!ps.crashed) pids.push_back(ps.pid);
    }
    return pids;
  }

  /// Execute one step of process `pid`: its pending primitive plus the local
  /// computation up to the next primitive or completion.
  void step(int pid) {
    ProcessState& ps = processes_.at(pid);
    assert(ps.runnable() && "step on a non-runnable process");
    if (trace_ != nullptr) {
      // Annotate with the primitive about to execute (pending is set at
      // suspension, consumed by this resume).
      trace_->steps.push_back(
          {pid, /*start=*/false, ps.pending.object_id, ps.pending.kind});
    }
    resume(ps);
    ++total_steps_;
  }

  /// Append every subsequent start()/step() event to `trace` (nullptr stops
  /// recording). Observer-side: recording never alters scheduling.
  void record_to(ScheduleTrace* trace) { trace_ = trace; }

  /// The base object process `pid` will access on its next step (-1 if not
  /// runnable). Observer-side introspection; consumes nothing.
  int pending_object(int pid) const {
    const ProcessState& ps = processes_.at(pid);
    return ps.runnable() ? ps.pending.object_id : -1;
  }
  const char* pending_kind(int pid) const {
    const ProcessState& ps = processes_.at(pid);
    return ps.runnable() ? ps.pending.kind : "";
  }

  std::uint64_t total_steps() const { return total_steps_; }
  std::uint64_t steps_of(int pid) const { return processes_.at(pid).steps; }

  std::vector<int> runnable_processes() const {
    std::vector<int> pids;
    for (const ProcessState& ps : processes_) {
      if (ps.runnable()) pids.push_back(ps.pid);
    }
    return pids;
  }

 private:
  void resume(ProcessState& ps) {
    ProcessState* saved = detail::current_process();
    detail::current_process() = &ps;
    const std::coroutine_handle<> frame = ps.resume_point;
    ps.resume_point = nullptr;
    frame.resume();
    detail::current_process() = saved;
  }

  std::vector<ProcessState> processes_;
  std::uint64_t total_steps_ = 0;
  ScheduleTrace* trace_ = nullptr;
};

}  // namespace hi::sim
