// The shared memory of a simulated system: the ordered collection of base
// objects, and the memory representation mem(C) — "a vector specifying the
// state of each base object" (§2). Snapshots of this vector are what the
// history-independence checker compares across executions.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/base_object.h"
#include "util/rng.h"

namespace hi::sim {

/// A snapshot of mem(C). Fixed layout per system, so operator== is exactly
/// "same memory representation".
struct MemorySnapshot {
  std::vector<std::uint64_t> words;

  friend bool operator==(const MemorySnapshot&,
                         const MemorySnapshot&) = default;

  std::uint64_t hash() const {
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (std::uint64_t w : words) h = util::hash_combine(h, w);
    return h;
  }

  /// Hamming distance in base objects is approximated by word distance; for
  /// one-word objects (registers, CAS cells) they coincide. Used by the
  /// Proposition 6 distance checks.
  std::size_t distance(const MemorySnapshot& other) const {
    assert(words.size() == other.words.size());
    std::size_t d = 0;
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (words[i] != other.words[i]) ++d;
    }
    return d;
  }
};

class Memory {
 public:
  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  /// Construct and register a base object; the Memory owns it. Objects must
  /// all be created before the execution starts (static memory — the paper's
  /// implementations use no dynamic allocation, which is itself relevant to
  /// HI, see §1's discussion of allocators).
  template <typename T, typename... Args>
  T& make(Args&&... args) {
    auto object = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *object;
    object->id_ = static_cast<int>(objects_.size());
    objects_.push_back(std::move(object));
    return ref;
  }

  std::size_t num_objects() const { return objects_.size(); }
  const BaseObject& object(int id) const { return *objects_.at(id); }

  /// mem(C): the state vector of all base objects.
  MemorySnapshot snapshot() const {
    MemorySnapshot snap;
    snap.words.reserve(objects_.size());
    for (const auto& object : objects_) object->encode_state(snap.words);
    return snap;
  }

  /// The half-open range [first, last) of words that object `id` occupies in
  /// a snapshot. The Lemma 16 adversary uses this to compare canonical
  /// representations *restricted to the base object the reader will access
  /// next* — can(q)[ℓ] in the paper's notation.
  std::pair<std::size_t, std::size_t> word_range(int id) const {
    std::size_t offset = 0;
    for (int i = 0; i < id; ++i) {
      std::vector<std::uint64_t> words;
      objects_[i]->encode_state(words);
      offset += words.size();
    }
    std::vector<std::uint64_t> words;
    objects_.at(id)->encode_state(words);
    return {offset, offset + words.size()};
  }

  /// Human-readable dump for counterexample reports and the Figure 1 demo.
  std::string dump() const {
    std::ostringstream out;
    for (std::size_t i = 0; i < objects_.size(); ++i) {
      if (i > 0) out << ' ';
      out << objects_[i]->describe();
    }
    return out.str();
  }

 private:
  std::vector<std::unique_ptr<BaseObject>> objects_;
};

}  // namespace hi::sim
