// Coroutine machinery for the asynchronous shared-memory simulator.
//
// The paper's model (§2): each step of a process is "some local computation
// and a single primitive operation on a base object". We realize a process's
// pending high-level operation as a C++20 coroutine that suspends at every
// shared-memory primitive. The scheduler resumes one process at a time; a
// resume executes exactly one primitive followed by local computation up to
// the next primitive (or completion). Configurations — and in particular the
// memory representation mem(C) — can therefore be observed between any two
// steps, which is exactly the granularity the history-independence
// definitions (Definitions 4–8) quantify over.
//
// Two coroutine types:
//   OpTask<T>  — root coroutine for one high-level operation; produces T.
//   SubTask<T> — internal helper coroutine (e.g. Algorithm 3's TryRead),
//                eagerly started, resumes its caller on completion via
//                symmetric transfer.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <optional>
#include <utility>

namespace hi::sim {

/// What a suspended process is about to do, visible to schedulers and to the
/// impossibility adversary (which must know which base object the reader
/// accesses next — Lemma 16).
struct PendingPrimitive {
  int object_id = -1;
  const char* kind = "";
};

/// Per-process record shared between the scheduler and the awaiters.
struct ProcessState {
  int pid = -1;
  std::coroutine_handle<> resume_point{};  // deepest suspended frame
  PendingPrimitive pending{};
  bool active = false;  // an operation has been started and not yet finished
  bool done = true;     // current operation's coroutine ran to completion
  bool crashed = false;  // crash failure: never takes another step (§2 model)
  std::uint64_t steps = 0;  // primitives executed over the process's lifetime

  bool runnable() const { return active && !done && !crashed && resume_point; }
};

namespace detail {

/// Every promise type derives from this so primitive awaiters can reach the
/// owning process through any coroutine frame.
struct PromiseBase {
  ProcessState* process = nullptr;
};

/// The process currently executing (set by the scheduler around every resume
/// and around priming). Primitive awaiters and eagerly-started SubTasks use
/// it to attribute suspensions and step counts to the right process. The
/// simulator is single-threaded per Scheduler; thread_local keeps independent
/// Schedulers on different threads (parameterized tests) isolated.
inline ProcessState*& current_process() noexcept {
  thread_local ProcessState* current = nullptr;
  return current;
}

}  // namespace detail

/// Root coroutine of one high-level operation. Lazily started; the scheduler
/// "primes" it on start so that a suspended OpTask always has a primitive
/// pending.
template <typename T>
class OpTask {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> result;
    std::exception_ptr error;

    OpTask get_return_object() {
      return OpTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> self) noexcept {
        ProcessState* ps = self.promise().process;
        if (ps != nullptr) {
          ps->done = true;
          ps->resume_point = nullptr;
          ps->pending = {};
        }
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T value) { result = std::move(value); }
    void unhandled_exception() { error = std::current_exception(); }
  };

  OpTask() = default;
  explicit OpTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  OpTask(OpTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  OpTask& operator=(OpTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  OpTask(const OpTask&) = delete;
  OpTask& operator=(const OpTask&) = delete;
  ~OpTask() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  std::coroutine_handle<> handle() const { return handle_; }

  void bind(ProcessState* ps) {
    assert(handle_);
    handle_.promise().process = ps;
  }

  bool finished() const { return handle_ && handle_.done(); }

  /// Result of a completed operation; rethrows if the coroutine threw.
  T take_result() {
    assert(finished());
    if (handle_.promise().error) std::rethrow_exception(handle_.promise().error);
    assert(handle_.promise().result.has_value());
    return std::move(*handle_.promise().result);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

/// Helper coroutine awaited from within an OpTask (or another SubTask).
/// Eagerly started: it runs until its first primitive suspension at the call
/// site, so primitives always charge to the calling process's step count.
template <typename T>
class SubTask {
 public:
  struct promise_type : detail::PromiseBase {
    std::coroutine_handle<> continuation{};
    std::optional<T> result;
    std::exception_ptr error;

    promise_type() { this->process = detail::current_process(); }

    SubTask get_return_object() {
      return SubTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> self) noexcept {
        // Resume whoever awaited us; if nobody has yet (we completed during
        // eager start), just return to the caller.
        if (self.promise().continuation) return self.promise().continuation;
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T value) { result = std::move(value); }
    void unhandled_exception() { error = std::current_exception(); }
  };

  explicit SubTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  SubTask(SubTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask& operator=(SubTask&&) = delete;
  ~SubTask() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return handle_.done(); }
  void await_suspend(std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
  }
  T await_resume() {
    if (handle_.promise().error) std::rethrow_exception(handle_.promise().error);
    assert(handle_.promise().result.has_value());
    return std::move(*handle_.promise().result);
  }

 private:
  std::coroutine_handle<promise_type> handle_{};
};

}  // namespace hi::sim
