// Schedule traces: a recorded sequence of scheduling events, precise enough
// to re-execute an interleaving deterministically on ANY backend that
// exposes the simulator's step granularity.
//
// A trace is the bridge between the model-checked and the executable
// artifact: the simulator (or the exhaustive explorer, or the impossibility
// adversaries) records the exact sequence of (invoke next op of p) /
// (grant one step to p) events it scheduled, annotated with the base object
// and primitive kind each step executed; the replay harness
// (env/replay_env.h + verify/replay.h) then marches a second instantiation
// of the SAME algorithm — over real std::atomic cells — through the
// identical sequence, cross-checking the annotations, the responses and the
// memory representation at every step. A divergence pinpoints the first
// step at which the two backends disagree.
//
// Traces are recorded via Scheduler::record_to (every start()/step() lands
// one TraceStep), from Runner runs (Options.trace), or from explorer
// Decision paths (Explorer::trace_of); pretty() renders a trace as a C++
// initializer list so a failing schedule can be persisted verbatim as a
// regression test.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hi::sim {

/// One scheduling event. `start == true`: the process invokes its next
/// high-level operation (consumes no step; the coroutine is primed up to its
/// first primitive). `start == false`: the process executes exactly one
/// primitive step; `object`/`kind` record WHICH primitive was pending when
/// the step was granted (the Lemma 16 adversary's observable), and the
/// replay harness cross-checks both against the re-executing system.
///
/// A third event kind rides on the step shape: `kind == "crash"` (with
/// `object == -1`) records a crash failure — the adversary permanently
/// halts the process at this point in the schedule; it consumes no step and
/// the process never appears in the trace again. Encoding crashes as an
/// annotated step keeps every persisted trace literal valid and lets
/// crashed schedules record, replay, shrink and pretty-print through the
/// existing machinery unchanged.
struct TraceStep {
  int pid = -1;
  bool start = false;
  int object = -1;        // step events: base-object id (-1 = unannotated)
  const char* kind = "";  // step events: primitive kind ("read", "cas", ...)

  static constexpr const char* kCrashKind = "crash";

  /// Crash event for `pid` (the adversary's halt decision, Scheduler::crash).
  static TraceStep crash(int pid) {
    return {pid, /*start=*/false, /*object=*/-1, kCrashKind};
  }

  bool is_crash() const {
    return !start && std::string_view(kind) == kCrashKind;
  }

  friend bool operator==(const TraceStep& a, const TraceStep& b) {
    return a.pid == b.pid && a.start == b.start && a.object == b.object &&
           std::string_view(a.kind) == std::string_view(b.kind);
  }
};

/// A recorded schedule: the deterministic re-execution recipe for one
/// interleaving. Given the same per-process operation sequences, replaying
/// the steps in order reproduces the execution exactly — on the simulator
/// AND on the hardware-atomics replay backend.
struct ScheduleTrace {
  std::vector<TraceStep> steps;

  std::size_t size() const { return steps.size(); }
  bool empty() const { return steps.empty(); }
  void clear() { steps.clear(); }

  friend bool operator==(const ScheduleTrace&, const ScheduleTrace&) = default;

  /// Renders the trace as a C++ initializer list (valid TraceStep aggregate
  /// syntax), so a failing fuzzer/explorer schedule can be pasted into a
  /// regression test verbatim. Example output:
  ///
  ///   {{
  ///     {0, true}, {0, false, 0, "write"}, {1, true},
  ///     {1, false, 0, "read"},
  ///   }}
  std::string pretty(std::size_t per_line = 4) const {
    if (steps.empty()) return "{{}}";
    std::ostringstream out;
    out << "{{\n  ";
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const TraceStep& s = steps[i];
      if (s.start) {
        out << "{" << s.pid << ", true}";
      } else {
        out << "{" << s.pid << ", false, " << s.object << ", \"" << s.kind
            << "\"}";
      }
      if (i + 1 < steps.size()) {
        out << ",";
        out << ((i + 1) % per_line == 0 ? "\n  " : " ");
      }
    }
    out << ",\n}}";
    return out.str();
  }
};

}  // namespace hi::sim
