// Execution harness: drives workloads over a simulated implementation under
// a scheduling policy, records the induced history H(α), per-operation step
// counts (for the progress checks), and memory observations at the
// observation points of the three HI notions (Definitions 5, 7, 8).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "sim/trace.h"
#include "spec/spec.h"
#include "util/rng.h"
#include "verify/history.h"

namespace hi::sim {

/// One memory observation: the configuration's memory representation plus
/// the abstract state reported by the caller-supplied oracle.
struct Observation {
  std::uint64_t at_step = 0;
  std::uint64_t state = 0;
  MemorySnapshot mem;
};

/// A sim implementation of spec S: spawns the coroutine for one high-level
/// operation executed by process `pid`.
template <typename Impl, typename S>
concept SimImplementation =
    hi::spec::SequentialSpec<S> &&
    requires(Impl impl, int pid, typename S::Op op) {
      { impl.apply(pid, op) } -> std::same_as<OpTask<typename S::Resp>>;
    };

template <hi::spec::SequentialSpec S, typename Impl>
  requires SimImplementation<Impl, S>
class Runner {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;
  using Hist = verify::History<Op, Resp>;

  struct Options {
    std::uint64_t seed = 1;
    bool round_robin = false;
    /// Relative weight of invoking a new operation vs. granting a step, in
    /// the random policy. Lower start weight ⇒ less overlap, more
    /// (state-)quiescent points; higher ⇒ deeper concurrency.
    unsigned start_weight = 1;
    unsigned step_weight = 3;
    /// Abort the run (result.timed_out) if it exceeds this many steps —
    /// guards tests against livelock in lock-free-only algorithms.
    std::uint64_t max_steps = 5'000'000;
    /// When non-null, every scheduling event of the run is appended as a
    /// TraceStep — the deterministic re-execution recipe the replay harness
    /// (verify/replay.h) marches a hardware-atomics instantiation through.
    ScheduleTrace* trace = nullptr;
  };

  struct Result {
    Hist history;
    std::vector<Observation> state_quiescent;
    std::vector<Observation> quiescent;
    std::vector<std::uint64_t> op_steps;  // parallel to history entries
    std::uint64_t total_steps = 0;
    bool timed_out = false;
  };

  /// `state_oracle` reports the abstract state (encoded) of the object at a
  /// (state-)quiescent configuration, given the history recorded so far; see
  /// tests for per-implementation oracles (single-writer replay, head
  /// decoding, ...). It is only invoked at state-quiescent or quiescent
  /// configurations.
  using StateOracle = std::function<std::uint64_t(const Hist&)>;

  Runner(const S& spec, Memory& memory, Scheduler& sched, Impl& impl,
         StateOracle state_oracle)
      : spec_(spec),
        memory_(memory),
        sched_(sched),
        impl_(impl),
        state_oracle_(std::move(state_oracle)) {}

  /// Run the per-process workloads to completion under the policy.
  Result run(const std::vector<std::vector<Op>>& workload, Options opt) {
    const int n = sched_.num_processes();
    assert(static_cast<int>(workload.size()) <= n);

    Result result;
    std::vector<Slot> slots(n);
    for (int pid = 0; pid < static_cast<int>(workload.size()); ++pid) {
      slots[pid].remaining.assign(workload[pid].begin(), workload[pid].end());
    }

    util::Xoshiro256 rng(opt.seed);
    sched_.record_to(opt.trace);
    observe(result, slots);  // the initial configuration is quiescent

    int rr_cursor = 0;
    for (;;) {
      if (sched_.total_steps() > opt.max_steps) {
        result.timed_out = true;
        break;
      }
      // Enumerate enabled events.
      startable_.clear();
      steppable_.clear();
      for (int pid = 0; pid < n; ++pid) {
        if (slots[pid].task.has_value()) {
          if (sched_.runnable(pid)) steppable_.push_back(pid);
        } else if (!slots[pid].remaining.empty()) {
          startable_.push_back(pid);
        }
      }
      if (startable_.empty() && steppable_.empty()) break;  // all done

      int pid;
      bool do_start;
      if (opt.round_robin) {
        pid = -1;
        for (int probe = 0; probe < n; ++probe) {
          const int cand = (rr_cursor + probe) % n;
          if (slots[cand].task.has_value() ? sched_.runnable(cand)
                                           : !slots[cand].remaining.empty()) {
            pid = cand;
            break;
          }
        }
        assert(pid >= 0);
        rr_cursor = (pid + 1) % n;
        do_start = !slots[pid].task.has_value();
      } else {
        const std::uint64_t start_total =
            static_cast<std::uint64_t>(startable_.size()) * opt.start_weight;
        const std::uint64_t step_total =
            static_cast<std::uint64_t>(steppable_.size()) * opt.step_weight;
        const std::uint64_t pick = rng.next_below(start_total + step_total);
        if (pick < start_total) {
          pid = startable_[pick / opt.start_weight];
          do_start = true;
        } else {
          pid = steppable_[(pick - start_total) / opt.step_weight];
          do_start = false;
        }
      }

      if (do_start) {
        invoke_next(slots[pid], pid, result);
      } else {
        const std::uint64_t before = sched_.steps_of(pid);
        sched_.step(pid);
        slots[pid].steps += sched_.steps_of(pid) - before;
      }
      reap(slots[pid], pid, result);
      observe(result, slots);
    }
    sched_.record_to(nullptr);
    result.total_steps = sched_.total_steps();
    return result;
  }

 private:
  struct Slot {
    std::deque<Op> remaining;
    std::optional<OpTask<Resp>> task;
    std::size_t history_index = 0;
    std::uint64_t steps = 0;
    bool state_changing = false;
  };

  void invoke_next(Slot& slot, int pid, Result& result) {
    assert(!slot.task.has_value() && !slot.remaining.empty());
    Op op = slot.remaining.front();
    slot.remaining.pop_front();
    slot.history_index = result.history.invoke(pid, op);
    slot.state_changing = !spec_.is_read_only(op);
    slot.steps = 0;
    slot.task.emplace(impl_.apply(pid, op));
    sched_.start(pid, *slot.task);
  }

  void reap(Slot& slot, int pid, Result& result) {
    if (!slot.task.has_value() || !sched_.op_finished(pid)) return;
    result.history.respond(slot.history_index, slot.task->take_result());
    result.op_steps.resize(result.history.size(), 0);
    result.op_steps[slot.history_index] = slot.steps;
    sched_.finish(pid);
    slot.task.reset();
  }

  void observe(Result& result, const std::vector<Slot>& slots) {
    bool any_pending = false;
    bool state_changing_pending = false;
    for (const Slot& slot : slots) {
      if (slot.task.has_value()) {
        any_pending = true;
        state_changing_pending |= slot.state_changing;
      }
    }
    if (state_changing_pending) return;  // not even state-quiescent
    Observation obs;
    obs.at_step = sched_.total_steps();
    obs.state = state_oracle_(result.history);
    obs.mem = memory_.snapshot();
    if (!any_pending) result.quiescent.push_back(obs);
    result.state_quiescent.push_back(std::move(obs));
  }

  const S& spec_;
  Memory& memory_;
  Scheduler& sched_;
  Impl& impl_;
  StateOracle state_oracle_;
  std::vector<int> startable_;
  std::vector<int> steppable_;
};

/// Run a single operation solo (no other process takes steps) and return its
/// result — used to build canonical maps from sequential executions and for
/// end-of-run probes.
template <typename T>
T run_solo(Scheduler& sched, int pid, OpTask<T> task) {
  sched.start(pid, task);
  while (sched.runnable(pid)) sched.step(pid);
  assert(sched.op_finished(pid));
  sched.finish(pid);
  return task.take_result();
}

}  // namespace hi::sim
