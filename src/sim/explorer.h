// Exhaustive schedule exploration: bounded model checking over ALL
// interleavings of a small workload — naively, or with dynamic
// partial-order reduction (DPOR).
//
// The randomized Runner samples the schedule space; this explorer enumerates
// it. A schedule is the sequence of scheduling decisions (invoke the next
// operation of process p / grant one step to process p). The simulator is
// deterministic given that sequence, so depth-first enumeration with
// re-execution visits every reachable execution of the workload exactly
// once, up to the given depth/width caps. Coroutine frames cannot be forked,
// so branching nodes re-execute their decision prefix — but straight-line
// suffixes (exactly one candidate decision) step the live replay
// incrementally, keeping a non-branching execution O(n) instead of O(n²).
//
// DPOR (ExploreMode::kDpor) prunes provably-equivalent interleavings using
// the per-decision (base object, kind) access annotations the scheduler
// already records into ScheduleTrace. Two executed decisions of different
// processes are DEPENDENT iff
//   * one completed an operation (emitted a response) and the other invoked
//     one — swapping them would flip a real-time precedence edge, which
//     linearizability checking must see both ways; or
//   * they touch the same base object and at least one is not a "read".
// Everything else commutes: swapping an adjacent independent pair yields
// the same memory, the same responses, and the same precedence relation, so
// only one order is explored. Classic backtrack sets (Flanagan–Godefroid
// style, with the conservative "add at every earlier dependent event"
// variant — extra backtrack points cost executions, never soundness) plus
// sleep sets do the pruning; a sleeping process's unexecuted next decision
// has an unknown completion flag, so it is conservatively treated as
// completing (waking it when in doubt is sound, merely less reduction).
// ExploreStats::executions_pruned counts sleep-set-blocked walks; the
// unreduced total for a reduction-ratio assertion is obtained by re-running
// the same workload under ExploreMode::kNaive (tests/test_explorer_dpor.cpp
// asserts both the ratio and history-set equality).
//
// Crash enumeration (ExploreLimits::max_crashes > 0): the adversary may
// also CRASH a mid-operation process instead of granting its step —
// Scheduler::crash permanently halts it, its operation stays pending
// forever, and the walk completes when the survivors drain. This enumerates
// every ≤ k-crash configuration of the workload (crash position × crashed
// pid), which is what the wait-freedom and crash-point-HI audits quantify
// over (verify/crash_audit.h). Crash decisions occupy their own mask slots
// (pid + 32 — so ≤ 32 processes with crashes on) and are conservatively
// dependent on every other event under DPOR.
//
// At every visited configuration the caller's observer runs (memory
// snapshots for the HI checker at the appropriate observation points); every
// *complete* execution's history is handed to the caller for linearizability
// checking. Tests use this to verify Algorithms 2, 4, 6 and the perfect-HI
// set over every interleaving of small op mixes — the strongest evidence
// this repository produces short of the paper's proofs. NOTE: under DPOR
// the observer sees one representative configuration sequence per
// equivalence class, not every configuration of every interleaving — HI
// canonical-map checks that need full coverage should keep kNaive.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "sim/trace.h"
#include "spec/spec.h"
#include "verify/history.h"

namespace hi::sim {

/// One scheduling decision. `crash == true` is the adversary's fault
/// decision: permanently halt `pid` at its current primitive boundary
/// (Scheduler::crash); it consumes no step and the pid is never schedulable
/// again. Existing two-field aggregate literals keep their meaning (crash
/// defaults to false).
struct Decision {
  int pid = -1;
  bool start = false;  // true: invoke next op; false: grant one step
  bool crash = false;  // true: crash-fail the process (start is ignored)

  friend bool operator==(const Decision&, const Decision&) = default;
};

enum class ExploreMode : std::uint8_t {
  kNaive,  // enumerate every interleaving (full configuration coverage)
  kDpor,   // skip interleavings equivalent under the dependence relation
};

struct ExploreStats {
  std::uint64_t executions_complete = 0;
  std::uint64_t executions_truncated = 0;  // hit max_depth
  std::uint64_t executions_pruned = 0;     // DPOR: sleep-set-blocked walks
  std::uint64_t configurations = 0;
  bool exhausted = true;  // false if max_executions cap was hit
};

struct ExploreLimits {
  std::size_t max_depth = 64;
  std::uint64_t max_executions = 2'000'000;
  ExploreMode mode = ExploreMode::kNaive;
  /// Enumerate crash configurations with at most this many crash failures
  /// per execution (0 = crash-free exploration, the default). A crash is
  /// enabled for any mid-operation process; each one multiplies the
  /// branching factor, so keep workloads small when k > 0. Under kDpor a
  /// crash decision is conservatively dependent on every other event (the
  /// issue-level relation "a crash depends on every later step of the
  /// crashed pid" plus the enabledness edges a halt induces) — sound, with
  /// reduction still applied to the crash-free segments.
  std::uint32_t max_crashes = 0;
};

/// A freshly constructed system under test. The factory must produce an
/// identical initial system every time (determinism is what makes
/// re-execution sound).
template <typename S, typename System>
concept ExplorableSystem = spec::SequentialSpec<S> && requires(System sys) {
  { sys.scheduler() } -> std::same_as<Scheduler&>;
  { sys.memory() } -> std::same_as<Memory&>;
  {
    sys.apply(0, std::declval<typename S::Op>())
  } -> std::same_as<OpTask<typename S::Resp>>;
};

template <spec::SequentialSpec S, typename System>
class Explorer {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;
  using Hist = verify::History<Op, Resp>;
  using Factory = std::function<std::unique_ptr<System>()>;
  /// Observer invoked at every configuration of every (re-)execution along
  /// fresh branches: (system, history-so-far, pending op count,
  /// state-changing pending count).
  using Observer = std::function<void(System&, const Hist&, int, int)>;
  /// Invoked once per complete execution with its full history.
  using OnComplete = std::function<void(System&, const Hist&)>;

  Explorer(const S& spec, Factory factory,
           std::vector<std::vector<Op>> workload)
      : spec_(spec), factory_(std::move(factory)), workload_(std::move(workload)) {}

  ExploreStats explore(const ExploreLimits& limits, Observer observer,
                       OnComplete on_complete) {
    stats_ = ExploreStats{};
    limits_ = limits;
    observer_ = std::move(observer);
    on_complete_ = std::move(on_complete);
    prefix_.clear();
    nodes_.clear();
    dfs();
    return stats_;
  }

  /// The decision path of the execution currently being visited — valid
  /// inside observer/on_complete callbacks. Capture a copy there to persist
  /// a counterexample schedule; feed it to trace_of() for replay.
  const std::vector<Decision>& current_prefix() const { return prefix_; }

  /// Re-execute `decisions` on a fresh system with trace recording enabled,
  /// yielding the (pid, kind, object)-annotated ScheduleTrace the replay
  /// harness consumes (verify/replay.h). Decisions must be consistent with
  /// this explorer's workload (e.g. a prefix captured via current_prefix()).
  ScheduleTrace trace_of(const std::vector<Decision>& decisions) {
    ScheduleTrace trace;
    Replay r = fresh_replay();
    r.system->scheduler().record_to(&trace);
    for (const Decision& d : decisions) apply_decision(r, d);
    r.system->scheduler().record_to(nullptr);
    return trace;
  }

  /// Tolerantly execute an arbitrary decision sequence on a fresh system.
  /// Returns the induced history, or nullopt if some decision was not
  /// enabled at its position — shrinkers (verify/shrink.h) probe candidate
  /// subsequences this way, and most candidates are simply invalid. Runs no
  /// observer and does not touch exploration state.
  std::optional<Hist> try_execute(const std::vector<Decision>& decisions) {
    Replay r = fresh_replay();
    const int n = r.system->scheduler().num_processes();
    for (const Decision& d : decisions) {
      if (d.pid < 0 || d.pid >= n) return std::nullopt;
      if (d.crash) {
        // Valid exactly where a step would be: a mid-operation, un-crashed
        // process. (Shrinking does not consult max_crashes — a candidate
        // subsequence of a valid crash schedule never has more crashes.)
        if (!r.tasks[d.pid].has_value() ||
            !r.system->scheduler().runnable(d.pid)) {
          return std::nullopt;
        }
      } else if (d.start) {
        if (r.tasks[d.pid].has_value()) return std::nullopt;
        if (d.pid >= static_cast<int>(workload_.size()) ||
            r.next_op[d.pid] >= workload_[d.pid].size()) {
          return std::nullopt;
        }
      } else {
        if (!r.tasks[d.pid].has_value() ||
            !r.system->scheduler().runnable(d.pid)) {
          return std::nullopt;
        }
      }
      apply_decision(r, d);
    }
    return std::move(r.history);
  }

 private:
  struct Replay {
    std::unique_ptr<System> system;
    std::vector<std::optional<OpTask<Resp>>> tasks;
    std::vector<std::size_t> next_op;
    std::vector<std::size_t> hist_index;
    std::vector<bool> state_changing;
    Hist history;
    int pending = 0;
    int state_changing_pending = 0;
    std::uint32_t crashes_used = 0;
  };

  /// One enabled decision plus the (object, kind) annotation of the
  /// primitive it would execute (steps only; starts run no shared access
  /// while priming, so they carry no annotation).
  struct EnabledEvent {
    Decision d;
    int object = -1;
    const char* kind = "";
  };

  /// Exploration-stack entry: the state BEFORE prefix_[i] plus the executed
  /// decision's annotation. Process sets are pid bitmasks (the scheduler
  /// caps processes at 64; replay() asserts it).
  struct Node {
    std::vector<EnabledEvent> enabled;
    std::uint64_t enabled_mask = 0;
    std::uint64_t backtrack = 0;  // pids still to explore from here (DPOR)
    std::uint64_t done = 0;       // pids already explored from here
    std::uint64_t sleep = 0;      // pids whose exploration here is redundant
    EnabledEvent taken;           // the decision executed from this node
    bool completed = false;       // executing `taken` emitted a response
  };

  static constexpr std::uint64_t bit(int pid) { return std::uint64_t{1} << pid; }

  /// Mask slot of a decision. Start/step decisions of pid p use bit p; the
  /// crash decision of pid p uses bit p + 32, so "step p" and "crash p" are
  /// distinct alternatives in the enabled/backtrack/sleep/done sets (a pid
  /// has at most one non-crash decision enabled at a time, so non-crash
  /// events still share one slot). Caps processes at 32 when crash
  /// enumeration is on (replay() asserts).
  static constexpr int slot(const Decision& d) {
    return d.crash ? d.pid + 32 : d.pid;
  }
  static constexpr std::uint64_t event_bit(const EnabledEvent& e) {
    return bit(slot(e.d));
  }

  static bool read_only_kind(const char* kind) {
    return std::string_view(kind) == "read";
  }

  /// The DPOR dependence relation over executed decisions (see header
  /// comment). `a_resp` / `b_resp`: the decision completed an operation.
  /// Crash decisions are conservatively dependent on everything: a crash
  /// disables every later event of its pid (the issue-level dependence) and
  /// changes which helping paths other processes take, so no commutation is
  /// assumed — extra interleavings cost executions, never soundness.
  static bool dependent(const EnabledEvent& a, bool a_resp,
                        const EnabledEvent& b, bool b_resp) {
    if (a.d.crash || b.d.crash) return true;
    if (a.d.pid == b.d.pid) return true;  // program order
    if ((a_resp && b.d.start) || (b_resp && a.d.start)) return true;
    return a.object >= 0 && a.object == b.object &&
           !(read_only_kind(a.kind) && read_only_kind(b.kind));
  }

  /// A freshly constructed system with empty per-process bookkeeping — the
  /// starting state of every (re-)execution.
  Replay fresh_replay() {
    Replay r;
    r.system = factory_();
    const int n = r.system->scheduler().num_processes();
    r.tasks.resize(n);
    r.next_op.assign(n, 0);
    r.hist_index.assign(n, 0);
    r.state_changing.assign(n, false);
    return r;
  }

  /// Re-execute the current prefix; returns the replayed state.
  /// `observe_from` marks how many trailing decisions are new (never
  /// observed before), so observations are not double-counted across
  /// re-executions. `last_completed` (optional) receives whether the final
  /// decision completed an operation.
  Replay replay(std::size_t observe_from, bool* last_completed = nullptr) {
    Replay r = fresh_replay();
    assert(r.system->scheduler().num_processes() <=
               (limits_.max_crashes > 0 ? 32 : 64) &&
           "exploration event sets are 64-bit masks (crash decisions use "
           "the upper 32 slots)");
    for (std::size_t i = 0; i < prefix_.size(); ++i) {
      const bool completed = apply_decision(r, prefix_[i]);
      if (last_completed != nullptr && i + 1 == prefix_.size()) {
        *last_completed = completed;
      }
      if (i >= observe_from && observer_) {
        ++stats_.configurations;
        observer_(*r.system, r.history, r.pending, r.state_changing_pending);
      }
    }
    return r;
  }

  /// Returns true iff the decision completed an operation (start decisions
  /// can too: a zero-primitive op such as an absorbed WriteMax responds at
  /// its invoking event).
  bool apply_decision(Replay& r, const Decision& d) {
    Scheduler& sched = r.system->scheduler();
    if (d.crash) {
      // Fault decision: the pid halts forever. Its pending operation stays
      // invoked-without-response in the history (the linearizability
      // checker already lets such ops take effect or not); the suspended
      // frame is freed when r.tasks[d.pid] is destroyed with the Replay.
      sched.crash(d.pid);
      ++r.crashes_used;
      return false;
    }
    if (d.start) {
      assert(!r.tasks[d.pid].has_value());
      const Op op = workload_[d.pid][r.next_op[d.pid]++];
      r.hist_index[d.pid] = r.history.invoke(d.pid, op);
      r.state_changing[d.pid] = !spec_.is_read_only(op);
      r.tasks[d.pid].emplace(r.system->apply(d.pid, op));
      sched.start(d.pid, *r.tasks[d.pid]);
      ++r.pending;
      if (r.state_changing[d.pid]) ++r.state_changing_pending;
    } else {
      sched.step(d.pid);
    }
    if (r.tasks[d.pid].has_value() && sched.op_finished(d.pid)) {
      r.history.respond(r.hist_index[d.pid], r.tasks[d.pid]->take_result());
      sched.finish(d.pid);
      r.tasks[d.pid].reset();
      --r.pending;
      if (r.state_changing[d.pid]) {
        --r.state_changing_pending;
        r.state_changing[d.pid] = false;
      }
      return true;
    }
    return false;
  }

  std::vector<EnabledEvent> enabled_events(const Replay& r) const {
    std::vector<EnabledEvent> events;
    const Scheduler& sched = r.system->scheduler();
    const int n = sched.num_processes();
    const bool crash_budget = r.crashes_used < limits_.max_crashes;
    for (int pid = 0; pid < n; ++pid) {
      if (r.tasks[pid].has_value()) {
        if (sched.runnable(pid)) {
          events.push_back({{pid, false}, sched.pending_object(pid),
                            sched.pending_kind(pid)});
          // The adversary may crash any mid-operation process at its
          // current primitive boundary instead of granting the step.
          // (Crashing an idle process only deletes the tail of its
          // workload — a strictly smaller crash-free workload, so it is
          // not enumerated separately.)
          if (crash_budget) {
            events.push_back(
                {{pid, false, /*crash=*/true}, -1, TraceStep::kCrashKind});
          }
        }
      } else if (pid < static_cast<int>(workload_.size()) &&
                 r.next_op[pid] < workload_[pid].size()) {
        events.push_back({{pid, true}, -1, ""});
      }
    }
    return events;
  }

  void add_backtrack(Node& node, int event_slot) {
    if (node.enabled_mask & bit(event_slot)) {
      node.backtrack |= bit(event_slot);
    } else {
      node.backtrack |= node.enabled_mask;
    }
  }

  /// Race detection for the executed event at depth k: every earlier
  /// dependent event of another process marks a backtrack point (the
  /// conservative no-happens-before-filter variant; see header comment).
  /// Same-pid pairs are skipped as program-ordered (never co-enabled) —
  /// EXCEPT when the later event is a crash: "crash p" is co-enabled with
  /// every step of p it follows, and crashing p earlier is a genuinely
  /// different configuration that must get its own branch.
  void race_detect(std::size_t k) {
    const EnabledEvent taken = nodes_[k].taken;
    const bool completed = nodes_[k].completed;
    for (std::size_t j = 0; j < k; ++j) {
      Node& nj = nodes_[j];
      if (nj.taken.d.pid == taken.d.pid && !taken.d.crash) continue;
      if (!dependent(nj.taken, nj.completed, taken, completed)) continue;
      add_backtrack(nj, slot(taken.d));
    }
  }

  /// Race detection for a leaf's UNEXECUTED pending decisions (truncated or
  /// sleep-blocked walks end with work outstanding): their completion flag
  /// is unknown, so assume they would complete.
  void race_detect_pending(const Node& leaf, std::size_t depth) {
    for (const EnabledEvent& e : leaf.enabled) {
      for (std::size_t j = 0; j < depth; ++j) {
        Node& nj = nodes_[j];
        if (nj.taken.d.pid == e.d.pid && !e.d.crash) continue;
        if (!dependent(e, /*a_resp=*/true, nj.taken, nj.completed)) continue;
        add_backtrack(nj, slot(e.d));
      }
    }
  }

  /// Sleep set for the node at `depth`: parent sleepers whose (unexecuted,
  /// hence conservatively completing) next decision is independent of the
  /// decision the parent executed stay asleep.
  std::uint64_t child_sleep(std::size_t depth) const {
    if (depth == 0) return 0;
    const Node& parent = nodes_[depth - 1];
    std::uint64_t sleep = 0;
    std::uint64_t candidates = parent.sleep & ~event_bit(parent.taken);
    for (const EnabledEvent& q : parent.enabled) {
      if (!(candidates & event_bit(q))) continue;
      if (!dependent(q, /*a_resp=*/true, parent.taken, parent.completed)) {
        sleep |= event_bit(q);
      }
    }
    return sleep;
  }

  void observe(const Replay& r) {
    ++stats_.configurations;
    if (observer_) {
      observer_(*r.system, r.history, r.pending, r.state_changing_pending);
    }
  }

  void dfs() {
    if (!stats_.exhausted) return;
    if (stats_.executions_complete + stats_.executions_truncated +
            stats_.executions_pruned >=
        limits_.max_executions) {
      stats_.exhausted = false;
      return;
    }
    const bool dpor = limits_.mode == ExploreMode::kDpor;
    const std::size_t base = prefix_.size();
    bool last_completed = false;
    Replay r = replay(base == 0 ? 0 : base - 1, &last_completed);
    if (dpor && base > 0) {
      nodes_[base - 1].completed = last_completed;
      race_detect(base - 1);
    }

    // Straight-line tail: while exactly one candidate decision exists, step
    // the live replay instead of recursing (each recursion re-executes the
    // whole prefix; a chain of forced moves must not).
    for (;;) {
      Node node;
      node.enabled = enabled_events(r);
      for (const EnabledEvent& e : node.enabled) {
        node.enabled_mask |= event_bit(e);
      }
      if (node.enabled.empty()) {
        ++stats_.executions_complete;
        if (on_complete_) on_complete_(*r.system, r.history);
        unwind_to(base);
        return;
      }
      if (prefix_.size() >= limits_.max_depth) {
        ++stats_.executions_truncated;
        if (dpor) race_detect_pending(node, prefix_.size());
        unwind_to(base);
        return;
      }
      node.sleep = dpor ? child_sleep(prefix_.size()) : 0;
      const std::uint64_t candidates = node.enabled_mask & ~node.sleep;
      if (candidates == 0) {
        // Every enabled decision is asleep: any walk from here repeats an
        // execution already explored (up to equivalence). Count and stop.
        ++stats_.executions_pruned;
        race_detect_pending(node, prefix_.size());
        unwind_to(base);
        return;
      }
      if ((candidates & (candidates - 1)) != 0) {
        nodes_.push_back(std::move(node));
        break;  // branching node: handled recursively below
      }
      // Exactly one candidate: backtrack additions here can only name the
      // chosen pid (done) or sleeping pids (redundant by the sleep-set
      // argument), so this node never needs revisiting.
      EnabledEvent chosen{};
      for (const EnabledEvent& e : node.enabled) {
        if (candidates & event_bit(e)) {
          chosen = e;
          break;
        }
      }
      node.backtrack = candidates;
      node.done = candidates;
      node.taken = chosen;
      nodes_.push_back(std::move(node));
      prefix_.push_back(chosen.d);
      nodes_.back().completed = apply_decision(r, chosen.d);
      observe(r);
      if (dpor) race_detect(prefix_.size() - 1);
    }

    // Branching node: free the live replay (children re-execute), then
    // explore candidates — under DPOR only backtracked ones, and race
    // detection inside a child's subtree may add more for later rounds.
    r = Replay{};
    const std::size_t depth = prefix_.size();
    {
      Node& node = nodes_[depth];
      if (dpor) {
        for (const EnabledEvent& e : node.enabled) {
          if (!(node.sleep & event_bit(e))) {
            node.backtrack |= event_bit(e);
            break;
          }
        }
        // Crash decisions are dependent on EVERY event, so a persistent set
        // containing anything must contain every enabled crash decision.
        // Race detection alone would never schedule them: it only adds
        // events that some walk executed, and no initial walk takes a crash.
        for (const EnabledEvent& e : node.enabled) {
          if (e.d.crash) node.backtrack |= event_bit(e);
        }
      } else {
        node.backtrack = node.enabled_mask;
      }
    }
    for (;;) {
      // Re-index every round: children push into nodes_, invalidating
      // references, and grow this node's backtrack set via race detection.
      const std::uint64_t avail =
          nodes_[depth].backtrack & ~nodes_[depth].done & ~nodes_[depth].sleep;
      if (avail == 0) break;
      EnabledEvent chosen{};
      for (const EnabledEvent& e : nodes_[depth].enabled) {
        if (avail & event_bit(e)) {
          chosen = e;
          break;
        }
      }
      nodes_[depth].done |= event_bit(chosen);
      nodes_[depth].taken = chosen;  // child fills .completed after replay
      prefix_.push_back(chosen.d);
      dfs();
      prefix_.pop_back();
      if (!stats_.exhausted) {
        unwind_to(base);
        return;
      }
      // Explored: later siblings may skip it until a dependent event wakes
      // it (sleep-set pruning).
      nodes_[depth].sleep |= event_bit(chosen);
    }
    unwind_to(base);
  }

  /// Pop everything this dfs() call pushed — including the straight-line
  /// chain tail, which extends prefix_ without a matching sibling-loop pop.
  void unwind_to(std::size_t base) {
    nodes_.resize(base);
    prefix_.resize(base);
  }

  const S& spec_;
  Factory factory_;
  std::vector<std::vector<Op>> workload_;
  ExploreLimits limits_;
  Observer observer_;
  OnComplete on_complete_;
  std::vector<Decision> prefix_;
  std::vector<Node> nodes_;
  ExploreStats stats_;
};

}  // namespace hi::sim
