// Exhaustive schedule exploration: bounded model checking over ALL
// interleavings of a small workload.
//
// The randomized Runner samples the schedule space; this explorer enumerates
// it. A schedule is the sequence of scheduling decisions (invoke the next
// operation of process p / grant one step to process p). The simulator is
// deterministic given that sequence, so depth-first enumeration with
// re-execution visits every reachable execution of the workload exactly
// once, up to the given depth/width caps. Coroutine frames cannot be forked,
// so the explorer re-executes the decision prefix for every leaf — cheap for
// the intended use (executions of a few dozen steps).
//
// At every visited configuration the caller's observer runs (memory
// snapshots for the HI checker at the appropriate observation points); every
// *complete* execution's history is handed to the caller for linearizability
// checking. Tests use this to verify Algorithms 2, 4, 6 and the perfect-HI
// set over every interleaving of small op mixes — the strongest evidence
// this repository produces short of the paper's proofs.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "sim/trace.h"
#include "spec/spec.h"
#include "verify/history.h"

namespace hi::sim {

/// One scheduling decision.
struct Decision {
  int pid = -1;
  bool start = false;  // true: invoke next op; false: grant one step

  friend bool operator==(const Decision&, const Decision&) = default;
};

struct ExploreStats {
  std::uint64_t executions_complete = 0;
  std::uint64_t executions_truncated = 0;  // hit max_depth
  std::uint64_t configurations = 0;
  bool exhausted = true;  // false if max_executions cap was hit
};

struct ExploreLimits {
  std::size_t max_depth = 64;
  std::uint64_t max_executions = 2'000'000;
};

/// A freshly constructed system under test. The factory must produce an
/// identical initial system every time (determinism is what makes
/// re-execution sound).
template <typename S, typename System>
concept ExplorableSystem = spec::SequentialSpec<S> && requires(System sys) {
  { sys.scheduler() } -> std::same_as<Scheduler&>;
  { sys.memory() } -> std::same_as<Memory&>;
  {
    sys.apply(0, std::declval<typename S::Op>())
  } -> std::same_as<OpTask<typename S::Resp>>;
};

template <spec::SequentialSpec S, typename System>
class Explorer {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;
  using Hist = verify::History<Op, Resp>;
  using Factory = std::function<std::unique_ptr<System>()>;
  /// Observer invoked at every configuration of every (re-)execution along
  /// fresh branches: (system, history-so-far, pending op count,
  /// state-changing pending count).
  using Observer = std::function<void(System&, const Hist&, int, int)>;
  /// Invoked once per complete execution with its full history.
  using OnComplete = std::function<void(System&, const Hist&)>;

  Explorer(const S& spec, Factory factory,
           std::vector<std::vector<Op>> workload)
      : spec_(spec), factory_(std::move(factory)), workload_(std::move(workload)) {}

  ExploreStats explore(const ExploreLimits& limits, Observer observer,
                       OnComplete on_complete) {
    stats_ = ExploreStats{};
    limits_ = limits;
    observer_ = std::move(observer);
    on_complete_ = std::move(on_complete);
    prefix_.clear();
    dfs();
    return stats_;
  }

  /// The decision path of the execution currently being visited — valid
  /// inside observer/on_complete callbacks. Capture a copy there to persist
  /// a counterexample schedule; feed it to trace_of() for replay.
  const std::vector<Decision>& current_prefix() const { return prefix_; }

  /// Re-execute `decisions` on a fresh system with trace recording enabled,
  /// yielding the (pid, kind, object)-annotated ScheduleTrace the replay
  /// harness consumes (verify/replay.h). Decisions must be consistent with
  /// this explorer's workload (e.g. a prefix captured via current_prefix()).
  ScheduleTrace trace_of(const std::vector<Decision>& decisions) {
    ScheduleTrace trace;
    Replay r = fresh_replay();
    r.system->scheduler().record_to(&trace);
    for (const Decision& d : decisions) apply_decision(r, d);
    r.system->scheduler().record_to(nullptr);
    return trace;
  }

 private:
  struct Replay {
    std::unique_ptr<System> system;
    std::vector<std::optional<OpTask<Resp>>> tasks;
    std::vector<std::size_t> next_op;
    std::vector<std::size_t> hist_index;
    std::vector<bool> state_changing;
    Hist history;
    int pending = 0;
    int state_changing_pending = 0;
  };

  /// A freshly constructed system with empty per-process bookkeeping — the
  /// starting state of every (re-)execution.
  Replay fresh_replay() {
    Replay r;
    r.system = factory_();
    const int n = r.system->scheduler().num_processes();
    r.tasks.resize(n);
    r.next_op.assign(n, 0);
    r.hist_index.assign(n, 0);
    r.state_changing.assign(n, false);
    return r;
  }

  /// Re-execute the current prefix; returns the replayed state. `observe_tail`
  /// marks how many trailing decisions are new (never observed before), so
  /// observations are not double-counted across re-executions.
  Replay replay(std::size_t observe_from) {
    Replay r = fresh_replay();
    for (std::size_t i = 0; i < prefix_.size(); ++i) {
      apply_decision(r, prefix_[i]);
      if (i >= observe_from && observer_) {
        ++stats_.configurations;
        observer_(*r.system, r.history, r.pending, r.state_changing_pending);
      }
    }
    return r;
  }

  void apply_decision(Replay& r, const Decision& d) {
    Scheduler& sched = r.system->scheduler();
    if (d.start) {
      assert(!r.tasks[d.pid].has_value());
      const Op op = workload_[d.pid][r.next_op[d.pid]++];
      r.hist_index[d.pid] = r.history.invoke(d.pid, op);
      r.state_changing[d.pid] = !spec_.is_read_only(op);
      r.tasks[d.pid].emplace(r.system->apply(d.pid, op));
      sched.start(d.pid, *r.tasks[d.pid]);
      ++r.pending;
      if (r.state_changing[d.pid]) ++r.state_changing_pending;
    } else {
      sched.step(d.pid);
    }
    if (r.tasks[d.pid].has_value() && sched.op_finished(d.pid)) {
      r.history.respond(r.hist_index[d.pid], r.tasks[d.pid]->take_result());
      sched.finish(d.pid);
      r.tasks[d.pid].reset();
      --r.pending;
      if (r.state_changing[d.pid]) {
        --r.state_changing_pending;
        r.state_changing[d.pid] = false;
      }
    }
  }

  std::vector<Decision> enabled(const Replay& r) const {
    std::vector<Decision> events;
    const Scheduler& sched = r.system->scheduler();
    const int n = sched.num_processes();
    for (int pid = 0; pid < n; ++pid) {
      if (r.tasks[pid].has_value()) {
        if (sched.runnable(pid)) events.push_back({pid, false});
      } else if (pid < static_cast<int>(workload_.size()) &&
                 r.next_op[pid] < workload_[pid].size()) {
        events.push_back({pid, true});
      }
    }
    return events;
  }

  void dfs() {
    if (!stats_.exhausted) return;
    if (stats_.executions_complete + stats_.executions_truncated >=
        limits_.max_executions) {
      stats_.exhausted = false;
      return;
    }
    // Re-execute the prefix; only the final configuration is "new" relative
    // to the parent call (all earlier ones were observed when first reached).
    Replay r = replay(prefix_.empty() ? 0 : prefix_.size() - 1);
    const std::vector<Decision> events = enabled(r);
    if (events.empty()) {
      ++stats_.executions_complete;
      if (on_complete_) on_complete_(*r.system, r.history);
      return;
    }
    if (prefix_.size() >= limits_.max_depth) {
      ++stats_.executions_truncated;
      return;
    }
    // Free the replay before recursing (each child re-executes anyway).
    r = Replay{};
    for (const Decision& event : events) {
      prefix_.push_back(event);
      dfs();
      prefix_.pop_back();
      if (!stats_.exhausted) return;
    }
  }

  const S& spec_;
  Factory factory_;
  std::vector<std::vector<Op>> workload_;
  ExploreLimits limits_;
  Observer observer_;
  OnComplete on_complete_;
  std::vector<Decision> prefix_;
  ExploreStats stats_;
};

}  // namespace hi::sim
