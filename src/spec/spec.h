// Abstract objects as sequential specifications.
//
// The paper (§2) models an abstract object as a tuple (Q, q0, O, R, Δ):
// states, initial state, operations, responses, and a deterministic
// transition function Δ : Q × O → Q × R. Everything in this repository —
// the universal construction, the linearizability checker, the HI checker
// and the impossibility adversaries — is parameterized by such a spec.
//
// A Spec is an *instance* (it can carry runtime parameters such as the
// register width K or the set domain size t) exposing:
//
//   using State = ...;   // regular value type
//   using Op    = ...;   // operation descriptor
//   using Resp  = ...;   // response value
//
//   State initial_state() const;
//   std::pair<State, Resp> apply(const State&, const Op&) const;   // Δ
//   bool is_read_only(const Op&) const;
//
//   // Stable intrinsic encodings. encode_state must be injective on Q and
//   // *independent of execution history* (the HI checker compares canonical
//   // memory representations across executions, so state identity must not
//   // depend on discovery order). encode_op / encode_resp pack into 32 bits
//   // for the universal construction's single-word cells.
//   std::uint64_t encode_state(const State&) const;
//   std::uint32_t encode_op(const Op&) const;
//   Op            decode_op(std::uint32_t) const;
//   std::uint32_t encode_resp(const Resp&) const;
//   Resp          decode_resp(std::uint32_t) const;
#pragma once

#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

namespace hi::spec {

template <typename S>
concept SequentialSpec = requires(const S spec, const typename S::State state,
                                  const typename S::Op op,
                                  const typename S::Resp resp,
                                  std::uint32_t word) {
  { spec.initial_state() } -> std::same_as<typename S::State>;
  {
    spec.apply(state, op)
  } -> std::same_as<std::pair<typename S::State, typename S::Resp>>;
  { spec.is_read_only(op) } -> std::same_as<bool>;
  { spec.encode_state(state) } -> std::same_as<std::uint64_t>;
  {
    spec.decode_state(std::uint64_t{})
  } -> std::same_as<typename S::State>;
  { spec.encode_op(op) } -> std::same_as<std::uint32_t>;
  { spec.decode_op(word) } -> std::same_as<typename S::Op>;
  { spec.encode_resp(resp) } -> std::same_as<std::uint32_t>;
  { spec.decode_resp(word) } -> std::same_as<typename S::Resp>;
};

/// Specs whose full state space can be enumerated (used to build complete
/// canonical maps and by the impossibility adversaries).
template <typename S>
concept EnumerableSpec = SequentialSpec<S> && requires(const S spec) {
  { spec.enumerate_states() } -> std::same_as<std::vector<typename S::State>>;
};

/// Specs in the paper's class C_t (Definition 13): a read operation that
/// distinguishes the partition classes, and a single state-changing operation
/// moving between any two states.
template <typename S>
concept StronglyConnectedSpec =
    SequentialSpec<S> && requires(const S spec, const typename S::State from,
                                  const typename S::State to) {
  { spec.read_op() } -> std::same_as<typename S::Op>;
  { spec.change_op(from, to) } -> std::same_as<typename S::Op>;
};

/// Apply a sequence of operations from the initial state; returns final state.
template <SequentialSpec S>
typename S::State replay(const S& spec,
                         const std::vector<typename S::Op>& ops) {
  typename S::State state = spec.initial_state();
  for (const auto& op : ops) state = spec.apply(state, op).first;
  return state;
}

}  // namespace hi::spec
