// Bounded FIFO queue with a Peek operation — the object of §5.4 / Appendix C.
//
// Elements come from the finite domain {1..t}; the paper's response space is
// {r0, ..., rt} with r0 = "empty" (also the default Enqueue response). The
// queue is *not* in class C_t (states are not mutually reachable in one
// operation), which is why the paper needs the representative-state walk
// S(i1,i2) — implemented in src/adversary/queue_adversary.h on top of the
// change_seq() hook below.
//
// Capacity is bounded by kMaxCapacity so states pack injectively. For
// domains ≤ 15 the packing is nibble-wide (4-bit length + up to 7 elements
// x 4 bits = 32 bits), which keeps the encoded state inside the shared
// 64-bit head word of the universal construction (algo::Word64HeadCodec
// caps states at 32 bits on every backend); wider domains fall back to
// byte packing (8-bit length + 7 x 8 bits) and fit 64-bit contexts only.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace hi::spec {

class QueueSpec {
 public:
  static constexpr std::size_t kMaxCapacity = 7;
  static constexpr std::uint32_t kEmptyResp = 0;  // the paper's r0

  using State = std::vector<std::uint8_t>;  // front at index 0

  enum class Kind : std::uint8_t { kEnqueue, kDequeue, kPeek };
  struct Op {
    Kind kind;
    std::uint8_t value = 0;  // Enqueue argument

    friend bool operator==(const Op&, const Op&) = default;
  };
  using Resp = std::uint32_t;  // r_i = i (front element), r0 = empty/default

  explicit QueueSpec(std::uint32_t domain, std::size_t capacity = kMaxCapacity)
      : domain_(domain), capacity_(capacity) {
    assert(domain >= 1 && domain <= 255);
    assert(capacity >= 1 && capacity <= kMaxCapacity);
  }

  std::uint32_t domain() const { return domain_; }
  std::size_t capacity() const { return capacity_; }

  static Op enqueue(std::uint8_t value) { return Op{Kind::kEnqueue, value}; }
  static Op dequeue() { return Op{Kind::kDequeue, 0}; }
  static Op peek() { return Op{Kind::kPeek, 0}; }

  State initial_state() const { return {}; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    switch (op.kind) {
      case Kind::kEnqueue: {
        assert(op.value >= 1 && op.value <= domain_);
        if (state.size() >= capacity_) return {state, kEmptyResp};  // full: no-op
        State next = state;
        next.push_back(op.value);
        return {next, kEmptyResp};
      }
      case Kind::kDequeue: {
        if (state.empty()) return {state, kEmptyResp};
        State next(state.begin() + 1, state.end());
        return {next, state.front()};
      }
      case Kind::kPeek:
        return {state, state.empty() ? kEmptyResp : state.front()};
    }
    return {state, kEmptyResp};  // unreachable
  }

  bool is_read_only(const Op& op) const { return op.kind == Kind::kPeek; }

  std::uint64_t encode_state(const State& state) const {
    assert(state.size() <= capacity_);
    const std::size_t w = element_bits();
    std::uint64_t word = state.size();
    for (std::size_t i = 0; i < state.size(); ++i) {
      word |= static_cast<std::uint64_t>(state[i]) << (w * (i + 1));
    }
    return word;
  }

  State decode_state(std::uint64_t word) const {
    const std::size_t w = element_bits();
    const std::size_t len = word & ((std::uint64_t{1} << w) - 1);
    assert(len <= capacity_);
    State state(len);
    for (std::size_t i = 0; i < len; ++i) {
      state[i] = static_cast<std::uint8_t>((word >> (w * (i + 1))) &
                                           ((std::uint64_t{1} << w) - 1));
    }
    return state;
  }

  std::uint32_t encode_op(const Op& op) const {
    return (static_cast<std::uint32_t>(op.kind) << 8) | op.value;
  }
  Op decode_op(std::uint32_t word) const {
    return Op{static_cast<Kind>(word >> 8),
              static_cast<std::uint8_t>(word & 0xff)};
  }
  std::uint32_t encode_resp(const Resp& resp) const { return resp; }
  Resp decode_resp(std::uint32_t word) const { return word; }

  /// All states up to the capacity bound (size t^0 + t^1 + ... + t^cap).
  std::vector<State> enumerate_states() const {
    std::vector<State> states{State{}};
    std::size_t level_begin = 0;
    for (std::size_t len = 1; len <= capacity_; ++len) {
      const std::size_t level_end = states.size();
      for (std::size_t i = level_begin; i < level_end; ++i) {
        for (std::uint32_t v = 1; v <= domain_; ++v) {
          State next = states[i];
          next.push_back(static_cast<std::uint8_t>(v));
          states.push_back(std::move(next));
        }
      }
      level_begin = level_end;
    }
    return states;
  }

  /// The paper's representative states q0 = ∅, q_i = {i} (§5.4).
  State representative(std::uint32_t index) const {
    assert(index <= domain_);
    if (index == 0) return {};
    return {static_cast<std::uint8_t>(index)};
  }

  /// The operation sequence S(i1, i2) moving representative q_{i1} to q_{i2}
  /// without Peek ever being able to observe a third response value (§5.4).
  std::vector<Op> change_seq(std::uint32_t from, std::uint32_t to) const {
    assert(from != to && from <= domain_ && to <= domain_);
    if (from == 0) return {enqueue(static_cast<std::uint8_t>(to))};
    if (to == 0) return {dequeue()};
    return {enqueue(static_cast<std::uint8_t>(to)), dequeue()};
  }

 private:
  // Nibble-packing needs every element AND the length (≤ kMaxCapacity = 7)
  // to fit 4 bits.
  std::size_t element_bits() const { return domain_ <= 15 ? 4 : 8; }

  std::uint32_t domain_;
  std::size_t capacity_;
};

}  // namespace hi::spec
