// Bounded stack with Push / Pop / Top over domain {1..t}.
//
// Not discussed explicitly in the paper, but like the queue it is outside
// class C_t while still admitting the representative-state treatment; we use
// it to exercise the universal construction with a second sequence-valued
// object and to cross-check the HI checker on LIFO vs FIFO canonical states.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace hi::spec {

class StackSpec {
 public:
  static constexpr std::size_t kMaxCapacity = 7;
  static constexpr std::uint32_t kEmptyResp = 0;

  using State = std::vector<std::uint8_t>;  // top at the back

  enum class Kind : std::uint8_t { kPush, kPop, kTop };
  struct Op {
    Kind kind;
    std::uint8_t value = 0;

    friend bool operator==(const Op&, const Op&) = default;
  };
  using Resp = std::uint32_t;

  explicit StackSpec(std::uint32_t domain, std::size_t capacity = kMaxCapacity)
      : domain_(domain), capacity_(capacity) {
    assert(domain >= 1 && domain <= 255);
    assert(capacity >= 1 && capacity <= kMaxCapacity);
  }

  std::uint32_t domain() const { return domain_; }
  std::size_t capacity() const { return capacity_; }

  static Op push(std::uint8_t value) { return Op{Kind::kPush, value}; }
  static Op pop() { return Op{Kind::kPop, 0}; }
  static Op top() { return Op{Kind::kTop, 0}; }

  State initial_state() const { return {}; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    switch (op.kind) {
      case Kind::kPush: {
        assert(op.value >= 1 && op.value <= domain_);
        if (state.size() >= capacity_) return {state, kEmptyResp};  // full
        State next = state;
        next.push_back(op.value);
        return {next, kEmptyResp};
      }
      case Kind::kPop: {
        if (state.empty()) return {state, kEmptyResp};
        State next(state.begin(), state.end() - 1);
        return {next, state.back()};
      }
      case Kind::kTop:
        return {state, state.empty() ? kEmptyResp : state.back()};
    }
    return {state, kEmptyResp};  // unreachable
  }

  bool is_read_only(const Op& op) const { return op.kind == Kind::kTop; }

  // Nibble packing for domains ≤ 15 (4-bit length + 7 x 4-bit elements =
  // 32 bits, inside the Word64HeadCodec state cap), byte packing otherwise;
  // same scheme as QueueSpec.
  std::uint64_t encode_state(const State& state) const {
    assert(state.size() <= capacity_);
    const std::size_t w = element_bits();
    std::uint64_t word = state.size();
    for (std::size_t i = 0; i < state.size(); ++i) {
      word |= static_cast<std::uint64_t>(state[i]) << (w * (i + 1));
    }
    return word;
  }

  State decode_state(std::uint64_t word) const {
    const std::size_t w = element_bits();
    const std::size_t len = word & ((std::uint64_t{1} << w) - 1);
    assert(len <= capacity_);
    State state(len);
    for (std::size_t i = 0; i < len; ++i) {
      state[i] = static_cast<std::uint8_t>((word >> (w * (i + 1))) &
                                           ((std::uint64_t{1} << w) - 1));
    }
    return state;
  }

  std::uint32_t encode_op(const Op& op) const {
    return (static_cast<std::uint32_t>(op.kind) << 8) | op.value;
  }
  Op decode_op(std::uint32_t word) const {
    return Op{static_cast<Kind>(word >> 8),
              static_cast<std::uint8_t>(word & 0xff)};
  }
  std::uint32_t encode_resp(const Resp& resp) const { return resp; }
  Resp decode_resp(std::uint32_t word) const { return word; }

  std::vector<State> enumerate_states() const {
    std::vector<State> states{State{}};
    std::size_t level_begin = 0;
    for (std::size_t len = 1; len <= capacity_; ++len) {
      const std::size_t level_end = states.size();
      for (std::size_t i = level_begin; i < level_end; ++i) {
        for (std::uint32_t v = 1; v <= domain_; ++v) {
          State next = states[i];
          next.push_back(static_cast<std::uint8_t>(v));
          states.push_back(std::move(next));
        }
      }
      level_begin = level_end;
    }
    return states;
  }

 private:
  std::size_t element_bits() const { return domain_ <= 15 ? 4 : 8; }

  std::uint32_t domain_;
  std::size_t capacity_;
};

}  // namespace hi::spec
