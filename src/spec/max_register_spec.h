// Max register (Aspnes–Attiya–Censor): WriteMax(v) and ReadMax, where ReadMax
// returns the maximum value ever written. The paper (§5.1) uses it as the
// canonical example of an object *not* in class C_t — its state graph is not
// strongly connected (once at m it can never drop below m) — and observes
// that a one-line modification of Vidyasankar's algorithm gives a wait-free
// state-quiescent HI max register from binary registers
// (src/core/max_register.h).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace hi::spec {

class MaxRegisterSpec {
 public:
  using State = std::uint32_t;  // current maximum, in [1, K]

  enum class Kind : std::uint8_t { kReadMax, kWriteMax };
  struct Op {
    Kind kind;
    std::uint32_t value = 0;

    friend bool operator==(const Op&, const Op&) = default;
  };
  using Resp = std::uint32_t;

  explicit MaxRegisterSpec(std::uint32_t num_values, std::uint32_t initial = 1)
      : num_values_(num_values), initial_(initial) {
    assert(num_values >= 1 && initial >= 1 && initial <= num_values);
  }

  std::uint32_t num_values() const { return num_values_; }

  static Op read_max() { return Op{Kind::kReadMax, 0}; }
  static Op write_max(std::uint32_t value) {
    return Op{Kind::kWriteMax, value};
  }

  State initial_state() const { return initial_; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    switch (op.kind) {
      case Kind::kReadMax:
        return {state, state};
      case Kind::kWriteMax:
        assert(op.value >= 1 && op.value <= num_values_);
        return {op.value > state ? op.value : state, 0};
    }
    return {state, 0};  // unreachable
  }

  bool is_read_only(const Op& op) const { return op.kind == Kind::kReadMax; }

  std::uint64_t encode_state(const State& state) const { return state; }
  State decode_state(std::uint64_t word) const {
    return static_cast<State>(word);
  }

  std::uint32_t encode_op(const Op& op) const {
    return op.kind == Kind::kReadMax ? 0u : op.value;
  }
  Op decode_op(std::uint32_t word) const {
    return word == 0 ? read_max() : write_max(word);
  }
  std::uint32_t encode_resp(const Resp& resp) const { return resp; }
  Resp decode_resp(std::uint32_t word) const { return word; }

  std::vector<State> enumerate_states() const {
    std::vector<State> states;
    states.reserve(num_values_);
    for (std::uint32_t v = 1; v <= num_values_; ++v) states.push_back(v);
    return states;
  }

 private:
  std::uint32_t num_values_;
  std::uint32_t initial_;
};

}  // namespace hi::spec
