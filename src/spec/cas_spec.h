// t-valued CAS object with a read operation — the paper's second example of a
// class C_t member (§5.1): Read distinguishes all t values, and
// CAS(X, q, q') is the o_change(q, q') operation.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace hi::spec {

class CasSpec {
 public:
  using State = std::uint32_t;  // current value, in [1, K]

  enum class Kind : std::uint8_t { kRead, kCas, kWrite };
  struct Op {
    Kind kind;
    std::uint32_t expected = 0;  // CAS only
    std::uint32_t desired = 0;   // CAS / Write

    friend bool operator==(const Op&, const Op&) = default;
  };
  struct Resp {
    bool success = false;     // CAS result (Read/Write report true)
    std::uint32_t value = 0;  // Read result

    friend bool operator==(const Resp&, const Resp&) = default;
  };

  explicit CasSpec(std::uint32_t num_values, std::uint32_t initial = 1)
      : num_values_(num_values), initial_(initial) {
    assert(num_values >= 1 && num_values <= 0xffff);
    assert(initial >= 1 && initial <= num_values);
  }

  std::uint32_t num_values() const { return num_values_; }

  static Op read() { return Op{Kind::kRead, 0, 0}; }
  static Op cas(std::uint32_t expected, std::uint32_t desired) {
    return Op{Kind::kCas, expected, desired};
  }
  static Op write(std::uint32_t desired) { return Op{Kind::kWrite, 0, desired}; }

  State initial_state() const { return initial_; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    switch (op.kind) {
      case Kind::kRead:
        return {state, Resp{true, state}};
      case Kind::kCas:
        if (state == op.expected) return {op.desired, Resp{true, 0}};
        return {state, Resp{false, 0}};
      case Kind::kWrite:
        return {op.desired, Resp{true, 0}};
    }
    return {state, Resp{}};  // unreachable
  }

  bool is_read_only(const Op& op) const { return op.kind == Kind::kRead; }

  std::uint64_t encode_state(const State& state) const { return state; }
  State decode_state(std::uint64_t word) const {
    return static_cast<State>(word);
  }

  std::uint32_t encode_op(const Op& op) const {
    return (static_cast<std::uint32_t>(op.kind) << 30) | (op.expected << 15) |
           op.desired;
  }
  Op decode_op(std::uint32_t word) const {
    return Op{static_cast<Kind>(word >> 30), (word >> 15) & 0x7fffu,
              word & 0x7fffu};
  }
  // Responses fit 24 bits (the Word64HeadCodec rsp cap): success at bit 23,
  // the read value (≤ 0xffff by the num_values bound) below it.
  std::uint32_t encode_resp(const Resp& resp) const {
    return (resp.success ? 1u << 23 : 0u) | resp.value;
  }
  Resp decode_resp(std::uint32_t word) const {
    return Resp{(word >> 23) != 0, word & 0x7fffffu};
  }

  std::vector<State> enumerate_states() const {
    std::vector<State> states;
    states.reserve(num_values_);
    for (std::uint32_t v = 1; v <= num_values_; ++v) states.push_back(v);
    return states;
  }

  // Class C_t interface (Definition 13).
  Op read_op() const { return read(); }
  Op change_op(const State& from, const State& to) const {
    return cas(from, to);
  }

 private:
  std::uint32_t num_values_;
  std::uint32_t initial_;
};

}  // namespace hi::spec
