// K-valued read/write register — the paper's running example (§4, §5.3).
//
// States are the values 1..K (the paper indexes register values from 1, so
// that value v corresponds to array slot A[v]). A t-valued register is in
// class C_t: Read distinguishes all states and Write(v) moves between any two
// states in one operation (Definition 13's o_read / o_change).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace hi::spec {

class RegisterSpec {
 public:
  using State = std::uint32_t;  // current value, in [1, K]

  enum class Kind : std::uint8_t { kRead, kWrite };
  struct Op {
    Kind kind;
    std::uint32_t value = 0;  // Write argument; unused for Read

    friend bool operator==(const Op&, const Op&) = default;
  };
  using Resp = std::uint32_t;  // Read: the value; Write: echoes 0

  explicit RegisterSpec(std::uint32_t num_values, std::uint32_t initial = 1)
      : num_values_(num_values), initial_(initial) {
    assert(num_values >= 1 && initial >= 1 && initial <= num_values);
  }

  std::uint32_t num_values() const { return num_values_; }

  static Op read() { return Op{Kind::kRead, 0}; }
  static Op write(std::uint32_t value) { return Op{Kind::kWrite, value}; }

  State initial_state() const { return initial_; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    switch (op.kind) {
      case Kind::kRead:
        return {state, state};
      case Kind::kWrite:
        assert(op.value >= 1 && op.value <= num_values_);
        return {op.value, 0};
    }
    return {state, 0};  // unreachable
  }

  bool is_read_only(const Op& op) const { return op.kind == Kind::kRead; }

  std::uint64_t encode_state(const State& state) const { return state; }
  State decode_state(std::uint64_t word) const {
    return static_cast<State>(word);
  }

  std::uint32_t encode_op(const Op& op) const {
    return op.kind == Kind::kRead ? 0u : op.value;
  }
  Op decode_op(std::uint32_t word) const {
    return word == 0 ? read() : write(word);
  }
  std::uint32_t encode_resp(const Resp& resp) const { return resp; }
  Resp decode_resp(std::uint32_t word) const { return word; }

  std::vector<State> enumerate_states() const {
    std::vector<State> states;
    states.reserve(num_values_);
    for (std::uint32_t v = 1; v <= num_values_; ++v) states.push_back(v);
    return states;
  }

  // Class C_t interface (Definition 13).
  Op read_op() const { return read(); }
  Op change_op(const State& /*from*/, const State& to) const {
    return write(to);
  }

 private:
  std::uint32_t num_values_;
  std::uint32_t initial_;
};

}  // namespace hi::spec
