// Sequential specification of the context-aware releasable LL/SC object
// (§6.1): state is the pair (val, context); operations are LL, VL, SC, RL,
// Load and Store, each tagged with the invoking process (the context is
// per-process, so Δ needs the identity). Used to linearizability-check
// Algorithm 6's concurrent histories (Theorem 28 / experiment E10).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bits.h"

namespace hi::spec {

class RllscSpec {
 public:
  static constexpr int kMaxProcesses = 16;

  struct State {
    std::uint64_t val = 0;
    std::uint16_t ctx = 0;  // bit i <=> process i in context

    friend bool operator==(const State&, const State&) = default;
  };

  enum class Kind : std::uint8_t { kLL, kVL, kSC, kRL, kLoad, kStore };
  struct Op {
    Kind kind;
    std::uint8_t pid = 0;
    std::uint16_t arg = 0;  // SC / Store argument

    friend bool operator==(const Op&, const Op&) = default;
  };
  struct Resp {
    std::uint32_t value = 0;  // LL / Load result
    bool flag = false;        // VL / SC / RL / Store result

    friend bool operator==(const Resp&, const Resp&) = default;
  };

  RllscSpec(std::uint16_t num_values, int num_processes,
            std::uint16_t initial = 0)
      : num_values_(num_values),
        num_processes_(num_processes),
        initial_(initial) {
    assert(num_processes >= 1 && num_processes <= kMaxProcesses);
    assert(initial < num_values);
  }

  static Op ll(int pid) { return Op{Kind::kLL, static_cast<std::uint8_t>(pid)}; }
  static Op vl(int pid) { return Op{Kind::kVL, static_cast<std::uint8_t>(pid)}; }
  static Op sc(int pid, std::uint16_t arg) {
    return Op{Kind::kSC, static_cast<std::uint8_t>(pid), arg};
  }
  static Op rl(int pid) { return Op{Kind::kRL, static_cast<std::uint8_t>(pid)}; }
  static Op load(int pid) {
    return Op{Kind::kLoad, static_cast<std::uint8_t>(pid)};
  }
  static Op store(int pid, std::uint16_t arg) {
    return Op{Kind::kStore, static_cast<std::uint8_t>(pid), arg};
  }

  State initial_state() const { return State{initial_, 0}; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    const auto bit = static_cast<unsigned>(op.pid);
    const bool linked = util::test_bit(state.ctx, bit);
    switch (op.kind) {
      case Kind::kLL:
        return {State{state.val, static_cast<std::uint16_t>(
                                     util::set_bit(state.ctx, bit))},
                Resp{static_cast<std::uint32_t>(state.val), true}};
      case Kind::kVL:
        return {state, Resp{0, linked}};
      case Kind::kSC:
        if (linked) return {State{op.arg, 0}, Resp{0, true}};
        return {state, Resp{0, false}};
      case Kind::kRL:
        return {State{state.val, static_cast<std::uint16_t>(
                                     util::clear_bit(state.ctx, bit))},
                Resp{0, true}};
      case Kind::kLoad:
        return {state, Resp{static_cast<std::uint32_t>(state.val), true}};
      case Kind::kStore:
        return {State{op.arg, 0}, Resp{0, true}};
    }
    return {state, Resp{}};  // unreachable
  }

  bool is_read_only(const Op& op) const {
    return op.kind == Kind::kVL || op.kind == Kind::kLoad;
  }

  std::uint64_t encode_state(const State& state) const {
    return (state.val << 16) | state.ctx;
  }
  State decode_state(std::uint64_t word) const {
    return State{word >> 16, static_cast<std::uint16_t>(word & 0xffff)};
  }

  std::uint32_t encode_op(const Op& op) const {
    return (static_cast<std::uint32_t>(op.kind) << 24) |
           (static_cast<std::uint32_t>(op.pid) << 16) | op.arg;
  }
  Op decode_op(std::uint32_t word) const {
    return Op{static_cast<Kind>(word >> 24),
              static_cast<std::uint8_t>((word >> 16) & 0xff),
              static_cast<std::uint16_t>(word & 0xffff)};
  }
  std::uint32_t encode_resp(const Resp& resp) const {
    return (resp.flag ? 1u << 31 : 0u) | resp.value;
  }
  Resp decode_resp(std::uint32_t word) const {
    return Resp{word & 0x7fffffffu, (word >> 31) != 0};
  }

  std::uint16_t num_values() const { return num_values_; }
  int num_processes() const { return num_processes_; }

 private:
  std::uint16_t num_values_;
  int num_processes_;
  std::uint16_t initial_;
};

}  // namespace hi::spec
