// Set over {1..t} with insert / remove / lookup — the paper's example (§5.1)
// of an object *outside* class C_t: it has 2^t states but only two responses
// ("success"/"failure"), so no single operation distinguishes t states, and
// the impossibility result does not apply. Indeed the paper notes a trivial
// wait-free *perfect* HI implementation from t binary registers
// (src/core/hi_set.h reproduces it).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bits.h"

namespace hi::spec {

class SetSpec {
 public:
  using State = std::uint64_t;  // membership bitmask; bit (v-1) <=> v in set

  enum class Kind : std::uint8_t { kInsert, kRemove, kLookup };
  struct Op {
    Kind kind;
    std::uint32_t value;  // element in [1, t]

    friend bool operator==(const Op&, const Op&) = default;
  };
  // Lookup: presence. Insert/Remove: constant "success" acknowledgement —
  // the paper's set has only success/failure responses, and the trivial
  // perfect-HI implementation (blind writes to t binary registers) cannot
  // report the previous presence bit atomically; keeping update responses
  // constant is precisely what keeps the set outside class C_t.
  using Resp = bool;

  explicit SetSpec(std::uint32_t domain, std::uint64_t initial = 0)
      : domain_(domain), initial_(initial) {
    assert(domain >= 1 && domain <= 64);
    assert(domain == 64 || initial < (std::uint64_t{1} << domain));
  }

  std::uint32_t domain() const { return domain_; }

  static Op insert(std::uint32_t value) { return Op{Kind::kInsert, value}; }
  static Op remove(std::uint32_t value) { return Op{Kind::kRemove, value}; }
  static Op lookup(std::uint32_t value) { return Op{Kind::kLookup, value}; }

  State initial_state() const { return initial_; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    assert(op.value >= 1 && op.value <= domain_);
    const unsigned bit = op.value - 1;
    const bool present = util::test_bit(state, bit);
    switch (op.kind) {
      case Kind::kInsert:
        return {util::set_bit(state, bit), true};
      case Kind::kRemove:
        return {util::clear_bit(state, bit), true};
      case Kind::kLookup:
        return {state, present};
    }
    return {state, false};  // unreachable
  }

  bool is_read_only(const Op& op) const { return op.kind == Kind::kLookup; }

  std::uint64_t encode_state(const State& state) const { return state; }
  State decode_state(std::uint64_t word) const { return word; }

  std::uint32_t encode_op(const Op& op) const {
    return (static_cast<std::uint32_t>(op.kind) << 8) | op.value;
  }
  Op decode_op(std::uint32_t word) const {
    return Op{static_cast<Kind>(word >> 8), word & 0xffu};
  }
  std::uint32_t encode_resp(const Resp& resp) const { return resp ? 1u : 0u; }
  Resp decode_resp(std::uint32_t word) const { return word != 0; }

  /// 2^t states; only call for small domains.
  std::vector<State> enumerate_states() const {
    assert(domain_ <= 20);
    std::vector<State> states;
    states.reserve(std::size_t{1} << domain_);
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << domain_); ++mask) {
      states.push_back(mask);
    }
    return states;
  }

 private:
  std::uint32_t domain_;
  std::uint64_t initial_;
};

}  // namespace hi::spec
