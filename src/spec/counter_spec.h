// Bounded counter with fetch-and-increment / fetch-and-decrement / read.
//
// This is the object the paper uses to motivate context clearing in §6.1:
// "a counter supporting fetch-and-increment and fetch-and-decrement
// operations, whose value is currently zero, was non-zero in the past" must
// not be deducible from memory. The counter is reversible (every state
// reachable from every other), so the Hartline et al. characterization and
// the paper's impossibility machinery apply to it.
//
// The value saturates at [0, max_value] so the state space is finite; the
// fetch response reports the pre-operation value.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace hi::spec {

class CounterSpec {
 public:
  using State = std::uint32_t;  // current count, in [0, max_value]

  enum class Kind : std::uint8_t { kRead, kInc, kDec };
  struct Op {
    Kind kind;

    friend bool operator==(const Op&, const Op&) = default;
  };
  using Resp = std::uint32_t;  // pre-operation value

  explicit CounterSpec(std::uint32_t max_value = 1u << 20,
                       std::uint32_t initial = 0)
      : max_value_(max_value), initial_(initial) {
    assert(initial <= max_value);
  }

  std::uint32_t max_value() const { return max_value_; }

  static Op read() { return Op{Kind::kRead}; }
  static Op inc() { return Op{Kind::kInc}; }
  static Op dec() { return Op{Kind::kDec}; }

  State initial_state() const { return initial_; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    switch (op.kind) {
      case Kind::kRead:
        return {state, state};
      case Kind::kInc:
        return {state < max_value_ ? state + 1 : state, state};
      case Kind::kDec:
        return {state > 0 ? state - 1 : state, state};
    }
    return {state, state};  // unreachable
  }

  bool is_read_only(const Op& op) const { return op.kind == Kind::kRead; }

  std::uint64_t encode_state(const State& state) const { return state; }
  State decode_state(std::uint64_t word) const {
    return static_cast<State>(word);
  }

  std::uint32_t encode_op(const Op& op) const {
    return static_cast<std::uint32_t>(op.kind);
  }
  Op decode_op(std::uint32_t word) const {
    assert(word <= 2);
    return Op{static_cast<Kind>(word)};
  }
  std::uint32_t encode_resp(const Resp& resp) const { return resp; }
  Resp decode_resp(std::uint32_t word) const { return word; }

  std::vector<State> enumerate_states() const {
    std::vector<State> states;
    states.reserve(max_value_ + 1);
    for (std::uint32_t v = 0; v <= max_value_; ++v) states.push_back(v);
    return states;
  }

 private:
  std::uint32_t max_value_;
  std::uint32_t initial_;
};

}  // namespace hi::spec
