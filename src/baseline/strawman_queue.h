// Strawman "state-quiescent HI queue with Peek" from binary registers — the
// candidate that Theorem 20 (§5.4 / Appendix C) dooms.
//
// Single-mutator queue over domain {1..t} with a front indicator kept in a
// one-hot binary array F[0..t] (index 0 = empty) and the queue contents
// mirrored canonically into per-slot bit-planes. Every state-changing
// operation rewrites memory to the canonical encoding of the new state
// (set-the-new-front-then-clear-the-old, Algorithm 2 style), so the
// implementation is state-quiescent HI. Enqueue/Dequeue are wait-free. Peek,
// however, must chase the one-hot front bit across F — and the
// representative-state adversary (S(i1,i2) walks, Lemma 38) keeps the bit
// forever one step ahead of the scan: Peek is only lock-free, demonstrating
// concretely that the wait-free + state-quiescent-HI combination is
// unattainable from base objects with fewer than t+1 states.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/queue_spec.h"

namespace hi::baseline {

class StrawmanQueue {
 public:
  using Op = spec::QueueSpec::Op;
  using Resp = spec::QueueSpec::Resp;

  StrawmanQueue(sim::Memory& memory, const spec::QueueSpec& spec,
                int changer_pid, int reader_pid)
      : domain_(spec.domain()),
        capacity_(spec.capacity()),
        changer_pid_(changer_pid),
        reader_pid_(reader_pid) {
    front_.reserve(domain_ + 1);
    for (std::uint32_t v = 0; v <= domain_; ++v) {
      front_.push_back(&memory.make<sim::BinaryRegister>(
          "F[" + std::to_string(v) + "]", v == 0));  // initially empty
    }
    bits_per_slot_ = 1;
    while ((1u << bits_per_slot_) < domain_ + 1) ++bits_per_slot_;
    slots_.resize(capacity_);
    for (std::size_t s = 0; s < capacity_; ++s) {
      for (unsigned b = 0; b < bits_per_slot_; ++b) {
        slots_[s].push_back(&memory.make<sim::BinaryRegister>(
            "slot[" + std::to_string(s) + "]bit" + std::to_string(b), false));
      }
    }
  }

  sim::OpTask<Resp> apply(int pid, Op op) {
    switch (op.kind) {
      case spec::QueueSpec::Kind::kPeek: return peek(pid);
      case spec::QueueSpec::Kind::kEnqueue: return enqueue(pid, op.value);
      case spec::QueueSpec::Kind::kDequeue: return dequeue(pid);
    }
    return peek(pid);  // unreachable
  }

  /// Peek: retry-scan F for the one-hot front bit. Lock-free only.
  sim::OpTask<Resp> peek(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    for (;;) {
      for (std::uint32_t v = 0; v <= domain_; ++v) {
        const std::uint8_t bit = co_await front_[v]->read();
        if (bit == 1) co_return v;  // r_0 = empty, r_v = front element v
      }
    }
  }

  sim::OpTask<Resp> enqueue(int pid, std::uint8_t value) {
    assert(pid == changer_pid_);
    (void)pid;
    assert(value >= 1 && value <= domain_);
    const std::uint32_t old_front = mirror_front();
    if (mirror_.size() < capacity_) mirror_.push_back(value);
    co_await rewrite_slots();
    co_await update_front(old_front, mirror_front());
    co_return spec::QueueSpec::kEmptyResp;
  }

  sim::OpTask<Resp> dequeue(int pid) {
    assert(pid == changer_pid_);
    (void)pid;
    if (mirror_.empty()) co_return spec::QueueSpec::kEmptyResp;
    const std::uint32_t old_front = mirror_front();
    const Resp response = mirror_.front();
    mirror_.erase(mirror_.begin());
    co_await rewrite_slots();
    co_await update_front(old_front, mirror_front());
    co_return response;
  }

 private:
  std::uint32_t mirror_front() const {
    return mirror_.empty() ? 0u : mirror_.front();
  }

  /// Canonically re-encode the queue contents (left-justified, zero-padded).
  sim::SubTask<bool> rewrite_slots() {
    for (std::size_t s = 0; s < capacity_; ++s) {
      const std::uint32_t value = s < mirror_.size() ? mirror_[s] : 0u;
      for (unsigned b = 0; b < bits_per_slot_; ++b) {
        co_await slots_[s][b]->write((value >> b) & 1u);
      }
    }
    co_return true;
  }

  /// One-hot front update: set the new bit, then clear the old one (there is
  /// always at least one bit set, but a scan can still miss both).
  sim::SubTask<bool> update_front(std::uint32_t old_front,
                                  std::uint32_t new_front) {
    if (old_front != new_front) {
      co_await front_[new_front]->write(1);
      co_await front_[old_front]->write(0);
    }
    co_return true;
  }

  std::uint32_t domain_;
  std::size_t capacity_;
  int changer_pid_;
  int reader_pid_;
  unsigned bits_per_slot_ = 1;
  std::vector<std::uint8_t> mirror_;  // single-mutator local view
  std::vector<sim::BinaryRegister*> front_;
  std::vector<std::vector<sim::BinaryRegister*>> slots_;
};

}  // namespace hi::baseline
