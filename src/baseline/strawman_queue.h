// Strawman "state-quiescent HI queue with Peek" from binary registers — the
// candidate that Theorem 20 (§5.4 / Appendix C) dooms — simulator
// instantiation.
//
// Single-source: the algorithm body lives in algo/strawman_queue.h
// (StrawmanQueueAlg), templated over the execution environment; this file
// pins the environment to SimEnv, preserving the seed interface (spec-driven
// apply plus pid-checked peek/enqueue/dequeue). The schedule-replay
// instantiation of the SAME body is replay::StrawmanQueue
// (src/replay/replay_objects.h), which is how the Theorem 20 starvation
// schedules become hardware-atomics regression tests.
#pragma once

#include <cassert>

#include "algo/strawman_queue.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/queue_spec.h"

namespace hi::baseline {

/// Spec-driven harness wrapper, shared by the simulator (Env = SimEnv) and
/// the schedule-replay backend (Env = ReplayEnv) so the op dispatch cannot
/// diverge between the backends the differential replay suite compares.
template <typename Env>
class BasicStrawmanQueue {
 public:
  using Op = spec::QueueSpec::Op;
  using Resp = spec::QueueSpec::Resp;
  template <typename T>
  using OpTask = typename Env::template Op<T>;

  BasicStrawmanQueue(typename Env::Ctx ctx, const spec::QueueSpec& spec,
                     int changer_pid, int reader_pid)
      : alg_(ctx, spec.domain(), spec.capacity()),
        changer_pid_(changer_pid),
        reader_pid_(reader_pid) {}

  OpTask<Resp> apply(int pid, Op op) {
    switch (op.kind) {
      case spec::QueueSpec::Kind::kPeek: return peek(pid);
      case spec::QueueSpec::Kind::kEnqueue: return enqueue(pid, op.value);
      case spec::QueueSpec::Kind::kDequeue: return dequeue(pid);
    }
    return peek(pid);  // unreachable
  }

  /// Peek: retry-scan F for the one-hot front bit. Lock-free only.
  OpTask<Resp> peek(int pid) {
    assert(pid == reader_pid_);
    (void)pid;
    return alg_.peek();
  }

  OpTask<Resp> enqueue(int pid, std::uint8_t value) {
    assert(pid == changer_pid_);
    (void)pid;
    return alg_.enqueue(value);
  }

  OpTask<Resp> dequeue(int pid) {
    assert(pid == changer_pid_);
    (void)pid;
    return alg_.dequeue();
  }

 private:
  algo::StrawmanQueueAlg<Env> alg_;
  int changer_pid_;
  int reader_pid_;
};

using StrawmanQueue = BasicStrawmanQueue<env::SimEnv>;

}  // namespace hi::baseline
