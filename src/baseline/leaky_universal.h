// Non-history-independent universal construction baseline (experiment E13).
//
// Prior universal constructions [Herlihy '90/'93; Fatourou–Kallimanis '11]
// are linearizable and wait-free but leak history: "the implementation in
// [27] explicitly keeps track of all the operations that have ever been
// invoked, while the implementations in [26, 28] store information that
// depends on the sequence of applied operations … [19] keeps information
// about completed operations, such as their responses, and is therefore not
// history independent" (§6 related work).
//
// This baseline follows the Fatourou–Kallimanis shape: the full object state
// lives in ONE big CAS cell together with a version counter and a per-process
// (sequence, response) table; announcements are never cleared. It is
// linearizable and wait-free (helping with priority rotation, like
// Algorithm 5), but at quiescence the memory still reveals:
//   * the total number of state-changing operations ever applied (version),
//   * each process's most recent operation (announce, never cleared),
//   * each process's most recent response (response table in the cell).
// The HI checker rejects it on exactly these fields; Algorithm 5 passes the
// same workloads.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/base_object.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/spec.h"

namespace hi::baseline {

/// The big CAS word: abstract state + version + per-process results.
struct FkWord {
  std::uint64_t state = 0;
  std::uint64_t version = 0;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> results;  // (seq, rsp)

  friend bool operator==(const FkWord&, const FkWord&) = default;
};

/// Single CAS cell over FkWord — the "single memory cell" of [19].
class FkCell : public sim::BaseObject {
 public:
  FkCell(std::string name, FkWord initial)
      : BaseObject(std::move(name)), word_(std::move(initial)) {}

  auto read() {
    return sim::Primitive{id(), "read", [this] { return word_; }};
  }
  auto cas(FkWord expected, FkWord desired) {
    return sim::Primitive{id(), "cas",
                          [this, expected = std::move(expected),
                           desired = std::move(desired)] {
                            if (!(word_ == expected)) return false;
                            word_ = desired;
                            return true;
                          }};
  }

  void encode_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(word_.state);
    out.push_back(word_.version);
    for (const auto& [seq, rsp] : word_.results) {
      out.push_back((seq << 32) | rsp);
    }
  }
  std::string describe() const override {
    return name() + "=(q=" + std::to_string(word_.state) +
           ",ver=" + std::to_string(word_.version) + ")";
  }

  const FkWord& peek() const { return word_; }

 private:
  FkWord word_;
};

template <spec::SequentialSpec S>
class LeakyUniversal {
 public:
  using Op = typename S::Op;
  using Resp = typename S::Resp;

  LeakyUniversal(sim::Memory& memory, const S& spec, int num_processes)
      : spec_(spec), n_(num_processes) {
    FkWord initial;
    initial.state = spec.encode_state(spec.initial_state());
    initial.results.assign(n_, {0, 0});
    head_ = &memory.make<FkCell>("fk-head", std::move(initial));
    announce_.reserve(n_);
    for (int i = 0; i < n_; ++i) {
      announce_.push_back(&memory.make<sim::CasCell>(
          "fk-announce[" + std::to_string(i) + "]", 0));
    }
    local_seq_.assign(n_, 0);
    priority_.resize(n_);
    for (int i = 0; i < n_; ++i) priority_[i] = i;
  }

  sim::OpTask<Resp> apply(int pid, Op op) {
    if (spec_.is_read_only(op)) return apply_read_only(pid, op);
    return apply_update(pid, op);
  }

  sim::OpTask<Resp> apply_read_only(int pid, Op op) {
    (void)pid;
    const FkWord word = co_await head_->read();
    const auto [state_after, rsp] =
        spec_.apply(spec_.decode_state(word.state), op);
    (void)state_after;
    co_return rsp;
  }

  sim::OpTask<Resp> apply_update(int pid, Op op) {
    assert(pid >= 0 && pid < n_);
    const std::uint64_t seq = ++local_seq_[pid];
    // Announce (seq, op) — never cleared: the leak.
    co_await announce_[pid]->write((seq << 32) | spec_.encode_op(op));

    for (;;) {
      const FkWord word = co_await head_->read();
      if (word.results[pid].first == seq) {
        co_return spec_.decode_resp(word.results[pid].second);  // applied
      }
      // Help the rotating candidate if it has an unapplied announcement;
      // otherwise apply our own operation.
      int target = priority_[pid];
      std::uint64_t ann = co_await announce_[target]->read();
      if (ann == 0 || (ann >> 32) <= word.results[target].first) {
        target = pid;
        ann = (seq << 32) | spec_.encode_op(op);
      }
      const std::uint64_t ann_seq = ann >> 32;
      if (ann_seq <= word.results[target].first) continue;  // already done
      const auto [next_state, rsp] = spec_.apply(
          spec_.decode_state(word.state),
          spec_.decode_op(static_cast<std::uint32_t>(ann & 0xffffffffu)));
      FkWord desired = word;
      desired.state = spec_.encode_state(next_state);
      desired.version = word.version + 1;
      desired.results[target] = {ann_seq, spec_.encode_resp(rsp)};
      const bool installed = co_await head_->cas(word, desired);
      if (installed) priority_[pid] = (priority_[pid] + 1) % n_;
    }
  }

  // Observer-side introspection.
  std::uint64_t head_state_encoded() const { return head_->peek().state; }
  std::uint64_t version() const { return head_->peek().version; }

 private:
  const S& spec_;
  int n_;
  FkCell* head_ = nullptr;
  std::vector<sim::CasCell*> announce_;
  std::vector<std::uint64_t> local_seq_;
  std::vector<int> priority_;
};

}  // namespace hi::baseline
