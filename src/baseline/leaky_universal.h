// Non-history-independent universal construction baseline (experiment E13) —
// simulator instantiation.
//
// Single-source: the algorithm body lives in algo/leaky_universal.h
// (LeakyUniversalAlg, with the full Fatourou–Kallimanis commentary and the
// exact list of leaked fields), templated over the execution environment and
// the sequential specification; this file pins the environment to SimEnv.
// The hardware instantiation of the SAME body is rt::RtLeakyUniversal
// (src/rt/baselines_rt.h).
#pragma once

#include "algo/leaky_universal.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/task.h"
#include "spec/spec.h"

namespace hi::baseline {

template <spec::SequentialSpec S>
using LeakyUniversal = algo::LeakyUniversalAlg<env::SimEnv, S>;

}  // namespace hi::baseline
