// Register showcase: the paper's §4 narrative end-to-end, on the simulator.
//
//   1. Algorithm 1 (Vidyasankar) is wait-free but leaks history: the exact
//      [1,1,0]-vs-[1,0,0] example from the paper.
//   2. Algorithm 2 fixes the leak by clearing upwards — state-quiescent HI —
//      but its reader becomes starvable: we run the Theorem 17 pigeonhole
//      adversary live and watch the reader spin.
//   3. Algorithm 4 restores wait-freedom through helping (array B) while
//      keeping quiescent HI: the same adversary fails, and after everything
//      quiesces the memory is back to canon.
//
//   $ ./examples/register_showcase
#include <cstdio>
#include <string>

#include "adversary/reader_adversary.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "core/vidyasankar.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/register_spec.h"

namespace {

constexpr int kWriter = 0;
constexpr int kReader = 1;
constexpr std::uint32_t kValues = 4;

template <typename Impl>
struct Sys {
  hi::spec::RegisterSpec spec;
  hi::sim::Memory memory;
  hi::sim::Scheduler sched;
  Impl impl;

  Sys() : spec(kValues, 1), sched(2), impl(memory, spec, kWriter, kReader) {}
};

template <typename Impl>
hi::adversary::CanonicalMap canon() {
  hi::adversary::CanonicalMap map;
  for (std::uint32_t v = 1; v <= kValues; ++v) {
    Sys<Impl> sys;
    if (v != 1) {
      (void)hi::sim::run_solo(sys.sched, kWriter,
                              sys.impl.write(kWriter, v));
    }
    map.emplace(v, sys.memory.snapshot());
  }
  return map;
}

}  // namespace

int main() {
  std::printf("=== 1. Algorithm 1 leaks (the paper's K=3 example) ===\n");
  {
    Sys<hi::core::VidyasankarRegister> sys;
    (void)hi::sim::run_solo(sys.sched, kWriter, sys.impl.write(kWriter, 2));
    (void)hi::sim::run_solo(sys.sched, kWriter, sys.impl.write(kWriter, 1));
    std::printf("  after Write(2); Write(1):  %s   <- A[2] still set!\n",
                sys.memory.dump().c_str());
  }
  {
    Sys<hi::core::VidyasankarRegister> sys;
    (void)hi::sim::run_solo(sys.sched, kWriter, sys.impl.write(kWriter, 1));
    std::printf("  after just Write(1):       %s\n", sys.memory.dump().c_str());
    std::printf("  same register value (1), different memory: an observer\n"
                "  learns a larger value was written earlier.\n\n");
  }

  std::printf("=== 2. Algorithm 2: HI, but the adversary starves reads ===\n");
  {
    const auto map = canon<hi::core::LockFreeHiRegister>();
    Sys<hi::core::LockFreeHiRegister> sys;
    const auto plan = hi::adversary::ct_plan(sys.spec);
    const auto result = hi::adversary::run_starvation(
        sys.spec, sys.memory, sys.sched, sys.impl, plan, map, kWriter,
        kReader, /*max_rounds=*/50000);
    std::printf("  adversary ran %llu rounds; reader took %llu steps and %s\n",
                static_cast<unsigned long long>(result.rounds_executed),
                static_cast<unsigned long long>(result.reader_steps),
                result.reader_returned ? "returned (?!)"
                                       : "NEVER returned (Theorem 17)");
    std::printf("  memory is nonetheless canonical after each write: %s\n\n",
                sys.memory.dump().c_str());
  }

  std::printf("=== 3. Algorithm 4: wait-free AND quiescent HI ===\n");
  {
    const auto map = canon<hi::core::WaitFreeHiRegister>();
    Sys<hi::core::WaitFreeHiRegister> sys;
    const auto plan = hi::adversary::ct_plan(sys.spec);
    const auto result = hi::adversary::run_starvation(
        sys.spec, sys.memory, sys.sched, sys.impl, plan, map, kWriter,
        kReader, /*max_rounds=*/50000);
    std::printf("  same adversary: reader returned %u after only %llu steps\n",
                result.reader_response,
                static_cast<unsigned long long>(result.reader_steps));
    (void)hi::sim::run_solo(sys.sched, kWriter, sys.impl.write(kWriter, 3));
    const bool canonical = sys.memory.snapshot() == map.at(3);
    std::printf("  after quiescing at value 3, memory %s canon:\n  %s\n",
                canonical ? "matches" : "DIFFERS FROM",
                sys.memory.dump().c_str());
    return canonical ? 0 : 1;
  }
}
