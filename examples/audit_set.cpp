// Auditable access-control store at production scale: the sharded
// perfect-HI set (algo/sharded_set.h) on real hardware — one million users
// striped over 16 multi-word packed shards, concurrent administrator
// threads churning memberships while an auditor runs periodic
// full-membership scans.
//
// Think of a revocation list or an access-control group: it is often
// essential that an investigator (or an attacker with a memory-dump
// primitive) cannot learn that a user was added and hastily removed. Every
// shard's memory IS its membership bitmap after every instruction (perfect
// history independence, Definition 5), and the shard map is a pure function
// of the user id, so the concatenated store memory is a pure function of
// the current membership — never of the churn that produced it.
//
//   $ ./examples/audit_set
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "rt/sharded_set_rt.h"

namespace {

constexpr std::uint32_t kUsers = 1'000'000;
constexpr std::uint32_t kShards = 16;
constexpr int kAdmins = 4;
constexpr int kAudits = 8;
constexpr std::uint32_t kChurnPerAdmin = 400'000;

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int main() {
  hi::rt::RtShardedHiSet store(kUsers, kShards,
                               hi::algo::ShardPlacement::kStriped);

  std::printf("=== Auditable access store: %u users, %u shards ===\n",
              kUsers, store.shard_count());
  std::printf("footprint: %zu bytes of shared membership words "
              "(domain/8 floor = %u bytes)\n\n",
              store.memory_bytes(), kUsers / 8);

  // Seed a stable membership: every 10th user enrolled.
  for (std::uint32_t user = 1; user <= kUsers; user += 10) store.insert(user);

  // kAdmins administrator threads churn random users — enrol, revoke,
  // re-check — while the main thread audits the FULL membership
  // periodically via per-shard word scans. No locks anywhere: every
  // membership operation is one atomic word access in one shard.
  std::vector<std::thread> admins;
  admins.reserve(kAdmins);
  for (int a = 0; a < kAdmins; ++a) {
    admins.emplace_back([&store, a] {
      for (std::uint32_t i = 0; i < kChurnPerAdmin; ++i) {
        const std::uint64_t r =
            mix((static_cast<std::uint64_t>(a) << 32) | i);
        const std::uint32_t user =
            static_cast<std::uint32_t>(r % kUsers) + 1;
        switch (i & 3) {
          case 0: store.insert(user); break;
          case 1: store.remove(user); break;
          default: store.lookup(user); break;
        }
      }
    });
  }

  std::vector<std::uint32_t> members;
  members.reserve(kUsers / 8);
  double total_audit_ms = 0.0;
  for (int audit = 0; audit < kAudits; ++audit) {
    members.clear();
    const auto start = std::chrono::steady_clock::now();
    const std::uint32_t count = store.snapshot_members(members);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    total_audit_ms += ms;
    std::printf("audit %d: %u members enrolled, scanned %u words of shared "
                "memory in %.2f ms\n",
                audit + 1, count,
                (kUsers + 63) / 64 /* == total packed words (+shard tails) */,
                ms);
  }

  for (auto& admin : admins) admin.join();

  members.clear();
  const std::uint32_t final_count = store.snapshot_members(members);
  std::printf("\nfinal membership after churn: %u users; mean audit latency "
              "%.2f ms over %d mid-churn audits.\n",
              final_count, total_audit_ms / kAudits, kAudits);
  std::printf(
      "The store's memory is the concatenation of per-shard membership\n"
      "bitmaps — a pure function of WHO is enrolled now. No trace remains\n"
      "of users that were added and removed, at any instant the auditor\n"
      "(or an attacker) dumps it.\n");
  return 0;
}
