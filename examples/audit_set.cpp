// Auditable access-control set: a perfect-HI set (§5.1) in the simulator,
// with an "auditor" who can dump the shared memory at ANY instant — even in
// the middle of concurrent inserts and removes — and learns exactly the
// current membership, never the churn.
//
// Think of a revocation list or an access-control group: it is often
// essential that an investigator (or an attacker with a memory-dump
// primitive) cannot learn that a user was added and hastily removed. With
// the bitmap construction every configuration's memory IS the membership
// bitmap — perfect history independence, Definition 5.
//
//   $ ./examples/audit_set
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/hi_set.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/set_spec.h"
#include "util/rng.h"

int main() {
  constexpr std::uint32_t kUsers = 12;
  constexpr int kProcs = 4;
  const hi::spec::SetSpec spec(kUsers);
  hi::sim::Memory memory;
  hi::sim::Scheduler sched(kProcs);
  hi::core::HiSet group(memory, spec);

  std::printf("=== Auditable access group over users 1..%u ===\n\n", kUsers);

  // Four administrators churn memberships concurrently; the auditor dumps
  // memory after every single shared-memory step.
  hi::util::Xoshiro256 rng(2024);
  std::vector<std::vector<hi::spec::SetSpec::Op>> work(kProcs);
  for (auto& ops : work) {
    for (int i = 0; i < 8; ++i) {
      const auto user = static_cast<std::uint32_t>(rng.next_in(1, kUsers));
      ops.push_back(rng.chance(2, 3) ? hi::spec::SetSpec::insert(user)
                                     : hi::spec::SetSpec::remove(user));
    }
  }

  std::vector<std::optional<hi::sim::OpTask<bool>>> tasks(kProcs);
  std::vector<std::size_t> next(kProcs, 0);
  std::uint64_t audits = 0;
  std::uint64_t distinct_states = 0;
  std::uint64_t last_state = ~0ull;

  for (;;) {
    std::vector<int> enabled;
    for (int pid = 0; pid < kProcs; ++pid) {
      if (tasks[pid].has_value()) {
        if (sched.runnable(pid)) enabled.push_back(pid);
      } else if (next[pid] < work[pid].size()) {
        enabled.push_back(pid);
      }
    }
    if (enabled.empty()) break;
    const int pid = enabled[rng.next_below(enabled.size())];
    if (!tasks[pid].has_value()) {
      tasks[pid].emplace(group.apply(pid, work[pid][next[pid]++]));
      sched.start(pid, *tasks[pid]);
    } else {
      sched.step(pid);
    }
    if (tasks[pid].has_value() && sched.op_finished(pid)) {
      sched.finish(pid);
      tasks[pid].reset();
    }

    // The audit: memory at this instant IS the membership bitmap.
    const auto snap = memory.snapshot();
    std::uint64_t bitmap = 0;
    for (std::size_t i = 0; i < snap.words.size(); ++i) {
      if (snap.words[i]) bitmap |= 1ull << i;
    }
    ++audits;
    if (bitmap != last_state) {
      ++distinct_states;
      last_state = bitmap;
    }
  }

  std::printf("performed %llu mid-execution audits; the memory never held\n"
              "anything besides the membership bitmap (%llu distinct states "
              "seen).\n\n",
              static_cast<unsigned long long>(audits),
              static_cast<unsigned long long>(distinct_states));

  std::printf("final membership: { ");
  for (std::uint32_t user = 1; user <= kUsers; ++user) {
    hi::sim::OpTask<bool> probe = group.lookup(user);
    if (hi::sim::run_solo(sched, 0, std::move(probe))) {
      std::printf("%u ", user);
    }
  }
  std::printf("}\nfinal memory dump:  %s\n", memory.dump().c_str());
  std::printf("\nNo trace remains of users that were added and removed — the\n"
              "dump equals the canonical bitmap of the final membership.\n");
  return 0;
}
