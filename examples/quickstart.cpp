// Quickstart: a history-independent wait-free shared counter in ~40 lines.
//
// Build any object from its sequential specification with the universal
// construction (Algorithm 5 over Algorithm 6, src/rt): operations are
// linearizable and wait-free, and once no state-changing operation is
// pending, the shared memory is a function of the abstract state alone — an
// observer who dumps it learns the current value and nothing about how it
// got there.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "rt/universal_rt.h"
#include "spec/counter_spec.h"

int main() {
  const hi::spec::CounterSpec spec(/*max_value=*/0xffffff, /*initial=*/0);
  constexpr int kThreads = 4;
  hi::rt::RtUniversal<hi::spec::CounterSpec> counter(spec, kThreads);

  // Hammer it from several threads.
  std::vector<std::thread> pool;
  for (int pid = 0; pid < kThreads; ++pid) {
    pool.emplace_back([&, pid] {
      for (int i = 0; i < 10000; ++i) {
        (void)counter.apply(pid, hi::spec::CounterSpec::inc());
      }
      for (int i = 0; i < 2500; ++i) {
        (void)counter.apply(pid, hi::spec::CounterSpec::dec());
      }
    });
  }
  for (auto& t : pool) t.join();

  const auto value = counter.apply(0, hi::spec::CounterSpec::read());
  std::printf("counter value after 4x(10000 inc, 2500 dec): %u\n", value);

  // The history-independence payoff: a second counter reaching the same
  // value along a totally different path has byte-identical shared memory.
  hi::rt::RtUniversal<hi::spec::CounterSpec> other(spec, kThreads);
  for (int i = 0; i < 30000; ++i) {
    (void)other.apply(0, hi::spec::CounterSpec::inc());
  }
  const bool identical = counter.memory_image() == other.memory_image();
  std::printf("memory identical to a solo run reaching %u: %s\n",
              other.apply(0, hi::spec::CounterSpec::read()),
              identical ? "yes (history independent)" : "NO (bug!)");

  std::printf("context residue: %#llx, announce cells clear: %s\n",
              static_cast<unsigned long long>(counter.context_union()),
              counter.announce_is_bottom(0) ? "yes" : "no");
  return identical ? 0 : 1;
}
