// Voting machine: the classic motivation for history independence [14 in the
// paper: Bethencourt–Boneh–Waters, NDSS'07]. A tally must reveal *how many*
// votes each candidate got — never the order in which ballots were cast, or
// which ballot was cast last (that can deanonymize voters given an observer
// with physical access to the machine's memory).
//
// This example defines a custom sequential specification (a two-candidate
// tally) and runs it through both the history-independent universal
// construction (Algorithm 5/6) and the non-HI baseline. Dumping the shared
// memory afterwards shows the difference: the baseline's version counter and
// announce table reveal the ballot count per booth and each booth's LAST
// vote; the HI tally reveals the totals, full stop.
//
//   $ ./examples/voting_machine
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "rt/baselines_rt.h"
#include "rt/universal_rt.h"
#include "util/rng.h"

namespace {

/// Sequential spec of a two-candidate vote tally (counts capped at 2^15 so
/// the packed state fits the rt layout's 32 bits).
class TallySpec {
 public:
  struct State {
    std::uint16_t alice = 0;
    std::uint16_t bob = 0;

    friend bool operator==(const State&, const State&) = default;
  };
  enum class Kind : std::uint8_t { kVoteAlice, kVoteBob, kReadTally };
  struct Op {
    Kind kind;

    friend bool operator==(const Op&, const Op&) = default;
  };
  using Resp = std::uint32_t;  // packed (alice << 16 | bob) for reads

  static Op vote_alice() { return Op{Kind::kVoteAlice}; }
  static Op vote_bob() { return Op{Kind::kVoteBob}; }
  static Op read_tally() { return Op{Kind::kReadTally}; }

  State initial_state() const { return {}; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    switch (op.kind) {
      case Kind::kVoteAlice:
        return {State{static_cast<std::uint16_t>(state.alice + 1), state.bob},
                0};
      case Kind::kVoteBob:
        return {State{state.alice, static_cast<std::uint16_t>(state.bob + 1)},
                0};
      case Kind::kReadTally:
        return {state, (static_cast<std::uint32_t>(state.alice) << 16) |
                           state.bob};
    }
    return {state, 0};
  }

  bool is_read_only(const Op& op) const {
    return op.kind == Kind::kReadTally;
  }

  std::uint64_t encode_state(const State& s) const {
    return (static_cast<std::uint64_t>(s.alice) << 16) | s.bob;
  }
  State decode_state(std::uint64_t word) const {
    return State{static_cast<std::uint16_t>((word >> 16) & 0xffff),
                 static_cast<std::uint16_t>(word & 0xffff)};
  }
  std::uint32_t encode_op(const Op& op) const {
    return static_cast<std::uint32_t>(op.kind);
  }
  Op decode_op(std::uint32_t word) const {
    return Op{static_cast<Kind>(word)};
  }
  std::uint32_t encode_resp(const Resp& resp) const { return resp; }
  Resp decode_resp(std::uint32_t word) const { return word; }
};

static_assert(hi::spec::SequentialSpec<TallySpec>);

/// Cast the same multiset of ballots (so the same final tally) under two
/// different orders / booth assignments, and return the memory images.
template <typename Machine>
std::vector<hi::rt::Word128> run_election(Machine& machine, int booths,
                                          std::uint64_t shuffle_seed) {
  // 120 ballots for Alice, 80 for Bob, in a seed-dependent order.
  std::vector<TallySpec::Op> ballots;
  for (int i = 0; i < 120; ++i) ballots.push_back(TallySpec::vote_alice());
  for (int i = 0; i < 80; ++i) ballots.push_back(TallySpec::vote_bob());
  hi::util::Xoshiro256 rng(shuffle_seed);
  std::shuffle(ballots.begin(), ballots.end(), rng);

  std::vector<std::thread> pool;
  const std::size_t per_booth = ballots.size() / booths;
  for (int booth = 0; booth < booths; ++booth) {
    pool.emplace_back([&, booth] {
      const std::size_t begin = booth * per_booth;
      const std::size_t end =
          booth + 1 == booths ? ballots.size() : begin + per_booth;
      for (std::size_t i = begin; i < end; ++i) {
        (void)machine.apply(booth, ballots[i]);
      }
    });
  }
  for (auto& t : pool) t.join();
  if constexpr (requires { machine.memory_image(); }) {
    return machine.memory_image();
  } else {
    return {};
  }
}

void dump(const char* label, const std::vector<hi::rt::Word128>& image) {
  std::printf("  %s memory dump:\n", label);
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::printf("    word[%zu] = {%#llx, %#llx}\n", i,
                static_cast<unsigned long long>(image[i].value),
                static_cast<unsigned long long>(image[i].ctx));
  }
}

}  // namespace

int main() {
  const TallySpec spec;
  constexpr int kBooths = 4;

  std::printf("=== History-independent voting machine ===\n");
  std::printf("200 ballots (Alice 120, Bob 80), %d booths.\n\n", kBooths);

  // Two elections with identical outcomes but different casting orders.
  hi::rt::RtUniversal<TallySpec> hi_machine_1(spec, kBooths);
  hi::rt::RtUniversal<TallySpec> hi_machine_2(spec, kBooths);
  const auto image_1 = run_election(hi_machine_1, kBooths, 1);
  const auto image_2 = run_election(hi_machine_2, kBooths, 2);

  const auto tally = hi_machine_1.apply(0, TallySpec::read_tally());
  std::printf("final tally: Alice=%u Bob=%u\n", tally >> 16, tally & 0xffff);
  std::printf("HI machine: memory identical across casting orders: %s\n",
              image_1 == image_2 ? "YES — order is unrecoverable"
                                 : "NO (bug!)");
  dump("HI machine", image_1);

  // The leaky baseline: same tallies, but its memory betrays the history.
  hi::rt::RtLeakyUniversal<TallySpec> leaky_1(spec, kBooths);
  hi::rt::RtLeakyUniversal<TallySpec> leaky_2(spec, kBooths);
  (void)run_election(leaky_1, kBooths, 1);
  (void)run_election(leaky_2, kBooths, 2);
  std::printf(
      "\nLeaky baseline: version counter reveals %llu ballots were cast;\n"
      "its per-booth announce/result tables also reveal each booth's last "
      "ballot\n(run twice: internal words differ across casting orders even "
      "though the\ntally is identical).\n",
      static_cast<unsigned long long>(leaky_1.version()));

  return image_1 == image_2 ? 0 : 1;
}
