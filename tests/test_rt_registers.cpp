// Real-thread tests for the rt register algorithms (Table 1, hardware
// edition): Algorithm 1's leak reproduces byte-for-byte; Algorithm 2 is
// canonical at write-quiescence but its reader can need many attempts under
// a hot writer; Algorithm 4's reader always completes and the memory returns
// to canon at quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "rt/registers_rt.h"
#include "util/rng.h"

namespace hi {
namespace {

TEST(RtVidyasankar, SequentialLeak) {
  rt::RtVidyasankarRegister with_history(3);
  with_history.write(2);
  with_history.write(1);
  EXPECT_EQ(with_history.memory_image(),
            (std::vector<std::uint8_t>{1, 1, 0}));

  rt::RtVidyasankarRegister without_history(3);
  without_history.write(1);
  EXPECT_EQ(without_history.memory_image(),
            (std::vector<std::uint8_t>{1, 0, 0}));
}

TEST(RtVidyasankar, ConcurrentReadsReturnWrittenValues) {
  rt::RtVidyasankarRegister reg(8, 3);
  std::atomic<bool> stop{false};
  // The writer writes only values from {3, 5, 7}; every read must observe
  // one of them (3 is also the initial value).
  std::thread writer([&] {
    util::Xoshiro256 rng(1);
    const std::uint32_t values[] = {3, 5, 7};
    for (int i = 0; i < 50000; ++i) reg.write(values[rng.next_below(3)]);
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint32_t v = reg.read();
      ASSERT_TRUE(v == 3 || v == 5 || v == 7) << v;
    }
  });
  writer.join();
  reader.join();
}

TEST(RtLockFreeHiRegister, CanonicalAfterQuiescence) {
  rt::RtLockFreeHiRegister reg(6);
  std::thread writer([&] {
    util::Xoshiro256 rng(2);
    for (int i = 0; i < 20000; ++i) {
      reg.write(static_cast<std::uint32_t>(rng.next_in(1, 6)));
    }
    reg.write(4);
  });
  std::thread reader([&] {
    for (int i = 0; i < 2000; ++i) {
      // Bounded attempts: under a hot writer a TryRead may fail repeatedly
      // (lock-freedom); give up after a generous budget rather than hang.
      (void)reg.read(/*max_attempts=*/100000);
    }
  });
  writer.join();
  reader.join();
  const auto image = reg.memory_image();
  for (std::uint32_t v = 1; v <= 6; ++v) {
    EXPECT_EQ(image[v - 1], v == 4 ? 1 : 0);
  }
}

TEST(RtLockFreeHiRegister, ReadsReturnWrittenValues) {
  rt::RtLockFreeHiRegister reg(8, 2);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    util::Xoshiro256 rng(3);
    const std::uint32_t values[] = {2, 4, 8};
    for (int i = 0; i < 30000; ++i) reg.write(values[rng.next_below(3)]);
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::optional<std::uint32_t> v = reg.read(100000);
      if (v.has_value()) {
        ASSERT_TRUE(*v == 2 || *v == 4 || *v == 8) << *v;
      }
    }
  });
  writer.join();
  reader.join();
}

TEST(RtWaitFreeHiRegister, ReaderAlwaysCompletesUnderHotWriter) {
  rt::RtWaitFreeHiRegister reg(6, 1);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  std::thread writer([&] {
    util::Xoshiro256 rng(4);
    // Stay hot until the reader has demonstrably made progress (a fixed
    // write count is flaky under machine load: the writer can finish before
    // the reader thread is first scheduled); the cap keeps the test bounded
    // even if the reader stalls.
    for (std::uint64_t i = 0;
         reads_done.load(std::memory_order_acquire) < 200 && i < 50'000'000;
         ++i) {
      reg.write(static_cast<std::uint32_t>(rng.next_in(1, 6)));
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint32_t v = reg.read();  // unconditionally terminates
      ASSERT_GE(v, 1u);
      ASSERT_LE(v, 6u);
      reads_done.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_GT(reads_done.load(), 100u);
}

TEST(RtWaitFreeHiRegister, QuiescentMemoryCanonical) {
  rt::RtWaitFreeHiRegister reg(5, 1);
  std::thread writer([&] {
    util::Xoshiro256 rng(5);
    for (int i = 0; i < 20000; ++i) {
      reg.write(static_cast<std::uint32_t>(rng.next_in(1, 5)));
    }
    reg.write(3);
  });
  std::thread reader([&] {
    for (int i = 0; i < 3000; ++i) (void)reg.read();
  });
  writer.join();
  reader.join();
  const auto image = reg.memory_image();
  ASSERT_EQ(image.size(), 12u);  // A[5] B[5] flag[2]
  for (std::uint32_t v = 1; v <= 5; ++v) {
    EXPECT_EQ(image[v - 1], v == 3 ? 1 : 0) << "A[" << v << "]";
    EXPECT_EQ(image[5 + v - 1], 0) << "B[" << v << "]";
  }
  EXPECT_EQ(image[10], 0);
  EXPECT_EQ(image[11], 0);
}

TEST(RtWaitFreeHiRegister, SequentialHiAcrossPaths) {
  // Same final value via different op sequences ⇒ identical memory.
  rt::RtWaitFreeHiRegister a(4);
  a.write(2);
  rt::RtWaitFreeHiRegister b(4);
  b.write(4);
  b.write(1);
  b.write(2);
  EXPECT_EQ(a.memory_image(), b.memory_image());
}

}  // namespace
}  // namespace hi
