// Shared fixtures for the universal-construction experiments (E11): spec
// factories, random workload generation per object type, and the standard
// check bundle (linearizability with final-state cross-validation,
// state-quiescent canonical invariants of Lemmas 25–27).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rllsc.h"
#include "core/universal.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/cas_spec.h"
#include "spec/counter_spec.h"
#include "spec/queue_spec.h"
#include "spec/register_spec.h"
#include "spec/set_spec.h"
#include "spec/stack_spec.h"
#include "util/rng.h"

namespace hi::testing {

template <typename S>
struct SpecTraits;

template <>
struct SpecTraits<spec::CounterSpec> {
  static spec::CounterSpec make() { return spec::CounterSpec(1u << 20, 10); }
  static spec::CounterSpec::Op random_op(util::Xoshiro256& rng) {
    switch (rng.next_below(4)) {
      case 0: return spec::CounterSpec::read();
      case 1: return spec::CounterSpec::dec();
      default: return spec::CounterSpec::inc();
    }
  }
};

template <>
struct SpecTraits<spec::RegisterSpec> {
  static spec::RegisterSpec make() { return spec::RegisterSpec(8, 3); }
  static spec::RegisterSpec::Op random_op(util::Xoshiro256& rng) {
    if (rng.chance(1, 3)) return spec::RegisterSpec::read();
    return spec::RegisterSpec::write(
        static_cast<std::uint32_t>(rng.next_in(1, 8)));
  }
};

template <>
struct SpecTraits<spec::SetSpec> {
  static spec::SetSpec make() { return spec::SetSpec(12); }
  static spec::SetSpec::Op random_op(util::Xoshiro256& rng) {
    const auto v = static_cast<std::uint32_t>(rng.next_in(1, 12));
    switch (rng.next_below(3)) {
      case 0: return spec::SetSpec::lookup(v);
      case 1: return spec::SetSpec::remove(v);
      default: return spec::SetSpec::insert(v);
    }
  }
};

template <>
struct SpecTraits<spec::QueueSpec> {
  static spec::QueueSpec make() { return spec::QueueSpec(9, 6); }
  static spec::QueueSpec::Op random_op(util::Xoshiro256& rng) {
    switch (rng.next_below(4)) {
      case 0: return spec::QueueSpec::peek();
      case 1: return spec::QueueSpec::dequeue();
      default:
        return spec::QueueSpec::enqueue(
            static_cast<std::uint8_t>(rng.next_in(1, 9)));
    }
  }
};

template <>
struct SpecTraits<spec::StackSpec> {
  static spec::StackSpec make() { return spec::StackSpec(9, 6); }
  static spec::StackSpec::Op random_op(util::Xoshiro256& rng) {
    switch (rng.next_below(4)) {
      case 0: return spec::StackSpec::top();
      case 1: return spec::StackSpec::pop();
      default:
        return spec::StackSpec::push(
            static_cast<std::uint8_t>(rng.next_in(1, 9)));
    }
  }
};

template <>
struct SpecTraits<spec::CasSpec> {
  static spec::CasSpec make() { return spec::CasSpec(6, 2); }
  static spec::CasSpec::Op random_op(util::Xoshiro256& rng) {
    const auto e = static_cast<std::uint32_t>(rng.next_in(1, 6));
    const auto d = static_cast<std::uint32_t>(rng.next_in(1, 6));
    switch (rng.next_below(4)) {
      case 0: return spec::CasSpec::read();
      case 1: return spec::CasSpec::write(d);
      default: return spec::CasSpec::cas(e, d);
    }
  }
};

template <typename S>
std::vector<std::vector<typename S::Op>> universal_workload(
    int num_procs, std::size_t ops_each, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<typename S::Op>> work(num_procs);
  for (auto& ops : work) {
    ops.reserve(ops_each);
    for (std::size_t i = 0; i < ops_each; ++i) {
      ops.push_back(SpecTraits<S>::random_op(rng));
    }
  }
  return work;
}

/// A fresh simulated system hosting one universal object.
template <typename S, typename Cell>
struct UniversalSystem {
  S spec;
  sim::Memory memory;
  sim::Scheduler sched;
  core::Universal<S, Cell> object;

  explicit UniversalSystem(int num_procs, bool clear_contexts = true,
                           bool combine = false)
      : spec(SpecTraits<S>::make()),
        sched(num_procs),
        object(memory, spec, num_procs, clear_contexts, combine) {}
};

}  // namespace hi::testing
