// Shared fixtures for the real-thread yield-fuzzing suite
// (test_fuzz_rt.cpp) and the DPOR explorer suite (test_explorer_dpor.cpp):
//
//  - NaiveCounterSpec + BrokenCounterAlg<Env>: the positive-control object.
//    inc() is a deliberately non-atomic read-then-write over one shared
//    word, so two concurrent incs can both return the same value — a
//    linearizability violation the fuzzer must catch on real threads and
//    the explorer must reproduce in the step model. Single-source over the
//    Env abstraction like every real algorithm, so the SAME broken body
//    runs under FuzzEnv (the rt catch) and SimEnv (the reproduce + shrink).
//
//  - RtHistoryRecorder: builds a verify::History from real-thread
//    executions. Each operation is bracketed by fetch_adds on one global
//    seq_cst clock; after the threads join, events are sorted by timestamp
//    and replayed into History::invoke/respond. The clock ticks BEFORE the
//    invocation's first primitive and AFTER the response's last primitive,
//    so the recorded real-time precedence relation is a subset of the true
//    one — any linearizability violation the checker reports on the
//    recorded history is a genuine violation of the execution.
//
//  - run_fuzz_threads: barrier-released worker threads, each arming
//    env::YieldInjector with a per-(seed, pid) stream so a failing
//    iteration is identified by one seed.
//
//  - dump_failing_trace: persists a failing-trace artifact under
//    $HI_TRACE_DUMP_DIR for the nightly soak workflow's artifact upload.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "env/fuzz_env.h"
#include "env/sim_env.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "spec/register_spec.h"
#include "util/rng.h"
#include "verify/history.h"

namespace hi::testing {

// ---------------------------------------------------------------------------
// Positive control: a counter whose inc() has a lost-update window.
// ---------------------------------------------------------------------------

/// Sequential counter spec for the positive control: inc() returns the NEW
/// value, read() returns the current value. Two concurrent incs that both
/// return the same value are not linearizable under this spec, which is
/// exactly the observable symptom of BrokenCounterAlg's race.
struct NaiveCounterSpec {
  enum class Kind : std::uint8_t { kInc, kRead };
  struct Op {
    Kind kind = Kind::kInc;
  };
  using State = std::uint32_t;
  using Resp = std::uint32_t;

  State initial_state() const { return 0; }

  std::pair<State, Resp> apply(const State& state, const Op& op) const {
    if (op.kind == Kind::kRead) return {state, state};
    return {state + 1, state + 1};
  }

  bool is_read_only(const Op& op) const { return op.kind == Kind::kRead; }

  std::uint64_t encode_state(const State& state) const { return state; }
  State decode_state(std::uint64_t word) const {
    return static_cast<State>(word);
  }
  std::uint32_t encode_op(const Op& op) const {
    return op.kind == Kind::kRead ? 1u : 0u;
  }
  Op decode_op(std::uint32_t word) const {
    return Op{word == 1u ? Kind::kRead : Kind::kInc};
  }
  std::uint32_t encode_resp(const Resp& resp) const { return resp; }
  Resp decode_resp(std::uint32_t word) const { return word; }

  static Op inc() { return Op{Kind::kInc}; }
  static Op read() { return Op{Kind::kRead}; }
};

/// Deliberately broken counter: inc() reads the shared word, then writes
/// value+1 as a SEPARATE primitive — the textbook lost-update window. Any
/// schedule that interleaves two incs between each other's read and write
/// makes both return the same value. Intentionally NOT fixed: it is the
/// seeded bug the fuzzing/exploration pipeline must catch, reproduce, and
/// shrink (acceptance criterion for the positive control).
template <typename Env>
class BrokenCounterAlg {
 public:
  template <typename T>
  using OpT = typename Env::template Op<T>;

  explicit BrokenCounterAlg(typename Env::Ctx ctx)
      : words_(Env::make_word_array(ctx, "C", 1, 0)) {}

  OpT<std::uint32_t> apply(int /*pid*/, NaiveCounterSpec::Op op) {
    if (op.kind == NaiveCounterSpec::Kind::kRead) return read();
    return inc();
  }

  OpT<std::uint32_t> inc() {
    const std::uint64_t seen = co_await Env::read_word(words_, 0);
    co_await Env::write_word(words_, 0, seen + 1);
    co_return static_cast<std::uint32_t>(seen + 1);
  }

  OpT<std::uint32_t> read() {
    const std::uint64_t seen = co_await Env::read_word(words_, 0);
    co_return static_cast<std::uint32_t>(seen);
  }

 private:
  typename Env::WordArray words_;
};

/// Explorer-compatible system wrapper for the broken counter's simulator
/// instantiation — the step-model side of the catch → reproduce → shrink
/// pipeline (and the DPOR suite's bug-preservation check).
struct BrokenCounterSystem {
  NaiveCounterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  BrokenCounterAlg<env::SimEnv> impl;

  explicit BrokenCounterSystem(int num_processes)
      : sched(num_processes), impl(mem) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, NaiveCounterSpec::Op op) {
    return impl.apply(pid, op);
  }
};

// ---------------------------------------------------------------------------
// Crash/stall positive controls (verify/crash_audit.h, tests/test_crash.cpp,
// the rt stall rows in test_fuzz_rt.cpp). Single-source over Env like the
// real algorithms, so the same bodies run under SimEnv (step-exact crash via
// Scheduler::crash) and FuzzEnv (stall injection via YieldInjector).
// ---------------------------------------------------------------------------

/// Lock-based counter: inc() and read() hold a test-and-set spinlock. The
/// object the crash-progress gate MUST catch — if the lock holder crashes
/// (or stalls) between acquire and release, every survivor spins in the
/// acquire loop forever: the progress gate's step budget runs out in the
/// step model and the rt watchdog fires on real threads. Correct when
/// nobody crashes (the tier-1 suite keeps it that way), broken under the
/// fault model — which is exactly the blocking-vs-lock-free boundary the
/// audit exists to demonstrate.
template <typename Env>
class SpinLockCounterAlg {
 public:
  template <typename T>
  using OpT = typename Env::template Op<T>;

  explicit SpinLockCounterAlg(typename Env::Ctx ctx)
      : words_(Env::make_word_array(ctx, "L", 2, 0)) {}

  OpT<std::uint32_t> apply(int /*pid*/, NaiveCounterSpec::Op op) {
    if (op.kind == NaiveCounterSpec::Kind::kRead) return read();
    return inc();
  }

  OpT<std::uint32_t> inc() {
    for (;;) {
      const auto claim = co_await Env::cas_word(words_, kLock, 0, 1);
      if (claim.installed) break;
    }
    const std::uint64_t seen = co_await Env::read_word(words_, kCount);
    co_await Env::write_word(words_, kCount, seen + 1);
    co_await Env::write_word(words_, kLock, 0);
    co_return static_cast<std::uint32_t>(seen + 1);
  }

  OpT<std::uint32_t> read() {
    for (;;) {
      const auto claim = co_await Env::cas_word(words_, kLock, 0, 1);
      if (claim.installed) break;
    }
    const std::uint64_t seen = co_await Env::read_word(words_, kCount);
    co_await Env::write_word(words_, kLock, 0);
    co_return static_cast<std::uint32_t>(seen);
  }

  /// Observer-side: true while some operation holds the lock.
  bool lock_held() const { return Env::peek_word(words_, kLock) != 0; }

 private:
  static constexpr std::uint32_t kLock = 0;
  static constexpr std::uint32_t kCount = 1;

  typename Env::WordArray words_;
};

/// Deliberately leaky-on-crash register: write(v) journals the OLD value
/// into a scratch word ("undo log") and clears the journal as its last
/// step. Crash-free executions are perfectly quiescent-HI — the journal is
/// always 0 at quiescence — but a write crashed between the journal store
/// and the clear leaves the PREVIOUS value sitting in shared memory
/// forever: a seized machine learns state that the surviving abstract state
/// does not determine, in a word that is not part of the crashed op's own
/// value cell. The crash-point HI audit (verify::crash_residue with the
/// value word as the allowed region) must flag it — the second positive
/// control.
template <typename Env>
class LeakyCrashRegisterAlg {
 public:
  template <typename T>
  using OpT = typename Env::template Op<T>;

  LeakyCrashRegisterAlg(typename Env::Ctx ctx, std::uint32_t initial)
      // Two one-word arrays so each cell takes its own initial value AND
      // its own base-object id: the value cell registers first (snapshot
      // object id 0 — the crashed write's own words), the journal second
      // (id 1 — where the leak lands, outside the allowed region).
      : value_(Env::make_word_array(ctx, "R.val", 1, initial)),
        journal_(Env::make_word_array(ctx, "R.jrn", 1, 0)) {}

  OpT<std::uint32_t> apply(int /*pid*/, spec::RegisterSpec::Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kRead) return read();
    return write(op.value);
  }

  OpT<std::uint32_t> write(std::uint32_t value) {
    const std::uint64_t old = co_await Env::read_word(value_, 0);
    co_await Env::write_word(journal_, 0, old);  // the leak-to-be
    co_await Env::write_word(value_, 0, value);
    co_await Env::write_word(journal_, 0, 0);    // cleaned iff completed
    co_return 0u;
  }

  OpT<std::uint32_t> read() {
    const std::uint64_t seen = co_await Env::read_word(value_, 0);
    co_return static_cast<std::uint32_t>(seen);
  }

  /// Observer-side peeks (the rt stall rows read the leak directly).
  std::uint64_t peek_value() const { return Env::peek_word(value_, 0); }
  std::uint64_t peek_journal() const { return Env::peek_word(journal_, 0); }

 private:
  typename Env::WordArray value_;
  typename Env::WordArray journal_;
};

// ---------------------------------------------------------------------------
// Real-thread history recording.
// ---------------------------------------------------------------------------

/// Records per-thread operation intervals against one global seq_cst clock
/// and rebuilds a verify::History after the threads join. Thread-safe for
/// concurrent run() calls from distinct pids; build() only after joining.
template <typename OpT, typename RespT>
class RtHistoryRecorder {
 public:
  explicit RtHistoryRecorder(int num_threads) : records_(num_threads) {}

  /// Runs `fn()` on the calling thread, bracketing it with clock ticks.
  template <typename Fn>
  RespT run(int pid, const OpT& op, Fn&& fn) {
    const std::uint64_t invoked =
        clock_.fetch_add(1, std::memory_order_seq_cst);
    RespT resp = fn();
    const std::uint64_t responded =
        clock_.fetch_add(1, std::memory_order_seq_cst);
    records_[static_cast<std::size_t>(pid)].push_back(
        Record{op, std::move(resp), invoked, responded});
    return records_[static_cast<std::size_t>(pid)].back().resp;
  }

  /// Timestamp-ordered history of everything recorded so far. The relative
  /// order of invocations and responses follows the global clock, so the
  /// checker sees exactly the real-time precedence the clock witnessed.
  verify::History<OpT, RespT> build() const {
    struct Event {
      std::uint64_t time = 0;
      int pid = 0;
      std::size_t record = 0;
      bool is_response = false;
    };
    std::vector<Event> events;
    for (std::size_t pid = 0; pid < records_.size(); ++pid) {
      for (std::size_t i = 0; i < records_[pid].size(); ++i) {
        const Record& r = records_[pid][i];
        events.push_back(Event{r.invoked, static_cast<int>(pid), i, false});
        events.push_back(Event{r.responded, static_cast<int>(pid), i, true});
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.time < b.time; });

    verify::History<OpT, RespT> history;
    std::vector<std::vector<std::size_t>> index(records_.size());
    for (std::size_t pid = 0; pid < records_.size(); ++pid) {
      index[pid].resize(records_[pid].size());
    }
    for (const Event& e : events) {
      const Record& r = records_[static_cast<std::size_t>(e.pid)][e.record];
      if (!e.is_response) {
        index[static_cast<std::size_t>(e.pid)][e.record] =
            history.invoke(e.pid, r.op);
      } else {
        history.respond(index[static_cast<std::size_t>(e.pid)][e.record],
                        r.resp);
      }
    }
    return history;
  }

  std::size_t total_ops() const {
    std::size_t count = 0;
    for (const auto& per_pid : records_) count += per_pid.size();
    return count;
  }

 private:
  struct Record {
    OpT op{};
    RespT resp{};
    std::uint64_t invoked = 0;
    std::uint64_t responded = 0;
  };

  std::atomic<std::uint64_t> clock_{0};
  std::vector<std::vector<Record>> records_;
};

// ---------------------------------------------------------------------------
// Thread driving.
// ---------------------------------------------------------------------------

/// Runs `body(pid)` on `num_threads` real threads. Each worker arms the
/// yield injector with a stream derived from (seed, pid), waits at a
/// barrier so all workers enter their workload together (maximizing the
/// overlap window), runs the body, and disarms.
template <typename Body>
void run_fuzz_threads(int num_threads, std::uint64_t seed,
                      env::YieldPolicy policy, Body&& body) {
  std::barrier gate(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads));
  for (int pid = 0; pid < num_threads; ++pid) {
    workers.emplace_back([&, pid] {
      env::YieldInjector::arm(
          util::hash_combine(seed, static_cast<std::uint64_t>(pid) + 1),
          policy);
      gate.arrive_and_wait();
      body(pid);
      env::YieldInjector::disarm();
    });
  }
  for (auto& worker : workers) worker.join();
}

// ---------------------------------------------------------------------------
// Env knobs.
// ---------------------------------------------------------------------------

/// Integer env-var knob with a fallback (non-positive or unset → fallback).
inline int env_int_knob(const char* name, int fallback) {
  if (const char* raw = std::getenv(name)) {
    const int value = std::atoi(raw);
    if (value > 0) return value;
  }
  return fallback;
}

/// Iterations per object for the rt yield-fuzzer: HI_RT_FUZZ_ITERS
/// (default = the CI smoke budget; the nightly soak raises it).
inline int rt_fuzz_iters(int fallback) {
  return env_int_knob("HI_RT_FUZZ_ITERS", fallback);
}

// ---------------------------------------------------------------------------
// Stall injection + progress watchdog (the rt half of the crash-fault
// model: a stalled thread is indistinguishable from a crashed one for as
// long as it stays parked — docs/FAULTS.md).
// ---------------------------------------------------------------------------

/// Outcome of a stall-injection run.
struct StallRunResult {
  /// True iff the survivors stopped completing operations for a full
  /// watchdog deadline before finishing their workload — the rt analogue
  /// of the sim progress gate's exhausted step budget. Expected TRUE for
  /// the lock-based positive control, FALSE for every lock-free object.
  bool watchdog_fired = false;
  /// Threads that actually parked at the stall gate (a stall point beyond
  /// the body's primitive count never engages; tests use small windows).
  int stalled_engaged = 0;
};

/// Watchdog deadline for the stall rows: HI_RT_WATCHDOG_MS (default is
/// deliberately generous so loaded CI machines don't flake; the positive
/// control overrides it downward to keep the suite fast).
inline int rt_watchdog_ms(int fallback = 20000) {
  return env_int_knob("HI_RT_WATCHDOG_MS", fallback);
}

/// Like run_fuzz_threads, but pids < num_stalled additionally arm a stall:
/// the thread parks permanently (until released) at a pseudo-random
/// primitive boundary within its first `stall_window` points. Survivors run
/// `body(pid)` to completion, bumping `progress` as they go (the body must
/// increment it at least once per completed operation). The calling thread
/// acts as the watchdog: if `progress` stops advancing for a full deadline
/// before all survivors finish, the run is declared stuck. When the
/// survivors DO finish, `at_quiescence()` runs while the stalled threads
/// are still parked — the window in which the memory image is exactly what
/// a crash would have left — and only then is the gate released so every
/// thread (including a stalled lock holder, un-livelocking any spinning
/// survivors) can drain and join.
/// `deadline_ms` < 0 uses the HI_RT_WATCHDOG_MS default; the positive
/// control passes a short explicit deadline (every firing iteration waits
/// it out in full).
template <typename Body, typename AtQuiescence>
StallRunResult run_stall_threads(int num_threads, int num_stalled,
                                 std::uint64_t seed, env::YieldPolicy policy,
                                 std::uint64_t stall_window,
                                 std::atomic<std::uint64_t>& progress,
                                 Body&& body, AtQuiescence&& at_quiescence,
                                 int deadline_ms = -1) {
  StallRunResult result;
  env::StallGate gate;
  std::atomic<int> survivors_done{0};
  const int num_survivors = num_threads - num_stalled;

  std::barrier start(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_threads));
  for (int pid = 0; pid < num_threads; ++pid) {
    workers.emplace_back([&, pid] {
      env::YieldInjector::arm(
          util::hash_combine(seed, static_cast<std::uint64_t>(pid) + 1),
          policy);
      if (pid < num_stalled) {
        const std::uint64_t window = stall_window == 0 ? 1 : stall_window;
        env::YieldInjector::arm_stall(
            &gate,
            util::hash_combine(seed, static_cast<std::uint64_t>(pid) + 101) %
                window);
      }
      start.arrive_and_wait();
      body(pid);
      if (pid >= num_stalled) {
        survivors_done.fetch_add(1, std::memory_order_release);
      }
      env::YieldInjector::disarm();
    });
  }

  const auto deadline = std::chrono::milliseconds(
      deadline_ms < 0 ? rt_watchdog_ms() : deadline_ms);
  std::uint64_t last_progress = progress.load(std::memory_order_acquire);
  auto last_change = std::chrono::steady_clock::now();
  while (survivors_done.load(std::memory_order_acquire) < num_survivors) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::uint64_t now_progress =
        progress.load(std::memory_order_acquire);
    if (now_progress != last_progress) {
      last_progress = now_progress;
      last_change = std::chrono::steady_clock::now();
      continue;
    }
    if (std::chrono::steady_clock::now() - last_change > deadline) {
      result.watchdog_fired = true;
      break;
    }
  }

  if (!result.watchdog_fired) at_quiescence();
  result.stalled_engaged = gate.stalled.load(std::memory_order_acquire);
  gate.release_all();
  for (auto& worker : workers) worker.join();
  return result;
}

// ---------------------------------------------------------------------------
// Artifact dumping.
// ---------------------------------------------------------------------------

/// Persists `text` as $HI_TRACE_DUMP_DIR/<name>.txt so a scheduled CI run
/// can upload failing traces as artifacts. No-op when the var is unset
/// (local runs print the trace to the test log instead).
inline void dump_failing_trace(const std::string& name,
                               const std::string& text) {
  const char* dir = std::getenv("HI_TRACE_DUMP_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(std::filesystem::path(dir) / (name + ".txt"));
  out << text;
}

}  // namespace hi::testing
