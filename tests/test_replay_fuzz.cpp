// Random-schedule differential fuzzer (satellite of the schedule-replay
// equivalence suite): for every object, a deterministic seed sweep generates
// a random workload, records the schedule of a random-policy sim run
// (varying invocation/step weights per seed so the schedules range from
// near-sequential to deeply overlapped), and differentially replays the
// trace over the ReplayEnv hardware-atomics backend. A failing seed prints
// its ScheduleTrace as a TraceStep literal (sim/trace.h pretty()), ready to
// be pasted as a permanent regression test — one such persisted trace is
// replayed at the bottom of this file.
//
// Seed count: HI_REPLAY_FUZZ_SEEDS (default 64 — the CI smoke bound; raise
// locally for a deeper soak).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "algo/universal.h"
#include "baseline/leaky_universal.h"
#include "baseline/strawman_queue.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "core/hi_set.h"
#include "core/max_register.h"
#include "core/rllsc.h"
#include "core/sharded_set.h"
#include "core/universal.h"
#include "core/vidyasankar.h"
#include "core/wait_free_sim.h"
#include "fuzz_common.h"
#include "register_common.h"
#include "replay/replay_objects.h"
#include "replay_common.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "spec/counter_spec.h"
#include "spec/max_register_spec.h"
#include "spec/queue_spec.h"
#include "spec/register_spec.h"
#include "spec/rllsc_spec.h"
#include "spec/set_spec.h"
#include "util/rng.h"
#include "verify/replay.h"

namespace hi {
namespace {

using testing::kReaderPid;
using testing::kWriterPid;

std::uint64_t fuzz_seeds() {
  if (const char* env = std::getenv("HI_REPLAY_FUZZ_SEEDS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return 64;  // the CI smoke bound (≥ 64 seeds per object)
}

/// Record a random-policy run with seed-derived schedule shape, then replay
/// it differentially. Returns a failure description (with the offending
/// trace as a literal) or nullopt.
template <spec::SequentialSpec S, typename SimImpl, typename ReplayImpl,
          typename MakeSim, typename MakeReplay, typename MakeCompare>
std::optional<std::string> fuzz_once(
    const S& spec, int num_processes,
    const std::vector<std::vector<typename S::Op>>& workload,
    std::uint64_t seed, MakeSim make_sim, MakeReplay make_replay,
    MakeCompare make_compare) {
  sim::ScheduleTrace trace;
  {
    sim::Memory memory;
    sim::Scheduler sched(num_processes);
    SimImpl impl = make_sim(memory);
    sim::Runner<S, SimImpl> runner(spec, memory, sched, impl,
                                   [](const auto&) { return 0; });
    typename sim::Runner<S, SimImpl>::Options opt;
    opt.seed = seed;
    opt.start_weight = 1 + static_cast<unsigned>(seed % 3);
    opt.step_weight = 1 + static_cast<unsigned>(seed % 5);
    opt.trace = &trace;
    const auto result = runner.run(workload, opt);
    if (result.timed_out) return "recording run timed out";
  }

  sim::Memory sim_memory;
  sim::Scheduler sim_sched(num_processes);
  SimImpl sim_impl = make_sim(sim_memory);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(num_processes);
  ReplayImpl replay_impl = make_replay(replay_memory);

  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sched, sim_impl, replay_sched, replay_impl, workload, trace,
      make_compare(sim_memory, sim_impl, replay_memory, replay_impl));
  if (report.ok) return std::nullopt;
  const std::string failure = "seed " + std::to_string(seed) + ": " +
                              report.message + "\ntrace:\n" + trace.pretty();
  // Soak runs persist the failing trace for artifact upload
  // ($HI_TRACE_DUMP_DIR; no-op locally).
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  testing::dump_failing_trace(
      std::string("replay_fuzz_") + (info ? info->name() : "unknown") +
          "_seed" + std::to_string(seed),
      failure);
  return failure;
}

/// Word-for-word comparator factory for objects with bit-identical
/// per-backend encodings.
const auto word_compare = [](const sim::Memory& sim_memory, const auto&,
                             const sim::Memory& replay_memory, const auto&) {
  return verify::snapshot_word_compare(sim_memory, replay_memory);
};

// ---- registers ----

template <typename SimImpl, typename ReplayImpl>
void fuzz_register(std::uint32_t k) {
  const spec::RegisterSpec spec(k, 1);
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::register_workload(k, 5, 4, seed);
    const auto failure = fuzz_once<spec::RegisterSpec, SimImpl, ReplayImpl>(
        spec, 2, workload, seed,
        [&](sim::Memory& m) {
          return SimImpl(m, spec, kWriterPid, kReaderPid);
        },
        [&](sim::Memory& m) {
          return ReplayImpl(m, spec, kWriterPid, kReaderPid);
        },
        word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(ReplayFuzz, Vidyasankar) {
  fuzz_register<core::VidyasankarRegister, replay::VidyasankarRegister>(5);
}
TEST(ReplayFuzz, LockFreeHiRegister) {
  fuzz_register<core::LockFreeHiRegister, replay::LockFreeHiRegister>(5);
}
TEST(ReplayFuzz, WaitFreeHiRegister) {
  fuzz_register<core::WaitFreeHiRegister, replay::WaitFreeHiRegister>(5);
}

// Wait-free-sim combinator (algo/wait_free_sim.h): the recorded schedules
// overlap reads with writes, so some reads fail their fast attempt and run
// the full announce/enqueue/help protocol — every record word, ring slot
// and head/tail counter is part of the word-for-word comparison. The
// fast_limit=0 row forces EVERY read through the slow path, so each seed
// exercises the helped-completion CAS race between owner and writer.
TEST(ReplayFuzz, WaitFreeSimHiRegister) {
  fuzz_register<core::WaitFreeSimHiRegister, replay::WaitFreeSimHiRegister>(5);
}
TEST(ReplayFuzz, WaitFreeSimHiRegisterForcedSlowPath) {
  const std::uint32_t k = 4;
  const spec::RegisterSpec spec(k, 1);
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::register_workload(k, 5, 4, seed);
    const auto failure =
        fuzz_once<spec::RegisterSpec, core::WaitFreeSimHiRegister,
                  replay::WaitFreeSimHiRegister>(
            spec, 2, workload, seed,
            [&](sim::Memory& m) {
              return core::WaitFreeSimHiRegister(m, spec, kWriterPid,
                                                 kReaderPid, /*fast_limit=*/0);
            },
            [&](sim::Memory& m) {
              return replay::WaitFreeSimHiRegister(m, spec, kWriterPid,
                                                   kReaderPid,
                                                   /*fast_limit=*/0);
            },
            word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

// Packed-layout twins at K=70 (two packed words): random schedules cross
// the word boundary mid-scan and interleave fetch_or/fetch_and RMWs with
// word-load snapshots, differentially replayed over the hardware atomics.
TEST(ReplayFuzz, PackedVidyasankar) {
  fuzz_register<core::PackedVidyasankarRegister,
                replay::PackedVidyasankarRegister>(70);
}
TEST(ReplayFuzz, PackedLockFreeHiRegister) {
  fuzz_register<core::PackedLockFreeHiRegister,
                replay::PackedLockFreeHiRegister>(70);
}
TEST(ReplayFuzz, PackedWaitFreeHiRegister) {
  fuzz_register<core::PackedWaitFreeHiRegister,
                replay::PackedWaitFreeHiRegister>(70);
}

// ---- max register ----

TEST(ReplayFuzz, MaxRegister) {
  const std::uint32_t k = 8;
  const spec::MaxRegisterSpec spec(k, 1);
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::max_register_workload(k, 6, seed);
    const auto failure = fuzz_once<spec::MaxRegisterSpec, core::HiMaxRegister,
                                   replay::HiMaxRegister>(
        spec, 2, workload, seed,
        [&](sim::Memory& m) {
          return core::HiMaxRegister(m, spec, kWriterPid, kReaderPid);
        },
        [&](sim::Memory& m) {
          return replay::HiMaxRegister(m, spec, kWriterPid, kReaderPid);
        },
        word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(ReplayFuzz, PackedMaxRegister) {
  const std::uint32_t k = 70;  // two packed words
  const spec::MaxRegisterSpec spec(k, 1);
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::max_register_workload(k, 6, seed);
    const auto failure =
        fuzz_once<spec::MaxRegisterSpec, core::PackedHiMaxRegister,
                  replay::PackedHiMaxRegister>(
            spec, 2, workload, seed,
            [&](sim::Memory& m) {
              return core::PackedHiMaxRegister(m, spec, kWriterPid,
                                               kReaderPid);
            },
            [&](sim::Memory& m) {
              return replay::PackedHiMaxRegister(m, spec, kWriterPid,
                                                 kReaderPid);
            },
            word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

// ---- perfect-HI set ----

TEST(ReplayFuzz, HiSet) {
  const std::uint32_t domain = 10;
  const spec::SetSpec spec(domain);
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::set_workload(domain, 6, seed);
    const auto failure = fuzz_once<spec::SetSpec, core::HiSet, replay::HiSet>(
        spec, 2, workload, seed,
        [&](sim::Memory& m) { return core::HiSet(m, spec); },
        [&](sim::Memory& m) { return replay::HiSet(m, spec); }, word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(ReplayFuzz, PackedHiSet) {
  // Packed set: the whole domain is ONE atomic word; every insert/remove is
  // a fetch_or/fetch_and racing every other operation on the same cell.
  const std::uint32_t domain = 64;
  const spec::SetSpec spec(domain);
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::set_workload(domain, 6, seed);
    const auto failure =
        fuzz_once<spec::SetSpec, core::PackedHiSet, replay::PackedHiSet>(
            spec, 2, workload, seed,
            [&](sim::Memory& m) { return core::PackedHiSet(m, spec); },
            [&](sim::Memory& m) { return replay::PackedHiSet(m, spec); },
            word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(ReplayFuzz, ShardedHiSet) {
  // Sharded multi-word store under recorded random schedules: domain 64
  // over 4 striped shards (16 bins each), so the trace's object ids span
  // four independent packed words and the replay must route every recorded
  // fetch_or/fetch_and/load to the same shard word the simulator touched.
  const std::uint32_t domain = 64;
  const spec::SetSpec spec(domain);
  constexpr std::uint32_t kShards = 4;
  constexpr auto kPlacement = algo::ShardPlacement::kStriped;
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::set_workload(domain, 6, seed);
    const auto failure =
        fuzz_once<spec::SetSpec, core::ShardedHiSet, replay::ShardedHiSet>(
            spec, 2, workload, seed,
            [&](sim::Memory& m) {
              return core::ShardedHiSet(m, spec, kShards, kPlacement);
            },
            [&](sim::Memory& m) {
              return replay::ShardedHiSet(m, spec, kShards, kPlacement);
            },
            word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

// ---- R-LLSC (Algorithm 6) ----

using testing::ReplayRllscHarness;
using testing::SimRllscHarness;

TEST(ReplayFuzz, Rllsc) {
  const int n = 3;
  const spec::RllscSpec spec(100, n, 0);
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::rllsc_workload(n, 5, seed);
    const auto failure =
        fuzz_once<spec::RllscSpec, SimRllscHarness, ReplayRllscHarness>(
            spec, n, workload, seed,
            [&](sim::Memory& m) { return SimRllscHarness(m, 0); },
            [&](sim::Memory& m) { return ReplayRllscHarness(m, 0); },
            word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

// ---- universal constructions (word-exact — every backend packs head and
// announce cells through Word64HeadCodec, with the sim adapter keeping the
// codec word in lo and hi ≡ 0, so verify::snapshot_word_compare applies;
// the layout is pinned by tests/test_head_codec.cpp) ----

/// Shared body for the Algorithm 5 replay-fuzz rows: ≥64 seeds (see
/// fuzz_seeds) of random counter workloads, per-step word-exact memory
/// comparison, in plain or flat-combining mode.
void fuzz_universal(bool combine) {
  const spec::CounterSpec spec(1u << 20, 10);
  const int n = 3;
  using SimUni = core::Universal<spec::CounterSpec, core::CasRllsc>;
  using ReplayUni = replay::Universal<spec::CounterSpec>;
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::counter_workload(n, 3, seed);
    const auto failure = fuzz_once<spec::CounterSpec, SimUni, ReplayUni>(
        spec, n, workload, seed,
        [&](sim::Memory& m) {
          return SimUni(m, spec, n, /*clear_contexts=*/true, combine);
        },
        [&](sim::Memory& m) {
          return ReplayUni(m, spec, n, /*clear_contexts=*/true, combine);
        },
        word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(ReplayFuzz, Universal) { fuzz_universal(/*combine=*/false); }
TEST(ReplayFuzz, UniversalCombine) { fuzz_universal(/*combine=*/true); }

TEST(ReplayFuzz, LeakyUniversal) {
  const spec::CounterSpec spec(1u << 20, 10);
  const int n = 3;
  using SimLeaky = baseline::LeakyUniversal<spec::CounterSpec>;
  using ReplayLeaky = replay::LeakyUniversal<spec::CounterSpec>;
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    const auto workload = testing::counter_workload(n, 3, seed);
    const auto failure = fuzz_once<spec::CounterSpec, SimLeaky, ReplayLeaky>(
        spec, n, workload, seed,
        [&](sim::Memory& m) { return SimLeaky(m, spec, n); },
        [&](sim::Memory& m) { return ReplayLeaky(m, spec, n); },
        [n](const sim::Memory&, const SimLeaky& sim_obj, const sim::Memory&,
            const ReplayLeaky& replay_obj) {
          return [&sim_obj, &replay_obj, n]() -> std::optional<std::string> {
            if (sim_obj.head_state_encoded() !=
                    replay_obj.head_state_encoded() ||
                sim_obj.version() != replay_obj.version()) {
              return std::string("head/version diverges");
            }
            for (int i = 0; i < n; ++i) {
              if (sim_obj.peek_announce(i) != replay_obj.peek_announce(i) ||
                  sim_obj.peek_result(i) != replay_obj.peek_result(i)) {
                return "tables diverge at pid " + std::to_string(i);
              }
            }
            return std::nullopt;
          };
        });
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

// ---- strawman queue (Theorem 20's candidate) ----

TEST(ReplayFuzz, StrawmanQueue) {
  const spec::QueueSpec spec(4, 4);
  for (std::uint64_t seed = 1; seed <= fuzz_seeds(); ++seed) {
    util::Xoshiro256 rng(seed);
    std::vector<std::vector<spec::QueueSpec::Op>> workload(2);
    for (int i = 0; i < 6; ++i) {
      workload[kWriterPid].push_back(
          rng.chance(2, 3) ? spec::QueueSpec::enqueue(
                                 static_cast<std::uint8_t>(rng.next_in(1, 4)))
                           : spec::QueueSpec::dequeue());
    }
    workload[kReaderPid].assign(3, spec::QueueSpec::peek());
    const auto failure = fuzz_once<spec::QueueSpec, baseline::StrawmanQueue,
                                   replay::StrawmanQueue>(
        spec, 2, workload, seed,
        [&](sim::Memory& m) {
          return baseline::StrawmanQueue(m, spec, kWriterPid, kReaderPid);
        },
        [&](sim::Memory& m) {
          return replay::StrawmanQueue(m, spec, kWriterPid, kReaderPid);
        },
        word_compare);
    ASSERT_FALSE(failure.has_value()) << *failure;
  }
}

// ---- Persisted fuzzer trace (the counterexample-as-regression format a
// failing seed prints): lock-free register, K=5, recorded from seed 6 —
// reads overlap three of the five writes, so the replay covers TryRead
// retries chasing the moving 1 across the atomic cells, plus a read that
// scans up the whole array and confirms downward (steps 39–48). ----

TEST(ReplayFuzz, PersistedOverlappingReadTraceReplays) {
  const spec::RegisterSpec spec(5, 1);
  std::vector<std::vector<spec::RegisterSpec::Op>> workload(2);
  workload[kWriterPid] = {
      spec::RegisterSpec::write(2), spec::RegisterSpec::write(4),
      spec::RegisterSpec::write(1), spec::RegisterSpec::write(5),
      spec::RegisterSpec::write(3)};
  workload[kReaderPid].assign(4, spec::RegisterSpec::read());
  const sim::ScheduleTrace trace{{
      {1, true}, {1, false, 0, "read"}, {0, true}, {0, false, 1, "write"},
      {0, false, 0, "write"}, {0, false, 2, "write"}, {1, true},
      {1, false, 0, "read"}, {0, false, 3, "write"}, {1, false, 1, "read"},
      {0, false, 4, "write"}, {1, false, 0, "read"}, {0, true},
      {0, false, 3, "write"}, {0, false, 2, "write"}, {1, true},
      {1, false, 0, "read"}, {0, false, 1, "write"}, {1, false, 1, "read"},
      {0, false, 0, "write"}, {0, false, 4, "write"}, {0, true},
      {1, false, 2, "read"}, {0, false, 0, "write"}, {0, false, 1, "write"},
      {0, false, 2, "write"}, {1, false, 3, "read"}, {0, false, 3, "write"},
      {0, false, 4, "write"}, {0, true}, {1, false, 2, "read"},
      {0, false, 4, "write"}, {0, false, 3, "write"}, {1, false, 1, "read"},
      {0, false, 2, "write"}, {1, false, 0, "read"}, {0, false, 1, "write"},
      {0, false, 0, "write"}, {1, true}, {1, false, 0, "read"},
      {1, false, 1, "read"}, {1, false, 2, "read"}, {1, false, 3, "read"},
      {1, false, 4, "read"}, {1, false, 3, "read"}, {1, false, 2, "read"},
      {1, false, 1, "read"}, {1, false, 0, "read"}, {0, true},
      {0, false, 2, "write"}, {0, false, 1, "write"}, {0, false, 0, "write"},
      {0, false, 3, "write"}, {0, false, 4, "write"},
  }};

  sim::Memory sim_memory;
  sim::Scheduler sim_sched(2);
  core::LockFreeHiRegister sim_impl(sim_memory, spec, kWriterPid, kReaderPid);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::LockFreeHiRegister replay_impl(replay_memory, spec, kWriterPid,
                                         kReaderPid);
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sched, sim_impl, replay_sched, replay_impl, workload, trace,
      verify::snapshot_word_compare(sim_memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.responses_compared, 9u);  // all 5 writes + all 4 reads
  // State-quiescent HI on the hardware cells: can(3) = e_3 after the run.
  EXPECT_EQ(replay_memory.snapshot().words,
            (std::vector<std::uint64_t>{0, 0, 1, 0, 0}));
}

}  // namespace
}  // namespace hi
