// Algorithm 6 (lock-free perfect-HI R-LLSC from atomic CAS) — experiment E10
// validates Theorem 28: linearizability of concurrent LL/VL/SC/RL/Load/Store
// histories against the R-LLSC sequential spec, perfect history independence
// (memory is exactly the encoded abstract state after every step; no residue
// exists anywhere), and the progress properties of Lemmas 29/30.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/rllsc.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/rllsc_spec.h"
#include "util/rng.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using core::CasRllsc;
using core::NativeRllsc;
using core::RllscValue;
using spec::RllscSpec;

/// Adapter exposing one R-LLSC cell as an abstract object for the harness.
template <typename Cell>
class RllscObject {
 public:
  RllscObject(sim::Memory& memory, std::uint16_t initial)
      : cell_(memory, "X", RllscValue{initial, 0}) {}

  sim::OpTask<RllscSpec::Resp> apply(int pid, RllscSpec::Op op) {
    assert(op.pid == pid);
    (void)pid;
    return run(op);
  }

  Cell& cell() { return cell_; }

 private:
  sim::OpTask<RllscSpec::Resp> run(RllscSpec::Op op) {
    switch (op.kind) {
      case RllscSpec::Kind::kLL: {
        const RllscValue v = co_await cell_.ll();
        co_return RllscSpec::Resp{static_cast<std::uint32_t>(v.lo), true};
      }
      case RllscSpec::Kind::kVL: {
        const bool linked = co_await cell_.vl();
        co_return RllscSpec::Resp{0, linked};
      }
      case RllscSpec::Kind::kSC: {
        const bool done = co_await cell_.sc(RllscValue{op.arg, 0});
        co_return RllscSpec::Resp{0, done};
      }
      case RllscSpec::Kind::kRL: {
        const bool done = co_await cell_.rl();
        co_return RllscSpec::Resp{0, done};
      }
      case RllscSpec::Kind::kLoad: {
        const RllscValue v = co_await cell_.load();
        co_return RllscSpec::Resp{static_cast<std::uint32_t>(v.lo), true};
      }
      case RllscSpec::Kind::kStore: {
        const bool done = co_await cell_.store(RllscValue{op.arg, 0});
        co_return RllscSpec::Resp{0, done};
      }
    }
    co_return RllscSpec::Resp{};  // unreachable
  }

  Cell cell_;
};

std::vector<std::vector<RllscSpec::Op>> rllsc_workload(int num_procs,
                                                       std::size_t ops_each,
                                                       std::uint16_t domain,
                                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<RllscSpec::Op>> work(num_procs);
  for (int pid = 0; pid < num_procs; ++pid) {
    for (std::size_t i = 0; i < ops_each; ++i) {
      const auto arg = static_cast<std::uint16_t>(rng.next_below(domain));
      switch (rng.next_below(6)) {
        case 0: work[pid].push_back(RllscSpec::ll(pid)); break;
        case 1: work[pid].push_back(RllscSpec::vl(pid)); break;
        case 2: work[pid].push_back(RllscSpec::sc(pid, arg)); break;
        case 3: work[pid].push_back(RllscSpec::rl(pid)); break;
        case 4: work[pid].push_back(RllscSpec::load(pid)); break;
        default: work[pid].push_back(RllscSpec::store(pid, arg)); break;
      }
    }
  }
  return work;
}

template <typename Cell>
class RllscTyped : public ::testing::Test {};
using CellTypes = ::testing::Types<CasRllsc, NativeRllsc>;
TYPED_TEST_SUITE(RllscTyped, CellTypes);

TYPED_TEST(RllscTyped, SoloSemantics) {
  sim::Memory memory;
  sim::Scheduler sched(2);
  RllscObject<TypeParam> object(memory, 5);

  auto resp = sim::run_solo(sched, 0, object.apply(0, RllscSpec::ll(0)));
  EXPECT_EQ(resp.value, 5u);
  resp = sim::run_solo(sched, 0, object.apply(0, RllscSpec::vl(0)));
  EXPECT_TRUE(resp.flag);
  resp = sim::run_solo(sched, 1, object.apply(1, RllscSpec::vl(1)));
  EXPECT_FALSE(resp.flag);
  resp = sim::run_solo(sched, 0, object.apply(0, RllscSpec::sc(0, 9)));
  EXPECT_TRUE(resp.flag);
  resp = sim::run_solo(sched, 0, object.apply(0, RllscSpec::sc(0, 7)));
  EXPECT_FALSE(resp.flag) << "second SC without LL must fail";
  resp = sim::run_solo(sched, 1, object.apply(1, RllscSpec::load(1)));
  EXPECT_EQ(resp.value, 9u);
}

TYPED_TEST(RllscTyped, RlMakesScFail) {
  sim::Memory memory;
  sim::Scheduler sched(1);
  RllscObject<TypeParam> object(memory, 0);
  (void)sim::run_solo(sched, 0, object.apply(0, RllscSpec::ll(0)));
  (void)sim::run_solo(sched, 0, object.apply(0, RllscSpec::rl(0)));
  const auto resp = sim::run_solo(sched, 0, object.apply(0, RllscSpec::sc(0, 3)));
  EXPECT_FALSE(resp.flag);
}

TYPED_TEST(RllscTyped, StoreInvalidatesAllLinks) {
  sim::Memory memory;
  sim::Scheduler sched(3);
  RllscObject<TypeParam> object(memory, 0);
  (void)sim::run_solo(sched, 0, object.apply(0, RllscSpec::ll(0)));
  (void)sim::run_solo(sched, 1, object.apply(1, RllscSpec::ll(1)));
  (void)sim::run_solo(sched, 2, object.apply(2, RllscSpec::store(2, 4)));
  EXPECT_FALSE(
      sim::run_solo(sched, 0, object.apply(0, RllscSpec::sc(0, 5))).flag);
  EXPECT_FALSE(
      sim::run_solo(sched, 1, object.apply(1, RllscSpec::sc(1, 6))).flag);
  EXPECT_EQ(sim::run_solo(sched, 0, object.apply(0, RllscSpec::load(0))).value,
            4u);
}

class RllscRandom
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RllscRandom, CasBackedLinearizable) {
  const auto [n, seed] = GetParam();
  const RllscSpec spec(16, n);
  sim::Memory memory;
  sim::Scheduler sched(n);
  RllscObject<CasRllsc> object(memory, 0);

  sim::Runner<RllscSpec, RllscObject<CasRllsc>> runner(
      spec, memory, sched, object, [&](const auto&) {
        const RllscValue v = object.cell().peek_value();
        return spec.encode_state(
            RllscSpec::State{v.lo, static_cast<std::uint16_t>(
                                       object.cell().peek_context())});
      });
  auto result = runner.run(rllsc_workload(n, 15, 16, seed), {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  ASSERT_EQ(result.history.num_pending(), 0u);

  const auto lin = verify::check_linearizable(spec, result.history);
  EXPECT_TRUE(lin.ok()) << "n=" << n << " seed=" << seed;
}

TEST_P(RllscRandom, CasBackedPerfectHI_MemoryIsExactlyTheState) {
  // Perfect HI (Theorem 28): after *every* step of *any* execution the
  // memory representation is precisely the encoding of the R-LLSC abstract
  // state — one CAS word holding (val, context), nothing else. We step a
  // random schedule manually and check the identity at every configuration.
  const auto [n, seed] = GetParam();
  const RllscSpec spec(16, n);
  sim::Memory memory;
  sim::Scheduler sched(n);
  RllscObject<CasRllsc> object(memory, 0);

  auto work = rllsc_workload(n, 12, 16, seed);
  std::vector<std::optional<sim::OpTask<RllscSpec::Resp>>> tasks(n);
  std::vector<std::size_t> next(n, 0);
  util::Xoshiro256 rng(seed ^ 0xabcdefULL);

  for (;;) {
    std::vector<int> enabled;
    for (int pid = 0; pid < n; ++pid) {
      if (tasks[pid].has_value()) {
        if (sched.runnable(pid)) enabled.push_back(pid);
      } else if (next[pid] < work[pid].size()) {
        enabled.push_back(pid);
      }
    }
    if (enabled.empty()) break;
    const int pid = enabled[rng.next_below(enabled.size())];
    if (!tasks[pid].has_value()) {
      tasks[pid].emplace(object.apply(pid, work[pid][next[pid]++]));
      sched.start(pid, *tasks[pid]);
    } else {
      sched.step(pid);
    }
    if (tasks[pid].has_value() && sched.op_finished(pid)) {
      sched.finish(pid);
      tasks[pid].reset();
    }

    // The invariant of Lemma 40: mem(C) == encode(state(C)).
    const auto snap = memory.snapshot();
    ASSERT_EQ(snap.words.size(), 3u);  // one CAS word, nothing else
    const RllscValue v = object.cell().peek_value();
    EXPECT_EQ(snap.words[0], v.lo);
    EXPECT_EQ(snap.words[1], v.hi);
    EXPECT_EQ(snap.words[2], object.cell().peek_context());
  }
}

TEST_P(RllscRandom, SameStateSameMemoryAcrossExecutions) {
  // Definition 4 across executions: collect (state, memory) at
  // state-quiescent points of many runs; any two with equal abstract state
  // must have identical memory.
  const auto [n, seed] = GetParam();
  const RllscSpec spec(8, n);
  verify::HiChecker checker;
  for (std::uint64_t sub = 0; sub < 10; ++sub) {
    sim::Memory memory;
    sim::Scheduler sched(n);
    RllscObject<CasRllsc> object(memory, 0);
    sim::Runner<RllscSpec, RllscObject<CasRllsc>> runner(
        spec, memory, sched, object, [&](const auto&) {
          const RllscValue v = object.cell().peek_value();
          return spec.encode_state(
              RllscSpec::State{v.lo, static_cast<std::uint16_t>(
                                         object.cell().peek_context())});
        });
    auto result = runner.run(rllsc_workload(n, 10, 8, seed * 100 + sub),
                             {.seed = seed * 100 + sub});
    ASSERT_FALSE(result.timed_out);
    for (const auto& obs : result.state_quiescent) {
      checker.observe(obs.state, obs.mem, "sub=" + std::to_string(sub));
    }
  }
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
  EXPECT_GT(checker.num_observations(), 20u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RllscRandom,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u)));

TEST(RllscProgress, StoreUnblocksPendingScAndRl) {
  // Lemma 30: a pending SC or RL returns within finitely many of its own
  // steps once a context-resetting operation completes. We park p0 inside an
  // SC whose CAS keeps failing (p1 keeps LL-ing), then let p1 Store and
  // observe p0's SC finish (with failure) in a bounded number of steps.
  sim::Memory memory;
  sim::Scheduler sched(2);
  RllscObject<CasRllsc> object(memory, 0);

  (void)sim::run_solo(sched, 0, object.apply(0, RllscSpec::ll(0)));

  sim::OpTask<RllscSpec::Resp> sc_task = object.apply(0, RllscSpec::sc(0, 3));
  sched.start(0, sc_task);
  sched.step(0);  // p0: Read(X) — observes itself linked

  // p1 interferes: toggling its own context bit between p0's CAS attempts
  // changes the word exactly once per round, so p0's CAS always fails. With
  // the failure-word CAS, each failed retry is exactly ONE step — the failed
  // CAS reports the word it observed and p0 retries against that, with no
  // separate re-read.
  bool p1_linked = false;
  for (int i = 0; i < 5; ++i) {
    (void)sim::run_solo(sched, 1,
                        object.apply(1, p1_linked ? RllscSpec::rl(1)
                                                  : RllscSpec::ll(1)));
    p1_linked = !p1_linked;
    sched.step(0);  // p0: CAS fails, observing the toggled word
    ASSERT_FALSE(sched.op_finished(0)) << "SC should still be retrying";
  }

  // Context reset: p0 is no longer linked, so its SC must fail-fast — one
  // final failing CAS whose observed word shows the cleared context.
  (void)sim::run_solo(sched, 1, object.apply(1, RllscSpec::store(1, 7)));
  int steps = 0;
  while (!sched.op_finished(0) && steps < 2) {
    sched.step(0);
    ++steps;
  }
  EXPECT_EQ(steps, 1) << "the failing CAS itself reveals the reset context";
  ASSERT_TRUE(sched.op_finished(0));
  sched.finish(0);
  EXPECT_FALSE(sc_task.take_result().flag);
  EXPECT_EQ(sim::run_solo(sched, 1, object.apply(1, RllscSpec::load(1))).value,
            7u);
}

TEST(RllscProgress, LlIsLockFreeNotWaitFree) {
  // An LL can be starved by a stream of successful SCs — but each failure
  // coincides with system-wide progress (someone's SC succeeded). This is
  // the lock-freedom caveat that Algorithm 5's ‖-interleaving exists to
  // tolerate.
  sim::Memory memory;
  sim::Scheduler sched(2);
  RllscObject<CasRllsc> object(memory, 0);

  sim::OpTask<RllscSpec::Resp> ll_task = object.apply(0, RllscSpec::ll(0));
  sched.start(0, ll_task);
  sched.step(0);  // p0: Read(X)

  int successful_scs = 0;
  for (int round = 0; round < 20; ++round) {
    // p1 completes LL + SC writing a *fresh* value (cycling 1..7 never
    // repeats consecutively and never equals the initial 0), so the word
    // always differs from p0's stale expectation. Each starved retry is one
    // step: the failed CAS observes the fresh word and retries against it.
    (void)sim::run_solo(sched, 1, object.apply(1, RllscSpec::ll(1)));
    const auto sc = sim::run_solo(
        sched, 1,
        object.apply(1, RllscSpec::sc(
                            1, static_cast<std::uint16_t>(round % 7 + 1))));
    ASSERT_TRUE(sc.flag);
    ++successful_scs;
    sched.step(0);  // p0: CAS fails, observing p1's freshly installed word
    ASSERT_FALSE(sched.op_finished(0));
  }
  EXPECT_EQ(successful_scs, 20);

  // Solo, the LL completes immediately: the last failure's observed word is
  // still current, so the very next CAS succeeds.
  sched.step(0);
  ASSERT_TRUE(sched.op_finished(0));
  sched.finish(0);
}

}  // namespace
}  // namespace hi
