// Self-tests for the verification layer: the linearizability checker must
// accept exactly the linearizable histories (including the subtle pending-op
// completions) and the HI checker must flag exactly the canonical-map
// conflicts — the whole reproduction rests on these two tools being right.
#include <gtest/gtest.h>

#include "sim/memory.h"
#include "spec/queue_spec.h"
#include "spec/register_spec.h"
#include "verify/hi_checker.h"
#include "verify/history.h"
#include "verify/linearizability.h"

namespace hi::verify {
namespace {

using spec::QueueSpec;
using spec::RegisterSpec;

using RegHist = History<RegisterSpec::Op, RegisterSpec::Resp>;

TEST(History, EventOrderingAndPending) {
  RegHist h;
  const auto a = h.invoke(0, RegisterSpec::write(2));
  const auto b = h.invoke(1, RegisterSpec::read());
  h.respond(a, 0);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.num_pending(), 1u);
  EXPECT_TRUE(h[a].completed());
  EXPECT_FALSE(h[b].completed());
  EXPECT_LT(h[a].invoked_at, h[b].invoked_at);
  EXPECT_FALSE(h[a].precedes(h[b]));  // they overlap
}

TEST(Linearizability, SequentialHistoryAccepted) {
  const RegisterSpec spec(5, 1);
  RegHist h;
  auto w = h.invoke(0, RegisterSpec::write(4));
  h.respond(w, 0);
  auto r = h.invoke(1, RegisterSpec::read());
  h.respond(r, 4);
  EXPECT_TRUE(check_linearizable(spec, h).ok());
}

TEST(Linearizability, StaleReadRejected) {
  const RegisterSpec spec(5, 1);
  RegHist h;
  auto w = h.invoke(0, RegisterSpec::write(4));
  h.respond(w, 0);
  auto r = h.invoke(1, RegisterSpec::read());
  h.respond(r, 1);  // returns the old value AFTER the write completed
  const auto result = check_linearizable(spec, h);
  EXPECT_EQ(result.verdict, Verdict::kNotLinearizable);
}

TEST(Linearizability, OverlappingWriteReadEitherOrder) {
  const RegisterSpec spec(5, 1);
  // Write(4) overlaps Read; the read may return 1 (before) or 4 (after).
  for (std::uint32_t read_value : {1u, 4u}) {
    RegHist h;
    auto w = h.invoke(0, RegisterSpec::write(4));
    auto r = h.invoke(1, RegisterSpec::read());
    h.respond(r, read_value);
    h.respond(w, 0);
    EXPECT_TRUE(check_linearizable(spec, h).ok()) << read_value;
  }
  // But never a third value.
  RegHist h;
  auto w = h.invoke(0, RegisterSpec::write(4));
  auto r = h.invoke(1, RegisterSpec::read());
  h.respond(r, 3);
  h.respond(w, 0);
  EXPECT_EQ(check_linearizable(spec, h).verdict, Verdict::kNotLinearizable);
}

TEST(Linearizability, PendingOpMayTakeEffect) {
  const RegisterSpec spec(5, 1);
  // Write(4) is invoked but never responds; a later read of 4 is legal
  // (the write took effect), and a later read of 1 is also legal (it did
  // not — completions may exclude it).
  for (std::uint32_t read_value : {1u, 4u}) {
    RegHist h;
    (void)h.invoke(0, RegisterSpec::write(4));  // pending forever
    auto r = h.invoke(1, RegisterSpec::read());
    h.respond(r, read_value);
    EXPECT_TRUE(check_linearizable(spec, h).ok()) << read_value;
  }
}

TEST(Linearizability, PendingOpCannotBeHalfApplied) {
  const RegisterSpec spec(5, 1);
  // Two sequential reads around nothing else: a pending Write(4) cannot be
  // applied *between* them in one order and unapplied in the other: read 4
  // then read 1 is NOT linearizable.
  RegHist h;
  (void)h.invoke(0, RegisterSpec::write(4));
  auto r1 = h.invoke(1, RegisterSpec::read());
  h.respond(r1, 4);
  auto r2 = h.invoke(1, RegisterSpec::read());
  h.respond(r2, 1);
  EXPECT_EQ(check_linearizable(spec, h).verdict, Verdict::kNotLinearizable);
}

TEST(Linearizability, RealTimeOrderRespected) {
  const RegisterSpec spec(5, 1);
  // w1 completes before w2 starts; a read after w2 must not see w1... but a
  // read overlapping both may. Non-overlapping case:
  RegHist h;
  auto w1 = h.invoke(0, RegisterSpec::write(2));
  h.respond(w1, 0);
  auto w2 = h.invoke(0, RegisterSpec::write(3));
  h.respond(w2, 0);
  auto r = h.invoke(1, RegisterSpec::read());
  h.respond(r, 2);
  EXPECT_EQ(check_linearizable(spec, h).verdict, Verdict::kNotLinearizable);
}

TEST(Linearizability, FinalStateConstraint) {
  const RegisterSpec spec(5, 1);
  RegHist h;
  auto w1 = h.invoke(0, RegisterSpec::write(2));
  auto w2 = h.invoke(1, RegisterSpec::write(3));
  h.respond(w1, 0);
  h.respond(w2, 0);
  // Overlapping writes: both final states are feasible...
  LinearizabilityChecker<RegisterSpec> checker(spec);
  EXPECT_TRUE(checker.check(h, RegisterSpec::State{2}).ok());
  EXPECT_TRUE(checker.check(h, RegisterSpec::State{3}).ok());
  // ...but not an unrelated one.
  EXPECT_FALSE(checker.check(h, RegisterSpec::State{5}).ok());
}

TEST(Linearizability, QueueFifoViolationDetected) {
  const QueueSpec spec(5);
  using QHist = History<QueueSpec::Op, QueueSpec::Resp>;
  QHist good;
  auto e1 = good.invoke(0, QueueSpec::enqueue(1));
  good.respond(e1, QueueSpec::kEmptyResp);
  auto e2 = good.invoke(0, QueueSpec::enqueue(2));
  good.respond(e2, QueueSpec::kEmptyResp);
  auto d1 = good.invoke(1, QueueSpec::dequeue());
  good.respond(d1, 1);
  EXPECT_TRUE(check_linearizable(spec, good).ok());

  QHist bad;
  e1 = bad.invoke(0, QueueSpec::enqueue(1));
  bad.respond(e1, QueueSpec::kEmptyResp);
  e2 = bad.invoke(0, QueueSpec::enqueue(2));
  bad.respond(e2, QueueSpec::kEmptyResp);
  d1 = bad.invoke(1, QueueSpec::dequeue());
  bad.respond(d1, 2);  // LIFO! must be rejected
  EXPECT_EQ(check_linearizable(spec, bad).verdict, Verdict::kNotLinearizable);
}

TEST(Linearizability, BudgetExhaustionReportsInconclusive) {
  const RegisterSpec spec(8, 1);
  RegHist h;
  // A wide batch of overlapping writes: large search space.
  std::vector<std::size_t> idx;
  for (int i = 0; i < 10; ++i) {
    idx.push_back(h.invoke(i % 4, RegisterSpec::write(1 + (i % 8))));
  }
  for (auto i : idx) h.respond(i, 0);
  LinearizabilityChecker<RegisterSpec> checker(spec, /*node_budget=*/3);
  const auto result = checker.check(h);
  EXPECT_EQ(result.verdict, Verdict::kInconclusive);
}

TEST(Linearizability, WitnessIsAValidLinearization) {
  const RegisterSpec spec(5, 1);
  RegHist h;
  auto w = h.invoke(0, RegisterSpec::write(4));
  auto r = h.invoke(1, RegisterSpec::read());
  h.respond(r, 4);
  h.respond(w, 0);
  const auto result = check_linearizable(spec, h);
  ASSERT_TRUE(result.ok());
  // Replaying the witness order must reproduce the recorded responses.
  RegisterSpec::State state = spec.initial_state();
  for (std::size_t i : result.witness) {
    auto [next, resp] = spec.apply(state, h[i].op);
    if (h[i].completed()) {
      EXPECT_EQ(resp, h[i].resp);
    }
    state = next;
  }
}

TEST(HiChecker, ConsistentObservations) {
  HiChecker checker;
  sim::MemorySnapshot snap_a{{1, 0, 0}};
  sim::MemorySnapshot snap_b{{0, 1, 0}};
  EXPECT_TRUE(checker.observe(1, snap_a, "x"));
  EXPECT_TRUE(checker.observe(2, snap_b, "y"));
  EXPECT_TRUE(checker.observe(1, snap_a, "z"));
  EXPECT_TRUE(checker.consistent());
  EXPECT_EQ(checker.num_states(), 2u);
  EXPECT_EQ(checker.num_observations(), 3u);
}

TEST(HiChecker, ConflictReported) {
  HiChecker checker;
  EXPECT_TRUE(checker.observe(1, sim::MemorySnapshot{{1, 0}}, "first"));
  EXPECT_FALSE(checker.observe(1, sim::MemorySnapshot{{1, 1}}, "second"));
  ASSERT_TRUE(checker.violation().has_value());
  EXPECT_EQ(checker.violation()->state, 1u);
  EXPECT_EQ(checker.violation()->first_seen, "first");
  EXPECT_EQ(checker.violation()->where, "second");
  // Only the first violation is retained; the checker stays usable.
  EXPECT_FALSE(checker.observe(1, sim::MemorySnapshot{{0, 0}}, "third"));
  EXPECT_EQ(checker.violation()->where, "second");
}

TEST(HiChecker, CanonicalLookup) {
  HiChecker checker;
  checker.set_canonical(7, sim::MemorySnapshot{{4, 2}});
  ASSERT_NE(checker.canonical(7), nullptr);
  EXPECT_EQ(checker.canonical(7)->words, (std::vector<std::uint64_t>{4, 2}));
  EXPECT_EQ(checker.canonical(8), nullptr);
}

}  // namespace
}  // namespace hi::verify
