// Allocation discipline of the RtEnv hot paths (docs/ENV.md "frame arena",
// docs/PERF.md "allocs_per_op").
//
// Two layers of coverage:
//   * FrameArena unit tests — bucket recycling, oversize pass-through,
//     drain, and the bookkeeping invariants the churn test leans on;
//   * steady-state contracts — after a short warmup, every rt object
//     performs EXACTLY ZERO heap allocations per operation (the probe
//     below replaces global operator new for this binary, so the counters
//     see every allocation including the arena's own slab minting), plus a
//     multi-thread churn test asserting the per-thread arenas neither leak
//     slabs nor double-park them; under TSan (this file carries the rt
//     ctest label) the same test doubles as a race check on the
//     thread-locality of the arena.
#include "util/alloc_probe.h"  // FIRST: replaces global operator new/delete

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "env/rt_env.h"
#include "replay/replay_objects.h"
#include "rt/baselines_rt.h"
#include "rt/hi_set_rt.h"
#include "rt/max_register_rt.h"
#include "rt/registers_rt.h"
#include "rt/rllsc_rt.h"
#include "rt/sharded_set_rt.h"
#include "rt/universal_rt.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/counter_spec.h"
#include "spec/register_spec.h"

namespace hi {
namespace {

// ---- FrameArena unit tests (direct allocate/deallocate, no coroutines) ----

TEST(FrameArena, PrewarmedBucketsNeverTouchTheHeap) {
  // A fresh thread gets a fresh arena — the main thread's arena may have
  // been drained or churned by other tests (order independence).
  std::atomic<int> violations{0};
  std::thread probe([&violations] {
    env::FrameArena& arena = env::FrameArena::local();
    const auto before = arena.stats();
    // Construction parked kPrewarmDepth slabs in every prewarmed bucket,
    // so even the FIRST allocation of a prewarmed size is a reuse hit.
    const util::AllocTally tally;
    void* slab = arena.allocate(256);
    if (slab == nullptr) ++violations;
    arena.deallocate(slab, 256);
    if (tally.allocs() != 0) ++violations;
    const auto after = arena.stats();
    if (after.fresh_slabs != before.fresh_slabs) ++violations;
    if (after.reuse_hits != before.reuse_hits + 1) ++violations;
  });
  probe.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(FrameArena, RecyclesSameBucket) {
  env::FrameArena& arena = env::FrameArena::local();
  const auto before = arena.stats();

  // 2048 bytes lands beyond the prewarmed buckets: the first allocation
  // mints a fresh slab, and a same-bucket re-request must pop it back.
  void* first = arena.allocate(2048);
  ASSERT_NE(first, nullptr);
  arena.deallocate(first, 2048);
  void* second = arena.allocate(2000);  // same bucket: (1984, 2048]
  EXPECT_EQ(second, first);
  arena.deallocate(second, 2000);

  const auto after = arena.stats();
  EXPECT_EQ(after.outstanding, before.outstanding);
  EXPECT_EQ(after.reuse_hits, before.reuse_hits + 1);
  EXPECT_EQ(after.fresh_slabs, before.fresh_slabs + 1);
}

TEST(FrameArena, DistinctBucketsDoNotAlias) {
  env::FrameArena& arena = env::FrameArena::local();
  void* small = arena.allocate(64);
  void* large = arena.allocate(1024);
  EXPECT_NE(small, large);
  arena.deallocate(small, 64);
  // A 1024-byte request must not be served from the 64-byte bucket.
  void* again = arena.allocate(1024);
  EXPECT_NE(again, small);
  arena.deallocate(large, 1024);
  arena.deallocate(again, 1024);
}

TEST(FrameArena, OversizePassesThrough) {
  env::FrameArena& arena = env::FrameArena::local();
  const auto before = arena.stats();
  constexpr std::size_t kBig = env::FrameArena::kMaxCachedBytes + 1;

  const util::AllocTally tally;
  void* big = arena.allocate(kBig);
  ASSERT_NE(big, nullptr);
  arena.deallocate(big, kBig);
  EXPECT_EQ(tally.allocs(), 1u);  // went to the heap...
  EXPECT_EQ(tally.frees(), 1u);   // ...and straight back

  const auto after = arena.stats();
  EXPECT_EQ(after.oversize, before.oversize + 1);
  EXPECT_EQ(after.cached, before.cached);  // never parked
  EXPECT_EQ(after.outstanding, before.outstanding);
}

TEST(FrameArena, DrainReleasesEveryCachedSlab) {
  env::FrameArena& arena = env::FrameArena::local();
  for (const std::size_t bytes : {96u, 320u, 1500u}) {
    void* slab = arena.allocate(bytes);
    arena.deallocate(slab, bytes);
  }
  EXPECT_GT(arena.stats().cached, 0u);
  arena.drain();
  EXPECT_EQ(arena.stats().cached, 0u);
  // Post-drain allocation mints fresh slabs again (the arena stays usable).
  void* slab = arena.allocate(96);
  ASSERT_NE(slab, nullptr);
  arena.deallocate(slab, 96);
}

// ---- Steady-state zero-allocation contracts, one per rt object ----

/// Runs `op` warmup times untimed (minting every frame slab the workload
/// needs), then returns the calling thread's heap-allocation count across
/// `ops` further calls. The contract under test: exactly zero.
template <typename Fn>
std::uint64_t steady_state_allocs(Fn op, int warmup = 256, int ops = 2048) {
  for (int i = 0; i < warmup; ++i) op(i);
  const util::AllocTally tally;
  for (int i = 0; i < ops; ++i) op(warmup + i);
  return tally.allocs();
}

TEST(RtAllocSteadyState, VidyasankarRegister) {
  rt::RtVidyasankarRegister reg(16);
  EXPECT_EQ(0u, steady_state_allocs([&](int i) {
              reg.write(static_cast<std::uint32_t>(i % 16) + 1);
              (void)reg.read();
            }));
}

TEST(RtAllocSteadyState, LockFreeHiRegister) {
  rt::RtLockFreeHiRegister reg(16);
  EXPECT_EQ(0u, steady_state_allocs([&](int i) {
              reg.write(static_cast<std::uint32_t>(i % 16) + 1);
              (void)reg.read(/*max_attempts=*/4);  // solo: first TryRead hits
            }));
}

TEST(RtAllocSteadyState, WaitFreeHiRegister) {
  rt::RtWaitFreeHiRegister reg(16);
  EXPECT_EQ(0u, steady_state_allocs([&](int i) {
              reg.write(static_cast<std::uint32_t>(i % 16) + 1);
              (void)reg.read();
            }));
}

TEST(RtAllocSteadyState, LockFreeHiRegisterPackedLargeK) {
  // The packed large-K hot path (16-word scans + masked clears, plus the
  // scan Sub frames the word-scan library adds) must stay allocation-free:
  // the new bench rows inherit the allocs_per_op == 0 gate from this
  // contract.
  rt::RtLockFreeHiRegister reg(1024);
  EXPECT_EQ(0u, steady_state_allocs([&](int i) {
              reg.write(static_cast<std::uint32_t>(i % 1024) + 1);
              (void)reg.read(/*max_attempts=*/4);
            }));
}

TEST(RtAllocSteadyState, LockFreeHiRegisterPaddedLayout) {
  // The padded alias (kept for the layout-comparison bench rows) shares
  // the contract.
  rt::RtLockFreeHiRegisterPadded reg(64);
  EXPECT_EQ(0u, steady_state_allocs([&](int i) {
              reg.write(static_cast<std::uint32_t>(i % 64) + 1);
              (void)reg.read(/*max_attempts=*/4);
            }));
}

TEST(RtAllocSteadyState, MaxRegister) {
  rt::RtMaxRegister reg(64);
  EXPECT_EQ(0u, steady_state_allocs([&](int i) {
              // Ramp once, then absorbed writes: both paths must be free.
              reg.write_max(static_cast<std::uint32_t>(i % 64) + 1);
            }));
  rt::RtMaxRegister reader_side(64, 1, /*writer_pid=*/0, /*reader_pid=*/0);
  EXPECT_EQ(0u, steady_state_allocs(
                    [&](int) { (void)reader_side.read_max(); }));
}

TEST(RtAllocSteadyState, HiSet) {
  rt::RtHiSet set(64);
  EXPECT_EQ(0u, steady_state_allocs([&](int i) {
              const auto v = static_cast<std::uint32_t>(i % 64) + 1;
              (void)set.insert(v);
              (void)set.lookup(v);
              (void)set.remove(v);
            }));
}

TEST(RtAllocSteadyState, ShardedHiSet) {
  // The sharded facade forwards the shard's single coroutine frame — no
  // wrapper frame, no per-op routing state — so a large multi-word store
  // keeps the same zero-allocation contract as the one-word set. 1M keys
  // over 16 striped shards: every op crosses the facade into a multi-word
  // shard (62500 bins = 977 words each).
  rt::RtShardedHiSet store(1'000'000, 16, algo::ShardPlacement::kStriped);
  EXPECT_EQ(0u, steady_state_allocs([&](int i) {
              const auto v =
                  static_cast<std::uint32_t>(i * 7919 % 1'000'000) + 1;
              (void)store.insert(v);
              (void)store.lookup(v);
              (void)store.remove(v);
            }));

  // The audit path is allocation-free once the caller's vector has
  // capacity: per-shard word scans are Sub frames recycled by the arena.
  rt::RtShardedHiSet audit_store(4096, 4, algo::ShardPlacement::kBlocked);
  for (std::uint32_t k = 1; k <= 4096; k += 3) audit_store.insert(k);
  std::vector<std::uint32_t> members;
  members.reserve(4096);
  EXPECT_EQ(0u, steady_state_allocs(
                    [&](int) {
                      members.clear();
                      (void)audit_store.snapshot_members(members);
                    },
                    /*warmup=*/8, /*ops=*/64));
}

TEST(RtAllocSteadyState, Rllsc) {
  rt::RtRllsc cell(0);
  EXPECT_EQ(0u, steady_state_allocs([&](int) {
              const std::uint64_t seen = cell.ll(0);
              (void)cell.vl(0);
              (void)cell.sc(0, seen + 1);
              (void)cell.rl(0);
              (void)cell.load();
              (void)cell.store(seen);
            }));
}

TEST(RtAllocSteadyState, Universal) {
  const spec::CounterSpec spec(0xffffff, 0);
  rt::RtUniversal<spec::CounterSpec> object(spec, 2);
  EXPECT_EQ(0u, steady_state_allocs([&](int) {
              (void)object.apply(0, spec::CounterSpec::inc());
              (void)object.apply(0, spec::CounterSpec::read());
            }));
}

TEST(RtAllocSteadyState, LeakyUniversal) {
  const spec::CounterSpec spec(0xffffff, 0);
  rt::RtLeakyUniversal<spec::CounterSpec> object(spec, 2);
  EXPECT_EQ(0u, steady_state_allocs([&](int) {
              (void)object.apply(0, spec::CounterSpec::inc());
            }));
}

// ---- ReplayEnv exemption: suspending frames are heap-backed BY DESIGN ----

// docs/ENV.md "ReplayEnv: allocation contract": the steady-state
// allocs_per_op == 0 gate applies ONLY to RtEnv's EagerTask frames. A
// ReplayEnv coroutine is a sim::OpTask/sim::SubTask whose frame must
// survive arbitrarily many scheduler steps (and may be abandoned
// mid-operation), so it is an ordinary heap allocation — recycling it
// through the same-thread FrameArena free list would be unsound the moment
// a harness destroyed it from another thread or drained the arena under a
// live suspended frame. This test pins the exemption in both directions:
// replay operations DO allocate per op, and none of that traffic touches
// the calling thread's FrameArena books (so the arena invariants the churn
// test checks stay exact even in binaries that mix both backends).
TEST(RtAllocReplayExemption, ReplayFramesAreHeapBackedAndBypassTheArena) {
  const spec::RegisterSpec spec(8, 1);
  sim::Memory memory;
  sim::Scheduler sched(2);
  replay::LockFreeHiRegister reg(memory, spec, /*writer_pid=*/0,
                                 /*reader_pid=*/1);

  for (int i = 0; i < 64; ++i) {  // warmup, mirroring the rt contracts
    (void)sim::run_solo(sched, 0, reg.write(0, (i % 8) + 1));
    (void)sim::run_solo(sched, 1, reg.read(1));
  }
  const auto arena_before = env::FrameArena::local().stats();
  const util::AllocTally tally;
  constexpr int kOps = 256;
  for (int i = 0; i < kOps; ++i) {
    (void)sim::run_solo(sched, 0, reg.write(0, (i % 8) + 1));
    (void)sim::run_solo(sched, 1, reg.read(1));
  }
  // Heap-backed: at least one allocation per operation (Op frame; reads add
  // a TryRead Sub frame).
  EXPECT_GE(tally.allocs(), static_cast<std::uint64_t>(2 * kOps));
  EXPECT_EQ(tally.allocs(), tally.frees()) << "replay frames must not leak";
  // And none of it went through the arena.
  const auto arena_after = env::FrameArena::local().stats();
  EXPECT_EQ(arena_after.outstanding, arena_before.outstanding);
  EXPECT_EQ(arena_after.fresh_slabs, arena_before.fresh_slabs);
  EXPECT_EQ(arena_after.reuse_hits, arena_before.reuse_hits);
}

// ---- Multi-thread churn: arenas neither leak nor double-free ----

// Each worker hammers shared objects (universal helping, set toggles, LL/SC
// traffic — real cross-thread contention), then checks its own arena's
// books: no live frames, every minted slab parked exactly once, drain
// empties the cache. A double-free would corrupt the intrusive free list
// (caught by the invariants or by TSan); a cross-thread frame would be a
// data race on the free list (caught by TSan — this test runs in the
// rt-labelled TSan CI job).
TEST(RtAllocChurn, MultiThreadArenaBalance) {
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  const spec::CounterSpec spec(0xffffff, 0);
  rt::RtUniversal<spec::CounterSpec> universal(spec, kThreads);
  rt::RtHiSet set(64);
  rt::RtRllsc cell(0);

  std::atomic<int> violations{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int pid = 0; pid < kThreads; ++pid) {
    pool.emplace_back([&, pid] {
      for (int i = 0; i < kOps; ++i) {
        (void)universal.apply(pid, spec::CounterSpec::inc());
        const auto v =
            static_cast<std::uint32_t>((pid * 16 + i % 16) % 64) + 1;
        (void)set.insert(v);
        (void)set.lookup(v);
        (void)set.remove(v);
        const std::uint64_t seen = cell.ll(pid);
        (void)cell.sc(pid, seen + 1);
        (void)cell.rl(pid);
      }
      auto stats = env::FrameArena::local().stats();
      if (stats.outstanding != 0) ++violations;          // leak: live frames
      if (stats.cached != stats.fresh_slabs) ++violations;  // lost/dup slab
      if (stats.reuse_hits == 0) ++violations;  // arena never engaged?
      env::FrameArena::local().drain();
      stats = env::FrameArena::local().stats();
      if (stats.cached != 0) ++violations;
    });
  }
  for (auto& worker : pool) worker.join();
  EXPECT_EQ(violations.load(), 0);
  // The shared objects are still coherent after the churn.
  std::uint64_t total = 0;
  for (int pid = 0; pid < kThreads; ++pid) {
    total = universal.apply(pid, spec::CounterSpec::read());
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace hi
