// Bounded model checking (experiments E4/E5/E10/E11/E12 strengthened): for
// small workloads we enumerate EVERY schedule and check linearizability on
// every complete execution plus canonical-memory history independence at
// every state-quiescent/quiescent configuration of every branch. This is
// exhaustive within the stated op mixes — not sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "core/hi_register_lockfree.h"
#include "core/vidyasankar.h"
#include "core/hi_register_waitfree.h"
#include "core/hi_set.h"
#include "core/rllsc.h"
#include "core/sharded_set.h"
#include "core/universal.h"
#include "sim/explorer.h"
#include "sim/harness.h"
#include "spec/counter_spec.h"
#include "spec/register_spec.h"
#include "spec/rllsc_spec.h"
#include "spec/set_spec.h"
#include "util/bits.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

// ------------------------------------------------ register systems (SWSR)

template <typename Impl>
struct RegSystem {
  spec::RegisterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  Impl impl;

  explicit RegSystem(std::uint32_t k)
      : spec(k, 1), sched(2), impl(mem, spec, /*writer=*/0, /*reader=*/1) {}

  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, spec::RegisterSpec::Op op) {
    return impl.apply(pid, op);
  }
};

template <typename Impl>
void exhaustive_register_check(std::uint32_t k,
                               std::vector<spec::RegisterSpec::Op> writes,
                               std::size_t num_reads, std::size_t max_depth,
                               bool check_state_quiescent,
                               std::uint64_t min_complete) {
  const spec::RegisterSpec spec(k, 1);
  std::vector<std::vector<spec::RegisterSpec::Op>> work(2);
  work[0] = std::move(writes);
  work[1].assign(num_reads, spec::RegisterSpec::read());

  // Canonical map from solo runs.
  verify::HiChecker checker;
  for (std::uint32_t v = 1; v <= k; ++v) {
    RegSystem<Impl> sys(k);
    if (v != 1) {
      (void)sim::run_solo(sys.sched, 0, sys.impl.write(0, v));
    }
    ASSERT_TRUE(checker.set_canonical(v, sys.mem.snapshot()));
  }

  sim::Explorer<spec::RegisterSpec, RegSystem<Impl>> explorer(
      spec, [k] { return std::make_unique<RegSystem<Impl>>(k); }, work);

  std::uint64_t lin_failures = 0;
  const auto stats = explorer.explore(
      {.max_depth = max_depth, .max_executions = 400'000},
      [&](RegSystem<Impl>& sys, const auto& hist, int pending,
          int state_changing_pending) {
        const bool observable =
            check_state_quiescent ? state_changing_pending == 0 : pending == 0;
        if (!observable) return;
        std::uint64_t state = 1;
        for (const auto& entry : hist.entries()) {
          if (entry.op.kind == spec::RegisterSpec::Kind::kWrite &&
              entry.completed()) {
            state = entry.op.value;
          }
        }
        checker.observe(state, sys.mem.snapshot(), "explored");
      },
      [&](RegSystem<Impl>& sys, const auto& hist) {
        (void)sys;
        if (!verify::check_linearizable(spec, hist).ok()) ++lin_failures;
      });

  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
  EXPECT_EQ(lin_failures, 0u);
  EXPECT_GE(stats.executions_complete, min_complete);
  EXPECT_TRUE(stats.exhausted) << "hit the execution cap — raise limits";
}

TEST(Exhaustive, Alg2_WriteVsRead_AllSchedules) {
  // Write(2) ‖ Read over K=3: every interleaving is linearizable and every
  // state-quiescent configuration is canonical. Fully exhaustive.
  exhaustive_register_check<core::LockFreeHiRegister>(
      3, {spec::RegisterSpec::write(2)}, 1, /*max_depth=*/40,
      /*state_quiescent=*/true, /*min_complete=*/20);
}

TEST(Exhaustive, Alg2_TwoWritesOneRead_AllSchedules) {
  exhaustive_register_check<core::LockFreeHiRegister>(
      3, {spec::RegisterSpec::write(3), spec::RegisterSpec::write(1)}, 1,
      /*max_depth=*/40, /*state_quiescent=*/true, /*min_complete=*/500);
}

TEST(Exhaustive, Alg2Packed_WriteVsRead_AllSchedules) {
  // The packed-layout twin of Alg2_WriteVsRead_AllSchedules: Write(2) ‖
  // Read over K=3 packed into ONE word cell, so the explorer enumerates
  // every WORD-granularity interleaving (fetch_or/fetch_and vs word loads)
  // and checks linearizability + canonical state-quiescent memory on each.
  // Fewer schedules than the padded run (a write is 3 word RMWs instead of
  // 3 bit writes ... but a read is 1–2 word loads instead of up to 2K-1 bit
  // reads), all of them exhausted.
  exhaustive_register_check<core::PackedLockFreeHiRegister>(
      3, {spec::RegisterSpec::write(2)}, 1, /*max_depth=*/40,
      /*state_quiescent=*/true, /*min_complete=*/10);
}

TEST(Exhaustive, Alg2Packed_TwoWordArray_AllSchedules) {
  // K=70 spans two packed words: the upward scan's word-0/word-1 boundary
  // and the clearing passes' two-word masks are the interesting
  // interleaving points; Write(65) ‖ Read crosses them all.
  exhaustive_register_check<core::PackedLockFreeHiRegister>(
      70, {spec::RegisterSpec::write(65)}, 1, /*max_depth=*/40,
      /*state_quiescent=*/true, /*min_complete=*/10);
}

TEST(Exhaustive, Alg4_WriteVsRead_AllSchedules) {
  // Algorithm 4 with one Write(3) ‖ one Read over K=3: every interleaving
  // linearizable; every fully-quiescent configuration canonical.
  exhaustive_register_check<core::WaitFreeHiRegister>(
      3, {spec::RegisterSpec::write(3)}, 1, /*max_depth=*/46,
      /*state_quiescent=*/false, /*min_complete=*/1000);
}

TEST(Exhaustive, Alg1Control_LeakIsFoundByExploration) {
  // Negative control: the same exhaustive harness must CATCH Algorithm 1's
  // leak (two writes reaching state 1 with different memory).
  const spec::RegisterSpec spec(3, 1);
  verify::HiChecker checker;
  {
    // Seed the canonical representation of state 1 from a solo Write(1), so
    // the explored Write(2);Write(1) path has something to conflict with.
    RegSystem<core::VidyasankarRegister> solo(3);
    (void)sim::run_solo(solo.sched, 0, solo.impl.write(0, 1));
    ASSERT_TRUE(checker.set_canonical(1, solo.mem.snapshot()));
  }
  sim::Explorer<spec::RegisterSpec, RegSystem<core::VidyasankarRegister>>
      explorer(
          spec,
          [] { return std::make_unique<RegSystem<core::VidyasankarRegister>>(3); },
          {{spec::RegisterSpec::write(2), spec::RegisterSpec::write(1)}, {}});
  (void)explorer.explore(
      {.max_depth = 20, .max_executions = 10'000},
      [&](auto& sys, const auto& hist, int, int state_changing_pending) {
        if (state_changing_pending != 0) return;
        std::uint64_t state = 1;
        for (const auto& e : hist.entries()) {
          if (e.completed() && e.op.kind == spec::RegisterSpec::Kind::kWrite) {
            state = e.op.value;
          }
        }
        checker.observe(state, sys.mem.snapshot(), "explored");
      },
      nullptr);
  EXPECT_FALSE(checker.consistent()) << "exploration missed the Alg 1 leak";
}

// ------------------------------------------------------------- perfect-HI set

struct SetSystem {
  spec::SetSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::HiSet impl;

  SetSystem() : spec(4), sched(2), impl(mem, spec) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<bool> apply(int pid, spec::SetSpec::Op op) {
    return impl.apply(pid, op);
  }
};

TEST(Exhaustive, HiSet_AllSchedules_PerfectHI) {
  const spec::SetSpec spec(4);
  verify::HiChecker checker;
  std::uint64_t lin_failures = 0;
  sim::Explorer<spec::SetSpec, SetSystem> explorer(
      spec, [] { return std::make_unique<SetSystem>(); },
      {{spec::SetSpec::insert(1), spec::SetSpec::remove(2),
        spec::SetSpec::lookup(1)},
       {spec::SetSpec::insert(2), spec::SetSpec::remove(1),
        spec::SetSpec::lookup(2)}});
  const auto stats = explorer.explore(
      {.max_depth = 20, .max_executions = 500'000},
      [&](SetSystem& sys, const auto&, int, int) {
        // PERFECT HI: every configuration observable; state == memory bitmap
        // (the implementation's canonical map is the identity).
        std::uint64_t bitmap = 0;
        const auto snap = sys.mem.snapshot();
        for (std::size_t i = 0; i < snap.words.size(); ++i) {
          if (snap.words[i]) bitmap |= 1ull << i;
        }
        checker.observe(bitmap, snap, "explored");
      },
      [&](SetSystem&, const auto& hist) {
        if (!verify::check_linearizable(spec, hist).ok()) ++lin_failures;
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
  EXPECT_EQ(lin_failures, 0u);
  EXPECT_GE(stats.executions_complete, 800u);
}

// ------------------------------------------------------- sharded perfect-HI

struct ShardedSetSystem {
  spec::SetSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::ShardedHiSet impl;

  ShardedSetSystem()
      : spec(8),
        sched(2),
        impl(mem, spec, /*shard_count=*/2, algo::ShardPlacement::kStriped) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<bool> apply(int pid, spec::SetSpec::Op op) {
    return impl.apply(pid, op);
  }
};

TEST(Exhaustive, ShardedHiSet_AllSchedules_PerfectHI) {
  // The sharded facade under every schedule: keys 1 and 3 share shard 0
  // (same packed word — real word contention through the facade), key 2
  // lives in shard 1 (cross-shard commuting ops). Perfect HI: at EVERY
  // configuration the memory must be the concatenated shard bitmaps of the
  // current abstract membership — we decode the abstract state back through
  // the placement map, so a routing bug (key in the wrong shard/word) shows
  // up as a checker violation even before it breaks a lookup response.
  const spec::SetSpec spec(8);
  verify::HiChecker checker;
  std::uint64_t lin_failures = 0;
  sim::Explorer<spec::SetSpec, ShardedSetSystem> explorer(
      spec, [] { return std::make_unique<ShardedSetSystem>(); },
      {{spec::SetSpec::insert(1), spec::SetSpec::remove(3),
        spec::SetSpec::lookup(2)},
       {spec::SetSpec::insert(3), spec::SetSpec::remove(1),
        spec::SetSpec::lookup(1)}});
  const auto stats = explorer.explore(
      {.max_depth = 20, .max_executions = 500'000},
      [&](ShardedSetSystem& sys, const auto&, int, int) {
        // Decode the abstract membership from the per-shard packed words:
        // snapshot word order is shard construction order (shard s owns
        // bin_words(shard_domain(s)) consecutive words).
        std::uint64_t members = 0;
        const auto snap = sys.mem.snapshot();
        std::size_t w = 0;
        for (std::uint32_t s = 0; s < sys.impl.shard_count(); ++s) {
          const std::uint32_t size = sys.impl.shard_domain(s);
          for (std::uint32_t sw = 0; sw < util::bin_words(size); ++sw, ++w) {
            ASSERT_LT(w, snap.words.size());
            for (std::uint64_t word = snap.words[w]; word != 0;
                 word &= word - 1) {
              const std::uint32_t local =
                  sw * 64 + util::lowest_set(word) + 1;
              members |= 1ull << (sys.impl.global_key(s, local) - 1);
            }
          }
        }
        checker.observe(members, snap, "explored");
      },
      [&](ShardedSetSystem&, const auto& hist) {
        if (!verify::check_linearizable(spec, hist).ok()) ++lin_failures;
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
  EXPECT_EQ(lin_failures, 0u);
  EXPECT_GE(stats.executions_complete, 800u);
}

TEST(Exhaustive, ShardedHiSet_TwoShardTwoWord_AllInterleavings) {
  // The spec harness caps domains at 64 keys, so the explorer above cannot
  // reach a shard that spans MULTIPLE packed words. This test drives the
  // algo-layer facade directly at domain 256 with 2 striped shards — 128
  // bins = 2 words per shard — and enumerates ALL interleavings of
  // Insert(129) ‖ Remove(2) ‖ Contains(129) by hand (each op is exactly one
  // primitive step, so the 6 step orders ARE the full schedule space).
  // After EVERY step, the 4 words of memory must equal the shadow
  // membership scattered through the placement map (perfect HI at every
  // configuration), and responses must match the shadow at the step that
  // linearizes them. Key 129 sits at word 1 / bit 0 of shard 0 — the
  // word-boundary crossing the multi-word lift exists for.
  constexpr std::uint32_t kDomain = 256;
  constexpr std::uint32_t kShards = 2;
  // Initial membership {2, 129}: global bitmap over 4 words.
  const std::vector<std::uint64_t> init = {0b10, 0, 1, 0};

  struct Step {
    enum Kind { kInsert, kRemove, kContains } kind;
    std::uint32_t key;
  };
  const std::vector<std::vector<Step>> workloads = {
      // Cross-shard + word-boundary mix.
      {{Step::kInsert, 129}, {Step::kRemove, 2}, {Step::kContains, 129}},
      // All three ops racing on ONE bin of the second word of shard 0.
      {{Step::kInsert, 129}, {Step::kRemove, 129}, {Step::kContains, 129}},
  };

  int perm[3] = {0, 1, 2};
  for (const auto& ops : workloads) {
    std::sort(perm, perm + 3);
    do {
      sim::Memory mem;
      sim::Scheduler sched(3);
      algo::ShardedHiSetPacked<env::SimEnv> set(
          mem, kDomain, kShards, algo::ShardPlacement::kStriped,
          std::span<const std::uint64_t>(init));

      // Shadow abstract state: the global membership bitmap.
      std::vector<std::uint64_t> shadow = init;

      // Expected memory words from the shadow, through the placement map.
      const auto expected_words = [&] {
        std::vector<std::uint64_t> words;
        for (std::uint32_t s = 0; s < kShards; ++s) {
          std::vector<std::uint64_t> sw(util::bin_words(set.shard_domain(s)),
                                        0);
          for (std::uint32_t local = 1; local <= set.shard_domain(s);
               ++local) {
            if (util::bin_test(shadow, set.global_key(s, local))) {
              util::bin_set(sw, local);
            }
          }
          words.insert(words.end(), sw.begin(), sw.end());
        }
        return words;
      };

      // Start all three ops (start consumes no step; each suspends at its
      // single primitive).
      std::vector<sim::OpTask<bool>> tasks;
      tasks.reserve(3);
      for (const Step& op : ops) {
        switch (op.kind) {
          case Step::kInsert: tasks.push_back(set.insert(op.key)); break;
          case Step::kRemove: tasks.push_back(set.remove(op.key)); break;
          case Step::kContains: tasks.push_back(set.lookup(op.key)); break;
        }
      }
      for (int pid = 0; pid < 3; ++pid) sched.start(pid, tasks[pid]);
      ASSERT_EQ(mem.snapshot().words, expected_words())
          << "initial image wrong";

      for (const int pid : perm) {
        const Step& op = ops[pid];
        const bool was_member = util::bin_test(shadow, op.key);
        sched.step(pid);  // the op's one primitive — its linearization point
        ASSERT_TRUE(sched.op_finished(pid));
        sched.finish(pid);
        switch (op.kind) {
          case Step::kInsert:
            util::bin_set(shadow, op.key);
            EXPECT_TRUE(tasks[pid].take_result());
            break;
          case Step::kRemove:
            util::bin_clear(shadow, op.key);
            EXPECT_TRUE(tasks[pid].take_result());
            break;
          case Step::kContains:
            EXPECT_EQ(tasks[pid].take_result(), was_member)
                << "Contains(" << op.key << ") disagrees with the shadow "
                << "at its linearization step";
            break;
        }
        EXPECT_EQ(mem.snapshot().words, expected_words())
            << "memory is not the canonical image after stepping pid "
            << pid;
      }
    } while (std::next_permutation(perm, perm + 3));
  }
}

// ----------------------------------------------------------------- R-LLSC

struct RllscSystem {
  spec::RllscSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::CasRllsc cell;

  RllscSystem() : spec(8, 2), sched(2), cell(mem, "X", {0, 0}) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<spec::RllscSpec::Resp> apply(int pid, spec::RllscSpec::Op op) {
    return run(pid, op);
  }

 private:
  sim::OpTask<spec::RllscSpec::Resp> run(int /*pid*/, spec::RllscSpec::Op op) {
    switch (op.kind) {
      case spec::RllscSpec::Kind::kLL: {
        const core::RllscValue v = co_await cell.ll();
        co_return spec::RllscSpec::Resp{static_cast<std::uint32_t>(v.lo), true};
      }
      case spec::RllscSpec::Kind::kSC: {
        const bool done = co_await cell.sc(core::RllscValue{op.arg, 0});
        co_return spec::RllscSpec::Resp{0, done};
      }
      case spec::RllscSpec::Kind::kRL: {
        const bool done = co_await cell.rl();
        co_return spec::RllscSpec::Resp{0, done};
      }
      case spec::RllscSpec::Kind::kVL: {
        const bool linked = co_await cell.vl();
        co_return spec::RllscSpec::Resp{0, linked};
      }
      case spec::RllscSpec::Kind::kLoad: {
        const core::RllscValue v = co_await cell.load();
        co_return spec::RllscSpec::Resp{static_cast<std::uint32_t>(v.lo), true};
      }
      case spec::RllscSpec::Kind::kStore: {
        const bool done = co_await cell.store(core::RllscValue{op.arg, 0});
        co_return spec::RllscSpec::Resp{0, done};
      }
    }
    co_return spec::RllscSpec::Resp{};
  }
};

TEST(Exhaustive, CasRllsc_LlScVsLlSc_AllSchedules) {
  // Both processes run LL;SC — every interleaving must linearize against the
  // R-LLSC spec, and the memory must always equal the (val, ctx) state.
  const spec::RllscSpec spec(8, 2);
  std::uint64_t lin_failures = 0;
  std::uint64_t mem_mismatch = 0;
  sim::Explorer<spec::RllscSpec, RllscSystem> explorer(
      spec, [] { return std::make_unique<RllscSystem>(); },
      {{spec::RllscSpec::ll(0), spec::RllscSpec::sc(0, 3)},
       {spec::RllscSpec::ll(1), spec::RllscSpec::sc(1, 5)}});
  const auto stats = explorer.explore(
      {.max_depth = 30, .max_executions = 500'000},
      [&](RllscSystem& sys, const auto&, int, int) {
        const auto snap = sys.mem.snapshot();
        if (snap.words.size() != 3 ||
            snap.words[0] != sys.cell.peek_value().lo ||
            snap.words[2] != sys.cell.peek_context()) {
          ++mem_mismatch;
        }
      },
      [&](RllscSystem&, const auto& hist) {
        if (!verify::check_linearizable(spec, hist).ok()) ++lin_failures;
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(lin_failures, 0u);
  EXPECT_EQ(mem_mismatch, 0u);
  EXPECT_GE(stats.executions_complete, 100u);
}

TEST(Exhaustive, CasRllsc_StoreVsLl_AllSchedules) {
  const spec::RllscSpec spec(8, 2);
  std::uint64_t lin_failures = 0;
  sim::Explorer<spec::RllscSpec, RllscSystem> explorer(
      spec, [] { return std::make_unique<RllscSystem>(); },
      {{spec::RllscSpec::store(0, 7), spec::RllscSpec::vl(0)},
       {spec::RllscSpec::ll(1), spec::RllscSpec::sc(1, 5),
        spec::RllscSpec::rl(1)}});
  const auto stats = explorer.explore(
      {.max_depth = 30, .max_executions = 500'000}, nullptr,
      [&](RllscSystem&, const auto& hist) {
        if (!verify::check_linearizable(spec, hist).ok()) ++lin_failures;
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(lin_failures, 0u);
}

// ----------------------------------------------------- universal construction

template <typename Cell>
struct UniSystem {
  spec::CounterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::Universal<spec::CounterSpec, Cell> impl;

  UniSystem() : spec(100, 5), sched(2), impl(mem, spec, 2) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, spec::CounterSpec::Op op) {
    return impl.apply(pid, op);
  }
};

template <typename Cell>
void exhaustive_universal(std::uint64_t max_exec, bool expect_exhausted) {
  const spec::CounterSpec spec(100, 5);
  verify::HiChecker checker;
  std::uint64_t lin_failures = 0;
  std::uint64_t invariant_failures = 0;
  sim::Explorer<spec::CounterSpec, UniSystem<Cell>> explorer(
      spec, [] { return std::make_unique<UniSystem<Cell>>(); },
      {{spec::CounterSpec::inc()}, {spec::CounterSpec::dec()}});
  const auto stats = explorer.explore(
      {.max_depth = 120, .max_executions = max_exec},
      [&](UniSystem<Cell>& sys, const auto&, int, int state_changing_pending) {
        if (state_changing_pending != 0) return;
        // Lemmas 26/27 at every state-quiescent configuration reached by ANY
        // schedule prefix.
        if (sys.impl.head_has_response() || sys.impl.context_union() != 0 ||
            !sys.impl.announce_is_bottom(0) || !sys.impl.announce_is_bottom(1)) {
          ++invariant_failures;
        }
        checker.observe(sys.impl.head_state_encoded(), sys.mem.snapshot(),
                        "explored");
      },
      [&](UniSystem<Cell>&, const auto& hist) {
        if (!verify::check_linearizable(spec, hist).ok()) ++lin_failures;
      });
  EXPECT_EQ(stats.exhausted, expect_exhausted);
  EXPECT_EQ(lin_failures, 0u);
  EXPECT_EQ(invariant_failures, 0u);
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
  EXPECT_GE(stats.executions_complete, 100u);
}

TEST(Exhaustive, UniversalNativeCells_IncVsDec_Bounded) {
  // Native R-LLSC backend. Even with single-step cells the helping paths
  // make the full schedule space larger than 2M executions, so this run is
  // capped: a prefix-closed subset of all schedules, every one checked.
  exhaustive_universal<core::NativeRllsc>(300'000, /*expect_exhausted=*/false);
}

TEST(Exhaustive, UniversalCasCells_IncVsDec_Bounded) {
  // Full Algorithm 5-over-6 composition: the CAS retry loops blow up the
  // schedule space, so this run is capped — a prefix-closed subset of all
  // schedules, every one of which must still pass.
  exhaustive_universal<core::CasRllsc>(150'000, /*expect_exhausted=*/false);
}

}  // namespace
}  // namespace hi
