// Crash-fault injection in the step model (the sixth rung of the
// verification ladder — docs/TESTING.md, docs/FAULTS.md):
//
//  * POSITIVE CONTROLS — the lock-based counter fails the progress gate
//    (its lock dies with a crashed holder) and the leaky-on-crash register
//    fails the crash-point HI audit (it journals the OLD value into a
//    scratch word and only a completed write cleans it). Both are caught on
//    every run, which is what certifies the audit can catch anything.
//
//  * REAL OBJECTS — at EVERY crash point of an operation, survivors drain
//    (lock-free/wait-free progress survives crashes), responses stay
//    consistent with the crashed op pending, and the quiescent image's
//    residue is localized to the crashed op's own words (the fault
//    containment discipline of verify/crash_audit.h). The wait_free_sim
//    combinator's helpers finish a crashed owner's announced+enqueued op;
//    the flat-combining universal survives a winner crashed anywhere BEFORE
//    the combining-record install, and demonstrably blocks when the winner
//    crashes after it — the documented fundamental limit (docs/FAULTS.md).
//
//  * EXPLORER — ExploreLimits::max_crashes enumerates ≤ k-crash
//    configurations, naive and DPOR agree on the complete-history set, and
//    max_crashes = 0 stays exactly crash-free (default behavior unchanged).
//
//  * ROUND TRIP — a caught crash failure records, shrinks (verify/shrink.h),
//    prints as a paste-ready ScheduleTrace literal with its crash step, and
//    replays differentially over hardware atomics (verify/replay.h) — the
//    acceptance pipeline for crash regressions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algo/wait_free_sim.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_set.h"
#include "core/universal.h"
#include "core/wait_free_sim.h"
#include "env/replay_env.h"
#include "env/sim_env.h"
#include "fuzz_common.h"
#include "register_common.h"
#include "sim/explorer.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "spec/counter_spec.h"
#include "spec/register_spec.h"
#include "spec/set_spec.h"
#include "verify/crash_audit.h"
#include "verify/linearizability.h"
#include "verify/replay.h"
#include "verify/shrink.h"

namespace hi {
namespace {

// ----------------------------------------------------------------- staging

/// Start pid's next workload op and crash it after exactly `steps` primitive
/// steps. Returns false — without crashing — if the op completes in fewer
/// steps (the caller's crash-point sweep is past the op's length).
template <typename S, typename Impl>
bool start_and_crash_after(verify::TraceSide<S, Impl>& side, int pid,
                           std::uint64_t steps) {
  side.start(pid);
  if (side.reap(pid).has_value()) return false;  // zero-primitive op
  for (std::uint64_t i = 0; i < steps; ++i) {
    side.step(pid);
    if (side.reap(pid).has_value()) return false;
  }
  side.crash(pid);
  return true;
}

/// Drain every surviving process: start each remaining workload op as its
/// process goes idle and round-robin the pending ones to quiescence.
/// `on_resp(pid, resp)` fires per completed operation.
template <typename S, typename Impl, typename OnResp>
verify::ProgressResult drain_survivors(verify::TraceSide<S, Impl>& side,
                                       sim::Scheduler& sched,
                                       std::uint64_t budget, OnResp on_resp) {
  verify::ProgressResult total{/*quiescent=*/true, /*steps_used=*/0};
  const int n = sched.num_processes();
  const auto step_and_reap = [&](int pid) {
    side.step(pid);
    if (const auto resp = side.reap(pid)) on_resp(pid, *resp);
  };
  for (;;) {
    bool started = false;
    for (int pid = 0; pid < n; ++pid) {
      if (!sched.crashed(pid) && side.can_start(pid)) {
        side.start(pid);
        if (const auto resp = side.reap(pid)) on_resp(pid, *resp);
        started = true;
      }
    }
    const verify::ProgressResult round = verify::drive_survivors_to_quiescence(
        sched, step_and_reap,
        budget > total.steps_used ? budget - total.steps_used : 0);
    total.steps_used += round.steps_used;
    if (!round.quiescent) {
      total.quiescent = false;
      return total;
    }
    if (!started) return total;
  }
}

/// Allowed-residue predicate over one object's snapshot word range.
auto words_of(const sim::Memory& mem, int object_id) {
  const std::pair<std::size_t, std::size_t> range = mem.word_range(object_id);
  return [range](std::size_t w) { return w >= range.first && w < range.second; };
}

// ----------------------------------------------------------------- systems

struct SpinLockSystem {
  testing::NaiveCounterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  testing::SpinLockCounterAlg<env::SimEnv> impl;

  explicit SpinLockSystem(int num_processes)
      : sched(num_processes), impl(mem) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, testing::NaiveCounterSpec::Op op) {
    return impl.apply(pid, op);
  }
};

struct LeakySystem {
  spec::RegisterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  testing::LeakyCrashRegisterAlg<env::SimEnv> impl;

  LeakySystem() : spec(4, 1), sched(2), impl(mem, 1) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, spec::RegisterSpec::Op op) {
    return impl.apply(pid, op);
  }
};

struct UniversalSystem {
  spec::CounterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::Universal<spec::CounterSpec, core::NativeRllsc> impl;

  explicit UniversalSystem(bool combine)
      : spec(1u << 20, 10),
        sched(2),
        impl(mem, spec, /*num_processes=*/2, /*clear_contexts=*/true, combine) {
  }
};
using UniversalImpl = core::Universal<spec::CounterSpec, core::NativeRllsc>;

struct WfsSystem {
  spec::RegisterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::WaitFreeSimHiRegister impl;

  // fast_limit = 0: every read announces + enqueues (slow path always), so
  // each crash-point sweep exercises the helping obligation directly.
  WfsSystem()
      : spec(4, 1),
        sched(2),
        impl(mem, spec, /*writer_pid=*/0, /*reader_pid=*/1, /*fast_limit=*/0) {}
};

struct CrashSet2System {
  spec::SetSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::HiSet impl;

  CrashSet2System() : spec(4), sched(2), impl(mem, spec) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<bool> apply(int pid, spec::SetSpec::Op op) {
    return impl.apply(pid, op);
  }
};

// ------------------------------------------------------- positive controls

TEST(CrashAudit, SpinLockControlFailsProgressGate) {
  const std::vector<std::vector<testing::NaiveCounterSpec::Op>> work = {
      {testing::NaiveCounterSpec::inc()}, {testing::NaiveCounterSpec::inc()}};
  SpinLockSystem sys(2);
  verify::TraceSide<testing::NaiveCounterSpec,
                    testing::SpinLockCounterAlg<env::SimEnv>>
      side(sys.sched, sys.impl, work);
  // Step 1 executes the lock CAS; the crash lands with the lock held.
  ASSERT_TRUE(start_and_crash_after(side, 0, 1));
  ASSERT_TRUE(sys.impl.lock_held()) << "crash staged before the acquire";

  const auto result =
      drain_survivors(side, sys.sched, 5'000, [](int, std::uint32_t) {});
  EXPECT_FALSE(result.quiescent)
      << "a lock-based object must FAIL the progress gate when its lock "
         "holder crashes — the positive control lost its teeth";
  EXPECT_GE(result.steps_used, 5'000u);
}

TEST(CrashAudit, SpinLockDrainsWithoutCrashes) {
  // Sanity for the gate itself: crash-free, the same object drains and both
  // incs respond — the budget exhaustion above is the crash, not the gate.
  const std::vector<std::vector<testing::NaiveCounterSpec::Op>> work = {
      {testing::NaiveCounterSpec::inc()}, {testing::NaiveCounterSpec::inc()}};
  SpinLockSystem sys(2);
  verify::TraceSide<testing::NaiveCounterSpec,
                    testing::SpinLockCounterAlg<env::SimEnv>>
      side(sys.sched, sys.impl, work);
  std::vector<std::uint32_t> responses;
  const auto result = drain_survivors(
      side, sys.sched, 5'000,
      [&](int, std::uint32_t r) { responses.push_back(r); });
  EXPECT_TRUE(result.quiescent);
  std::sort(responses.begin(), responses.end());
  EXPECT_EQ(responses, (std::vector<std::uint32_t>{1, 2}));
}

TEST(CrashAudit, LeakyRegisterControlFailsResidueAudit) {
  sim::MemorySnapshot canon_initial, canon_written;
  {
    LeakySystem s;
    canon_initial = s.mem.snapshot();
  }
  {
    LeakySystem s;
    (void)sim::run_solo(s.sched, 0, s.impl.write(2));
    canon_written = s.mem.snapshot();
  }

  const std::vector<std::vector<spec::RegisterSpec::Op>> work = {
      {spec::RegisterSpec::write(2)}, {spec::RegisterSpec::read()}};

  // write = (read value, store journal, store value, clear journal). Crash
  // after step 3: the new value landed but the journal still holds the OLD
  // value — the leak a seized machine reads.
  LeakySystem sys;
  verify::TraceSide<spec::RegisterSpec,
                    testing::LeakyCrashRegisterAlg<env::SimEnv>>
      side(sys.sched, sys.impl, work);
  ASSERT_TRUE(start_and_crash_after(side, 0, 3));
  ASSERT_EQ(sys.impl.peek_journal(), 1u) << "crash staged at the wrong step";

  const auto result =
      drain_survivors(side, sys.sched, 10'000, [](int, std::uint32_t) {});
  ASSERT_TRUE(result.quiescent) << "plain reads/writes cannot block";

  // Residue allowed only inside the value cell (object 0) — the crashed
  // write's own words. The journal word (object 1) is not the op's own.
  const auto report = verify::residue_against_best(
      canon_initial, canon_written, sys.mem.snapshot(), words_of(sys.mem, 0));
  EXPECT_FALSE(report.ok)
      << "the leaky register's journal residue escaped the HI audit — the "
         "positive control lost its teeth";
  EXPECT_FALSE(report.unlocalized.empty());

  // And the audit is not trivially firing: a crash BEFORE the journal store
  // leaves a perfectly canonical image.
  LeakySystem clean;
  verify::TraceSide<spec::RegisterSpec,
                    testing::LeakyCrashRegisterAlg<env::SimEnv>>
      clean_side(clean.sched, clean.impl, work);
  ASSERT_TRUE(start_and_crash_after(clean_side, 0, 1));
  const auto clean_result =
      drain_survivors(clean_side, clean.sched, 10'000, [](int, std::uint32_t) {});
  ASSERT_TRUE(clean_result.quiescent);
  EXPECT_TRUE(verify::residue_against_best(canon_initial, canon_written,
                                           clean.mem.snapshot(),
                                           words_of(clean.mem, 0))
                  .ok);
}

// ----------------------------------------------------------- real objects

TEST(CrashAudit, LockFreeRegisterReaderDrainsAtEveryWriterCrashPoint) {
  using Impl = core::LockFreeHiRegister;
  const std::vector<std::vector<spec::RegisterSpec::Op>> work = {
      {spec::RegisterSpec::write(3)},
      {spec::RegisterSpec::read(), spec::RegisterSpec::read()}};
  int crash_points = 0;
  for (std::uint64_t s = 0;; ++s) {
    testing::RegisterSystem<Impl> sys(4);
    verify::TraceSide<spec::RegisterSpec, Impl> side(sys.sched, sys.impl,
                                                     work);
    if (!start_and_crash_after(side, testing::kWriterPid, s)) break;
    ++crash_points;

    std::vector<std::uint32_t> reads;
    const auto result = drain_survivors(
        side, sys.sched, 200'000, [&](int pid, std::uint32_t r) {
          if (pid == testing::kReaderPid) reads.push_back(r);
        });
    ASSERT_TRUE(result.quiescent)
        << "reader starved by a CRASHED writer at crash point " << s
        << " — lock-freedom must survive crashes";
    ASSERT_EQ(reads.size(), 2u);
    for (const std::uint32_t r : reads) {
      EXPECT_TRUE(r == 1 || r == 3)
          << "read returned " << r << " at crash point " << s
          << " — neither the initial nor the crashed-pending value";
    }
    // The crashed write may take effect at most once, and never un-happen:
    // observing 3 then 1 is not linearizable for any placement.
    EXPECT_FALSE(reads[0] == 3 && reads[1] == 1)
        << "crashed write un-happened between two reads (crash point " << s
        << ")";
  }
  EXPECT_GT(crash_points, 3) << "crash-point sweep never engaged";
}

TEST(CrashAudit, PlainUniversalResidueConfinedToCrashedAnnounceCell) {
  // Canonical images per surviving abstract state, built by fresh solo runs
  // (who ran the incs must not matter at quiescence — that is the object's
  // state-quiescent-HI claim, tested elsewhere; here it feeds the audit).
  const auto canon_after = [](int incs) {
    UniversalSystem s(/*combine=*/false);
    for (int i = 0; i < incs; ++i) {
      (void)sim::run_solo(s.sched, 1,
                          s.impl.apply(1, spec::CounterSpec::inc()));
    }
    return s.mem.snapshot();
  };
  const sim::MemorySnapshot canon_lost = canon_after(1);    // crashed inc lost
  const sim::MemorySnapshot canon_taken = canon_after(2);   // crashed inc took

  const std::vector<std::vector<spec::CounterSpec::Op>> work = {
      {spec::CounterSpec::inc()}, {spec::CounterSpec::inc()}};
  int crash_points = 0;
  for (std::uint64_t s = 0;; ++s) {
    UniversalSystem sys(/*combine=*/false);
    verify::TraceSide<spec::CounterSpec, UniversalImpl> side(sys.sched,
                                                             sys.impl, work);
    if (!start_and_crash_after(side, 0, s)) break;
    ++crash_points;

    std::vector<std::uint32_t> responses;
    const auto result = drain_survivors(
        side, sys.sched, 200'000,
        [&](int, std::uint32_t r) { responses.push_back(r); });
    ASSERT_TRUE(result.quiescent)
        << "survivor starved at crash point " << s
        << " — the universal construction must complete on survivors";
    ASSERT_EQ(responses.size(), 1u);
    // Fetch-and-inc returns the pre-op value: 10 if the crashed inc was
    // lost, 11 if it took effect before the crash.
    EXPECT_TRUE(responses[0] == 10 || responses[0] == 11)
        << "survivor's inc returned " << responses[0] << " at crash point "
        << s;

    // Memory layout: object 0 = head cell, objects 1..n = announce cells.
    // The only residue a crash may leave is in the crashed pid's OWN
    // announce cell (its abandoned announcement / unconsumed helped
    // response); head is cleaned by any survivor's successful SC.
    const auto report = verify::residue_against_best(
        canon_lost, canon_taken, sys.mem.snapshot(), words_of(sys.mem, 1));
    EXPECT_TRUE(report.ok) << "crash point " << s
                           << " leaked outside announce[0]: "
                           << report.describe();
  }
  EXPECT_GT(crash_points, 5) << "crash-point sweep never engaged";
}

TEST(CrashAudit, CombiningUniversalSurvivesWinnerCrashBeforeInstall) {
  const std::vector<std::vector<spec::CounterSpec::Op>> work = {
      {spec::CounterSpec::inc()}, {spec::CounterSpec::inc()}};

  // Find the step at which a solo winner SC-installs its combining record.
  std::uint64_t install_step = 0;
  {
    UniversalSystem sys(/*combine=*/true);
    verify::TraceSide<spec::CounterSpec, UniversalImpl> side(sys.sched,
                                                             sys.impl, work);
    side.start(0);
    ASSERT_FALSE(side.reap(0).has_value());
    while (!sys.impl.head_is_combining()) {
      ASSERT_LT(install_step, 10'000u) << "no combining record ever installed";
      ASSERT_TRUE(side.runnable(0));
      side.step(0);
      ASSERT_FALSE(side.reap(0).has_value())
          << "op completed without ever holding a combining record";
      ++install_step;
    }
  }
  ASSERT_GT(install_step, 0u);

  // Crash the winner at EVERY point before the install: survivors must
  // drain and their announced ops must complete with a correct response
  // (helped responses are never lost).
  for (std::uint64_t s = 0; s < install_step; ++s) {
    UniversalSystem sys(/*combine=*/true);
    verify::TraceSide<spec::CounterSpec, UniversalImpl> side(sys.sched,
                                                             sys.impl, work);
    ASSERT_TRUE(start_and_crash_after(side, 0, s));
    ASSERT_FALSE(sys.impl.head_is_combining());

    std::vector<std::uint32_t> responses;
    const auto result = drain_survivors(
        side, sys.sched, 200'000,
        [&](int, std::uint32_t r) { responses.push_back(r); });
    ASSERT_TRUE(result.quiescent)
        << "survivor blocked by a pre-install combiner crash at step " << s;
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0] == 10 || responses[0] == 11)
        << "survivor's response lost/corrupted at crash point " << s << ": "
        << responses[0];
  }
}

TEST(CrashAudit, CombiningUniversalWinnerCrashedMidBatchBlocks) {
  // The documented fundamental limit (docs/FAULTS.md): a winner crashed
  // AFTER SC-installing the combining record leaves survivors spinning on
  // it forever — flat combining is lock-free only while the combiner is
  // live. The audit must SEE this (otherwise the pre-install rows above
  // prove nothing about where the boundary is).
  const std::vector<std::vector<spec::CounterSpec::Op>> work = {
      {spec::CounterSpec::inc()}, {spec::CounterSpec::inc()}};
  UniversalSystem sys(/*combine=*/true);
  verify::TraceSide<spec::CounterSpec, UniversalImpl> side(sys.sched, sys.impl,
                                                           work);
  side.start(0);
  (void)side.reap(0);
  std::uint64_t guard = 0;
  while (!sys.impl.head_is_combining()) {
    ASSERT_LT(++guard, 10'000u);
    side.step(0);
    (void)side.reap(0);
  }
  side.crash(0);  // combining record installed, batch never published

  const auto result =
      drain_survivors(side, sys.sched, 20'000, [](int, std::uint32_t) {});
  EXPECT_FALSE(result.quiescent)
      << "a survivor completed past a crashed mid-batch combiner — either "
         "the algorithm grew crash recovery (update docs/FAULTS.md and this "
         "test) or the staging is wrong";
}

TEST(CrashAudit, WaitFreeSimHelpersFinishCrashedOwnersAnnouncedOp) {
  const std::vector<std::vector<spec::RegisterSpec::Op>> work = {
      {spec::RegisterSpec::write(2), spec::RegisterSpec::write(3),
       spec::RegisterSpec::write(2)},
      {spec::RegisterSpec::read()}};

  const auto queue_holds = [](const WfsSystem& sys, int pid) {
    const auto& q = sys.impl.alg().combinator().queue();
    for (std::uint64_t h = q.peek_head(); h < q.peek_tail(); ++h) {
      const std::uint64_t slot =
          q.peek_slot(static_cast<std::uint32_t>(h % q.capacity()));
      if (algo::wfs::slot_round(slot) == h / q.capacity() &&
          algo::wfs::slot_pid(slot) == pid) {
        return true;
      }
    }
    return false;
  };

  int crash_points = 0;
  int helped_cases = 0;
  for (std::uint64_t s = 0;; ++s) {
    WfsSystem sys;
    verify::TraceSide<spec::RegisterSpec, core::WaitFreeSimHiRegister> side(
        sys.sched, sys.impl, work);
    // Crash the READER mid-read: with fast_limit = 0 every read announces a
    // record and enqueues itself, so the sweep crosses announce-only,
    // mid-enqueue, and fully-enqueued windows.
    if (!start_and_crash_after(side, 1, s)) break;
    ++crash_points;
    const bool announced =
        algo::wfs::rec_state(sys.impl.alg().combinator().peek_record(1)) ==
        algo::wfs::kPending;
    const bool enqueued = queue_holds(sys, 1);

    const auto result =
        drain_survivors(side, sys.sched, 200'000, [](int, std::uint32_t) {});
    ASSERT_TRUE(result.quiescent)
        << "writer blocked by a crashed reader at crash point " << s
        << " — run_direct's helping must not depend on the owner";

    if (announced && enqueued) {
      // The helping obligation: an announced + visible op is completed by
      // survivors even though its owner is dead.
      EXPECT_EQ(algo::wfs::rec_state(sys.impl.alg().combinator().peek_record(1)),
                algo::wfs::kDone)
          << "announced+enqueued crashed op left pending at crash point " << s;
      EXPECT_GE(sys.impl.alg().combinator().helped_completions(), 1u);
      ++helped_cases;
    }
    // Whatever the crash window: no entry of the crashed pid may be left
    // visible in the queue once the survivors are quiescent.
    EXPECT_FALSE(queue_holds(sys, 1))
        << "crashed reader's entry stuck in the help queue at crash point "
        << s;
  }
  EXPECT_GT(crash_points, 3) << "crash-point sweep never engaged";
  EXPECT_GT(helped_cases, 0)
      << "no crash point ever hit the announced+enqueued window — the "
         "helping obligation was never exercised";
}

// --------------------------------------------------------------- explorer

/// Canonical history key (same construction as test_explorer_dpor.cpp):
/// per-op (pid, encoded op, encoded response-or-'?') labels plus the
/// real-time precedence relation — invariant under DPOR-pruned reorderings,
/// and pending (crashed) ops key as '?'.
template <typename S, typename Hist>
std::string history_key(const S& spec, const Hist& hist) {
  const auto& entries = hist.entries();
  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (entries[a].pid != entries[b].pid) {
      return entries[a].pid < entries[b].pid;
    }
    return entries[a].invoked_at < entries[b].invoked_at;
  });
  std::vector<std::size_t> label(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) label[order[i]] = i;

  std::ostringstream out;
  for (const std::size_t idx : order) {
    const auto& e = entries[idx];
    out << 'p' << e.pid << ':' << spec.encode_op(e.op) << ':';
    if (e.completed()) {
      out << spec.encode_resp(e.resp);
    } else {
      out << '?';
    }
    out << ';';
  }
  out << '|';
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (i != j && entries[i].precedes(entries[j])) {
        out << label[i] << '<' << label[j] << ';';
      }
    }
  }
  return out.str();
}

struct CrashExploreOutcome {
  sim::ExploreStats stats;
  std::set<std::string> keys;
  std::uint64_t lin_failures = 0;
  std::uint64_t crash_walks = 0;
  std::uint64_t max_crashes_seen = 0;
};

CrashExploreOutcome explore_set_with_crashes(sim::ExploreMode mode,
                                             std::uint32_t max_crashes) {
  const spec::SetSpec spec(4);
  const std::vector<std::vector<spec::SetSpec::Op>> work = {
      {spec::SetSpec::insert(1)}, {spec::SetSpec::insert(2)}};
  sim::Explorer<spec::SetSpec, CrashSet2System> explorer(
      spec, [] { return std::make_unique<CrashSet2System>(); }, work);
  CrashExploreOutcome out;
  out.stats = explorer.explore(
      {.max_depth = 64,
       .max_executions = 2'000'000,
       .mode = mode,
       .max_crashes = max_crashes},
      nullptr, [&](CrashSet2System&, const auto& hist) {
        out.keys.insert(history_key(spec, hist));
        if (!verify::check_linearizable(spec, hist).ok()) ++out.lin_failures;
        std::uint64_t crashes = 0;
        for (const sim::Decision& d : explorer.current_prefix()) {
          if (d.crash) ++crashes;
        }
        if (crashes > 0) ++out.crash_walks;
        out.max_crashes_seen = std::max(out.max_crashes_seen, crashes);
      });
  return out;
}

TEST(CrashExplorer, EnumeratesCrashConfigurationsNaiveAndDporAgree) {
  const auto naive0 = explore_set_with_crashes(sim::ExploreMode::kNaive, 0);
  const auto naive1 = explore_set_with_crashes(sim::ExploreMode::kNaive, 1);
  const auto dpor1 = explore_set_with_crashes(sim::ExploreMode::kDpor, 1);
  ASSERT_TRUE(naive0.stats.exhausted);
  ASSERT_TRUE(naive1.stats.exhausted);
  ASSERT_TRUE(dpor1.stats.exhausted);

  // max_crashes = 0 (the default) stays exactly crash-free.
  EXPECT_EQ(naive0.crash_walks, 0u);
  EXPECT_EQ(naive0.max_crashes_seen, 0u);

  // k = 1 enumerates strictly more configurations, every walk respects the
  // budget, and crashed histories stay linearizable (pending op may or may
  // not take effect — the checker's existing semantics).
  EXPECT_GT(naive1.crash_walks, 0u);
  EXPECT_LE(naive1.max_crashes_seen, 1u);
  EXPECT_GT(naive1.stats.executions_complete, naive0.stats.executions_complete);
  EXPECT_EQ(naive0.lin_failures, 0u);
  EXPECT_EQ(naive1.lin_failures, 0u);
  EXPECT_EQ(dpor1.lin_failures, 0u);

  // Crash-free histories are a subset of the crash-enabled set (every
  // crash-free walk is still enumerated).
  EXPECT_TRUE(std::includes(naive1.keys.begin(), naive1.keys.end(),
                            naive0.keys.begin(), naive0.keys.end()));

  // DPOR with crash decisions: fewer (or equal) executions, the SAME
  // complete-history set — crashes are conservatively dependent on
  // everything, so pruning must never drop a crash configuration class.
  EXPECT_LE(dpor1.stats.executions_complete, naive1.stats.executions_complete);
  EXPECT_EQ(naive1.keys, dpor1.keys)
      << "DPOR pruned (or invented) a crash-configuration history class";
}

// -------------------------------------------------------------- round trip

TEST(CrashRoundTrip, LeakCaughtShrunkPrintedAndReplayed) {
  const spec::RegisterSpec spec(4, 1);
  const std::vector<std::vector<spec::RegisterSpec::Op>> work = {
      {spec::RegisterSpec::write(2)}, {spec::RegisterSpec::read()}};

  sim::MemorySnapshot canon_initial, canon_written;
  {
    LeakySystem s;
    canon_initial = s.mem.snapshot();
  }
  {
    LeakySystem s;
    (void)sim::run_solo(s.sched, 0, s.impl.write(2));
    canon_written = s.mem.snapshot();
  }
  std::pair<std::size_t, std::size_t> value_range;
  {
    LeakySystem s;
    value_range = s.mem.word_range(0);
  }
  const auto allowed = [value_range](std::size_t w) {
    return w >= value_range.first && w < value_range.second;
  };
  const auto leak_escapes = [&](const sim::MemorySnapshot& image) {
    return !verify::residue_against_best(canon_initial, canon_written, image,
                                         allowed)
                .ok;
  };

  // 1. CATCH — crash-enumerating exploration finds a configuration whose
  //    quiescent image leaks history.
  sim::Explorer<spec::RegisterSpec, LeakySystem> explorer(
      spec, [] { return std::make_unique<LeakySystem>(); }, work);
  std::vector<sim::Decision> failing;
  (void)explorer.explore(
      {.max_depth = 32,
       .max_executions = 100'000,
       .mode = sim::ExploreMode::kNaive,
       .max_crashes = 1},
      nullptr, [&](LeakySystem& sys, const auto&) {
        if (failing.empty() && leak_escapes(sys.mem.snapshot())) {
          failing = explorer.current_prefix();
        }
      });
  ASSERT_FALSE(failing.empty())
      << "exploration never caught the seeded crash leak";

  // Tolerant executor over a fresh system: invalid schedules are rejected
  // (nullopt); valid ones are driven to quiescence on the survivors — the
  // same post-crash drain the audit itself performs — and yield the
  // quiescent image the leak predicate re-judges. Draining (rather than
  // demanding the candidate end quiescent by itself) is what lets ddmin
  // drop the survivor's decisions one at a time.
  const auto execute = [&](const std::vector<sim::Decision>& decisions)
      -> std::optional<sim::MemorySnapshot> {
    LeakySystem sys;
    verify::TraceSide<spec::RegisterSpec,
                      testing::LeakyCrashRegisterAlg<env::SimEnv>>
        side(sys.sched, sys.impl, work);
    for (const sim::Decision& d : decisions) {
      if (d.pid < 0 || d.pid >= sys.sched.num_processes()) return std::nullopt;
      if (d.crash) {
        if (!side.busy(d.pid) || !side.runnable(d.pid)) return std::nullopt;
        side.crash(d.pid);
      } else if (d.start) {
        if (!side.can_start(d.pid) || side.crashed(d.pid)) return std::nullopt;
        side.start(d.pid);
      } else {
        if (!side.busy(d.pid) || !side.runnable(d.pid)) return std::nullopt;
        side.step(d.pid);
      }
      (void)side.reap(d.pid);
    }
    const auto drained =
        drain_survivors(side, sys.sched, 10'000, [](int, std::uint32_t) {});
    if (!drained.quiescent) return std::nullopt;
    return sys.mem.snapshot();
  };

  // 2. SHRINK — ddmin down to the interleaving that matters: invoke the
  //    write, execute its read + journal store, crash. Four decisions.
  const std::vector<sim::Decision> shrunk =
      verify::shrink_schedule(failing, execute, leak_escapes);
  EXPECT_LE(shrunk.size(), failing.size());
  EXPECT_EQ(shrunk.size(), 4u) << "expected {start w, read, journal, crash}";
  EXPECT_TRUE(std::any_of(shrunk.begin(), shrunk.end(),
                          [](const sim::Decision& d) { return d.crash; }));

  // 3. PRINT — the paste-ready regression literal carries the crash step.
  const sim::ScheduleTrace trace = explorer.trace_of(shrunk);
  ASSERT_EQ(trace.steps.size(), shrunk.size());
  const std::string literal = trace.pretty();
  EXPECT_NE(literal.find(sim::TraceStep::kCrashKind), std::string::npos)
      << literal;

  // 4. REPLAY — the crashed schedule marches differentially over real
  //    std::atomic cells (ReplayEnv), lockstep over the survivors, and the
  //    leak reproduces bit-identically on hardware words.
  sim::Memory sim_mem;
  sim::Scheduler sim_sched(2);
  testing::LeakyCrashRegisterAlg<env::SimEnv> sim_impl(sim_mem, 1);
  sim::Memory replay_mem;
  sim::Scheduler replay_sched(2);
  testing::LeakyCrashRegisterAlg<env::ReplayEnv> replay_impl(replay_mem, 1);
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sched, sim_impl, replay_sched, replay_impl, work, trace,
      verify::snapshot_word_compare(sim_mem, replay_mem));
  EXPECT_TRUE(report.ok) << report.message << "\ntrace:\n" << literal;
  EXPECT_TRUE(leak_escapes(sim_mem.snapshot()))
      << "the shrunk schedule no longer leaks when replayed";
}

}  // namespace
}  // namespace hi
