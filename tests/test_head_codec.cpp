// Word64HeadCodec — the single head/announce packing shared by every
// backend (docs/ENV.md "Word64HeadCodec contract"). Three layers of
// coverage:
//   * round-trip over a lattice of (state, rsp, pid, has-response) points,
//     plus the combining record and the ⊥ conventions;
//   * the sim adapter (RllscWordCodec<RllscValue>) produces words whose lo
//     half is bit-identical to the raw uint64 codec with hi ≡ 0 — the
//     property that lets replay rows use verify::snapshot_word_compare;
//   * PINNED bit layout: moving any field is a cross-backend
//     snapshot-format break, so the exact bit positions are regression
//     constants here, not derived from the codec itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "algo/universal.h"
#include "algo/values.h"

namespace hi {
namespace {

using algo::HeadResp;
using algo::HeadView;
using algo::RllscValue;
using algo::RllscWordCodec;
using algo::Word64HeadCodec;
using Codec = Word64HeadCodec;

const std::vector<std::uint64_t>& state_lattice() {
  static const std::vector<std::uint64_t> states = {
      0, 1, 12, 0xff, 0x1234, 0xffffff, 0x7fffffff, 0xffffffffull};
  return states;
}

const std::vector<std::uint32_t>& rsp_lattice() {
  static const std::vector<std::uint32_t> rsps = {0, 1, 0x20, 0xffff,
                                                  0x7fffff, 0xffffff};
  return rsps;
}

TEST(HeadCodec, BottomConventions) {
  // ⊥ is the all-zero word on both the announce and head sides: a freshly
  // zeroed cell decodes as mode A, state 0, no pid.
  EXPECT_EQ(Codec::bottom(), 0u);
  EXPECT_TRUE(Codec::is_bottom(0));
  EXPECT_FALSE(Codec::is_op(0));
  EXPECT_FALSE(Codec::is_resp(0));
  const HeadView zero = Codec::decode_head(0);
  EXPECT_EQ(zero.state, 0u);
  EXPECT_FALSE(zero.has_response);
  EXPECT_FALSE(zero.combining);
  EXPECT_EQ(zero.pid, -1);
}

TEST(HeadCodec, AnnounceRoundTrip) {
  for (std::uint32_t payload : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    const std::uint64_t op = Codec::announce_op(payload);
    EXPECT_TRUE(Codec::is_op(op));
    EXPECT_FALSE(Codec::is_resp(op));
    EXPECT_FALSE(Codec::is_bottom(op));
    EXPECT_EQ(Codec::payload(op), payload);

    const std::uint64_t resp = Codec::announce_resp(payload);
    EXPECT_TRUE(Codec::is_resp(resp));
    EXPECT_FALSE(Codec::is_op(resp));
    EXPECT_FALSE(Codec::is_bottom(resp));
    EXPECT_EQ(Codec::payload(resp), payload);

    EXPECT_NE(op, resp) << "op and resp tags must differ";
  }
}

TEST(HeadCodec, HeadRoundTripLattice) {
  for (std::uint64_t state : state_lattice()) {
    // Mode A: just the state.
    const std::uint64_t a = Codec::make_head(state, std::nullopt);
    const HeadView va = Codec::decode_head(a);
    EXPECT_EQ(va.state, state);
    EXPECT_FALSE(va.has_response);
    EXPECT_FALSE(va.combining);
    EXPECT_EQ(va.pid, -1);

    // Mode B: every (rsp, pid) corner.
    for (std::uint32_t rsp : rsp_lattice()) {
      for (int pid : {0, 1, 5, 31, 63}) {
        const std::uint64_t b = Codec::make_head(state, HeadResp{rsp, pid});
        const HeadView vb = Codec::decode_head(b);
        EXPECT_EQ(vb.state, state);
        EXPECT_TRUE(vb.has_response);
        EXPECT_FALSE(vb.combining);
        EXPECT_EQ(vb.rsp, rsp);
        EXPECT_EQ(vb.pid, pid);
      }
    }

    // Combining record: state + winner pid, bit 63, never bit 62.
    for (int pid : {0, 3, 63}) {
      const std::uint64_t c = Codec::make_combining_head(state, pid);
      const HeadView vc = Codec::decode_head(c);
      EXPECT_EQ(vc.state, state);
      EXPECT_FALSE(vc.has_response);
      EXPECT_TRUE(vc.combining);
      EXPECT_EQ(vc.pid, pid);
    }
  }
}

TEST(HeadCodec, PinnedBitLayout) {
  // Regression constants: the exact field positions. A failure here means
  // the snapshot format changed — sim/rt/replay snapshots would no longer
  // be comparable against committed traces.
  EXPECT_EQ(Codec::announce_op(0xabcd1234u), 0x1'abcd1234ull);
  EXPECT_EQ(Codec::announce_resp(0xabcd1234u), 0x2'abcd1234ull);
  EXPECT_EQ(Codec::make_head(0x89abcdefull, std::nullopt), 0x89abcdefull);
  // state 0x89abcdef | rsp 0x123456 << 32 | pid 0x2a << 56 | bit 62.
  EXPECT_EQ(Codec::make_head(0x89abcdefull, HeadResp{0x123456, 0x2a}),
            (std::uint64_t{1} << 62) | (std::uint64_t{0x2a} << 56) |
                (std::uint64_t{0x123456} << 32) | 0x89abcdefull);
  // state | pid << 56 | bit 63, no rsp bits.
  EXPECT_EQ(Codec::make_combining_head(0x89abcdefull, 0x2a),
            (std::uint64_t{1} << 63) | (std::uint64_t{0x2a} << 56) |
                0x89abcdefull);
  EXPECT_EQ(Codec::kHasBit, std::uint64_t{1} << 62);
  EXPECT_EQ(Codec::kCombineBit, std::uint64_t{1} << 63);
  EXPECT_EQ(Codec::kStateMask, 0xffffffffull);
  EXPECT_EQ(Codec::kRspMask, 0xffffffull);
  EXPECT_EQ(Codec::kRspShift, 32);
  EXPECT_EQ(Codec::kPidShift, 56);
}

TEST(HeadCodec, SimAdapterMatchesRawWordBitForBit) {
  // The RllscValue adapter puts the codec word in lo and keeps hi ≡ 0, so
  // a sim snapshot of a universal object equals the rt/replay snapshot of
  // the same configuration word-for-word.
  using SimCodec = RllscWordCodec<RllscValue>;
  using RtCodec = RllscWordCodec<std::uint64_t>;

  const RllscValue bot = SimCodec::bottom();
  EXPECT_EQ(bot.lo, RtCodec::bottom());
  EXPECT_EQ(bot.hi, 0u);

  for (std::uint32_t payload : {0u, 7u, 0xffffffffu}) {
    EXPECT_EQ(SimCodec::announce_op(payload).lo, RtCodec::announce_op(payload));
    EXPECT_EQ(SimCodec::announce_op(payload).hi, 0u);
    EXPECT_EQ(SimCodec::announce_resp(payload).lo,
              RtCodec::announce_resp(payload));
    EXPECT_EQ(SimCodec::announce_resp(payload).hi, 0u);
  }
  for (std::uint64_t state : state_lattice()) {
    EXPECT_EQ(SimCodec::make_head(state, std::nullopt).lo,
              RtCodec::make_head(state, std::nullopt));
    const auto with_resp = SimCodec::make_head(state, HeadResp{0x1234, 3});
    EXPECT_EQ(with_resp.lo, RtCodec::make_head(state, HeadResp{0x1234, 3}));
    EXPECT_EQ(with_resp.hi, 0u);
    EXPECT_EQ(SimCodec::make_combining_head(state, 5).lo,
              RtCodec::make_combining_head(state, 5));

    // Decoding agrees field-for-field.
    const HeadView vs = SimCodec::decode_head(with_resp);
    const HeadView vr = RtCodec::decode_head(with_resp.lo);
    EXPECT_EQ(vs.state, vr.state);
    EXPECT_EQ(vs.has_response, vr.has_response);
    EXPECT_EQ(vs.combining, vr.combining);
    EXPECT_EQ(vs.rsp, vr.rsp);
    EXPECT_EQ(vs.pid, vr.pid);
  }
}

}  // namespace
}  // namespace hi
