// Packed bin arrays (env::PackedBins over SimEnv/RtEnv): geometry edge
// cases — K not a multiple of 64, the 1-based §5.1 indexing at the word
// boundary (bins 64/65), the bitmap-initialization round-trip, scans over
// all-zero arrays — plus the re-derived sim step-count expectations for the
// packed §4/§5.1 hot paths (the packed analogue of the padded layout's
// step-exact tests: one word load per 64 bins, one masked fetch_and per
// word, so a K=70 scan is 2 steps where the padded layout pays 70).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "algo/hi_set.h"

#include "core/hi_register_lockfree.h"
#include "core/hi_set.h"
#include "core/max_register.h"
#include "env/rt_env.h"
#include "env/sim_env.h"
#include "register_common.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/max_register_spec.h"
#include "spec/set_spec.h"
#include "util/bits.h"

namespace hi {
namespace {

using testing::kReaderPid;
using testing::kWriterPid;

using SimBins = env::PackedBins<env::SimEnv>;
using RtBins = env::PackedBins<env::RtEnv>;
using SimArray = env::SimEnv::PackedBinArray;
using RtArray = env::RtEnv::PackedBinArray;

// ---- geometry helpers under test ----

TEST(PackedGeometry, WordAndBitOfOneBasedBins) {
  // Bin 1 is bit 0 of word 0; bin 64 is bit 63 of word 0; bin 65 is bit 0
  // of word 1 — the §5.1 1-based indexing against 0-based machine words.
  EXPECT_EQ(util::bin_word(1), 0u);
  EXPECT_EQ(util::bin_bit(1), 0u);
  EXPECT_EQ(util::bin_word(64), 0u);
  EXPECT_EQ(util::bin_bit(64), 63u);
  EXPECT_EQ(util::bin_word(65), 1u);
  EXPECT_EQ(util::bin_bit(65), 0u);
  EXPECT_EQ(util::bin_words(64), 1u);
  EXPECT_EQ(util::bin_words(65), 2u);
  EXPECT_EQ(util::bin_words(70), 2u);
  EXPECT_EQ(util::bin_words(1024), 16u);
  EXPECT_EQ(util::mask_upto(63), ~std::uint64_t{0});
  EXPECT_EQ(util::mask_from(0), ~std::uint64_t{0});
  EXPECT_EQ(util::lowest_set(0b1010), 1u);
  EXPECT_EQ(util::highest_set(0b1010), 3u);
}

// ---- sim-side primitive wrappers (primitives must run inside a scheduled
// process; each wrapper lifts one Bins operation into a schedulable Op) ----

sim::OpTask<std::uint32_t> op_scan_up(SimArray& a, std::uint32_t from) {
  const std::uint32_t hit = co_await SimBins::scan_up(a, from);
  co_return hit;
}
sim::OpTask<std::uint32_t> op_scan_down(SimArray& a, std::uint32_t from) {
  const std::uint32_t hit = co_await SimBins::scan_down(a, from);
  co_return hit;
}
sim::OpTask<std::uint32_t> op_read(SimArray& a, std::uint32_t v) {
  const std::uint8_t bit = co_await SimBins::read(a, v);
  co_return bit;
}
sim::OpTask<std::uint32_t> op_set(SimArray& a, std::uint32_t v) {
  co_await SimBins::set(a, v);
  co_return 0;
}
sim::OpTask<std::uint32_t> op_clear(SimArray& a, std::uint32_t v) {
  co_await SimBins::clear(a, v);
  co_return 0;
}
sim::OpTask<std::uint32_t> op_clear_down(SimArray& a, std::uint32_t from) {
  co_await SimBins::clear_down(a, from);
  co_return 0;
}
sim::OpTask<std::uint32_t> op_clear_up(SimArray& a, std::uint32_t from) {
  co_await SimBins::clear_up(a, from);
  co_return 0;
}

struct SimPackedFixture {
  sim::Memory memory;
  sim::Scheduler sched{1};

  std::uint32_t run(sim::OpTask<std::uint32_t> task) {
    return sim::run_solo(sched, 0, std::move(task));
  }
};

TEST(PackedSim, NonMultipleOf64SizesAndWordBoundaryBins) {
  SimPackedFixture sys;
  // K=70 (not a multiple of 64): 2 words, tail bits stay zero.
  SimArray a = env::SimEnv::make_packed_bin_array(sys.memory, "A", 70, 65);
  ASSERT_EQ(env::SimEnv::packed_words(a), 2u);
  ASSERT_EQ(env::SimEnv::packed_bins(a), 70u);
  // one_index=65 lands on word 1, bit 0 (the boundary crossing).
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 0), 0u);
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 1), 1u);
  EXPECT_EQ(SimBins::peek(a, 65), 1u);
  EXPECT_EQ(SimBins::peek(a, 64), 0u);

  // Writes at both sides of the boundary touch the right words.
  EXPECT_EQ(sys.run(op_set(a, 64)), 0u);
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 0), std::uint64_t{1} << 63);
  EXPECT_EQ(sys.run(op_read(a, 64)), 1u);
  EXPECT_EQ(sys.run(op_read(a, 65)), 1u);
  EXPECT_EQ(sys.run(op_clear(a, 65)), 0u);
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 1), 0u);
  EXPECT_EQ(SimBins::peek(a, 64), 1u) << "clear(65) must not touch word 0";

  // scan_up crosses the word boundary; scan_down crosses it backwards.
  EXPECT_EQ(sys.run(op_set(a, 70)), 0u);
  EXPECT_EQ(sys.run(op_scan_up(a, 1)), 64u);
  EXPECT_EQ(sys.run(op_scan_up(a, 65)), 70u);
  EXPECT_EQ(sys.run(op_scan_down(a, 70)), 70u);
  EXPECT_EQ(sys.run(op_scan_down(a, 69)), 64u);
  EXPECT_EQ(sys.run(op_scan_down(a, 63)), 0u);
}

TEST(PackedSim, BitsInitializationRoundTrip) {
  SimPackedFixture sys;
  const std::uint64_t bits = 0xdeadbeefcafef00dull;
  SimArray a = env::SimEnv::make_packed_bin_array_bits(sys.memory, "S", 64,
                                                       bits);
  ASSERT_EQ(env::SimEnv::packed_words(a), 1u);
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 0), bits);
  for (std::uint32_t v = 1; v <= 64; ++v) {
    EXPECT_EQ(SimBins::peek(a, v), (bits >> (v - 1)) & 1) << "bin " << v;
  }
  // Bits beyond a short domain are dropped so tail bins stay 0.
  SimArray b = env::SimEnv::make_packed_bin_array_bits(sys.memory, "T", 10,
                                                       ~std::uint64_t{0});
  EXPECT_EQ(env::SimEnv::peek_packed_word(b, 0), (std::uint64_t{1} << 10) - 1);
}

TEST(PackedSim, MultiWordBitsInitializationRoundTrip) {
  SimPackedFixture sys;
  const std::vector<std::uint64_t> words{0xdeadbeefcafef00dull,
                                         0x0123456789abcdefull};
  // Two full words: every bin round-trips through util::bin_test geometry.
  SimArray a =
      env::SimEnv::make_packed_bin_array_words(sys.memory, "S", 128, words);
  ASSERT_EQ(env::SimEnv::packed_words(a), 2u);
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 0), words[0]);
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 1), words[1]);
  for (std::uint32_t v = 1; v <= 128; ++v) {
    EXPECT_EQ(SimBins::peek(a, v), util::bin_test(words, v) ? 1u : 0u)
        << "bin " << v;
  }
  // 65 bins: word 1 keeps ONLY bit 0 (bin 65) of the initializer.
  SimArray b =
      env::SimEnv::make_packed_bin_array_words(sys.memory, "B", 65, words);
  EXPECT_EQ(env::SimEnv::peek_packed_word(b, 0), words[0]);
  EXPECT_EQ(env::SimEnv::peek_packed_word(b, 1), words[1] & 1u);
  // K%64 != 0 tail masking: 70 bins of all-ones leave 6 live tail bits.
  const std::vector<std::uint64_t> ones{~std::uint64_t{0}, ~std::uint64_t{0}};
  SimArray c =
      env::SimEnv::make_packed_bin_array_words(sys.memory, "C", 70, ones);
  EXPECT_EQ(env::SimEnv::peek_packed_word(c, 1), 0x3fu);
  // Missing trailing words read as all-zero.
  const std::vector<std::uint64_t> short_init{~std::uint64_t{0}};
  SimArray d = env::SimEnv::make_packed_bin_array_words(sys.memory, "D", 128,
                                                        short_init);
  EXPECT_EQ(env::SimEnv::peek_packed_word(d, 0), ~std::uint64_t{0});
  EXPECT_EQ(env::SimEnv::peek_packed_word(d, 1), 0u);

  // The padded layout shares the same initializer geometry.
  auto padded =
      env::SimEnv::make_bin_array_words(sys.memory, "P", 70, words);
  for (std::uint32_t v = 1; v <= 70; ++v) {
    EXPECT_EQ(env::SimEnv::peek_bit(padded, v),
              util::bin_test(words, v) ? 1u : 0u)
        << "bin " << v;
  }
}

TEST(PackedSim, MultiWordHiSetAcrossWordBoundary) {
  // The lifted §5.1 set past 64 bins: membership ops address word v/64
  // directly (still one primitive each) and snapshot_members walks word
  // scans across the boundary.
  sim::Memory memory;
  sim::Scheduler sched{1};
  algo::HiSetAlgPacked<env::SimEnv> set(memory, 128,
                                        std::span<const std::uint64_t>{});

  const std::uint64_t before = sched.steps_of(0);
  EXPECT_TRUE(sim::run_solo(sched, 0, set.insert(64)));
  EXPECT_TRUE(sim::run_solo(sched, 0, set.insert(65)));
  EXPECT_TRUE(sim::run_solo(sched, 0, set.insert(128)));
  EXPECT_TRUE(sim::run_solo(sched, 0, set.lookup(65)));
  EXPECT_FALSE(sim::run_solo(sched, 0, set.lookup(66)));
  EXPECT_EQ(sched.steps_of(0) - before, 5u)
      << "multi-word ops stay one primitive each";

  std::vector<std::uint32_t> members;
  EXPECT_EQ(sim::run_solo(sched, 0, set.snapshot_members(members)), 3u);
  EXPECT_EQ(members, (std::vector<std::uint32_t>{64, 65, 128}));

  // Memory is the two-word membership bitmap — perfect HI across words.
  const auto snap = memory.snapshot();
  ASSERT_EQ(snap.words.size(), 2u);
  EXPECT_EQ(snap.words[0], std::uint64_t{1} << 63);
  EXPECT_EQ(snap.words[1], (std::uint64_t{1} << 63) | 1u);

  EXPECT_TRUE(sim::run_solo(sched, 0, set.remove(65)));
  EXPECT_FALSE(sim::run_solo(sched, 0, set.lookup(65)));
}

TEST(PackedSim, ScansOnAllZeroArrayReturnZero) {
  SimPackedFixture sys;
  SimArray a = env::SimEnv::make_packed_bin_array(sys.memory, "A", 130, 0);
  ASSERT_EQ(env::SimEnv::packed_words(a), 3u);
  EXPECT_EQ(sys.run(op_scan_up(a, 1)), 0u);
  EXPECT_EQ(sys.run(op_scan_up(a, 128)), 0u);
  EXPECT_EQ(sys.run(op_scan_down(a, 130)), 0u);
  EXPECT_EQ(sys.run(op_scan_down(a, 1)), 0u);
}

TEST(PackedSim, ClearRangesRespectWordBoundaries) {
  SimPackedFixture sys;
  SimArray a = env::SimEnv::make_packed_bin_array_bits(sys.memory, "A", 70,
                                                       ~std::uint64_t{0});
  for (std::uint32_t v = 65; v <= 70; ++v) {
    (void)sys.run(op_set(a, v));
  }
  // clear_down(64): word 0 fully cleared, word 1 untouched.
  (void)sys.run(op_clear_down(a, 64));
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 0), 0u);
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 1), 0x3fu);
  // clear_up(66): bins 66..70 cleared, bin 65 kept.
  (void)sys.run(op_clear_up(a, 66));
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 1), 1u);
  // Partial clear inside word 0.
  for (std::uint32_t v = 1; v <= 10; ++v) {
    (void)sys.run(op_set(a, v));
  }
  (void)sys.run(op_clear_down(a, 5));
  EXPECT_EQ(env::SimEnv::peek_packed_word(a, 0), 0x3e0u);  // bins 6..10
}

TEST(PackedSim, SnapshotIsThePackedWordVector) {
  // mem(C) of a packed array is one 64-bit word per cell — the packed
  // representation is itself the memory representation the HI definitions
  // compare.
  SimPackedFixture sys;
  SimArray a = env::SimEnv::make_packed_bin_array(sys.memory, "A", 70, 3);
  const auto snap = sys.memory.snapshot();
  ASSERT_EQ(snap.words.size(), 2u);
  EXPECT_EQ(snap.words[0], 4u);
  EXPECT_EQ(snap.words[1], 0u);
  EXPECT_EQ(sys.memory.object(0).name(), "A.w[0]");
  EXPECT_EQ(sys.memory.object(1).name(), "A.w[1]");
}

// ---- the same edge cases over RtEnv's eager atomics ----

TEST(PackedRt, NonMultipleOf64SizesAndWordBoundaryBins) {
  RtArray a = env::RtEnv::make_packed_bin_array(env::RtEnv::Ctx{}, "A", 70,
                                                65);
  ASSERT_EQ(env::RtEnv::packed_words(a), 2u);
  EXPECT_EQ(env::RtEnv::peek_packed_word(a, 0), 0u);
  EXPECT_EQ(env::RtEnv::peek_packed_word(a, 1), 1u);

  (void)RtBins::set(a, 64).await_resume();
  (void)RtBins::set(a, 70).await_resume();
  EXPECT_EQ(RtBins::peek(a, 64), 1u);
  EXPECT_EQ(RtBins::peek(a, 65), 1u);
  EXPECT_EQ(RtBins::scan_up(a, 1).get(), 64u);
  EXPECT_EQ(RtBins::scan_up(a, 65).get(), 65u);
  EXPECT_EQ(RtBins::scan_up(a, 66).get(), 70u);
  EXPECT_EQ(RtBins::scan_down(a, 69).get(), 65u);
  EXPECT_EQ(RtBins::scan_down(a, 63).get(), 0u);

  (void)RtBins::clear(a, 65).await_resume();
  EXPECT_EQ(RtBins::peek(a, 64), 1u) << "clear(65) must not touch word 0";
  EXPECT_EQ(RtBins::scan_down(a, 70).get(), 70u);

  (void)RtBins::clear_down(a, 64).get();
  EXPECT_EQ(env::RtEnv::peek_packed_word(a, 0), 0u);
  (void)RtBins::clear_up(a, 66).get();
  EXPECT_EQ(env::RtEnv::peek_packed_word(a, 1), 0u);
  EXPECT_EQ(RtBins::scan_up(a, 1).get(), 0u) << "all-zero scan";
}

TEST(PackedRt, BitsInitializationRoundTrip) {
  const std::uint64_t bits = 0x123456789abcdef0ull;
  RtArray a = env::RtEnv::make_packed_bin_array_bits(env::RtEnv::Ctx{}, "S",
                                                     64, bits);
  EXPECT_EQ(env::RtEnv::peek_packed_word(a, 0), bits);
  for (std::uint32_t v = 1; v <= 64; ++v) {
    EXPECT_EQ(RtBins::peek(a, v), (bits >> (v - 1)) & 1) << "bin " << v;
  }
  RtArray b = env::RtEnv::make_packed_bin_array_bits(env::RtEnv::Ctx{}, "T",
                                                     10, ~std::uint64_t{0});
  EXPECT_EQ(env::RtEnv::peek_packed_word(b, 0), (std::uint64_t{1} << 10) - 1);
}

TEST(PackedRt, MultiWordBitsInitializationRoundTrip) {
  const std::vector<std::uint64_t> words{0xdeadbeefcafef00dull,
                                         0x0123456789abcdefull};
  RtArray a = env::RtEnv::make_packed_bin_array_words(env::RtEnv::Ctx{}, "S",
                                                      128, words);
  ASSERT_EQ(env::RtEnv::packed_words(a), 2u);
  EXPECT_EQ(env::RtEnv::peek_packed_word(a, 0), words[0]);
  EXPECT_EQ(env::RtEnv::peek_packed_word(a, 1), words[1]);
  for (std::uint32_t v = 1; v <= 128; ++v) {
    EXPECT_EQ(RtBins::peek(a, v), util::bin_test(words, v) ? 1u : 0u)
        << "bin " << v;
  }
  // K%64 != 0 tail masking across the boundary (65 and 70 bins).
  const std::vector<std::uint64_t> ones{~std::uint64_t{0}, ~std::uint64_t{0}};
  RtArray b = env::RtEnv::make_packed_bin_array_words(env::RtEnv::Ctx{}, "B",
                                                      65, ones);
  EXPECT_EQ(env::RtEnv::peek_packed_word(b, 1), 1u);
  RtArray c = env::RtEnv::make_packed_bin_array_words(env::RtEnv::Ctx{}, "C",
                                                      70, ones);
  EXPECT_EQ(env::RtEnv::peek_packed_word(c, 1), 0x3fu);
}

TEST(PackedRt, MultiWordHiSetSnapshotMembers) {
  // Same lifted-set coverage as the sim twin, over eager hardware atomics,
  // with a >64-bit initial membership.
  const std::vector<std::uint64_t> init{std::uint64_t{1} << 63,  // bin 64
                                        0x5u};                   // bins 65, 67
  algo::HiSetAlgPacked<env::RtEnv> set(env::RtEnv::Ctx{}, 130, init);
  EXPECT_TRUE(set.lookup(64).get());
  EXPECT_TRUE(set.lookup(65).get());
  EXPECT_TRUE(set.lookup(67).get());
  EXPECT_FALSE(set.lookup(66).get());
  EXPECT_TRUE(set.insert(130).get());
  EXPECT_TRUE(set.remove(65).get());

  std::vector<std::uint32_t> members;
  EXPECT_EQ(set.snapshot_members(members).get(), 3u);
  EXPECT_EQ(members, (std::vector<std::uint32_t>{64, 67, 130}));
  EXPECT_EQ(set.memory_bytes(), 3u * sizeof(std::uint64_t));
}

TEST(PackedRt, FootprintIsTwoCacheLinesAtK1024) {
  // The representation/bit-complexity tradeoff the packing buys: K=1024
  // bins in 128 contiguous bytes, vs 64 KiB of padded per-bit cells.
  RtArray packed = env::RtEnv::make_packed_bin_array(env::RtEnv::Ctx{}, "A",
                                                     1024, 1);
  EXPECT_EQ(RtBins::footprint_bytes(packed), 128u);
  auto padded = env::RtEnv::make_bin_array(env::RtEnv::Ctx{}, "A", 1024, 1);
  EXPECT_EQ(env::PaddedBins<env::RtEnv>::footprint_bytes(padded),
            1024u * sizeof(rt::BinCell));
  EXPECT_GE(sizeof(rt::BinCell), 64u);
}

// ---- re-derived sim step counts for the packed hot paths ----
//
// The padded layout's counterparts: an Algorithm 2 Write is exactly K
// steps, a solo Read 2m-1 steps (m = value read). Packed: a Write is
// 1 fetch_or + one fetch_and per word below + one per word at-or-above,
// a solo Read one word load per 64 bins scanned in each direction.

TEST(PackedStepCounts, LockFreeWriteIsPerWordNotPerBin) {
  const std::uint32_t k = 70;  // 2 words
  testing::RegisterSystem<core::PackedLockFreeHiRegister> sys(k);

  // Write(2): set(2) = 1 fetch_or; clear_down(1) = 1 fetch_and (word 0);
  // clear_up(3) = 2 fetch_ands (words 0 and 1). Total 4 (padded: 70).
  std::uint64_t before = sys.sched.steps_of(kWriterPid);
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 2));
  EXPECT_EQ(sys.sched.steps_of(kWriterPid) - before, 4u);

  // Write(70): set = 1; clear_down(69) = 2 fetch_ands (words 1, 0);
  // clear_up(71) is out of range = 0. Total 3.
  before = sys.sched.steps_of(kWriterPid);
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 70));
  EXPECT_EQ(sys.sched.steps_of(kWriterPid) - before, 3u);

  // Write(1): set = 1; clear_down(0) = 0; clear_up(2) = 2. Total 3.
  before = sys.sched.steps_of(kWriterPid);
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 1));
  EXPECT_EQ(sys.sched.steps_of(kWriterPid) - before, 3u);
}

TEST(PackedStepCounts, LockFreeTryReadScansWordsNotBins) {
  // The re-derived Algorithm 2/3 TryRead upward-scan expectation: a solo
  // Read is ONE TryRead; with the value at bin 65 of K=70 the upward scan
  // loads word 0 (zero) then word 1 (hit), and the downward confirmation
  // loads word 0 once more — 3 steps total (padded: 2·65−1 = 129).
  const std::uint32_t k = 70;
  testing::RegisterSystem<core::PackedLockFreeHiRegister> sys(k);
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 65));

  std::uint64_t before = sys.sched.steps_of(kReaderPid);
  EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid)),
            65u);
  EXPECT_EQ(sys.sched.steps_of(kReaderPid) - before, 3u);

  // Value in word 0 (bin 2): scan_up hits word 0 immediately; the
  // confirmation scan_down(1) re-loads word 0. 2 steps.
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 2));
  before = sys.sched.steps_of(kReaderPid);
  EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid)),
            2u);
  EXPECT_EQ(sys.sched.steps_of(kReaderPid) - before, 2u);

  // Value 1: scan_up hits word 0; no bins below. 1 step.
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 1));
  before = sys.sched.steps_of(kReaderPid);
  EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid)),
            1u);
  EXPECT_EQ(sys.sched.steps_of(kReaderPid) - before, 1u);
}

TEST(PackedStepCounts, MaxRegisterAbsorbedWriteStaysZeroSteps) {
  const std::uint32_t k = 70;
  const spec::MaxRegisterSpec spec(k, 1);
  sim::Memory memory;
  sim::Scheduler sched(2);
  core::PackedHiMaxRegister reg(memory, spec, kWriterPid, kReaderPid);

  // Raise the maximum to 65: set(65) = 1 fetch_or; clear_down(64) = 1
  // fetch_and (word 0 only — word 1 keeps the new maximum). 2 steps.
  std::uint64_t before = sched.steps_of(kWriterPid);
  (void)sim::run_solo(sched, kWriterPid, reg.write_max(kWriterPid, 65));
  EXPECT_EQ(sched.steps_of(kWriterPid) - before, 2u);

  // Absorbed write: still ZERO shared-memory steps — packing must not add
  // a footprint to the §5.1 absorbed fast path.
  before = sched.steps_of(kWriterPid);
  (void)sim::run_solo(sched, kWriterPid, reg.write_max(kWriterPid, 30));
  EXPECT_EQ(sched.steps_of(kWriterPid) - before, 0u);

  // ReadMax at m=65: 2 loads up + 1 confirmation load. 3 steps.
  before = sched.steps_of(kReaderPid);
  EXPECT_EQ(sim::run_solo(sched, kReaderPid, reg.read_max(kReaderPid)), 65u);
  EXPECT_EQ(sched.steps_of(kReaderPid) - before, 3u);

  // Canonical at quiescence: can(65) = e_65, as one word image.
  const auto snap = memory.snapshot();
  ASSERT_EQ(snap.words.size(), 2u);
  EXPECT_EQ(snap.words[0], 0u);
  EXPECT_EQ(snap.words[1], 1u);
}

TEST(PackedStepCounts, HiSetOpsAreOnePrimitiveEach) {
  const std::uint32_t domain = 64;
  const spec::SetSpec spec(domain);
  sim::Memory memory;
  sim::Scheduler sched(1);
  core::PackedHiSet set(memory, spec);

  const std::uint64_t before = sched.steps_of(0);
  EXPECT_TRUE(sim::run_solo(sched, 0, set.insert(64)));
  EXPECT_TRUE(sim::run_solo(sched, 0, set.lookup(64)));
  EXPECT_TRUE(sim::run_solo(sched, 0, set.remove(64)));
  EXPECT_FALSE(sim::run_solo(sched, 0, set.lookup(64)));
  EXPECT_EQ(sched.steps_of(0) - before, 4u);

  // Perfect HI, packed edition: the single word IS the membership bitmap.
  EXPECT_TRUE(sim::run_solo(sched, 0, set.insert(3)));
  EXPECT_TRUE(sim::run_solo(sched, 0, set.insert(64)));
  const auto snap = memory.snapshot();
  ASSERT_EQ(snap.words.size(), 1u);
  EXPECT_EQ(snap.words[0], (std::uint64_t{1} << 63) | 0x4u);
}

}  // namespace
}  // namespace hi
