// The wait-free simulation combinator (algo/wait_free_sim.h), bottom-up:
//
//   1. STEP-EXACT PROTOCOL — the help queue's enqueue/peek/dequeue
//      versioned-CAS protocol costs exactly the steps the file comment
//      advertises (4/2/2 uncontended), serves FIFO, survives a full ring
//      wrap via round versioning, and repairs a lagging head pointer.
//   2. FAST/SLOW HANDOFF — solo fast path leaves no residue; fast_limit=0
//      forces the announce→enqueue→help-until-done slow path at a pinned
//      step count; the contention-failure streak is observable exactly
//      between a failed attempt and the operation's completion.
//   3. WAIT-FREEDOM — under a value-adaptive adversary (a full write
//      targeting the reader's pending bin before every reader step) the
//      plain Algorithm 2 reader starves forever, while the combinator's
//      reader finishes within a derived step bound because the writer's
//      pre-write help completes the queued record (helper ≠ owner).
//   4. DPOR SOUNDNESS — naive and kDpor exploration of helped workloads
//      produce the same complete-execution history set with zero
//      linearizability failures, including executions where a helper
//      completes another process's operation.
//   5. THEOREM 17 — the combinator is wait-free, so it MUST lose
//      state-quiescent HI: two executions ending in the same abstract state
//      diverge at quiescence, and the divergence is localized entirely to
//      the combinator's words (operation records + help-queue ring/counters)
//      while the inner A array stays canonical. The plain wait-free
//      Algorithm 4 run through the same schedule shape stays canonical —
//      the helping residue is the price of the transform, not a shared
//      artifact of the schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "algo/wait_free_sim.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "core/wait_free_sim.h"
#include "env/sim_env.h"
#include "register_common.h"
#include "sim/explorer.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/register_spec.h"
#include "verify/divergence.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using testing::kReaderPid;
using testing::kWriterPid;

// ------------------------------------------------------------- queue drivers

using SimQueue = algo::HelpQueue<env::SimEnv>;

// The queue's entry points are Subs (so they compose under any Op); these
// wrappers give the scheduler a standalone Op per protocol action.
sim::OpTask<std::uint64_t> enqueue_op(SimQueue& q, int pid) {
  const std::uint64_t at = co_await q.enqueue(pid);
  co_return at;
}

sim::OpTask<SimQueue::Peek> peek_op(SimQueue& q) {
  const SimQueue::Peek p = co_await q.peek();
  co_return p;
}

sim::OpTask<bool> dequeue_op(SimQueue& q, std::uint64_t index, int pid) {
  const bool won = co_await q.try_dequeue(index, pid);
  co_return won;
}

sim::OpTask<bool> advance_op(SimQueue& q, std::uint64_t index) {
  const bool moved = co_await q.advance_head(index);
  co_return moved;
}

// ------------------------------------------------- step-exact queue protocol

TEST(WaitFreeSimQueue, StepExactEnqueuePeekDequeueFifo) {
  sim::Memory mem;
  sim::Scheduler sched(2);
  SimQueue q(mem, /*num_processes=*/2);
  ASSERT_EQ(q.capacity(), 8u);  // 4 × processes

  // Enqueue, uncontended: read tail, read slot, claim CAS, tail-advance CAS.
  std::uint64_t s = sched.total_steps();
  EXPECT_EQ(sim::run_solo(sched, 0, enqueue_op(q, 0)), 0u);
  EXPECT_EQ(sched.total_steps() - s, 4u);

  // Peek: head read + slot read.
  s = sched.total_steps();
  {
    const SimQueue::Peek p = sim::run_solo(sched, 1, peek_op(q));
    EXPECT_EQ(sched.total_steps() - s, 2u);
    EXPECT_TRUE(p.has);
    EXPECT_FALSE(p.stale);
    EXPECT_EQ(p.index, 0u);
    EXPECT_EQ(p.pid, 0);
  }

  EXPECT_EQ(sim::run_solo(sched, 1, enqueue_op(q, 1)), 1u);

  // Dequeue: slot re-arm CAS + head-advance CAS.
  s = sched.total_steps();
  EXPECT_TRUE(sim::run_solo(sched, 0, dequeue_op(q, 0, 0)));
  EXPECT_EQ(sched.total_steps() - s, 2u);

  // FIFO: the second entry is now at the head.
  {
    const SimQueue::Peek p = sim::run_solo(sched, 0, peek_op(q));
    EXPECT_TRUE(p.has);
    EXPECT_EQ(p.index, 1u);
    EXPECT_EQ(p.pid, 1);
  }
  EXPECT_TRUE(sim::run_solo(sched, 1, dequeue_op(q, 1, 1)));

  // Empty again: peek still costs its 2 steps and reports no entry.
  s = sched.total_steps();
  {
    const SimQueue::Peek p = sim::run_solo(sched, 0, peek_op(q));
    EXPECT_EQ(sched.total_steps() - s, 2u);
    EXPECT_FALSE(p.has);
    EXPECT_FALSE(p.stale);
  }
  EXPECT_TRUE(q.quiescent_empty());
  EXPECT_EQ(q.peek_head(), 2u);
  EXPECT_EQ(q.peek_tail(), 2u);
  // Retired slots are re-armed for their NEXT round, not reset to round 0.
  EXPECT_EQ(q.peek_slot(0), algo::wfs::slot_empty(1));
  EXPECT_EQ(q.peek_slot(1), algo::wfs::slot_empty(1));
}

TEST(WaitFreeSimQueue, RoundVersioningSurvivesRingWrap) {
  sim::Memory mem;
  sim::Scheduler sched(2);
  SimQueue q(mem, /*num_processes=*/2);
  const std::uint64_t cap = q.capacity();  // 8

  // Drive the ring through two full wraps; indices stay monotone and each
  // slot's round version advances so a re-used slot can never serve a stale
  // index (the ABA defence the enqueue CAS leans on).
  for (std::uint64_t i = 0; i < 2 * cap + 1; ++i) {
    const int pid = static_cast<int>(i % 2);
    ASSERT_EQ(sim::run_solo(sched, pid, enqueue_op(q, pid)), i);
    const SimQueue::Peek p = sim::run_solo(sched, 1 - pid, peek_op(q));
    ASSERT_TRUE(p.has);
    ASSERT_EQ(p.index, i);
    ASSERT_EQ(p.pid, pid);
    ASSERT_TRUE(sim::run_solo(sched, pid, dequeue_op(q, i, pid)));
  }

  EXPECT_EQ(q.peek_head(), 2 * cap + 1);
  EXPECT_EQ(q.peek_tail(), 2 * cap + 1);
  // Slot 0 served indices 0, cap, 2·cap → re-armed for round 3; slots 1..7
  // served two indices each → round 2.
  EXPECT_EQ(q.peek_slot(0), algo::wfs::slot_empty(3));
  for (std::uint32_t i = 1; i < cap; ++i) {
    EXPECT_EQ(q.peek_slot(i), algo::wfs::slot_empty(2)) << "slot " << i;
  }
}

TEST(WaitFreeSimQueue, StaleHeadRepairedByPeekAdvance) {
  sim::Memory mem;
  sim::Scheduler sched(2);
  SimQueue q(mem, /*num_processes=*/2);
  (void)sim::run_solo(sched, 0, enqueue_op(q, 0));

  // Retirer stalls between its two CASes: the slot is re-armed but the head
  // pointer lags.
  sim::OpTask<bool> deq = dequeue_op(q, 0, 0);
  sched.start(0, deq);  // primed at the slot re-arm CAS
  sched.step(0);        // slot CAS lands; head CAS still pending

  const SimQueue::Peek p = sim::run_solo(sched, 1, peek_op(q));
  EXPECT_FALSE(p.has);
  EXPECT_TRUE(p.stale);
  EXPECT_EQ(p.head, 0u);
  EXPECT_TRUE(sim::run_solo(sched, 1, advance_op(q, 0)));
  EXPECT_EQ(q.peek_head(), 1u);

  // The stalled retirer resumes; its head CAS fails harmlessly and it still
  // reports the retirement it won.
  while (sched.runnable(0)) sched.step(0);
  ASSERT_TRUE(sched.op_finished(0));
  sched.finish(0);
  EXPECT_TRUE(deq.take_result());
  EXPECT_EQ(q.peek_head(), 1u);
}

// --------------------------------------------------------- fast/slow handoff

TEST(WaitFreeSim, SoloFastPathStepExactNoResidue) {
  testing::RegisterSystem<core::WaitFreeSimHiRegister> sys(3);  // fast_limit 1

  // Solo write, K=3, 1→2: help_head on the empty queue (head read + slot
  // read) + Alg 2's set A[2] / clear A[1] / clear A[3].
  std::uint64_t s = sys.sched.total_steps();
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 2));
  EXPECT_EQ(sys.sched.total_steps() - s, 5u);

  // Solo fast read: help_head (2) + one TryRead — scan A[1], A[2] (2) +
  // confirm_down over A[1] (1).
  s = sys.sched.total_steps();
  EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid)),
            2u);
  EXPECT_EQ(sys.sched.total_steps() - s, 5u);

  const auto& comb = sys.impl.alg().combinator();
  EXPECT_EQ(comb.total_ops(), 2u);
  EXPECT_EQ(comb.slow_path_entries(), 0u);
  EXPECT_EQ(comb.helped_completions(), 0u);
  // No residue: record still idle, ring untouched.
  EXPECT_EQ(comb.peek_record(kReaderPid), algo::wfs::rec_word(algo::wfs::kIdle, 0, 0));
  EXPECT_TRUE(comb.queue().quiescent_empty());
  EXPECT_EQ(comb.queue().peek_head(), 0u);
  EXPECT_EQ(comb.queue().peek_tail(), 0u);
}

TEST(WaitFreeSim, SoloSlowPathStepExactSelfHelp) {
  sim::Memory mem;
  sim::Scheduler sched(2);
  const spec::RegisterSpec spec(3, 1);
  core::WaitFreeSimHiRegister impl(mem, spec, kWriterPid, kReaderPid,
                                   /*fast_limit=*/0);
  (void)sim::run_solo(sched, kWriterPid, impl.write(kWriterPid, 2));

  // fast_limit 0 forces every read onto the slow path even solo. Exact cost
  // for K=3 with A=[0,1,0]:
  //   help_head on the empty queue                         2
  //   announce pending record (plain write)                1
  //   enqueue (tail, slot, claim CAS, tail CAS)            4
  //   own-record read (still pending)                      1
  //   help_head on own entry: peek (2) + record read (1)
  //     + helped TryRead: scan A[1],A[2] (2) + confirm
  //       over A[1] (1) + install CAS (1) + dequeue (2)    9
  //   own-record read (done)                               1
  const std::uint64_t before = sched.total_steps();
  EXPECT_EQ(sim::run_solo(sched, kReaderPid, impl.read(kReaderPid)), 2u);
  EXPECT_EQ(sched.total_steps() - before, 18u);

  const auto& comb = impl.alg().combinator();
  EXPECT_EQ(comb.slow_path_entries(), 1u);
  EXPECT_EQ(comb.helped_completions(), 0u);  // owner completed its own record
  EXPECT_TRUE(comb.queue().quiescent_empty());
  // The record never returns to idle — the residue the Thm 17 probe pins.
  EXPECT_EQ(comb.peek_record(kReaderPid),
            algo::wfs::rec_word(algo::wfs::kDone, 1, 2));
}

TEST(WaitFreeSim, FailStreakObservableBetweenFailureAndCompletion) {
  testing::RegisterSystem<core::WaitFreeSimHiRegister> sys(3);
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 3));

  // Reader scans past A[1], A[2] while the state is 3 (both 0)...
  sim::OpTask<std::uint32_t> read = sys.impl.read(kReaderPid);
  sys.sched.start(kReaderPid, read);
  for (int i = 0; i < 4; ++i) sys.sched.step(kReaderPid);
  ASSERT_EQ(sys.sched.pending_object(kReaderPid), 2);  // A[3] is next

  // ...the write 3→2 lands in full, so the pending A[3] read returns 0: the
  // scan chased the moving 1 and the fast attempt fails.
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 2));
  sys.sched.step(kReaderPid);

  const auto& comb = sys.impl.alg().combinator();
  EXPECT_EQ(comb.fail_streak(kReaderPid), 1u);  // == fast_limit: fast path off
  EXPECT_EQ(comb.slow_path_entries(), 1u);

  while (sys.sched.runnable(kReaderPid)) sys.sched.step(kReaderPid);
  ASSERT_TRUE(sys.sched.op_finished(kReaderPid));
  sys.sched.finish(kReaderPid);
  EXPECT_EQ(read.take_result(), 2u);
  EXPECT_EQ(comb.fail_streak(kReaderPid), 0u);  // reset by completion
}

// ------------------------------------------------------ wait-freedom bound

// The value-adaptive adversary of the starvation argument: before every
// reader step, run one complete write choosing a value whose bin is NOT the
// bin the reader is about to read (pending_object is exactly the Lemma 16
// adversary power). Every bin the reader examines is therefore 0.
std::uint32_t adversary_value(int pending_object, std::uint32_t num_values) {
  if (pending_object < 0 ||
      pending_object >= static_cast<int>(num_values)) {
    return 2;  // reader is on a combinator word; any value works
  }
  const std::uint32_t avoid = static_cast<std::uint32_t>(pending_object) + 1;
  return avoid == 2 ? 3 : 2;
}

TEST(WaitFreeSim, PlainLockFreeReaderStarvesUnderValueAdaptiveAdversary) {
  testing::RegisterSystem<core::LockFreeHiRegister> sys(3);
  sim::OpTask<std::uint32_t> read = sys.impl.read(kReaderPid);
  sys.sched.start(kReaderPid, read);

  for (int i = 0; i < 300; ++i) {
    const int obj = sys.sched.pending_object(kReaderPid);
    ASSERT_GE(obj, 0);
    ASSERT_LT(obj, 3);  // the plain reader only ever touches the A bins
    (void)sim::run_solo(sys.sched, kWriterPid,
                        sys.impl.write(kWriterPid, adversary_value(obj, 3)));
    sys.sched.step(kReaderPid);
  }
  // 300 reader steps, zero progress: lock-free but not wait-free.
  EXPECT_FALSE(sys.sched.op_finished(kReaderPid));
  sys.sched.abandon(kReaderPid);
}

TEST(WaitFreeSim, CombinatorReadCompletesUnderSameAdversary) {
  sim::Memory mem;
  sim::Scheduler sched(2);
  const spec::RegisterSpec spec(3, 1);
  core::WaitFreeSimHiRegister impl(mem, spec, kWriterPid, kReaderPid,
                                   /*fast_limit=*/1);

  sim::OpTask<std::uint32_t> read = impl.read(kReaderPid);
  sched.start(kReaderPid, read);
  int rounds = 0;
  while (!sched.op_finished(kReaderPid)) {
    ASSERT_LT(++rounds, 300) << "combinator read did not finish — not wait-free";
    const std::uint32_t v = adversary_value(sched.pending_object(kReaderPid), 3);
    (void)sim::run_solo(sched, kWriterPid, impl.write(kWriterPid, v));
    if (sched.runnable(kReaderPid)) sched.step(kReaderPid);
  }
  sched.finish(kReaderPid);

  // Derived bound: help on empty queue (2) + failed fast scan (≤3) +
  // announce (1) + enqueue (4) + own-record read (1); the first write
  // starting after the enqueue helps the record to done on a stable A, so
  // at most one self-help round (≤9) + the final record read (1) remain.
  EXPECT_LE(sched.steps_of(kReaderPid), 32u);
  const std::uint32_t got = read.take_result();
  EXPECT_TRUE(got == 2u || got == 3u) << got;  // a written value: linearizes
  const auto& comb = impl.alg().combinator();
  EXPECT_EQ(comb.slow_path_entries(), 1u);
  // The record was completed by the WRITER's pre-write help, not the owner.
  EXPECT_GE(comb.helped_completions(), 1u);
}

// --------------------------------------------------------------- DPOR rows

// Canonical history key (same construction as tests/test_explorer_dpor.cpp):
// per-operation (pid, op, resp) labelled in (pid, invocation-order) order
// plus the real-time precedence relation — invariant under exactly the
// reorderings DPOR prunes.
template <typename S, typename Hist>
std::string history_key(const S& spec, const Hist& hist) {
  const auto& entries = hist.entries();
  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (entries[a].pid != entries[b].pid) return entries[a].pid < entries[b].pid;
    return entries[a].invoked_at < entries[b].invoked_at;
  });
  std::vector<std::size_t> label(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) label[order[i]] = i;

  std::ostringstream out;
  for (const std::size_t idx : order) {
    const auto& e = entries[idx];
    out << 'p' << e.pid << ':' << spec.encode_op(e.op) << ':';
    if (e.completed()) {
      out << spec.encode_resp(e.resp);
    } else {
      out << '?';
    }
    out << ';';
  }
  out << '|';
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (i != j && entries[i].precedes(entries[j])) {
        out << label[i] << '<' << label[j] << ';';
      }
    }
  }
  return out.str();
}

/// 2 processes with every read forced onto the slow path: the smallest
/// workload in which the write's pre-help completes the reader's record.
struct WfsSlowPairSystem {
  spec::RegisterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::WaitFreeSimHiRegister impl;

  WfsSlowPairSystem()
      : spec(2, 1),
        sched(2),
        impl(mem, spec, kWriterPid, kReaderPid, /*fast_limit=*/0) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, spec::RegisterSpec::Op op) {
    return impl.apply(pid, op);
  }
  std::uint64_t helped_completions() const {
    return impl.alg().helped_completions();
  }
};

/// 3 processes (single writer pid 0, two reader pids) with the fast path on:
/// the combinator under cross-process queue/record contention.
struct WfsTripleSystem {
  spec::RegisterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  algo::WaitFreeSimHiAlgPadded<env::SimEnv> alg;

  WfsTripleSystem()
      : spec(2, 1),
        sched(3),
        alg(mem, /*num_values=*/2, /*initial=*/1, /*num_processes=*/3,
            /*fast_limit=*/1) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, spec::RegisterSpec::Op op) {
    if (op.kind == spec::RegisterSpec::Kind::kWrite) {
      return alg.write(pid, op.value);
    }
    return alg.read(pid);
  }
  std::uint64_t helped_completions() const { return alg.helped_completions(); }
};

struct ExploreOutcome {
  sim::ExploreStats stats;
  std::set<std::string> history_keys;
  std::uint64_t lin_failures = 0;
  std::uint64_t helped_executions = 0;
};

template <typename System>
ExploreOutcome explore_mode(
    const spec::RegisterSpec& spec,
    std::vector<std::vector<spec::RegisterSpec::Op>> work,
    sim::ExploreMode mode) {
  sim::Explorer<spec::RegisterSpec, System> explorer(
      spec, [] { return std::make_unique<System>(); }, std::move(work));
  ExploreOutcome outcome;
  outcome.stats = explorer.explore(
      {.max_depth = 128, .max_executions = 2'000'000, .mode = mode}, nullptr,
      [&](System& sys, const auto& hist) {
        outcome.history_keys.insert(history_key(spec, hist));
        if (!verify::check_linearizable(spec, hist).ok()) {
          ++outcome.lin_failures;
        }
        if (sys.helped_completions() > 0) ++outcome.helped_executions;
      });
  return outcome;
}

TEST(WaitFreeSimDpor, SlowPair_SameHistorySetAndHelperCompletedExecutions) {
  const spec::RegisterSpec spec(2, 1);
  const std::vector<std::vector<spec::RegisterSpec::Op>> work = {
      {spec::RegisterSpec::write(2)}, {spec::RegisterSpec::read()}};

  const auto naive =
      explore_mode<WfsSlowPairSystem>(spec, work, sim::ExploreMode::kNaive);
  const auto dpor =
      explore_mode<WfsSlowPairSystem>(spec, work, sim::ExploreMode::kDpor);

  ASSERT_TRUE(naive.stats.exhausted);
  ASSERT_TRUE(dpor.stats.exhausted);
  EXPECT_EQ(naive.stats.executions_truncated, 0u);
  EXPECT_EQ(naive.lin_failures, 0u);
  EXPECT_EQ(dpor.lin_failures, 0u);

  EXPECT_GT(naive.stats.executions_complete, 0u);
  EXPECT_LT(dpor.stats.executions_complete, naive.stats.executions_complete)
      << "DPOR explored as many executions as naive DFS — no reduction";
  EXPECT_FALSE(naive.history_keys.empty());
  EXPECT_EQ(naive.history_keys, dpor.history_keys)
      << "DPOR pruned a non-equivalent interleaving (or invented one)";

  // Schedules in which the write's pre-help completes the enqueued read
  // exist in BOTH modes' explored sets (and all of them linearized above).
  EXPECT_GT(naive.helped_executions, 0u);
  EXPECT_GT(dpor.helped_executions, 0u);
}

TEST(WaitFreeSimDpor, TripleFast_SameHistorySetAcrossModes) {
  const spec::RegisterSpec spec(2, 1);
  const std::vector<std::vector<spec::RegisterSpec::Op>> work = {
      {spec::RegisterSpec::write(2)},
      {spec::RegisterSpec::read()},
      {spec::RegisterSpec::read()}};

  const auto naive =
      explore_mode<WfsTripleSystem>(spec, work, sim::ExploreMode::kNaive);
  const auto dpor =
      explore_mode<WfsTripleSystem>(spec, work, sim::ExploreMode::kDpor);

  ASSERT_TRUE(naive.stats.exhausted);
  ASSERT_TRUE(dpor.stats.exhausted);
  EXPECT_EQ(naive.lin_failures, 0u);
  EXPECT_EQ(dpor.lin_failures, 0u);
  EXPECT_LT(dpor.stats.executions_complete, naive.stats.executions_complete);
  EXPECT_EQ(naive.history_keys, dpor.history_keys);
}

// ------------------------------------------------------------- Theorem 17

// K=3 padded snapshot layout (registration order): words [0,3) are the
// inner A bins; then wfs.rec[0..1] at 3..4, the 8 ring slots at 5..12, and
// head/tail at 13/14.
constexpr std::size_t kInnerWords = 3;
constexpr std::size_t kReaderRecWord = 4;
constexpr std::size_t kFirstSlotWord = 5;
constexpr std::size_t kHeadWord = 13;
constexpr std::size_t kTailWord = 14;

TEST(WaitFreeSim, Thm17_HelpedReadLeavesLocalizedCombinatorResidue) {
  // Canonical execution A: solo write(3), write(2), read — everything fast
  // path, quiescent state 2.
  testing::RegisterSystem<core::WaitFreeSimHiRegister> canon(3);
  (void)sim::run_solo(canon.sched, kWriterPid, canon.impl.write(kWriterPid, 3));
  (void)sim::run_solo(canon.sched, kWriterPid, canon.impl.write(kWriterPid, 2));
  ASSERT_EQ(sim::run_solo(canon.sched, kReaderPid, canon.impl.read(kReaderPid)),
            2u);
  const sim::MemorySnapshot sa = canon.memory.snapshot();

  // Execution B: same abstract state 2 at quiescence, but the read was
  // forced slow — it scanned past A[1], A[2] while the state was 3, the
  // write 3→2 landed, and the failed attempt sent it through
  // announce/enqueue/self-help.
  testing::RegisterSystem<core::WaitFreeSimHiRegister> sys(3);
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 3));
  sim::OpTask<std::uint32_t> read = sys.impl.read(kReaderPid);
  sys.sched.start(kReaderPid, read);
  for (int i = 0; i < 4; ++i) sys.sched.step(kReaderPid);
  ASSERT_EQ(sys.sched.pending_object(kReaderPid), 2);  // about to read A[3]
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 2));
  while (sys.sched.runnable(kReaderPid)) sys.sched.step(kReaderPid);
  ASSERT_TRUE(sys.sched.op_finished(kReaderPid));
  sys.sched.finish(kReaderPid);
  EXPECT_EQ(read.take_result(), 2u);  // still linearizes
  ASSERT_EQ(sys.impl.alg().slow_path_entries(), 1u);
  const sim::MemorySnapshot sb = sys.memory.snapshot();

  // State-quiescent HI is VIOLATED: same abstract state, different memory.
  // This is the Theorem 17 boundary — the combinator made reads wait-free,
  // so it cannot keep the state-quiescent HI that Alg 2/3 had.
  verify::HiChecker checker;
  ASSERT_TRUE(checker.set_canonical(2, sa, "solo-sequential"));
  EXPECT_FALSE(checker.observe(2, sb, "helped-read-quiescence"));
  ASSERT_FALSE(checker.consistent());
  EXPECT_EQ(checker.violation()->state, 2u);

  // ...and the divergence is localized entirely to the combinator's words:
  // the inner A array (the snapshot prefix) is canonical in both runs.
  const std::vector<std::size_t> diff = verify::divergent_words(sa, sb);
  ASSERT_FALSE(diff.empty());
  EXPECT_TRUE(verify::divergence_localized_after(sa, sb, kInnerWords));

  // The residue, word-exact: the reader's record is done(seq 1, payload 2),
  // ring slot 0 was consumed and re-armed for round 1, head == tail == 1.
  EXPECT_EQ(sb.words[kReaderRecWord], algo::wfs::rec_word(algo::wfs::kDone, 1, 2));
  EXPECT_EQ(sb.words[kFirstSlotWord], algo::wfs::slot_empty(1));
  EXPECT_EQ(sb.words[kHeadWord], 1u);
  EXPECT_EQ(sb.words[kTailWord], 1u);
  EXPECT_EQ(sa.words[kReaderRecWord], algo::wfs::rec_word(algo::wfs::kIdle, 0, 0));
  EXPECT_EQ(sa.words[kHeadWord], 0u);
}

TEST(WaitFreeSim, Thm17Control_PlainAlg4StaysCanonicalOnSameScheduleShape) {
  // The same schedule shape against the paper's own wait-free register
  // (Algorithm 4): interrupt a read mid-scan with a full write, finish it,
  // and the quiescent memory is STILL canonical — Alg 4 erases its
  // footprint. The residue in the previous test is the combinator's price,
  // not an artifact of the schedule.
  testing::RegisterSystem<core::WaitFreeHiRegister> canon(3);
  (void)sim::run_solo(canon.sched, kWriterPid, canon.impl.write(kWriterPid, 3));
  (void)sim::run_solo(canon.sched, kWriterPid, canon.impl.write(kWriterPid, 2));
  (void)sim::run_solo(canon.sched, kReaderPid, canon.impl.read(kReaderPid));
  const sim::MemorySnapshot sa = canon.memory.snapshot();

  testing::RegisterSystem<core::WaitFreeHiRegister> sys(3);
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 3));
  sim::OpTask<std::uint32_t> read = sys.impl.read(kReaderPid);
  sys.sched.start(kReaderPid, read);
  for (int i = 0; i < 4 && sys.sched.runnable(kReaderPid); ++i) {
    sys.sched.step(kReaderPid);
  }
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 2));
  while (sys.sched.runnable(kReaderPid)) sys.sched.step(kReaderPid);
  ASSERT_TRUE(sys.sched.op_finished(kReaderPid));
  sys.sched.finish(kReaderPid);
  (void)read.take_result();
  const sim::MemorySnapshot sb = sys.memory.snapshot();

  verify::HiChecker checker;
  ASSERT_TRUE(checker.set_canonical(2, sa, "solo-sequential"));
  EXPECT_TRUE(checker.observe(2, sb, "interrupted-read-quiescence"));
  EXPECT_TRUE(checker.consistent());
}

}  // namespace
}  // namespace hi
