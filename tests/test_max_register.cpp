// §5.1's max register (experiment E12a): NOT in class C_t (state graph not
// strongly connected), and indeed the modified Algorithm 1 gives a wait-free
// *state-quiescent* HI implementation from binary registers — the very
// combination that Theorem 17 forbids for registers. These tests validate
// linearizability, the canonical one-hot representation at state-quiescent
// points, wait-freedom of both operations, and that the starvation adversary
// has no leverage (it cannot move the state freely).
#include <gtest/gtest.h>

#include "core/max_register.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/max_register_spec.h"
#include "util/rng.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using core::HiMaxRegister;
using spec::MaxRegisterSpec;

constexpr int kWriter = 0;
constexpr int kReader = 1;

struct Sys {
  MaxRegisterSpec spec;
  sim::Memory memory;
  sim::Scheduler sched;
  HiMaxRegister impl;

  explicit Sys(std::uint32_t k, std::uint32_t initial = 1)
      : spec(k, initial), sched(2), impl(memory, spec, kWriter, kReader) {}
};

template <typename Hist>
std::uint64_t max_oracle(const Hist& history, std::uint64_t initial) {
  std::uint64_t value = initial;
  for (const auto& entry : history.entries()) {
    if (entry.op.kind == MaxRegisterSpec::Kind::kWriteMax &&
        entry.completed()) {
      value = std::max<std::uint64_t>(value, entry.op.value);
    }
  }
  return value;
}

std::vector<std::vector<MaxRegisterSpec::Op>> workload(std::uint32_t k,
                                                       std::size_t ops,
                                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<MaxRegisterSpec::Op>> work(2);
  for (std::size_t i = 0; i < ops; ++i) {
    work[kWriter].push_back(MaxRegisterSpec::write_max(
        static_cast<std::uint32_t>(rng.next_in(1, k))));
    work[kReader].push_back(MaxRegisterSpec::read_max());
  }
  return work;
}

TEST(HiMaxRegister, SoloMonotoneSemantics) {
  Sys sys(8);
  (void)sim::run_solo(sys.sched, kWriter, sys.impl.write_max(kWriter, 5));
  EXPECT_EQ(sim::run_solo(sys.sched, kReader, sys.impl.read_max(kReader)), 5u);
  (void)sim::run_solo(sys.sched, kWriter, sys.impl.write_max(kWriter, 3));
  EXPECT_EQ(sim::run_solo(sys.sched, kReader, sys.impl.read_max(kReader)), 5u)
      << "smaller write must be absorbed";
  (void)sim::run_solo(sys.sched, kWriter, sys.impl.write_max(kWriter, 8));
  EXPECT_EQ(sim::run_solo(sys.sched, kReader, sys.impl.read_max(kReader)), 8u);
}

TEST(HiMaxRegister, AbsorbedWriteLeavesNoFootprint) {
  // WriteMax(v ≤ max) must not touch shared memory at all — otherwise the
  // footprint would reveal that the absorbed write happened.
  Sys sys(6);
  (void)sim::run_solo(sys.sched, kWriter, sys.impl.write_max(kWriter, 4));
  const auto before = sys.memory.snapshot();
  const std::uint64_t steps_before = sys.sched.steps_of(kWriter);
  (void)sim::run_solo(sys.sched, kWriter, sys.impl.write_max(kWriter, 2));
  EXPECT_EQ(sys.memory.snapshot(), before);
  EXPECT_EQ(sys.sched.steps_of(kWriter), steps_before);
}

TEST(HiMaxRegister, CanonicalOneHot) {
  for (std::uint32_t v = 1; v <= 6; ++v) {
    Sys sys(6);
    if (v > 1) {
      (void)sim::run_solo(sys.sched, kWriter, sys.impl.write_max(kWriter, v));
    }
    const auto snap = sys.memory.snapshot();
    for (std::uint32_t j = 1; j <= 6; ++j) {
      EXPECT_EQ(snap.words[j - 1], j == v ? 1u : 0u) << "v=" << v;
    }
  }
}

class HiMaxRegisterRandom
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(HiMaxRegisterRandom, Linearizable) {
  const auto [k, seed] = GetParam();
  Sys sys(k);
  sim::Runner<MaxRegisterSpec, HiMaxRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return max_oracle(hist, 1); });
  auto result = runner.run(workload(k, 25, seed), {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  ASSERT_EQ(result.history.num_pending(), 0u);
  EXPECT_TRUE(verify::check_linearizable(sys.spec, result.history).ok())
      << "k=" << k << " seed=" << seed;
}

TEST_P(HiMaxRegisterRandom, StateQuiescentHI) {
  const auto [k, seed] = GetParam();
  verify::HiChecker checker;
  // Canonical map from sequential runs.
  for (std::uint32_t v = 1; v <= k; ++v) {
    Sys sys(k);
    if (v > 1) {
      (void)sim::run_solo(sys.sched, kWriter, sys.impl.write_max(kWriter, v));
    }
    ASSERT_TRUE(checker.set_canonical(v, sys.memory.snapshot()));
  }
  Sys sys(k);
  sim::Runner<MaxRegisterSpec, HiMaxRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return max_oracle(hist, 1); });
  auto result = runner.run(workload(k, 30, seed), {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  for (const auto& obs : result.state_quiescent) {
    checker.observe(obs.state, obs.mem, "seed=" + std::to_string(seed));
  }
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
}

TEST_P(HiMaxRegisterRandom, BothOperationsWaitFree) {
  const auto [k, seed] = GetParam();
  Sys sys(k);
  sim::Runner<MaxRegisterSpec, HiMaxRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return max_oracle(hist, 1); });
  auto result = runner.run(workload(k, 30, seed), {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_LE(result.op_steps[i], 2ull * k)
        << (result.history[i].op.kind == MaxRegisterSpec::Kind::kReadMax
                ? "read"
                : "write");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HiMaxRegisterRandom,
    ::testing::Combine(::testing::Values(3u, 6u, 10u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u)));

}  // namespace
}  // namespace hi
