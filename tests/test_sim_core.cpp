// Tests for the simulator substrate: coroutine step semantics (one primitive
// per step), base-object atomicity, memory snapshots, scheduler bookkeeping
// and pending-primitive introspection (the hook the Lemma 16 adversary uses).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/base_object.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace hi::sim {
namespace {

// A toy process: writes `value` to two registers with a read in between.
OpTask<std::uint32_t> write_two(BinaryRegister& x, BinaryRegister& y,
                                std::uint8_t value) {
  co_await x.write(value);
  const std::uint8_t seen = co_await x.read();
  co_await y.write(seen);
  co_return seen;
}

TEST(SimCore, OnePrimitivePerStep) {
  Memory mem;
  auto& x = mem.make<BinaryRegister>("x");
  auto& y = mem.make<BinaryRegister>("y");
  Scheduler sched(1);

  OpTask<std::uint32_t> task = write_two(x, y, 1);
  sched.start(0, task);
  // Priming runs no primitive: memory untouched, a primitive is pending.
  EXPECT_EQ(x.peek(), 0);
  EXPECT_TRUE(sched.runnable(0));
  EXPECT_EQ(sched.pending_object(0), x.id());
  EXPECT_STREQ(sched.pending_kind(0), "write");

  sched.step(0);  // executes the write to x
  EXPECT_EQ(x.peek(), 1);
  EXPECT_EQ(y.peek(), 0);
  EXPECT_EQ(sched.pending_object(0), x.id());
  EXPECT_STREQ(sched.pending_kind(0), "read");

  sched.step(0);  // the read
  EXPECT_EQ(sched.pending_object(0), y.id());

  sched.step(0);  // write to y, then run to completion
  EXPECT_TRUE(sched.op_finished(0));
  EXPECT_EQ(y.peek(), 1);
  sched.finish(0);
  EXPECT_EQ(task.take_result(), 1u);
  EXPECT_EQ(sched.steps_of(0), 3u);
}

TEST(SimCore, InterleavingIsStepGranular) {
  // Two writers race on x; the loser's value is overwritten atomically.
  Memory mem;
  auto& x = mem.make<BinaryRegister>("x");
  auto& y = mem.make<BinaryRegister>("y");
  auto& z = mem.make<BinaryRegister>("z");
  Scheduler sched(2);

  OpTask<std::uint32_t> t0 = write_two(x, y, 1);
  OpTask<std::uint32_t> t1 = write_two(x, z, 0);
  sched.start(0, t0);
  sched.start(1, t1);

  sched.step(0);  // p0: x <- 1
  sched.step(1);  // p1: x <- 0
  sched.step(0);  // p0 reads x == 0 (p1's write took effect atomically)
  sched.step(1);  // p1 reads x == 0
  sched.step(0);
  sched.step(1);
  ASSERT_TRUE(sched.op_finished(0));
  ASSERT_TRUE(sched.op_finished(1));
  sched.finish(0);
  sched.finish(1);
  EXPECT_EQ(t0.take_result(), 0u);  // p0 observed p1's overwrite
  EXPECT_EQ(y.peek(), 0);
  EXPECT_EQ(z.peek(), 0);
}

TEST(SimCore, MemorySnapshotLayoutAndEquality) {
  Memory mem;
  auto& x = mem.make<BinaryRegister>("x", true);
  auto& c = mem.make<CasCell>("c", 7);
  auto& r = mem.make<RllscCell>("r", 3);
  (void)x;
  (void)c;
  (void)r;

  const MemorySnapshot snap = mem.snapshot();
  ASSERT_EQ(snap.words.size(), 4u);  // 1 + 1 + (val, ctx)
  EXPECT_EQ(snap.words[0], 1u);
  EXPECT_EQ(snap.words[1], 7u);
  EXPECT_EQ(snap.words[2], 3u);
  EXPECT_EQ(snap.words[3], 0u);

  const MemorySnapshot again = mem.snapshot();
  EXPECT_EQ(snap, again);
  EXPECT_EQ(snap.hash(), again.hash());
  EXPECT_EQ(snap.distance(again), 0u);
}

TEST(SimCore, SnapshotDistance) {
  MemorySnapshot a{{1, 2, 3}};
  MemorySnapshot b{{1, 9, 4}};
  EXPECT_EQ(a.distance(b), 2u);
}

OpTask<std::uint32_t> cas_loop(CasCell& cell, std::uint64_t from,
                               std::uint64_t to) {
  for (;;) {
    const bool swapped = co_await cell.cas(from, to);
    if (swapped) break;
    from = co_await cell.read();
  }
  co_return static_cast<std::uint32_t>(to);
}

TEST(SimCore, CasAtomicity) {
  Memory mem;
  auto& cell = mem.make<CasCell>("c", 0);
  Scheduler sched(2);

  OpTask<std::uint32_t> t0 = cas_loop(cell, 0, 1);
  OpTask<std::uint32_t> t1 = cas_loop(cell, 0, 2);
  sched.start(0, t0);
  sched.start(1, t1);
  sched.step(0);  // p0's CAS(0->1) succeeds
  EXPECT_EQ(cell.peek(), 1u);
  sched.step(1);  // p1's CAS(0->2) fails
  EXPECT_EQ(cell.peek(), 1u);
  ASSERT_TRUE(sched.op_finished(0));
  sched.step(1);  // p1 re-reads 1
  sched.step(1);  // p1's CAS(1->2) succeeds
  EXPECT_EQ(cell.peek(), 2u);
  EXPECT_TRUE(sched.op_finished(1));
}

TEST(SimCore, RllscSemantics) {
  Memory mem;
  auto& cell = mem.make<RllscCell>("r", 10);
  Scheduler sched(2);

  // p0: LL, then SC(11). p1: LL, then SC(12) — whoever SCs second fails,
  // because a successful SC clears the whole context.
  auto prog = [&cell](std::uint64_t desired) -> OpTask<std::uint32_t> {
    co_await cell.ll();
    const bool ok = co_await cell.sc(desired);
    co_return ok ? 1u : 0u;
  };
  OpTask<std::uint32_t> t0 = prog(11);
  OpTask<std::uint32_t> t1 = prog(12);
  sched.start(0, t0);
  sched.start(1, t1);
  sched.step(0);  // p0 LL
  sched.step(1);  // p1 LL
  EXPECT_EQ(cell.peek_context(), 0b11u);
  sched.step(0);  // p0 SC succeeds, clears context
  EXPECT_EQ(cell.peek_value(), 11u);
  EXPECT_EQ(cell.peek_context(), 0u);
  sched.step(1);  // p1 SC fails
  EXPECT_EQ(cell.peek_value(), 11u);
  sched.finish(0);
  sched.finish(1);
  EXPECT_EQ(t0.take_result(), 1u);
  EXPECT_EQ(t1.take_result(), 0u);
}

TEST(SimCore, RllscReleaseAndValidate) {
  Memory mem;
  auto& cell = mem.make<RllscCell>("r", 5);
  Scheduler sched(1);

  auto prog = [&cell]() -> OpTask<std::uint32_t> {
    co_await cell.ll();
    const bool valid_before = co_await cell.vl();
    co_await cell.rl();
    const bool valid_after = co_await cell.vl();
    const bool sc_ok = co_await cell.sc(6);
    co_return (valid_before ? 4u : 0u) | (valid_after ? 2u : 0u) |
        (sc_ok ? 1u : 0u);
  };
  OpTask<std::uint32_t> t = prog();
  const std::uint32_t result = run_solo(sched, 0, std::move(t));
  // VL true after LL; false after RL; SC fails after RL.
  EXPECT_EQ(result, 4u);
  EXPECT_EQ(cell.peek_value(), 5u);
  EXPECT_EQ(cell.peek_context(), 0u);
}

TEST(SimCore, RllscLoadStoreDoNotNeedContext) {
  Memory mem;
  auto& cell = mem.make<RllscCell>("r", 5);
  Scheduler sched(2);

  auto prog = [&cell]() -> OpTask<std::uint32_t> {
    const std::uint64_t seen = co_await cell.load();
    co_await cell.store(seen + 1);
    co_return static_cast<std::uint32_t>(seen);
  };
  OpTask<std::uint32_t> t = prog();
  EXPECT_EQ(run_solo(sched, 1, std::move(t)), 5u);
  EXPECT_EQ(cell.peek_value(), 6u);
}

TEST(SimCore, StoreClearsContext) {
  Memory mem;
  auto& cell = mem.make<RllscCell>("r", 0);
  Scheduler sched(2);

  auto ll_only = [&cell]() -> OpTask<std::uint32_t> {
    co_return static_cast<std::uint32_t>(co_await cell.ll());
  };
  OpTask<std::uint32_t> t0 = ll_only();
  run_solo(sched, 0, std::move(t0));
  EXPECT_EQ(cell.peek_context(), 0b01u);

  auto store = [&cell]() -> OpTask<std::uint32_t> {
    co_await cell.store(9);
    co_return 0;
  };
  OpTask<std::uint32_t> t1 = store();
  run_solo(sched, 1, std::move(t1));
  EXPECT_EQ(cell.peek_context(), 0u);
  EXPECT_EQ(cell.peek_value(), 9u);
}

// A SubTask helper used by nested coroutine test.
SubTask<std::uint32_t> scan_sum(std::vector<BinaryRegister*>& regs) {
  std::uint32_t sum = 0;
  for (auto* reg : regs) sum += co_await reg->read();
  co_return sum;
}

OpTask<std::uint32_t> nested(std::vector<BinaryRegister*>& regs,
                             BinaryRegister& out) {
  const std::uint32_t first = co_await scan_sum(regs);
  const std::uint32_t second = co_await scan_sum(regs);
  co_await out.write(first == second ? 1 : 0);
  co_return first + second;
}

TEST(SimCore, NestedSubTasksChargeStepsToCaller) {
  Memory mem;
  std::vector<BinaryRegister*> regs;
  for (int i = 0; i < 3; ++i) {
    regs.push_back(&mem.make<BinaryRegister>("r" + std::to_string(i), true));
  }
  auto& out = mem.make<BinaryRegister>("out");
  Scheduler sched(1);

  OpTask<std::uint32_t> t = nested(regs, out);
  sched.start(0, t);
  std::uint64_t steps = 0;
  while (sched.runnable(0)) {
    sched.step(0);
    ++steps;
  }
  EXPECT_EQ(steps, 7u);  // 3 reads + 3 reads + 1 write
  EXPECT_EQ(sched.steps_of(0), 7u);
  sched.finish(0);
  EXPECT_EQ(t.take_result(), 6u);
  EXPECT_EQ(out.peek(), 1);
}

TEST(SimCore, AbandonMidOperation) {
  Memory mem;
  auto& x = mem.make<BinaryRegister>("x");
  auto& y = mem.make<BinaryRegister>("y");
  Scheduler sched(1);
  {
    OpTask<std::uint32_t> t = write_two(x, y, 1);
    sched.start(0, t);
    sched.step(0);  // only the first write lands
    sched.abandon(0);
  }  // OpTask destructor frees the suspended frames
  EXPECT_EQ(x.peek(), 1);
  EXPECT_EQ(y.peek(), 0);
  EXPECT_FALSE(sched.runnable(0));
}

TEST(SimCore, WordRegisterStateCount) {
  Memory mem;
  auto& w = mem.make<WordRegister>("w", 3, 2);
  EXPECT_EQ(w.num_states(), 3u);
  EXPECT_EQ(w.peek(), 2u);
  Scheduler sched(1);
  auto prog = [&w]() -> OpTask<std::uint32_t> {
    co_await w.write(0);
    co_return static_cast<std::uint32_t>(co_await w.read());
  };
  OpTask<std::uint32_t> t = prog();
  EXPECT_EQ(run_solo(sched, 0, std::move(t)), 0u);
}

}  // namespace
}  // namespace hi::sim
