// Shared fixtures for the schedule-replay differential suites
// (test_replay_equivalence.cpp, test_replay_fuzz.cpp,
// test_replay_adversary.cpp): the R-LLSC spec-harness instantiations for
// both backends and the workload generators. All object rows — including
// the universal constructions, whose cells pack through the shared
// Word64HeadCodec on every backend — compare memory word-for-word via
// verify::snapshot_word_compare. Single-source so a workload change cannot
// silently weaken one suite's coverage while the other still runs the old
// mix.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/rllsc.h"
#include "env/sim_env.h"
#include "register_common.h"
#include "replay/replay_objects.h"
#include "spec/counter_spec.h"
#include "spec/max_register_spec.h"
#include "spec/rllsc_spec.h"
#include "spec/set_spec.h"
#include "util/rng.h"

namespace hi::testing {

/// The R-LLSC spec harness over each backend's Algorithm 6 instantiation.
using SimRllscHarness = replay::RllscHarness<algo::CasRllscAlg<env::SimEnv>>;
using ReplayRllscHarness = replay::RllscHarness<replay::CasRllsc>;

/// Random R-LLSC workload: a uniform mix over all six op kinds per process,
/// ops tagged with the invoking pid (RllscSpec's Δ needs the identity).
inline std::vector<std::vector<spec::RllscSpec::Op>> rllsc_workload(
    int num_processes, int ops_per_process, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<spec::RllscSpec::Op>> workload(num_processes);
  for (int pid = 0; pid < num_processes; ++pid) {
    for (int i = 0; i < ops_per_process; ++i) {
      const auto arg = static_cast<std::uint16_t>(rng.next_below(100));
      switch (rng.next_below(6)) {
        case 0: workload[pid].push_back(spec::RllscSpec::ll(pid)); break;
        case 1: workload[pid].push_back(spec::RllscSpec::vl(pid)); break;
        case 2: workload[pid].push_back(spec::RllscSpec::sc(pid, arg)); break;
        case 3: workload[pid].push_back(spec::RllscSpec::rl(pid)); break;
        case 4: workload[pid].push_back(spec::RllscSpec::load(pid)); break;
        default:
          workload[pid].push_back(spec::RllscSpec::store(pid, arg));
          break;
      }
    }
  }
  return workload;
}

/// Random 2-process set workload: insert/remove/lookup over {1..domain}.
inline std::vector<std::vector<spec::SetSpec::Op>> set_workload(
    std::uint32_t domain, int ops_per_process, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<spec::SetSpec::Op>> workload(2);
  for (int pid = 0; pid < 2; ++pid) {
    for (int i = 0; i < ops_per_process; ++i) {
      const auto v = static_cast<std::uint32_t>(rng.next_in(1, domain));
      switch (rng.next_below(3)) {
        case 0: workload[pid].push_back(spec::SetSpec::insert(v)); break;
        case 1: workload[pid].push_back(spec::SetSpec::remove(v)); break;
        default: workload[pid].push_back(spec::SetSpec::lookup(v)); break;
      }
    }
  }
  return workload;
}

/// SWSR max-register workload: `rounds` random WriteMax for the writer and
/// as many ReadMax for the reader.
inline std::vector<std::vector<spec::MaxRegisterSpec::Op>>
max_register_workload(std::uint32_t num_values, int rounds,
                      std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<spec::MaxRegisterSpec::Op>> workload(2);
  for (int i = 0; i < rounds; ++i) {
    workload[kWriterPid].push_back(spec::MaxRegisterSpec::write_max(
        static_cast<std::uint32_t>(rng.next_in(1, num_values))));
    workload[kReaderPid].push_back(spec::MaxRegisterSpec::read_max());
  }
  return workload;
}

/// Random counter workload (inc-heavy mix with reads and decs) for the
/// universal-construction differentials.
inline std::vector<std::vector<spec::CounterSpec::Op>> counter_workload(
    int num_processes, int ops_per_process, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<spec::CounterSpec::Op>> workload(num_processes);
  for (int pid = 0; pid < num_processes; ++pid) {
    for (int i = 0; i < ops_per_process; ++i) {
      switch (rng.next_below(4)) {
        case 0: workload[pid].push_back(spec::CounterSpec::read()); break;
        case 1: workload[pid].push_back(spec::CounterSpec::dec()); break;
        default: workload[pid].push_back(spec::CounterSpec::inc()); break;
      }
    }
  }
  return workload;
}

}  // namespace hi::testing
