// Shared fixtures for the schedule-replay differential suites
// (test_replay_equivalence.cpp, test_replay_fuzz.cpp,
// test_replay_adversary.cpp): the R-LLSC spec-harness instantiations for
// both backends, workload generators, and the semantic comparator for the
// universal construction (whose head packing intentionally differs per
// backend, so per-step comparison decodes every cell through its backend's
// codec instead of comparing raw words). Single-source so a codec change
// cannot silently weaken one suite's comparison while the other still
// checks the old fields.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algo/rllsc.h"
#include "algo/universal.h"
#include "algo/values.h"
#include "env/sim_env.h"
#include "register_common.h"
#include "replay/replay_objects.h"
#include "spec/counter_spec.h"
#include "spec/max_register_spec.h"
#include "spec/rllsc_spec.h"
#include "spec/set_spec.h"
#include "util/rng.h"

namespace hi::testing {

/// The R-LLSC spec harness over each backend's Algorithm 6 instantiation.
using SimRllscHarness = replay::RllscHarness<algo::CasRllscAlg<env::SimEnv>>;
using ReplayRllscHarness = replay::RllscHarness<replay::CasRllsc>;

/// Random R-LLSC workload: a uniform mix over all six op kinds per process,
/// ops tagged with the invoking pid (RllscSpec's Δ needs the identity).
inline std::vector<std::vector<spec::RllscSpec::Op>> rllsc_workload(
    int num_processes, int ops_per_process, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<spec::RllscSpec::Op>> workload(num_processes);
  for (int pid = 0; pid < num_processes; ++pid) {
    for (int i = 0; i < ops_per_process; ++i) {
      const auto arg = static_cast<std::uint16_t>(rng.next_below(100));
      switch (rng.next_below(6)) {
        case 0: workload[pid].push_back(spec::RllscSpec::ll(pid)); break;
        case 1: workload[pid].push_back(spec::RllscSpec::vl(pid)); break;
        case 2: workload[pid].push_back(spec::RllscSpec::sc(pid, arg)); break;
        case 3: workload[pid].push_back(spec::RllscSpec::rl(pid)); break;
        case 4: workload[pid].push_back(spec::RllscSpec::load(pid)); break;
        default:
          workload[pid].push_back(spec::RllscSpec::store(pid, arg));
          break;
      }
    }
  }
  return workload;
}

/// Random 2-process set workload: insert/remove/lookup over {1..domain}.
inline std::vector<std::vector<spec::SetSpec::Op>> set_workload(
    std::uint32_t domain, int ops_per_process, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<spec::SetSpec::Op>> workload(2);
  for (int pid = 0; pid < 2; ++pid) {
    for (int i = 0; i < ops_per_process; ++i) {
      const auto v = static_cast<std::uint32_t>(rng.next_in(1, domain));
      switch (rng.next_below(3)) {
        case 0: workload[pid].push_back(spec::SetSpec::insert(v)); break;
        case 1: workload[pid].push_back(spec::SetSpec::remove(v)); break;
        default: workload[pid].push_back(spec::SetSpec::lookup(v)); break;
      }
    }
  }
  return workload;
}

/// SWSR max-register workload: `rounds` random WriteMax for the writer and
/// as many ReadMax for the reader.
inline std::vector<std::vector<spec::MaxRegisterSpec::Op>>
max_register_workload(std::uint32_t num_values, int rounds,
                      std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<spec::MaxRegisterSpec::Op>> workload(2);
  for (int i = 0; i < rounds; ++i) {
    workload[kWriterPid].push_back(spec::MaxRegisterSpec::write_max(
        static_cast<std::uint32_t>(rng.next_in(1, num_values))));
    workload[kReaderPid].push_back(spec::MaxRegisterSpec::read_max());
  }
  return workload;
}

/// Random counter workload (inc-heavy mix with reads and decs) for the
/// universal-construction differentials.
inline std::vector<std::vector<spec::CounterSpec::Op>> counter_workload(
    int num_processes, int ops_per_process, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<spec::CounterSpec::Op>> workload(num_processes);
  for (int pid = 0; pid < num_processes; ++pid) {
    for (int i = 0; i < ops_per_process; ++i) {
      switch (rng.next_below(4)) {
        case 0: workload[pid].push_back(spec::CounterSpec::read()); break;
        case 1: workload[pid].push_back(spec::CounterSpec::dec()); break;
        default: workload[pid].push_back(spec::CounterSpec::inc()); break;
      }
    }
  }
  return workload;
}

/// Per-step semantic comparator for Algorithm 5: decode the head through
/// each backend's RllscWordCodec, compare decoded head fields, context
/// bitmasks, and announce-cell tags/payloads. Suitable mid-operation (the
/// cells hold codec-corresponding values at every step of a lockstep run).
template <typename SimUni, typename ReplayUni>
auto universal_semantic_compare(const SimUni& sim_obj,
                                const ReplayUni& replay_obj) {
  return [&sim_obj, &replay_obj]() -> std::optional<std::string> {
    using SimCodec = algo::RllscWordCodec<algo::RllscValue>;
    using ReplayCodec = algo::RllscWordCodec<std::uint64_t>;
    const auto sim_words = sim_obj.memory_words();
    const auto replay_words = replay_obj.memory_words();
    if (sim_words.size() != replay_words.size()) {
      return std::string("cell count diverges");
    }
    const algo::HeadView sim_head = SimCodec::decode_head(sim_words[0].value);
    const algo::HeadView replay_head =
        ReplayCodec::decode_head(replay_words[0].value);
    if (sim_head.state != replay_head.state ||
        sim_head.has_response != replay_head.has_response ||
        (sim_head.has_response && (sim_head.rsp != replay_head.rsp ||
                                   sim_head.pid != replay_head.pid))) {
      return std::string("decoded head diverges");
    }
    for (std::size_t i = 0; i < sim_words.size(); ++i) {
      if (sim_words[i].ctx != replay_words[i].ctx) {
        return "context bitmask diverges at cell " + std::to_string(i);
      }
    }
    for (std::size_t i = 1; i < sim_words.size(); ++i) {
      const auto& sim_cell = sim_words[i].value;
      const auto& replay_cell = replay_words[i].value;
      if (SimCodec::is_bottom(sim_cell) != ReplayCodec::is_bottom(replay_cell) ||
          SimCodec::is_op(sim_cell) != ReplayCodec::is_op(replay_cell) ||
          SimCodec::is_resp(sim_cell) != ReplayCodec::is_resp(replay_cell)) {
        return "announce tag diverges at cell " + std::to_string(i);
      }
      if (!SimCodec::is_bottom(sim_cell) &&
          SimCodec::payload(sim_cell) != ReplayCodec::payload(replay_cell)) {
        return "announce payload diverges at cell " + std::to_string(i);
      }
    }
    return std::nullopt;
  };
}

}  // namespace hi::testing
