// Algorithm 1 (Vidyasankar's SWSR multi-valued register): linearizable and
// wait-free, but NOT history independent — experiment E3 reproduces the
// paper's §4 leak example verbatim, and the HI checker rejects it even on
// purely sequential executions.
#include <gtest/gtest.h>

#include "core/vidyasankar.h"
#include "register_common.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using core::VidyasankarRegister;
using spec::RegisterSpec;
using testing::kReaderPid;
using testing::kWriterPid;
using testing::RegisterSystem;
using Sys = RegisterSystem<VidyasankarRegister>;

TEST(Vidyasankar, SoloReadReturnsInitial) {
  Sys sys(5, 3);
  const auto value = sim::run_solo(sys.sched, kReaderPid,
                                   sys.impl.read(kReaderPid));
  EXPECT_EQ(value, 3u);
}

TEST(Vidyasankar, SoloWriteThenRead) {
  Sys sys(5);
  for (std::uint32_t v : {4u, 2u, 5u, 1u, 3u}) {
    (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, v));
    const auto seen = sim::run_solo(sys.sched, kReaderPid,
                                    sys.impl.read(kReaderPid));
    EXPECT_EQ(seen, v);
  }
}

TEST(Vidyasankar, PaperLeakExampleK3) {
  // §4: "if K = 3 and there is a Write(2) followed by Write(1), we will have
  // A = [1,1,0], whereas if we have only a Write(1), the state will be
  // A = [1,0,0]."
  Sys with_history(3);
  (void)sim::run_solo(with_history.sched, kWriterPid,
                      with_history.impl.write(kWriterPid, 2));
  (void)sim::run_solo(with_history.sched, kWriterPid,
                      with_history.impl.write(kWriterPid, 1));
  const auto mem_with = with_history.memory.snapshot();
  EXPECT_EQ(mem_with.words, (std::vector<std::uint64_t>{1, 1, 0}));

  Sys without_history(3);
  (void)sim::run_solo(without_history.sched, kWriterPid,
                      without_history.impl.write(kWriterPid, 1));
  const auto mem_without = without_history.memory.snapshot();
  EXPECT_EQ(mem_without.words, (std::vector<std::uint64_t>{1, 0, 0}));

  // Same abstract state (1), different memory: the history leaks.
  EXPECT_NE(mem_with, mem_without);
}

TEST(Vidyasankar, HiCheckerRejectsSequentialExecutions) {
  // Not HI in even the weakest sense: Definition 4 fails already on
  // quiescent points of sequential executions.
  verify::HiChecker checker;
  for (std::uint64_t seed = 0; seed < 40 && checker.consistent(); ++seed) {
    Sys sys(4);
    util::Xoshiro256 rng(seed);
    std::uint64_t state = sys.spec.initial_state();
    for (int i = 0; i < 8; ++i) {
      const auto v = static_cast<std::uint32_t>(rng.next_in(1, 4));
      (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, v));
      state = v;
      checker.observe(state, sys.memory.snapshot(),
                      "seq seed=" + std::to_string(seed));
    }
  }
  EXPECT_FALSE(checker.consistent())
      << "Algorithm 1 unexpectedly looked history independent";
}

class VidyasankarRandom : public ::testing::TestWithParam<
                              std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(VidyasankarRandom, LinearizableUnderRandomSchedules) {
  const auto [k, seed] = GetParam();
  Sys sys(k);
  sim::Runner<RegisterSpec, VidyasankarRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return testing::last_write_or(hist, 1); });
  auto result = runner.run(testing::register_workload(k, 25, 25, seed),
                           {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  ASSERT_EQ(result.history.num_pending(), 0u);
  const auto lin = verify::check_linearizable(sys.spec, result.history);
  EXPECT_TRUE(lin.ok()) << "seed=" << seed << " K=" << k;
}

TEST_P(VidyasankarRandom, WaitFreeStepBounds) {
  // Read scans up (≤K) then down (≤K-1); Write does ≤K writes. Both are
  // wait-free with bounds independent of scheduling.
  const auto [k, seed] = GetParam();
  Sys sys(k);
  sim::Runner<RegisterSpec, VidyasankarRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return testing::last_write_or(hist, 1); });
  auto result = runner.run(testing::register_workload(k, 30, 30, seed),
                           {.seed = seed, .step_weight = 5});
  ASSERT_FALSE(result.timed_out);
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& entry = result.history[i];
    if (entry.op.kind == RegisterSpec::Kind::kRead) {
      EXPECT_LE(result.op_steps[i], 2u * k - 1);
    } else {
      EXPECT_LE(result.op_steps[i], static_cast<std::uint64_t>(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VidyasankarRandom,
    ::testing::Combine(::testing::Values(3u, 5u, 8u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

}  // namespace
}  // namespace hi
