// Env-layer parity suite: each single-source algorithm (algo/*.h over the
// Env abstraction) is instantiated by BOTH execution environments, so for
// any *sequential* operation sequence the simulator instantiation and the
// hardware instantiation must march through identical memory states — the
// sim mem(C) snapshot and the rt memory_image() are the same vector, and
// every response matches. This pins the two backends to one semantics: a
// future edit that diverges them (or a codec/packing bug) fails here before
// any HI property is even consulted.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "algo/wait_free_sim.h"
#include "baseline/leaky_universal.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "core/hi_set.h"
#include "core/max_register.h"
#include "core/rllsc.h"
#include "core/universal.h"
#include "core/vidyasankar.h"
#include "register_common.h"
#include "rt/baselines_rt.h"
#include "rt/hi_set_rt.h"
#include "rt/max_register_rt.h"
#include "rt/registers_rt.h"
#include "rt/rllsc_rt.h"
#include "rt/sharded_set_rt.h"
#include "rt/universal_rt.h"
#include "rt/wait_free_sim_rt.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/counter_spec.h"
#include "spec/max_register_spec.h"
#include "spec/register_spec.h"
#include "spec/set_spec.h"
#include "util/rng.h"

namespace hi {
namespace {

/// The sim mem(C) snapshot as bytes, comparable with rt memory_image().
std::vector<std::uint8_t> snapshot_bytes(const sim::Memory& memory) {
  const sim::MemorySnapshot snap = memory.snapshot();
  std::vector<std::uint8_t> bytes;
  bytes.reserve(snap.words.size());
  for (const std::uint64_t word : snap.words) {
    EXPECT_LE(word, 0xffull) << "binary-register snapshot word out of range";
    bytes.push_back(static_cast<std::uint8_t>(word));
  }
  return bytes;
}

/// Drive identical random SWSR sequences (sequentially — writer ops and
/// reader ops never overlap) through the sim and rt instantiations of one
/// register algorithm; compare responses and memory after every operation.
template <typename SimImpl, typename RtImpl>
void register_parity(std::uint32_t num_values, std::uint32_t initial,
                     std::uint64_t seed) {
  testing::RegisterSystem<SimImpl> sim_sys(num_values, initial);
  RtImpl rt_reg(num_values, initial);

  EXPECT_EQ(snapshot_bytes(sim_sys.memory), rt_reg.memory_image())
      << "initial memory diverges";

  util::Xoshiro256 rng(seed);
  for (int step = 0; step < 200; ++step) {
    if (rng.chance(1, 3)) {
      const auto sim_got = sim::run_solo(sim_sys.sched, testing::kReaderPid,
                                         sim_sys.impl.read(testing::kReaderPid));
      if constexpr (requires { rt_reg.read(std::uint64_t{1}); }) {
        const auto rt_got = rt_reg.read(/*max_attempts=*/1);
        ASSERT_TRUE(rt_got.has_value()) << "solo TryRead cannot fail";
        EXPECT_EQ(sim_got, *rt_got) << "read response diverges at " << step;
      } else {
        const auto rt_got = rt_reg.read();
        EXPECT_EQ(sim_got, rt_got) << "read response diverges at " << step;
      }
    } else {
      const auto value =
          static_cast<std::uint32_t>(rng.next_in(1, num_values));
      (void)sim::run_solo(sim_sys.sched, testing::kWriterPid,
                          sim_sys.impl.write(testing::kWriterPid, value));
      rt_reg.write(value);
    }
    ASSERT_EQ(snapshot_bytes(sim_sys.memory), rt_reg.memory_image())
        << "memory diverges after op " << step;
  }
}

TEST(EnvParity, Vidyasankar) {
  register_parity<core::VidyasankarRegister, rt::RtVidyasankarRegister>(6, 1,
                                                                        11);
  register_parity<core::VidyasankarRegister, rt::RtVidyasankarRegister>(3, 2,
                                                                        12);
}

TEST(EnvParity, LockFreeHiRegister) {
  register_parity<core::LockFreeHiRegister, rt::RtLockFreeHiRegister>(6, 1, 21);
  register_parity<core::LockFreeHiRegister, rt::RtLockFreeHiRegister>(4, 3, 22);
}

TEST(EnvParity, WaitFreeHiRegister) {
  register_parity<core::WaitFreeHiRegister, rt::RtWaitFreeHiRegister>(6, 1, 31);
  register_parity<core::WaitFreeHiRegister, rt::RtWaitFreeHiRegister>(5, 5, 32);
}

TEST(EnvParity, VidyasankarLeakReproducesIdentically) {
  // The signature non-HI behaviour must be bit-identical across backends:
  // Write(2); Write(1) leaves [1,1,0...] in both environments.
  testing::RegisterSystem<core::VidyasankarRegister> sim_sys(3, 1);
  rt::RtVidyasankarRegister rt_reg(3, 1);
  for (const std::uint32_t v : {2u, 1u}) {
    (void)sim::run_solo(sim_sys.sched, testing::kWriterPid,
                        sim_sys.impl.write(testing::kWriterPid, v));
    rt_reg.write(v);
  }
  EXPECT_EQ(snapshot_bytes(sim_sys.memory),
            (std::vector<std::uint8_t>{1, 1, 0}));
  EXPECT_EQ(rt_reg.memory_image(), (std::vector<std::uint8_t>{1, 1, 0}));
}

// ---- Packed-layout parity: the packed sim instantiation vs the packed rt
// instantiation (the rt default), K=70 so scans and clearing passes cross
// the two-word boundary. Packed sim cells snapshot as 64-bin words rather
// than one byte per bin, so the comparison goes through the
// algorithm-level bin image (encode_memory) on both sides — which is also
// what pins that the packed layout agrees with the padded layout on the
// abstract bins (rt memory_image() is bins in both layouts). ----

template <typename SimAlg, typename RtImpl>
void packed_register_parity(std::uint32_t num_values, std::uint32_t initial,
                            std::uint64_t seed) {
  sim::Memory memory;
  sim::Scheduler sched(2);
  SimAlg sim_alg(memory, num_values, initial);
  RtImpl rt_reg(num_values, initial);

  const auto sim_bins = [&sim_alg] {
    std::vector<std::uint8_t> image;
    sim_alg.encode_memory(image);
    return image;
  };
  EXPECT_EQ(sim_bins(), rt_reg.memory_image()) << "initial memory diverges";

  util::Xoshiro256 rng(seed);
  for (int step = 0; step < 200; ++step) {
    if (rng.chance(1, 3)) {
      const auto sim_got =
          sim::run_solo(sched, testing::kReaderPid, sim_alg.read());
      if constexpr (requires { rt_reg.read(std::uint64_t{1}); }) {
        const auto rt_got = rt_reg.read(/*max_attempts=*/1);
        ASSERT_TRUE(rt_got.has_value()) << "solo TryRead cannot fail";
        EXPECT_EQ(sim_got, *rt_got) << "read response diverges at " << step;
      } else {
        const auto rt_got = rt_reg.read();
        EXPECT_EQ(sim_got, rt_got) << "read response diverges at " << step;
      }
    } else {
      const auto value =
          static_cast<std::uint32_t>(rng.next_in(1, num_values));
      (void)sim::run_solo(sched, testing::kWriterPid, sim_alg.write(value));
      rt_reg.write(value);
    }
    ASSERT_EQ(sim_bins(), rt_reg.memory_image())
        << "memory diverges after op " << step;
  }
}

TEST(EnvParity, PackedVidyasankar) {
  packed_register_parity<algo::VidyasankarAlgPacked<env::SimEnv>,
                         rt::RtVidyasankarRegister>(70, 1, 13);
}

TEST(EnvParity, PackedLockFreeHiRegister) {
  packed_register_parity<algo::LockFreeHiAlgPacked<env::SimEnv>,
                         rt::RtLockFreeHiRegister>(70, 65, 23);
}

TEST(EnvParity, PackedWaitFreeHiRegister) {
  packed_register_parity<algo::WaitFreeHiAlgPacked<env::SimEnv>,
                         rt::RtWaitFreeHiRegister>(70, 1, 33);
}

// ---- Wait-free-sim combinator parity: beyond the inner bins, the
// combinator's own shared words (operation records, help-queue ring,
// head/tail) must evolve identically across backends — encode_memory
// appends each as 8 LE bytes on both sides. The fast-path row keeps the
// residue at zero; the fast_limit=0 row forces EVERY read through
// announce/enqueue/self-help, marching records, slot rounds and the
// head/tail counters through ~200 ops of slow-path evolution. ----

template <typename SimBins, typename RtImpl>
void waitfree_sim_parity(std::uint32_t num_values, std::uint32_t initial,
                         std::uint32_t fast_limit, std::uint64_t seed) {
  sim::Memory memory;
  sim::Scheduler sched(2);
  algo::WaitFreeSimHiAlg<env::SimEnv, SimBins> sim_alg(
      memory, num_values, initial, /*num_processes=*/2, fast_limit);
  RtImpl rt_reg(num_values, initial, /*num_processes=*/2, fast_limit);

  const auto sim_image = [&sim_alg] {
    std::vector<std::uint8_t> image;
    sim_alg.encode_memory(image);
    return image;
  };
  EXPECT_EQ(sim_image(), rt_reg.memory_image()) << "initial memory diverges";

  util::Xoshiro256 rng(seed);
  for (int step = 0; step < 200; ++step) {
    if (rng.chance(1, 3)) {
      const auto sim_got = sim::run_solo(sched, testing::kReaderPid,
                                         sim_alg.read(testing::kReaderPid));
      const auto rt_got = rt_reg.read(testing::kReaderPid);
      EXPECT_EQ(sim_got, rt_got) << "read response diverges at " << step;
    } else {
      const auto value =
          static_cast<std::uint32_t>(rng.next_in(1, num_values));
      (void)sim::run_solo(sched, testing::kWriterPid,
                          sim_alg.write(testing::kWriterPid, value));
      rt_reg.write(value, testing::kWriterPid);
    }
    ASSERT_EQ(sim_image(), rt_reg.memory_image())
        << "memory diverges after op " << step;
  }
  EXPECT_EQ(sim_alg.slow_path_entries(), rt_reg.slow_path_entries());
  EXPECT_EQ(sim_alg.total_ops(), rt_reg.total_ops());
}

TEST(EnvParity, WaitFreeSimHiRegister) {
  waitfree_sim_parity<env::PackedBins<env::SimEnv>,
                      rt::RtWaitFreeSimHiRegister>(70, 1, /*fast_limit=*/1, 41);
}

TEST(EnvParity, WaitFreeSimHiRegisterForcedSlowPath) {
  waitfree_sim_parity<env::PaddedBins<env::SimEnv>,
                      rt::RtWaitFreeSimHiRegisterPadded>(6, 2, /*fast_limit=*/0,
                                                         42);
}

TEST(EnvParity, PackedMaxRegister) {
  const std::uint32_t k = 70;
  sim::Memory memory;
  sim::Scheduler sched(2);
  algo::HiMaxRegisterAlgPacked<env::SimEnv> sim_reg(
      memory, k, 1, testing::kWriterPid, testing::kReaderPid);
  rt::RtMaxRegister rt_reg(k, 1, testing::kWriterPid, testing::kReaderPid);

  const auto sim_bins = [&sim_reg] {
    std::vector<std::uint8_t> image;
    sim_reg.encode_memory(image);
    return image;
  };
  util::Xoshiro256 rng(63);
  for (int step = 0; step < 200; ++step) {
    if (rng.chance(1, 3)) {
      const auto sim_got =
          sim::run_solo(sched, testing::kReaderPid,
                        sim_reg.read_max(testing::kReaderPid));
      EXPECT_EQ(sim_got, rt_reg.read_max()) << "read diverges at " << step;
    } else {
      const auto value = static_cast<std::uint32_t>(rng.next_in(1, k));
      (void)sim::run_solo(sched, testing::kWriterPid,
                          sim_reg.write_max(testing::kWriterPid, value));
      rt_reg.write_max(value);
    }
    ASSERT_EQ(sim_bins(), rt_reg.memory_image())
        << "memory diverges after op " << step;
  }
}

TEST(EnvParity, PackedHiSet) {
  const std::uint32_t domain = 64;
  sim::Memory memory;
  sim::Scheduler sched(2);
  algo::HiSetAlgPacked<env::SimEnv> sim_set(memory, domain,
                                            0x5555555555555555ull);
  rt::RtHiSet rt_set(domain, 0x5555555555555555ull);

  const auto sim_bins = [&sim_set] {
    std::vector<std::uint8_t> image;
    sim_set.encode_memory(image);
    return image;
  };
  EXPECT_EQ(sim_bins(), rt_set.memory_image());

  util::Xoshiro256 rng(73);
  for (int step = 0; step < 300; ++step) {
    const auto v = static_cast<std::uint32_t>(rng.next_in(1, domain));
    bool sim_got = false;
    bool rt_got = false;
    switch (rng.next_below(3)) {
      case 0:
        sim_got = sim::run_solo(sched, 0, sim_set.insert(v));
        rt_got = rt_set.insert(v);
        break;
      case 1:
        sim_got = sim::run_solo(sched, 0, sim_set.remove(v));
        rt_got = rt_set.remove(v);
        break;
      default:
        sim_got = sim::run_solo(sched, 0, sim_set.lookup(v));
        rt_got = rt_set.lookup(v);
        break;
    }
    EXPECT_EQ(sim_got, rt_got) << "response diverges at " << step;
    ASSERT_EQ(sim_bins(), rt_set.memory_image())
        << "memory diverges after op " << step;
  }
}

TEST(EnvParity, ShardedHiSet) {
  // The sharded multi-word store: domain 150 over 2 striped shards — 75
  // bins = 2 packed words per shard, so parity covers the word-boundary
  // arithmetic AND the shard scatter of a non-trivial initial bitmap
  // (150 live bits: the tail word's high 42 bits must be masked off
  // identically on both backends).
  const std::uint32_t domain = 150;
  const std::vector<std::uint64_t> init = {0x5555555555555555ull,
                                           0x0123456789abcdefull,
                                           0xffffffffffffffffull};
  sim::Memory memory;
  sim::Scheduler sched(2);
  algo::ShardedHiSetPacked<env::SimEnv> sim_set(
      memory, domain, 2, algo::ShardPlacement::kStriped,
      std::span<const std::uint64_t>(init));
  rt::RtShardedHiSet rt_set(domain, 2, algo::ShardPlacement::kStriped,
                            std::span<const std::uint64_t>(init));

  const auto sim_bins = [&sim_set] {
    std::vector<std::uint8_t> image;
    sim_set.encode_memory(image);
    return image;
  };
  EXPECT_EQ(sim_bins(), rt_set.memory_image());

  util::Xoshiro256 rng(91);
  for (int step = 0; step < 300; ++step) {
    const auto v = static_cast<std::uint32_t>(rng.next_in(1, domain));
    bool sim_got = false;
    bool rt_got = false;
    switch (rng.next_below(3)) {
      case 0:
        sim_got = sim::run_solo(sched, 0, sim_set.insert(v));
        rt_got = rt_set.insert(v);
        break;
      case 1:
        sim_got = sim::run_solo(sched, 0, sim_set.remove(v));
        rt_got = rt_set.remove(v);
        break;
      default:
        sim_got = sim::run_solo(sched, 0, sim_set.lookup(v));
        rt_got = rt_set.lookup(v);
        break;
    }
    EXPECT_EQ(sim_got, rt_got) << "response diverges at " << step;
    ASSERT_EQ(sim_bins(), rt_set.memory_image())
        << "memory diverges after op " << step;
    if (step % 50 == 49) {
      // Full-membership audits agree too (same per-shard scan order).
      std::vector<std::uint32_t> sim_members;
      std::vector<std::uint32_t> rt_members;
      const auto sim_count =
          sim::run_solo(sched, 0, sim_set.snapshot_members(sim_members));
      const auto rt_count = rt_set.snapshot_members(rt_members);
      EXPECT_EQ(sim_count, rt_count);
      EXPECT_EQ(sim_members, rt_members)
          << "audit diverges after op " << step;
    }
  }
}

// ---- R-LLSC (Algorithm 6): value ↦ lo (hi unused), ctx ↦ ctx ----

// Cell operations are SubTasks (they must run inside a scheduled process);
// these adapters lift each one into a schedulable OpTask for run_solo.
sim::OpTask<std::uint64_t> op_ll(core::CasRllsc& cell, int pid) {
  const core::RllscValue v = co_await cell.ll(pid);
  co_return v.lo;
}
sim::OpTask<bool> op_vl(core::CasRllsc& cell, int pid) {
  const bool linked = co_await cell.vl(pid);
  co_return linked;
}
sim::OpTask<bool> op_sc(core::CasRllsc& cell, int pid, std::uint64_t arg) {
  const bool done = co_await cell.sc(pid, core::RllscValue{arg, 0});
  co_return done;
}
sim::OpTask<bool> op_rl(core::CasRllsc& cell, int pid) {
  const bool done = co_await cell.rl(pid);
  co_return done;
}
sim::OpTask<std::uint64_t> op_load(core::CasRllsc& cell) {
  const core::RllscValue v = co_await cell.load();
  co_return v.lo;
}
sim::OpTask<bool> op_store(core::CasRllsc& cell, std::uint64_t arg) {
  const bool done = co_await cell.store(core::RllscValue{arg, 0});
  co_return done;
}

TEST(EnvParity, CasRllsc) {
  sim::Memory memory;
  sim::Scheduler sched(4);
  core::CasRllsc sim_cell(memory, "X", core::RllscValue{7, 0});
  rt::RtRllsc rt_cell(7);

  const auto expect_same_state = [&](int at) {
    const sim::MemorySnapshot snap = memory.snapshot();
    ASSERT_EQ(snap.words.size(), 3u);
    const rt::Word128 rt_word = rt_cell.snapshot();
    EXPECT_EQ(snap.words[0], rt_word.value) << "value diverges at " << at;
    EXPECT_EQ(snap.words[1], 0u) << "hi word unused in this embedding";
    EXPECT_EQ(snap.words[2], rt_word.ctx) << "context diverges at " << at;
  };

  util::Xoshiro256 rng(41);
  for (int step = 0; step < 300; ++step) {
    const int pid = static_cast<int>(rng.next_below(4));
    const auto arg = rng.next_below(100);
    switch (rng.next_below(6)) {
      case 0:
        EXPECT_EQ(sim::run_solo(sched, pid, op_ll(sim_cell, pid)),
                  rt_cell.ll(pid));
        break;
      case 1:
        EXPECT_EQ(sim::run_solo(sched, pid, op_vl(sim_cell, pid)),
                  rt_cell.vl(pid));
        break;
      case 2:
        EXPECT_EQ(sim::run_solo(sched, pid, op_sc(sim_cell, pid, arg)),
                  rt_cell.sc(pid, arg));
        break;
      case 3:
        EXPECT_EQ(sim::run_solo(sched, pid, op_rl(sim_cell, pid)),
                  rt_cell.rl(pid));
        break;
      case 4:
        EXPECT_EQ(sim::run_solo(sched, pid, op_load(sim_cell)),
                  rt_cell.load());
        break;
      default:
        EXPECT_EQ(sim::run_solo(sched, pid, op_store(sim_cell, arg)),
                  rt_cell.store(arg));
        break;
    }
    expect_same_state(step);
  }
}

// ---- §5.1 max register: monotone writes over the same A[1..K] binary
// array in both environments, so parity is word-for-word. Absorbed writes
// must leave both memories untouched. ----

TEST(EnvParity, MaxRegister) {
  for (const std::uint64_t seed : {61u, 62u}) {
    const std::uint32_t k = 8;
    const spec::MaxRegisterSpec spec(k, 1);
    sim::Memory memory;
    sim::Scheduler sched(2);
    core::HiMaxRegister sim_reg(memory, spec, testing::kWriterPid,
                                testing::kReaderPid);
    rt::RtMaxRegister rt_reg(k, 1, testing::kWriterPid, testing::kReaderPid);

    EXPECT_EQ(snapshot_bytes(memory), rt_reg.memory_image());

    util::Xoshiro256 rng(seed);
    for (int step = 0; step < 200; ++step) {
      if (rng.chance(1, 3)) {
        const auto sim_got =
            sim::run_solo(sched, testing::kReaderPid,
                          sim_reg.read_max(testing::kReaderPid));
        EXPECT_EQ(sim_got, rt_reg.read_max()) << "read diverges at " << step;
      } else {
        const auto value = static_cast<std::uint32_t>(rng.next_in(1, k));
        (void)sim::run_solo(sched, testing::kWriterPid,
                            sim_reg.write_max(testing::kWriterPid, value));
        rt_reg.write_max(value);
      }
      ASSERT_EQ(snapshot_bytes(memory), rt_reg.memory_image())
          << "memory diverges after op " << step;
    }
  }
}

// ---- §5.1 perfect-HI set: every operation is one primitive on the same
// S[1..t] binary array, so parity is word-for-word after every op. ----

TEST(EnvParity, HiSet) {
  for (const std::uint64_t seed : {71u, 72u}) {
    const std::uint32_t domain = 10;
    const spec::SetSpec spec(domain);
    sim::Memory memory;
    sim::Scheduler sched(2);
    core::HiSet sim_set(memory, spec);
    rt::RtHiSet rt_set(domain, spec.initial_state());

    EXPECT_EQ(snapshot_bytes(memory), rt_set.memory_image());

    util::Xoshiro256 rng(seed);
    for (int step = 0; step < 300; ++step) {
      const auto v = static_cast<std::uint32_t>(rng.next_in(1, domain));
      bool sim_got = false;
      bool rt_got = false;
      switch (rng.next_below(3)) {
        case 0:
          sim_got = sim::run_solo(sched, 0, sim_set.insert(v));
          rt_got = rt_set.insert(v);
          break;
        case 1:
          sim_got = sim::run_solo(sched, 0, sim_set.remove(v));
          rt_got = rt_set.remove(v);
          break;
        default:
          sim_got = sim::run_solo(sched, 0, sim_set.lookup(v));
          rt_got = rt_set.lookup(v);
          break;
      }
      EXPECT_EQ(sim_got, rt_got) << "response diverges at " << step;
      ASSERT_EQ(snapshot_bytes(memory), rt_set.memory_image())
          << "memory diverges after op " << step;
    }
  }
}

// ---- Leaky universal baseline: one single-source body, and the head codec
// packs ⟨state, version, record⟩ identically on both backends, so parity
// covers responses AND every decoded leak field (version, announce and
// result tables) after every operation of an identical sequence. ----

TEST(EnvParity, LeakyUniversalCounter) {
  const spec::CounterSpec spec(1u << 20, 10);
  const int n = 4;
  sim::Memory memory;
  sim::Scheduler sched(n);
  baseline::LeakyUniversal<spec::CounterSpec> sim_obj(memory, spec, n);
  rt::RtLeakyUniversal<spec::CounterSpec> rt_obj(spec, n);

  util::Xoshiro256 rng(81);
  for (int step = 0; step < 300; ++step) {
    const int pid = static_cast<int>(rng.next_below(n));
    spec::CounterSpec::Op op;
    switch (rng.next_below(4)) {
      case 0: op = spec::CounterSpec::read(); break;
      case 1: op = spec::CounterSpec::dec(); break;
      default: op = spec::CounterSpec::inc(); break;
    }
    const auto sim_got = sim::run_solo(sched, pid, sim_obj.apply(pid, op));
    const auto rt_got = rt_obj.apply(pid, op);
    EXPECT_EQ(sim_got, rt_got) << "response diverges at " << step;
    EXPECT_EQ(sim_obj.head_state_encoded(), rt_obj.head_state_encoded());
    EXPECT_EQ(sim_obj.version(), rt_obj.version()) << "version diverges";
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(sim_obj.peek_announce(i), rt_obj.peek_announce(i))
          << "announce[" << i << "] diverges at " << step;
      EXPECT_EQ(sim_obj.peek_result(i), rt_obj.peek_result(i))
          << "result[" << i << "] diverges at " << step;
    }
  }
  // The leak itself must reproduce identically: both versions count every
  // state-changing operation ever applied.
  EXPECT_GT(sim_obj.version(), 0u);
}

// ---- Universal construction (Algorithm 5 over 6): every backend packs the
// head/announce tuples through the ONE Word64HeadCodec (a sim value is the
// codec word in lo with hi ≡ 0), so parity is word-exact: after every
// operation of an identical sequence, the sim memory_words() and the rt
// memory_image() are the same ⟨value, ctx⟩ vector. ----

/// Word-for-word comparison of the sim and rt universal memory images.
template <typename SimObj, typename RtObj>
void expect_universal_words_equal(const SimObj& sim_obj, const RtObj& rt_obj,
                                  int at) {
  const auto sim_words = sim_obj.memory_words();
  const auto rt_words = rt_obj.memory_image();
  ASSERT_EQ(sim_words.size(), rt_words.size());
  for (std::size_t i = 0; i < sim_words.size(); ++i) {
    EXPECT_EQ(sim_words[i].value.lo, rt_words[i].value)
        << "word " << i << " value diverges at " << at;
    EXPECT_EQ(sim_words[i].value.hi, 0u)
        << "sim hi half must stay zero (Word64HeadCodec contract)";
    EXPECT_EQ(sim_words[i].ctx, rt_words[i].ctx)
        << "word " << i << " context diverges at " << at;
  }
}

/// Shared body for the plain and combining universal parity rows.
void universal_parity(bool combine, std::uint64_t seed) {
  const spec::CounterSpec spec(1u << 20, 10);
  const int n = 4;
  sim::Memory memory;
  sim::Scheduler sched(n);
  core::Universal<spec::CounterSpec, core::CasRllsc> sim_obj(
      memory, spec, n, /*clear_contexts=*/true, combine);
  rt::RtUniversal<spec::CounterSpec> rt_obj(spec, n, /*clear_contexts=*/true,
                                            combine);

  util::Xoshiro256 rng(seed);
  for (int step = 0; step < 300; ++step) {
    const int pid = static_cast<int>(rng.next_below(n));
    spec::CounterSpec::Op op;
    switch (rng.next_below(4)) {
      case 0: op = spec::CounterSpec::read(); break;
      case 1: op = spec::CounterSpec::dec(); break;
      default: op = spec::CounterSpec::inc(); break;
    }
    const auto sim_got = sim::run_solo(sched, pid, sim_obj.apply(pid, op));
    const auto rt_got = rt_obj.apply(pid, op);
    EXPECT_EQ(sim_got, rt_got) << "response diverges at " << step;
    EXPECT_EQ(sim_obj.head_state_encoded(), rt_obj.head_state_encoded());
    EXPECT_FALSE(sim_obj.head_has_response());
    EXPECT_FALSE(rt_obj.head_has_response());
    expect_universal_words_equal(sim_obj, rt_obj, step);
  }
  // Batch accounting marches in lockstep too (sequential solo updates are
  // batches of one in both modes, on both backends).
  EXPECT_EQ(sim_obj.batches_installed(), rt_obj.batches_installed());
  EXPECT_EQ(sim_obj.ops_combined(), rt_obj.ops_combined());
  EXPECT_EQ(sim_obj.ops_combined(), sim_obj.batches_installed());
  EXPECT_GT(sim_obj.batches_installed(), 0u);
}

TEST(EnvParity, UniversalCounter) { universal_parity(/*combine=*/false, 51); }

TEST(EnvParity, UniversalCombineCounter) {
  universal_parity(/*combine=*/true, 52);
}

TEST(EnvParity, UniversalCombineForcedBatchScript) {
  // Deterministic batch on BOTH backends: park announcements for p0 and p1
  // (the announce_only test hook = line 4 then stall), then run p2's
  // increment to completion. The winner sweep must apply all three ops in
  // one install on each backend, leave the identical memory image, and pin
  // the helped responses in the announce cells — whose expected words come
  // straight from Word64HeadCodec (10 and 11: the batch folds ascending
  // pid from initial state 10).
  const spec::CounterSpec spec(1u << 20, 10);
  const int n = 3;
  sim::Memory memory;
  sim::Scheduler sched(n);
  core::Universal<spec::CounterSpec, core::CasRllsc> sim_obj(
      memory, spec, n, /*clear_contexts=*/true, /*combine=*/true);
  rt::RtUniversal<spec::CounterSpec> rt_obj(spec, n, /*clear_contexts=*/true,
                                            /*combine=*/true);

  for (int pid : {0, 1}) {
    (void)sim::run_solo(sched, pid,
                        sim_obj.announce_only(pid, spec::CounterSpec::inc()));
    (void)rt_obj.announce_only(pid, spec::CounterSpec::inc());
  }
  expect_universal_words_equal(sim_obj, rt_obj, -1);

  const auto sim_resp =
      sim::run_solo(sched, 2, sim_obj.apply(2, spec::CounterSpec::inc()));
  const auto rt_resp = rt_obj.apply(2, spec::CounterSpec::inc());
  EXPECT_EQ(sim_resp, 12u);
  EXPECT_EQ(rt_resp, 12u);

  EXPECT_EQ(sim_obj.batches_installed(), 1u);
  EXPECT_EQ(sim_obj.ops_combined(), 3u);
  EXPECT_EQ(rt_obj.batches_installed(), 1u);
  EXPECT_EQ(rt_obj.ops_combined(), 3u);
  EXPECT_EQ(sim_obj.head_state_encoded(), 13u);
  EXPECT_EQ(rt_obj.head_state_encoded(), 13u);

  // The helped responses sit in the parked cells, bit-exactly as the codec
  // specifies, with clean contexts; p2's own cell is back to ⊥.
  const auto rt_words = rt_obj.memory_image();
  ASSERT_EQ(rt_words.size(), 4u);  // head + 3 announce cells
  EXPECT_EQ(rt_words[1].value, algo::Word64HeadCodec::announce_resp(10));
  EXPECT_EQ(rt_words[2].value, algo::Word64HeadCodec::announce_resp(11));
  EXPECT_EQ(rt_words[3].value, algo::Word64HeadCodec::bottom());
  for (const auto& word : rt_words) EXPECT_EQ(word.ctx, 0u);
  expect_universal_words_equal(sim_obj, rt_obj, -2);
}

}  // namespace
}  // namespace hi
