// Dynamic partial-order reduction in the exhaustive explorer
// (sim/explorer.h, ExploreMode::kDpor), plus the explorer's limit paths.
//
// The load-bearing claims, each asserted here:
//   1. SOUNDNESS — on a workload small enough for naive DFS to finish, DPOR
//      produces EXACTLY the same set of complete-execution histories
//      (canonical per-operation keys + the real-time precedence relation),
//      while exploring strictly fewer executions.
//   2. SCALE — a 3-process cross-shard workload whose naive enumeration
//      blows a deliberately tight max_executions cap exhausts under DPOR
//      (the point of the reduction: sharded/multi-word compositions were
//      already at the naive explorer's practical depth limit).
//   3. BUG PRESERVATION — the two known positive controls (Algorithm 1's
//      HI leak, the broken counter's lost update) are still caught when
//      exploring only DPOR representatives.
//   4. LIMITS — max_executions clears `exhausted`, max_depth counts
//      truncated walks, try_execute rejects invalid sequences, and
//      trace_of(current_prefix()) round-trips through verify/replay.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/hi_set.h"
#include "core/sharded_set.h"
#include "core/universal.h"
#include "core/vidyasankar.h"
#include "fuzz_common.h"
#include "replay/replay_objects.h"
#include "sim/explorer.h"
#include "sim/harness.h"
#include "spec/counter_spec.h"
#include "spec/register_spec.h"
#include "spec/set_spec.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"
#include "verify/replay.h"

namespace hi {
namespace {

// ---------------------------------------------------------------- history keys

/// Canonical key of a history: per-operation (pid, encoded op, encoded
/// response) labelled in (pid, invocation-order) order, plus the real-time
/// precedence relation over those labels. Invariant under exactly the
/// reorderings DPOR prunes (swaps of adjacent independent events preserve
/// per-process order, responses, and precedence), so equality of key SETS
/// across modes is the soundness assertion.
template <typename S, typename Hist>
std::string history_key(const S& spec, const Hist& hist) {
  const auto& entries = hist.entries();
  std::vector<std::size_t> order(entries.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (entries[a].pid != entries[b].pid) return entries[a].pid < entries[b].pid;
    return entries[a].invoked_at < entries[b].invoked_at;
  });
  std::vector<std::size_t> label(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) label[order[i]] = i;

  std::ostringstream out;
  for (const std::size_t idx : order) {
    const auto& e = entries[idx];
    out << 'p' << e.pid << ':' << spec.encode_op(e.op) << ':';
    if (e.completed()) {
      out << spec.encode_resp(e.resp);
    } else {
      out << '?';
    }
    out << ';';
  }
  out << '|';
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (i != j && entries[i].precedes(entries[j])) {
        out << label[i] << '<' << label[j] << ';';
      }
    }
  }
  return out.str();
}

// ------------------------------------------------------------------- systems

struct Set3System {
  spec::SetSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::HiSet impl;

  Set3System() : spec(6), sched(3), impl(mem, spec) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<bool> apply(int pid, spec::SetSpec::Op op) {
    return impl.apply(pid, op);
  }
};

/// 3 processes × 4 striped shards, each process working a key in its OWN
/// shard (kStriped: key k → shard (k-1) % 4, so keys 1/2/3 are pairwise
/// cross-shard): maximal inter-process independence, the configuration DPOR
/// is for.
struct CrossShard3System {
  spec::SetSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::ShardedHiSet impl;

  CrossShard3System()
      : spec(12),
        sched(3),
        impl(mem, spec, /*shard_count=*/4, algo::ShardPlacement::kStriped) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<bool> apply(int pid, spec::SetSpec::Op op) {
    return impl.apply(pid, op);
  }
};

template <typename System>
struct ExploreOutcome {
  sim::ExploreStats stats;
  std::set<std::string> history_keys;
  std::uint64_t lin_failures = 0;
};

template <typename S, typename System>
ExploreOutcome<System> explore_mode(
    const S& spec, std::vector<std::vector<typename S::Op>> work,
    sim::ExploreMode mode, std::uint64_t max_executions = 2'000'000,
    typename sim::Explorer<S, System>::Factory factory = nullptr,
    std::size_t max_depth = 64) {
  if (!factory) {
    if constexpr (std::default_initializable<System>) {
      factory = [] { return std::make_unique<System>(); };
    }
  }
  sim::Explorer<S, System> explorer(spec, std::move(factory), std::move(work));
  ExploreOutcome<System> outcome;
  outcome.stats = explorer.explore(
      {.max_depth = max_depth, .max_executions = max_executions, .mode = mode},
      nullptr, [&](System&, const auto& hist) {
        outcome.history_keys.insert(history_key(spec, hist));
        if (!verify::check_linearizable(spec, hist).ok()) {
          ++outcome.lin_failures;
        }
      });
  return outcome;
}

// ------------------------------------------------- soundness + reduction ratio

TEST(ExplorerDpor, HiSet3Proc_SameHistorySetStrictlyFewerExecutions) {
  const spec::SetSpec spec(6);
  const std::vector<std::vector<spec::SetSpec::Op>> work = {
      {spec::SetSpec::insert(1), spec::SetSpec::remove(2)},
      {spec::SetSpec::insert(2), spec::SetSpec::lookup(1)},
      {spec::SetSpec::insert(3)}};

  const auto naive =
      explore_mode<spec::SetSpec, Set3System>(spec, work, sim::ExploreMode::kNaive);
  const auto dpor =
      explore_mode<spec::SetSpec, Set3System>(spec, work, sim::ExploreMode::kDpor);

  ASSERT_TRUE(naive.stats.exhausted);
  ASSERT_TRUE(dpor.stats.exhausted);
  EXPECT_EQ(naive.lin_failures, 0u);
  EXPECT_EQ(dpor.lin_failures, 0u);

  // Strict reduction: DPOR must complete fewer walks than the unreduced
  // enumeration (the ratio on this workload is well over 2×; assert the
  // direction, not the brittle exact counts).
  EXPECT_GT(naive.stats.executions_complete, 0u);
  EXPECT_LT(dpor.stats.executions_complete, naive.stats.executions_complete)
      << "DPOR explored as many executions as naive DFS — no reduction";

  // Soundness: identical complete-execution history sets.
  EXPECT_FALSE(naive.history_keys.empty());
  EXPECT_EQ(naive.history_keys, dpor.history_keys)
      << "DPOR pruned a non-equivalent interleaving (or invented one)";
}

TEST(ExplorerDpor, BrokenCounter_SameHistorySetIncludingViolations) {
  // inc ‖ inc ‖ read on the lost-update counter: the history set contains
  // non-linearizable members; DPOR must preserve them exactly.
  const testing::NaiveCounterSpec spec;
  const std::vector<std::vector<testing::NaiveCounterSpec::Op>> work = {
      {testing::NaiveCounterSpec::inc()},
      {testing::NaiveCounterSpec::inc()},
      {testing::NaiveCounterSpec::read()}};

  const auto factory = [] {
    return std::make_unique<testing::BrokenCounterSystem>(3);
  };
  const auto naive = explore_mode<testing::NaiveCounterSpec,
                                  testing::BrokenCounterSystem>(
      spec, work, sim::ExploreMode::kNaive, 2'000'000, factory);
  const auto dpor = explore_mode<testing::NaiveCounterSpec,
                                 testing::BrokenCounterSystem>(
      spec, work, sim::ExploreMode::kDpor, 2'000'000, factory);

  ASSERT_TRUE(naive.stats.exhausted);
  ASSERT_TRUE(dpor.stats.exhausted);
  EXPECT_GT(naive.lin_failures, 0u) << "positive control lost its bug";
  EXPECT_GT(dpor.lin_failures, 0u)
      << "DPOR pruned every execution exhibiting the seeded lost update";
  EXPECT_LT(dpor.stats.executions_complete, naive.stats.executions_complete);
  EXPECT_EQ(naive.history_keys, dpor.history_keys);
}

// -------------------------------------------------------------------- scale

TEST(ExplorerDpor, CrossShard3Proc_ExhaustsUnderCapWhereNaiveCannot) {
  // 3 processes × (insert k; remove k) on pairwise cross-shard keys: 12
  // decisions, 12!/(4!)³ = 34650 naive complete executions. kCap is sized
  // between the DPOR and naive counts, so the SAME limits exhaust under
  // DPOR and overflow under naive DFS — the "previously exceeded
  // max_executions, now exhausts" acceptance criterion, in miniature.
  const spec::SetSpec spec(12);
  const std::vector<std::vector<spec::SetSpec::Op>> work = {
      {spec::SetSpec::insert(1), spec::SetSpec::remove(1)},
      {spec::SetSpec::insert(2), spec::SetSpec::remove(2)},
      {spec::SetSpec::insert(3), spec::SetSpec::remove(3)}};
  constexpr std::uint64_t kCap = 20'000;

  const auto dpor = explore_mode<spec::SetSpec, CrossShard3System>(
      spec, work, sim::ExploreMode::kDpor, kCap);
  ASSERT_TRUE(dpor.stats.exhausted)
      << "DPOR needed more than " << kCap << " executions ("
      << dpor.stats.executions_complete << " complete, "
      << dpor.stats.executions_pruned << " pruned)";
  EXPECT_EQ(dpor.lin_failures, 0u);

  const auto naive = explore_mode<spec::SetSpec, CrossShard3System>(
      spec, work, sim::ExploreMode::kNaive, kCap);
  EXPECT_FALSE(naive.stats.exhausted)
      << "the cap is no longer tight for naive DFS — shrink kCap";

  // And the reduced run still covers the full history set: every complete
  // history naive found below the cap is (a representative of) one DPOR
  // found, and the full naive enumeration is known to be 34650 executions.
  const auto naive_full = explore_mode<spec::SetSpec, CrossShard3System>(
      spec, work, sim::ExploreMode::kNaive, 100'000);
  ASSERT_TRUE(naive_full.stats.exhausted);
  EXPECT_EQ(naive_full.stats.executions_complete, 34650u);
  EXPECT_EQ(naive_full.history_keys, dpor.history_keys);
}

// ------------------------------------------------- flat-combining universal

/// 2-process flat-combining universal counter over native R-LLSC cells (the
/// shallowest step count, which is what bounds the naive tree).
struct UniversalCombine2System {
  spec::CounterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::Universal<spec::CounterSpec, core::NativeRllsc> impl;

  UniversalCombine2System()
      : spec(1u << 20, 10),
        sched(2),
        impl(mem, spec, /*num_processes=*/2, /*clear_contexts=*/true,
             /*combine=*/true) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, spec::CounterSpec::Op op) {
    return impl.apply(pid, op);
  }
};

TEST(ExplorerDpor, CombiningUniversal_DporExhaustsAndCoversNaiveHistories) {
  // inc ‖ inc over the combine=true universal. Combining is lock-free, not
  // wait-free: a process scheduled against a parked winner spins on the
  // combining record, so at ANY depth admitting completions (~30 decisions)
  // the unreduced tree holds millions of starvation walks — naive DFS
  // cannot exhaust it under a practical cap (measured: >5M leaves at depth
  // 32 and 36 alike). DPOR exhausts it outright. So the history-set
  // comparison runs in two directions that ARE decidable:
  //   * DPOR's complete-history set is exactly the 4 analytically possible
  //     classes for inc ‖ inc from state 10 — responses a permutation of
  //     {10, 11}, precedence p0<p1 / p1<p0 (assignment forced) or
  //     concurrent (both assignments) — i.e. batching invented nothing and
  //     lost nothing;
  //   * every history the capped naive walk DID reach is one DPOR kept.
  const spec::CounterSpec spec(1u << 20, 10);
  const std::vector<std::vector<spec::CounterSpec::Op>> work = {
      {spec::CounterSpec::inc()}, {spec::CounterSpec::inc()}};
  constexpr std::size_t kDepth = 36;
  constexpr std::uint64_t kCap = 400'000;

  const auto dpor = explore_mode<spec::CounterSpec, UniversalCombine2System>(
      spec, work, sim::ExploreMode::kDpor, kCap, nullptr, kDepth);
  ASSERT_TRUE(dpor.stats.exhausted)
      << "DPOR needed more than " << kCap << " executions";
  EXPECT_EQ(dpor.lin_failures, 0u);
  EXPECT_EQ(dpor.history_keys.size(), 4u)
      << "expected exactly the 4 response/precedence classes of inc ‖ inc";

  const auto naive = explore_mode<spec::CounterSpec, UniversalCombine2System>(
      spec, work, sim::ExploreMode::kNaive, kCap, nullptr, kDepth);
  EXPECT_FALSE(naive.stats.exhausted)
      << "naive DFS exhausted the combining tree — the spin blowup is gone, "
         "tighten this test back to full set equality";
  EXPECT_EQ(naive.lin_failures, 0u);
  EXPECT_FALSE(naive.history_keys.empty());
  EXPECT_TRUE(std::includes(dpor.history_keys.begin(), dpor.history_keys.end(),
                            naive.history_keys.begin(),
                            naive.history_keys.end()))
      << "naive DFS reached a history DPOR pruned away";
}

// --------------------------------------------------------- bug preservation

struct VidySystem {
  spec::RegisterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::VidyasankarRegister impl;

  VidySystem() : spec(3, 1), sched(2), impl(mem, spec, /*writer=*/0, /*reader=*/1) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, spec::RegisterSpec::Op op) {
    return impl.apply(pid, op);
  }
};

TEST(ExplorerDpor, Alg1Control_LeakStillFoundUnderDpor) {
  // The Exhaustive.Alg1Control negative control, re-run over DPOR
  // representatives only: equivalent executions share quiescent memory
  // images, so one representative per class must still expose the leak.
  const spec::RegisterSpec spec(3, 1);
  using System = VidySystem;
  verify::HiChecker checker;
  {
    System solo;
    (void)sim::run_solo(solo.sched, 0, solo.impl.write(0, 1));
    ASSERT_TRUE(checker.set_canonical(1, solo.mem.snapshot()));
  }
  sim::Explorer<spec::RegisterSpec, System> explorer(
      spec, [] { return std::make_unique<System>(); },
      {{spec::RegisterSpec::write(2), spec::RegisterSpec::write(1)}, {}});
  (void)explorer.explore(
      {.max_depth = 20, .max_executions = 10'000,
       .mode = sim::ExploreMode::kDpor},
      [&](System& sys, const auto& hist, int, int state_changing_pending) {
        if (state_changing_pending != 0) return;
        std::uint64_t state = 1;
        for (const auto& e : hist.entries()) {
          if (e.completed() && e.op.kind == spec::RegisterSpec::Kind::kWrite) {
            state = e.op.value;
          }
        }
        checker.observe(state, sys.mem.snapshot(), "dpor-explored");
      },
      nullptr);
  EXPECT_FALSE(checker.consistent()) << "DPOR exploration missed the Alg 1 leak";
}

// ------------------------------------------------------------------- limits

struct Set2System {
  spec::SetSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  core::HiSet impl;

  Set2System() : spec(4), sched(2), impl(mem, spec) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<bool> apply(int pid, spec::SetSpec::Op op) {
    return impl.apply(pid, op);
  }
};

std::vector<std::vector<spec::SetSpec::Op>> two_proc_set_work() {
  return {{spec::SetSpec::insert(1), spec::SetSpec::remove(2)},
          {spec::SetSpec::insert(2), spec::SetSpec::lookup(1)}};
}

TEST(ExplorerLimits, MaxExecutionsCapClearsExhausted) {
  const spec::SetSpec spec(4);
  sim::Explorer<spec::SetSpec, Set2System> explorer(
      spec, [] { return std::make_unique<Set2System>(); },
      two_proc_set_work());
  const auto stats =
      explorer.explore({.max_depth = 64, .max_executions = 5}, nullptr, nullptr);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_EQ(stats.executions_complete + stats.executions_truncated +
                stats.executions_pruned,
            5u)
      << "the cap must stop enumeration exactly at max_executions";
}

TEST(ExplorerLimits, MaxDepthCountsTruncatedExecutions) {
  // Every walk of this workload needs >3 decisions, so with max_depth=3
  // nothing completes and every walk counts as truncated.
  const spec::SetSpec spec(4);
  sim::Explorer<spec::SetSpec, Set2System> explorer(
      spec, [] { return std::make_unique<Set2System>(); },
      two_proc_set_work());
  const auto stats = explorer.explore(
      {.max_depth = 3, .max_executions = 1'000'000}, nullptr, nullptr);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.executions_complete, 0u);
  EXPECT_GT(stats.executions_truncated, 0u);
}

TEST(ExplorerLimits, TryExecuteRejectsInvalidSequences) {
  const spec::SetSpec spec(4);
  sim::Explorer<spec::SetSpec, Set2System> explorer(
      spec, [] { return std::make_unique<Set2System>(); },
      two_proc_set_work());
  // Stepping a process with no pending operation.
  EXPECT_FALSE(explorer.try_execute({{0, false}}).has_value());
  // Out-of-range pid.
  EXPECT_FALSE(explorer.try_execute({{7, true}}).has_value());
  // Starting a third operation on a 2-op process.
  EXPECT_FALSE(
      explorer.try_execute({{0, true}, {0, true}, {0, true}}).has_value());
  // A valid solo run of process 0's first op: start, then step to completion.
  const auto hist = explorer.try_execute({{0, true}, {0, false}});
  ASSERT_TRUE(hist.has_value());
  ASSERT_EQ(hist->size(), 1u);
  EXPECT_TRUE(hist->entries()[0].completed());
}

TEST(ExplorerLimits, TraceOfCurrentPrefixRoundTripsThroughReplay) {
  // Capture the decision path of one complete execution, render it as a
  // ScheduleTrace, and re-execute it differentially over ReplayEnv
  // (hardware atomics) — the verify/replay.h round trip for
  // explorer-captured schedules.
  const std::uint32_t domain = 4;
  const spec::SetSpec spec(domain);
  const auto work = two_proc_set_work();
  sim::Explorer<spec::SetSpec, Set2System> explorer(
      spec, [] { return std::make_unique<Set2System>(); }, work);

  std::optional<std::vector<sim::Decision>> captured;
  std::uint64_t seen = 0;
  (void)explorer.explore(
      {.max_depth = 64, .max_executions = 200}, nullptr,
      [&](Set2System&, const auto&) {
        // Skip a few executions so the captured path is not the all-p0
        // leftmost walk.
        if (++seen == 7 && !captured.has_value()) {
          captured = explorer.current_prefix();
        }
      });
  ASSERT_TRUE(captured.has_value());
  const sim::ScheduleTrace trace = explorer.trace_of(*captured);
  ASSERT_EQ(trace.steps.size(), captured->size());

  sim::Memory sim_memory;
  sim::Scheduler sim_sched(2);
  core::HiSet sim_impl(sim_memory, spec);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::HiSet replay_impl(replay_memory, spec);
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sched, sim_impl, replay_sched, replay_impl, work, trace,
      verify::snapshot_word_compare(sim_memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message << "\ntrace:\n" << trace.pretty();
  // steps_executed counts granted primitive steps, not invocation events.
  const auto granted_steps = static_cast<std::uint64_t>(std::count_if(
      trace.steps.begin(), trace.steps.end(),
      [](const sim::TraceStep& s) { return !s.start; }));
  EXPECT_EQ(report.steps_executed, granted_steps);
  EXPECT_EQ(report.responses_compared, 4u);
}

TEST(ExplorerDpor, SingleProcessChainMatchesNaive) {
  // One process ⇒ one interleaving: both modes must walk exactly one
  // execution over the incremental straight-line path, with nothing pruned.
  const spec::SetSpec spec(4);
  const std::vector<std::vector<spec::SetSpec::Op>> work = {
      {spec::SetSpec::insert(1), spec::SetSpec::lookup(1),
       spec::SetSpec::remove(1)}};
  for (const auto mode : {sim::ExploreMode::kNaive, sim::ExploreMode::kDpor}) {
    const auto outcome =
        explore_mode<spec::SetSpec, Set2System>(spec, work, mode);
    EXPECT_TRUE(outcome.stats.exhausted);
    EXPECT_EQ(outcome.stats.executions_complete, 1u);
    EXPECT_EQ(outcome.stats.executions_pruned, 0u);
    EXPECT_EQ(outcome.lin_failures, 0u);
    EXPECT_EQ(outcome.history_keys.size(), 1u);
  }
}

}  // namespace
}  // namespace hi
