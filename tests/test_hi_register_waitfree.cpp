// Algorithm 4 (wait-free quiescent-HI SWSR register) — experiment E5
// validates Theorem 12: linearizability, wait-freedom with explicit step
// bounds (Read ≤ 6K+2, Write ≤ 2K+5), quiescent HI (canonical A=e_v, B=0,
// flags=0), and the separation from state-quiescent HI (a pending Read leaves
// observable traces — which is allowed, per Corollary 18 it MUST happen).
#include <gtest/gtest.h>

#include "adversary/reader_adversary.h"
#include "core/hi_register_waitfree.h"
#include "register_common.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using core::WaitFreeHiRegister;
using spec::RegisterSpec;
using testing::kReaderPid;
using testing::kWriterPid;
using testing::RegisterSystem;
using Sys = RegisterSystem<WaitFreeHiRegister>;

std::uint64_t read_bound(std::uint32_t k) { return 6ull * k + 2; }
std::uint64_t write_bound(std::uint32_t k) { return 2ull * k + 5; }

TEST(WaitFreeHiRegister, SoloSemantics) {
  Sys sys(6, 4);
  EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid)),
            4u);
  for (std::uint32_t v : {1u, 6u, 2u, 4u}) {
    (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, v));
    EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid)),
              v);
  }
}

TEST(WaitFreeHiRegister, QuiescentCanonicalRepresentation) {
  // At quiescence: A = e_v, B = 0..0, flag = 0,0 — regardless of how v was
  // reached and regardless of interleaved reads.
  const auto canon = testing::build_register_canon<WaitFreeHiRegister>(5);
  for (std::uint32_t v = 1; v <= 5; ++v) {
    const auto& words = canon.at(v).words;
    ASSERT_EQ(words.size(), 2u * 5 + 2);  // A[5], B[5], flag[2]
    for (std::uint32_t j = 1; j <= 5; ++j) {
      EXPECT_EQ(words[j - 1], j == v ? 1u : 0u) << "A, v=" << v;
      EXPECT_EQ(words[5 + j - 1], 0u) << "B, v=" << v;
    }
    EXPECT_EQ(words[10], 0u);
    EXPECT_EQ(words[11], 0u);
  }
}

TEST(WaitFreeHiRegister, NotStateQuiescentHI_PendingReadLeavesTraces) {
  // A Read that has executed only its announcement step leaves flag[1]=1 in
  // a configuration with no pending Write — same abstract state, different
  // memory than the canon. (Corollary 18 says every wait-free
  // implementation from binary registers must fail state-quiescent HI.)
  Sys sys(4);
  const auto canon_before = sys.memory.snapshot();

  sim::OpTask<std::uint32_t> read_task = sys.impl.read(kReaderPid);
  sys.sched.start(kReaderPid, read_task);
  sys.sched.step(kReaderPid);  // flag[1] <- 1

  const auto mem_with_pending_read = sys.memory.snapshot();
  EXPECT_NE(canon_before, mem_with_pending_read)
      << "expected the reader's announcement to be visible";

  verify::HiChecker checker;
  checker.set_canonical(1, canon_before);
  checker.observe(1, mem_with_pending_read, "state-quiescent, read pending");
  EXPECT_FALSE(checker.consistent());
  sys.sched.abandon(kReaderPid);
}

class WaitFreeHiRegisterRandom
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(WaitFreeHiRegisterRandom, Linearizable) {
  const auto [k, seed] = GetParam();
  Sys sys(k);
  sim::Runner<RegisterSpec, WaitFreeHiRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return testing::last_write_or(hist, 1); });
  auto result = runner.run(testing::register_workload(k, 25, 25, seed),
                           {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  ASSERT_EQ(result.history.num_pending(), 0u);
  const auto lin = verify::check_linearizable(sys.spec, result.history);
  EXPECT_TRUE(lin.ok()) << "seed=" << seed << " K=" << k;
}

TEST_P(WaitFreeHiRegisterRandom, QuiescentHI) {
  const auto [k, seed] = GetParam();
  const auto canon = testing::build_register_canon<WaitFreeHiRegister>(k);
  verify::HiChecker checker;
  for (const auto& [state, snap] : canon) {
    ASSERT_TRUE(checker.set_canonical(state, snap));
  }

  Sys sys(k);
  sim::Runner<RegisterSpec, WaitFreeHiRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return testing::last_write_or(hist, 1); });
  auto result = runner.run(testing::register_workload(k, 30, 30, seed),
                           {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  ASSERT_GT(result.quiescent.size(), 0u);
  for (const auto& obs : result.quiescent) {
    checker.observe(obs.state, obs.mem,
                    "seed=" + std::to_string(seed) +
                        " step=" + std::to_string(obs.at_step));
  }
  EXPECT_TRUE(checker.consistent())
      << checker.violation()->message() << "\n(K=" << k << ")";
}

TEST_P(WaitFreeHiRegisterRandom, BothOperationsWaitFree) {
  const auto [k, seed] = GetParam();
  Sys sys(k);
  sim::Runner<RegisterSpec, WaitFreeHiRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return testing::last_write_or(hist, 1); });
  auto result = runner.run(testing::register_workload(k, 40, 40, seed),
                           {.seed = seed, .step_weight = 6});
  ASSERT_FALSE(result.timed_out);
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    if (result.history[i].op.kind == RegisterSpec::Kind::kRead) {
      EXPECT_LE(result.op_steps[i], read_bound(k)) << "read, seed=" << seed;
    } else {
      EXPECT_LE(result.op_steps[i], write_bound(k)) << "write, seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaitFreeHiRegisterRandom,
    ::testing::Combine(::testing::Values(3u, 5u, 8u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

TEST(WaitFreeHiRegister, AdversaryCannotStarveTheReader) {
  // The same adversary that starves Algorithm 2 forever fails here: the
  // helping mechanism (array B) hands the reader a returnable value within
  // its wait-freedom bound. Positive control for E7.
  constexpr std::uint32_t kValues = 4;
  const auto canon = testing::build_register_canon<WaitFreeHiRegister>(kValues);
  Sys sys(kValues);
  const auto plan = adversary::ct_plan(sys.spec);
  const auto result = adversary::run_starvation(
      sys.spec, sys.memory, sys.sched, sys.impl, plan, canon, kWriterPid,
      kReaderPid, /*max_rounds=*/10 * read_bound(kValues));

  EXPECT_TRUE(result.reader_returned);
  EXPECT_LE(result.reader_steps, read_bound(kValues));
  EXPECT_GE(result.reader_response, 1u);
  EXPECT_LE(result.reader_response, kValues);
}

TEST(WaitFreeHiRegister, HelpedReadUsesTheBArray) {
  // Deep-path coverage: under the adversary the reader's two TryReads fail,
  // so it must have taken the lines 5–6 path through B. We detect this via
  // the step count: a read that returns from A alone takes at most
  // 1 + 2(2K-1) + 1 + K + 2 steps; the B path adds the B scan.
  constexpr std::uint32_t kValues = 5;
  const auto canon = testing::build_register_canon<WaitFreeHiRegister>(kValues);
  Sys sys(kValues);
  const auto plan = adversary::ct_plan(sys.spec);
  const auto result = adversary::run_starvation(
      sys.spec, sys.memory, sys.sched, sys.impl, plan, canon, kWriterPid,
      kReaderPid, /*max_rounds=*/10 * read_bound(kValues));
  ASSERT_TRUE(result.reader_returned);
  // Two full failed TryReads = 2 * (2K-1) steps; with announcement that is
  // already 2(2K-1)+1; the B path then adds K (scan) + 1 + K (clear) + 2.
  EXPECT_GE(result.reader_steps, 2u * (2 * kValues - 1) + 1);
}

TEST(WaitFreeHiRegister, MemoryReturnsToCanonAfterHelpedRead) {
  // After the adversary run completes and the system quiesces, the memory
  // must be back at can(v) for the final value v — B fully cleared
  // (Lemma 35 / Lemma 36).
  constexpr std::uint32_t kValues = 4;
  const auto canon = testing::build_register_canon<WaitFreeHiRegister>(kValues);
  Sys sys(kValues);
  const auto plan = adversary::ct_plan(sys.spec);
  const auto result = adversary::run_starvation(
      sys.spec, sys.memory, sys.sched, sys.impl, plan, canon, kWriterPid,
      kReaderPid, /*max_rounds=*/200);
  ASSERT_TRUE(result.reader_returned);
  // One more solo write to a known value, then compare against canon.
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 2));
  EXPECT_EQ(sys.memory.snapshot(), canon.at(2));
}

}  // namespace
}  // namespace hi
