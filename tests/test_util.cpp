// Unit tests for src/util: bit packing, RNG determinism, statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/bits.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hi::util {
namespace {

TEST(Bits, ExtractDepositRoundTrip) {
  std::uint64_t word = 0;
  word = deposit_bits(word, 0, 32, 0xdeadbeef);
  word = deposit_bits(word, 32, 16, 0x1234);
  word = deposit_bits(word, 48, 8, 0xab);
  word = deposit_bits(word, 56, 8, 0xcd);
  EXPECT_EQ(extract_bits(word, 0, 32), 0xdeadbeefu);
  EXPECT_EQ(extract_bits(word, 32, 16), 0x1234u);
  EXPECT_EQ(extract_bits(word, 48, 8), 0xabu);
  EXPECT_EQ(extract_bits(word, 56, 8), 0xcdu);
}

TEST(Bits, DepositOverwritesOnlyItsField) {
  std::uint64_t word = ~std::uint64_t{0};
  word = deposit_bits(word, 8, 8, 0);
  EXPECT_EQ(extract_bits(word, 0, 8), 0xffu);
  EXPECT_EQ(extract_bits(word, 8, 8), 0u);
  EXPECT_EQ(extract_bits(word, 16, 48), (std::uint64_t{1} << 48) - 1);
}

TEST(Bits, DepositTruncatesValueToWidth) {
  const std::uint64_t word = deposit_bits(0, 4, 4, 0xff);
  EXPECT_EQ(extract_bits(word, 4, 4), 0xfu);
  EXPECT_EQ(extract_bits(word, 0, 4), 0u);
  EXPECT_EQ(extract_bits(word, 8, 8), 0u);
}

TEST(Bits, FullWidthField) {
  const std::uint64_t value = 0x0123456789abcdefULL;
  EXPECT_EQ(extract_bits(deposit_bits(0, 0, 64, value), 0, 64), value);
}

TEST(Bits, SetClearTest) {
  std::uint64_t word = 0;
  word = set_bit(word, 0);
  word = set_bit(word, 63);
  EXPECT_TRUE(test_bit(word, 0));
  EXPECT_TRUE(test_bit(word, 63));
  EXPECT_FALSE(test_bit(word, 32));
  word = clear_bit(word, 63);
  EXPECT_FALSE(test_bit(word, 63));
  EXPECT_TRUE(test_bit(word, 0));
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount64(0), 0u);
  EXPECT_EQ(popcount64(~std::uint64_t{0}), 64u);
  EXPECT_EQ(popcount64(0b1011), 3u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextInInclusiveBounds) {
  Xoshiro256 rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, HashCombineSensitiveToOrder) {
  const std::uint64_t ab = hash_combine(hash_combine(0, 1), 2);
  const std::uint64_t ba = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (std::uint64_t v = 1; v <= 100; ++v) s.add(v);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_EQ(s.min(), 1u);
  EXPECT_EQ(s.max(), 100u);
  EXPECT_NEAR(static_cast<double>(s.percentile(0.5)), 50.0, 1.5);
  EXPECT_EQ(s.percentile(1.0), 100u);
  EXPECT_EQ(s.percentile(0.0), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Stats, MergeCombinesSamples) {
  Samples a, b;
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 3u);
}

TEST(Stats, RunningStats) {
  RunningStats r;
  for (std::uint64_t v : {5u, 1u, 9u}) r.add(v);
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.min, 1u);
  EXPECT_EQ(r.max, 9u);
  EXPECT_DOUBLE_EQ(r.mean(), 5.0);
}

}  // namespace
}  // namespace hi::util
