// The impossibility side of the paper, reproduced constructively:
//   E7  (Theorem 17)  — the Lemma 16 pigeonhole adversary starves the reader
//                       of candidate register implementations forever
//                       (partly in test_hi_register_lockfree.cpp);
//   E8  (Theorem 20)  — the representative-state variant starves Peek on the
//                       strawman queue (S(i1,i2) walks, Lemma 38);
//   E9  (Prop 6 / 14) — the distance/pigeonhole facts behind perfect-HI
//                       impossibility, checked on the actual canonical maps;
//   E6  (Prop 19)     — the reader of a wait-free quiescent-HI register must
//                       write to shared memory.
#include <gtest/gtest.h>

#include "adversary/queue_adversary.h"
#include "adversary/reader_adversary.h"
#include "baseline/strawman_queue.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "core/vidyasankar.h"
#include "register_common.h"
#include "spec/queue_spec.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using baseline::StrawmanQueue;
using spec::QueueSpec;
using testing::kReaderPid;
using testing::kWriterPid;

// ---------------------------------------------------------------- E8: queue

struct QueueSys {
  QueueSpec spec;
  sim::Memory memory;
  sim::Scheduler sched;
  StrawmanQueue impl;

  explicit QueueSys(std::uint32_t domain, std::size_t capacity = 4)
      : spec(domain, capacity),
        sched(2),
        impl(memory, spec, kWriterPid, kReaderPid) {}
};

adversary::CanonicalMap queue_canon(std::uint32_t domain,
                                    std::size_t capacity = 4) {
  adversary::CanonicalMap canon;
  const QueueSpec spec(domain, capacity);
  for (std::uint32_t i = 0; i <= domain; ++i) {
    QueueSys sys(domain, capacity);
    if (i != 0) {
      for (const auto& op : spec.change_seq(0, i)) {
        (void)sim::run_solo(sys.sched, kWriterPid,
                            sys.impl.apply(kWriterPid, op));
      }
    }
    canon.emplace(spec.encode_state(spec.representative(i)),
                  sys.memory.snapshot());
  }
  return canon;
}

TEST(QueueImpossibility, StrawmanQueueSequentialSemantics) {
  QueueSys sys(5);
  EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.peek(kReaderPid)),
            0u);
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.enqueue(kWriterPid, 3));
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.enqueue(kWriterPid, 5));
  EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.peek(kReaderPid)),
            3u);
  EXPECT_EQ(
      sim::run_solo(sys.sched, kWriterPid, sys.impl.dequeue(kWriterPid)), 3u);
  EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.peek(kReaderPid)),
            5u);
  EXPECT_EQ(
      sim::run_solo(sys.sched, kWriterPid, sys.impl.dequeue(kWriterPid)), 5u);
  EXPECT_EQ(
      sim::run_solo(sys.sched, kWriterPid, sys.impl.dequeue(kWriterPid)), 0u);
}

TEST(QueueImpossibility, StrawmanQueueIsStateQuiescentHI) {
  // The strawman really does satisfy the HI half of the tension: identical
  // canonical memory whenever the abstract state matches, at state-quiescent
  // points across executions.
  verify::HiChecker checker;
  const QueueSpec spec(4, 4);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    QueueSys sys(4, 4);
    util::Xoshiro256 rng(seed);
    std::vector<std::uint8_t> mirror;
    for (int i = 0; i < 15; ++i) {
      QueueSpec::Op op = QueueSpec::dequeue();
      if (mirror.size() < 4 && rng.chance(2, 3)) {
        op = QueueSpec::enqueue(static_cast<std::uint8_t>(rng.next_in(1, 4)));
      }
      (void)sim::run_solo(sys.sched, kWriterPid,
                          sys.impl.apply(kWriterPid, op));
      auto [next, resp] = spec.apply(mirror, op);
      mirror = next;
      checker.observe(spec.encode_state(mirror), sys.memory.snapshot(),
                      "seed=" + std::to_string(seed));
    }
  }
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
}

TEST(QueueImpossibility, AdversaryStarvesPeekForever) {
  // Theorem 20 realized: the S(i1,i2) representative walk keeps Peek from
  // returning for as many rounds as we run, with steps growing linearly.
  constexpr std::uint32_t kDomain = 4;
  constexpr std::uint64_t kRounds = 2000;
  const auto canon = queue_canon(kDomain);

  QueueSys sys(kDomain);
  const auto plan = adversary::queue_plan(sys.spec);
  const auto result = adversary::run_starvation(
      sys.spec, sys.memory, sys.sched, sys.impl, plan, canon, kWriterPid,
      kReaderPid, kRounds);

  EXPECT_FALSE(result.reader_returned);
  EXPECT_EQ(result.rounds_executed, kRounds);
  EXPECT_EQ(result.reader_steps, kRounds);
}

TEST(QueueImpossibility, PeekCompletesSolo) {
  // Lock-freedom's flip side, as for Algorithm 2's reader.
  constexpr std::uint32_t kDomain = 4;
  const auto canon = queue_canon(kDomain);
  QueueSys sys(kDomain);
  const auto plan = adversary::queue_plan(sys.spec);
  (void)adversary::run_starvation(sys.spec, sys.memory, sys.sched, sys.impl,
                                  plan, canon, kWriterPid, kReaderPid, 50);
  const auto value =
      sim::run_solo(sys.sched, kReaderPid, sys.impl.peek(kReaderPid));
  EXPECT_LE(value, kDomain);
}

TEST(QueueImpossibility, ChangerOpsAreWaitFree) {
  // Enqueue/Dequeue rewrite a bounded number of cells regardless of what the
  // reader does: slots (capacity × bits) + 2 front bits.
  QueueSys sys(5, 4);
  const std::uint64_t bound = 4 * 3 + 2;
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t before = sys.sched.steps_of(kWriterPid);
    QueueSpec::Op op = rng.chance(1, 2)
                           ? QueueSpec::enqueue(static_cast<std::uint8_t>(
                                 rng.next_in(1, 5)))
                           : QueueSpec::dequeue();
    (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.apply(kWriterPid, op));
    EXPECT_LE(sys.sched.steps_of(kWriterPid) - before, bound);
  }
}

// ------------------------------------------------------- E9: Prop 6 and 14

TEST(PerfectHiImpossibility, CanonicalDistancesExceedOne) {
  // Proposition 6: perfect HI forces adjacent states to canonical
  // representations at distance ≤ 1. For a K-valued register over binary
  // registers (one-hot canon), every pair of distinct states is adjacent
  // (one Write apart) yet at distance exactly 2 — so no obstruction-free
  // perfect-HI implementation with this (or, by Prop 14, any) small-base
  // canonical map exists.
  const auto canon =
      testing::build_register_canon<core::LockFreeHiRegister>(6);
  for (std::uint32_t a = 1; a <= 6; ++a) {
    for (std::uint32_t b = a + 1; b <= 6; ++b) {
      EXPECT_EQ(canon.at(a).distance(canon.at(b)), 2u);
    }
  }
}

TEST(PerfectHiImpossibility, PigeonholePairsExistEverywhere) {
  // The engine of Lemma 16: for every base object ℓ of the K-valued register
  // implementations (binary cells), there are two distinct states whose
  // canonical memories agree at ℓ — because 2 < K.
  const std::uint32_t k = 5;
  const auto canon = testing::build_register_canon<core::LockFreeHiRegister>(k);
  const std::size_t words = canon.at(1).words.size();
  for (std::size_t cell = 0; cell < words; ++cell) {
    bool found_pair = false;
    for (std::uint32_t a = 1; a <= k && !found_pair; ++a) {
      for (std::uint32_t b = a + 1; b <= k && !found_pair; ++b) {
        found_pair = canon.at(a).words[cell] == canon.at(b).words[cell];
      }
    }
    EXPECT_TRUE(found_pair) << "cell " << cell;
  }
}

TEST(PerfectHiImpossibility, DistinctStatesHaveDistinctCanon) {
  // Sanity premise of Proposition 14: distinct states must have distinct
  // canonical representations (o_read run solo must distinguish them).
  for (std::uint32_t k : {3u, 5u, 8u}) {
    const auto canon =
        testing::build_register_canon<core::WaitFreeHiRegister>(k);
    for (std::uint32_t a = 1; a <= k; ++a) {
      for (std::uint32_t b = a + 1; b <= k; ++b) {
        EXPECT_NE(canon.at(a), canon.at(b));
      }
    }
  }
}

// ----------------------------------------------------------- E6: Prop 19

TEST(ReaderMustWrite, Algorithm4ReaderWritesToSharedMemory) {
  // Proposition 19: in any wait-free quiescent-HI SWSR register from binary
  // registers, the reader must write. Algorithm 4's reader indeed does —
  // even a solo Read performs flag and B writes.
  testing::RegisterSystem<core::WaitFreeHiRegister> sys(4);
  const std::uint64_t steps_before = sys.sched.steps_of(kReaderPid);
  (void)sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid));
  const std::uint64_t read_steps = sys.sched.steps_of(kReaderPid) - steps_before;
  // A solo read: flag[1] write + TryRead (≥1 reads) + flag[2] write +
  // K writes clearing B + 2 flag writes — at least K+4 writes among them.
  EXPECT_GE(read_steps, 4u + 4u);
}

TEST(ReaderMustWrite, SilentReadersComeAtAPrice) {
  // The empirical complement across this repo's implementations:
  //  * Vidyasankar's reader is silent — wait-free but not even sequentially
  //    HI (E3);
  //  * Algorithm 2's reader is silent — quiescent HI but only lock-free
  //    (starvable, E7);
  //  * Algorithm 4 is wait-free and quiescent HI — and its reader writes.
  // Proposition 19 says this pattern is forced; here we pin the three facts.
  {
    testing::RegisterSystem<core::VidyasankarRegister> sys(3);
    sim::MemorySnapshot before = sys.memory.snapshot();
    (void)sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid));
    EXPECT_EQ(sys.memory.snapshot(), before) << "Vidyasankar reader is silent";
  }
  {
    testing::RegisterSystem<core::LockFreeHiRegister> sys(3);
    sim::MemorySnapshot before = sys.memory.snapshot();
    (void)sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid));
    EXPECT_EQ(sys.memory.snapshot(), before) << "Algorithm 2 reader is silent";
  }
  {
    testing::RegisterSystem<core::WaitFreeHiRegister> sys(3);
    sim::OpTask<std::uint32_t> read = sys.impl.read(kReaderPid);
    sys.sched.start(kReaderPid, read);
    sys.sched.step(kReaderPid);  // first step is a WRITE (flag[1] <- 1)
    EXPECT_STREQ(sys.sched.pending_kind(kReaderPid), "read");
    EXPECT_EQ(sys.memory.snapshot().words[2 * 3], 1u)
        << "flag[1] set: Algorithm 4's reader writes";
    sys.sched.abandon(kReaderPid);
  }
}

}  // namespace
}  // namespace hi
