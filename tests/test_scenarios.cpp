// Scripted scenarios from the paper's proofs (§4, Appendix B): precise
// interleavings that exercise Algorithm 4's helping choreography — the
// Lemma 35 case analysis of who clears the helped value in B, the Lemma 10
// two-failed-TryReads path, and the global B-array invariants that make the
// quiescent-HI argument work.
#include <gtest/gtest.h>

#include <functional>
#include <optional>

#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "register_common.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using core::WaitFreeHiRegister;
using spec::RegisterSpec;
using testing::kReaderPid;
using testing::kWriterPid;
using Sys = testing::RegisterSystem<WaitFreeHiRegister>;

/// Step `pid` until `pred()` holds or the op finishes; returns false if the
/// step cap was hit first.
bool step_until(sim::Scheduler& sched, int pid,
                const std::function<bool()>& pred, int cap = 10000) {
  for (int i = 0; i < cap; ++i) {
    if (pred()) return true;
    if (!sched.runnable(pid)) return pred();
    sched.step(pid);
  }
  return false;
}

/// B[j] words live right after the K A-words in Algorithm 4's layout.
std::uint64_t b_word(const Sys& sys, std::uint32_t k, std::uint32_t j) {
  return sys.memory.snapshot().words[k + (j - 1)];
}
std::uint64_t b_ones(const Sys& sys, std::uint32_t k) {
  std::uint64_t count = 0;
  const auto snap = sys.memory.snapshot();
  for (std::uint32_t j = 1; j <= k; ++j) count += snap.words[k + j - 1];
  return count;
}

TEST(Alg4Scenario, WriterHelpsByPublishingLastValInB) {
  // Lines 11–13: a writer that sees flag[1]=1 with B all-zero publishes its
  // previous value (last-val) in B before touching A.
  constexpr std::uint32_t kValues = 3;
  Sys sys(kValues);  // initial value 1

  // Reader announces itself (its first step writes flag[1]).
  sim::OpTask<std::uint32_t> read = sys.impl.read(kReaderPid);
  sys.sched.start(kReaderPid, read);
  sys.sched.step(kReaderPid);

  // Writer executes Write(2) up to (and including) its write to B[1].
  sim::OpTask<std::uint32_t> write = sys.impl.write(kWriterPid, 2);
  sys.sched.start(kWriterPid, write);
  ASSERT_TRUE(step_until(sys.sched, kWriterPid,
                         [&] { return b_word(sys, kValues, 1) == 1; }))
      << "writer never published last-val=1 in B[1]";

  // The helped value is the writer's previous value, not the one being
  // written.
  EXPECT_EQ(b_word(sys, kValues, 1), 1u);
  EXPECT_EQ(b_word(sys, kValues, 2), 0u);

  // Drain everything; at quiescence B must be all-zero again (Lemma 36).
  while (sys.sched.runnable(kWriterPid)) sys.sched.step(kWriterPid);
  sys.sched.finish(kWriterPid);
  while (sys.sched.runnable(kReaderPid)) sys.sched.step(kReaderPid);
  sys.sched.finish(kReaderPid);
  EXPECT_EQ(b_ones(sys, kValues), 0u);
  const std::uint32_t got = read.take_result();
  EXPECT_TRUE(got == 1 || got == 2) << got;
}

TEST(Alg4Scenario, WriterClearsItsOwnHelpWhenReaderIsGone) {
  // Lines 14–15 (Lemma 35's first case): the writer wrote 1 to B[last-val],
  // but the reader finished in the meantime (flag[1] back to 0) — the writer
  // must clear its own help so no trace survives.
  constexpr std::uint32_t kValues = 3;
  Sys sys(kValues);

  sim::OpTask<std::uint32_t> read = sys.impl.read(kReaderPid);
  sys.sched.start(kReaderPid, read);
  sys.sched.step(kReaderPid);  // flag[1] <- 1

  sim::OpTask<std::uint32_t> write = sys.impl.write(kWriterPid, 3);
  sys.sched.start(kWriterPid, write);
  ASSERT_TRUE(step_until(sys.sched, kWriterPid,
                         [&] { return b_word(sys, kValues, 1) == 1; }));

  // Let the reader run to completion: its TryRead succeeds on A (value 1
  // still there), and it clears B and the flags on its way out.
  while (sys.sched.runnable(kReaderPid)) sys.sched.step(kReaderPid);
  sys.sched.finish(kReaderPid);
  EXPECT_EQ(read.take_result(), 1u);
  EXPECT_EQ(b_ones(sys, kValues), 0u) << "reader's line-8 sweep clears B";

  // The writer proceeds: it reads flag[2]=0, flag[1]=0 -> line 15 executes
  // (writing 0 over the already-cleared cell — idempotent), then writes A.
  while (sys.sched.runnable(kWriterPid)) sys.sched.step(kWriterPid);
  sys.sched.finish(kWriterPid);
  EXPECT_EQ(b_ones(sys, kValues), 0u);
  // Canonical at quiescence.
  const auto canon = testing::build_register_canon<WaitFreeHiRegister>(kValues);
  EXPECT_EQ(sys.memory.snapshot(), canon.at(3));
}

TEST(Alg4Scenario, TwoFailedTryReadsFallBackToB_Lemma10) {
  // The Figure 4 schedule: between the reader's two TryReads, two writes
  // complete; the second sees flag[1]=1 and helps via B, so the reader
  // (whose scans keep missing the moving 1) finds a value in B.
  constexpr std::uint32_t kValues = 3;
  Sys sys(kValues);  // value 1, A=[1,0,0]

  sim::OpTask<std::uint32_t> read = sys.impl.read(kReaderPid);
  sys.sched.start(kReaderPid, read);
  sys.sched.step(kReaderPid);  // flag[1] <- 1; TryRead #1 pending at A[1]

  // Write(3) completes fully: A=[0,0,1], and it publishes B[1]=1 (helped
  // value = previous value 1) because the reader is announced.
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 3));
  ASSERT_EQ(b_word(sys, kValues, 1), 1u);

  // Reader's TryRead #1: reads A[1]=0, A[2]=0 — stop before A[3].
  sys.sched.step(kReaderPid);  // A[1] -> 0
  sys.sched.step(kReaderPid);  // A[2] -> 0

  // Write(2) completes: A=[0,1,0]. (B already non-zero: no new help.)
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 2));

  // Reader continues: A[3] is now 0 -> TryRead #1 returns ⊥. TryRead #2:
  // A[1]=0, A[2]... make it miss again by moving the value to 1 after it
  // passes A[2]... simpler: let Write(1) land first so A=[1,0,0], and step
  // the reader past A[1] BEFORE that write completes. Drive reader until it
  // is about to read A[1] for TryRead #2:
  sys.sched.step(kReaderPid);  // A[3] -> 0, TryRead #1 = ⊥; #2 pending A[1]
  sys.sched.step(kReaderPid);  // TryRead #2 reads A[1] = 0
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 1));
  // Now A=[1,0,0] but the reader already passed A[1]; A[2], A[3] read 0.
  sys.sched.step(kReaderPid);  // A[2] -> 0
  sys.sched.step(kReaderPid);  // A[3] -> 0 — TryRead #2 = ⊥

  // The reader must now take the B path (lines 5–6) and find B[1]=1.
  while (sys.sched.runnable(kReaderPid)) sys.sched.step(kReaderPid);
  sys.sched.finish(kReaderPid);
  EXPECT_EQ(read.take_result(), 1u) << "helped value from B";

  // Linearizable: 1 was the register's value when the Read began, and the
  // Read overlaps all three writes. Verify with the checker for rigor.
  verify::History<RegisterSpec::Op, RegisterSpec::Resp> history;
  const auto r = history.invoke(kReaderPid, RegisterSpec::read());
  const auto w3 = history.invoke(kWriterPid, RegisterSpec::write(3));
  history.respond(w3, 0);
  const auto w2 = history.invoke(kWriterPid, RegisterSpec::write(2));
  history.respond(w2, 0);
  const auto w1 = history.invoke(kWriterPid, RegisterSpec::write(1));
  history.respond(w1, 0);
  history.respond(r, 1);
  EXPECT_TRUE(verify::check_linearizable(sys.spec, history).ok());
}

TEST(Alg4Scenario, BInvariantsUnderRandomWalks) {
  // Lemma 35 consequences, checked at every configuration of random runs:
  // at most one B cell is ever 1, and B is all-zero whenever no operation
  // is pending.
  constexpr std::uint32_t kValues = 4;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Sys sys(kValues);
    util::Xoshiro256 rng(seed);
    std::optional<sim::OpTask<std::uint32_t>> writer_op, reader_op;
    int writes_left = 25, reads_left = 25;
    for (;;) {
      // Random event among {start writer, start reader, step either}.
      std::vector<int> choices;
      if (writer_op.has_value()) {
        choices.push_back(0);
      } else if (writes_left > 0) {
        choices.push_back(1);
      }
      if (reader_op.has_value()) {
        choices.push_back(2);
      } else if (reads_left > 0) {
        choices.push_back(3);
      }
      if (choices.empty()) break;
      switch (choices[rng.next_below(choices.size())]) {
        case 0:
          sys.sched.step(kWriterPid);
          if (sys.sched.op_finished(kWriterPid)) {
            sys.sched.finish(kWriterPid);
            writer_op.reset();
          }
          break;
        case 1:
          --writes_left;
          writer_op.emplace(sys.impl.write(
              kWriterPid, static_cast<std::uint32_t>(rng.next_in(1, kValues))));
          sys.sched.start(kWriterPid, *writer_op);
          break;
        case 2:
          sys.sched.step(kReaderPid);
          if (sys.sched.op_finished(kReaderPid)) {
            sys.sched.finish(kReaderPid);
            reader_op.reset();
          }
          break;
        default:
          --reads_left;
          reader_op.emplace(sys.impl.read(kReaderPid));
          sys.sched.start(kReaderPid, *reader_op);
          break;
      }
      const std::uint64_t ones = b_ones(sys, kValues);
      ASSERT_LE(ones, 1u) << "two helped values in B simultaneously";
      if (!writer_op.has_value() && !reader_op.has_value()) {
        ASSERT_EQ(ones, 0u) << "B not cleared at quiescence (Lemma 36)";
      }
    }
  }
}

TEST(Alg2Scenario, ReadSpanningManyWritesReturnsAWrittenValue) {
  // A read that overlaps a burst of writes must return one of the values in
  // flight (never an out-of-thin-air or long-stale value).
  constexpr std::uint32_t kValues = 5;
  testing::RegisterSystem<core::LockFreeHiRegister> sys(kValues);  // value 1

  sim::OpTask<std::uint32_t> read = sys.impl.read(kReaderPid);
  sys.sched.start(kReaderPid, read);
  sys.sched.step(kReaderPid);  // first low-level read of A[1] (value 1 seen?)

  for (std::uint32_t v : {4u, 2u, 5u}) {
    (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, v));
    if (sys.sched.runnable(kReaderPid)) sys.sched.step(kReaderPid);
  }
  while (sys.sched.runnable(kReaderPid)) sys.sched.step(kReaderPid);
  sys.sched.finish(kReaderPid);
  const std::uint32_t got = read.take_result();
  EXPECT_TRUE(got == 1 || got == 4 || got == 2 || got == 5) << got;
}

}  // namespace
}  // namespace hi
