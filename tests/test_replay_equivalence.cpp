// Schedule-replay equivalence (the concurrency analogue of the sequential
// parity suite): recorded sim interleavings — random Runner schedules and
// exhaustive-explorer Decision paths — re-execute over the ReplayEnv
// backend (the SAME std::atomic cells and codecs as RtEnv, driven
// step-by-step by a sim::Scheduler), and the differential driver
// (verify/replay.h) checks after EVERY step that both backends are about to
// execute the same primitive on the same base object, complete operations
// at the same step with equal responses, and hold equal memory:
// word-for-word mem(C) for the binary-register objects and the standalone
// R-LLSC (whose per-backend encodings coincide), semantic (codec-decoded)
// for the universal constructions whose head packing differs per backend.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algo/universal.h"
#include "baseline/leaky_universal.h"
#include "baseline/strawman_queue.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "core/hi_set.h"
#include "core/max_register.h"
#include "core/rllsc.h"
#include "core/universal.h"
#include "core/vidyasankar.h"
#include "register_common.h"
#include "replay/replay_objects.h"
#include "replay_common.h"
#include "sim/explorer.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "spec/counter_spec.h"
#include "spec/max_register_spec.h"
#include "spec/register_spec.h"
#include "spec/rllsc_spec.h"
#include "spec/set_spec.h"
#include "util/rng.h"
#include "verify/replay.h"

namespace hi {
namespace {

using testing::kReaderPid;
using testing::kWriterPid;

/// Record the schedule of a random-policy Runner run over `impl`.
template <spec::SequentialSpec S, typename Impl>
sim::ScheduleTrace record_runner_trace(
    const S& spec, sim::Memory& memory, sim::Scheduler& sched, Impl& impl,
    const std::vector<std::vector<typename S::Op>>& workload,
    std::uint64_t seed) {
  sim::ScheduleTrace trace;
  sim::Runner<S, Impl> runner(spec, memory, sched, impl,
                              [](const auto&) { return 0; });
  typename sim::Runner<S, Impl>::Options opt;
  opt.seed = seed;
  opt.trace = &trace;
  const auto result = runner.run(workload, opt);
  EXPECT_FALSE(result.timed_out) << "recording run hit the step cap";
  return trace;
}

// ---- §4 registers: word-for-word per-step mem(C) equality ----

template <typename SimImpl, typename ReplayImpl>
void register_replay_roundtrip(std::uint32_t k, std::size_t num_writes,
                               std::size_t num_reads, std::uint64_t seed) {
  const spec::RegisterSpec spec(k, 1);
  const auto workload =
      testing::register_workload(k, num_writes, num_reads, seed);

  sim::ScheduleTrace trace;
  {
    testing::RegisterSystem<SimImpl> recorder(k);
    trace = record_runner_trace(spec, recorder.memory, recorder.sched,
                                recorder.impl, workload, seed);
  }
  ASSERT_FALSE(trace.empty());

  testing::RegisterSystem<SimImpl> sim_sys(k);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  ReplayImpl replay_impl(replay_memory, spec, kWriterPid, kReaderPid);

  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sys.sched, sim_sys.impl, replay_sched, replay_impl, workload,
      trace, verify::snapshot_word_compare(sim_sys.memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message << "\ntrace:\n" << trace.pretty();
  EXPECT_GT(report.steps_executed, 0u);
  EXPECT_EQ(report.responses_compared, num_writes + num_reads);
}

TEST(ReplayEquivalence, VidyasankarRecordedSchedules) {
  register_replay_roundtrip<core::VidyasankarRegister,
                            replay::VidyasankarRegister>(5, 8, 6, 101);
  register_replay_roundtrip<core::VidyasankarRegister,
                            replay::VidyasankarRegister>(3, 6, 8, 102);
}

TEST(ReplayEquivalence, LockFreeHiRegisterRecordedSchedules) {
  register_replay_roundtrip<core::LockFreeHiRegister,
                            replay::LockFreeHiRegister>(5, 8, 6, 201);
  register_replay_roundtrip<core::LockFreeHiRegister,
                            replay::LockFreeHiRegister>(4, 10, 4, 202);
}

TEST(ReplayEquivalence, WaitFreeHiRegisterRecordedSchedules) {
  register_replay_roundtrip<core::WaitFreeHiRegister,
                            replay::WaitFreeHiRegister>(5, 8, 6, 301);
  register_replay_roundtrip<core::WaitFreeHiRegister,
                            replay::WaitFreeHiRegister>(4, 6, 6, 302);
}

// Packed-layout twins: K=70 spans two packed words, so the recorded
// schedules cover fetch_or/fetch_and RMWs and word-boundary scans executing
// over the actual hardware atomics. Packed cells encode one snapshot word
// each on both backends, so the comparison stays word-for-word.

TEST(ReplayEquivalence, PackedVidyasankarRecordedSchedules) {
  register_replay_roundtrip<core::PackedVidyasankarRegister,
                            replay::PackedVidyasankarRegister>(70, 8, 6, 111);
}

TEST(ReplayEquivalence, PackedLockFreeHiRegisterRecordedSchedules) {
  register_replay_roundtrip<core::PackedLockFreeHiRegister,
                            replay::PackedLockFreeHiRegister>(70, 8, 6, 211);
  register_replay_roundtrip<core::PackedLockFreeHiRegister,
                            replay::PackedLockFreeHiRegister>(65, 10, 4, 212);
}

TEST(ReplayEquivalence, PackedWaitFreeHiRegisterRecordedSchedules) {
  register_replay_roundtrip<core::PackedWaitFreeHiRegister,
                            replay::PackedWaitFreeHiRegister>(70, 8, 6, 311);
}

// ---- §5.1 max register and perfect-HI set ----

TEST(ReplayEquivalence, MaxRegisterRecordedSchedules) {
  const std::uint32_t k = 8;
  const spec::MaxRegisterSpec spec(k, 1);
  const auto workload = testing::max_register_workload(k, 10, 41);

  sim::ScheduleTrace trace;
  {
    sim::Memory memory;
    sim::Scheduler sched(2);
    core::HiMaxRegister impl(memory, spec, kWriterPid, kReaderPid);
    trace = record_runner_trace(spec, memory, sched, impl, workload, 42);
  }

  sim::Memory sim_memory;
  sim::Scheduler sim_sched(2);
  core::HiMaxRegister sim_impl(sim_memory, spec, kWriterPid, kReaderPid);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::HiMaxRegister replay_impl(replay_memory, spec, kWriterPid,
                                    kReaderPid);

  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sched, sim_impl, replay_sched, replay_impl, workload, trace,
      verify::snapshot_word_compare(sim_memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message << "\ntrace:\n" << trace.pretty();
  EXPECT_EQ(report.responses_compared, 20u);
}

TEST(ReplayEquivalence, HiSetRecordedSchedules) {
  const std::uint32_t domain = 10;
  const spec::SetSpec spec(domain);
  const auto workload = testing::set_workload(domain, 10, 51);

  sim::ScheduleTrace trace;
  {
    sim::Memory memory;
    sim::Scheduler sched(2);
    core::HiSet impl(memory, spec);
    trace = record_runner_trace(spec, memory, sched, impl, workload, 52);
  }

  sim::Memory sim_memory;
  sim::Scheduler sim_sched(2);
  core::HiSet sim_impl(sim_memory, spec);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::HiSet replay_impl(replay_memory, spec);

  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sched, sim_impl, replay_sched, replay_impl, workload, trace,
      verify::snapshot_word_compare(sim_memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message << "\ntrace:\n" << trace.pretty();
  EXPECT_EQ(report.responses_compared, 20u);
}

// ---- Algorithm 6 (R-LLSC): the acceptance case — a 16-byte hardware CAS
// word marching in word-for-word lockstep with the simulated wide cell,
// including the failure-word CAS retry interleavings. ----

using testing::ReplayRllscHarness;
using testing::SimRllscHarness;

TEST(ReplayEquivalence, RllscRecordedSchedules) {
  const int n = 3;
  const spec::RllscSpec spec(100, n, 7);
  for (const std::uint64_t seed : {61u, 62u, 63u}) {
    const auto workload = testing::rllsc_workload(n, 8, seed);

    sim::ScheduleTrace trace;
    {
      sim::Memory memory;
      sim::Scheduler sched(n);
      SimRllscHarness impl(memory, 7);
      trace = record_runner_trace(spec, memory, sched, impl, workload, seed);
    }

    sim::Memory sim_memory;
    sim::Scheduler sim_sched(n);
    SimRllscHarness sim_impl(sim_memory, 7);
    sim::Memory replay_memory;
    sim::Scheduler replay_sched(n);
    ReplayRllscHarness replay_impl(replay_memory, 7);

    const verify::ReplayReport report = verify::replay_differential(
        spec, sim_sched, sim_impl, replay_sched, replay_impl, workload, trace,
        verify::snapshot_word_compare(sim_memory, replay_memory));
    EXPECT_TRUE(report.ok)
        << report.message << "\ntrace:\n" << trace.pretty();
    EXPECT_EQ(report.responses_compared, static_cast<std::uint64_t>(n) * 8);
  }
}

// ---- Universal constructions: every backend packs head and announce cells
// through Word64HeadCodec (the sim adapter keeps the codec word in lo with
// hi ≡ 0), so the per-step comparison is word-exact —
// verify::snapshot_word_compare, like the register rows. ----

TEST(ReplayEquivalence, UniversalRecordedSchedules) {
  const spec::CounterSpec spec(1u << 20, 10);
  const int n = 3;
  for (const std::uint64_t seed : {71u, 72u}) {
    const auto workload = testing::counter_workload(n, 4, seed);

    sim::ScheduleTrace trace;
    {
      sim::Memory memory;
      sim::Scheduler sched(n);
      core::Universal<spec::CounterSpec, core::CasRllsc> impl(memory, spec, n);
      trace = record_runner_trace(spec, memory, sched, impl, workload, seed);
    }

    sim::Memory sim_memory;
    sim::Scheduler sim_sched(n);
    core::Universal<spec::CounterSpec, core::CasRllsc> sim_impl(sim_memory,
                                                                spec, n);
    sim::Memory replay_memory;
    sim::Scheduler replay_sched(n);
    replay::Universal<spec::CounterSpec> replay_impl(replay_memory, spec, n);

    const verify::ReplayReport report = verify::replay_differential(
        spec, sim_sched, sim_impl, replay_sched, replay_impl, workload, trace,
        verify::snapshot_word_compare(sim_memory, replay_memory));
    EXPECT_TRUE(report.ok)
        << report.message << "\ntrace:\n" << trace.pretty();
    EXPECT_EQ(report.responses_compared, static_cast<std::uint64_t>(n) * 4);
  }
}

TEST(ReplayEquivalence, LeakyUniversalRecordedSchedules) {
  const spec::CounterSpec spec(1u << 20, 10);
  const int n = 3;
  const auto workload = testing::counter_workload(n, 5, 81);

  sim::ScheduleTrace trace;
  {
    sim::Memory memory;
    sim::Scheduler sched(n);
    baseline::LeakyUniversal<spec::CounterSpec> impl(memory, spec, n);
    trace = record_runner_trace(spec, memory, sched, impl, workload, 82);
  }

  sim::Memory sim_memory;
  sim::Scheduler sim_sched(n);
  baseline::LeakyUniversal<spec::CounterSpec> sim_impl(sim_memory, spec, n);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(n);
  replay::LeakyUniversal<spec::CounterSpec> replay_impl(replay_memory, spec, n);

  // Semantic comparison over the decoded leak fields: the LEAK itself must
  // reproduce identically on the hardware cells, per step.
  const auto compare = [&]() -> std::optional<std::string> {
    if (sim_impl.head_state_encoded() != replay_impl.head_state_encoded()) {
      return std::string("head state diverges");
    }
    if (sim_impl.version() != replay_impl.version()) {
      return std::string("version (the leak) diverges");
    }
    for (int i = 0; i < n; ++i) {
      if (sim_impl.peek_announce(i) != replay_impl.peek_announce(i)) {
        return "announce[" + std::to_string(i) + "] diverges";
      }
      if (sim_impl.peek_result(i) != replay_impl.peek_result(i)) {
        return "result[" + std::to_string(i) + "] diverges";
      }
    }
    return std::nullopt;
  };
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sched, sim_impl, replay_sched, replay_impl, workload, trace,
      compare);
  EXPECT_TRUE(report.ok) << report.message << "\ntrace:\n" << trace.pretty();
  EXPECT_GT(sim_impl.version(), 0u);
}

// ---- Explorer Decision paths: EVERY interleaving of a small workload,
// replayed over hardware atomics (the acceptance case for Alg 2/3). ----

template <typename Impl>
struct ExplorerRegSystem {
  spec::RegisterSpec spec;
  sim::Memory mem;
  sim::Scheduler sched;
  Impl impl;

  explicit ExplorerRegSystem(std::uint32_t k)
      : spec(k, 1), sched(2), impl(mem, spec, kWriterPid, kReaderPid) {}
  sim::Scheduler& scheduler() { return sched; }
  sim::Memory& memory() { return mem; }
  sim::OpTask<std::uint32_t> apply(int pid, spec::RegisterSpec::Op op) {
    return impl.apply(pid, op);
  }
};

/// Explore EVERY schedule of Write(v) ‖ Read over K=k, then replay each
/// Decision path over the ReplayEnv instantiation with per-step word
/// comparison.
template <typename SimImpl, typename ReplayImpl>
void explorer_paths_roundtrip(std::uint32_t k, std::uint32_t write_value,
                              std::size_t min_paths) {
  const spec::RegisterSpec spec(k, 1);
  const std::vector<std::vector<spec::RegisterSpec::Op>> workload = {
      {spec::RegisterSpec::write(write_value)}, {spec::RegisterSpec::read()}};

  sim::Explorer<spec::RegisterSpec, ExplorerRegSystem<SimImpl>> explorer(
      spec, [k] { return std::make_unique<ExplorerRegSystem<SimImpl>>(k); },
      workload);

  std::vector<std::vector<sim::Decision>> prefixes;
  const auto stats = explorer.explore(
      {.max_depth = 40, .max_executions = 200'000}, nullptr,
      [&](ExplorerRegSystem<SimImpl>&, const auto&) {
        prefixes.push_back(explorer.current_prefix());
      });
  ASSERT_TRUE(stats.exhausted);
  ASSERT_GE(prefixes.size(), min_paths);

  for (const auto& prefix : prefixes) {
    const sim::ScheduleTrace trace = explorer.trace_of(prefix);
    testing::RegisterSystem<SimImpl> sim_sys(k);
    sim::Memory replay_memory;
    sim::Scheduler replay_sched(2);
    ReplayImpl replay_impl(replay_memory, spec, kWriterPid, kReaderPid);
    const verify::ReplayReport report = verify::replay_differential(
        spec, sim_sys.sched, sim_sys.impl, replay_sched, replay_impl, workload,
        trace, verify::snapshot_word_compare(sim_sys.memory, replay_memory));
    ASSERT_TRUE(report.ok)
        << report.message << "\ntrace:\n" << trace.pretty();
  }
}

TEST(ReplayEquivalence, ExplorerPathsLockFreeHiRegisterAllSchedules) {
  explorer_paths_roundtrip<core::LockFreeHiRegister,
                           replay::LockFreeHiRegister>(3, 2, 20);
}

TEST(ReplayEquivalence, ExplorerPathsPackedLockFreeHiRegisterAllSchedules) {
  // The packed Write(2) ‖ Read equivalence: every word-granularity
  // interleaving (fetch_or/fetch_and vs word-load snapshots) model-checked
  // by the explorer, then differentially replayed over the hardware RMWs.
  explorer_paths_roundtrip<core::PackedLockFreeHiRegister,
                           replay::PackedLockFreeHiRegister>(3, 2, 10);
  // Two packed words: the boundary-crossing schedules.
  explorer_paths_roundtrip<core::PackedLockFreeHiRegister,
                           replay::PackedLockFreeHiRegister>(70, 65, 10);
}

// ---- A hand-written ScheduleTrace literal (the persisted-counterexample
// format): the Figure 1 leak interleaving of Algorithm 1, with a concurrent
// read landing between the two writes. The replay backend must leave the
// same leaked [1,1,0] image in the atomic cells. ----

TEST(ReplayEquivalence, HandWrittenTraceLiteralReplays) {
  const spec::RegisterSpec spec(3, 1);
  const std::vector<std::vector<spec::RegisterSpec::Op>> workload = {
      {spec::RegisterSpec::write(2), spec::RegisterSpec::write(1)},
      {spec::RegisterSpec::read()}};
  const sim::ScheduleTrace trace{{
      {0, true}, {0, false, 1, "write"}, {1, true}, {1, false, 0, "read"},
      {0, false, 0, "write"}, {0, true}, {0, false, 0, "write"},
  }};

  testing::RegisterSystem<core::VidyasankarRegister> sim_sys(3);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::VidyasankarRegister replay_impl(replay_memory, spec, kWriterPid,
                                          kReaderPid);
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sys.sched, sim_sys.impl, replay_sched, replay_impl, workload,
      trace, verify::snapshot_word_compare(sim_sys.memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.steps_executed, 4u);
  EXPECT_EQ(report.responses_compared, 3u);
  // The leak reproduced on the hardware cells, word-for-word.
  EXPECT_EQ(replay_memory.snapshot().words,
            (std::vector<std::uint64_t>{1, 1, 0}));
}

// ---- Driver self-check: a corrupted annotation must be rejected, not
// silently replayed (the determinism cross-check that makes a persisted
// trace trustworthy as a regression artifact). ----

TEST(ReplayEquivalence, CorruptedTraceAnnotationIsRejected) {
  const spec::RegisterSpec spec(3, 1);
  const std::vector<std::vector<spec::RegisterSpec::Op>> workload = {
      {spec::RegisterSpec::write(2)}, {}};
  sim::ScheduleTrace trace{{
      {0, true}, {0, false, 2, "write"},  // write(2)'s first step hits A[2]
                                          // (object 1), not object 2
  }};

  testing::RegisterSystem<core::VidyasankarRegister> sim_sys(3);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::VidyasankarRegister replay_impl(replay_memory, spec, kWriterPid,
                                          kReaderPid);
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sys.sched, sim_sys.impl, replay_sched, replay_impl, workload,
      trace, verify::snapshot_word_compare(sim_sys.memory, replay_memory));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("deviates"), std::string::npos)
      << report.message;
}

TEST(ReplayEquivalence, OutOfRangePidInTraceIsRejected) {
  // A pid typo in a hand-persisted literal must be rejected cleanly, not
  // indexed with.
  const spec::RegisterSpec spec(3, 1);
  const std::vector<std::vector<spec::RegisterSpec::Op>> workload = {
      {spec::RegisterSpec::write(2)}, {}};
  const sim::ScheduleTrace trace{{{2, true}}};

  testing::RegisterSystem<core::VidyasankarRegister> sim_sys(3);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::VidyasankarRegister replay_impl(replay_memory, spec, kWriterPid,
                                          kReaderPid);
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sys.sched, sim_sys.impl, replay_sched, replay_impl, workload,
      trace, verify::snapshot_word_compare(sim_sys.memory, replay_memory));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("pid"), std::string::npos) << report.message;
}

}  // namespace
}  // namespace hi
