// §5.1's perfect-HI set (experiment E12b): the set over {1..t} escapes class
// C_t (update responses are constant, lookup is binary), and the trivial
// bitmap implementation from t binary registers is wait-free and *perfect*
// HI — memory equals the membership bitmap after every single step. These
// tests validate linearizability under full multi-process concurrency,
// perfect HI at every configuration, the Proposition 6 distance-1 property,
// and one-step wait-freedom.
#include <gtest/gtest.h>

#include <optional>

#include "core/hi_set.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/set_spec.h"
#include "util/rng.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using core::HiSet;
using spec::SetSpec;

struct Sys {
  SetSpec spec;
  sim::Memory memory;
  sim::Scheduler sched;
  HiSet impl;

  explicit Sys(std::uint32_t domain, int num_procs)
      : spec(domain), sched(num_procs), impl(memory, spec) {}
};

std::uint64_t bitmap_from_memory(const sim::MemorySnapshot& snap) {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < snap.words.size(); ++i) {
    if (snap.words[i]) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

std::vector<std::vector<SetSpec::Op>> workload(std::uint32_t domain,
                                               int num_procs, std::size_t ops,
                                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<SetSpec::Op>> work(num_procs);
  for (auto& list : work) {
    for (std::size_t i = 0; i < ops; ++i) {
      const auto v = static_cast<std::uint32_t>(rng.next_in(1, domain));
      switch (rng.next_below(3)) {
        case 0: list.push_back(SetSpec::insert(v)); break;
        case 1: list.push_back(SetSpec::remove(v)); break;
        default: list.push_back(SetSpec::lookup(v)); break;
      }
    }
  }
  return work;
}

TEST(HiSet, SoloSemantics) {
  Sys sys(10, 1);
  EXPECT_FALSE(sim::run_solo(sys.sched, 0, sys.impl.lookup(7)));
  EXPECT_TRUE(sim::run_solo(sys.sched, 0, sys.impl.insert(7)));
  EXPECT_TRUE(sim::run_solo(sys.sched, 0, sys.impl.lookup(7)));
  EXPECT_TRUE(sim::run_solo(sys.sched, 0, sys.impl.remove(7)));
  EXPECT_FALSE(sim::run_solo(sys.sched, 0, sys.impl.lookup(7)));
}

TEST(HiSet, EveryOperationIsOneStep) {
  Sys sys(8, 1);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto ops = workload(8, 1, 1, rng.next());
    const std::uint64_t before = sys.sched.steps_of(0);
    (void)sim::run_solo(sys.sched, 0, sys.impl.apply(0, ops[0][0]));
    EXPECT_EQ(sys.sched.steps_of(0) - before, 1u);
  }
}

TEST(HiSet, PerfectHiAtEveryStep) {
  // Definition 5: after every step of a fully concurrent execution, memory
  // equals the bitmap of the current abstract state. Because every op is a
  // single primitive, the abstract state after each step is exactly the
  // replayed prefix of applied primitives — which is the memory itself; we
  // verify the identity via a shadow model driven by op responses.
  const std::uint32_t domain = 10;
  const int n = 4;
  Sys sys(domain, n);
  auto work = workload(domain, n, 20, 17);
  std::vector<std::optional<sim::OpTask<SetSpec::Resp>>> tasks(n);
  std::vector<std::size_t> next(n, 0);
  util::Xoshiro256 rng(99);
  std::uint64_t shadow = 0;

  for (;;) {
    std::vector<int> enabled;
    for (int pid = 0; pid < n; ++pid) {
      if (tasks[pid].has_value()) {
        if (sys.sched.runnable(pid)) enabled.push_back(pid);
      } else if (next[pid] < work[pid].size()) {
        enabled.push_back(pid);
      }
    }
    if (enabled.empty()) break;
    const int pid = enabled[rng.next_below(enabled.size())];
    if (!tasks[pid].has_value()) {
      tasks[pid].emplace(sys.impl.apply(pid, work[pid][next[pid]++]));
      sys.sched.start(pid, *tasks[pid]);
      continue;  // starting is not a step; memory unchanged
    }
    const auto op = work[pid][next[pid] - 1];
    sys.sched.step(pid);
    // The single primitive just executed; update the shadow state.
    if (op.kind == SetSpec::Kind::kInsert) {
      shadow |= std::uint64_t{1} << (op.value - 1);
    } else if (op.kind == SetSpec::Kind::kRemove) {
      shadow &= ~(std::uint64_t{1} << (op.value - 1));
    }
    EXPECT_EQ(bitmap_from_memory(sys.memory.snapshot()), shadow);
    if (sys.sched.op_finished(pid)) {
      sys.sched.finish(pid);
      tasks[pid].reset();
    }
  }
}

TEST(HiSet, Proposition6DistanceOne) {
  // Perfect HI requires adjacent states to have canonical representations at
  // distance ≤ 1 (Proposition 6); the bitmap layout achieves exactly that.
  const std::uint32_t domain = 8;
  const SetSpec spec(domain);
  auto canon = [&](std::uint64_t state) {
    Sys sys(domain, 1);
    for (std::uint32_t v = 1; v <= domain; ++v) {
      if ((state >> (v - 1)) & 1) {
        (void)sim::run_solo(sys.sched, 0, sys.impl.insert(v));
      }
    }
    return sys.memory.snapshot();
  };
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t state = rng.next_below(1u << domain);
    const auto v = static_cast<std::uint32_t>(rng.next_in(1, domain));
    const auto op = rng.chance(1, 2) ? SetSpec::insert(v) : SetSpec::remove(v);
    const std::uint64_t next_state =
        spec.apply(state, op).first;
    EXPECT_LE(canon(state).distance(canon(next_state)), 1u);
  }
}

class HiSetRandom
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(HiSetRandom, LinearizableUnderFullConcurrency) {
  const auto [n, seed] = GetParam();
  Sys sys(10, n);
  sim::Runner<SetSpec, HiSet> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto&) { return bitmap_from_memory(sys.memory.snapshot()); });
  auto result = runner.run(workload(10, n, 12, seed), {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  ASSERT_EQ(result.history.num_pending(), 0u);
  EXPECT_TRUE(verify::check_linearizable(sys.spec, result.history).ok())
      << "n=" << n << " seed=" << seed;
}

TEST_P(HiSetRandom, HiAcrossExecutions) {
  const auto [n, seed] = GetParam();
  verify::HiChecker checker;
  for (std::uint64_t sub = 0; sub < 8; ++sub) {
    Sys sys(10, n);
    sim::Runner<SetSpec, HiSet> runner(
        sys.spec, sys.memory, sys.sched, sys.impl, [&](const auto&) {
          return bitmap_from_memory(sys.memory.snapshot());
        });
    auto result =
        runner.run(workload(10, n, 10, seed * 50 + sub), {.seed = sub + 1});
    ASSERT_FALSE(result.timed_out);
    for (const auto& obs : result.state_quiescent) {
      checker.observe(obs.state, obs.mem, "sub=" + std::to_string(sub));
    }
  }
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HiSetRandom,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace hi
