// Shared fixtures for the SWSR register experiments (§4, Table 1):
// system bundles, canonical-map construction from solo sequential runs, the
// single-writer state oracle, and workload generators.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/reader_adversary.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "spec/register_spec.h"
#include "util/rng.h"
#include "verify/hi_checker.h"
#include "verify/history.h"

namespace hi::testing {

inline constexpr int kWriterPid = 0;
inline constexpr int kReaderPid = 1;

/// A fresh simulated system hosting one SWSR register implementation.
template <typename Impl>
struct RegisterSystem {
  spec::RegisterSpec spec;
  sim::Memory memory;
  sim::Scheduler sched;
  Impl impl;

  explicit RegisterSystem(std::uint32_t num_values, std::uint32_t initial = 1)
      : spec(num_values, initial),
        sched(2),
        impl(memory, spec, kWriterPid, kReaderPid) {}
};

/// can(v) for every value v, built the way the paper's proofs do: a solo
/// sequential execution ending in state v, snapshot at quiescence. (For
/// state v equal to the initial value, the empty execution provides the
/// canonical snapshot; we also cross-check that writing the initial value
/// reproduces it in the HI tests.)
template <typename Impl>
adversary::CanonicalMap build_register_canon(std::uint32_t num_values,
                                             std::uint32_t initial = 1) {
  adversary::CanonicalMap canon;
  for (std::uint32_t v = 1; v <= num_values; ++v) {
    RegisterSystem<Impl> sys(num_values, initial);
    if (v != initial) {
      (void)sim::run_solo(
          sys.sched, kWriterPid,
          sys.impl.write(kWriterPid, v));
    }
    canon.emplace(v, sys.memory.snapshot());
  }
  return canon;
}

/// State oracle for single-writer objects: at any state-quiescent
/// configuration the abstract state is the value of the last completed
/// Write (they are totally ordered by the single writer's program order),
/// or the initial value if none.
template <typename Hist>
std::uint64_t last_write_or(const Hist& history, std::uint64_t initial) {
  std::uint64_t value = initial;
  for (const auto& entry : history.entries()) {
    if (entry.op.kind == spec::RegisterSpec::Kind::kWrite &&
        entry.completed()) {
      value = entry.op.value;
    }
  }
  return value;
}

/// Random SWSR workload: `num_writes` writes of uniform values for the
/// writer, `num_reads` reads for the reader.
inline std::vector<std::vector<spec::RegisterSpec::Op>> register_workload(
    std::uint32_t num_values, std::size_t num_writes, std::size_t num_reads,
    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<spec::RegisterSpec::Op>> work(2);
  for (std::size_t i = 0; i < num_writes; ++i) {
    work[kWriterPid].push_back(spec::RegisterSpec::write(
        static_cast<std::uint32_t>(rng.next_in(1, num_values))));
  }
  for (std::size_t i = 0; i < num_reads; ++i) {
    work[kReaderPid].push_back(spec::RegisterSpec::read());
  }
  return work;
}

}  // namespace hi::testing
