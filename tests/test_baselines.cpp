// Experiment E13: the non-HI baseline universal construction
// (Fatourou–Kallimanis-style, src/baseline/leaky_universal.h) is
// linearizable and wait-free on the same workloads as Algorithm 5 — but the
// HI checker rejects it, and the leak is attributable: the version counter
// reveals the operation count, and the announce/result tables reveal each
// process's last operation and response. Algorithm 5 passes the identical
// workloads (test_universal.cpp); this file demonstrates the separation.
#include <gtest/gtest.h>

#include "baseline/leaky_universal.h"
#include "core/rllsc.h"
#include "core/universal.h"
#include "universal_common.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using baseline::LeakyUniversal;
using spec::CounterSpec;

struct LeakySys {
  CounterSpec spec;
  sim::Memory memory;
  sim::Scheduler sched;
  LeakyUniversal<CounterSpec> object;

  explicit LeakySys(int n)
      : spec(1u << 20, 10), sched(n), object(memory, spec, n) {}
};

TEST(LeakyUniversal, SequentialSemantics) {
  LeakySys sys(2);
  EXPECT_EQ(sim::run_solo(sys.sched, 0,
                          sys.object.apply(0, CounterSpec::inc())),
            10u);
  EXPECT_EQ(sim::run_solo(sys.sched, 1,
                          sys.object.apply(1, CounterSpec::inc())),
            11u);
  EXPECT_EQ(sim::run_solo(sys.sched, 0,
                          sys.object.apply(0, CounterSpec::read())),
            12u);
  EXPECT_EQ(sim::run_solo(sys.sched, 0,
                          sys.object.apply(0, CounterSpec::dec())),
            12u);
  EXPECT_EQ(sys.object.head_state_encoded(), 11u);
}

TEST(LeakyUniversal, LinearizableUnderRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const int n = 3;
    LeakySys sys(n);
    sim::Runner<CounterSpec, LeakyUniversal<CounterSpec>> runner(
        sys.spec, sys.memory, sys.sched, sys.object,
        [&](const auto&) { return sys.object.head_state_encoded(); });
    auto result = runner.run(
        testing::universal_workload<CounterSpec>(n, 12, seed * 5),
        {.seed = seed});
    ASSERT_FALSE(result.timed_out);
    ASSERT_EQ(result.history.num_pending(), 0u);
    EXPECT_TRUE(verify::check_linearizable(sys.spec, result.history).ok())
        << "seed=" << seed;
  }
}

TEST(LeakyUniversal, VersionCounterLeaksOperationCount) {
  // Two histories reaching the same abstract state with different numbers of
  // operations: inc vs inc,inc,dec. Same state, different memory — the §6.1
  // counter example, realized by the baseline.
  LeakySys short_run(2);
  (void)sim::run_solo(short_run.sched, 0,
                      short_run.object.apply(0, CounterSpec::inc()));

  LeakySys long_run(2);
  (void)sim::run_solo(long_run.sched, 0,
                      long_run.object.apply(0, CounterSpec::inc()));
  (void)sim::run_solo(long_run.sched, 0,
                      long_run.object.apply(0, CounterSpec::inc()));
  (void)sim::run_solo(long_run.sched, 0,
                      long_run.object.apply(0, CounterSpec::dec()));

  ASSERT_EQ(short_run.object.head_state_encoded(),
            long_run.object.head_state_encoded());
  EXPECT_NE(short_run.memory.snapshot(), long_run.memory.snapshot());
  EXPECT_EQ(short_run.object.version(), 1u);
  EXPECT_EQ(long_run.object.version(), 3u);
}

TEST(LeakyUniversal, HiCheckerRejectsQuiescentPoints) {
  verify::HiChecker checker;
  for (std::uint64_t seed = 1; seed <= 6 && checker.consistent(); ++seed) {
    const int n = 2;
    LeakySys sys(n);
    sim::Runner<CounterSpec, LeakyUniversal<CounterSpec>> runner(
        sys.spec, sys.memory, sys.sched, sys.object,
        [&](const auto&) { return sys.object.head_state_encoded(); });
    auto result = runner.run(
        testing::universal_workload<CounterSpec>(n, 10, seed * 11),
        {.seed = seed});
    ASSERT_FALSE(result.timed_out);
    for (const auto& obs : result.quiescent) {
      checker.observe(obs.state, obs.mem, "seed=" + std::to_string(seed));
    }
  }
  EXPECT_FALSE(checker.consistent())
      << "the baseline unexpectedly looked history independent";
}

TEST(LeakyUniversal, SideBySideWithAlgorithm5) {
  // The decisive comparison: identical workload, identical final state; the
  // baseline's memory depends on the path taken, Algorithm 5's does not.
  auto drive = [](auto& sys, const std::vector<CounterSpec::Op>& ops) {
    for (const auto& op : ops) {
      (void)sim::run_solo(sys.sched, 0, sys.object.apply(0, op));
    }
  };
  const std::vector<CounterSpec::Op> path_a = {CounterSpec::inc()};
  const std::vector<CounterSpec::Op> path_b = {
      CounterSpec::inc(), CounterSpec::dec(), CounterSpec::inc()};

  LeakySys leaky_a(2), leaky_b(2);
  drive(leaky_a, path_a);
  drive(leaky_b, path_b);
  EXPECT_NE(leaky_a.memory.snapshot(), leaky_b.memory.snapshot())
      << "baseline should leak";

  testing::UniversalSystem<CounterSpec, core::CasRllsc> hi_a(2), hi_b(2);
  drive(hi_a, path_a);
  drive(hi_b, path_b);
  EXPECT_EQ(hi_a.memory.snapshot(), hi_b.memory.snapshot())
      << "Algorithm 5 must not leak";
}

}  // namespace
}  // namespace hi
