// Algorithm 5 (wait-free state-quiescent-HI universal construction) —
// experiment E11 validates Theorem 32 over six abstract objects and both
// R-LLSC backends (native cells, and Algorithm 6's CAS-backed cells = the
// full composition):
//   * linearizability, cross-validated against the state recorded in head
//     (Lemma 25) via the checker's expected-final-state mode;
//   * state-quiescent history independence: at every state-quiescent point
//     head = ⟨q,⊥⟩, announce ≡ ⊥, all contexts empty (Lemmas 26, 27), and
//     the full memory snapshot is a function of q alone (HiChecker);
//   * wait-freedom: bounded steps per operation under randomized schedules;
//   * helping: an announced operation completes even if its invoker stalls.
#include <gtest/gtest.h>

#include "universal_common.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using core::CasRllsc;
using core::NativeRllsc;
using testing::SpecTraits;
using testing::universal_workload;
using testing::UniversalSystem;

template <typename S, typename Cell>
struct Combo {
  using Spec = S;
  using CellT = Cell;
};

template <typename C>
class UniversalTyped : public ::testing::Test {};

using Combos = ::testing::Types<
    Combo<spec::CounterSpec, CasRllsc>, Combo<spec::CounterSpec, NativeRllsc>,
    Combo<spec::RegisterSpec, CasRllsc>,
    Combo<spec::RegisterSpec, NativeRllsc>, Combo<spec::SetSpec, CasRllsc>,
    Combo<spec::QueueSpec, CasRllsc>, Combo<spec::QueueSpec, NativeRllsc>,
    Combo<spec::StackSpec, CasRllsc>, Combo<spec::CasSpec, CasRllsc>>;
TYPED_TEST_SUITE(UniversalTyped, Combos);

TYPED_TEST(UniversalTyped, SequentialSemanticsMatchSpec) {
  using S = typename TypeParam::Spec;
  UniversalSystem<S, typename TypeParam::CellT> sys(2);
  util::Xoshiro256 rng(7);
  typename S::State model = sys.spec.initial_state();
  for (int i = 0; i < 60; ++i) {
    const auto op = SpecTraits<S>::random_op(rng);
    const auto got =
        sim::run_solo(sys.sched, i % 2, sys.object.apply(i % 2, op));
    auto [next, expected] = sys.spec.apply(model, op);
    model = next;
    EXPECT_EQ(sys.spec.encode_resp(got), sys.spec.encode_resp(expected));
    EXPECT_EQ(sys.object.head_state_encoded(), sys.spec.encode_state(model));
  }
}

TYPED_TEST(UniversalTyped, LinearizableWithHeadCrossCheck) {
  using S = typename TypeParam::Spec;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (int n : {2, 3, 4}) {
      UniversalSystem<S, typename TypeParam::CellT> sys(n);
      sim::Runner<S, core::Universal<S, typename TypeParam::CellT>> runner(
          sys.spec, sys.memory, sys.sched, sys.object,
          [&](const auto&) { return sys.object.head_state_encoded(); });
      auto result =
          runner.run(universal_workload<S>(n, 12, seed * 31 + n),
                     {.seed = seed * 17 + n});
      ASSERT_FALSE(result.timed_out) << "n=" << n << " seed=" << seed;
      ASSERT_EQ(result.history.num_pending(), 0u);

      // Lemma 25: the state in head must be the final state of some
      // linearization of the *entire* history.
      const auto final_state =
          sys.spec.decode_state(sys.object.head_state_encoded());
      const auto lin = verify::LinearizabilityChecker<S>(sys.spec).check(
          result.history, final_state);
      EXPECT_TRUE(lin.ok()) << "n=" << n << " seed=" << seed;
    }
  }
}

TYPED_TEST(UniversalTyped, StateQuiescentCanonicalInvariants) {
  // Lemmas 26 + 27 + Theorem 32: at a state-quiescent configuration,
  // announce[i] = ⊥ for every process, head = ⟨q, ⊥⟩, and every context is
  // empty — hence memory is determined by q.
  using S = typename TypeParam::Spec;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const int n = 3;
    UniversalSystem<S, typename TypeParam::CellT> sys(n);
    bool checked_any = false;
    sim::Runner<S, core::Universal<S, typename TypeParam::CellT>> runner(
        sys.spec, sys.memory, sys.sched, sys.object, [&](const auto&) {
          // Invoked exactly at state-quiescent points: assert the canonical
          // invariants as part of the oracle.
          EXPECT_FALSE(sys.object.head_has_response());
          EXPECT_EQ(sys.object.context_union(), 0u);
          for (int pid = 0; pid < n; ++pid) {
            EXPECT_TRUE(sys.object.announce_is_bottom(pid));
          }
          checked_any = true;
          return sys.object.head_state_encoded();
        });
    auto result = runner.run(universal_workload<S>(n, 12, seed * 77),
                             {.seed = seed * 13});
    ASSERT_FALSE(result.timed_out);
    EXPECT_TRUE(checked_any);
  }
}

TYPED_TEST(UniversalTyped, StateQuiescentHiAcrossExecutions) {
  // Definition 4 with E = state-quiescent executions, pooled across many
  // seeds: same abstract state ⇒ identical memory representation.
  using S = typename TypeParam::Spec;
  const int n = 3;  // (the 6-process variant below stresses wider helping)
  verify::HiChecker checker;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    UniversalSystem<S, typename TypeParam::CellT> sys(n);
    sim::Runner<S, core::Universal<S, typename TypeParam::CellT>> runner(
        sys.spec, sys.memory, sys.sched, sys.object,
        [&](const auto&) { return sys.object.head_state_encoded(); });
    auto result = runner.run(universal_workload<S>(n, 10, seed * 97),
                             {.seed = seed * 7});
    ASSERT_FALSE(result.timed_out);
    for (const auto& obs : result.state_quiescent) {
      checker.observe(obs.state, obs.mem, "seed=" + std::to_string(seed));
    }
  }
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
  EXPECT_GT(checker.num_observations(), 30u);
}

TYPED_TEST(UniversalTyped, SixProcessHiAndLinearizability) {
  // Wider helping fan-out: six processes, pooled HI observations plus a
  // linearizability pass per seed.
  using S = typename TypeParam::Spec;
  const int n = 6;
  verify::HiChecker checker;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    UniversalSystem<S, typename TypeParam::CellT> sys(n);
    sim::Runner<S, core::Universal<S, typename TypeParam::CellT>> runner(
        sys.spec, sys.memory, sys.sched, sys.object,
        [&](const auto&) { return sys.object.head_state_encoded(); });
    auto result = runner.run(universal_workload<S>(n, 8, seed * 191),
                             {.seed = seed * 3 + 1});
    ASSERT_FALSE(result.timed_out);
    ASSERT_EQ(result.history.num_pending(), 0u);
    const auto final_state =
        sys.spec.decode_state(sys.object.head_state_encoded());
    EXPECT_TRUE(verify::LinearizabilityChecker<S>(sys.spec)
                    .check(result.history, final_state)
                    .ok())
        << "seed=" << seed;
    for (const auto& obs : result.state_quiescent) {
      checker.observe(obs.state, obs.mem, "seed=" + std::to_string(seed));
    }
  }
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
}

TYPED_TEST(UniversalTyped, WaitFreeStepBound) {
  // Theorem 32 wait-freedom. The helping structure guarantees an operation
  // is applied within O(n) mode transitions; each transition costs O(1)
  // R-LLSC ops, each of which is O(n) CAS steps under contention in the
  // Algorithm 6 backend. We assert a generous concrete bound and record the
  // observed maximum (bench_universal reports the distribution).
  using S = typename TypeParam::Spec;
  std::uint64_t max_steps = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const int n = 4;
    UniversalSystem<S, typename TypeParam::CellT> sys(n);
    sim::Runner<S, core::Universal<S, typename TypeParam::CellT>> runner(
        sys.spec, sys.memory, sys.sched, sys.object,
        [&](const auto&) { return sys.object.head_state_encoded(); });
    auto result = runner.run(universal_workload<S>(n, 15, seed),
                             {.seed = seed, .start_weight = 2});
    ASSERT_FALSE(result.timed_out);
    for (std::size_t i = 0; i < result.history.size(); ++i) {
      if (result.history[i].completed()) {
        max_steps = std::max(max_steps, result.op_steps[i]);
      }
    }
  }
  EXPECT_LE(max_steps, 600u) << "wait-freedom bound violated";
  EXPECT_GT(max_steps, 0u);
}

TYPED_TEST(UniversalTyped, ReadOnlyOpsTakeOneStepAndLeaveNoTrace) {
  using S = typename TypeParam::Spec;
  UniversalSystem<S, typename TypeParam::CellT> sys(2);
  util::Xoshiro256 rng(5);
  // Reach a random state first.
  for (int i = 0; i < 10; ++i) {
    (void)sim::run_solo(sys.sched, 0,
                        sys.object.apply(0, SpecTraits<S>::random_op(rng)));
  }
  const auto before = sys.memory.snapshot();
  // Find a read-only op for this spec and run it solo.
  for (int tries = 0; tries < 100; ++tries) {
    const auto op = SpecTraits<S>::random_op(rng);
    if (!sys.spec.is_read_only(op)) continue;
    const std::uint64_t steps_before = sys.sched.steps_of(1);
    (void)sim::run_solo(sys.sched, 1, sys.object.apply(1, op));
    EXPECT_EQ(sys.sched.steps_of(1) - steps_before, 1u)
        << "ApplyReadOnly is a single Load";
    EXPECT_EQ(sys.memory.snapshot(), before)
        << "read-only ops must not change the memory representation";
    break;
  }
}

TEST(UniversalHelping, StalledProcessIsHelpedToCompletion) {
  // p0 announces an increment and then takes no further steps; p1 performs
  // its own operations, and the helping path (lines 8–9) must apply p0's
  // operation exactly once. p0 then finishes in a handful of solo steps.
  using S = spec::CounterSpec;
  UniversalSystem<S, CasRllsc> sys(2);

  sim::OpTask<S::Resp> stalled = sys.object.apply(0, S::inc());
  sys.sched.start(0, stalled);
  sys.sched.step(0);  // p0 executes only its announcement Store (line 4)

  // p1 runs two increments of its own; the priority rotation guarantees it
  // helps p0 within these.
  (void)sim::run_solo(sys.sched, 1, sys.object.apply(1, S::inc()));
  (void)sim::run_solo(sys.sched, 1, sys.object.apply(1, S::inc()));

  // All three increments must have been applied (initial value 10).
  EXPECT_EQ(sys.object.head_state_encoded(), 13u);

  // p0 wakes up: it should find its response and return promptly.
  std::uint64_t steps = 0;
  while (!sys.sched.op_finished(0)) {
    ASSERT_LT(steps, 60u) << "stalled process did not finish promptly";
    ASSERT_TRUE(sys.sched.runnable(0));
    sys.sched.step(0);
    ++steps;
  }
  sys.sched.finish(0);
  const auto resp = stalled.take_result();
  // Its fetch-and-inc response reflects the state when it was applied —
  // one of 10, 11, 12.
  EXPECT_GE(resp, 10u);
  EXPECT_LE(resp, 12u);
  // And the memory is canonical afterwards.
  EXPECT_TRUE(sys.object.announce_is_bottom(0));
  EXPECT_TRUE(sys.object.announce_is_bottom(1));
  EXPECT_EQ(sys.object.context_union(), 0u);
  EXPECT_FALSE(sys.object.head_has_response());
}

TEST(UniversalModes, HeadAlternatesBetweenAAndBModes) {
  // Invariant 22: consecutive head values alternate ⟨q,⊥⟩ → ⟨q',⟨r,j⟩⟩ →
  // ⟨q',⊥⟩ → ... and the B→A transition preserves the state component.
  using S = spec::CounterSpec;
  const int n = 3;
  UniversalSystem<S, CasRllsc> sys(n);

  auto work = universal_workload<S>(n, 10, 99);
  std::vector<std::optional<sim::OpTask<S::Resp>>> tasks(n);
  std::vector<std::size_t> next(n, 0);
  util::Xoshiro256 rng(123);

  std::uint64_t prev_state = sys.object.head_state_encoded();
  bool prev_has_resp = sys.object.head_has_response();
  EXPECT_FALSE(prev_has_resp);
  int transitions = 0;

  for (;;) {
    std::vector<int> enabled;
    for (int pid = 0; pid < n; ++pid) {
      if (tasks[pid].has_value()) {
        if (sys.sched.runnable(pid)) enabled.push_back(pid);
      } else if (next[pid] < work[pid].size()) {
        enabled.push_back(pid);
      }
    }
    if (enabled.empty()) break;
    const int pid = enabled[rng.next_below(enabled.size())];
    if (!tasks[pid].has_value()) {
      tasks[pid].emplace(sys.object.apply(pid, work[pid][next[pid]++]));
      sys.sched.start(pid, *tasks[pid]);
    } else {
      sys.sched.step(pid);
    }
    if (tasks[pid].has_value() && sys.sched.op_finished(pid)) {
      sys.sched.finish(pid);
      tasks[pid].reset();
    }

    const std::uint64_t state = sys.object.head_state_encoded();
    const bool has_resp = sys.object.head_has_response();
    if (state != prev_state || has_resp != prev_has_resp) {
      ++transitions;
      if (prev_has_resp) {
        // B → A: response cleared, state unchanged (Invariant 22 case 1).
        EXPECT_FALSE(has_resp);
        EXPECT_EQ(state, prev_state);
      } else {
        // A → B: a new operation was applied (Invariant 22 case 2).
        EXPECT_TRUE(has_resp);
      }
      prev_state = state;
      prev_has_resp = has_resp;
    }
  }
  EXPECT_GT(transitions, 10);
  EXPECT_FALSE(sys.object.head_has_response());
}

TEST(UniversalCombining, WinnerSweepsStalledAnnouncesInOneInstall) {
  // Flat-combining mode, step-exact: p0 and p1 announce increments and
  // stall; p2 then runs one increment solo. Its combining pass must sweep
  // all three announced ops into ONE installed transition (batch of 3),
  // publish every response, and leave head in mode A.
  using S = spec::CounterSpec;
  UniversalSystem<S, CasRllsc> sys(3, /*clear_contexts=*/true,
                                   /*combine=*/true);

  sim::OpTask<S::Resp> stalled0 = sys.object.apply(0, S::inc());
  sys.sched.start(0, stalled0);
  sys.sched.step(0);  // p0 executes only its announcement Store (line 4)
  sim::OpTask<S::Resp> stalled1 = sys.object.apply(1, S::inc());
  sys.sched.start(1, stalled1);
  sys.sched.step(1);

  const std::uint64_t steps_before = sys.sched.steps_of(2);
  const auto resp2 = sim::run_solo(sys.sched, 2, sys.object.apply(2, S::inc()));
  const std::uint64_t winner_steps = sys.sched.steps_of(2) - steps_before;

  // One install covering three operations, folded in ascending pid order
  // from initial state 10: p0 sees 10, p1 sees 11, p2 sees 12.
  EXPECT_EQ(sys.object.batches_installed(), 1u);
  EXPECT_EQ(sys.object.ops_combined(), 3u);
  EXPECT_EQ(sys.object.head_state_encoded(), 13u);
  EXPECT_EQ(resp2, 12u);
  // Step-exact (CasRllsc backend): announce Store 1 + line-5 Load 1 +
  // head LL 2 + scan n=3 Loads + combining SC 2 + k=3 response Stores +
  // head-clearing Store 1 + line-5 re-Load 1 + line-24 Load 1 +
  // line-25 LL 2 + line-27 RL 2 + line-28 Store 1 = 20.
  EXPECT_EQ(winner_steps, 20u);

  // The stalled processes wake, find their responses, and finish promptly
  // without installing anything further.
  for (int pid : {0, 1}) {
    std::uint64_t steps = 0;
    while (!sys.sched.op_finished(pid)) {
      ASSERT_LT(steps, 20u) << "swept process did not finish promptly";
      ASSERT_TRUE(sys.sched.runnable(pid));
      sys.sched.step(pid);
      ++steps;
    }
    sys.sched.finish(pid);
  }
  EXPECT_EQ(stalled0.take_result(), 10u);
  EXPECT_EQ(stalled1.take_result(), 11u);
  EXPECT_EQ(sys.object.batches_installed(), 1u);
  EXPECT_EQ(sys.object.ops_combined(), 3u);

  // Quiescent memory is canonical: the combining excursion leaves no trace.
  EXPECT_TRUE(sys.object.announce_is_bottom(0));
  EXPECT_TRUE(sys.object.announce_is_bottom(1));
  EXPECT_TRUE(sys.object.announce_is_bottom(2));
  EXPECT_EQ(sys.object.context_union(), 0u);
  EXPECT_FALSE(sys.object.head_has_response());
}

TYPED_TEST(UniversalTyped, CombiningLinearizableAndQuiescentHi) {
  // combine=true over every spec x cell combo: batching changes how many
  // operations one install covers, never what the history linearizes to or
  // what quiescent memory looks like. Also checks the batch accounting:
  // every completed update flows through exactly one install.
  using S = typename TypeParam::Spec;
  verify::HiChecker checker;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const int n = 3;
    UniversalSystem<S, typename TypeParam::CellT> sys(n,
                                                      /*clear_contexts=*/true,
                                                      /*combine=*/true);
    ASSERT_TRUE(sys.object.combining_enabled());
    sim::Runner<S, core::Universal<S, typename TypeParam::CellT>> runner(
        sys.spec, sys.memory, sys.sched, sys.object, [&](const auto&) {
          // State-quiescent oracle: canonical invariants must survive
          // combining (Lemmas 26, 27 arguments carry over).
          EXPECT_FALSE(sys.object.head_has_response());
          EXPECT_EQ(sys.object.context_union(), 0u);
          for (int pid = 0; pid < n; ++pid) {
            EXPECT_TRUE(sys.object.announce_is_bottom(pid));
          }
          return sys.object.head_state_encoded();
        });
    const auto work = universal_workload<S>(n, 12, seed * 53);
    std::uint64_t updates = 0;
    for (const auto& ops : work) {
      for (const auto& op : ops) updates += sys.spec.is_read_only(op) ? 0 : 1;
    }
    auto result = runner.run(work, {.seed = seed * 29 + 1});
    ASSERT_FALSE(result.timed_out) << "seed=" << seed;
    ASSERT_EQ(result.history.num_pending(), 0u);

    const auto final_state =
        sys.spec.decode_state(sys.object.head_state_encoded());
    EXPECT_TRUE(verify::LinearizabilityChecker<S>(sys.spec)
                    .check(result.history, final_state)
                    .ok())
        << "seed=" << seed;
    EXPECT_EQ(sys.object.ops_combined(), updates);
    EXPECT_LE(sys.object.batches_installed(), sys.object.ops_combined());
    EXPECT_GE(sys.object.batches_installed(), 1u);
    for (const auto& obs : result.state_quiescent) {
      checker.observe(obs.state, obs.mem, "seed=" + std::to_string(seed));
    }
  }
  EXPECT_TRUE(checker.consistent()) << checker.violation()->message();
  EXPECT_GT(checker.num_observations(), 10u);
}

TEST(UniversalAblation, WithoutContextClearingHiBreaks) {
  // E14 ablation (a): drop the red RL lines. The run still linearizes, but
  // quiescent memory retains context bits — exactly the counter example the
  // paper gives in §6.1 (a zero counter revealing it was touched).
  using S = spec::CounterSpec;
  const int n = 3;

  // Reference canonical memory: a fresh object driven to state 12 with
  // clearing enabled, at quiescence.
  UniversalSystem<S, CasRllsc> reference(n);
  (void)sim::run_solo(reference.sched, 0, reference.object.apply(0, S::inc()));
  (void)sim::run_solo(reference.sched, 0, reference.object.apply(0, S::inc()));
  const auto canonical = reference.memory.snapshot();
  ASSERT_EQ(reference.object.context_union(), 0u);

  // Ablated object, same abstract state, concurrent schedule.
  UniversalSystem<S, CasRllsc> ablated(n, /*clear_contexts=*/false);
  sim::Runner<S, core::Universal<S, CasRllsc>> runner(
      ablated.spec, ablated.memory, ablated.sched, ablated.object,
      [&](const auto&) { return ablated.object.head_state_encoded(); });
  std::vector<std::vector<S::Op>> work(n);
  work[0] = {S::inc()};
  work[1] = {S::inc()};
  auto result = runner.run(work, {.seed = 3});
  ASSERT_FALSE(result.timed_out);
  ASSERT_EQ(ablated.object.head_state_encoded(), 12u);

  // Linearizability is unaffected...
  EXPECT_TRUE(verify::check_linearizable(ablated.spec, result.history).ok());
  // ...but the memory is NOT canonical: context residue reveals history.
  EXPECT_NE(ablated.memory.snapshot(), canonical);
  EXPECT_NE(ablated.object.context_union(), 0u);
}

}  // namespace
}  // namespace hi
