// Replay regressions for the §5 impossibility/adversary scenarios: the
// Lemma 16 reader-starvation schedules (Theorem 17, reader_adversary) and
// the representative-state queue walks (Theorem 20, queue_adversary) are
// recorded as ScheduleTraces and differentially re-executed over the
// ReplayEnv hardware-atomics backend — the adversary's object-predicting
// power (it consults the base object the reader will access NEXT) is
// preserved exactly, because ReplayEnv exposes the same pending-primitive
// introspection as the simulator.
//
// Two flavors per scenario:
//   * live: run the adversary, record its schedule and the dynamically
//     chosen operations (verify::RecordingImpl), replay differentially —
//     the starvation must reproduce step-for-step on the atomic cells;
//   * persisted: a ScheduleTrace literal captured from a known adversary
//     run (the counterexample-as-regression format; regenerate by
//     re-recording if the algorithms' step sequences ever legitimately
//     change).
// Plus the positive control: against the wait-free Algorithm 4 the same
// adversary fails, and the completed read replays with an equal response.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/queue_adversary.h"
#include "adversary/reader_adversary.h"
#include "baseline/strawman_queue.h"
#include "core/hi_register_lockfree.h"
#include "core/hi_register_waitfree.h"
#include "register_common.h"
#include "replay/replay_objects.h"
#include "sim/harness.h"
#include "sim/memory.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "spec/queue_spec.h"
#include "spec/register_spec.h"
#include "verify/replay.h"

namespace hi {
namespace {

using testing::kReaderPid;
using testing::kWriterPid;

// ---- Theorem 17: reader adversary vs the lock-free HI register ----

std::uint64_t count_starts(const sim::ScheduleTrace& trace) {
  std::uint64_t starts = 0;
  for (const auto& step : trace.steps) starts += step.start ? 1 : 0;
  return starts;
}

/// Run the starvation adversary against SimImpl while recording schedule
/// and operations; differentially replay against ReplayImpl. Returns the
/// number of responses compared (== changer ops iff the reader starved).
template <typename SimImpl, typename ReplayImpl>
std::uint64_t starvation_roundtrip(std::uint32_t k, std::uint64_t max_rounds,
                                   bool expect_reader_returns) {
  const auto canon = testing::build_register_canon<SimImpl>(k);

  testing::RegisterSystem<SimImpl> sys(k);
  const auto plan = adversary::ct_plan(sys.spec);
  std::vector<std::vector<spec::RegisterSpec::Op>> workload(2);
  verify::RecordingImpl<spec::RegisterSpec, SimImpl> recorder(sys.impl,
                                                              workload);
  sim::ScheduleTrace trace;
  sys.sched.record_to(&trace);
  const auto result =
      adversary::run_starvation(sys.spec, sys.memory, sys.sched, recorder,
                                plan, canon, kWriterPid, kReaderPid, max_rounds);
  sys.sched.record_to(nullptr);
  EXPECT_EQ(result.reader_returned, expect_reader_returns);

  testing::RegisterSystem<SimImpl> sim_sys(k);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  ReplayImpl replay_impl(replay_memory, sim_sys.spec, kWriterPid, kReaderPid);

  const verify::ReplayReport report = verify::replay_differential(
      sim_sys.spec, sim_sys.sched, sim_sys.impl, replay_sched, replay_impl,
      workload, trace,
      verify::snapshot_word_compare(sim_sys.memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message << "\ntrace:\n" << trace.pretty();
  EXPECT_EQ(report.steps_executed, trace.size() - count_starts(trace));
  return report.responses_compared;
}

TEST(ReplayAdversary, ReaderStarvationReplaysOverHardwareAtomics) {
  // 50 rounds of the pigeonhole schedule: the reader completes on NEITHER
  // backend, and every changer operation responds identically. The changer
  // performs one initial o_change plus one per round.
  const std::uint64_t responses =
      starvation_roundtrip<core::LockFreeHiRegister,
                           replay::LockFreeHiRegister>(
          3, /*max_rounds=*/50, /*expect_reader_returns=*/false);
  EXPECT_EQ(responses, 51u);  // changer ops only — the reader never returned
}

TEST(ReplayAdversary, WaitFreeControlReaderReturnsOnBothBackends) {
  // Positive control (Theorem 12 vs Theorem 17): Algorithm 4's reader
  // escapes the same adversary; its response must replay equal too.
  const std::uint64_t responses =
      starvation_roundtrip<core::WaitFreeHiRegister,
                           replay::WaitFreeHiRegister>(
          3, /*max_rounds=*/50, /*expect_reader_returns=*/true);
  EXPECT_GE(responses, 2u);  // at least one changer op AND the reader's read
}

// Persisted counterexample: 8 rounds of the Lemma 16 schedule against the
// K=3 lock-free register (captured from run_starvation with trace
// recording). The changer walks 2→3→1→2→…, one complete Write between any
// two reader steps; the reader's TryRead chases the moving 1 and never
// returns — now pinned as a hardware-atomics regression.
TEST(ReplayAdversary, PersistedReaderStarvationTrace) {
  const spec::RegisterSpec spec(3, 1);
  std::vector<std::vector<spec::RegisterSpec::Op>> workload(2);
  for (int round = 0; round < 3; ++round) {
    workload[kWriterPid].push_back(spec::RegisterSpec::write(2));
    workload[kWriterPid].push_back(spec::RegisterSpec::write(3));
    workload[kWriterPid].push_back(spec::RegisterSpec::write(1));
  }
  workload[kReaderPid] = {spec::RegisterSpec::read()};
  const sim::ScheduleTrace trace{{
      {0, true}, {0, false, 1, "write"}, {0, false, 0, "write"},
      {0, false, 2, "write"}, {1, true}, {0, true}, {0, false, 2, "write"},
      {0, false, 1, "write"}, {0, false, 0, "write"}, {1, false, 0, "read"},
      {0, true}, {0, false, 0, "write"}, {0, false, 1, "write"},
      {0, false, 2, "write"}, {1, false, 1, "read"}, {0, true},
      {0, false, 1, "write"}, {0, false, 0, "write"}, {0, false, 2, "write"},
      {1, false, 2, "read"}, {0, true}, {0, false, 2, "write"},
      {0, false, 1, "write"}, {0, false, 0, "write"}, {1, false, 0, "read"},
      {0, true}, {0, false, 0, "write"}, {0, false, 1, "write"},
      {0, false, 2, "write"}, {1, false, 1, "read"}, {0, true},
      {0, false, 1, "write"}, {0, false, 0, "write"}, {0, false, 2, "write"},
      {1, false, 2, "read"}, {0, true}, {0, false, 2, "write"},
      {0, false, 1, "write"}, {0, false, 0, "write"}, {1, false, 0, "read"},
      {0, true}, {0, false, 0, "write"}, {0, false, 1, "write"},
      {0, false, 2, "write"}, {1, false, 1, "read"},
  }};

  testing::RegisterSystem<core::LockFreeHiRegister> sim_sys(3);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::LockFreeHiRegister replay_impl(replay_memory, spec, kWriterPid,
                                         kReaderPid);
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sys.sched, sim_sys.impl, replay_sched, replay_impl, workload,
      trace, verify::snapshot_word_compare(sim_sys.memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.responses_compared, 9u);  // 9 writes; the read starves
  EXPECT_EQ(report.steps_executed, 35u);     // 27 write + 8 starved reads
}

// ---- Theorem 20: queue adversary vs the strawman queue ----

adversary::CanonicalMap strawman_canon(const spec::QueueSpec& spec) {
  adversary::CanonicalMap canon;
  for (std::uint32_t i = 0; i <= spec.domain(); ++i) {
    sim::Memory memory;
    sim::Scheduler sched(2);
    baseline::StrawmanQueue impl(memory, spec, kWriterPid, kReaderPid);
    if (i != 0) {
      for (const auto& op : spec.change_seq(0, i)) {
        (void)sim::run_solo(sched, kWriterPid, impl.apply(kWriterPid, op));
      }
    }
    canon.emplace(spec.encode_state(spec.representative(i)),
                  memory.snapshot());
  }
  return canon;
}

TEST(ReplayAdversary, QueuePeekStarvationReplaysOverHardwareAtomics) {
  const spec::QueueSpec spec(4, 4);
  const auto canon = strawman_canon(spec);

  sim::Memory memory;
  sim::Scheduler sched(2);
  baseline::StrawmanQueue impl(memory, spec, kWriterPid, kReaderPid);
  const auto plan = adversary::queue_plan(spec);
  std::vector<std::vector<spec::QueueSpec::Op>> workload(2);
  verify::RecordingImpl<spec::QueueSpec, baseline::StrawmanQueue> recorder(
      impl, workload);
  sim::ScheduleTrace trace;
  sched.record_to(&trace);
  const auto result = adversary::run_starvation(
      spec, memory, sched, recorder, plan, canon, kWriterPid, kReaderPid,
      /*max_rounds=*/25);
  sched.record_to(nullptr);
  EXPECT_FALSE(result.reader_returned);
  EXPECT_EQ(result.rounds_executed, 25u);

  sim::Memory sim_memory;
  sim::Scheduler sim_sched(2);
  baseline::StrawmanQueue sim_impl(sim_memory, spec, kWriterPid, kReaderPid);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::StrawmanQueue replay_impl(replay_memory, spec, kWriterPid,
                                    kReaderPid);
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sched, sim_impl, replay_sched, replay_impl, workload, trace,
      verify::snapshot_word_compare(sim_memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message << "\ntrace:\n" << trace.pretty();
  // Peek never completed: only the S(i1,i2) walk operations responded.
  EXPECT_EQ(report.responses_compared,
            static_cast<std::uint64_t>(workload[kWriterPid].size()));
}

// Persisted counterexample: 6 rounds of the S(i1,i2) representative walk
// against the domain-3 strawman queue (captured from run_starvation).
// Object ids: F[0..3] = 0..3, slot bit-planes = 4..11. Each walk rewrites
// the slot planes canonically, then flips the one-hot front bit exactly as
// Peek's scan approaches it.
TEST(ReplayAdversary, PersistedQueueStarvationTrace) {
  const spec::QueueSpec spec(3, 4);
  std::vector<std::vector<spec::QueueSpec::Op>> workload(2);
  workload[kWriterPid] = {
      spec::QueueSpec::enqueue(1), spec::QueueSpec::enqueue(2),
      spec::QueueSpec::dequeue(),  spec::QueueSpec::dequeue(),
      spec::QueueSpec::enqueue(1), spec::QueueSpec::dequeue(),
      spec::QueueSpec::enqueue(1), spec::QueueSpec::dequeue(),
  };
  workload[kReaderPid] = {spec::QueueSpec::peek()};
  const sim::ScheduleTrace trace{{
      {0, true}, {0, false, 4, "write"}, {0, false, 5, "write"},
      {0, false, 6, "write"}, {0, false, 7, "write"}, {0, false, 8, "write"},
      {0, false, 9, "write"}, {0, false, 10, "write"}, {0, false, 11, "write"},
      {0, false, 1, "write"}, {0, false, 0, "write"}, {1, true},
      {0, true}, {0, false, 4, "write"}, {0, false, 5, "write"},
      {0, false, 6, "write"}, {0, false, 7, "write"}, {0, false, 8, "write"},
      {0, false, 9, "write"}, {0, false, 10, "write"}, {0, false, 11, "write"},
      {0, true}, {0, false, 4, "write"}, {0, false, 5, "write"},
      {0, false, 6, "write"}, {0, false, 7, "write"}, {0, false, 8, "write"},
      {0, false, 9, "write"}, {0, false, 10, "write"}, {0, false, 11, "write"},
      {0, false, 2, "write"}, {0, false, 1, "write"}, {1, false, 0, "read"},
      {0, true}, {0, false, 4, "write"}, {0, false, 5, "write"},
      {0, false, 6, "write"}, {0, false, 7, "write"}, {0, false, 8, "write"},
      {0, false, 9, "write"}, {0, false, 10, "write"}, {0, false, 11, "write"},
      {0, false, 0, "write"}, {0, false, 2, "write"}, {1, false, 1, "read"},
      {0, true}, {0, false, 4, "write"}, {0, false, 5, "write"},
      {0, false, 6, "write"}, {0, false, 7, "write"}, {0, false, 8, "write"},
      {0, false, 9, "write"}, {0, false, 10, "write"}, {0, false, 11, "write"},
      {0, false, 1, "write"}, {0, false, 0, "write"}, {1, false, 2, "read"},
      {0, true}, {0, false, 4, "write"}, {0, false, 5, "write"},
      {0, false, 6, "write"}, {0, false, 7, "write"}, {0, false, 8, "write"},
      {0, false, 9, "write"}, {0, false, 10, "write"}, {0, false, 11, "write"},
      {0, false, 0, "write"}, {0, false, 1, "write"}, {1, false, 3, "read"},
      {0, true}, {0, false, 4, "write"}, {0, false, 5, "write"},
      {0, false, 6, "write"}, {0, false, 7, "write"}, {0, false, 8, "write"},
      {0, false, 9, "write"}, {0, false, 10, "write"}, {0, false, 11, "write"},
      {0, false, 1, "write"}, {0, false, 0, "write"}, {1, false, 0, "read"},
      {0, true}, {0, false, 4, "write"}, {0, false, 5, "write"},
      {0, false, 6, "write"}, {0, false, 7, "write"}, {0, false, 8, "write"},
      {0, false, 9, "write"}, {0, false, 10, "write"}, {0, false, 11, "write"},
      {0, false, 0, "write"}, {0, false, 1, "write"}, {1, false, 1, "read"},
  }};

  sim::Memory sim_memory;
  sim::Scheduler sim_sched(2);
  baseline::StrawmanQueue sim_impl(sim_memory, spec, kWriterPid, kReaderPid);
  sim::Memory replay_memory;
  sim::Scheduler replay_sched(2);
  replay::StrawmanQueue replay_impl(replay_memory, spec, kWriterPid,
                                    kReaderPid);
  const verify::ReplayReport report = verify::replay_differential(
      spec, sim_sched, sim_impl, replay_sched, replay_impl, workload, trace,
      verify::snapshot_word_compare(sim_memory, replay_memory));
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.responses_compared, 8u);  // the walk ops; Peek starves
}

}  // namespace
}  // namespace hi
