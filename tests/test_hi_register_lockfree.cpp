// Algorithm 2 (lock-free state-quiescent-HI SWSR register) — experiment E4
// validates Theorem 9 piece by piece: linearizability, state-quiescent
// history independence (canonical memory at every state-quiescent point,
// seeded from sequential canon), wait-freedom of the writer, and the
// *tightness* of lock-freedom for the reader (the Lemma 16 adversary starves
// it, which is experiment E7's positive case for this algorithm).
#include <gtest/gtest.h>

#include "adversary/reader_adversary.h"
#include "core/hi_register_lockfree.h"
#include "register_common.h"
#include "verify/hi_checker.h"
#include "verify/linearizability.h"

namespace hi {
namespace {

using core::LockFreeHiRegister;
using spec::RegisterSpec;
using testing::kReaderPid;
using testing::kWriterPid;
using testing::RegisterSystem;
using Sys = RegisterSystem<LockFreeHiRegister>;

TEST(LockFreeHiRegister, SoloSemantics) {
  Sys sys(6, 2);
  EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid)),
            2u);
  for (std::uint32_t v : {5u, 1u, 6u, 3u}) {
    (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, v));
    EXPECT_EQ(sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid)),
              v);
  }
}

TEST(LockFreeHiRegister, CanonicalRepresentationIsOneHot) {
  // After any quiescent Write(v): A[v] = 1 and everything else 0.
  const auto canon = testing::build_register_canon<LockFreeHiRegister>(5);
  for (std::uint32_t v = 1; v <= 5; ++v) {
    const auto& snap = canon.at(v);
    for (std::uint32_t j = 1; j <= 5; ++j) {
      EXPECT_EQ(snap.words[j - 1], j == v ? 1u : 0u) << "v=" << v;
    }
  }
}

TEST(LockFreeHiRegister, RewritingSameValueLeavesCanonicalMemory) {
  // Write(v) twice in a row must leave the identical representation —
  // SHI's multi-observation requirement on a degenerate pair of points.
  Sys sys(4);
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 3));
  const auto first = sys.memory.snapshot();
  (void)sim::run_solo(sys.sched, kWriterPid, sys.impl.write(kWriterPid, 3));
  EXPECT_EQ(first, sys.memory.snapshot());
}

class LockFreeHiRegisterRandom
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(LockFreeHiRegisterRandom, Linearizable) {
  const auto [k, seed] = GetParam();
  Sys sys(k);
  sim::Runner<RegisterSpec, LockFreeHiRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return testing::last_write_or(hist, 1); });
  auto result = runner.run(testing::register_workload(k, 25, 25, seed),
                           {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  ASSERT_EQ(result.history.num_pending(), 0u);
  const auto lin = verify::check_linearizable(sys.spec, result.history);
  EXPECT_TRUE(lin.ok()) << "seed=" << seed << " K=" << k;
}

TEST_P(LockFreeHiRegisterRandom, StateQuiescentHI) {
  // Theorem 9's HI claim: at every state-quiescent configuration of every
  // execution, memory equals the sequential canonical representation.
  const auto [k, seed] = GetParam();
  const auto canon = testing::build_register_canon<LockFreeHiRegister>(k);
  verify::HiChecker checker;
  for (const auto& [state, snap] : canon) {
    ASSERT_TRUE(checker.set_canonical(state, snap));
  }

  Sys sys(k);
  sim::Runner<RegisterSpec, LockFreeHiRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return testing::last_write_or(hist, 1); });
  auto result = runner.run(testing::register_workload(k, 30, 30, seed),
                           {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  ASSERT_GT(result.state_quiescent.size(), 0u);
  for (const auto& obs : result.state_quiescent) {
    checker.observe(obs.state, obs.mem,
                    "seed=" + std::to_string(seed) +
                        " step=" + std::to_string(obs.at_step));
  }
  EXPECT_TRUE(checker.consistent())
      << checker.violation()->message() << "\n(K=" << k << ")";
}

TEST_P(LockFreeHiRegisterRandom, WriterIsWaitFree) {
  // A Write performs exactly K low-level writes regardless of scheduling.
  const auto [k, seed] = GetParam();
  Sys sys(k);
  sim::Runner<RegisterSpec, LockFreeHiRegister> runner(
      sys.spec, sys.memory, sys.sched, sys.impl,
      [&](const auto& hist) { return testing::last_write_or(hist, 1); });
  auto result = runner.run(testing::register_workload(k, 30, 30, seed),
                           {.seed = seed});
  ASSERT_FALSE(result.timed_out);
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    if (result.history[i].op.kind == RegisterSpec::Kind::kWrite) {
      EXPECT_EQ(result.op_steps[i], static_cast<std::uint64_t>(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LockFreeHiRegisterRandom,
    ::testing::Combine(::testing::Values(3u, 5u, 8u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

TEST(LockFreeHiRegister, ReaderIsOnlyLockFree_AdversaryStarvesIt) {
  // E7 (Theorem 17, concrete case): the pigeonhole adversary keeps the
  // reader from ever returning, for as many rounds as we care to run. This
  // is precisely why Algorithm 2 must settle for lock-freedom.
  constexpr std::uint32_t kValues = 4;
  constexpr std::uint64_t kRounds = 3000;
  const auto canon = testing::build_register_canon<LockFreeHiRegister>(kValues);

  Sys sys(kValues);
  const auto plan = adversary::ct_plan(sys.spec);
  const auto result = adversary::run_starvation(
      sys.spec, sys.memory, sys.sched, sys.impl, plan, canon, kWriterPid,
      kReaderPid, kRounds);

  EXPECT_FALSE(result.reader_returned);
  EXPECT_EQ(result.rounds_executed, kRounds);
  // The reader's step count grows with the rounds: one step per round.
  EXPECT_EQ(result.reader_steps, kRounds);
}

TEST(LockFreeHiRegister, ReaderCompletesWhenRunSolo) {
  // Lock-freedom's flip side: once the writer stops interfering, the pending
  // read finishes within one TryRead (≤ 2K-1 steps).
  constexpr std::uint32_t kValues = 4;
  const auto canon = testing::build_register_canon<LockFreeHiRegister>(kValues);
  Sys sys(kValues);
  const auto plan = adversary::ct_plan(sys.spec);
  (void)adversary::run_starvation(sys.spec, sys.memory, sys.sched, sys.impl,
                                  plan, canon, kWriterPid, kReaderPid, 100);
  // The adversary abandoned the read. Start a fresh one and run it solo.
  const auto value =
      sim::run_solo(sys.sched, kReaderPid, sys.impl.read(kReaderPid));
  EXPECT_GE(value, 1u);
  EXPECT_LE(value, kValues);
  EXPECT_LE(sys.sched.steps_of(kReaderPid), 100 + 2 * kValues - 1);
}

}  // namespace
}  // namespace hi
